(* Tests for lib/resil: fault schedules (sorting, CSV, generator), fault
   state, capacity tracking, failover routing, and the resilience playout
   — including the acceptance property that with no faults and unbounded
   capacity it reproduces the legacy engine byte-for-byte. *)

module E = Vod_resil.Event
module M = Vod_sim.Metrics

let ev time_s kind = { E.time_s; kind }

(* ---------- events ---------- *)

let schedule_sorting () =
  let s =
    E.create
      [
        ev 100.0 (E.Vho_up 1);
        ev 50.0 (E.Vho_down 1);
        (* same-time events keep authored order *)
        ev 50.0 (E.Link_down 0);
      ]
  in
  Alcotest.(check int) "length" 3 (E.length s);
  Alcotest.(check bool) "first is vho_down" true (s.(0).E.kind = E.Vho_down 1);
  Alcotest.(check bool) "stable tie" true (s.(1).E.kind = E.Link_down 0);
  Alcotest.(check (float 1e-9)) "last time" 100.0 s.(2).E.time_s;
  Alcotest.check_raises "negative time" (Invalid_argument
    "Event.create: event times must be finite and non-negative") (fun () ->
      ignore (E.create [ ev (-1.0) (E.Vho_down 0) ]))

let schedule_csv_roundtrip () =
  let s =
    E.create
      [
        ev 60.0 (E.Vho_down 3);
        ev 120.5 (E.Surge_start { vho = 2; factor = 2.5 });
        ev 200.0 (E.Surge_end 2);
        ev 240.0 (E.Link_down 7);
        ev 300.0 (E.Link_up 7);
        ev 360.0 (E.Vho_up 3);
      ]
  in
  let path = Filename.temp_file "sched" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      E.save_csv s path;
      let s' = E.load_csv path in
      Alcotest.(check int) "length" (E.length s) (E.length s');
      Array.iteri
        (fun i e ->
          Alcotest.(check bool)
            (Printf.sprintf "event %d" i)
            true
            (e.E.kind = s'.(i).E.kind
            && Float.abs (e.E.time_s -. s'.(i).E.time_s) < 1e-3))
        s)

let schedule_csv_errors () =
  let path = Filename.temp_file "sched" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "time_s,event,args\n# comment\n10.0,vho_down,1\nnot-a-record\n";
      close_out oc;
      Alcotest.check_raises "line-numbered error"
        (Invalid_argument "Event.load_csv: bad record on line 4") (fun () ->
          ignore (E.load_csv path));
      let oc = open_out path in
      output_string oc "5.0,link_down,99\n";
      close_out oc;
      Alcotest.check_raises "bounds-checked link"
        (Invalid_argument "Event.validate: link 99 outside [0, 8)") (fun () ->
          ignore (E.load_csv ~n_vhos:4 ~n_links:8 path)))

let generator_deterministic () =
  let p = E.default_gen_params ~n_vhos:10 ~n_links:24 ~horizon_s:86_400.0 ~seed:9 in
  let a = E.generate p and b = E.generate p in
  Alcotest.(check int) "pair count" (2 * (p.E.vho_outages + p.E.link_outages + p.E.surges))
    (E.length a);
  Alcotest.(check bool) "same schedule" true (a = b);
  Array.iter
    (fun e ->
      Alcotest.(check bool) "within horizon" true
        (e.E.time_s >= 0.0 && e.E.time_s <= 86_400.0))
    a;
  let c = E.generate { p with E.seed = 10 } in
  Alcotest.(check bool) "seed changes schedule" true (a <> c)

(* ---------- state ---------- *)

let state_advance () =
  let s =
    E.create
      [
        ev 10.0 (E.Vho_down 1);
        ev 20.0 (E.Surge_start { vho = 0; factor = 2.0 });
        ev 25.0 (E.Surge_start { vho = 0; factor = 3.0 });
        ev 30.0 (E.Vho_up 1);
        ev 40.0 (E.Surge_end 0);
      ]
  in
  let st = Vod_resil.State.create ~n_vhos:2 ~n_links:2 s in
  Alcotest.(check bool) "initially up" true (Vod_resil.State.vho_up st 1);
  let n = Vod_resil.State.advance st ~now:15.0 ~on_event:(fun _ -> ()) in
  Alcotest.(check int) "one event" 1 n;
  Alcotest.(check bool) "down" false (Vod_resil.State.vho_up st 1);
  ignore (Vod_resil.State.advance st ~now:26.0 ~on_event:(fun _ -> ()) : int);
  Alcotest.(check (float 1e-9)) "surge last-writer-wins" 3.0 (Vod_resil.State.surge st 0);
  Alcotest.(check int) "pending" 2 (Vod_resil.State.pending st);
  ignore (Vod_resil.State.advance st ~now:100.0 ~on_event:(fun _ -> ()) : int);
  Alcotest.(check bool) "up again" true (Vod_resil.State.vho_up st 1);
  Alcotest.(check (float 1e-9)) "surge cleared" 1.0 (Vod_resil.State.surge st 0)

(* ---------- capacity ---------- *)

let capacity_admission () =
  let c = Vod_resil.Capacity.create ~capacity_mbps:[| 10.0; 10.0 |] () in
  Alcotest.(check bool) "not unbounded" false (Vod_resil.Capacity.unbounded c);
  Alcotest.(check bool) "fits empty" true
    (Vod_resil.Capacity.fits c ~links:[| 0; 1 |] ~rate_mbps:8.0);
  Vod_resil.Capacity.reserve c ~links:[| 0; 1 |] ~rate_mbps:8.0 ~until_s:100.0 ~now:0.0;
  Alcotest.(check bool) "second stream blocked" false
    (Vod_resil.Capacity.fits c ~links:[| 0 |] ~rate_mbps:8.0);
  Alcotest.(check bool) "small one fits" true
    (Vod_resil.Capacity.fits c ~links:[| 0 |] ~rate_mbps:2.0);
  (* After the stream ends the bandwidth comes back. *)
  Vod_resil.Capacity.expire c ~now:100.0;
  Alcotest.(check bool) "released" true
    (Vod_resil.Capacity.fits c ~links:[| 0; 1 |] ~rate_mbps:8.0);
  Alcotest.(check (float 1e-9)) "load zero" 0.0 (Vod_resil.Capacity.load c 0);
  let u = Vod_resil.Capacity.create ~capacity_mbps:[| Float.infinity |] () in
  Alcotest.(check bool) "unbounded" true (Vod_resil.Capacity.unbounded u);
  Alcotest.(check bool) "always fits" true
    (Vod_resil.Capacity.fits u ~links:[| 0 |] ~rate_mbps:1e12)

let capacity_saturation () =
  let c =
    Vod_resil.Capacity.create ~capacity_mbps:[| 10.0 |] ~saturation_frac:0.9 ()
  in
  (* 9.5/10 >= 0.9 saturated from t=0 until expiry at t=50. *)
  Vod_resil.Capacity.reserve c ~links:[| 0 |] ~rate_mbps:9.5 ~until_s:50.0 ~now:0.0;
  Vod_resil.Capacity.expire c ~now:80.0;
  Vod_resil.Capacity.finish c ~now:80.0;
  Alcotest.(check (float 1e-6)) "saturated 50s" 50.0
    (Vod_resil.Capacity.saturated_seconds c)

(* ---------- masked paths ---------- *)

let line4 () =
  Vod_topology.Graph.create ~name:"line4" ~n:4
    ~edges:[ (0, 1); (1, 2); (2, 3) ]
    ~populations:[| 1.0; 1.0; 1.0; 1.0 |]

let ring4 () =
  Vod_topology.Graph.create ~name:"ring4" ~n:4
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
    ~populations:[| 2.0; 1.0; 1.0; 1.0 |]

(* Directed link id from a to b. *)
let link_between g a b =
  let found = ref (-1) in
  Array.iter
    (fun lid ->
      if (Vod_topology.Graph.link g lid).Vod_topology.Graph.dst = b then found := lid)
    g.Vod_topology.Graph.out_links.(a);
  if !found < 0 then failwith "no such link";
  !found

let masked_paths () =
  let g = ring4 () in
  let all_up = Array.make (Vod_topology.Graph.n_links g) true in
  let masked = Vod_topology.Paths.compute_masked g ~link_up:all_up in
  let base = Vod_topology.Paths.compute g in
  for s = 0 to 3 do
    for d = 0 to 3 do
      Alcotest.(check int)
        (Printf.sprintf "hops %d->%d" s d)
        (Vod_topology.Paths.hops base ~src:s ~dst:d)
        (Vod_topology.Paths.hops masked ~src:s ~dst:d);
      Alcotest.(check bool) "same links" true
        (Vod_topology.Paths.path_links base ~src:s ~dst:d
        = Vod_topology.Paths.path_links masked ~src:s ~dst:d)
    done
  done;
  (* Kill 1->0: traffic from 1 to 0 must go the long way round. *)
  let up = Array.make (Vod_topology.Graph.n_links g) true in
  up.(link_between g 1 0) <- false;
  let m = Vod_topology.Paths.compute_masked g ~link_up:up in
  Alcotest.(check int) "rerouted 1->0" 3 (Vod_topology.Paths.hops m ~src:1 ~dst:0);
  Alcotest.(check bool) "still reachable" true
    (Vod_topology.Paths.reachable m ~src:1 ~dst:0);
  (* A severed line end becomes unreachable, and compute would raise. *)
  let gl = line4 () in
  let upl = Array.make (Vod_topology.Graph.n_links gl) true in
  upl.(link_between gl 0 1) <- false;
  let ml = Vod_topology.Paths.compute_masked gl ~link_up:upl in
  Alcotest.(check bool) "unreachable" false
    (Vod_topology.Paths.reachable ml ~src:0 ~dst:1);
  Alcotest.(check bool) "reverse unaffected" true
    (Vod_topology.Paths.reachable ml ~src:1 ~dst:0)

(* ---------- router ---------- *)

let router_world ?(capacity = Float.infinity) ?origin schedule =
  let g = ring4 () in
  let paths = Vod_topology.Paths.compute g in
  let state =
    Vod_resil.State.create ~n_vhos:4 ~n_links:(Vod_topology.Graph.n_links g)
      (E.create schedule)
  in
  let cap =
    Vod_resil.Capacity.create
      ~capacity_mbps:(Array.make (Vod_topology.Graph.n_links g) capacity)
      ()
  in
  let router = Vod_resil.Router.create ~graph:g ~paths ~state ~capacity:cap ?origin () in
  (g, state, router)

let router_failover_to_alive () =
  let _, state, router = router_world [ ev 0.0 (E.Vho_down 1) ] in
  ignore (Vod_resil.State.advance state ~now:0.0 ~on_event:(fun _ -> ()) : int);
  match
    Vod_resil.Router.route router ~holders:[ 3; 1 ] ~dst:0 ~default:1
      ~rate_mbps:4.0 ~until_s:100.0 ~now:0.0
  with
  | Vod_resil.Router.Served s ->
      Alcotest.(check int) "served by 3" 3 s.Vod_resil.Router.server;
      Alcotest.(check bool) "failover" true s.Vod_resil.Router.failover;
      Alcotest.(check int) "one hop on the ring" 1 s.Vod_resil.Router.hops;
      Alcotest.(check int) "no extra hops (default dead)" 0
        s.Vod_resil.Router.extra_hops;
      Alcotest.(check bool) "not origin" false s.Vod_resil.Router.via_origin
  | Vod_resil.Router.Rejected _ -> Alcotest.fail "expected Served"

let router_capacity_fallback () =
  let _, _, router = router_world ~capacity:10.0 [] in
  (* First stream fills 1->0; the second must fail over to the other
     holder even though VHO 1 is alive. *)
  (match
     Vod_resil.Router.route router ~holders:[ 1; 3 ] ~dst:0 ~default:1
       ~rate_mbps:8.0 ~until_s:100.0 ~now:0.0
   with
  | Vod_resil.Router.Served s ->
      Alcotest.(check int) "default first" 1 s.Vod_resil.Router.server
  | Vod_resil.Router.Rejected _ -> Alcotest.fail "first must be served");
  (match
     Vod_resil.Router.route router ~holders:[ 1; 3 ] ~dst:0 ~default:1
       ~rate_mbps:8.0 ~until_s:100.0 ~now:0.0
   with
  | Vod_resil.Router.Served s ->
      Alcotest.(check int) "fallback holder" 3 s.Vod_resil.Router.server;
      Alcotest.(check bool) "failover" true s.Vod_resil.Router.failover;
      Alcotest.(check int) "same hop count" 0 s.Vod_resil.Router.extra_hops
  | Vod_resil.Router.Rejected _ -> Alcotest.fail "second must fail over");
  (* Both 1-hop paths are now full: a third stream has nowhere to go. *)
  match
    Vod_resil.Router.route router ~holders:[ 1; 3 ] ~dst:0 ~default:1
      ~rate_mbps:8.0 ~until_s:100.0 ~now:0.0
  with
  | Vod_resil.Router.Rejected r ->
      Alcotest.(check string) "no capacity" "no_capacity"
        (Vod_resil.Router.reject_reason_to_string r)
  | Vod_resil.Router.Served _ -> Alcotest.fail "third must be rejected"

let router_origin_and_reasons () =
  (* dst down: rejected before anything else. *)
  let _, st, r = router_world [ ev 0.0 (E.Vho_down 0) ] in
  ignore (Vod_resil.State.advance st ~now:0.0 ~on_event:(fun _ -> ()) : int);
  (match
     Vod_resil.Router.route r ~holders:[ 1 ] ~dst:0 ~default:1 ~rate_mbps:1.0
       ~until_s:10.0 ~now:0.0
   with
  | Vod_resil.Router.Rejected Vod_resil.Router.Vho_down -> ()
  | _ -> Alcotest.fail "expected Vho_down");
  (* no holders anywhere, fleet's default dead, no origin: No_replica. *)
  let _, st, r = router_world [ ev 0.0 (E.Vho_down 1) ] in
  ignore (Vod_resil.State.advance st ~now:0.0 ~on_event:(fun _ -> ()) : int);
  (match
     Vod_resil.Router.route r ~holders:[] ~dst:0 ~default:1 ~rate_mbps:1.0
       ~until_s:10.0 ~now:0.0
   with
  | Vod_resil.Router.Rejected Vod_resil.Router.No_replica -> ()
  | _ -> Alcotest.fail "expected No_replica");
  (* all holders down, no origin: Unreachable. *)
  let _, st, r = router_world [ ev 0.0 (E.Vho_down 1); ev 0.0 (E.Vho_down 2) ] in
  ignore (Vod_resil.State.advance st ~now:0.0 ~on_event:(fun _ -> ()) : int);
  (match
     Vod_resil.Router.route r ~holders:[ 1; 2 ] ~dst:0 ~default:1 ~rate_mbps:1.0
       ~until_s:10.0 ~now:0.0
   with
  | Vod_resil.Router.Rejected Vod_resil.Router.Unreachable -> ()
  | _ -> Alcotest.fail "expected Unreachable");
  (* same, but an origin rescues it. *)
  let _, st, r =
    router_world ~origin:2 [ ev 0.0 (E.Vho_down 1); ev 0.0 (E.Vho_down 3) ]
  in
  ignore (Vod_resil.State.advance st ~now:0.0 ~on_event:(fun _ -> ()) : int);
  match
    Vod_resil.Router.route r ~holders:[ 1; 3 ] ~dst:0 ~default:1 ~rate_mbps:1.0
      ~until_s:10.0 ~now:0.0
  with
  | Vod_resil.Router.Served s ->
      Alcotest.(check int) "origin serves" 2 s.Vod_resil.Router.server;
      Alcotest.(check bool) "via origin" true s.Vod_resil.Router.via_origin;
      Alcotest.(check bool) "failover" true s.Vod_resil.Router.failover
  | Vod_resil.Router.Rejected _ -> Alcotest.fail "origin must serve"

(* ---------- playout ---------- *)

let sim_world () =
  let g = ring4 () in
  let paths = Vod_topology.Paths.compute g in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:30 ~days:7 ~seed:3)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:g.Vod_topology.Graph.populations ~mean_daily_requests:400.0
         ~seed:4)
  in
  (g, paths, catalog, trace)

let lru_fleet paths catalog =
  Vod_cache.Fleet.random_single ~paths ~catalog
    ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5

(* The acceptance property: no faults + unbounded capacity reproduces
   the legacy engine byte-for-byte, including the whole link-load
   matrix. *)
let playout_matches_legacy_sim () =
  let g, paths, catalog, trace = sim_world () in
  let legacy =
    Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet:(lru_fleet paths catalog)
      ~trace ~record_from:(1.0 *. Vod_workload.Trace.seconds_per_day) ()
  in
  let resil, windows =
    Vod_resil.Playout.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace
      ~record_from:(1.0 *. Vod_workload.Trace.seconds_per_day)
      (Vod_resil.Playout.config ())
  in
  Alcotest.(check int) "requests" legacy.M.requests resil.M.requests;
  Alcotest.(check int) "local" legacy.M.local_served resil.M.local_served;
  Alcotest.(check int) "hits" legacy.M.cache_hits resil.M.cache_hits;
  Alcotest.(check int) "remote" legacy.M.remote_served resil.M.remote_served;
  Alcotest.(check int) "not cachable" legacy.M.not_cachable resil.M.not_cachable;
  Alcotest.(check bool) "gb_hops bit-equal" true
    (legacy.M.total_gb_hops = resil.M.total_gb_hops);
  Alcotest.(check bool) "gb_remote bit-equal" true
    (legacy.M.total_gb_remote = resil.M.total_gb_remote);
  Alcotest.(check bool) "per-vho requests" true
    (legacy.M.per_vho_requests = resil.M.per_vho_requests);
  Alcotest.(check bool) "per-vho local" true
    (legacy.M.per_vho_local = resil.M.per_vho_local);
  Alcotest.(check bool) "link-load matrix byte-equal" true
    (legacy.M.link_load = resil.M.link_load);
  Alcotest.(check int) "no rejections" 0 resil.M.deg.M.rejections;
  Alcotest.(check int) "no failovers" 0 resil.M.deg.M.failovers;
  Alcotest.(check (float 1e-9)) "no saturation" 0.0 resil.M.deg.M.link_saturated_s;
  (* One window spanning the whole playout, closed by the horizon. *)
  match windows with
  | [ w ] ->
      Alcotest.(check string) "single start window" "start" w.Vod_resil.Playout.trigger;
      Alcotest.(check int) "window counts recorded requests" legacy.M.requests
        w.Vod_resil.Playout.requests
  | ws -> Alcotest.fail (Printf.sprintf "expected 1 window, got %d" (List.length ws))

let playout_outage_conservation () =
  let g, paths, catalog, trace = sim_world () in
  let horizon = float_of_int trace.Vod_workload.Trace.days *. 86_400.0 in
  let schedule =
    E.create
      [ ev (0.3 *. horizon) (E.Vho_down 0); ev (0.6 *. horizon) (E.Vho_up 0) ]
  in
  let m, windows =
    Vod_resil.Playout.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace
      (Vod_resil.Playout.config ~schedule ())
  in
  let deg = m.M.deg in
  Alcotest.(check int) "every request counted"
    (Vod_workload.Trace.length trace) m.M.requests;
  Alcotest.(check int) "local + remote + rejected = total" m.M.requests
    (m.M.local_served + m.M.remote_served + deg.M.rejections);
  Alcotest.(check int) "reject reasons partition" deg.M.rejections
    (deg.M.rejected_vho_down + deg.M.rejected_no_replica
    + deg.M.rejected_unreachable + deg.M.rejected_no_capacity);
  Alcotest.(check bool) "outage rejected something" true (deg.M.rejections > 0);
  (* VHO 0 is the biggest metro: its own requests are the bulk. *)
  Alcotest.(check bool) "dominated by vho_down" true
    (deg.M.rejected_vho_down > 0);
  (* Windows partition the recorded requests, and only the outage window
     rejects. *)
  Alcotest.(check int) "3 windows" 3 (List.length windows);
  Alcotest.(check int) "window requests sum" m.M.requests
    (List.fold_left
       (fun acc (w : Vod_resil.Playout.window) -> acc + w.Vod_resil.Playout.requests)
       0 windows);
  (match windows with
  | [ before; down; after ] ->
      Alcotest.(check int) "clean before" 0 before.Vod_resil.Playout.rejections;
      Alcotest.(check bool) "rejections in outage window" true
        (down.Vod_resil.Playout.rejections > 0);
      Alcotest.(check string) "trigger" "vho_down,0" down.Vod_resil.Playout.trigger;
      Alcotest.(check int) "clean after" 0 after.Vod_resil.Playout.rejections
  | _ -> Alcotest.fail "bad windows");
  (* Per-VHO counters still partition the totals (rejections included). *)
  Alcotest.(check int) "per-vho requests sum" m.M.requests
    (Array.fold_left ( + ) 0 m.M.per_vho_requests)

let playout_surge_scales_load () =
  let g, paths, catalog, trace = sim_world () in
  let horizon = float_of_int trace.Vod_workload.Trace.days *. 86_400.0 in
  let base, _ =
    Vod_resil.Playout.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace (Vod_resil.Playout.config ())
  in
  (* Everyone surging 2x for the whole run: serving decisions are
     unchanged (caches see the same touches), but every remote stream
     carries twice the rate. *)
  let schedule =
    E.create
      (List.concat_map
         (fun v ->
           [
             ev 0.0 (E.Surge_start { vho = v; factor = 2.0 });
             ev horizon (E.Surge_end v);
           ])
         [ 0; 1; 2; 3 ])
  in
  let surged, _ =
    Vod_resil.Playout.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace
      (Vod_resil.Playout.config ~schedule ())
  in
  Alcotest.(check int) "same serving split" base.M.local_served
    surged.M.local_served;
  Alcotest.(check (float 1e-6)) "transfer doubled"
    (2.0 *. base.M.total_gb_remote) surged.M.total_gb_remote;
  Alcotest.(check (float 1e-6)) "peak doubled"
    (2.0 *. M.max_link_mbps base) (M.max_link_mbps surged)

let pipeline_resil_wiring () =
  let g = ring4 () in
  let sc =
    Vod_core.Scenario.make ~days:4 ~requests_per_video_per_day:6.0 ~seed:12
      ~graph:g ~n_videos:30 ()
  in
  let base_cfg =
    Vod_core.Pipeline.default_config ~scenario:sc
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:2.0)
      ~link_capacity_mbps:1000.0
  in
  let no_faults =
    Vod_core.Pipeline.run
      { base_cfg with Vod_core.Pipeline.warmup_days = 1 }
      (Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru)
  in
  Alcotest.(check bool) "no windows without resil" true
    (no_faults.Vod_core.Pipeline.resil_windows = []);
  let faulted =
    Vod_core.Pipeline.run
      {
        base_cfg with
        Vod_core.Pipeline.warmup_days = 1;
        Vod_core.Pipeline.resil =
          Some
            (Vod_resil.Playout.config
               ~schedule:(Vod_core.Scenario.single_vho_outage sc) ());
      }
      (Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru)
  in
  Alcotest.(check int) "outage + recovery + end windows" 3
    (List.length faulted.Vod_core.Pipeline.resil_windows);
  let m = faulted.Vod_core.Pipeline.metrics in
  Alcotest.(check bool) "rejections recorded" true (m.M.deg.M.rejections > 0);
  Alcotest.(check bool) "rate in (0,1)" true
    (M.rejection_rate m > 0.0 && M.rejection_rate m < 1.0)

let canned_scenarios_validate () =
  let g = ring4 () in
  let sc =
    Vod_core.Scenario.make ~days:4 ~requests_per_video_per_day:2.0 ~seed:12
      ~graph:g ~n_videos:10 ()
  in
  let n_vhos = Vod_topology.Graph.n_nodes g in
  let n_links = Vod_topology.Graph.n_links g in
  List.iter
    (fun schedule ->
      E.validate schedule ~n_vhos ~n_links;
      Alcotest.(check bool) "non-empty" true (E.length schedule > 0);
      Array.iter
        (fun e ->
          Alcotest.(check bool) "inside trace" true
            (e.E.time_s >= 0.0 && e.E.time_s <= 4.0 *. 86_400.0))
        schedule)
    [
      Vod_core.Scenario.single_vho_outage sc;
      Vod_core.Scenario.correlated_outage sc;
      Vod_core.Scenario.flash_crowd sc;
    ];
  (* The correlated outage touches both directions of the shared edge. *)
  let corr = Vod_core.Scenario.correlated_outage sc in
  let link_downs =
    Array.to_list corr
    |> List.filter_map (fun e ->
           match e.E.kind with E.Link_down l -> Some l | _ -> None)
  in
  Alcotest.(check int) "two directed links" 2 (List.length link_downs);
  match link_downs with
  | [ a; b ] ->
      Alcotest.(check int) "opposite directions" a
        (Vod_topology.Graph.reverse_link g b)
  | _ -> Alcotest.fail "expected exactly two link_down events"

(* ---------- exceptional-path settlement ---------- *)

(* Regression test for the missing-protect defect vodlint's protocol
   analysis surfaced in Playout.run: when [play] raises mid-run (here an
   out-of-range VHO rejected by Metrics.validate_vhos — the record
   literal bypasses Trace.create's validation), the Fun.protect must
   still settle the capacity ledger, so [finish]'s saturation gauge is
   published on the exceptional path too. *)
let playout_settles_on_raise () =
  let g, paths, catalog, trace = sim_world () in
  let bad = { Vod_workload.Trace.time_s = 0.0; vho = 99; video = 0 } in
  let trace =
    {
      trace with
      Vod_workload.Trace.requests =
        Array.append [| bad |] trace.Vod_workload.Trace.requests;
    }
  in
  let reg = Vod_obs.Obs.create () in
  let raised = ref false in
  (try
     Vod_obs.Obs.with_run reg (fun () ->
         ignore
           (Vod_resil.Playout.run ~graph:g ~paths ~catalog
              ~fleet:(lru_fleet paths catalog)
              ~trace
              (Vod_resil.Playout.config ())))
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "play raised" true !raised;
  match Vod_obs.Obs.read reg "resil/link_saturated_seconds" with
  | Some (Vod_obs.Obs.Gauge _) -> ()
  | _ ->
      Alcotest.fail
        "resil/link_saturated_seconds must be published even when play raises"

let suite =
  [
    Alcotest.test_case "schedule sorting" `Quick schedule_sorting;
    Alcotest.test_case "schedule CSV round-trip" `Quick schedule_csv_roundtrip;
    Alcotest.test_case "schedule CSV errors" `Quick schedule_csv_errors;
    Alcotest.test_case "generator deterministic" `Quick generator_deterministic;
    Alcotest.test_case "state advance" `Quick state_advance;
    Alcotest.test_case "capacity admission" `Quick capacity_admission;
    Alcotest.test_case "capacity saturation" `Quick capacity_saturation;
    Alcotest.test_case "masked paths" `Quick masked_paths;
    Alcotest.test_case "router failover to alive" `Quick router_failover_to_alive;
    Alcotest.test_case "router capacity fallback" `Quick router_capacity_fallback;
    Alcotest.test_case "router origin and reasons" `Quick router_origin_and_reasons;
    Alcotest.test_case "playout matches legacy sim" `Quick playout_matches_legacy_sim;
    Alcotest.test_case "outage conservation + windows" `Quick playout_outage_conservation;
    Alcotest.test_case "surge scales load" `Quick playout_surge_scales_load;
    Alcotest.test_case "pipeline resil wiring" `Quick pipeline_resil_wiring;
    Alcotest.test_case "canned scenarios validate" `Quick canned_scenarios_validate;
    Alcotest.test_case "playout settles ledger on raise" `Quick
      playout_settles_on_raise;
  ]
