let () =
  Alcotest.run "vodopt"
    [
      ("util", Test_util.suite);
      ("topology", Test_topology.suite);
      ("workload", Test_workload.suite);
      ("workload2", Test_workload2.suite);
      ("lp", Test_lp.suite);
      ("facility", Test_facility.suite);
      ("epf", Test_epf.suite);
      ("placement", Test_placement.suite);
      ("decomp", Test_decomp.suite);
      ("cache", Test_cache.suite);
      ("cache2", Test_cache2.suite);
      ("sim", Test_sim.suite);
      ("resil", Test_resil.suite);
      ("serve", Test_serve.suite);
      ("soa", Test_soa.suite);
      ("core", Test_core.suite);
      ("properties", Test_props.suite);
      ("edge", Test_edge.suite);
      ("chunking+lrfu", Test_chunking.suite);
      ("io", Test_io.suite);
      ("window-refine", Test_refine.suite);
      ("obs", Test_obs.suite);
      ("lint", Test_lint.suite);
      ("proto", Test_proto.suite);
    ]
