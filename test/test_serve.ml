(* Tests for lib/serve: the unified serving loop must reproduce both
   legacy engines byte-for-byte (fault-free ≡ Vod_sim.Sim, faulted ≡
   Vod_resil.Playout), the online daemon with an infinite budget at
   day-aligned boundaries must be bit-identical to the batch pipeline at
   update_days = 1, and the migration-budget restriction must respect
   its budget while keeping per-video copy sets atomic. *)

module E = Vod_resil.Event
module M = Vod_sim.Metrics
module P = Vod_core.Pipeline

let ev time_s kind = { E.time_s; kind }

(* ---------- loop vs legacy engines ---------- *)

let ring4 () =
  Vod_topology.Graph.create ~name:"ring4" ~n:4
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
    ~populations:[| 2.0; 1.0; 1.0; 1.0 |]

let sim_world () =
  let g = ring4 () in
  let paths = Vod_topology.Paths.compute g in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:30 ~days:7 ~seed:3)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:g.Vod_topology.Graph.populations ~mean_daily_requests:400.0
         ~seed:4)
  in
  (g, paths, catalog, trace)

let lru_fleet paths catalog =
  Vod_cache.Fleet.random_single ~paths ~catalog
    ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5

let check_metrics_equal (a : M.t) (b : M.t) =
  Alcotest.(check int) "requests" a.M.requests b.M.requests;
  Alcotest.(check int) "local" a.M.local_served b.M.local_served;
  Alcotest.(check int) "hits" a.M.cache_hits b.M.cache_hits;
  Alcotest.(check int) "remote" a.M.remote_served b.M.remote_served;
  Alcotest.(check int) "not cachable" a.M.not_cachable b.M.not_cachable;
  Alcotest.(check bool) "gb_hops bit-equal" true
    (a.M.total_gb_hops = b.M.total_gb_hops);
  Alcotest.(check bool) "gb_remote bit-equal" true
    (a.M.total_gb_remote = b.M.total_gb_remote);
  Alcotest.(check bool) "per-vho requests" true
    (a.M.per_vho_requests = b.M.per_vho_requests);
  Alcotest.(check bool) "per-vho local" true (a.M.per_vho_local = b.M.per_vho_local);
  Alcotest.(check bool) "link-load matrix byte-equal" true
    (a.M.link_load = b.M.link_load)

(* Fault-free: the loop's direct configuration is the legacy engine. *)
let loop_matches_legacy_sim () =
  let g, paths, catalog, trace = sim_world () in
  let record_from = 1.0 *. Vod_workload.Trace.seconds_per_day in
  let legacy =
    Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet:(lru_fleet paths catalog)
      ~trace ~record_from ()
  in
  let unified, windows =
    Vod_serve.Loop.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace ~record_from ()
  in
  check_metrics_equal legacy unified;
  Alcotest.(check int) "no rejections" 0 unified.M.deg.M.rejections;
  Alcotest.(check bool) "no windows in direct mode" true (windows = [])

(* Faulted: the loop's failover configuration is Vod_resil.Playout —
   same metrics, same degradation counters, same event windows. *)
let loop_matches_resil_playout () =
  let g, paths, catalog, trace = sim_world () in
  let horizon = float_of_int trace.Vod_workload.Trace.days *. 86_400.0 in
  let schedule =
    E.create
      [
        ev (0.3 *. horizon) (E.Vho_down 0);
        ev (0.5 *. horizon) (E.Surge_start { vho = 1; factor = 2.0 });
        ev (0.6 *. horizon) (E.Vho_up 0);
        ev (0.7 *. horizon) (E.Surge_end 1);
      ]
  in
  let config =
    Vod_resil.Playout.config ~schedule ~link_capacity_mbps:120.0 ~origin:2 ()
  in
  let resil, resil_windows =
    Vod_resil.Playout.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace config
  in
  let unified, unified_windows =
    Vod_serve.Loop.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace ~resil:config ()
  in
  check_metrics_equal resil unified;
  let da = resil.M.deg and db = unified.M.deg in
  Alcotest.(check int) "rejections" da.M.rejections db.M.rejections;
  Alcotest.(check int) "vho down" da.M.rejected_vho_down db.M.rejected_vho_down;
  Alcotest.(check int) "no replica" da.M.rejected_no_replica db.M.rejected_no_replica;
  Alcotest.(check int) "unreachable" da.M.rejected_unreachable
    db.M.rejected_unreachable;
  Alcotest.(check int) "no capacity" da.M.rejected_no_capacity
    db.M.rejected_no_capacity;
  Alcotest.(check int) "failovers" da.M.failovers db.M.failovers;
  Alcotest.(check int) "extra hops" da.M.failover_extra_hops
    db.M.failover_extra_hops;
  Alcotest.(check int) "origin served" da.M.origin_served db.M.origin_served;
  Alcotest.(check bool) "saturation bit-equal" true
    (da.M.link_saturated_s = db.M.link_saturated_s);
  Alcotest.(check bool) "faulted something" true (da.M.rejections > 0);
  Alcotest.(check int) "window count"
    (List.length resil_windows)
    (List.length unified_windows);
  List.iter2
    (fun (a : Vod_resil.Playout.window) (b : Vod_resil.Playout.window) ->
      Alcotest.(check string) "trigger" a.Vod_resil.Playout.trigger
        b.Vod_resil.Playout.trigger;
      Alcotest.(check int) "window requests" a.Vod_resil.Playout.requests
        b.Vod_resil.Playout.requests;
      Alcotest.(check int) "window rejections" a.Vod_resil.Playout.rejections
        b.Vod_resil.Playout.rejections;
      Alcotest.(check int) "window failovers" a.Vod_resil.Playout.failovers
        b.Vod_resil.Playout.failovers;
      Alcotest.(check bool) "window bounds bit-equal" true
        (a.Vod_resil.Playout.t0_s = b.Vod_resil.Playout.t0_s
        && a.Vod_resil.Playout.t1_s = b.Vod_resil.Playout.t1_s))
    resil_windows unified_windows

(* ---------- daemon vs batch pipeline ---------- *)

let daemon_scenario () =
  let graph =
    Vod_topology.Graph.create ~name:"ring6" ~n:6
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3) ]
      ~populations:[| 3.0; 1.0; 2.0; 1.0; 1.0; 1.0 |]
  in
  Vod_core.Scenario.make ~days:10 ~requests_per_video_per_day:8.0 ~seed:13
    ~graph ~n_videos:40 ()

let fast_mip =
  {
    P.default_mip with
    P.engine = { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 15 };
  }

(* The degeneration contract: infinite budget + day-aligned boundaries +
   cold solves = the batch pipeline at update_days = 1, bit for bit. *)
let daemon_matches_daily_batch () =
  let sc = daemon_scenario () in
  let cfg =
    {
      (P.default_config ~scenario:sc
         ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:2.5)
         ~link_capacity_mbps:500.0)
      with
      P.warmup_days = 2;
    }
  in
  let mip = { fast_mip with P.update_days = 1 } in
  let batch = P.run cfg (P.Mip mip) in
  let daemon_cfg =
    {
      Vod_serve.Daemon.default_config with
      Vod_serve.Daemon.estimator = mip.P.estimator;
      Vod_serve.Daemon.update_every_s = Vod_workload.Trace.seconds_per_day;
      Vod_serve.Daemon.warm_start = false;
      Vod_serve.Daemon.react_to_faults = false;
    }
  in
  let d =
    Vod_serve.Daemon.run ~graph:sc.Vod_core.Scenario.graph
      ~paths:sc.Vod_core.Scenario.paths ~catalog:sc.Vod_core.Scenario.catalog
      ~trace:sc.Vod_core.Scenario.trace
      ~problem:(P.replan_problem cfg mip)
      ~bin_s:cfg.P.bin_s
      ~record_from:
        (float_of_int cfg.P.warmup_days *. Vod_workload.Trace.seconds_per_day)
      daemon_cfg
  in
  check_metrics_equal batch.P.metrics d.Vod_serve.Daemon.metrics;
  Alcotest.(check int) "replans = solves"
    (List.length batch.P.solves)
    (List.length d.Vod_serve.Daemon.replans);
  Alcotest.(check int) "nothing deferred" 0 (Vod_serve.Daemon.total_deferred d);
  (match P.last_solution batch with
  | None -> Alcotest.fail "batch MIP must have a solution"
  | Some sol ->
      Alcotest.(check bool) "final placement identical" true
        (sol.Vod_placement.Solution.stored
        = d.Vod_serve.Daemon.final.Vod_placement.Solution.stored);
      Alcotest.(check bool) "final objective bit-equal" true
        (sol.Vod_placement.Solution.objective
        = d.Vod_serve.Daemon.final.Vod_placement.Solution.objective));
  (* The daemon's per-replan GB equals the batch migration report (same
     per-copy sizes summed in a different association order, so equal to
     rounding only). *)
  List.iter2
    (fun (_, gb) (r : Vod_serve.Daemon.replan) ->
      Alcotest.(check (float 1e-6)) "migration GB" gb r.Vod_serve.Daemon.moved_gb)
    batch.P.migrations
    (List.tl d.Vod_serve.Daemon.replans)

(* ---------- budget restriction ---------- *)

let two_placements () =
  let sc = daemon_scenario () in
  let cfg =
    P.default_config ~scenario:sc
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:2.5)
      ~link_capacity_mbps:500.0
  in
  let pb = P.replan_problem cfg fast_mip in
  let week day0 =
    let requests =
      Vod_workload.Trace.between_days sc.Vod_core.Scenario.trace ~day_lo:day0
        ~day_hi:(day0 + 7)
    in
    Vod_serve.Replan.demand pb
      ~t0_s:(float_of_int day0 *. Vod_workload.Trace.seconds_per_day)
      requests
  in
  let d0 = week 0 and d3 = week 3 in
  let incumbent =
    (Vod_serve.Replan.solve pb d0).Vod_placement.Solve.solution
  in
  let target = (Vod_serve.Replan.solve pb d3).Vod_placement.Solve.solution in
  let n = Vod_workload.Catalog.n_videos sc.Vod_core.Scenario.catalog in
  let priority = Array.init n (Vod_workload.Demand.video_requests d3) in
  (sc.Vod_core.Scenario.catalog, incumbent, target, priority)

let same_set (a : int array) (b : int array) =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

let restrict_budget_properties () =
  let catalog, incumbent, target, priority = two_placements () in
  let restrict budget_gb =
    Vod_serve.Replan.restrict ~catalog ~incumbent ~target ~priority ~budget_gb
  in
  let all = restrict Float.infinity in
  Alcotest.(check bool) "infinite budget returns the target itself" true
    (all.Vod_serve.Replan.solution == target);
  Alcotest.(check int) "nothing deferred" 0 all.Vod_serve.Replan.deferred;
  Alcotest.(check bool) "placements actually differ" true
    (all.Vod_serve.Replan.applied > 0 && all.Vod_serve.Replan.moved_gb > 0.0);
  let none = restrict 0.0 in
  Alcotest.(check (float 1e-9)) "zero budget moves nothing" 0.0
    none.Vod_serve.Replan.moved_gb;
  Alcotest.(check int) "zero budget applies nothing" 0
    none.Vod_serve.Replan.applied;
  Alcotest.(check int) "zero budget defers every costly video"
    all.Vod_serve.Replan.applied none.Vod_serve.Replan.deferred;
  let half = restrict (all.Vod_serve.Replan.moved_gb /. 2.0) in
  Alcotest.(check bool) "half budget respected" true
    (half.Vod_serve.Replan.moved_gb <= all.Vod_serve.Replan.moved_gb /. 2.0);
  Alcotest.(check int) "applied + deferred conserved"
    all.Vod_serve.Replan.applied
    (half.Vod_serve.Replan.applied + half.Vod_serve.Replan.deferred);
  Alcotest.(check bool) "budget binds at half" true
    (half.Vod_serve.Replan.deferred > 0);
  (* Per-video atomicity: every copy set in the hybrid is either the
     incumbent's or the target's, never a mixture. *)
  Array.iteri
    (fun video hybrid ->
      Alcotest.(check bool)
        (Printf.sprintf "video %d atomic" video)
        true
        (same_set hybrid incumbent.Vod_placement.Solution.stored.(video)
        || same_set hybrid target.Vod_placement.Solution.stored.(video)))
    half.Vod_serve.Replan.solution.Vod_placement.Solution.stored

(* ---------- sliding-window estimation ---------- *)

(* predict_at at a day-aligned instant is exactly the batch predict. *)
let predict_at_matches_predict () =
  let sc = daemon_scenario () in
  let catalog = sc.Vod_core.Scenario.catalog in
  let trace = sc.Vod_core.Scenario.trace in
  List.iter
    (fun strategy ->
      let batch =
        Vod_workload.Estimator.predict strategy catalog trace ~week_start:7
      in
      let online =
        Vod_workload.Estimator.predict_at strategy catalog trace
          ~t0_s:(7.0 *. Vod_workload.Trace.seconds_per_day)
      in
      Alcotest.(check int)
        (Vod_workload.Estimator.name strategy ^ " count")
        (Array.length batch) (Array.length online);
      Alcotest.(check bool)
        (Vod_workload.Estimator.name strategy ^ " requests bit-equal")
        true (batch = online))
    [
      Vod_workload.Estimator.Perfect;
      Vod_workload.Estimator.History_only;
      Vod_workload.Estimator.Series_blockbuster;
    ]

(* Daemon boundary schedule: periodic ticks, fault merging, dedupe. *)
let daemon_boundaries () =
  let day = Vod_workload.Trace.seconds_per_day in
  let cfg =
    {
      Vod_serve.Daemon.default_config with
      Vod_serve.Daemon.update_every_s = day;
    }
  in
  let ticks = Vod_serve.Daemon.boundaries cfg ~horizon_s:(10.0 *. day) () in
  Alcotest.(check int) "daily ticks from day 7" 3 (List.length ticks);
  Alcotest.(check bool) "all periodic" true
    (List.for_all (fun (_, lab) -> lab = "periodic") ticks);
  let schedule =
    E.create
      [
        ev (5.0 *. day) (E.Vho_down 0);   (* inside bootstrap week: ignored *)
        ev (7.0 *. day) (E.Vho_up 0);     (* collides with a tick: deduped *)
        ev (8.5 *. day) (E.Vho_down 1);
      ]
  in
  let resil = Vod_resil.Playout.config ~schedule () in
  let merged = Vod_serve.Daemon.boundaries cfg ~resil ~horizon_s:(10.0 *. day) () in
  Alcotest.(check int) "3 ticks + 1 event" 4 (List.length merged);
  let times = List.map fst merged in
  Alcotest.(check bool) "sorted" true
    (List.sort compare times = times);
  Alcotest.(check bool) "event boundary present" true
    (List.mem_assoc (8.5 *. day) merged);
  Alcotest.(check string) "collision keeps the periodic label" "periodic"
    (List.assoc (7.0 *. day) merged);
  let no_react =
    Vod_serve.Daemon.boundaries
      { cfg with Vod_serve.Daemon.react_to_faults = false }
      ~resil ~horizon_s:(10.0 *. day) ()
  in
  Alcotest.(check int) "react off drops events" 3 (List.length no_react)

(* ---------- exceptional-path settlement ---------- *)

(* Regression tests for the missing-protect defects vodlint's protocol
   analysis surfaced: when [play] raises mid-run, the Fun.protect in
   [Loop.run] / [Daemon.run] must still settle the capacity ledger, so
   [finish]'s telemetry is published on the exceptional path too. *)

(* Splice one out-of-range VHO into a valid trace at [time_s];
   Metrics.validate_vhos rejects it inside [play]. The record literal
   deliberately bypasses Trace.create's validation. *)
let bad_vho_trace (trace : Vod_workload.Trace.t) ~time_s =
  let bad = { Vod_workload.Trace.time_s; vho = 99; video = 0 } in
  let requests = Array.append trace.Vod_workload.Trace.requests [| bad |] in
  Array.sort
    (fun (a : Vod_workload.Trace.request) (b : Vod_workload.Trace.request) ->
      Float.compare a.Vod_workload.Trace.time_s b.Vod_workload.Trace.time_s)
    requests;
  { trace with Vod_workload.Trace.requests }

let check_gauge_settled reg name =
  match Vod_obs.Obs.read reg name with
  | Some (Vod_obs.Obs.Gauge _) -> ()
  | _ ->
      Alcotest.fail
        (name ^ " must be published even when play raises mid-run")

(* Loop.finish only publishes the saturation gauge in the failover
   configuration, so run the loop with a (fault-free) resil config. *)
let loop_settles_on_raise () =
  let g, paths, catalog, trace = sim_world () in
  let resil = Vod_resil.Playout.config ~link_capacity_mbps:120.0 ~origin:2 () in
  let reg = Vod_obs.Obs.create () in
  let raised = ref false in
  (try
     Vod_obs.Obs.with_run reg (fun () ->
         ignore
           (Vod_serve.Loop.run ~graph:g ~paths ~catalog
              ~fleet:(lru_fleet paths catalog)
              ~trace:(bad_vho_trace trace ~time_s:0.0)
              ~resil ()))
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "play raised" true !raised;
  check_gauge_settled reg "serve/link_saturated_seconds"

(* The bad request sits at day 9.5 — past the last replan boundary (day
   9), so every demand window and predict slice stays valid and only the
   final play inside the daemon's Fun.protect sees it. *)
let daemon_settles_on_raise () =
  let sc = daemon_scenario () in
  let cfg =
    P.default_config ~scenario:sc
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:2.5)
      ~link_capacity_mbps:500.0
  in
  let trace =
    bad_vho_trace sc.Vod_core.Scenario.trace
      ~time_s:(9.5 *. Vod_workload.Trace.seconds_per_day)
  in
  let resil = Vod_resil.Playout.config ~link_capacity_mbps:500.0 () in
  let daemon_cfg =
    {
      Vod_serve.Daemon.default_config with
      Vod_serve.Daemon.update_every_s = Vod_workload.Trace.seconds_per_day;
      Vod_serve.Daemon.warm_start = false;
      Vod_serve.Daemon.react_to_faults = false;
    }
  in
  let reg = Vod_obs.Obs.create () in
  let raised = ref false in
  (try
     Vod_obs.Obs.with_run reg (fun () ->
         ignore
           (Vod_serve.Daemon.run ~graph:sc.Vod_core.Scenario.graph
              ~paths:sc.Vod_core.Scenario.paths
              ~catalog:sc.Vod_core.Scenario.catalog ~trace
              ~problem:(P.replan_problem cfg fast_mip)
              ~resil daemon_cfg))
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "play raised" true !raised;
  check_gauge_settled reg "serve/link_saturated_seconds"

let suite =
  [
    Alcotest.test_case "loop matches legacy sim" `Quick loop_matches_legacy_sim;
    Alcotest.test_case "loop matches resil playout" `Quick
      loop_matches_resil_playout;
    Alcotest.test_case "daemon matches daily batch" `Slow
      daemon_matches_daily_batch;
    Alcotest.test_case "restrict budget properties" `Slow
      restrict_budget_properties;
    Alcotest.test_case "predict_at matches predict" `Quick
      predict_at_matches_predict;
    Alcotest.test_case "daemon boundaries" `Quick daemon_boundaries;
    Alcotest.test_case "loop settles ledger on raise" `Quick
      loop_settles_on_raise;
    Alcotest.test_case "daemon settles ledger on raise" `Slow
      daemon_settles_on_raise;
  ]
