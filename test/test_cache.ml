(* Tests for caches (LRU/LFU semantics, stream locking, admission
   failure), the replica oracle, and the fleet serving logic — including a
   qcheck model-equivalence test of LRU against a reference list model. *)

module C = Vod_cache.Cache
module RI = Vod_cache.Replica_index
module FL = Vod_cache.Fleet

let lru_eviction_order () =
  let c = C.create ~policy:C.Lru ~capacity_gb:2.0 in
  let ins v t = fst (C.insert c v ~size_gb:1.0 ~now:t ~busy_until:t) in
  Alcotest.(check bool) "insert 1" true (ins 1 0.0);
  Alcotest.(check bool) "insert 2" true (ins 2 1.0);
  (* Touch 1 so 2 becomes LRU. *)
  Alcotest.(check bool) "touch 1" true (C.touch c 1 ~busy_until:2.0);
  let inserted, evicted = C.insert c 3 ~size_gb:1.0 ~now:10.0 ~busy_until:10.0 in
  Alcotest.(check bool) "insert 3" true inserted;
  Alcotest.(check (list int)) "evicted LRU victim" [ 2 ] evicted;
  Alcotest.(check bool) "1 still cached" true (C.mem c 1)

let lfu_eviction_order () =
  let c = C.create ~policy:C.Lfu ~capacity_gb:2.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:0.0);
  ignore (C.insert c 2 ~size_gb:1.0 ~now:1.0 ~busy_until:1.0);
  (* 1 gets two more hits; 2 stays at frequency 1. *)
  ignore (C.touch c 1 ~busy_until:0.0);
  ignore (C.touch c 1 ~busy_until:0.0);
  (* 2 is recent but less frequent: LFU evicts 2. *)
  ignore (C.touch c 2 ~busy_until:0.0);
  let _, evicted = C.insert c 3 ~size_gb:1.0 ~now:10.0 ~busy_until:10.0 in
  Alcotest.(check (list int)) "evicted LFU victim" [ 2 ] evicted

let stream_locking () =
  let c = C.create ~policy:C.Lru ~capacity_gb:1.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:100.0);
  (* At t=50 the only entry is still streaming: not cachable. *)
  let inserted, evicted = C.insert c 2 ~size_gb:1.0 ~now:50.0 ~busy_until:60.0 in
  Alcotest.(check bool) "admission fails while busy" false inserted;
  Alcotest.(check (list int)) "nothing evicted" [] evicted;
  (* After the stream ends the entry is evictable. *)
  let inserted, evicted = C.insert c 2 ~size_gb:1.0 ~now:150.0 ~busy_until:160.0 in
  Alcotest.(check bool) "admission succeeds after" true inserted;
  Alcotest.(check (list int)) "old entry evicted" [ 1 ] evicted

let oversized_video () =
  let c = C.create ~policy:C.Lru ~capacity_gb:1.0 in
  let inserted, _ = C.insert c 1 ~size_gb:2.0 ~now:0.0 ~busy_until:0.0 in
  Alcotest.(check bool) "too big" false inserted

let cache_accounting () =
  let c = C.create ~policy:C.Lru ~capacity_gb:3.0 in
  ignore (C.insert c 1 ~size_gb:1.0 ~now:0.0 ~busy_until:0.0);
  ignore (C.insert c 2 ~size_gb:0.5 ~now:0.0 ~busy_until:0.0);
  Alcotest.(check (float 1e-9)) "used" 1.5 (C.used_gb c);
  Alcotest.(check int) "size" 2 (C.size c);
  (* Duplicate insert is a no-op. *)
  let inserted, evicted = C.insert c 1 ~size_gb:1.0 ~now:1.0 ~busy_until:1.0 in
  Alcotest.(check bool) "dup ok" true inserted;
  Alcotest.(check (list int)) "dup no evict" [] evicted;
  Alcotest.(check (float 1e-9)) "used unchanged" 1.5 (C.used_gb c)

(* LRU equivalence with a simple reference model (no stream locks, unit
   sizes): same hits and same final contents. *)
let prop_lru_model =
  QCheck.Test.make ~name:"LRU matches reference model" ~count:200
    QCheck.(list (int_bound 9))
    (fun accesses ->
      let cap = 3 in
      let c = C.create ~policy:C.Lru ~capacity_gb:(float_of_int cap) in
      (* Reference: list of videos, most recent first. *)
      let model = ref [] in
      let t = ref 0.0 in
      List.for_all
        (fun v ->
          t := !t +. 1.0;
          let model_hit = List.mem v !model in
          let cache_hit = C.touch c v ~busy_until:!t in
          if model_hit then model := v :: List.filter (fun x -> x <> v) !model
          else begin
            ignore (C.insert c v ~size_gb:1.0 ~now:!t ~busy_until:!t);
            model := v :: !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model
          end;
          model_hit = cache_hit)
        accesses
      &&
      (* Final contents agree. *)
      List.for_all (fun v -> C.mem c v) !model && C.size c = List.length !model)

let replica_index_ops () =
  let idx = RI.create ~n_videos:3 in
  RI.add idx ~video:0 ~vho:2;
  RI.add idx ~video:0 ~vho:2;
  Alcotest.(check (list int)) "idempotent add" [ 2 ] (RI.holders idx ~video:0);
  RI.add idx ~video:0 ~vho:1;
  Alcotest.(check bool) "holds" true (RI.holds idx ~video:0 ~vho:1);
  RI.remove idx ~video:0 ~vho:2;
  Alcotest.(check bool) "removed" false (RI.holds idx ~video:0 ~vho:2);
  Alcotest.(check (list int)) "empty video" [] (RI.holders idx ~video:1)

let nearest_replica () =
  let g =
    Vod_topology.Graph.create ~name:"line" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3) ]
      ~populations:[| 1.0; 1.0; 1.0; 1.0 |]
  in
  let paths = Vod_topology.Paths.compute g in
  let idx = RI.create ~n_videos:1 in
  Alcotest.(check bool) "no replica" true (RI.nearest idx paths ~video:0 ~vho:0 = None);
  RI.add idx ~video:0 ~vho:3;
  RI.add idx ~video:0 ~vho:1;
  Alcotest.(check (option int)) "nearest is 1" (Some 1)
    (RI.nearest idx paths ~video:0 ~vho:0)

(* Equidistant holders resolve to the lowest VHO id, whatever order the
   replicas were registered in (failover routing relies on this being
   deterministic). *)
let nearest_tie_break () =
  let g =
    Vod_topology.Graph.create ~name:"line" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3) ]
      ~populations:[| 1.0; 1.0; 1.0; 1.0 |]
  in
  let paths = Vod_topology.Paths.compute g in
  (* VHOs 0 and 2 are both one hop from VHO 1. *)
  List.iter
    (fun order ->
      let idx = RI.create ~n_videos:1 in
      List.iter (fun vho -> RI.add idx ~video:0 ~vho) order;
      Alcotest.(check (option int)) "lowest id wins the tie" (Some 0)
        (RI.nearest idx paths ~video:0 ~vho:1))
    [ [ 0; 2 ]; [ 2; 0 ] ];
  (* A strictly closer holder still beats a lower id. *)
  let idx = RI.create ~n_videos:1 in
  RI.add idx ~video:0 ~vho:0;
  RI.add idx ~video:0 ~vho:3;
  Alcotest.(check (option int)) "hops beat id" (Some 3)
    (RI.nearest idx paths ~video:0 ~vho:2)

(* A tiny fleet world shared by the fleet tests. *)
let fleet_world () =
  let g =
    Vod_topology.Graph.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 2.0; 1.0; 1.0; 1.0 |]
  in
  let paths = Vod_topology.Paths.compute g in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:20 ~days:7 ~seed:3)
  in
  (g, paths, catalog)

let fleet_random_basics () =
  let _, paths, catalog = fleet_world () in
  let fleet =
    FL.random_single ~paths ~catalog ~disk_gb:[| 10.0; 10.0; 10.0; 10.0 |]
      ~policy:C.Lru ~seed:5
  in
  (* Every video has a pinned copy somewhere. *)
  for video = 0 to 19 do
    let found = ref false in
    for vho = 0 to 3 do
      if FL.pinned_at fleet ~video ~vho then found := true
    done;
    Alcotest.(check bool) "pinned somewhere" true !found
  done;
  (* Serving is always possible and consistent. *)
  let o = FL.serve fleet ~video:0 ~vho:0 ~now:0.0 in
  Alcotest.(check bool) "served" true (o.FL.server >= 0 && o.FL.server < 4);
  if o.FL.local then Alcotest.(check int) "local serves from self" 0 o.FL.server

let fleet_cache_insertion () =
  let _, paths, catalog = fleet_world () in
  let fleet =
    FL.random_single ~paths ~catalog ~disk_gb:[| 30.0; 30.0; 30.0; 30.0 |]
      ~policy:C.Lru ~seed:5
  in
  (* Find a video not pinned at VHO 0; first request is remote, second is
     a cache hit. *)
  let video = ref (-1) in
  for v = 19 downto 0 do
    if not (FL.pinned_at fleet ~video:v ~vho:0) then video := v
  done;
  let o1 = FL.serve fleet ~video:!video ~vho:0 ~now:0.0 in
  Alcotest.(check bool) "first remote" false o1.FL.local;
  Alcotest.(check bool) "inserted" true o1.FL.inserted;
  let o2 = FL.serve fleet ~video:!video ~vho:0 ~now:10_000.0 in
  Alcotest.(check bool) "second local" true o2.FL.local;
  Alcotest.(check bool) "cache hit" true o2.FL.cache_hit

let fleet_topk () =
  let _, paths, catalog = fleet_world () in
  let ranked = Array.init 20 (fun i -> i) in
  let fleet =
    FL.topk ~k:3 ~ranked ~paths ~catalog ~disk_gb:[| 30.0; 30.0; 30.0; 30.0 |] ~seed:7
  in
  (* Top 3 pinned everywhere. *)
  for video = 0 to 2 do
    for vho = 0 to 3 do
      Alcotest.(check bool) "top pinned everywhere" true (FL.pinned_at fleet ~video ~vho)
    done
  done;
  let o = FL.serve fleet ~video:1 ~vho:2 ~now:0.0 in
  Alcotest.(check bool) "top video local" true o.FL.local

let fleet_origin () =
  let g, paths, catalog = fleet_world () in
  let fleet =
    FL.origin_regions ~regions:2 ~graph:g ~paths ~catalog
      ~disk_gb:[| 5.0; 5.0; 5.0; 5.0 |]
  in
  (* Origins hold everything: any request can be served. *)
  let o = FL.serve fleet ~video:7 ~vho:1 ~now:0.0 in
  Alcotest.(check bool) "origin serves" true (o.FL.server >= 0);
  (* pinned_gb counts the origins' full copies. *)
  let pg = FL.pinned_gb fleet in
  let full = Vod_workload.Catalog.total_size_gb catalog in
  let n_full = Array.fold_left (fun acc g -> if g >= full -. 1e-6 then acc + 1 else acc) 0 pg in
  Alcotest.(check int) "two full origins" 2 n_full

let fleet_mip_routing () =
  let g, paths, catalog = fleet_world () in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:g.Vod_topology.Graph.populations ~mean_daily_requests:300.0
         ~seed:8)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let inst =
    Vod_placement.Instance.create ~graph:g ~catalog ~demand
      ~disk_gb:(Vod_placement.Instance.uniform_disk ~total_gb:(2.0 *. total) 4)
      ~link_capacity_mbps:(Vod_placement.Instance.uniform_links g 500.0)
      ()
  in
  let report = Vod_placement.Solve.solve inst in
  let fleet =
    FL.mip ~solution:report.Vod_placement.Solve.solution ~paths ~catalog
      ~cache_gb:[| 1.0; 1.0; 1.0; 1.0 |]
  in
  (* Every request resolves; pinned copies match the solution. *)
  for video = 0 to 19 do
    for vho = 0 to 3 do
      let o = FL.serve fleet ~video ~vho ~now:0.0 in
      Alcotest.(check bool) "resolves" true (o.FL.server >= 0 && o.FL.server < 4);
      Alcotest.(check bool) "pinned iff stored"
        (Vod_placement.Solution.stores report.Vod_placement.Solve.solution ~video ~vho)
        (FL.pinned_at fleet ~video ~vho)
    done
  done

(* Regression for the eviction loop's Hashtbl.find -> find_opt
   conversion: victims are removed exactly once, the byte accounting
   stays consistent across multi-victim evictions, and a failed
   admission still reports the entries it freed along the way. *)
let eviction_path_accounting () =
  let c = Vod_cache.Cache.create ~policy:Vod_cache.Cache.Lru ~capacity_gb:3.0 in
  List.iter
    (fun v ->
      let inserted, evicted = Vod_cache.Cache.insert c v ~size_gb:1.0 ~now:0.0 ~busy_until:0.0 in
      Alcotest.(check bool) "initial insert fits" true inserted;
      Alcotest.(check (list int)) "no eviction while filling" [] evicted)
    [ 1; 2; 3 ];
  (* Needs 2 GB: must evict the two least-recently-used idle entries. *)
  let inserted, evicted = Vod_cache.Cache.insert c 4 ~size_gb:2.0 ~now:1.0 ~busy_until:0.0 in
  Alcotest.(check bool) "insert after eviction" true inserted;
  Alcotest.(check (list int)) "two LRU victims, once each" [ 2; 1 ] evicted;
  Alcotest.(check (float 1e-9)) "accounting exact" 3.0 (Vod_cache.Cache.used_gb c);
  Alcotest.(check int) "resident count" 2 (Vod_cache.Cache.size c);
  Alcotest.(check bool) "survivor present" true (Vod_cache.Cache.mem c 3);
  Alcotest.(check bool) "newcomer present" true (Vod_cache.Cache.mem c 4);
  (* All residents busy: admission fails, but idle space freed first is
     still reported (here: none, both entries are streaming). *)
  ignore (Vod_cache.Cache.touch c 3 ~busy_until:100.0);
  ignore (Vod_cache.Cache.touch c 4 ~busy_until:100.0);
  let inserted, evicted = Vod_cache.Cache.insert c 5 ~size_gb:1.0 ~now:2.0 ~busy_until:0.0 in
  Alcotest.(check bool) "no admission when all busy" false inserted;
  Alcotest.(check (list int)) "nothing evictable" [] evicted;
  Alcotest.(check (float 1e-9)) "accounting unchanged" 3.0 (Vod_cache.Cache.used_gb c)

let suite =
  [
    Alcotest.test_case "lru eviction order" `Quick lru_eviction_order;
    Alcotest.test_case "eviction path accounting" `Quick eviction_path_accounting;
    Alcotest.test_case "lfu eviction order" `Quick lfu_eviction_order;
    Alcotest.test_case "stream locking" `Quick stream_locking;
    Alcotest.test_case "oversized video" `Quick oversized_video;
    Alcotest.test_case "cache accounting" `Quick cache_accounting;
    Alcotest.test_case "replica index" `Quick replica_index_ops;
    Alcotest.test_case "nearest replica" `Quick nearest_replica;
    Alcotest.test_case "nearest tie-break" `Quick nearest_tie_break;
    Alcotest.test_case "fleet random basics" `Quick fleet_random_basics;
    Alcotest.test_case "fleet cache insertion" `Quick fleet_cache_insertion;
    Alcotest.test_case "fleet topk" `Quick fleet_topk;
    Alcotest.test_case "fleet origin" `Quick fleet_origin;
    Alcotest.test_case "fleet mip routing" `Slow fleet_mip_routing;
    QCheck_alcotest.to_alcotest prop_lru_model;
  ]
