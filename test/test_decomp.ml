(* Tests for the solver-backend registry and the Benders/Dantzig-Wolfe
   master: registry dispatch and its error message, the simplex backend
   against the recorded exact LP objective, the Benders fractional point
   against the exact LP on a tiny instance, jobs-count bit-identity,
   warm starts, and daemon replanning through a non-default backend. *)

module I = Vod_placement.Instance
module Sol = Vod_placement.Solution
module Solve = Vod_placement.Solve
module Backend = Vod_placement.Backend
module Master = Vod_decomp.Master
module G = Vod_topology.Graph
module P = Vod_core.Pipeline

(* The same tiny deterministic world test_placement uses: 4 VHOs on a
   ring, 8 videos, 7 days, 2 windows. *)
let tiny_instance ?(disk_mult = 2.0) ?(link = 200.0) () =
  let graph =
    G.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 4.0; 3.0; 2.0; 1.0 |]
  in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:8 ~days:7 ~seed:11)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:graph.G.populations ~mean_daily_requests:600.0 ~seed:12)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7
      ~n_windows:2 ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  I.create ~graph ~catalog ~demand
    ~disk_gb:(I.uniform_disk ~total_gb:(disk_mult *. total) 4)
    ~link_capacity_mbps:(I.uniform_links graph link)
    ()

let exact_lp_objective inst =
  match Vod_placement.Lp_check.solve_reference inst with
  | Vod_lp.Simplex.Optimal { objective; _ } -> objective
  | _ -> Alcotest.fail "reference LP must be optimal"

(* ---------- registry ---------- *)

let registry_contents () =
  Alcotest.(check (list string))
    "registered backends"
    [ "benders"; "epf"; "simplex" ]
    (Backend.names ());
  Alcotest.(check string) "default" "epf" Backend.default;
  List.iter
    (fun n ->
      Alcotest.(check string) "find roundtrip" n (Backend.find n).Backend.name)
    (Backend.names ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let unknown_backend_lists_names () =
  match Solve.solve ~solver:"nope" (tiny_instance ()) with
  | _ -> Alcotest.fail "unknown backend must raise"
  | exception Failure msg ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %S" n)
            true (contains msg n))
        [ "nope"; "benders"; "epf"; "simplex" ]

(* ---------- simplex backend ---------- *)

(* The exact fractional optimum of the tiny instance, recorded from
   Lp_check.solve_reference; guards the whole build+extract path. *)
let recorded_tiny_lp_objective = 3527.1

let simplex_matches_recorded_objective () =
  let inst = tiny_instance () in
  let report = Solve.solve ~solver:"simplex" inst in
  Alcotest.(check (float 1e-4))
    "recorded exact objective" recorded_tiny_lp_objective
    report.Solve.lp_objective;
  Alcotest.(check (float 1e-9))
    "bit-matches the reference LP" (exact_lp_objective inst)
    report.Solve.lp_objective;
  Alcotest.(check (float 1e-12)) "exact LP has no violation" 0.0
    report.Solve.lp_violation;
  Alcotest.(check int) "one pass" 1 report.Solve.passes

(* ---------- benders backend ---------- *)

let benders_reaches_exact_lp () =
  let inst = tiny_instance () in
  let exact = exact_lp_objective inst in
  let report = Solve.solve ~solver:"benders" inst in
  let rel = (report.Solve.lp_objective -. exact) /. exact in
  Alcotest.(check bool)
    (Printf.sprintf "fractional objective within 1%% of exact (rel %.4f)" rel)
    true
    (rel < 0.01 && rel > -1e-6);
  Alcotest.(check bool) "fractional point feasible at epsilon" true
    (report.Solve.lp_violation <= 0.01);
  let sol = report.Solve.solution in
  Alcotest.(check int) "all videos placed" 8 sol.Sol.n_videos;
  Array.iter
    (fun row ->
      Alcotest.(check bool) "every video has a copy" true
        (Array.length row > 0))
    sol.Sol.stored

let benders_jobs_bit_identical () =
  let inst = tiny_instance () in
  let solve jobs =
    Solve.solve ~solver:"benders"
      ~params:{ Vod_epf.Engine.default_params with Vod_epf.Engine.jobs }
      inst
  in
  let a = solve 1 and b = solve 4 in
  Alcotest.(check bool) "objective bit-equal" true
    (a.Solve.solution.Sol.objective = b.Solve.solution.Sol.objective);
  Alcotest.(check bool) "lp objective bit-equal" true
    (a.Solve.lp_objective = b.Solve.lp_objective);
  Alcotest.(check bool) "placement identical" true
    (a.Solve.solution.Sol.stored = b.Solve.solution.Sol.stored);
  Alcotest.(check bool) "history bit-equal" true
    (a.Solve.history = b.Solve.history)

let benders_warm_start_runs () =
  let inst = tiny_instance () in
  let cold = Solve.solve ~solver:"benders" inst in
  let warm =
    Solve.solve ~solver:"benders" ~incumbent:cold.Solve.solution inst
  in
  Alcotest.(check bool) "warm solve produces a placement" true
    (Array.length warm.Solve.solution.Sol.stored = 8);
  Alcotest.(check bool) "warm fractional point stays feasible" true
    (warm.Solve.lp_violation <= 0.01);
  let exact = exact_lp_objective inst in
  Alcotest.(check bool) "warm objective still within 1% of exact" true
    ((warm.Solve.lp_objective -. exact) /. exact < 0.01)

(* ---------- master validation ---------- *)

let master_rejects_bad_inputs () =
  let oracle_absent : unit Vod_epf.Engine.oracle array = [||] in
  Alcotest.check_raises "no blocks"
    (Invalid_argument "Decomp.Master.solve: no blocks") (fun () ->
      ignore
        (Master.solve Master.default_params ~capacities:[| 1.0 |]
           ~oracles:oracle_absent))

(* ---------- daemon through a non-default backend ---------- *)

let daemon_benders_deterministic () =
  let graph =
    G.create ~name:"ring6" ~n:6
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3) ]
      ~populations:[| 3.0; 1.0; 2.0; 1.0; 1.0; 1.0 |]
  in
  let sc =
    Vod_core.Scenario.make ~days:4 ~requests_per_video_per_day:8.0 ~seed:13
      ~graph ~n_videos:16 ()
  in
  let cfg =
    P.default_config ~scenario:sc
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:2.5)
      ~link_capacity_mbps:500.0
  in
  let mip =
    {
      P.default_mip with
      P.engine =
        { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 10 };
      P.solver = "benders";
      P.update_days = 2;
    }
  in
  let run () =
    Vod_serve.Daemon.run ~graph:sc.Vod_core.Scenario.graph
      ~paths:sc.Vod_core.Scenario.paths ~catalog:sc.Vod_core.Scenario.catalog
      ~trace:sc.Vod_core.Scenario.trace
      ~problem:(P.replan_problem cfg mip)
      ~bin_s:cfg.P.bin_s ~record_from:0.0 Vod_serve.Daemon.default_config
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "final placement byte-identical" true
    (a.Vod_serve.Daemon.final.Sol.stored = b.Vod_serve.Daemon.final.Sol.stored);
  Alcotest.(check bool) "final objective bit-equal" true
    (a.Vod_serve.Daemon.final.Sol.objective
    = b.Vod_serve.Daemon.final.Sol.objective);
  Alcotest.(check int) "same replan count"
    (List.length a.Vod_serve.Daemon.replans)
    (List.length b.Vod_serve.Daemon.replans)

let suite =
  [
    Alcotest.test_case "registry contents" `Quick registry_contents;
    Alcotest.test_case "unknown backend lists names" `Quick
      unknown_backend_lists_names;
    Alcotest.test_case "simplex backend: recorded objective" `Quick
      simplex_matches_recorded_objective;
    Alcotest.test_case "benders reaches the exact LP" `Quick
      benders_reaches_exact_lp;
    Alcotest.test_case "benders jobs 1 = jobs 4 (bit)" `Quick
      benders_jobs_bit_identical;
    Alcotest.test_case "benders warm start" `Quick benders_warm_start_runs;
    Alcotest.test_case "master input validation" `Quick
      master_rejects_bad_inputs;
    Alcotest.test_case "daemon replans via benders deterministically" `Quick
      daemon_benders_deterministic;
  ]
