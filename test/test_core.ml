(* Integration tests: scenarios and the full weekly pipeline at toy scale,
   exercising every scheme end-to-end. *)

module Sc = Vod_core.Scenario
module P = Vod_core.Pipeline

let tiny_scenario () =
  let graph =
    Vod_topology.Graph.create ~name:"ring6" ~n:6
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3) ]
      ~populations:[| 3.0; 1.0; 2.0; 1.0; 1.0; 1.0 |]
  in
  Sc.make ~days:21 ~requests_per_video_per_day:8.0 ~seed:13 ~graph ~n_videos:60 ()

let scenario_construction () =
  let sc = tiny_scenario () in
  Alcotest.(check int) "days" 21 sc.Sc.trace.Vod_workload.Trace.days;
  Alcotest.(check bool) "library sized" true (Sc.library_gb sc > 0.0);
  let disk = Sc.uniform_disk sc ~multiple:2.0 in
  Alcotest.(check int) "per-vho" 6 (Array.length disk);
  Alcotest.(check (float 0.01)) "aggregate = 2x library" (2.0 *. Sc.library_gb sc)
    (Array.fold_left ( +. ) 0.0 disk)

let hetero_disk_shape () =
  let sc = tiny_scenario () in
  let disk = Sc.hetero_disk sc ~multiple:2.0 in
  Alcotest.(check (float 0.01)) "aggregate preserved" (2.0 *. Sc.library_gb sc)
    (Array.fold_left ( +. ) 0.0 disk);
  (* The largest metro gets the largest share (4:2:1 classes). *)
  let top = Vod_topology.Topologies.top_population_nodes sc.Sc.graph 1 in
  let max_disk = Array.fold_left Float.max 0.0 disk in
  Alcotest.(check (float 1e-9)) "largest metro largest disk" max_disk disk.(top.(0))

let demand_of_week_works () =
  let sc = tiny_scenario () in
  let d = Sc.demand_of_week sc ~day0:7 () in
  Alcotest.(check bool) "nonzero demand" true (d.Vod_workload.Demand.total_requests > 0.0);
  Alcotest.(check int) "two windows" 2 (Array.length d.Vod_workload.Demand.windows)

let fast_mip =
  {
    P.default_mip with
    P.engine = { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = 20 };
  }

let run_scheme scheme =
  let sc = tiny_scenario () in
  let disk = Sc.uniform_disk sc ~multiple:2.5 in
  let cfg =
    { (P.default_config ~scenario:sc ~disk_gb:disk ~link_capacity_mbps:500.0) with P.warmup_days = 7 }
  in
  P.run cfg scheme

let pipeline_conservation result =
  let m = result.P.metrics in
  Alcotest.(check bool) "requests counted" true (m.Vod_sim.Metrics.requests > 0);
  Alcotest.(check int) "local+remote"
    m.Vod_sim.Metrics.requests
    (m.Vod_sim.Metrics.local_served + m.Vod_sim.Metrics.remote_served)

let pipeline_mip () =
  let r = run_scheme (P.Mip fast_mip) in
  pipeline_conservation r;
  (* Bootstrap + updates at days 7 and 14. *)
  Alcotest.(check int) "three solves" 3 (List.length r.P.solves);
  Alcotest.(check int) "two migrations" 2 (List.length r.P.migrations);
  Alcotest.(check bool) "has solution" true (Option.is_some (P.last_solution r))

let pipeline_mip_biweekly () =
  let r = run_scheme (P.Mip { fast_mip with P.update_days = 14 }) in
  (* Bootstrap + one update at day 7 (21-day trace, step 14). *)
  Alcotest.(check int) "two solves" 2 (List.length r.P.solves)

let pipeline_random_lru () =
  let r = run_scheme (P.Random_cache Vod_cache.Cache.Lru) in
  pipeline_conservation r;
  Alcotest.(check int) "no solves" 0 (List.length r.P.solves)

let pipeline_random_lfu () = pipeline_conservation (run_scheme (P.Random_cache Vod_cache.Cache.Lfu))

let pipeline_topk () = pipeline_conservation (run_scheme (P.Topk_lru 5))

let pipeline_origin () = pipeline_conservation (run_scheme (P.Origin_lru 2))

let estimation_ordering () =
  (* Perfect knowledge should never do materially worse than no estimate
     on total transfer (paper Table VI). Toy scale, so allow slack. *)
  let run est =
    let r = run_scheme (P.Mip { fast_mip with P.estimator = est }) in
    r.P.metrics.Vod_sim.Metrics.total_gb_hops
  in
  let perfect = run Vod_workload.Estimator.Perfect in
  let none = run Vod_workload.Estimator.History_only in
  Alcotest.(check bool)
    (Printf.sprintf "perfect (%.0f) <= none (%.0f) * 1.1" perfect none)
    true (perfect <= none *. 1.1)

let update_schedule_tiling () =
  (* The documented tiling guarantee: updates run every [update_days]
     from day 7 while strictly inside the trace; the last segment may be
     shorter but is never dropped. *)
  Alcotest.(check (list int)) "30d weekly" [ 7; 14; 21; 28 ]
    (P.update_schedule ~days:30 ~update_days:7);
  Alcotest.(check (list int)) "21d biweekly" [ 7 ]
    (P.update_schedule ~days:21 ~update_days:14);
  Alcotest.(check (list int)) "28d weekly ends exactly" [ 7; 14; 21 ]
    (P.update_schedule ~days:28 ~update_days:7);
  Alcotest.(check (list int)) "short trace has no updates" []
    (P.update_schedule ~days:7 ~update_days:1);
  Alcotest.check_raises "non-positive period"
    (Invalid_argument "Pipeline.update_schedule: update_days must be positive")
    (fun () -> ignore (P.update_schedule ~days:30 ~update_days:0))

(* 30-day trace with weekly updates: update_days does not divide the
   post-bootstrap span (23 days), so the final segment is a 2-day stub.
   Every request must still play exactly once, with a solve per
   boundary. *)
let pipeline_30d_weekly_regression () =
  let graph =
    Vod_topology.Graph.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 2.0; 1.0; 1.0; 1.0 |]
  in
  let sc =
    Sc.make ~days:30 ~requests_per_video_per_day:4.0 ~seed:17 ~graph
      ~n_videos:30 ()
  in
  let cfg =
    {
      (P.default_config ~scenario:sc ~disk_gb:(Sc.uniform_disk sc ~multiple:2.5)
         ~link_capacity_mbps:500.0)
      with
      P.warmup_days = 0;
    }
  in
  let r =
    P.run cfg (P.Mip { fast_mip with P.engine = { fast_mip.P.engine with Vod_epf.Engine.max_passes = 8 } })
  in
  (* Bootstrap + updates at 7, 14, 21, 28. *)
  Alcotest.(check int) "five solves" 5 (List.length r.P.solves);
  Alcotest.(check int) "four migrations" 4 (List.length r.P.migrations);
  (* With no warmup every request is recorded: played exactly once. *)
  Alcotest.(check int) "request conservation"
    (Vod_workload.Trace.length sc.Sc.trace)
    r.P.metrics.Vod_sim.Metrics.requests;
  pipeline_conservation r

let scheme_names () =
  let sc = tiny_scenario () in
  let cfg =
    P.default_config ~scenario:sc ~disk_gb:(Sc.uniform_disk sc ~multiple:2.0)
      ~link_capacity_mbps:500.0
  in
  Alcotest.(check string) "lru name" "random+lru" (P.scheme_name cfg (P.Random_cache Vod_cache.Cache.Lru));
  Alcotest.(check string) "topk name" "top7+lru" (P.scheme_name cfg (P.Topk_lru 7))

let suite =
  [
    Alcotest.test_case "scenario construction" `Quick scenario_construction;
    Alcotest.test_case "hetero disk shape" `Quick hetero_disk_shape;
    Alcotest.test_case "demand of week" `Quick demand_of_week_works;
    Alcotest.test_case "pipeline mip" `Slow pipeline_mip;
    Alcotest.test_case "pipeline mip biweekly" `Slow pipeline_mip_biweekly;
    Alcotest.test_case "pipeline random lru" `Quick pipeline_random_lru;
    Alcotest.test_case "pipeline random lfu" `Quick pipeline_random_lfu;
    Alcotest.test_case "pipeline topk" `Quick pipeline_topk;
    Alcotest.test_case "pipeline origin" `Quick pipeline_origin;
    Alcotest.test_case "estimation ordering" `Slow estimation_ordering;
    Alcotest.test_case "update schedule tiling" `Quick update_schedule_tiling;
    Alcotest.test_case "30d weekly regression" `Slow pipeline_30d_weekly_regression;
    Alcotest.test_case "scheme names" `Quick scheme_names;
  ]
