(* Tests for the EPF engine on hand-built block problems with known
   optima, including a randomized cross-check against the simplex
   reference. *)

module E = Vod_epf.Engine
module Sp = Vod_epf.Sparse
module S = Vod_lp.Simplex

let check_float tol = Alcotest.(check (float tol))

(* --- Sparse vector algebra --- *)

let sparse_ops () =
  let x = Sp.of_assoc [ (3, 1.0); (1, 2.0); (3, 0.5) ] in
  Alcotest.(check int) "dedup" 2 (Array.length x);
  Alcotest.(check (array int)) "sorted support" [| 1; 3 |] (Sp.support x);
  let y = Sp.of_assoc [ (1, 1.0); (2, 4.0) ] in
  let z = Sp.axpby 2.0 x 1.0 y in
  let dense = Array.make 5 0.0 in
  Sp.add_into dense 1.0 z;
  Alcotest.(check (array (float 1e-9))) "axpby" [| 0.0; 5.0; 4.0; 3.0; 0.0 |] dense;
  let prices = [| 0.0; 1.0; 0.5; 2.0; 0.0 |] in
  check_float 1e-9 "dot" (5.0 +. 2.0 +. 6.0) (Sp.dot prices z);
  let d = Sp.sub x x in
  Alcotest.(check int) "self-sub empty" 0 (Array.length d)

let safe_exp_props () =
  check_float 1e-9 "exp small" (exp 1.0) (E.safe_exp 1.0);
  Alcotest.(check bool) "monotone at boundary" true (E.safe_exp 501.0 > E.safe_exp 500.0);
  Alcotest.(check bool) "finite for big input" true (Float.is_finite (E.safe_exp 1e6))

(* --- A single two-point block: min obj s.t. usage <= 1 over the segment
   between A=(obj 1, usage 2) and B=(obj 3, usage 0.5). LP optimum:
   tau = 2/3, obj = 7/3. --- *)

let two_point_oracle () =
  let pa = { E.obj = 1.0; usage = Sp.of_assoc [ (0, 2.0) ]; data = "A" } in
  let pb = { E.obj = 3.0; usage = Sp.of_assoc [ (0, 0.5) ]; data = "B" } in
  let priced ~obj_price ~row_price (p : string E.point) =
    (obj_price *. p.E.obj) +. Sp.dot row_price p.E.usage
  in
  let optimize ~obj_price ~row_price =
    if priced ~obj_price ~row_price pa <= priced ~obj_price ~row_price pb then pa
    else pb
  in
  {
    E.optimize;
    optimize_strong = optimize;
    lower_bound =
      (fun ~row_price ->
        Float.min (priced ~obj_price:1.0 ~row_price pa) (priced ~obj_price:1.0 ~row_price pb));
    initial = (fun () -> pa);
  }

let single_block_lp () =
  let outcome =
    E.solve ~round:false
      { E.default_params with E.max_passes = 120 }
      ~capacities:[| 1.0 |]
      ~oracles:[| two_point_oracle () |]
  in
  Alcotest.(check bool) "eps feasible" true (outcome.E.max_violation <= 0.03);
  (* Fractional optimum 7/3; allow the engine a modest slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "near optimum (got %.3f)" outcome.E.objective)
    true
    (outcome.E.objective < 7.0 /. 3.0 *. 1.10 +. 0.02);
  Alcotest.(check bool) "lower bound valid" true
    (outcome.E.lower_bound <= 7.0 /. 3.0 +. 1e-6);
  Alcotest.(check bool) "lower bound nontrivial" true (outcome.E.lower_bound > 1.0)

(* --- K identical blocks sharing one capacity row; compare against the
   simplex solution of the equivalent LP. --- *)

let shared_row_blocks k cap =
  (* Block i chooses between (obj 1, usage 1) and (obj 4, usage 0.2). *)
  let pa = { E.obj = 1.0; usage = Sp.of_assoc [ (0, 1.0) ]; data = 0 } in
  let pb = { E.obj = 4.0; usage = Sp.of_assoc [ (0, 0.2) ]; data = 1 } in
  let oracle =
    let priced ~obj_price ~row_price (p : int E.point) =
      (obj_price *. p.E.obj) +. Sp.dot row_price p.E.usage
    in
    let optimize ~obj_price ~row_price =
      if priced ~obj_price ~row_price pa <= priced ~obj_price ~row_price pb then pa
      else pb
    in
    {
      E.optimize;
      optimize_strong = optimize;
      lower_bound =
        (fun ~row_price ->
          Float.min
            (priced ~obj_price:1.0 ~row_price pa)
            (priced ~obj_price:1.0 ~row_price pb));
      initial = (fun () -> pa);
    }
  in
  let lp =
    (* Variables: t_i = weight on the light point per block.
       min sum (1 + 3 t_i) s.t. sum (1 - 0.8 t_i) <= cap, 0 <= t <= 1. *)
    {
      S.n_vars = k;
      minimize = Array.make k 3.0;
      constraints =
        ({ S.row = List.init k (fun i -> (i, -0.8)); rel = S.Le; rhs = cap -. float_of_int k }
        :: List.init k (fun i -> { S.row = [ (i, 1.0) ]; rel = S.Le; rhs = 1.0 }));
    }
  in
  (Array.make k oracle, lp)

let multi_block_vs_simplex () =
  let k = 8 and cap = 4.0 in
  let oracles, lp = shared_row_blocks k cap in
  let lp_opt =
    match S.solve lp with
    | S.Optimal { objective; _ } -> objective +. float_of_int k (* constant 1/block *)
    | _ -> Alcotest.fail "simplex failed"
  in
  let outcome =
    E.solve ~round:false
      { E.default_params with E.max_passes = 150; seed = 3 }
      ~capacities:[| cap |] ~oracles
  in
  Alcotest.(check bool) "feasible" true (outcome.E.max_violation <= 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "objective near LP opt (%.3f vs %.3f)" outcome.E.objective lp_opt)
    true
    (outcome.E.objective <= lp_opt *. 1.12);
  Alcotest.(check bool)
    (Printf.sprintf "LB valid (%.3f <= %.3f)" outcome.E.lower_bound lp_opt)
    true
    (outcome.E.lower_bound <= lp_opt +. 1e-6)

let feasibility_mode () =
  let oracles, _ = shared_row_blocks 6 3.0 in
  let params = { E.default_params with E.feasibility_only = true; max_passes = 80 } in
  let outcome = E.solve ~round:false params ~capacities:[| 3.0 |] ~oracles in
  Alcotest.(check bool) "finds feasible point" true outcome.E.epsilon_feasible;
  (* cap 1.0 with 6 blocks and min usage 0.2/block = 1.2 > 1: infeasible. *)
  let oracles, _ = shared_row_blocks 6 1.0 in
  let outcome = E.solve ~round:false params ~capacities:[| 1.0 |] ~oracles in
  Alcotest.(check bool) "detects infeasible" false outcome.E.epsilon_feasible

let history_recorded () =
  let oracles, _ = shared_row_blocks 6 3.0 in
  let outcome =
    E.solve ~round:false { E.default_params with E.max_passes = 15 }
      ~capacities:[| 3.0 |] ~oracles
  in
  Alcotest.(check int) "one record per pass" outcome.E.passes
    (Array.length outcome.E.history);
  Array.iter
    (fun (obj, lb, viol) ->
      (* Note: an *infeasible* iterate may undercut the lower bound, so no
         lb <= obj invariant here — only nonnegativity. *)
      Alcotest.(check bool) "sane record" true (obj >= 0.0 && lb >= 0.0 && viol >= 0.0))
    outcome.E.history;
  (* Lower bounds are monotone nondecreasing across passes. *)
  for i = 0 to Array.length outcome.E.history - 2 do
    let _, lb1, _ = outcome.E.history.(i) and _, lb2, _ = outcome.E.history.(i + 1) in
    Alcotest.(check bool) "lb monotone" true (lb2 >= lb1 -. 1e-9)
  done

let rounding_integrality () =
  let oracles, _ = shared_row_blocks 8 4.0 in
  let outcome =
    E.solve ~round:true { E.default_params with E.max_passes = 80 }
      ~capacities:[| 4.0 |] ~oracles
  in
  Array.iter
    (fun combo -> Alcotest.(check int) "singleton combos" 1 (List.length combo))
    outcome.E.combos

let combos_are_convex () =
  let oracles, _ = shared_row_blocks 8 4.0 in
  let outcome =
    E.solve ~round:false { E.default_params with E.max_passes = 40 }
      ~capacities:[| 4.0 |] ~oracles
  in
  Array.iter
    (fun combo ->
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 combo in
      Alcotest.(check bool) "weights in (0,1]" true
        (List.for_all (fun (_, w) -> w > 0.0 && w <= 1.0 +. 1e-9) combo);
      check_float 1e-6 "weights sum to 1" 1.0 total)
    outcome.E.combos

let row_usage_consistent () =
  let oracles, _ = shared_row_blocks 5 3.0 in
  let outcome =
    E.solve ~round:false { E.default_params with E.max_passes = 30 }
      ~capacities:[| 3.0 |] ~oracles
  in
  (* Recompute usage from combos and compare with the reported vector. *)
  let usage = Array.make 1 0.0 in
  Array.iter
    (fun combo ->
      List.iter (fun ((p : _ E.point), w) -> Sp.add_into usage w p.E.usage) combo)
    outcome.E.combos;
  check_float 1e-6 "aggregate usage" usage.(0) outcome.E.row_usage.(0)

let jobs_bit_identical () =
  (* The determinism contract of the parallel layer: for a fixed seed,
     every observable of the solve — objective, lower bound, violation,
     the rounded per-block choices — is bit-identical at any job count. *)
  let solve jobs =
    let oracles, _ = shared_row_blocks 8 4.0 in
    E.solve ~round:true
      { E.default_params with E.max_passes = 80; seed = 11; jobs }
      ~capacities:[| 4.0 |] ~oracles
  in
  let base = solve 1 in
  List.iter
    (fun jobs ->
      let o = solve jobs in
      let tag s = Printf.sprintf "%s at jobs=%d" s jobs in
      check_float 0.0 (tag "objective") base.E.objective o.E.objective;
      check_float 0.0 (tag "lower bound") base.E.lower_bound o.E.lower_bound;
      check_float 0.0 (tag "violation") base.E.max_violation o.E.max_violation;
      check_float 0.0 (tag "pre-round objective") base.E.pre_round_objective
        o.E.pre_round_objective;
      Alcotest.(check int) (tag "passes") base.E.passes o.E.passes;
      Alcotest.(check (array (float 0.0)))
        (tag "row usage") base.E.row_usage o.E.row_usage;
      (* Rounded placement: every block snapped to the same point. *)
      Array.iteri
        (fun k combo ->
          match (combo, o.E.combos.(k)) with
          | [ (p, _) ], [ (q, _) ] ->
              Alcotest.(check int) (tag "rounded choice") p.E.data q.E.data
          | _ -> Alcotest.fail "rounded combos not singletons")
        base.E.combos)
    [ 2; 4 ]

let validation () =
  let oracles, _ = shared_row_blocks 2 1.0 in
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Engine: capacities must be positive") (fun () ->
      ignore (E.solve E.default_params ~capacities:[| 0.0 |] ~oracles));
  Alcotest.check_raises "no blocks" (Invalid_argument "Engine: no blocks") (fun () ->
      ignore
        (E.solve E.default_params ~capacities:[| 1.0 |]
           ~oracles:([||] : unit E.oracle array)))

(* Randomized: K blocks, two points each with random costs/usages, vs
   simplex on the equivalent LP. *)
let prop_engine_vs_simplex =
  QCheck.Test.make ~name:"engine tracks simplex on random 2-point block LPs" ~count:12
    QCheck.small_int
    (fun seed ->
      let rng = Vod_util.Rng.create (500 + seed) in
      let k = 3 + Vod_util.Rng.int rng 5 in
      let heavy = Array.init k (fun _ -> 0.5 +. Vod_util.Rng.float rng) in
      let light = Array.init k (fun _ -> 0.1 +. (0.2 *. Vod_util.Rng.float rng)) in
      let cheap = Array.init k (fun _ -> 1.0 +. Vod_util.Rng.float rng) in
      let dear = Array.init k (fun i -> cheap.(i) +. 1.0 +. (2.0 *. Vod_util.Rng.float rng)) in
      let cap = 0.75 *. Array.fold_left ( +. ) 0.0 heavy in
      let mk i =
        let pa = { E.obj = cheap.(i); usage = Sp.of_assoc [ (0, heavy.(i)) ]; data = 0 } in
        let pb = { E.obj = dear.(i); usage = Sp.of_assoc [ (0, light.(i)) ]; data = 1 } in
        let priced ~obj_price ~row_price (p : int E.point) =
          (obj_price *. p.E.obj) +. Sp.dot row_price p.E.usage
        in
        let optimize ~obj_price ~row_price =
          if priced ~obj_price ~row_price pa <= priced ~obj_price ~row_price pb
          then pa
          else pb
        in
        {
          E.optimize;
          optimize_strong = optimize;
          lower_bound =
            (fun ~row_price ->
              Float.min
                (priced ~obj_price:1.0 ~row_price pa)
                (priced ~obj_price:1.0 ~row_price pb));
          initial = (fun () -> pa);
        }
      in
      let oracles = Array.init k mk in
      (* LP in terms of t_i = weight on light point. *)
      let lp =
        {
          S.n_vars = k;
          minimize = Array.init k (fun i -> dear.(i) -. cheap.(i));
          constraints =
            ({
               S.row = List.init k (fun i -> (i, light.(i) -. heavy.(i)));
               rel = S.Le;
               rhs = cap -. Array.fold_left ( +. ) 0.0 heavy;
             }
            :: List.init k (fun i -> { S.row = [ (i, 1.0) ]; rel = S.Le; rhs = 1.0 }));
        }
      in
      match S.solve lp with
      | S.Optimal { objective; _ } ->
          let lp_opt = objective +. Array.fold_left ( +. ) 0.0 cheap in
          let outcome =
            E.solve ~round:false
              { E.default_params with E.max_passes = 150; seed }
              ~capacities:[| cap |] ~oracles
          in
          outcome.E.max_violation <= 0.05
          && outcome.E.lower_bound <= lp_opt +. 1e-6
          && outcome.E.objective <= (lp_opt *. 1.15) +. 0.05
      | S.Infeasible | S.Unbounded -> false)

let suite =
  [
    Alcotest.test_case "sparse ops" `Quick sparse_ops;
    Alcotest.test_case "safe_exp" `Quick safe_exp_props;
    Alcotest.test_case "single block LP" `Quick single_block_lp;
    Alcotest.test_case "multi block vs simplex" `Quick multi_block_vs_simplex;
    Alcotest.test_case "feasibility mode" `Quick feasibility_mode;
    Alcotest.test_case "history recorded" `Quick history_recorded;
    Alcotest.test_case "rounding integrality" `Quick rounding_integrality;
    Alcotest.test_case "combos convex" `Quick combos_are_convex;
    Alcotest.test_case "row usage consistent" `Quick row_usage_consistent;
    Alcotest.test_case "jobs bit-identical" `Quick jobs_bit_identical;
    Alcotest.test_case "validation" `Quick validation;
    QCheck_alcotest.to_alcotest prop_engine_vs_simplex;
  ]
