(* Tests for the simplex reference solver: known LPs, degenerate cases,
   and randomized comparison against brute-force vertex enumeration on
   2-variable instances. *)

module S = Vod_lp.Simplex

let solve_opt p =
  match S.solve p with
  | S.Optimal { objective; solution; _ } -> (objective, solution)
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"

let solve_duals p =
  match S.solve p with
  | S.Optimal { objective; solution; duals } -> (objective, solution, duals)
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"

(* Row activity a.x for a sparse constraint row at point [x]. *)
let activity row x =
  List.fold_left (fun acc (v, a) -> acc +. (a *. x.(v))) 0.0 row

(* The dual contract from the mli: strong duality, sign conventions per
   relation, and complementary slackness — all in the caller's original
   row orientation. *)
let check_dual_contract ?(tol = 1e-6) p =
  let objective, solution, duals = solve_duals p in
  Alcotest.(check int)
    "one dual per constraint"
    (List.length p.S.constraints)
    (Array.length duals);
  let dual_obj =
    List.fold_left (fun acc (c, y) -> acc +. (c.S.rhs *. y)) 0.0
      (List.combine p.S.constraints (Array.to_list duals))
  in
  Alcotest.(check (float tol)) "strong duality" objective dual_obj;
  List.iteri
    (fun i c ->
      let y = duals.(i) in
      (match c.S.rel with
      | S.Le ->
          Alcotest.(check bool)
            (Printf.sprintf "row %d: Le dual nonpositive" i)
            true (y <= tol)
      | S.Ge ->
          Alcotest.(check bool)
            (Printf.sprintf "row %d: Ge dual nonnegative" i)
            true (y >= -.tol)
      | S.Eq -> ());
      let slack = c.S.rhs -. activity c.S.row solution in
      Alcotest.(check (float tol))
        (Printf.sprintf "row %d: complementary slackness" i)
        0.0 (y *. slack))
    p.S.constraints;
  (objective, solution, duals)

let check_obj = Alcotest.(check (float 1e-6))

let basic_le () =
  (* min -x - y  s.t. x + y <= 4, x <= 2 -> x=2, y=2, obj=-4 *)
  let p =
    {
      S.n_vars = 2;
      minimize = [| -1.0; -1.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0); (1, 1.0) ]; rel = S.Le; rhs = 4.0 };
          { S.row = [ (0, 1.0) ]; rel = S.Le; rhs = 2.0 };
        ];
    }
  in
  let obj, sol = solve_opt p in
  check_obj "objective" (-4.0) obj;
  check_obj "x" 2.0 sol.(0);
  check_obj "y" 2.0 sol.(1)

let with_equality () =
  (* min x + 2y  s.t. x + y = 3, y >= 1 -> x=2, y=1, obj=4 *)
  let p =
    {
      S.n_vars = 2;
      minimize = [| 1.0; 2.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0); (1, 1.0) ]; rel = S.Eq; rhs = 3.0 };
          { S.row = [ (1, 1.0) ]; rel = S.Ge; rhs = 1.0 };
        ];
    }
  in
  let obj, sol = solve_opt p in
  check_obj "objective" 4.0 obj;
  check_obj "x" 2.0 sol.(0);
  check_obj "y" 1.0 sol.(1)

let infeasible_detected () =
  let p =
    {
      S.n_vars = 1;
      minimize = [| 1.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0) ]; rel = S.Le; rhs = 1.0 };
          { S.row = [ (0, 1.0) ]; rel = S.Ge; rhs = 2.0 };
        ];
    }
  in
  match S.solve p with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded -> Alcotest.fail "expected infeasible"

let unbounded_detected () =
  let p =
    {
      S.n_vars = 1;
      minimize = [| -1.0 |];
      constraints = [ { S.row = [ (0, 1.0) ]; rel = S.Ge; rhs = 0.0 } ];
    }
  in
  match S.solve p with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible -> Alcotest.fail "expected unbounded"

let negative_rhs_normalized () =
  (* min x s.t. -x <= -3  (i.e. x >= 3) *)
  let p =
    {
      S.n_vars = 1;
      minimize = [| 1.0 |];
      constraints = [ { S.row = [ (0, -1.0) ]; rel = S.Le; rhs = -3.0 } ];
    }
  in
  let obj, _ = solve_opt p in
  check_obj "x = 3" 3.0 obj

let degenerate_no_cycle () =
  (* A classically degenerate instance; must terminate (Bland). *)
  let p =
    {
      S.n_vars = 3;
      minimize = [| -0.75; 150.0; -0.02 |];
      constraints =
        [
          { S.row = [ (0, 0.25); (1, -60.0); (2, -0.04) ]; rel = S.Le; rhs = 0.0 };
          { S.row = [ (0, 0.5); (1, -90.0); (2, -0.02) ]; rel = S.Le; rhs = 0.0 };
          { S.row = [ (2, 1.0) ]; rel = S.Le; rhs = 1.0 };
        ];
    }
  in
  let obj, _ = solve_opt p in
  Alcotest.(check bool) "finite optimum" true (Float.is_finite obj)

let duals_basic_le () =
  (* min -x - y s.t. x + y <= 4, x <= 2: both rows bind; y = (-1, 0)
     by inspection of the dual (max -4y1 - 2y2, y <= 0, y1+y2 <= -1,
     y1 <= -1). *)
  let p =
    {
      S.n_vars = 2;
      minimize = [| -1.0; -1.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0); (1, 1.0) ]; rel = S.Le; rhs = 4.0 };
          { S.row = [ (0, 1.0) ]; rel = S.Le; rhs = 2.0 };
        ];
    }
  in
  let _, _, duals = check_dual_contract p in
  check_obj "binding row price" (-1.0) duals.(0);
  check_obj "slack-free second row" 0.0 duals.(1)

let duals_negative_rhs () =
  (* min x s.t. -x <= -3: reported in the original orientation, so the
     Le row keeps a nonpositive dual (-1) even though it is solved
     internally as x >= 3 with dual +1. *)
  let p =
    {
      S.n_vars = 1;
      minimize = [| 1.0 |];
      constraints = [ { S.row = [ (0, -1.0) ]; rel = S.Le; rhs = -3.0 } ];
    }
  in
  let _, _, duals = check_dual_contract p in
  check_obj "flipped row dual" (-1.0) duals.(0)

let duals_equality_mix () =
  (* The with_equality instance: x + y = 3 (free dual), y >= 1. At the
     optimum x=2, y=1: dual of the Eq row is the marginal cost of one
     more unit of rhs (=1, routed through x), the Ge row prices y's
     excess cost (2 - 1 = 1). *)
  let p =
    {
      S.n_vars = 2;
      minimize = [| 1.0; 2.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0); (1, 1.0) ]; rel = S.Eq; rhs = 3.0 };
          { S.row = [ (1, 1.0) ]; rel = S.Ge; rhs = 1.0 };
        ];
    }
  in
  let _, _, duals = check_dual_contract p in
  check_obj "equality row price" 1.0 duals.(0);
  check_obj "lower-bound row price" 1.0 duals.(1)

let duals_transport_contract () =
  (* Degenerate-prone assignment LP: exact prices are not unique, so
     only the contract (strong duality + signs + slackness) is
     asserted. *)
  let p =
    {
      S.n_vars = 4;
      minimize = [| 1.0; 3.0; 2.0; 1.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0); (1, 1.0) ]; rel = S.Eq; rhs = 1.0 };
          { S.row = [ (2, 1.0); (3, 1.0) ]; rel = S.Eq; rhs = 1.0 };
          { S.row = [ (0, 1.0); (2, 1.0) ]; rel = S.Le; rhs = 1.0 };
          { S.row = [ (1, 1.0); (3, 1.0) ]; rel = S.Le; rhs = 1.0 };
        ];
    }
  in
  ignore (check_dual_contract p)

let duals_lp_check_residuals () =
  (* Duals of the full placement LP (Lp_check.build on a tiny instance)
     must satisfy the same contract: strong duality against the exact
     objective and zero complementary-slackness residuals row by row.
     This is the form the decomposition master consumes. *)
  let graph =
    Vod_topology.Graph.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 4.0; 3.0; 2.0; 1.0 |]
  in
  let sc =
    Vod_core.Scenario.make ~days:7 ~requests_per_video_per_day:6.0 ~seed:5
      ~graph ~n_videos:6 ()
  in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let inst =
    Vod_placement.Instance.create ~graph ~catalog:sc.Vod_core.Scenario.catalog
      ~demand
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:2.0)
      ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph 200.0)
      ()
  in
  let p = Vod_placement.Lp_check.build inst in
  ignore (check_dual_contract ~tol:1e-5 p)

let duality_transport () =
  (* Tiny transportation problem; optimal value known by inspection.
     min 1*x00 + 3*x01 + 2*x10 + 1*x11
     s.t. x00+x01 = 1 ; x10+x11 = 1 ; x00+x10 <= 1 ; x01+x11 <= 1 *)
  let p =
    {
      S.n_vars = 4;
      minimize = [| 1.0; 3.0; 2.0; 1.0 |];
      constraints =
        [
          { S.row = [ (0, 1.0); (1, 1.0) ]; rel = S.Eq; rhs = 1.0 };
          { S.row = [ (2, 1.0); (3, 1.0) ]; rel = S.Eq; rhs = 1.0 };
          { S.row = [ (0, 1.0); (2, 1.0) ]; rel = S.Le; rhs = 1.0 };
          { S.row = [ (1, 1.0); (3, 1.0) ]; rel = S.Le; rhs = 1.0 };
        ];
    }
  in
  let obj, _ = solve_opt p in
  check_obj "assignment optimum" 2.0 obj

(* Random 2-variable LPs, checked against a fine grid scan of the feasible
   region (sound because optima of bounded LPs lie near vertices and the
   grid bound is only used as a one-sided sanity margin). *)
let prop_random_2var =
  QCheck.Test.make ~name:"simplex beats grid scan on random 2-var LPs" ~count:60
    QCheck.(
      quad (float_range 0.1 5.0) (float_range 0.1 5.0) (float_range 1.0 10.0)
        (float_range 1.0 10.0))
    (fun (c1, c2, b1, b2) ->
      let p =
        {
          S.n_vars = 2;
          minimize = [| -.c1; -.c2 |];
          constraints =
            [
              { S.row = [ (0, 1.0); (1, 2.0) ]; rel = S.Le; rhs = b1 };
              { S.row = [ (0, 2.0); (1, 1.0) ]; rel = S.Le; rhs = b2 };
            ];
        }
      in
      match S.solve p with
      | S.Optimal { objective; solution; duals } ->
          (* Feasibility of the returned point. *)
          let x = solution.(0) and y = solution.(1) in
          let feas =
            x >= -1e-9 && y >= -1e-9
            && x +. (2.0 *. y) <= b1 +. 1e-6
            && (2.0 *. x) +. y <= b2 +. 1e-6
          in
          (* Dual contract: strong duality, Le signs, slackness. *)
          let dual_ok =
            Float.abs ((duals.(0) *. b1) +. (duals.(1) *. b2) -. objective)
            <= 1e-5
            && duals.(0) <= 1e-9
            && duals.(1) <= 1e-9
            && Float.abs (duals.(0) *. (b1 -. x -. (2.0 *. y))) <= 1e-5
            && Float.abs (duals.(1) *. (b2 -. (2.0 *. x) -. y)) <= 1e-5
          in
          (* Grid scan lower bound on the best objective. *)
          let best = ref 0.0 in
          let steps = 60 in
          for i = 0 to steps do
            for j = 0 to steps do
              let gx = float_of_int i *. b2 /. (2.0 *. float_of_int steps) in
              let gy = float_of_int j *. b1 /. (2.0 *. float_of_int steps) in
              if gx +. (2.0 *. gy) <= b1 && (2.0 *. gx) +. gy <= b2 then begin
                let v = (-.c1 *. gx) -. (c2 *. gy) in
                if v < !best then best := v
              end
            done
          done;
          feas && dual_ok && objective <= !best +. 1e-6
      | S.Infeasible | S.Unbounded -> false)

let suite =
  [
    Alcotest.test_case "basic <=" `Quick basic_le;
    Alcotest.test_case "equality + >=" `Quick with_equality;
    Alcotest.test_case "infeasible" `Quick infeasible_detected;
    Alcotest.test_case "unbounded" `Quick unbounded_detected;
    Alcotest.test_case "negative rhs" `Quick negative_rhs_normalized;
    Alcotest.test_case "degenerate (Bland)" `Quick degenerate_no_cycle;
    Alcotest.test_case "transport duality" `Quick duality_transport;
    Alcotest.test_case "duals: basic <=" `Quick duals_basic_le;
    Alcotest.test_case "duals: flipped rhs orientation" `Quick duals_negative_rhs;
    Alcotest.test_case "duals: equality + >=" `Quick duals_equality_mix;
    Alcotest.test_case "duals: transport contract" `Quick duals_transport_contract;
    Alcotest.test_case "duals: placement LP residuals" `Quick duals_lp_check_residuals;
    QCheck_alcotest.to_alcotest prop_random_2var;
  ]
