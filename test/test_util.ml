(* Tests for vod_util: rng determinism, alias sampling, statistics. *)

let check_float = Alcotest.(check (float 1e-9))

let rng_deterministic () =
  let a = Vod_util.Rng.create 42 and b = Vod_util.Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Vod_util.Rng.float a) (Vod_util.Rng.float b)
  done

let rng_split_independent () =
  let a = Vod_util.Rng.create 42 in
  let c = Vod_util.Rng.split a in
  let x = Vod_util.Rng.float a and y = Vod_util.Rng.float c in
  Alcotest.(check bool) "different streams" true (x <> y)

let rng_float_range () =
  let rng = Vod_util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let f = Vod_util.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let rng_int_bounds () =
  let rng = Vod_util.Rng.create 9 in
  for _ = 1 to 10_000 do
    let i = Vod_util.Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (i >= 0 && i < 7)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Vod_util.Rng.int rng 0))

let rng_permutation_valid () =
  let rng = Vod_util.Rng.create 3 in
  let p = Vod_util.Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let rng_split_n_ordered () =
  (* split_n must produce the same streams, in the same order, as n
     sequential split calls — this is what task-indexed RNG assignment
     in the pool relies on. *)
  let a = Vod_util.Rng.split_n (Vod_util.Rng.create 42) 5 in
  let r = Vod_util.Rng.create 42 in
  for i = 0 to 4 do
    let s = Vod_util.Rng.split r in
    check_float
      (Printf.sprintf "stream %d" i)
      (Vod_util.Rng.float s)
      (Vod_util.Rng.float a.(i))
  done;
  Alcotest.(check int) "zero streams" 0
    (Array.length (Vod_util.Rng.split_n (Vod_util.Rng.create 1) 0));
  Alcotest.check_raises "negative"
    (Invalid_argument "Rng.split_n: n must be nonnegative") (fun () ->
      ignore (Vod_util.Rng.split_n (Vod_util.Rng.create 1) (-1)))

let rng_exponential_mean () =
  let rng = Vod_util.Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Vod_util.Rng.exponential rng ~rate:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let sampler_uniformity () =
  let rng = Vod_util.Rng.create 5 in
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let s = Vod_util.Sampler.create weights in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Vod_util.Sampler.draw s rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10.0 in
      let got = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d frequency" i)
        true
        (Float.abs (got -. expected) < 0.01))
    counts

let sampler_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Sampler.create: empty weight vector")
    (fun () -> ignore (Vod_util.Sampler.create [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Sampler.create: negative weight")
    (fun () -> ignore (Vod_util.Sampler.create [| 1.0; -1.0 |]));
  Alcotest.check_raises "zero sum" (Invalid_argument "Sampler.create: weights must sum to > 0")
    (fun () -> ignore (Vod_util.Sampler.create [| 0.0; 0.0 |]));
  (* Non-finite weights used to slip past the negative-weight check
     (infinity /. infinity = nan inside the alias table). *)
  Alcotest.check_raises "infinite" (Invalid_argument "Sampler.create: non-finite weight")
    (fun () -> ignore (Vod_util.Sampler.create [| 1.0; infinity |]));
  Alcotest.check_raises "nan" (Invalid_argument "Sampler.create: non-finite weight")
    (fun () -> ignore (Vod_util.Sampler.create [| Float.nan; 1.0 |]))

let sampler_singleton () =
  let rng = Vod_util.Rng.create 1 in
  let s = Vod_util.Sampler.create [| 5.0 |] in
  for _ = 1 to 100 do
    Alcotest.(check int) "only outcome" 0 (Vod_util.Sampler.draw s rng)
  done

let sampler_zero_weight_never_drawn () =
  let rng = Vod_util.Rng.create 2 in
  let s = Vod_util.Sampler.create [| 1.0; 0.0; 1.0 |] in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "index 1 never drawn" true (Vod_util.Sampler.draw s rng <> 1)
  done

let stats_basics () =
  check_float "mean" 2.5 (Vod_util.Stats_acc.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "mean empty" 0.0 (Vod_util.Stats_acc.mean [||]);
  check_float "max" 4.0 (Vod_util.Stats_acc.max_elt [| 1.0; 4.0; 3.0 |]);
  check_float "min" 1.0 (Vod_util.Stats_acc.min_elt [| 1.0; 4.0; 3.0 |]);
  (* Empty extrema are 0.0 by contract, not +/-infinity. *)
  check_float "max empty" 0.0 (Vod_util.Stats_acc.max_elt [||]);
  check_float "min empty" 0.0 (Vod_util.Stats_acc.min_elt [||]);
  check_float "sum" 10.0 (Vod_util.Stats_acc.sum [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "median" 2.0 (Vod_util.Stats_acc.percentile 0.5 [| 3.0; 1.0; 2.0 |]);
  check_float "geomean" 2.0 (Vod_util.Stats_acc.geometric_mean [| 1.0; 2.0; 4.0 |])

let cosine_similarity_cases () =
  let v l =
    let t = Hashtbl.create 8 in
    List.iter (fun (k, x) -> Hashtbl.replace t k x) l;
    t
  in
  check_float "identical" 1.0
    (Vod_util.Stats_acc.cosine_similarity (v [ (1, 2.0); (2, 3.0) ]) (v [ (1, 2.0); (2, 3.0) ]));
  check_float "orthogonal" 0.0
    (Vod_util.Stats_acc.cosine_similarity (v [ (1, 1.0) ]) (v [ (2, 1.0) ]));
  check_float "empty" 0.0 (Vod_util.Stats_acc.cosine_similarity (v []) (v [ (1, 1.0) ]))

(* The float-order fix: aggregates over hash tables fold in sorted key
   order, so the result is bit-identical no matter how the table was
   built (insertion order, deletions, resizes). *)
let cosine_order_invariance () =
  let keys = List.init 200 (fun i -> i) in
  let value k = 1.0 /. (float_of_int k +. 3.14159) in
  let build order =
    let t = Hashtbl.create 4 in
    List.iter (fun k -> Hashtbl.replace t k (value k)) order;
    (* churn: delete and re-insert a slice to perturb bucket layout *)
    List.iter
      (fun k -> if k mod 3 = 0 then Hashtbl.remove t k)
      order;
    List.iter
      (fun k -> if k mod 3 = 0 then Hashtbl.replace t k (value k))
      (List.rev order);
    t
  in
  let forward = build keys in
  let backward = build (List.rev keys) in
  let other = build (List.filter (fun k -> k mod 2 = 0) keys) in
  let s1 = Vod_util.Stats_acc.cosine_similarity forward other in
  let s2 = Vod_util.Stats_acc.cosine_similarity backward other in
  Alcotest.(check bool) "bit-identical across table histories" true (s1 = s2);
  Alcotest.(check bool) "similarity in (0, 1]" true (s1 > 0.0 && s1 <= 1.0)

let sorted_keys_cases () =
  let t = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace t k ()) [ 5; 1; 9; 1; 3 ];
  Alcotest.(check (list int)) "ascending, de-duplicated" [ 1; 3; 5; 9 ]
    (Vod_util.Stats_acc.sorted_keys Int.compare t);
  Alcotest.(check (list int)) "empty table" []
    (Vod_util.Stats_acc.sorted_keys Int.compare (Hashtbl.create 4))

(* Regression for the stats_acc sort switching from polymorphic
   [compare] to [Float.compare]: identical results on NaN-free input,
   and deterministic behavior in the presence of duplicates. *)
let percentile_nan_free () =
  let a = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  check_float "min rank" 1.0 (Vod_util.Stats_acc.percentile 0.0 a);
  check_float "median" 3.0 (Vod_util.Stats_acc.percentile 0.5 a);
  check_float "max rank" 5.0 (Vod_util.Stats_acc.percentile 1.0 a);
  check_float "p25" 2.0 (Vod_util.Stats_acc.percentile 0.25 a);
  (* The input array must not be mutated by the internal sort. *)
  Alcotest.(check (array (float 0.0))) "input untouched" [| 5.0; 1.0; 4.0; 2.0; 3.0 |] a

let percentile_duplicates_deterministic () =
  let a = [| 2.0; 1.0; 2.0; 3.0; 2.0; 1.0 |] in
  (* sorted: 1 1 2 2 2 3; nearest-rank median index round(0.5*5)=3 *)
  check_float "median with dups" 2.0 (Vod_util.Stats_acc.percentile 0.5 a);
  (* Any permutation of the same multiset gives the same percentiles. *)
  let b = [| 1.0; 2.0; 3.0; 2.0; 1.0; 2.0 |] in
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "permutation-invariant p=%.2f" p)
        (Vod_util.Stats_acc.percentile p a)
        (Vod_util.Stats_acc.percentile p b))
    [ 0.0; 0.2; 0.4; 0.5; 0.6; 0.8; 1.0 ]

(* ---- domain pool ---- *)

exception Boom of int

let pool_map_order_preserved () =
  Vod_util.Pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 257 (fun i -> i) in
      let out = Vod_util.Pool.map pool ~f:(fun x -> (2 * x) + 1) input in
      Alcotest.(check (array int)) "map in input order"
        (Array.map (fun x -> (2 * x) + 1) input)
        out;
      let outi = Vod_util.Pool.mapi pool ~f:(fun i x -> i + x) input in
      Alcotest.(check (array int)) "mapi sees its own index"
        (Array.map (fun x -> 2 * x) input)
        outi)

let pool_iteri_covers_every_index () =
  Vod_util.Pool.with_pool ~jobs:3 (fun pool ->
      let n = 100 in
      let hits = Array.make n 0 in
      (* Each slot is written by exactly one task, so no data race. *)
      Vod_util.Pool.iteri pool ~n ~f:(fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "each index exactly once" (Array.make n 1) hits)

let pool_map_reduce_sequential_fold () =
  (* The combine fold must run in task order: feed it a non-commutative
     combine and compare against the sequential result. *)
  let n = 64 in
  let expected =
    let acc = ref "" in
    for i = 0 to n - 1 do
      acc := !acc ^ "," ^ string_of_int i
    done;
    !acc
  in
  List.iter
    (fun jobs ->
      Vod_util.Pool.with_pool ~jobs (fun pool ->
          let got =
            Vod_util.Pool.map_reduce pool ~n ~map:string_of_int ~init:""
              ~combine:(fun acc s -> acc ^ "," ^ s)
          in
          Alcotest.(check string)
            (Printf.sprintf "in-order fold at jobs=%d" jobs)
            expected got))
    [ 1; 2; 4; 7 ]

let pool_results_job_count_invariant () =
  (* A randomized workload driven by per-task split streams gives
     bit-identical floats at any job count. *)
  let run jobs =
    Vod_util.Pool.with_pool ~jobs (fun pool ->
        let streams = Vod_util.Rng.split_n (Vod_util.Rng.create 99) 40 in
        Vod_util.Pool.mapi pool
          ~f:(fun _ rng ->
            let acc = ref 0.0 in
            for _ = 1 to 1000 do
              acc := !acc +. Vod_util.Rng.float rng
            done;
            !acc)
          streams)
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "bit-identical at jobs=%d" jobs)
        reference (run jobs))
    [ 2; 4; 8 ]

let pool_exception_propagates () =
  Vod_util.Pool.with_pool ~jobs:4 (fun pool ->
      (* The lowest-indexed failure wins regardless of scheduling, and
         the raising batch must not deadlock or poison the pool. *)
      let saw = ref None in
      (try
         Vod_util.Pool.iteri pool ~n:50 ~f:(fun i ->
             if i mod 10 = 3 then raise (Boom i))
       with Boom i -> saw := Some i);
      Alcotest.(check (option int)) "lowest-indexed failure" (Some 3) !saw;
      (* The pool is still usable after a failed batch. *)
      let out = Vod_util.Pool.map pool ~f:succ (Array.init 20 (fun i -> i)) in
      Alcotest.(check (array int)) "pool survives" (Array.init 20 succ) out)

let pool_rejects_after_shutdown () =
  let pool = Vod_util.Pool.create ~jobs:2 () in
  Vod_util.Pool.shutdown pool;
  Vod_util.Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.iteri: pool is shut down") (fun () ->
      Vod_util.Pool.iteri pool ~n:3 ~f:ignore)

let pool_nested_submission_runs_inline () =
  Vod_util.Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Vod_util.Pool.map pool
          ~f:(fun x ->
            (* Reentrant use of the same pool: must degrade to inline
               execution, not deadlock. *)
            Array.fold_left ( + ) 0
              (Vod_util.Pool.map pool ~f:(fun y -> x * y) [| 1; 2; 3 |]))
          [| 1; 2 |]
      in
      Alcotest.(check (array int)) "nested results" [| 6; 12 |] out)

let pool_default_jobs_override () =
  let before = Vod_util.Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Vod_util.Pool.set_default_jobs before)
    (fun () ->
      Vod_util.Pool.set_default_jobs 3;
      Alcotest.(check int) "override" 3 (Vod_util.Pool.default_jobs ());
      Vod_util.Pool.set_default_jobs 0;
      Alcotest.(check bool) "reset to hardware default" true
        (Vod_util.Pool.default_jobs () >= 1);
      Alcotest.check_raises "negative"
        (Invalid_argument "Pool.set_default_jobs: negative job count") (fun () ->
          Vod_util.Pool.set_default_jobs (-1)))

let table_render () =
  let s = Vod_util.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "10"; "20" ] ] in
  Alcotest.(check bool) "contains header" true (String.length s > 0);
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row") (fun () ->
      ignore (Vod_util.Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let prop_sampler_matches_weights =
  QCheck.Test.make ~name:"alias sampler never draws zero-weight outcomes" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.0 10.0))
    (fun ws ->
      let ws = Array.of_list ws in
      QCheck.assume (Array.exists (fun w -> w > 0.1) ws);
      let s = Vod_util.Sampler.create ws in
      let rng = Vod_util.Rng.create 77 in
      let ok = ref true in
      for _ = 1 to 500 do
        let i = Vod_util.Sampler.draw s rng in
        if ws.(i) = 0.0 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
    Alcotest.test_case "rng split independent" `Quick rng_split_independent;
    Alcotest.test_case "rng float range" `Quick rng_float_range;
    Alcotest.test_case "rng int bounds" `Quick rng_int_bounds;
    Alcotest.test_case "rng permutation valid" `Quick rng_permutation_valid;
    Alcotest.test_case "rng split_n ordered" `Quick rng_split_n_ordered;
    Alcotest.test_case "rng exponential mean" `Quick rng_exponential_mean;
    Alcotest.test_case "sampler uniformity" `Quick sampler_uniformity;
    Alcotest.test_case "sampler input validation" `Quick sampler_rejects_bad_input;
    Alcotest.test_case "sampler singleton" `Quick sampler_singleton;
    Alcotest.test_case "sampler zero weight" `Quick sampler_zero_weight_never_drawn;
    Alcotest.test_case "stats basics" `Quick stats_basics;
    Alcotest.test_case "cosine similarity" `Quick cosine_similarity_cases;
    Alcotest.test_case "cosine order invariance" `Quick cosine_order_invariance;
    Alcotest.test_case "sorted keys" `Quick sorted_keys_cases;
    Alcotest.test_case "percentile nan-free values" `Quick percentile_nan_free;
    Alcotest.test_case "percentile duplicates deterministic" `Quick
      percentile_duplicates_deterministic;
    Alcotest.test_case "pool map order" `Quick pool_map_order_preserved;
    Alcotest.test_case "pool iteri coverage" `Quick pool_iteri_covers_every_index;
    Alcotest.test_case "pool map_reduce in-order fold" `Quick
      pool_map_reduce_sequential_fold;
    Alcotest.test_case "pool job-count invariance" `Quick
      pool_results_job_count_invariant;
    Alcotest.test_case "pool exception propagation" `Quick pool_exception_propagates;
    Alcotest.test_case "pool shutdown" `Quick pool_rejects_after_shutdown;
    Alcotest.test_case "pool nested submission" `Quick
      pool_nested_submission_runs_inline;
    Alcotest.test_case "pool default jobs" `Quick pool_default_jobs_override;
    Alcotest.test_case "table render" `Quick table_render;
    QCheck_alcotest.to_alcotest prop_sampler_matches_weights;
  ]
