(* Tests for the phase-4 protocol analysis (lib/lint/cfg + proto): the
   protocols.decl parser, the fixture modules under lib/lintfixture/
   (each rule's fire/quiet shapes, read from disk and analyzed against
   the test declaration they document), baseline round-trips for the new
   rule ids, and the README rule table staying in sync with the rule
   registries that `vodlint --rules` prints. *)

module Proto = Vod_lint.Proto
module Engine = Vod_lint.Engine
module Baseline = Vod_lint.Baseline
module Diagnostic = Vod_lint.Diagnostic

let proto_rules = [ "proto-leak"; "proto-double-release"; "missing-protect" ]

(* ---------- declaration parsing ---------- *)

let decl_parses () =
  let d =
    Proto.decl_of_string
      "# comment\n\
       res acquire=Res.acquire release=Res.release handoff=Res.register \
       bracket=Res.with_res\n\n\
       chan acquire=open_out,open_out_bin release=close_out\n"
  in
  Alcotest.(check (list string))
    "values in file order"
    [
      "Res.acquire";
      "Res.release";
      "Res.register";
      "Res.with_res";
      "open_out";
      "open_out_bin";
      "close_out";
    ]
    (Proto.decl_values d)

let decl_errors () =
  let expect_error name src =
    match Proto.decl_of_string src with
    | exception Proto.Decl_error _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Decl_error")
  in
  expect_error "missing release" "res acquire=Res.acquire\n";
  expect_error "missing acquire" "res release=Res.release\n";
  expect_error "unknown key" "res acquire=A.a release=A.b frobnicate=A.c\n";
  expect_error "duplicate protocol"
    "res acquire=A.a release=A.b\nres acquire=B.a release=B.b\n";
  expect_error "empty value" "res acquire= release=A.b\n";
  Alcotest.(check (list string))
    "empty decl" [] (Proto.decl_values Proto.empty_decl)

(* ---------- fixtures ---------- *)

(* The declaration every lib/lintfixture/proto_* module documents in
   its header. *)
let res_decl () =
  Proto.decl_of_string
    "res acquire=Res.acquire release=Res.release handoff=Res.register \
     bracket=Res.with_res\n"

(* `dune runtest` runs from _build/default/test (where test/dune's deps
   put the fixtures one level up); `dune exec` runs from the project
   root. Resolve a root-relative path under either. *)
let root_rel path = if Sys.file_exists path then path else Filename.concat ".." path

let fixture_dir = "lib/lintfixture"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let proto_findings file =
  let path = root_rel (Filename.concat fixture_dir file) in
  let diags =
    Engine.lint_project_strings ~protocols_decl:(res_decl ())
      [ (path, read_file path) ]
  in
  diags
  |> List.filter (fun d -> List.mem d.Diagnostic.rule proto_rules)
  |> List.map (fun d -> d.Diagnostic.rule)
  |> List.sort compare

let check_fixture name expected =
  Alcotest.(check (list string)) name expected (proto_findings name)

let fixtures_fire () =
  check_fixture "proto_leak_fire.ml"
    [ "proto-leak"; "proto-leak"; "proto-leak" ];
  check_fixture "proto_double_fire.ml"
    [ "proto-double-release"; "proto-double-release" ];
  (* missing_protect_fire relies on the interprocedural Raises summary
     of its local [boom] helper, and the partial-handler shape. *)
  check_fixture "missing_protect_fire.ml"
    [ "missing-protect"; "missing-protect" ]

let fixtures_quiet () =
  check_fixture "proto_leak_quiet.ml" [];
  check_fixture "proto_double_quiet.ml" [];
  (* The acceptance canary: missing_protect_quiet.ml's [protected] is
     the Fun.protect shape — deleting the wrapper turns this check red
     (and the CI lint gate with it). *)
  check_fixture "missing_protect_quiet.ml" []

(* ---------- baseline round-trip for the new rule ids ---------- *)

let baseline_roundtrip () =
  let path = root_rel (Filename.concat fixture_dir "proto_leak_fire.ml") in
  let diags =
    Engine.lint_project_strings ~protocols_decl:(res_decl ())
      [ (path, read_file path) ]
    |> List.filter (fun d -> List.mem d.Diagnostic.rule proto_rules)
  in
  Alcotest.(check bool) "some findings to baseline" true (diags <> []);
  let b = Baseline.of_diagnostics diags in
  let b' = Baseline.of_string (Baseline.to_string b) in
  let applied = Baseline.apply b' diags in
  Alcotest.(check int) "all findings absorbed" (List.length diags)
    applied.Baseline.baselined;
  Alcotest.(check (list string)) "nothing fresh" []
    (List.map (fun d -> d.Diagnostic.rule) applied.Baseline.fresh);
  Alcotest.(check int) "nothing stale" 0 (List.length applied.Baseline.stale);
  (* And against a clean run the entries all go stale. *)
  let stale = Baseline.apply b' [] in
  Alcotest.(check int) "entries stale on clean run" (List.length b')
    (List.length stale.Baseline.stale)

(* ---------- README rule table vs the registries ---------- *)

(* `vodlint --rules` prints exactly Rules.all + Project_rules.all; the
   README table must list the same ids with the same phases, in the
   same order. *)
let readme_matches_registry () =
  let expected =
    List.map (fun (r : Vod_lint.Rules.t) -> (r.Vod_lint.Rules.id, "file"))
      Vod_lint.Rules.all
    @ List.map
        (fun (r : Vod_lint.Project_rules.t) ->
          (r.Vod_lint.Project_rules.id, "project"))
        Vod_lint.Project_rules.all
  in
  let table =
    read_file (root_rel "README.md") |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           match String.split_on_char '|' line with
           | "" :: id :: phase :: _ -> (
               let id = String.trim id and phase = String.trim phase in
               match (String.length id > 2 && id.[0] = '`', phase) with
               | true, ("file" | "project") ->
                   Some (String.sub id 1 (String.length id - 2), phase)
               | _ -> None)
           | _ -> None)
  in
  Alcotest.(check (list (pair string string)))
    "README rule table = --rules registry" expected table

let suite =
  [
    Alcotest.test_case "protocols.decl parses" `Quick decl_parses;
    Alcotest.test_case "protocols.decl errors" `Quick decl_errors;
    Alcotest.test_case "fixtures fire" `Quick fixtures_fire;
    Alcotest.test_case "fixtures quiet" `Quick fixtures_quiet;
    Alcotest.test_case "baseline round-trip" `Quick baseline_roundtrip;
    Alcotest.test_case "README table matches registry" `Quick
      readme_matches_registry;
  ]
