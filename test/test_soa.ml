(* Tests for the compact struct-of-arrays request store (lib/workload
   Trace_soa) and the SoA serving paths: lossless round-trips against
   the boxed representation, windowed-reader boundary cases, and
   byte-identical metrics between the array-backed and SoA-backed
   engines in every configuration. *)

module E = Vod_resil.Event
module M = Vod_sim.Metrics
module T = Vod_workload.Trace
module S = Vod_workload.Trace_soa

let ev time_s kind = { E.time_s; kind }

let ring4 () =
  Vod_topology.Graph.create ~name:"ring4" ~n:4
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
    ~populations:[| 2.0; 1.0; 1.0; 1.0 |]

let sim_world () =
  let g = ring4 () in
  let paths = Vod_topology.Paths.compute g in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:30 ~days:7 ~seed:3)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:g.Vod_topology.Graph.populations
         ~mean_daily_requests:400.0 ~seed:4)
  in
  (g, paths, catalog, trace)

let tracegen_params () =
  let g = ring4 () in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:30 ~days:7 ~seed:3)
  in
  Vod_workload.Tracegen.default_params ~catalog
    ~populations:g.Vod_topology.Graph.populations ~mean_daily_requests:400.0
    ~seed:4

let lru_fleet paths catalog =
  Vod_cache.Fleet.random_single ~paths ~catalog
    ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5

let check_requests_equal label (a : T.request array) (b : T.request array) =
  Alcotest.(check int) (label ^ ": length") (Array.length a) (Array.length b);
  Alcotest.(check bool) (label ^ ": requests bit-equal") true (a = b)

(* ---------- round trips ---------- *)

(* of_trace / to_trace is lossless, row for row, on a real generated
   trace (tied times included: the same sort permutation applies). *)
let roundtrip_of_to_trace () =
  let _, _, _, trace = sim_world () in
  let soa = S.of_trace trace in
  Alcotest.(check int) "length" (T.length trace) (S.length soa);
  Alcotest.(check int) "n_vhos" trace.T.n_vhos soa.S.n_vhos;
  Alcotest.(check int) "days" trace.T.days soa.S.days;
  let back = S.to_trace soa in
  check_requests_equal "to_trace" trace.T.requests back.T.requests;
  (* Row accessors agree with the boxed records. *)
  Array.iteri
    (fun i (r : T.request) ->
      Alcotest.(check bool) "time bit-equal" true (S.time soa i = r.T.time_s);
      Alcotest.(check int) "vho" r.T.vho (S.vho soa i);
      Alcotest.(check int) "video" r.T.video (S.video soa i))
    trace.T.requests;
  Alcotest.(check int) "resident bytes = 16/row" (16 * T.length trace)
    (S.resident_bytes soa)

(* The SoA generator emits exactly the rows of the boxed generator. *)
let generate_soa_matches_generate () =
  let p = tracegen_params () in
  let boxed = S.of_trace (Vod_workload.Tracegen.generate p) in
  let soa = Vod_workload.Tracegen.generate_soa p in
  check_requests_equal "generate_soa"
    (S.window_requests boxed ~lo:0 ~hi:(S.length boxed))
    (S.window_requests soa ~lo:0 ~hi:(S.length soa))

(* Sharded generation is bit-identical at any job count and any staging
   window. *)
let generate_soa_jobs_invariant () =
  let p = tracegen_params () in
  let seq = Vod_workload.Tracegen.generate_soa ~jobs:1 p in
  let par = Vod_workload.Tracegen.generate_soa ~jobs:3 ~window_days:2 p in
  check_requests_equal "jobs 1 vs 3"
    (S.window_requests seq ~lo:0 ~hi:(S.length seq))
    (S.window_requests par ~lo:0 ~hi:(S.length par))

(* CSV: save_csv_soa / load_csv_soa round-trips through the streaming
   loader (times quantized to the CSV's 1 ms, as the boxed loader). *)
let csv_roundtrip_soa () =
  let _, _, _, trace = sim_world () in
  let soa = S.of_trace trace in
  let path = Filename.temp_file "vod_soa" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Vod_workload.Trace_io.save_csv_soa soa path;
      let loaded =
        Vod_workload.Trace_io.load_csv_soa ~n_videos:30
          ~n_vhos:trace.T.n_vhos ~days:trace.T.days path
      in
      Alcotest.(check int) "length" (S.length soa) (S.length loaded);
      (* Compare against the boxed loader: identical parse, identical
         sort. *)
      let boxed =
        Vod_workload.Trace_io.load_csv ~n_videos:30 ~n_vhos:trace.T.n_vhos
          ~days:trace.T.days path
      in
      check_requests_equal "csv"
        boxed.T.requests
        (S.window_requests loaded ~lo:0 ~hi:(S.length loaded)))

(* ---------- windowed reader ---------- *)

(* between agrees with the boxed binary search, including an empty
   window and one spanning a day edge. *)
let between_windows () =
  let _, _, _, trace = sim_world () in
  let soa = S.of_trace trace in
  let check_range label ~t0_s ~t1_s =
    let lo, hi = S.between soa ~t0_s ~t1_s in
    check_requests_equal label
      (T.between trace ~t0_s ~t1_s)
      (S.window_requests soa ~lo ~hi)
  in
  let day = T.seconds_per_day in
  check_range "empty window" ~t0_s:(2.0 *. day +. 0.25) ~t1_s:(2.0 *. day +. 0.25);
  check_range "day edge" ~t0_s:(1.5 *. day) ~t1_s:(2.5 *. day);
  check_range "full horizon" ~t0_s:0.0 ~t1_s:(7.0 *. day);
  check_range "before start" ~t0_s:(-10.0) ~t1_s:0.0;
  check_range "past end" ~t0_s:(7.0 *. day) ~t1_s:(8.0 *. day);
  (* between_days matches the boxed day slicing over every day edge. *)
  for d = 0 to 6 do
    let lo, hi = S.between_days soa ~day_lo:d ~day_hi:(d + 1) in
    check_requests_equal
      (Printf.sprintf "day %d" d)
      (T.between_days trace ~day_lo:d ~day_hi:(d + 1))
      (S.window_requests soa ~lo ~hi)
  done

(* iter_windows tiles the store exactly: every row once, in order, no
   chunk larger than the window. *)
let iter_windows_tiling () =
  let _, _, _, trace = sim_world () in
  let soa = S.of_trace trace in
  let n = S.length soa in
  List.iter
    (fun window ->
      let expected = ref 0 in
      S.iter_windows soa ~window ~f:(fun ~lo ~hi ->
          Alcotest.(check int) "chunks are contiguous" !expected lo;
          Alcotest.(check bool) "chunk non-empty" true (hi > lo);
          Alcotest.(check bool) "chunk within window" true (hi - lo <= window);
          expected := hi);
      Alcotest.(check int) "covers every row" n !expected)
    [ 1; 7; n; n + 100 ];
  (* Empty store: no calls. *)
  let empty =
    S.of_columns ~n_vhos:4 ~days:7 ~times:[||] ~vhos:[||] ~videos:[||]
  in
  S.iter_windows empty ~window:8 ~f:(fun ~lo:_ ~hi:_ ->
      Alcotest.fail "no windows expected on an empty store")

(* ---------- demand extraction ---------- *)

let demand_of_soa_matches_of_requests () =
  let g, _, catalog, trace = sim_world () in
  let n_vhos = Vod_topology.Graph.n_nodes g in
  let soa = S.of_trace trace in
  let lo, hi = S.between_days soa ~day_lo:0 ~day_hi:7 in
  let from_soa =
    Vod_workload.Demand.of_soa catalog ~n_vhos ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 soa ~lo ~hi
  in
  let from_requests =
    Vod_workload.Demand.of_requests catalog ~n_vhos ~day0:0 ~days:7
      ~n_windows:2 ~window_s:3600.0
      (T.between_days trace ~day_lo:0 ~day_hi:7)
  in
  Alcotest.(check bool) "demand models equal" true (from_soa = from_requests)

(* ---------- serving engines ---------- *)

let check_metrics_equal (a : M.t) (b : M.t) =
  Alcotest.(check int) "requests" a.M.requests b.M.requests;
  Alcotest.(check int) "local" a.M.local_served b.M.local_served;
  Alcotest.(check int) "hits" a.M.cache_hits b.M.cache_hits;
  Alcotest.(check int) "remote" a.M.remote_served b.M.remote_served;
  Alcotest.(check int) "not cachable" a.M.not_cachable b.M.not_cachable;
  Alcotest.(check bool) "gb_hops bit-equal" true
    (a.M.total_gb_hops = b.M.total_gb_hops);
  Alcotest.(check bool) "gb_remote bit-equal" true
    (a.M.total_gb_remote = b.M.total_gb_remote);
  Alcotest.(check bool) "per-vho requests" true
    (a.M.per_vho_requests = b.M.per_vho_requests);
  Alcotest.(check bool) "per-vho local" true
    (a.M.per_vho_local = b.M.per_vho_local);
  Alcotest.(check bool) "link-load matrix byte-equal" true
    (a.M.link_load = b.M.link_load)

(* Legacy engine: Sim.run_soa ≡ Sim.run. *)
let sim_soa_matches_sim () =
  let g, paths, catalog, trace = sim_world () in
  let record_from = 1.0 *. T.seconds_per_day in
  let arr =
    Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet:(lru_fleet paths catalog)
      ~trace ~record_from ()
  in
  let soa =
    Vod_sim.Sim.run_soa ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~store:(S.of_trace trace) ~record_from
      ()
  in
  check_metrics_equal arr soa

let faulted_config () =
  let horizon = 7.0 *. T.seconds_per_day in
  let schedule =
    E.create
      [
        ev (0.3 *. horizon) (E.Vho_down 0);
        ev (0.5 *. horizon) (E.Surge_start { vho = 1; factor = 2.0 });
        ev (0.6 *. horizon) (E.Vho_up 0);
        ev (0.7 *. horizon) (E.Surge_end 1);
      ]
  in
  Vod_resil.Playout.config ~schedule ~link_capacity_mbps:120.0 ~origin:2 ()

let check_windows_equal a b =
  Alcotest.(check int) "window count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Vod_resil.Playout.window) (y : Vod_resil.Playout.window) ->
      Alcotest.(check string) "trigger" x.Vod_resil.Playout.trigger
        y.Vod_resil.Playout.trigger;
      Alcotest.(check int) "window requests" x.Vod_resil.Playout.requests
        y.Vod_resil.Playout.requests;
      Alcotest.(check int) "window rejections" x.Vod_resil.Playout.rejections
        y.Vod_resil.Playout.rejections;
      Alcotest.(check int) "window failovers" x.Vod_resil.Playout.failovers
        y.Vod_resil.Playout.failovers)
    a b

(* Resilience engine: Playout.run_soa ≡ Playout.run, degradation
   counters and event windows included. *)
let playout_soa_matches_playout () =
  let g, paths, catalog, trace = sim_world () in
  let config = faulted_config () in
  let arr, arr_w =
    Vod_resil.Playout.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace config
  in
  let soa, soa_w =
    Vod_resil.Playout.run_soa ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~store:(S.of_trace trace) config
  in
  check_metrics_equal arr soa;
  let da = arr.M.deg and db = soa.M.deg in
  Alcotest.(check int) "rejections" da.M.rejections db.M.rejections;
  Alcotest.(check int) "failovers" da.M.failovers db.M.failovers;
  Alcotest.(check int) "origin served" da.M.origin_served db.M.origin_served;
  Alcotest.(check bool) "saturation bit-equal" true
    (da.M.link_saturated_s = db.M.link_saturated_s);
  Alcotest.(check bool) "faulted something" true (da.M.rejections > 0);
  check_windows_equal arr_w soa_w

(* Unified loop, both configurations: Loop.run_soa ≡ Loop.run. *)
let loop_soa_matches_loop_direct () =
  let g, paths, catalog, trace = sim_world () in
  let record_from = 1.0 *. T.seconds_per_day in
  let arr, _ =
    Vod_serve.Loop.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace ~record_from ()
  in
  let soa, windows =
    Vod_serve.Loop.run_soa ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~store:(S.of_trace trace) ~record_from
      ()
  in
  check_metrics_equal arr soa;
  Alcotest.(check bool) "no windows in direct mode" true (windows = [])

let loop_soa_matches_loop_faulted () =
  let g, paths, catalog, trace = sim_world () in
  let config = faulted_config () in
  let arr, arr_w =
    Vod_serve.Loop.run ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~trace ~resil:config ()
  in
  let soa, soa_w =
    Vod_serve.Loop.run_soa ~graph:g ~paths ~catalog
      ~fleet:(lru_fleet paths catalog) ~store:(S.of_trace trace) ~resil:config
      ()
  in
  check_metrics_equal arr soa;
  Alcotest.(check int) "rejections" arr.M.deg.M.rejections
    soa.M.deg.M.rejections;
  check_windows_equal arr_w soa_w

(* Segment-wise playout through play_soa (the pipeline's pattern) is
   the whole-trace playout: ranges from between_days tile the store. *)
let play_soa_segments_match_whole () =
  let g, paths, catalog, trace = sim_world () in
  let soa = S.of_trace trace in
  let fleet = lru_fleet paths catalog in
  let fresh () =
    M.create
      ~n_links:(Vod_topology.Graph.n_links g)
      ~n_vhos:(Vod_topology.Graph.n_nodes g)
      ~horizon_s:(7.0 *. T.seconds_per_day) ()
  in
  let whole = fresh () in
  let engine1 =
    Vod_serve.Loop.create ~graph:g ~paths ~catalog ~fleet:(lru_fleet paths catalog) ()
  in
  Vod_serve.Loop.play_soa engine1 whole soa ~lo:0 ~hi:(S.length soa);
  let seg = fresh () in
  let engine2 = Vod_serve.Loop.create ~graph:g ~paths ~catalog ~fleet () in
  List.iter
    (fun (day_lo, day_hi) ->
      let lo, hi = S.between_days soa ~day_lo ~day_hi in
      Vod_serve.Loop.play_soa engine2 seg soa ~lo ~hi)
    [ (0, 2); (2, 3); (3, 7) ];
  check_metrics_equal whole seg

(* Pipeline with cfg.soa = true reproduces the array-backed pipeline
   byte-for-byte for both an MIP scheme and a caching scheme. *)
let pipeline_soa_flag_identity () =
  let scenario =
    Vod_core.Scenario.make ~days:10 ~requests_per_video_per_day:4.0 ~seed:9
      ~graph:(ring4 ()) ~n_videos:40 ()
  in
  let base =
    {
      (Vod_core.Pipeline.default_config ~scenario
         ~disk_gb:(Vod_core.Scenario.uniform_disk scenario ~multiple:2.0)
         ~link_capacity_mbps:500.0)
      with
      Vod_core.Pipeline.warmup_days = 2;
    }
  in
  List.iter
    (fun scheme ->
      let arr = Vod_core.Pipeline.run base scheme in
      let soa =
        Vod_core.Pipeline.run { base with Vod_core.Pipeline.soa = true } scheme
      in
      Alcotest.(check string) "scheme name"
        arr.Vod_core.Pipeline.scheme_name soa.Vod_core.Pipeline.scheme_name;
      check_metrics_equal arr.Vod_core.Pipeline.metrics
        soa.Vod_core.Pipeline.metrics)
    [
      Vod_core.Pipeline.Mip Vod_core.Pipeline.default_mip;
      Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru;
    ]

(* ---------- validation ---------- *)

let rejects_bad_rows () =
  Alcotest.check_raises "vho out of range"
    (Invalid_argument "Trace_soa: vho out of range") (fun () ->
      ignore
        (S.of_columns ~n_vhos:4 ~days:7 ~times:[| 1.0 |] ~vhos:[| 4 |]
           ~videos:[| 0 |]));
  let soa =
    S.of_columns ~n_vhos:4 ~days:7 ~times:[| 1.0 |] ~vhos:[| 1 |]
      ~videos:[| 0 |]
  in
  Alcotest.check_raises "bad range"
    (Invalid_argument "Trace_soa.window_requests: range out of bounds")
    (fun () -> ignore (S.window_requests soa ~lo:0 ~hi:2))

let suite =
  [
    Alcotest.test_case "of_trace/to_trace round-trip" `Quick (fun () ->
        roundtrip_of_to_trace ());
    Alcotest.test_case "generate_soa = generate" `Quick (fun () ->
        generate_soa_matches_generate ());
    Alcotest.test_case "generate_soa jobs-invariant" `Quick (fun () ->
        generate_soa_jobs_invariant ());
    Alcotest.test_case "CSV round-trip (streaming)" `Quick (fun () ->
        csv_roundtrip_soa ());
    Alcotest.test_case "between: empty/day-edge windows" `Quick (fun () ->
        between_windows ());
    Alcotest.test_case "iter_windows tiles exactly" `Quick (fun () ->
        iter_windows_tiling ());
    Alcotest.test_case "Demand.of_soa = of_requests" `Quick (fun () ->
        demand_of_soa_matches_of_requests ());
    Alcotest.test_case "Sim.run_soa = Sim.run" `Quick (fun () ->
        sim_soa_matches_sim ());
    Alcotest.test_case "Playout.run_soa = Playout.run" `Quick (fun () ->
        playout_soa_matches_playout ());
    Alcotest.test_case "Loop.run_soa = Loop.run (direct)" `Quick (fun () ->
        loop_soa_matches_loop_direct ());
    Alcotest.test_case "Loop.run_soa = Loop.run (faulted)" `Quick (fun () ->
        loop_soa_matches_loop_faulted ());
    Alcotest.test_case "segmented play_soa = whole" `Quick (fun () ->
        play_soa_segments_match_whole ());
    Alcotest.test_case "Pipeline soa flag byte-identity" `Quick (fun () ->
        pipeline_soa_flag_identity ());
    Alcotest.test_case "validation errors" `Quick (fun () ->
        rejects_bad_rows ());
  ]
