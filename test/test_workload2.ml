(* Second round of workload tests: release dynamics, catalog invariants
   and the temporal profiles — the properties the paper's estimation and
   peak-window machinery depend on. *)

module C = Vod_workload.Catalog
module V = Vod_workload.Video
module Tr = Vod_workload.Trace
module Tg = Vod_workload.Tracegen
module S = Vod_workload.Stats
module P = Vod_workload.Profiles

let catalog () = C.generate (C.default_params ~n:400 ~days:28 ~seed:9)

let populations = Vod_topology.Topologies.zipf_populations ~seed:9 12

let trace catalog =
  Tg.generate
    (Tg.default_params ~catalog ~populations ~mean_daily_requests:1500.0 ~seed:10)

let blockbuster_schedule () =
  let c = catalog () in
  (* Exactly blockbusters_per_week x weeks blockbusters, spread over the
     trace weeks, all released on Saturdays (weekday 5). *)
  let bbs =
    Array.to_list c.C.videos
    |> List.filter (fun v -> v.V.kind = V.Blockbuster)
  in
  Alcotest.(check int) "count" (2 * 4) (List.length bbs);
  List.iter
    (fun v ->
      Alcotest.(check bool) "released during trace" true
        (v.V.release_day > 0 && v.V.release_day < 28);
      Alcotest.(check int) "Saturday release" 5 (v.V.release_day mod 7))
    bbs;
  let weeks = List.map (fun v -> v.V.release_day / 7) bbs |> List.sort_uniq compare in
  Alcotest.(check int) "all four weeks covered" 4 (List.length weeks)

let episodes_share_popularity () =
  let c = catalog () in
  (* All episodes of a series carry the same base weight. *)
  for s = 0 to c.C.n_series - 1 do
    match C.series_episodes c s with
    | [] -> ()
    | first :: rest ->
        List.iter
          (fun v ->
            Alcotest.(check (float 1e-12)) "same base weight" first.V.base_weight
              v.V.base_weight)
          rest
  done

let in_season_split () =
  let c = catalog () in
  let in_season = Hashtbl.create 16 and off_season = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      match v.V.kind with
      | V.Episode { series; _ } ->
          if v.V.release_day > 0 then Hashtbl.replace in_season series ()
          else Hashtbl.replace off_season series ()
      | _ -> ())
    c.C.videos;
  Alcotest.(check bool) "some series in season" true (Hashtbl.length in_season > 0);
  Alcotest.(check bool) "some series off season" true (Hashtbl.length off_season > 0)

let release_spike_shape () =
  let c = catalog () in
  let t = trace c in
  (* For an in-season episode released mid-trace: requests peak within 2
     days of release and decay after. *)
  let target =
    Array.to_list c.C.videos
    |> List.find_opt (fun v ->
           match v.V.kind with
           | V.Episode _ -> v.V.release_day = 11
           | _ -> false)
  in
  match target with
  | None -> Alcotest.fail "no episode released on day 11"
  | Some v ->
      let daily = S.daily_counts t ~video:v.V.id in
      let release_window = daily.(11) + daily.(12) in
      let later = daily.(18) + daily.(19) in
      Alcotest.(check int) "silent before release" 0
        (Array.fold_left ( + ) 0 (Array.sub daily 0 11));
      Alcotest.(check bool)
        (Printf.sprintf "spike decays (%d then %d)" release_window later)
        true
        (release_window > later)

let day_weight_semantics () =
  let v_unreleased =
    { V.id = 0; size_class = V.Show; kind = V.Regular; release_day = 20; base_weight = 0.5 }
  in
  Alcotest.(check (float 0.0)) "zero before release" 0.0
    (P.video_day_weight v_unreleased ~day:10);
  Alcotest.(check bool) "spike at release" true
    (P.video_day_weight v_unreleased ~day:20 > 0.5);
  let v_old = { v_unreleased with V.release_day = 0 } in
  Alcotest.(check (float 1e-12)) "steady state" 0.5 (P.video_day_weight v_old ~day:10)

let profile_tables () =
  Alcotest.(check int) "7 weekdays" 7 (Array.length P.day_of_week_weight);
  Alcotest.(check int) "24 hours" 24 (Array.length P.hour_of_day_weight);
  (* Friday and Saturday are the two busiest days (paper Sec. VI-B). *)
  let sorted =
    List.sort (fun a b -> compare b a) (Array.to_list P.day_of_week_weight)
  in
  (match sorted with
  | a :: b :: _ ->
      Alcotest.(check (float 1e-9)) "saturday top" P.day_of_week_weight.(5) a;
      Alcotest.(check (float 1e-9)) "friday second" P.day_of_week_weight.(4) b
  | _ -> Alcotest.fail "impossible");
  (* Prime time beats overnight. *)
  Alcotest.(check bool) "prime time peak" true (P.hour_weight 21 > 4.0 *. P.hour_weight 3);
  Alcotest.(check bool) "cyclic day" true (P.day_weight 7 = P.day_weight 0)

let taste_multiplier_props () =
  let spread = 0.6 in
  for vho = 0 to 20 do
    for video = 0 to 20 do
      let m = P.taste_multiplier ~spread ~vho ~video in
      Alcotest.(check bool) "within bounds" true (m >= 1.0 -. spread && m <= 1.0 +. spread);
      Alcotest.(check (float 1e-12)) "deterministic" m (P.taste_multiplier ~spread ~vho ~video)
    done
  done

let series_taste_stable_across_episodes () =
  (* Episodes of the same series attract the same VHO mix: their per-VHO
     request shares should correlate strongly. Uses two consecutive
     in-season episodes with enough volume. *)
  let c = catalog () in
  let t = trace c in
  let eps =
    Array.to_list c.C.videos
    |> List.filter (fun v ->
           match v.V.kind with
           | V.Episode { series; _ } -> series = 0 && v.V.release_day > 0 && v.V.release_day <= 14
           | _ -> false)
  in
  match eps with
  | a :: b :: _ ->
      let shares video =
        let counts = Array.make 12 0.0 in
        Tr.iter (fun r -> if r.Tr.video = video then counts.(r.Tr.vho) <- counts.(r.Tr.vho) +. 1.0) t;
        let tbl = Hashtbl.create 12 in
        Array.iteri (fun i c -> if c > 0.0 then Hashtbl.replace tbl i c) counts;
        tbl
      in
      let sim =
        Vod_util.Stats_acc.cosine_similarity (shares a.V.id) (shares b.V.id)
      in
      Alcotest.(check bool)
        (Printf.sprintf "episode VHO mixes similar (cos %.2f)" sim)
        true (sim > 0.7)
  | _ -> ()

let zipf_fit_recovers_exponent () =
  (* Synthetic counts drawn exactly from r^-0.8 must fit back to ~0.8. *)
  let counts = Array.init 500 (fun r -> int_of_float (1e6 *. ((float_of_int (r + 1)) ** -0.8))) in
  let alpha = S.fit_zipf_exponent counts in
  Alcotest.(check bool) (Printf.sprintf "alpha ~ 0.8 (got %.2f)" alpha) true
    (Float.abs (alpha -. 0.8) < 0.05)

let generated_trace_matches_popularity_law () =
  let c = catalog () in
  let t = trace c in
  let counts = Vod_workload.Trace.counts_per_video t ~n_videos:(C.n_videos c) in
  let alpha = S.fit_zipf_exponent counts in
  (* Release spikes and taste noise flatten/steepen the head a little;
     accept a generous band around the configured 0.8. *)
  Alcotest.(check bool) (Printf.sprintf "alpha in [0.4, 1.3] (got %.2f)" alpha) true
    (alpha > 0.4 && alpha < 1.3)

let fit_zipf_validation () =
  Alcotest.check_raises "too few points"
    (Invalid_argument "Stats.fit_zipf_exponent: not enough positive counts")
    (fun () -> ignore (S.fit_zipf_exponent [| 5 |]))

let concurrency_window_monotone () =
  (* Larger windows can only count more concurrent streams (Table V's
     over-provisioning mechanism). *)
  let c = catalog () in
  let t = trace c in
  let total window_s =
    let peak = S.peak_hour_start_s t in
    let tbl = S.concurrency t c ~t0:peak ~t1:(peak +. window_s) in
    Hashtbl.fold (fun _ n acc -> acc + n) tbl 0
  in
  let small = total 1.0 and hour = total 3600.0 and day = total 86_400.0 in
  Alcotest.(check bool) "1s <= 1h" true (small <= hour);
  Alcotest.(check bool) "1h <= 1day" true (hour <= day)

let suite =
  [
    Alcotest.test_case "blockbuster schedule" `Quick blockbuster_schedule;
    Alcotest.test_case "episodes share popularity" `Quick episodes_share_popularity;
    Alcotest.test_case "in-season split" `Quick in_season_split;
    Alcotest.test_case "release spike shape" `Quick release_spike_shape;
    Alcotest.test_case "day weight semantics" `Quick day_weight_semantics;
    Alcotest.test_case "profile tables" `Quick profile_tables;
    Alcotest.test_case "taste multiplier" `Quick taste_multiplier_props;
    Alcotest.test_case "series taste stability" `Quick series_taste_stable_across_episodes;
    Alcotest.test_case "concurrency monotone in window" `Quick concurrency_window_monotone;
    Alcotest.test_case "zipf fit recovers exponent" `Quick zipf_fit_recovers_exponent;
    Alcotest.test_case "trace matches popularity law" `Quick generated_trace_matches_popularity_law;
    Alcotest.test_case "zipf fit validation" `Quick fit_zipf_validation;
  ]
