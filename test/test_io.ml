(* Tests for the I/O layer: trace CSV round-trip, placement CSV
   round-trip, and edge-list topology loading. *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let trace_roundtrip () =
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:30 ~days:7 ~seed:1)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:(Vod_topology.Topologies.zipf_populations ~seed:1 5)
         ~mean_daily_requests:200.0 ~seed:2)
  in
  let path = tmp "vodopt_trace_test.csv" in
  Vod_workload.Trace_io.save_csv trace path;
  let loaded = Vod_workload.Trace_io.load_csv ~n_vhos:5 ~days:7 path in
  Sys.remove path;
  Alcotest.(check int) "same length" (Vod_workload.Trace.length trace)
    (Vod_workload.Trace.length loaded);
  Array.iteri
    (fun i (r : Vod_workload.Trace.request) ->
      let l = loaded.Vod_workload.Trace.requests.(i) in
      Alcotest.(check int) "vho" r.Vod_workload.Trace.vho l.Vod_workload.Trace.vho;
      Alcotest.(check int) "video" r.Vod_workload.Trace.video l.Vod_workload.Trace.video;
      Alcotest.(check bool) "time within 1ms" true
        (Float.abs (r.Vod_workload.Trace.time_s -. l.Vod_workload.Trace.time_s) < 0.002))
    trace.Vod_workload.Trace.requests

let trace_load_checks_video_bound () =
  let path = tmp "vodopt_trace_oob.csv" in
  let oc = open_out path in
  output_string oc "time_s,vho,video\n1.0,0,0\n2.0,1,7\n3.0,0,1\n";
  close_out oc;
  (* Without ~n_videos the loader accepts any nonnegative id (the
     historical behavior callers may rely on for foreign traces). *)
  let unbounded = Vod_workload.Trace_io.load_csv ~n_vhos:2 ~days:1 path in
  Alcotest.(check int) "unbounded load" 3 (Vod_workload.Trace.length unbounded);
  (* With a catalog bound, the out-of-range record is rejected with its
     line number. *)
  Alcotest.check_raises "out-of-range video"
    (Invalid_argument "Trace_io.load_csv: video id 7 out of range [0, 5) on line 3")
    (fun () ->
      ignore (Vod_workload.Trace_io.load_csv ~n_videos:5 ~n_vhos:2 ~days:1 path));
  (* A bound that covers every id loads cleanly. *)
  let bounded = Vod_workload.Trace_io.load_csv ~n_videos:8 ~n_vhos:2 ~days:1 path in
  Alcotest.(check int) "bounded load" 3 (Vod_workload.Trace.length bounded);
  Sys.remove path

let trace_load_rejects_garbage () =
  let path = tmp "vodopt_trace_bad.csv" in
  let oc = open_out path in
  output_string oc "time_s,vho,video\n1.0,0,0\nnot,a,record\n";
  close_out oc;
  Alcotest.check_raises "bad record"
    (Invalid_argument "Trace_io.load_csv: bad record on line 3") (fun () ->
      ignore (Vod_workload.Trace_io.load_csv ~n_vhos:2 ~days:1 path));
  Sys.remove path

let solution_roundtrip () =
  (* Solve a tiny instance, save, load, and compare stored sets/routing. *)
  let graph =
    Vod_topology.Graph.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 2.0; 1.0; 1.0; 1.0 |]
  in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:10 ~days:7 ~seed:3)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:graph.Vod_topology.Graph.populations ~mean_daily_requests:150.0
         ~seed:4)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7 ~n_windows:2
      ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  let inst =
    Vod_placement.Instance.create ~graph ~catalog ~demand
      ~disk_gb:(Vod_placement.Instance.uniform_disk ~total_gb:(2.0 *. total) 4)
      ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph 500.0)
      ()
  in
  let sol = (Vod_placement.Solve.solve inst).Vod_placement.Solve.solution in
  let path = tmp "vodopt_sol_test.csv" in
  Vod_placement.Solution_io.save_csv sol path;
  let loaded = Vod_placement.Solution_io.load_csv ~n_vhos:4 ~n_videos:10 path in
  Sys.remove path;
  for video = 0 to 9 do
    Alcotest.(check (array int)) "stored sets equal" sol.Vod_placement.Solution.stored.(video)
      loaded.Vod_placement.Solution.stored.(video);
    for vho = 0 to 3 do
      let paths = inst.Vod_placement.Instance.paths in
      Alcotest.(check int) "routing equal"
        (Vod_placement.Solution.server sol paths ~video ~vho)
        (Vod_placement.Solution.server loaded paths ~video ~vho)
    done
  done

let solution_load_requires_copies () =
  let path = tmp "vodopt_sol_bad.csv" in
  let oc = open_out path in
  output_string oc "kind,video,vho,server\nstore,0,1,\n";
  close_out oc;
  (* Video 1 has no copy. *)
  Alcotest.check_raises "missing copy"
    (Invalid_argument "Solution_io.load_csv: video 1 has no copy") (fun () ->
      ignore (Vod_placement.Solution_io.load_csv ~n_vhos:2 ~n_videos:2 path));
  Sys.remove path

let edge_list_loading () =
  let path = tmp "vodopt_topo.txt" in
  let oc = open_out path in
  output_string oc "# a comment\n0 1\n1 2\n2 0\n2 3  # chord\n1 2\n";
  close_out oc;
  let g = Vod_topology.Topologies.load_edge_list ~name:"t" ~path () in
  Sys.remove path;
  Alcotest.(check int) "nodes" 4 (Vod_topology.Graph.n_nodes g);
  (* Duplicate edge 1-2 dropped: 4 physical links. *)
  Alcotest.(check int) "links" 4 (Vod_topology.Graph.n_links g / 2);
  Alcotest.(check bool) "connected" true (Vod_topology.Graph.is_connected g)

let edge_list_with_populations () =
  let path = tmp "vodopt_topo2.txt" in
  let oc = open_out path in
  output_string oc "0 1\n1 2\n";
  close_out oc;
  let pop_path = tmp "vodopt_pops.txt" in
  let oc = open_out pop_path in
  output_string oc "3.0\n2.0\n1.0\n";
  close_out oc;
  let g =
    Vod_topology.Topologies.load_edge_list ~path ~populations_path:pop_path ()
  in
  Sys.remove path;
  Sys.remove pop_path;
  Alcotest.(check (float 1e-9)) "population loaded" 3.0
    g.Vod_topology.Graph.populations.(0)

let suite =
  [
    Alcotest.test_case "trace roundtrip" `Quick trace_roundtrip;
    Alcotest.test_case "trace rejects garbage" `Quick trace_load_rejects_garbage;
    Alcotest.test_case "trace video bound" `Quick trace_load_checks_video_bound;
    Alcotest.test_case "solution roundtrip" `Quick solution_roundtrip;
    Alcotest.test_case "solution requires copies" `Quick solution_load_requires_copies;
    Alcotest.test_case "edge list loading" `Quick edge_list_loading;
    Alcotest.test_case "edge list populations" `Quick edge_list_with_populations;
  ]
