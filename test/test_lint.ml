(* vodlint fixture tests: for every rule, one snippet the rule must
   flag and one conforming snippet it must stay quiet on, plus the
   suppression-comment contract and parse-error reporting. Snippets are
   linted in memory via [Engine.lint_string]; the [path] given to the
   engine selects the scoped rules (lib-only, epf/lp-only). *)

let fired ?(path = "lib/fake/mod.ml") src =
  Vod_lint.Engine.lint_string ~path src
  |> List.map (fun d -> d.Vod_lint.Diagnostic.rule)
  |> List.sort_uniq String.compare

let check_fires rule ?path src () =
  Alcotest.(check bool)
    (rule ^ " fires") true
    (List.mem rule (fired ?path src))

let check_quiet rule ?path src () =
  Alcotest.(check (list string)) (rule ^ " quiet") []
    (List.filter (fun r -> r = rule) (fired ?path src))

(* --- poly-compare ------------------------------------------------- *)

let pc_bad = "let f (a : float array) = Array.sort compare a"
let pc_bad_lambda = "let f l = List.sort (fun (_, w1) (_, w2) -> compare w2 w1) l"
let pc_bad_float_eq = "let f x = x = 1.0"
let pc_good = "let f (a : float array) = Array.sort Float.compare a"
let pc_good_guard = "let f x = if x = 1.0 then 0 else 1"

(* --- exception-swallow -------------------------------------------- *)

let es_bad = "let f g = try g () with _ -> 0"
let es_bad_ignore = "let f g = try g () with e -> ignore e"
let es_good = "let f g = try g () with Not_found -> 0"

(* --- hashtbl-find ------------------------------------------------- *)

let hf_bad = "let f t k = Hashtbl.find t k"
let hf_good_try = "let f t k = try Hashtbl.find t k with Not_found -> 0"
let hf_good_match = "let f t k = match Hashtbl.find t k with x -> x | exception Not_found -> 0"
let hf_good_opt = "let f t k = Hashtbl.find_opt t k"

(* --- print-in-lib ------------------------------------------------- *)

let pl_bad = {|let f () = print_endline "x"|}
let pl_good = {|let f () = Logs.info (fun m -> m "x")|}

(* --- no-failwith -------------------------------------------------- *)

let nf_bad = {|let f () = failwith "boom"|}
let nf_bad_assert = "let f = function Some x -> x | None -> assert false"
let nf_good = {|let f () = invalid_arg "bad input"|}

(* --- quadratic-loop ----------------------------------------------- *)

let ql_bad_for = "let f l = for i = 0 to 9 do ignore (List.nth l i) done"
let ql_bad_rec = "let rec f acc = function [] -> acc | x :: tl -> f (acc @ [ x ]) tl"
let ql_good = "let f l = List.nth l 3"
let ql_good_rev = "let rec f acc = function [] -> acc | x :: tl -> f (x :: acc) tl"

(* --- unguarded-div ------------------------------------------------ *)

let ud_bad = "let f a b = a /. b"
let ud_good_guard = "let f a b = if b > 0.0 then a /. b else 0.0"
let ud_good_eps = "let f a ~eps = a /. eps"
let ud_good_match_guard = "let f a = function Some b when b > 0.0 -> a /. b | _ -> 0.0"

(* --- domain-spawn ------------------------------------------------- *)

let ds_bad = "let f g = Domain.spawn g"
let ds_good = "let f pool a = Vod_util.Pool.map pool ~f:succ a"

(* --- suppression -------------------------------------------------- *)

let sup_same_line = "let f t k = Hashtbl.find t k (* vodlint-disable hashtbl-find *)"

let sup_line_above =
  "(* vodlint-disable hashtbl-find -- key inserted two lines up *)\nlet f t k = Hashtbl.find t k"

let sup_all_rules = "let f t k = Hashtbl.find t k (* vodlint-disable *)"
let sup_wrong_rule = "let f t k = Hashtbl.find t k (* vodlint-disable poly-compare *)"

let suppression_cases () =
  Alcotest.(check (list string)) "same-line id suppresses" [] (fired sup_same_line);
  Alcotest.(check (list string)) "line-above id suppresses" [] (fired sup_line_above);
  Alcotest.(check (list string)) "bare marker suppresses all" [] (fired sup_all_rules);
  Alcotest.(check bool) "unrelated id does not suppress" true
    (List.mem "hashtbl-find" (fired sup_wrong_rule))

(* --- engine behavior ---------------------------------------------- *)

let parse_error_reported () =
  Alcotest.(check (list string)) "syntax error becomes a diagnostic" [ "parse-error" ]
    (fired "let = (")

let scoped_rules_respect_path () =
  (* print/failwith are lib-only; unguarded-div is epf/lp-only. *)
  Alcotest.(check (list string)) "print ok outside lib" []
    (fired ~path:"bench/exp.ml" pl_bad);
  Alcotest.(check (list string)) "failwith ok outside lib" []
    (fired ~path:"bin/tool.ml" nf_bad);
  Alcotest.(check (list string)) "division ok outside epf/lp" []
    (fired ~path:"lib/util/maths.ml" ud_bad)

let clean_realistic_snippet () =
  let src =
    {|
let percentile p a =
  if Array.length a = 0 then invalid_arg "empty";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  sorted.(int_of_float (p *. float_of_int (Array.length a - 1)))
|}
  in
  Alcotest.(check (list string)) "clean code is clean" [] (fired ~path:"lib/util/s.ml" src)

let missing_mli_on_disk () =
  (* missing-mli consults the filesystem, so exercise it via lint_file
     on a scratch lib/ directory below the test's working directory. *)
  let dir = "lib/lintfixture" in
  if not (Sys.file_exists "lib") then Sys.mkdir "lib" 0o755;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let ml = Filename.concat dir "orphan.ml" in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ ml; ml ^ "i" ])
    (fun () ->
      write ml "let x = 1\n";
      let rules = List.filter (fun r -> r.Vod_lint.Rules.id = "missing-mli") Vod_lint.Rules.all in
      let fired_ids () =
        Vod_lint.Engine.lint_file ~rules ml |> List.map (fun d -> d.Vod_lint.Diagnostic.rule)
      in
      Alcotest.(check (list string)) "orphan .ml flagged" [ "missing-mli" ] (fired_ids ());
      write (ml ^ "i") "val x : int\n";
      Alcotest.(check (list string)) "paired .ml clean" [] (fired_ids ()))

let json_report_shape () =
  let diags = Vod_lint.Engine.lint_string ~path:"lib/fake/m.ml" hf_bad in
  let json = Vod_lint.Diagnostic.list_to_json diags in
  Alcotest.(check bool) "json mentions rule id" true
    (let sub = {|"rule":"hashtbl-find"|} in
     let n = String.length json and m = String.length sub in
     let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
     go 0)

let suite =
  [
    Alcotest.test_case "poly-compare fires on bare sort" `Quick (check_fires "poly-compare" pc_bad);
    Alcotest.test_case "poly-compare fires in comparator lambda" `Quick
      (check_fires "poly-compare" pc_bad_lambda);
    Alcotest.test_case "poly-compare fires on float-literal =" `Quick
      (check_fires "poly-compare" pc_bad_float_eq);
    Alcotest.test_case "poly-compare quiet on Float.compare" `Quick
      (check_quiet "poly-compare" pc_good);
    Alcotest.test_case "poly-compare quiet on guard-position =" `Quick
      (check_quiet "poly-compare" pc_good_guard);
    Alcotest.test_case "exception-swallow fires on wildcard" `Quick
      (check_fires "exception-swallow" es_bad);
    Alcotest.test_case "exception-swallow fires on ignore e" `Quick
      (check_fires "exception-swallow" es_bad_ignore);
    Alcotest.test_case "exception-swallow quiet on specific exn" `Quick
      (check_quiet "exception-swallow" es_good);
    Alcotest.test_case "hashtbl-find fires raw" `Quick (check_fires "hashtbl-find" hf_bad);
    Alcotest.test_case "hashtbl-find quiet under try" `Quick (check_quiet "hashtbl-find" hf_good_try);
    Alcotest.test_case "hashtbl-find quiet under match-exception" `Quick
      (check_quiet "hashtbl-find" hf_good_match);
    Alcotest.test_case "hashtbl-find quiet on find_opt" `Quick
      (check_quiet "hashtbl-find" hf_good_opt);
    Alcotest.test_case "print-in-lib fires in lib" `Quick (check_fires "print-in-lib" pl_bad);
    Alcotest.test_case "print-in-lib quiet on Logs" `Quick (check_quiet "print-in-lib" pl_good);
    Alcotest.test_case "no-failwith fires on failwith" `Quick (check_fires "no-failwith" nf_bad);
    Alcotest.test_case "no-failwith fires on assert false" `Quick
      (check_fires "no-failwith" nf_bad_assert);
    Alcotest.test_case "no-failwith quiet on invalid_arg" `Quick (check_quiet "no-failwith" nf_good);
    Alcotest.test_case "quadratic-loop fires on List.nth in for" `Quick
      (check_fires "quadratic-loop" ql_bad_for);
    Alcotest.test_case "quadratic-loop fires on @ in rec" `Quick
      (check_fires "quadratic-loop" ql_bad_rec);
    Alcotest.test_case "quadratic-loop quiet outside loops" `Quick
      (check_quiet "quadratic-loop" ql_good);
    Alcotest.test_case "quadratic-loop quiet on cons accumulation" `Quick
      (check_quiet "quadratic-loop" ql_good_rev);
    Alcotest.test_case "unguarded-div fires in epf" `Quick
      (check_fires "unguarded-div" ~path:"lib/epf/f.ml" ud_bad);
    Alcotest.test_case "unguarded-div quiet under if guard" `Quick
      (check_quiet "unguarded-div" ~path:"lib/epf/f.ml" ud_good_guard);
    Alcotest.test_case "unguarded-div quiet on eps param" `Quick
      (check_quiet "unguarded-div" ~path:"lib/lp/f.ml" ud_good_eps);
    Alcotest.test_case "unguarded-div quiet under when guard" `Quick
      (check_quiet "unguarded-div" ~path:"lib/lp/f.ml" ud_good_match_guard);
    Alcotest.test_case "domain-spawn fires outside the pool" `Quick
      (check_fires "domain-spawn" ds_bad);
    Alcotest.test_case "domain-spawn fires in bin too" `Quick
      (check_fires "domain-spawn" ~path:"bin/tool.ml" ds_bad);
    Alcotest.test_case "domain-spawn quiet in the pool module" `Quick
      (check_quiet "domain-spawn" ~path:"lib/util/pool.ml" ds_bad);
    Alcotest.test_case "domain-spawn quiet with ./ prefix" `Quick
      (check_quiet "domain-spawn" ~path:"./lib/util/pool.ml" ds_bad);
    Alcotest.test_case "domain-spawn quiet on pool use" `Quick
      (check_quiet "domain-spawn" ds_good);
    Alcotest.test_case "suppression comments" `Quick suppression_cases;
    Alcotest.test_case "parse error reported" `Quick parse_error_reported;
    Alcotest.test_case "path scoping" `Quick scoped_rules_respect_path;
    Alcotest.test_case "clean snippet" `Quick clean_realistic_snippet;
    Alcotest.test_case "missing mli on disk" `Quick missing_mli_on_disk;
    Alcotest.test_case "json report shape" `Quick json_report_shape;
  ]
