(* vodlint fixture tests: for every rule, one snippet the rule must
   flag and one conforming snippet it must stay quiet on, plus the
   suppression-comment contract and parse-error reporting. Snippets are
   linted in memory via [Engine.lint_string]; the [path] given to the
   engine selects the scoped rules (lib-only, epf/lp-only). *)

let fired ?(path = "lib/fake/mod.ml") src =
  Vod_lint.Engine.lint_string ~path src
  |> List.map (fun d -> d.Vod_lint.Diagnostic.rule)
  |> List.sort_uniq String.compare

let check_fires rule ?path src () =
  Alcotest.(check bool)
    (rule ^ " fires") true
    (List.mem rule (fired ?path src))

let check_quiet rule ?path src () =
  Alcotest.(check (list string)) (rule ^ " quiet") []
    (List.filter (fun r -> r = rule) (fired ?path src))

(* --- poly-compare ------------------------------------------------- *)

let pc_bad = "let f (a : float array) = Array.sort compare a"
let pc_bad_lambda = "let f l = List.sort (fun (_, w1) (_, w2) -> compare w2 w1) l"
let pc_bad_float_eq = "let f x = x = 1.0"
let pc_good = "let f (a : float array) = Array.sort Float.compare a"
let pc_good_guard = "let f x = if x = 1.0 then 0 else 1"

(* --- exception-swallow -------------------------------------------- *)

let es_bad = "let f g = try g () with _ -> 0"
let es_bad_ignore = "let f g = try g () with e -> ignore e"
let es_good = "let f g = try g () with Not_found -> 0"

(* --- hashtbl-find ------------------------------------------------- *)

let hf_bad = "let f t k = Hashtbl.find t k"
let hf_good_try = "let f t k = try Hashtbl.find t k with Not_found -> 0"
let hf_good_match = "let f t k = match Hashtbl.find t k with x -> x | exception Not_found -> 0"
let hf_good_opt = "let f t k = Hashtbl.find_opt t k"

(* --- print-in-lib ------------------------------------------------- *)

let pl_bad = {|let f () = print_endline "x"|}
let pl_good = {|let f () = Logs.info (fun m -> m "x")|}

(* --- no-failwith -------------------------------------------------- *)

let nf_bad = {|let f () = failwith "boom"|}
let nf_bad_assert = "let f = function Some x -> x | None -> assert false"
let nf_good = {|let f () = invalid_arg "bad input"|}

(* --- quadratic-loop ----------------------------------------------- *)

let ql_bad_for = "let f l = for i = 0 to 9 do ignore (List.nth l i) done"
let ql_bad_rec = "let rec f acc = function [] -> acc | x :: tl -> f (acc @ [ x ]) tl"
let ql_good = "let f l = List.nth l 3"
let ql_good_rev = "let rec f acc = function [] -> acc | x :: tl -> f (x :: acc) tl"

(* --- unguarded-div ------------------------------------------------ *)

let ud_bad = "let f a b = a /. b"
let ud_good_guard = "let f a b = if b > 0.0 then a /. b else 0.0"
let ud_good_eps = "let f a ~eps = a /. eps"
let ud_good_match_guard = "let f a = function Some b when b > 0.0 -> a /. b | _ -> 0.0"

(* --- domain-spawn ------------------------------------------------- *)

let ds_bad = "let f g = Domain.spawn g"
let ds_good = "let f pool a = Vod_util.Pool.map pool ~f:succ a"

(* --- suppression -------------------------------------------------- *)

let sup_same_line = "let f t k = Hashtbl.find t k (* vodlint-disable hashtbl-find *)"

let sup_line_above =
  "(* vodlint-disable hashtbl-find -- key inserted two lines up *)\nlet f t k = Hashtbl.find t k"

let sup_all_rules = "let f t k = Hashtbl.find t k (* vodlint-disable *)"
let sup_wrong_rule = "let f t k = Hashtbl.find t k (* vodlint-disable poly-compare *)"

let suppression_cases () =
  Alcotest.(check (list string)) "same-line id suppresses" [] (fired sup_same_line);
  Alcotest.(check (list string)) "line-above id suppresses" [] (fired sup_line_above);
  Alcotest.(check (list string)) "bare marker suppresses all" [] (fired sup_all_rules);
  Alcotest.(check bool) "unrelated id does not suppress" true
    (List.mem "hashtbl-find" (fired sup_wrong_rule))

(* --- engine behavior ---------------------------------------------- *)

let parse_error_reported () =
  Alcotest.(check (list string)) "syntax error becomes a diagnostic" [ "parse-error" ]
    (fired "let = (")

let scoped_rules_respect_path () =
  (* print/failwith are lib-only; unguarded-div is epf/lp-only. *)
  Alcotest.(check (list string)) "print ok outside lib" []
    (fired ~path:"bench/exp.ml" pl_bad);
  Alcotest.(check (list string)) "failwith ok outside lib" []
    (fired ~path:"bin/tool.ml" nf_bad);
  Alcotest.(check (list string)) "division ok outside epf/lp" []
    (fired ~path:"lib/util/maths.ml" ud_bad)

let clean_realistic_snippet () =
  let src =
    {|
let percentile p a =
  if Array.length a = 0 then invalid_arg "empty";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  sorted.(int_of_float (p *. float_of_int (Array.length a - 1)))
|}
  in
  Alcotest.(check (list string)) "clean code is clean" [] (fired ~path:"lib/util/s.ml" src)

let missing_mli_on_disk () =
  (* missing-mli consults the filesystem, so exercise it via lint_file
     on a scratch lib/ directory below the test's working directory. *)
  let dir = "lib/lintfixture" in
  if not (Sys.file_exists "lib") then Sys.mkdir "lib" 0o755;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let ml = Filename.concat dir "orphan.ml" in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ ml; ml ^ "i" ])
    (fun () ->
      write ml "let x = 1\n";
      let rules = List.filter (fun r -> r.Vod_lint.Rules.id = "missing-mli") Vod_lint.Rules.all in
      let fired_ids () =
        Vod_lint.Engine.lint_file ~rules ml |> List.map (fun d -> d.Vod_lint.Diagnostic.rule)
      in
      Alcotest.(check (list string)) "orphan .ml flagged" [ "missing-mli" ] (fired_ids ());
      write (ml ^ "i") "val x : int\n";
      Alcotest.(check (list string)) "paired .ml clean" [] (fired_ids ()))

let json_report_shape () =
  let diags = Vod_lint.Engine.lint_string ~path:"lib/fake/m.ml" hf_bad in
  let json = Vod_lint.Diagnostic.list_to_json diags in
  Alcotest.(check bool) "json mentions rule id" true
    (let sub = {|"rule":"hashtbl-find"|} in
     let n = String.length json and m = String.length sub in
     let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
     go 0)

(* --- project mode: effect analysis -------------------------------- *)

(* Findings of one rule in one file under project mode. Fixtures are
   linted as a set so cross-module summaries resolve. *)
let project_fired rule files =
  Vod_lint.Engine.lint_project_strings files
  |> List.filter_map (fun (d : Vod_lint.Diagnostic.t) ->
         if d.rule = rule then Some d.file else None)

let check_project_fires rule ~in_file files () =
  Alcotest.(check bool)
    (rule ^ " fires in " ^ in_file)
    true
    (List.mem in_file (project_fired rule files))

let check_project_quiet rule files () =
  Alcotest.(check (list string)) (rule ^ " quiet") [] (project_fired rule files)

(* par-race: the acceptance fixture — a captured ref mutated inside a
   Pool closure, directly and via helpers. *)

let pr_direct =
  [
    ( "lib/fake/direct.ml",
      "let go pool =\n\
      \  let total = ref 0.0 in\n\
      \  Vod_util.Pool.iteri pool ~n:4 ~f:(fun i -> total := !total +. float_of_int i);\n\
      \  !total" );
  ]

let pr_same_module_helper =
  [
    ( "lib/fake/helper_mod.ml",
      "let bump r = r := !r +. 1.0\n\
       let go pool =\n\
      \  let c = ref 0.0 in\n\
      \  Vod_util.Pool.iteri pool ~n:4 ~f:(fun _i -> bump c);\n\
      \  !c" );
  ]

let pr_cross_module =
  [
    ("lib/fake/helper.ml", "let bump r = r := !r + 1");
    ( "lib/fake/driver.ml",
      "let go pool =\n\
      \  let c = ref 0 in\n\
      \  Vod_util.Pool.iteri pool ~n:4 ~f:(fun _i -> Helper.bump c);\n\
      \  !c" );
  ]

let pr_local_fn_capture =
  (* The mutating helper is a *local* function of the submitting scope:
     resolved by inline expansion, not the summary table. *)
  [
    ( "lib/fake/local.ml",
      "let go pool =\n\
      \  let c = ref 0 in\n\
      \  let bump () = c := !c + 1 in\n\
      \  Vod_util.Pool.iteri pool ~n:4 ~f:(fun _i -> bump ());\n\
      \  !c" );
  ]

let pr_random =
  [
    ( "lib/fake/rand.ml",
      "let go pool a = Vod_util.Pool.map pool ~f:(fun i -> Random.int i) a" );
  ]

let pr_io =
  [
    ( "lib/fake/io.ml",
      "let go pool = Vod_util.Pool.iteri pool ~n:2 ~f:(fun i -> print_int i)" );
  ]

let pr_global =
  [
    ( "lib/fake/glob.ml",
      "let hits = Hashtbl.create 16\n\
       let go pool =\n\
      \  Vod_util.Pool.iteri pool ~n:4 ~f:(fun i -> Hashtbl.replace hits i true)" );
  ]

let pr_pure =
  [ ("lib/fake/pure.ml", "let go pool a = Vod_util.Pool.map pool ~f:(fun x -> x * 2) a") ]

let pr_rng_stream =
  (* Task-indexed Rng streams are the sanctioned pattern: Rng_state is
     tracked but must not trigger par-race. *)
  [
    ( "lib/fake/rng_ok.ml",
      "let go pool rngs a =\n\
      \  Vod_util.Pool.mapi pool ~f:(fun i _x -> Vod_util.Rng.float rngs.(i) 1.0) a" );
  ]

let pr_local_accum_ok =
  (* A ref allocated *inside* the task is private to it: no race. *)
  [
    ( "lib/fake/priv.ml",
      "let go pool a =\n\
      \  Vod_util.Pool.map pool\n\
      \    ~f:(fun xs ->\n\
      \      let s = ref 0.0 in\n\
      \      Array.iter (fun x -> s := !s +. x) xs;\n\
      \      !s)\n\
      \    a" );
  ]

(* float-order *)

let fo_iter =
  [
    ( "lib/fake/fo1.ml",
      "let total t =\n\
      \  let s = ref 0.0 in\n\
      \  Hashtbl.iter (fun _ x -> s := !s +. x) t;\n\
      \  !s" );
  ]

let fo_fold =
  [ ("lib/fake/fo2.ml", "let total t = Hashtbl.fold (fun _ x acc -> acc +. x) t 0.0") ]

let fo_keys_ok =
  [ ("lib/fake/fo3.ml", "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []") ]

let fo_elementwise_ok =
  [
    ( "lib/fake/fo4.ml",
      "let scale t out = Hashtbl.iter (fun k x -> out.(k) <- x *. 2.0) t" );
  ]

(* wallclock-in-solver *)

let wc_lib = [ ("lib/fake/wc.ml", "let now () = Unix.gettimeofday ()") ]
let wc_bench = [ ("bench/fake_wc.ml", "let now () = Unix.gettimeofday ()") ]

let wc_suppressed =
  [
    ( "lib/fake/wc_ok.ml",
      "let now () =\n\
      \  (* vodlint-disable wallclock-in-solver -- decorates the report only *)\n\
      \  Unix.gettimeofday ()" );
  ]

let wc_obs_layer =
  (* lib/obs is the quarantined clock user: exempt without suppression. *)
  [ ("lib/obs/fake_clock.ml", "let now () = Unix.gettimeofday ()") ]

(* obs-taint *)

let ot_read =
  [
    ( "lib/fake/ot_read.ml",
      "let passes t =\n\
      \  match Vod_obs.Obs.read t \"epf/passes\" with\n\
      \  | Some (Vod_obs.Obs.Counter n) -> n\n\
      \  | _ -> 0" );
  ]

let ot_report_aliased =
  (* Reading through a [module Obs = Vod_obs.Obs] alias must still be
     caught: matching is on the normalized qualified name. *)
  [
    ( "lib/fake/ot_alias.ml",
      "module Obs = Vod_obs.Obs\nlet dump t = print_string (Obs.report t)" );
  ]

let ot_recorders_ok =
  (* The write-only half is sanctioned anywhere in lib/. *)
  [
    ( "lib/fake/ot_rec.ml",
      "let bump () =\n\
      \  Vod_obs.Obs.incr \"cache/lru/hits\";\n\
      \  Vod_obs.Obs.observe \"epf/round/candidate_merit\" 0.5;\n\
      \  Vod_obs.Obs.phase \"work\" (fun () -> ())" );
  ]

let ot_frontend_ok =
  [ ("bin/fake_export.ml", "let dump t = print_string (Vod_obs.Obs.report t)") ]

let ot_obs_layer_ok =
  [ ("lib/obs/fake_self.ml", "let dump t = Obs.report t") ]

(* project-mode output contract: sorted by (file, line, col, rule), no
   duplicates *)
let project_output_stable () =
  let files = pr_cross_module @ fo_iter @ wc_lib in
  let diags = Vod_lint.Engine.lint_project_strings files in
  let sorted = List.sort_uniq Vod_lint.Diagnostic.compare diags in
  Alcotest.(check bool) "sorted and de-duplicated" true (diags = sorted);
  Alcotest.(check bool) "found something to sort" true (List.length diags >= 3)

(* baseline *)

let diag ~file ~line ~rule ~message =
  { Vod_lint.Diagnostic.file; line; col = 0; rule; message }

let baseline_roundtrip () =
  let d = diag ~file:"lib/a.ml" ~line:3 ~rule:"par-race" ~message:"task races" in
  let b =
    Vod_lint.Baseline.(of_string (to_string (of_diagnostics [ d ])))
  in
  (* A baselined finding is absorbed even after its line number moves. *)
  let applied = Vod_lint.Baseline.apply b [ { d with line = 42 } ] in
  Alcotest.(check int) "absorbed" 1 applied.Vod_lint.Baseline.baselined;
  Alcotest.(check (list string)) "no fresh findings" []
    (List.map (fun (x : Vod_lint.Diagnostic.t) -> x.rule) applied.fresh);
  Alcotest.(check int) "no stale entries" 0 (List.length applied.stale)

let baseline_add_and_expire () =
  let old_d = diag ~file:"lib/a.ml" ~line:3 ~rule:"par-race" ~message:"old" in
  let new_d = diag ~file:"lib/b.ml" ~line:9 ~rule:"float-order" ~message:"new" in
  let b = Vod_lint.Baseline.of_diagnostics [ old_d ] in
  (* old finding fixed, new one appeared *)
  let applied = Vod_lint.Baseline.apply b [ new_d ] in
  Alcotest.(check int) "nothing absorbed" 0 applied.Vod_lint.Baseline.baselined;
  Alcotest.(check (list string)) "new finding is fresh" [ "float-order" ]
    (List.map (fun (x : Vod_lint.Diagnostic.t) -> x.rule) applied.fresh);
  Alcotest.(check (list string)) "fixed finding reported stale"
    [ "lib/a.ml\tpar-race\told" ]
    (List.map Vod_lint.Baseline.entry_to_string applied.stale)

let baseline_ignores_comments () =
  let b =
    Vod_lint.Baseline.of_string
      "# a comment\n\nlib/a.ml\tpar-race\ttask races\n# trailing\n"
  in
  let d = diag ~file:"lib/a.ml" ~line:1 ~rule:"par-race" ~message:"task races" in
  let applied = Vod_lint.Baseline.apply b [ d ] in
  Alcotest.(check int) "entry parsed and matched" 1
    applied.Vod_lint.Baseline.baselined

(* multi-line suppression comments *)

let sup_multiline =
  "(* vodlint-disable hashtbl-find --\n\
  \   the key is inserted by the caller two lines up,\n\
  \   so find cannot raise here *)\n\
   let f t k = Hashtbl.find t k"

let multiline_suppression () =
  Alcotest.(check (list string)) "multi-line comment suppresses" []
    (fired sup_multiline)

(* --- project mode: units dataflow (phase 3a) ---------------------- *)

(* Findings of one rule under project mode with a units.decl in play. *)
let project_fired_u ?(decl = Vod_lint.Units.empty_decl) rule files =
  Vod_lint.Engine.lint_project_strings ~units_decl:decl files
  |> List.filter_map (fun (d : Vod_lint.Diagnostic.t) ->
         if d.rule = rule then Some d.file else None)

let check_units_fires ?decl rule ~in_file files () =
  Alcotest.(check bool)
    (rule ^ " fires in " ^ in_file)
    true
    (List.mem in_file (project_fired_u ?decl rule files))

let check_units_quiet ?decl rule files () =
  Alcotest.(check (list string)) (rule ^ " quiet") []
    (project_fired_u ?decl rule files)

(* Adding GB to seconds: the suffix convention seeds both params. *)
let um_add_bad =
  [ ("lib/fake/um1.ml", "let total ~size_gb ~duration_s = size_gb +. duration_s") ]

(* Comparing across units is as wrong as adding them. *)
let um_cmp_bad =
  [ ("lib/fake/um2.ml", "let over ~cap_gb ~window_s = cap_gb > window_s") ]

(* Division composes dimensions: GB / (GB/s) = s, so a _s name is
   honest... *)
let um_div_ok =
  [ ("lib/fake/um3.ml", "let drain_s ~size_gb ~rate_gbps = size_gb /. rate_gbps") ]

(* ...and a _gb name on the same body contradicts the derived unit. *)
let um_div_bad =
  [ ("lib/fake/um4.ml", "let drain_gb ~size_gb ~rate_gbps = size_gb /. rate_gbps") ]

(* Scale conversion through a named constant keeps the unit:
   day * s/day = s. *)
let um_conv_ok =
  [
    ( "lib/fake/um5.ml",
      "let seconds_per_day = 86400.0\n\
       let horizon_s ~days = days *. seconds_per_day" );
  ]

(* A bare literal poisons multiplication to Unknown — no false
   mismatch on the later compare. *)
let um_scalar_ok =
  [
    ( "lib/fake/um6.ml",
      "let f ~size_gb ~window_s = (size_gb *. 2.0) > window_s" );
  ]

(* The unit flows through a cross-module call: Depot.capacity has no
   name suffix, its return unit comes from the summary fixpoint. *)
let um_cross_module =
  [
    ("lib/fake/depot.ml", "let capacity ~size_gb = size_gb");
    ( "lib/fake/shop.ml",
      "let check ~window_s ~size_gb = Depot.capacity ~size_gb > window_s" );
  ]

let um_suppressed =
  [
    ( "lib/fake/um7.ml",
      "let total ~size_gb ~duration_s =\n\
      \  (* vodlint-disable unit-mismatch -- deliberate mixed sum *)\n\
      \  size_gb +. duration_s" );
  ]

(* Boundary rule: Depot is decl-covered, [window] is unannotated and
   receives a seconds value — report at the definition. Declaring the
   parameter resolves it. *)
let ub_files =
  [
    ("lib/fake/depot.ml", "let put ~rate_mbps ~window = ignore rate_mbps; ignore window");
    ( "lib/fake/user.ml",
      "let go ~rate_mbps ~window_s = Depot.put ~rate_mbps ~window:window_s" );
  ]

let ub_decl_partial = Vod_lint.Units.decl_of_string "Depot.put rate_mbps=mb/s\n"

let ub_decl_full =
  Vod_lint.Units.decl_of_string "Depot.put rate_mbps=mb/s window=s\n"

(* A decl-declared argument unit is checked at the call site even when
   the callee body is out of scan scope. *)
let um_decl_arg_bad =
  [ ("lib/fake/caller.ml", "let go ~window_s = Depot.put ~rate_mbps:window_s ~window:0.0") ]

let decl_parse_roundtrip () =
  let d =
    Vod_lint.Units.decl_of_string
      "# comment\n\
       Video.size_gb -> gb\n\
       Metrics.add_stream rate_mbps=mb/s t0=s # trailing comment\n\
       Trace.day_of_time arg1=s -> day\n"
  in
  Alcotest.(check (list string))
    "decl_values in file order"
    [ "Video.size_gb"; "Metrics.add_stream"; "Trace.day_of_time" ]
    (Vod_lint.Units.decl_values d)

let decl_parse_errors () =
  let raises src =
    match Vod_lint.Units.decl_of_string src with
    | _ -> false
    | exception Vod_lint.Units.Decl_error _ -> true
  in
  Alcotest.(check bool) "unqualified name rejected" true (raises "size_gb -> gb\n");
  Alcotest.(check bool) "stray token rejected" true (raises "Video.size_gb gb\n");
  Alcotest.(check bool) "dangling arrow rejected" true (raises "Video.size_gb ->\n")

(* --- project mode: hot-path allocations (phase 3b) ----------------- *)

(* Capacity.fits is a loop-hot root (called once per request): a
   per-call iterator closure fires even with no syntactic loop. The
   hoisted tail-recursive form — the shape of the real fix — is quiet. *)
let ah_percall_bad =
  [
    ( "lib/fake/capacity.ml",
      "let fits _t ~rate_mbps links = Array.for_all (fun l -> l >= rate_mbps) links" );
  ]

let ah_percall_good =
  [
    ( "lib/fake/capacity.ml",
      "let rec links_fit ~rate_mbps links i =\n\
      \  i >= Array.length links\n\
      \  || (links.(i) >= rate_mbps && links_fit ~rate_mbps links (i + 1))\n\
       let fits _t ~rate_mbps links = links_fit ~rate_mbps links 0" );
  ]

(* Sim.run is a root but not loop-hot: only allocations inside its
   loops fire. A closure born per while/for iteration is the original
   Sim.play defect; the explicit inner for loop is the fix. *)
let ah_loop_bad =
  [
    ( "lib/fake/sim.ml",
      "let run links n =\n\
      \  for _i = 1 to n do\n\
      \    Array.iter (fun l -> ignore l) links\n\
      \  done" );
  ]

let ah_loop_good =
  [
    ( "lib/fake/sim.ml",
      "let run links n =\n\
      \  for _i = 1 to n do\n\
      \    for j = 0 to Array.length links - 1 do\n\
      \      ignore links.(j)\n\
      \    done\n\
      \  done" );
  ]

(* Pool task bodies are hot by construction: a list built per task
   element fires without any root-table entry. *)
let ah_pool_task =
  [
    ( "lib/fake/worker.ml",
      "let go pool a =\n\
      \  Vod_util.Pool.map pool ~f:(fun xs -> List.map (fun x -> x +. 1.0) xs) a" );
  ]

(* Float boxing: a polymorphic compare whose operand is syntactically
   float boxes both sides on every call of a loop-hot root. *)
let ah_float_box =
  [
    ( "lib/fake/router.ml",
      "let route _t a b = if compare (a *. 1.5) b > 0 then a else b" );
  ]

(* Metrics.add_stream with straight-line array arithmetic: hot but
   allocation-free. *)
let ah_clean =
  [
    ( "lib/fake/metrics.ml",
      "let add_stream t ~rate_mbps =\n\
      \  for i = 0 to Array.length t - 1 do\n\
      \    t.(i) <- t.(i) +. rate_mbps\n\
      \  done" );
  ]

(* Regression: Stats.peak_hour returned seconds under an hour-suffixed
   name (real defect, renamed to peak_hour_start_s). *)
let reg_peak_hour_bad =
  [ ("lib/fake/stats.ml", "let peak_hour ~bin_start_s = bin_start_s") ]

let reg_peak_hour_good =
  [ ("lib/fake/stats.ml", "let peak_hour_start_s ~bin_start_s = bin_start_s") ]

(* Regression: Fleet.serve allocated an identity route closure per
   request (real defect, hoisted to a toplevel function). *)
let reg_fleet_route_bad =
  [
    ( "lib/fake/fleet.ml",
      "let serve_routed _t ~route = route ~default:1\n\
       let serve t = serve_routed t ~route:(fun ~default -> Some default)" );
  ]

let reg_fleet_route_good =
  [
    ( "lib/fake/fleet.ml",
      "let serve_routed _t ~route = route ~default:1\n\
       let identity_route ~default = Some default\n\
       let serve t = serve_routed t ~route:identity_route" );
  ]

(* --- to_github / baseline dedupe / CLI-facing bits ----------------- *)

let github_format () =
  let d =
    diag ~file:"lib/a,b.ml" ~line:3 ~rule:"par-race" ~message:"bad%\nnews"
  in
  Alcotest.(check string) "workflow-command escaping"
    "::warning file=lib/a%2Cb.ml,line=3,col=1,title=vodlint par-race::bad%25%0Anews"
    (Vod_lint.Diagnostic.to_github d)

let baseline_stale_dedupe () =
  (* A duplicated baseline entry must surface as ONE stale line, so
     --forbid-stale output is stable and actionable. *)
  let b =
    Vod_lint.Baseline.of_string
      "lib/a.ml\tpar-race\tgone\nlib/a.ml\tpar-race\tgone\n"
  in
  let applied = Vod_lint.Baseline.apply b [] in
  Alcotest.(check (list string)) "stale de-duplicated"
    [ "lib/a.ml\tpar-race\tgone" ]
    (List.map Vod_lint.Baseline.entry_to_string applied.stale)

let suite =
  [
    Alcotest.test_case "poly-compare fires on bare sort" `Quick (check_fires "poly-compare" pc_bad);
    Alcotest.test_case "poly-compare fires in comparator lambda" `Quick
      (check_fires "poly-compare" pc_bad_lambda);
    Alcotest.test_case "poly-compare fires on float-literal =" `Quick
      (check_fires "poly-compare" pc_bad_float_eq);
    Alcotest.test_case "poly-compare quiet on Float.compare" `Quick
      (check_quiet "poly-compare" pc_good);
    Alcotest.test_case "poly-compare quiet on guard-position =" `Quick
      (check_quiet "poly-compare" pc_good_guard);
    Alcotest.test_case "exception-swallow fires on wildcard" `Quick
      (check_fires "exception-swallow" es_bad);
    Alcotest.test_case "exception-swallow fires on ignore e" `Quick
      (check_fires "exception-swallow" es_bad_ignore);
    Alcotest.test_case "exception-swallow quiet on specific exn" `Quick
      (check_quiet "exception-swallow" es_good);
    Alcotest.test_case "hashtbl-find fires raw" `Quick (check_fires "hashtbl-find" hf_bad);
    Alcotest.test_case "hashtbl-find quiet under try" `Quick (check_quiet "hashtbl-find" hf_good_try);
    Alcotest.test_case "hashtbl-find quiet under match-exception" `Quick
      (check_quiet "hashtbl-find" hf_good_match);
    Alcotest.test_case "hashtbl-find quiet on find_opt" `Quick
      (check_quiet "hashtbl-find" hf_good_opt);
    Alcotest.test_case "print-in-lib fires in lib" `Quick (check_fires "print-in-lib" pl_bad);
    Alcotest.test_case "print-in-lib quiet on Logs" `Quick (check_quiet "print-in-lib" pl_good);
    Alcotest.test_case "no-failwith fires on failwith" `Quick (check_fires "no-failwith" nf_bad);
    Alcotest.test_case "no-failwith fires on assert false" `Quick
      (check_fires "no-failwith" nf_bad_assert);
    Alcotest.test_case "no-failwith quiet on invalid_arg" `Quick (check_quiet "no-failwith" nf_good);
    Alcotest.test_case "quadratic-loop fires on List.nth in for" `Quick
      (check_fires "quadratic-loop" ql_bad_for);
    Alcotest.test_case "quadratic-loop fires on @ in rec" `Quick
      (check_fires "quadratic-loop" ql_bad_rec);
    Alcotest.test_case "quadratic-loop quiet outside loops" `Quick
      (check_quiet "quadratic-loop" ql_good);
    Alcotest.test_case "quadratic-loop quiet on cons accumulation" `Quick
      (check_quiet "quadratic-loop" ql_good_rev);
    Alcotest.test_case "unguarded-div fires in epf" `Quick
      (check_fires "unguarded-div" ~path:"lib/epf/f.ml" ud_bad);
    Alcotest.test_case "unguarded-div quiet under if guard" `Quick
      (check_quiet "unguarded-div" ~path:"lib/epf/f.ml" ud_good_guard);
    Alcotest.test_case "unguarded-div quiet on eps param" `Quick
      (check_quiet "unguarded-div" ~path:"lib/lp/f.ml" ud_good_eps);
    Alcotest.test_case "unguarded-div quiet under when guard" `Quick
      (check_quiet "unguarded-div" ~path:"lib/lp/f.ml" ud_good_match_guard);
    Alcotest.test_case "domain-spawn fires outside the pool" `Quick
      (check_fires "domain-spawn" ds_bad);
    Alcotest.test_case "domain-spawn fires in bin too" `Quick
      (check_fires "domain-spawn" ~path:"bin/tool.ml" ds_bad);
    Alcotest.test_case "domain-spawn quiet in the pool module" `Quick
      (check_quiet "domain-spawn" ~path:"lib/util/pool.ml" ds_bad);
    Alcotest.test_case "domain-spawn quiet with ./ prefix" `Quick
      (check_quiet "domain-spawn" ~path:"./lib/util/pool.ml" ds_bad);
    Alcotest.test_case "domain-spawn quiet on pool use" `Quick
      (check_quiet "domain-spawn" ds_good);
    Alcotest.test_case "suppression comments" `Quick suppression_cases;
    Alcotest.test_case "parse error reported" `Quick parse_error_reported;
    Alcotest.test_case "path scoping" `Quick scoped_rules_respect_path;
    Alcotest.test_case "clean snippet" `Quick clean_realistic_snippet;
    Alcotest.test_case "missing mli on disk" `Quick missing_mli_on_disk;
    Alcotest.test_case "json report shape" `Quick json_report_shape;
    (* project mode: par-race *)
    Alcotest.test_case "par-race fires on direct captured-ref mutation" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/direct.ml" pr_direct);
    Alcotest.test_case "par-race fires through same-module helper" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/helper_mod.ml"
         pr_same_module_helper);
    Alcotest.test_case "par-race fires through cross-module callee" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/driver.ml" pr_cross_module);
    Alcotest.test_case "par-race fires through local helper fn" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/local.ml" pr_local_fn_capture);
    Alcotest.test_case "par-race fires on Random in task" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/rand.ml" pr_random);
    Alcotest.test_case "par-race fires on I/O in task" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/io.ml" pr_io);
    Alcotest.test_case "par-race fires on module-level Hashtbl mutation" `Quick
      (check_project_fires "par-race" ~in_file:"lib/fake/glob.ml" pr_global);
    Alcotest.test_case "par-race quiet on pure task" `Quick
      (check_project_quiet "par-race" pr_pure);
    Alcotest.test_case "par-race quiet on task-indexed Rng streams" `Quick
      (check_project_quiet "par-race" pr_rng_stream);
    Alcotest.test_case "par-race quiet on task-private ref" `Quick
      (check_project_quiet "par-race" pr_local_accum_ok);
    (* project mode: float-order *)
    Alcotest.test_case "float-order fires on iter running sum" `Quick
      (check_project_fires "float-order" ~in_file:"lib/fake/fo1.ml" fo_iter);
    Alcotest.test_case "float-order fires on fold accumulator" `Quick
      (check_project_fires "float-order" ~in_file:"lib/fake/fo2.ml" fo_fold);
    Alcotest.test_case "float-order quiet on key collection" `Quick
      (check_project_quiet "float-order" fo_keys_ok);
    Alcotest.test_case "float-order quiet on element-wise writes" `Quick
      (check_project_quiet "float-order" fo_elementwise_ok);
    (* project mode: wallclock-in-solver *)
    Alcotest.test_case "wallclock-in-solver fires in lib" `Quick
      (check_project_fires "wallclock-in-solver" ~in_file:"lib/fake/wc.ml" wc_lib);
    Alcotest.test_case "wallclock-in-solver quiet outside lib" `Quick
      (check_project_quiet "wallclock-in-solver" wc_bench);
    Alcotest.test_case "wallclock-in-solver suppressible inline" `Quick
      (check_project_quiet "wallclock-in-solver" wc_suppressed);
    Alcotest.test_case "wallclock-in-solver exempts lib/obs" `Quick
      (check_project_quiet "wallclock-in-solver" wc_obs_layer);
    (* project mode: obs-taint *)
    Alcotest.test_case "obs-taint fires on Obs.read in lib" `Quick
      (check_project_fires "obs-taint" ~in_file:"lib/fake/ot_read.ml" ot_read);
    Alcotest.test_case "obs-taint fires through module alias" `Quick
      (check_project_fires "obs-taint" ~in_file:"lib/fake/ot_alias.ml"
         ot_report_aliased);
    Alcotest.test_case "obs-taint quiet on recorder calls" `Quick
      (check_project_quiet "obs-taint" ot_recorders_ok);
    Alcotest.test_case "obs-taint quiet outside lib" `Quick
      (check_project_quiet "obs-taint" ot_frontend_ok);
    Alcotest.test_case "obs-taint quiet inside lib/obs" `Quick
      (check_project_quiet "obs-taint" ot_obs_layer_ok);
    (* project mode: output + baseline *)
    Alcotest.test_case "project output sorted and de-duplicated" `Quick
      project_output_stable;
    Alcotest.test_case "baseline round-trips and absorbs moved findings" `Quick
      baseline_roundtrip;
    Alcotest.test_case "baseline add and expire" `Quick baseline_add_and_expire;
    Alcotest.test_case "baseline skips comments and blanks" `Quick
      baseline_ignores_comments;
    Alcotest.test_case "multi-line suppression comment" `Quick multiline_suppression;
    (* project mode: unit-mismatch *)
    Alcotest.test_case "unit-mismatch fires on gb + s" `Quick
      (check_units_fires "unit-mismatch" ~in_file:"lib/fake/um1.ml" um_add_bad);
    Alcotest.test_case "unit-mismatch fires on gb > s compare" `Quick
      (check_units_fires "unit-mismatch" ~in_file:"lib/fake/um2.ml" um_cmp_bad);
    Alcotest.test_case "unit-mismatch quiet on gb/(gb/s) named _s" `Quick
      (check_units_quiet "unit-mismatch" um_div_ok);
    Alcotest.test_case "unit-mismatch fires on gb/(gb/s) named _gb" `Quick
      (check_units_fires "unit-mismatch" ~in_file:"lib/fake/um4.ml" um_div_bad);
    Alcotest.test_case "unit-mismatch quiet on named-constant conversion" `Quick
      (check_units_quiet "unit-mismatch" um_conv_ok);
    Alcotest.test_case "unit-mismatch quiet on scalar-poisoned product" `Quick
      (check_units_quiet "unit-mismatch" um_scalar_ok);
    Alcotest.test_case "unit-mismatch fires through cross-module summary" `Quick
      (check_units_fires "unit-mismatch" ~in_file:"lib/fake/shop.ml" um_cross_module);
    Alcotest.test_case "unit-mismatch suppressible inline" `Quick
      (check_units_quiet "unit-mismatch" um_suppressed);
    Alcotest.test_case "unit-mismatch fires on decl-declared argument" `Quick
      (check_units_fires ~decl:ub_decl_partial "unit-mismatch"
         ~in_file:"lib/fake/caller.ml" um_decl_arg_bad);
    (* project mode: unit-unannotated-boundary *)
    Alcotest.test_case "boundary fires at the unannotated core parameter" `Quick
      (check_units_fires ~decl:ub_decl_partial "unit-unannotated-boundary"
         ~in_file:"lib/fake/depot.ml" ub_files);
    Alcotest.test_case "boundary quiet once the parameter is declared" `Quick
      (check_units_quiet ~decl:ub_decl_full "unit-unannotated-boundary" ub_files);
    Alcotest.test_case "boundary quiet with no declarations at all" `Quick
      (check_units_quiet "unit-unannotated-boundary" ub_files);
    Alcotest.test_case "units.decl parses and lists values" `Quick decl_parse_roundtrip;
    Alcotest.test_case "units.decl rejects malformed lines" `Quick decl_parse_errors;
    (* project mode: alloc-in-hot *)
    Alcotest.test_case "alloc-in-hot fires on per-call closure in loop-hot root" `Quick
      (check_units_fires "alloc-in-hot" ~in_file:"lib/fake/capacity.ml" ah_percall_bad);
    Alcotest.test_case "alloc-in-hot quiet on hoisted tail recursion" `Quick
      (check_units_quiet "alloc-in-hot" ah_percall_good);
    Alcotest.test_case "alloc-in-hot fires on per-iteration closure" `Quick
      (check_units_fires "alloc-in-hot" ~in_file:"lib/fake/sim.ml" ah_loop_bad);
    Alcotest.test_case "alloc-in-hot quiet on explicit inner for loop" `Quick
      (check_units_quiet "alloc-in-hot" ah_loop_good);
    Alcotest.test_case "alloc-in-hot fires inside Pool task body" `Quick
      (check_units_fires "alloc-in-hot" ~in_file:"lib/fake/worker.ml" ah_pool_task);
    Alcotest.test_case "alloc-in-hot fires on float polymorphic compare" `Quick
      (check_units_fires "alloc-in-hot" ~in_file:"lib/fake/router.ml" ah_float_box);
    Alcotest.test_case "alloc-in-hot quiet on allocation-free hot root" `Quick
      (check_units_quiet "alloc-in-hot" ah_clean);
    (* regressions for real defects fixed by this analysis *)
    Alcotest.test_case "regression: peak_hour returning seconds fires" `Quick
      (check_units_fires "unit-mismatch" ~in_file:"lib/fake/stats.ml" reg_peak_hour_bad);
    Alcotest.test_case "regression: peak_hour_start_s rename is quiet" `Quick
      (check_units_quiet "unit-mismatch" reg_peak_hour_good);
    Alcotest.test_case "regression: inline identity route closure fires" `Quick
      (check_units_fires "alloc-in-hot" ~in_file:"lib/fake/fleet.ml" reg_fleet_route_bad);
    Alcotest.test_case "regression: hoisted identity route is quiet" `Quick
      (check_units_quiet "alloc-in-hot" reg_fleet_route_good);
    (* CLI-facing output *)
    Alcotest.test_case "github annotation format and escaping" `Quick github_format;
    Alcotest.test_case "stale baseline entries de-duplicated" `Quick
      baseline_stale_dedupe;
  ]
