(* Tests for vod_workload: catalog composition, trace generation, trace
   statistics and demand estimation. *)

module C = Vod_workload.Catalog
module V = Vod_workload.Video
module Tr = Vod_workload.Trace
module Tg = Vod_workload.Tracegen
module S = Vod_workload.Stats
module D = Vod_workload.Demand
module E = Vod_workload.Estimator

let small_catalog () = C.generate (C.default_params ~n:300 ~days:28 ~seed:5)

let populations = Vod_topology.Topologies.zipf_populations ~seed:5 10

let small_trace catalog =
  Tg.generate
    (Tg.default_params ~catalog ~populations ~mean_daily_requests:800.0 ~seed:6)

let trace_jobs_invariant () =
  (* Per-day RNG streams are split by day index before any generation
     runs, so the trace is bit-identical at any job count. *)
  let catalog = small_catalog () in
  let gen jobs =
    Tg.generate ~jobs
      (Tg.default_params ~catalog ~populations ~mean_daily_requests:400.0 ~seed:6)
  in
  let a = gen 1 and b = gen 4 in
  Alcotest.(check int) "same length" (Tr.length a) (Tr.length b);
  Array.iteri
    (fun i (r : Tr.request) ->
      let s = b.Tr.requests.(i) in
      Alcotest.(check int) "vho" r.Tr.vho s.Tr.vho;
      Alcotest.(check int) "video" r.Tr.video s.Tr.video;
      Alcotest.(check (float 0.0)) "time" r.Tr.time_s s.Tr.time_s)
    a.Tr.requests

let catalog_composition () =
  let c = small_catalog () in
  Alcotest.(check int) "size" 300 (C.n_videos c);
  let episodes = ref 0 and clips = ref 0 and blockbusters = ref 0 in
  Array.iter
    (fun v ->
      match v.V.kind with
      | V.Episode _ -> incr episodes
      | V.Music_video -> incr clips
      | V.Blockbuster -> incr blockbusters
      | V.Regular -> ())
    c.C.videos;
  Alcotest.(check bool) "has episodes" true (!episodes > 50);
  Alcotest.(check bool) "has clips" true (!clips > 50);
  Alcotest.(check bool) "has blockbusters" true (!blockbusters >= 1);
  Alcotest.(check bool) "library size positive" true (C.total_size_gb c > 0.0)

let catalog_sizes_match_classes () =
  let c = small_catalog () in
  Array.iter
    (fun v ->
      let s = V.size_gb v and d = V.duration_s v in
      (* Paper: 100MB/5min, 500MB/30min, 1GB/1h, 2GB/2h at 2 Mb/s. *)
      Alcotest.(check bool) "size/duration consistent" true
        (match v.V.size_class with
        | V.Clip -> s = 0.1 && d = 300.0
        | V.Show -> s = 0.5 && d = 1800.0
        | V.Movie -> s = 1.0 && d = 3600.0
        | V.Long_movie -> s = 2.0 && d = 7200.0);
      Alcotest.(check (float 0.0)) "rate 2Mbps" 2.0 (V.rate_mbps v))
    c.C.videos

let series_structure () =
  let c = small_catalog () in
  let eps = C.series_episodes c 0 in
  Alcotest.(check bool) "series 0 nonempty" true (List.length eps > 1);
  (* Episodes sorted, and consecutive episodes released 7 days apart. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        (match (a.V.kind, b.V.kind) with
        | V.Episode x, V.Episode y ->
            Alcotest.(check int) "episode ordering" (x.episode + 1) y.episode;
            Alcotest.(check int) "weekly release" (a.V.release_day + 7) b.V.release_day
        | _ -> Alcotest.fail "non-episode in series");
        check rest
    | _ -> ()
  in
  check eps;
  (* previous_episode links back correctly. *)
  match eps with
  | _ :: second :: _ ->
      let prev = C.previous_episode c second in
      Alcotest.(check bool) "previous episode found" true (Option.is_some prev)
  | _ -> ()

let zipf_weights_decreasing () =
  let w r = C.zipf_cutoff_weight ~exponent:0.8 ~cutoff_frac:0.35 ~n:100 r in
  Alcotest.(check bool) "rank 0 > rank 10" true (w 0 > w 10);
  Alcotest.(check bool) "rank 10 > rank 90" true (w 10 > w 90);
  Alcotest.(check bool) "cutoff bites" true (w 90 /. w 0 < 0.01)

let poisson_mean () =
  let rng = Vod_util.Rng.create 3 in
  List.iter
    (fun lambda ->
      let n = 20_000 in
      let sum = ref 0 in
      for _ = 1 to n do
        sum := !sum + Tg.poisson rng lambda
      done;
      let mean = float_of_int !sum /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "poisson(%.1f) mean" lambda)
        true
        (Float.abs (mean -. lambda) < 0.05 *. Float.max 1.0 lambda))
    [ 0.5; 3.0; 50.0 ]

let trace_valid () =
  let c = small_catalog () in
  let t = small_trace c in
  Alcotest.(check bool) "nonempty" true (Tr.length t > 5_000);
  let prev = ref neg_infinity in
  Tr.iter
    (fun r ->
      Alcotest.(check bool) "sorted" true (r.Tr.time_s >= !prev);
      prev := r.Tr.time_s;
      Alcotest.(check bool) "vho in range" true (r.Tr.vho >= 0 && r.Tr.vho < 10);
      let v = C.video c r.Tr.video in
      Alcotest.(check bool) "released before request" true
        (v.V.release_day <= 0
        || float_of_int v.V.release_day *. Tr.seconds_per_day <= r.Tr.time_s +. Tr.seconds_per_day))
    t

let trace_weekend_heavier () =
  let c = small_catalog () in
  let t = small_trace c in
  (* Fridays+Saturdays (days 4, 5 of each week) should carry more traffic
     than Mondays+Tuesdays. *)
  let day_count = Array.make 28 0 in
  Tr.iter
    (fun r ->
      let d = Tr.day_of_time r.Tr.time_s in
      if d < 28 then day_count.(d) <- day_count.(d) + 1)
    t;
  let sum_days f =
    let acc = ref 0 in
    for d = 0 to 27 do
      if f (d mod 7) then acc := !acc + day_count.(d)
    done;
    !acc
  in
  let weekend = sum_days (fun dw -> dw = 4 || dw = 5) in
  let weekday = sum_days (fun dw -> dw = 0 || dw = 1) in
  Alcotest.(check bool) "Fri/Sat heavier than Mon/Tue" true (weekend > weekday)

let trace_popularity_skew () =
  let c = small_catalog () in
  let t = small_trace c in
  let counts = Tr.counts_per_video t ~n_videos:(C.n_videos c) in
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let total = Array.fold_left ( + ) 0 sorted in
  let top30 = ref 0 in
  for i = 0 to 29 do
    top30 := !top30 + sorted.(i)
  done;
  (* Top 10% of videos should hold well over 10% of requests. *)
  Alcotest.(check bool) "skewed" true (float_of_int !top30 > 0.2 *. float_of_int total)

let between_days_slices () =
  let c = small_catalog () in
  let t = small_trace c in
  let week1 = Tr.between_days t ~day_lo:0 ~day_hi:7 in
  let week2 = Tr.between_days t ~day_lo:7 ~day_hi:14 in
  Alcotest.(check int) "partition"
    (Array.length (Tr.between_days t ~day_lo:0 ~day_hi:14))
    (Array.length week1 + Array.length week2);
  Array.iter
    (fun r -> Alcotest.(check bool) "in window" true (Tr.day_of_time r.Tr.time_s < 7))
    week1

let peak_windows_distinct_days () =
  let c = small_catalog () in
  let t = small_trace c in
  let ws = S.peak_windows t ~window_s:3600.0 ~k:2 in
  Alcotest.(check int) "two windows" 2 (List.length ws);
  match ws with
  | [ a; b ] ->
      Alcotest.(check bool) "distinct days" true
        (Tr.day_of_time a <> Tr.day_of_time b)
  | _ -> Alcotest.fail "expected two windows"

let working_set_sane () =
  let c = small_catalog () in
  let t = small_trace c in
  let peak = S.peak_hour_start_s t in
  let distinct, gb = S.working_set t c ~vho:0 ~t0:peak ~t1:(peak +. 3600.0) in
  Alcotest.(check bool) "some distinct videos" true (distinct > 0);
  Alcotest.(check bool) "gb positive" true (gb > 0.0);
  Alcotest.(check bool) "gb bounded by catalog" true (gb <= C.total_size_gb c)

let cosine_window_monotone () =
  let c = small_catalog () in
  let t = small_trace c in
  let avg w = Vod_util.Stats_acc.mean (S.peak_interval_similarity t ~window_s:w) in
  (* Daily mixes are more similar than 30-minute mixes (paper Fig. 3). *)
  Alcotest.(check bool) "daily more similar than sub-hourly" true
    (avg 86_400.0 > avg 1_800.0)

let concurrency_counts () =
  let c = small_catalog () in
  let t = small_trace c in
  let peak = S.peak_hour_start_s t in
  let conc = S.concurrency t c ~t0:peak ~t1:(peak +. 3600.0) in
  let agg = S.aggregate_demand t in
  Alcotest.(check bool) "nonempty" true (Hashtbl.length conc > 0);
  (* Every concurrent pair must exist in aggregate demand. *)
  Hashtbl.iter
    (fun key n ->
      Alcotest.(check bool) "positive" true (n > 0);
      Alcotest.(check bool) "also in aggregate" true (Hashtbl.mem agg key))
    conc

let demand_of_requests () =
  let c = small_catalog () in
  let t = small_trace c in
  let reqs = Tr.between_days t ~day_lo:7 ~day_hi:14 in
  let d = D.of_requests c ~n_vhos:10 ~day0:7 ~days:7 ~n_windows:2 ~window_s:3600.0 reqs in
  Alcotest.(check int) "windows" 2 (Array.length d.D.windows);
  Alcotest.(check (float 0.5)) "total requests" (float_of_int (Array.length reqs)) d.D.total_requests;
  (* Sum of sparse a equals request count. *)
  let sum = Array.fold_left (fun acc pairs -> Array.fold_left (fun a (_, c) -> a +. c) acc pairs) 0.0 d.D.a in
  Alcotest.(check (float 0.5)) "a sums to requests" (float_of_int (Array.length reqs)) sum;
  let ranked = D.rank_by_demand d in
  Alcotest.(check bool) "ranking sorted" true
    (D.video_requests d ranked.(0) >= D.video_requests d ranked.(Array.length ranked - 1))

let estimator_history_only () =
  let c = small_catalog () in
  let t = small_trace c in
  let pred = E.predict E.History_only c t ~week_start:14 in
  let hist = E.history_week t ~week_start:14 in
  Alcotest.(check int) "same count" (Array.length hist) (Array.length pred);
  (* Shifted exactly one week. *)
  Array.iteri
    (fun i r ->
      Alcotest.(check (float 1e-6)) "shifted 7d"
        (hist.(i).Tr.time_s +. (7.0 *. Tr.seconds_per_day))
        r.Tr.time_s)
    pred

let estimator_series_covers_new () =
  let c = small_catalog () in
  let t = small_trace c in
  let pred = E.predict E.Series_blockbuster c t ~week_start:14 in
  let hist = E.predict E.History_only c t ~week_start:14 in
  Alcotest.(check bool) "adds predictions" true (Array.length pred >= Array.length hist);
  (* Predicted requests for a new episode exist if an episode releases
     in [14, 21) and its predecessor had requests. *)
  let new_eps =
    Array.to_list c.C.videos
    |> List.filter (fun v ->
           match v.V.kind with
           | V.Episode _ -> v.V.release_day >= 14 && v.V.release_day < 21
           | _ -> false)
  in
  if new_eps <> [] then begin
    let covered =
      List.exists
        (fun v -> Array.exists (fun r -> r.Tr.video = v.V.id) pred)
        new_eps
    in
    Alcotest.(check bool) "some new episode predicted" true covered
  end

let estimator_perfect () =
  let c = small_catalog () in
  let t = small_trace c in
  let pred = E.predict E.Perfect c t ~week_start:14 in
  let actual = Tr.between_days t ~day_lo:14 ~day_hi:21 in
  Alcotest.(check int) "perfect = actual" (Array.length actual) (Array.length pred)

let suite =
  [
    Alcotest.test_case "catalog composition" `Quick catalog_composition;
    Alcotest.test_case "size classes" `Quick catalog_sizes_match_classes;
    Alcotest.test_case "series structure" `Quick series_structure;
    Alcotest.test_case "zipf weights" `Quick zipf_weights_decreasing;
    Alcotest.test_case "poisson mean" `Quick poisson_mean;
    Alcotest.test_case "trace valid" `Quick trace_valid;
    Alcotest.test_case "trace jobs invariant" `Quick trace_jobs_invariant;
    Alcotest.test_case "weekend heavier" `Quick trace_weekend_heavier;
    Alcotest.test_case "popularity skew" `Quick trace_popularity_skew;
    Alcotest.test_case "between_days slices" `Quick between_days_slices;
    Alcotest.test_case "peak windows distinct days" `Quick peak_windows_distinct_days;
    Alcotest.test_case "working set sane" `Quick working_set_sane;
    Alcotest.test_case "cosine window monotone" `Quick cosine_window_monotone;
    Alcotest.test_case "concurrency counts" `Quick concurrency_counts;
    Alcotest.test_case "demand of requests" `Quick demand_of_requests;
    Alcotest.test_case "estimator history" `Quick estimator_history_only;
    Alcotest.test_case "estimator series" `Quick estimator_series_covers_new;
    Alcotest.test_case "estimator perfect" `Quick estimator_perfect;
  ]
