(* Tests for the Vod_obs observability layer: metric semantics,
   deterministic export, disabled-mode no-op, jobs-invariance of
   pool-merged metrics, and bench checkpoint write-then-resume. *)

module Obs = Vod_obs.Obs
module Checkpoint = Vod_obs.Checkpoint

let with_reg f =
  let reg = Obs.create () in
  Obs.with_run reg f;
  reg

(* Drop the keys the jobs-invariance contract excludes: wall-clock
   values and the scheduling-dependent pool/sched/* telemetry. *)
let invariant_report reg =
  Obs.report reg
  |> String.split_on_char '\n'
  |> List.filter (fun line ->
         let has_sub sub =
           let n = String.length sub and ln = String.length line in
           let rec go i = i + n <= ln && (String.sub line i n = sub || go (i + 1)) in
           go 0
         in
         line <> "" && (not (has_sub "_seconds")) && not (has_sub "pool/sched/"))
  |> String.concat "\n"

(* --- recording semantics --- *)

let counter_gauge_hist_series () =
  let reg =
    with_reg (fun () ->
        Obs.incr "c";
        Obs.incr ~by:4 "c";
        Obs.set_gauge "g" 1.5;
        Obs.set_gauge "g" 2.5;
        Obs.observe "h" 3.0;
        Obs.observe "h" 1.0;
        Obs.push "s" 1.0;
        Obs.push "s" 2.0)
  in
  (match Obs.read reg "c" with
  | Some (Obs.Counter 5) -> ()
  | _ -> Alcotest.fail "counter should be 5");
  (match Obs.read reg "g" with
  | Some (Obs.Gauge v) -> Alcotest.(check (float 0.0)) "last write wins" 2.5 v
  | _ -> Alcotest.fail "gauge missing");
  (match Obs.read reg "h" with
  | Some (Obs.Histogram { count; sum; min; max }) ->
      Alcotest.(check int) "count" 2 count;
      Alcotest.(check (float 1e-12)) "sum" 4.0 sum;
      Alcotest.(check (float 0.0)) "min" 1.0 min;
      Alcotest.(check (float 0.0)) "max" 3.0 max
  | _ -> Alcotest.fail "histogram missing");
  (match Obs.read reg "s" with
  | Some (Obs.Series a) ->
      Alcotest.(check (array (float 0.0))) "recording order" [| 1.0; 2.0 |] a
  | _ -> Alcotest.fail "series missing");
  Alcotest.(check (list string)) "names sorted" [ "c"; "g"; "h"; "s" ] (Obs.names reg);
  Alcotest.(check bool) "absent name" true (Obs.read reg "nope" = None)

let disabled_noop () =
  (* No registry installed: recording must be a silent no-op and
     [phase] must pass values and exceptions through. *)
  Alcotest.(check bool) "inactive" false (Obs.active ());
  Obs.incr "c";
  Obs.observe "h" 1.0;
  Obs.push "s" 1.0;
  Alcotest.(check int) "phase passes value" 42 (Obs.phase "p" (fun () -> 42));
  Alcotest.check_raises "phase passes exception" Exit (fun () ->
      Obs.phase "p" (fun () -> raise Exit));
  (* Nothing leaked into a registry installed afterwards. *)
  let reg = with_reg (fun () -> ()) in
  Alcotest.(check (list string)) "registry untouched" [] (Obs.names reg)

let kind_mismatch () =
  let reg = Obs.create () in
  Obs.with_run reg (fun () ->
      Obs.incr "x";
      (match Obs.observe "x" 1.0 with
      | () -> Alcotest.fail "kind mismatch accepted"
      | exception Invalid_argument _ -> ());
      match Obs.push "x" 1.0 with
      | () -> Alcotest.fail "kind mismatch accepted"
      | exception Invalid_argument _ -> ())

let phase_nesting () =
  let reg =
    with_reg (fun () ->
        Obs.phase "a" (fun () ->
            Obs.phase "b" (fun () -> ());
            Obs.phase "b" (fun () -> ()));
        Obs.phase "c" (fun () -> ()))
  in
  Alcotest.(check (list string)) "stacked phase names"
    [ "phase/a/b_seconds"; "phase/a_seconds"; "phase/c_seconds" ]
    (Obs.names reg);
  match Obs.read reg "phase/a/b_seconds" with
  | Some (Obs.Histogram { count = 2; _ }) -> ()
  | _ -> Alcotest.fail "nested phase should have 2 observations"

let sorted_deterministic_export () =
  let build () =
    with_reg (fun () ->
        Obs.push "z/series" 0.5;
        Obs.incr ~by:7 "a/count";
        Obs.set_gauge "m/gauge" 3.25;
        Obs.observe "m/hist" 2.0;
        Obs.push "z/series" 1.5)
  in
  let r1 = build () and r2 = build () in
  Alcotest.(check string) "report deterministic" (Obs.report r1) (Obs.report r2);
  Alcotest.(check string) "json deterministic" (Obs.to_json r1) (Obs.to_json r2);
  (* Keys appear in sorted order in the JSON text. *)
  let j = Obs.to_json r1 in
  let pos key =
    let n = String.length key and jn = String.length j in
    let rec go i =
      if i + n > jn then Alcotest.failf "key %s missing from JSON" key
      else if String.sub j i n = key then i
      else go (i + 1)
    in
    go 0
  in
  let a = pos "\"a/count\"" and m = pos "\"m/gauge\"" and z = pos "\"z/series\"" in
  Alcotest.(check bool) "json keys sorted" true (a < m && m < z);
  (* Round-trip through the text report: the same registry contents
     always render identically, so merge of a copy doubles counters. *)
  let merged = Obs.create () in
  Obs.merge ~into:merged r1;
  Alcotest.(check string) "merge of one registry reproduces it" (Obs.report r1)
    (Obs.report merged)

let merge_semantics () =
  let a =
    with_reg (fun () ->
        Obs.incr ~by:2 "c";
        Obs.set_gauge "g" 1.0;
        Obs.observe "h" 1.0;
        Obs.push "s" 1.0)
  in
  let b =
    with_reg (fun () ->
        Obs.incr ~by:3 "c";
        Obs.set_gauge "g" 9.0;
        Obs.observe "h" 5.0;
        Obs.push "s" 2.0)
  in
  Obs.merge ~into:a b;
  (match Obs.read a "c" with
  | Some (Obs.Counter 5) -> ()
  | _ -> Alcotest.fail "counters add");
  (match Obs.read a "g" with
  | Some (Obs.Gauge 9.0) -> ()
  | _ -> Alcotest.fail "gauge overwritten by src");
  (match Obs.read a "h" with
  | Some (Obs.Histogram { count = 2; sum = 6.0; min = 1.0; max = 5.0 }) -> ()
  | _ -> Alcotest.fail "histograms combine");
  (match Obs.read a "s" with
  | Some (Obs.Series [| 1.0; 2.0 |]) -> ()
  | _ -> Alcotest.fail "series append");
  (* Kind mismatch across registries is a bug, not data. *)
  let c = with_reg (fun () -> Obs.set_gauge "c" 1.0) in
  match Obs.merge ~into:a c with
  | () -> Alcotest.fail "merge kind mismatch accepted"
  | exception Invalid_argument _ -> ()

(* --- jobs invariance of pool-merged metrics --- *)

let pool_jobs_invariance () =
  let run jobs =
    let reg = Obs.create () in
    Obs.with_run reg (fun () ->
        Vod_util.Pool.with_pool ~jobs (fun pool ->
            Vod_util.Pool.iteri pool ~n:64 ~f:(fun i ->
                Obs.incr "t/tasks_seen";
                Obs.observe "t/hist" (float_of_int (i mod 7));
                Obs.push "t/series" (float_of_int i);
                Obs.phase "t/work" (fun () -> ()))));
    reg
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check string) "j1 = j4 modulo time keys" (invariant_report r1)
    (invariant_report r4);
  (* The series must be in task order — not completion order. *)
  match Obs.read r4 "t/series" with
  | Some (Obs.Series a) ->
      Alcotest.(check (array (float 0.0)))
        "series in task order"
        (Array.init 64 float_of_int)
        a
  | _ -> Alcotest.fail "series missing"

(* A miniature EPF problem (two-point blocks sharing one row), enough
   for the engine to emit its full metric surface. *)
let mini_oracles k =
  let module E = Vod_epf.Engine in
  let module Sp = Vod_epf.Sparse in
  let pa = { E.obj = 1.0; usage = Sp.of_assoc [ (0, 1.0) ]; data = 0 } in
  let pb = { E.obj = 4.0; usage = Sp.of_assoc [ (0, 0.2) ]; data = 1 } in
  let priced ~obj_price ~row_price (p : int E.point) =
    (obj_price *. p.E.obj) +. Sp.dot row_price p.E.usage
  in
  let optimize ~obj_price ~row_price =
    if priced ~obj_price ~row_price pa <= priced ~obj_price ~row_price pb then pa
    else pb
  in
  Array.make k
    {
      E.optimize;
      optimize_strong = optimize;
      lower_bound =
        (fun ~row_price ->
          Float.min
            (priced ~obj_price:1.0 ~row_price pa)
            (priced ~obj_price:1.0 ~row_price pb));
      initial = (fun () -> pa);
    }

let engine_metrics_jobs_invariance () =
  let module E = Vod_epf.Engine in
  let run jobs =
    let reg = Obs.create () in
    let outcome =
      Obs.with_run reg (fun () ->
          E.solve ~round:true
            { E.default_params with E.max_passes = 40; seed = 11; jobs }
            ~capacities:[| 4.0 |] ~oracles:(mini_oracles 8))
    in
    (reg, outcome)
  in
  let r1, o1 = run 1 and r4, o4 = run 4 in
  Alcotest.(check string) "engine metrics j1 = j4 modulo time keys"
    (invariant_report r1) (invariant_report r4);
  Alcotest.(check (float 0.0)) "objective unchanged" o1.Vod_epf.Engine.objective
    o4.Vod_epf.Engine.objective;
  (* The per-pass series exist and track the engine's own history
     (main-loop passes plus the stabilization sweeps). *)
  match Obs.read r1 "epf/pass/lower_bound" with
  | Some (Obs.Series lbs) ->
      Alcotest.(check bool) "series covers every pass" true
        (Array.length lbs >= o1.Vod_epf.Engine.passes);
      (match Obs.read r1 "epf/passes" with
      | Some (Obs.Counter n) ->
          Alcotest.(check int) "pass counter matches series" (Array.length lbs) n
      | _ -> Alcotest.fail "epf/passes missing");
      Array.iteri
        (fun i lb ->
          let _, hist_lb, _ = o1.Vod_epf.Engine.history.(i) in
          Alcotest.(check (float 0.0)) "series matches history" hist_lb lb)
        (Array.sub lbs 0 (Array.length o1.Vod_epf.Engine.history))
  | _ -> Alcotest.fail "epf/pass/lower_bound missing"

(* --- checkpoint write-then-resume --- *)

let temp_dir () =
  let d = Filename.temp_file "vod_ckpt" "" in
  Sys.remove d;
  d

let checkpoint_write_then_resume () =
  let dir = temp_dir () in
  let runs = ref 0 in
  let exhibit () =
    incr runs;
    print_string "exhibit output\n"
  in
  Alcotest.(check bool) "not completed yet" false
    (Checkpoint.completed ~dir ~name:"figX");
  (match Checkpoint.run ~dir ~name:"figX" exhibit with
  | Checkpoint.Ran -> ()
  | Checkpoint.Restored -> Alcotest.fail "first run must execute");
  Alcotest.(check int) "executed once" 1 !runs;
  Alcotest.(check bool) "completed" true (Checkpoint.completed ~dir ~name:"figX");
  let section = Filename.concat dir "figX.section.txt" in
  let ic = open_in section in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "section captured" "exhibit output" line;
  Alcotest.(check bool) "metrics json written" true
    (Sys.file_exists (Filename.concat dir "figX.metrics.json"));
  (* Resume: the exhibit must not run again. *)
  (match Checkpoint.run ~dir ~name:"figX" exhibit with
  | Checkpoint.Restored -> ()
  | Checkpoint.Ran -> Alcotest.fail "resume must restore, not re-run");
  Alcotest.(check int) "not re-executed" 1 !runs

let checkpoint_failure_reruns () =
  let dir = temp_dir () in
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts = 1 then failwith "killed mid-exhibit"
  in
  (match Checkpoint.run ~dir ~name:"figY" flaky with
  | _ -> Alcotest.fail "failure must propagate"
  | exception Failure _ -> ());
  Alcotest.(check bool) "no marker after failure" false
    (Checkpoint.completed ~dir ~name:"figY");
  (match Checkpoint.run ~dir ~name:"figY" flaky with
  | Checkpoint.Ran -> ()
  | Checkpoint.Restored -> Alcotest.fail "failed exhibit must re-run");
  Alcotest.(check int) "ran twice" 2 !attempts

let suite =
  [
    Alcotest.test_case "counter/gauge/hist/series semantics" `Quick
      counter_gauge_hist_series;
    Alcotest.test_case "disabled mode is a no-op" `Quick disabled_noop;
    Alcotest.test_case "kind mismatch raises" `Quick kind_mismatch;
    Alcotest.test_case "phase timers nest" `Quick phase_nesting;
    Alcotest.test_case "sorted deterministic export" `Quick
      sorted_deterministic_export;
    Alcotest.test_case "merge semantics" `Quick merge_semantics;
    Alcotest.test_case "pool metrics jobs-invariant" `Quick pool_jobs_invariance;
    Alcotest.test_case "engine metrics jobs-invariant" `Quick
      engine_metrics_jobs_invariance;
    Alcotest.test_case "checkpoint write-then-resume" `Quick
      checkpoint_write_then_resume;
    Alcotest.test_case "checkpoint failure re-runs" `Quick
      checkpoint_failure_reruns;
  ]
