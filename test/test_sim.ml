(* Tests for the playout metrics and simulator: bin accounting,
   conservation (every request counted exactly once), and determinism. *)

module M = Vod_sim.Metrics

let stream_binning () =
  let m = M.create ~n_links:2 ~horizon_s:1200.0 ~bin_s:300.0 () in
  (* 2 Mb/s for 450 s starting at t=150: bins 0 (150s overlap), 1 (300s),
     2 (0s). *)
  M.add_stream m ~link:0 ~rate_mbps:2.0 ~t0:150.0 ~t1:600.0;
  Alcotest.(check (float 1e-9)) "bin0 avg" 1.0 m.M.link_load.(0).(0);
  Alcotest.(check (float 1e-9)) "bin1 avg" 2.0 m.M.link_load.(0).(1);
  Alcotest.(check (float 1e-9)) "bin2 empty" 0.0 m.M.link_load.(0).(2);
  Alcotest.(check (float 1e-9)) "other link untouched" 0.0 m.M.link_load.(1).(1)

let stream_clamped_to_horizon () =
  let m = M.create ~n_links:1 ~horizon_s:600.0 ~bin_s:300.0 () in
  M.add_stream m ~link:0 ~rate_mbps:2.0 ~t0:450.0 ~t1:10_000.0;
  Alcotest.(check (float 1e-9)) "last bin half" 1.0 m.M.link_load.(0).(1)

let record_from_excludes_warmup () =
  let m = M.create ~n_links:1 ~horizon_s:1200.0 ~bin_s:300.0 ~record_from:600.0 () in
  M.add_stream m ~link:0 ~rate_mbps:2.0 ~t0:0.0 ~t1:900.0;
  Alcotest.(check (float 1e-9)) "warmup bins empty" 0.0 m.M.link_load.(0).(0);
  Alcotest.(check (float 1e-9)) "recorded bin" 2.0 m.M.link_load.(0).(2);
  Alcotest.(check bool) "window test" true (M.in_record_window m 700.0);
  Alcotest.(check bool) "window test 2" false (M.in_record_window m 100.0)

let series_and_peaks () =
  let m = M.create ~n_links:2 ~horizon_s:600.0 ~bin_s:300.0 () in
  M.add_stream m ~link:0 ~rate_mbps:4.0 ~t0:0.0 ~t1:300.0;
  M.add_stream m ~link:1 ~rate_mbps:6.0 ~t0:300.0 ~t1:600.0;
  Alcotest.(check (array (float 1e-9))) "peak series" [| 4.0; 6.0 |] (M.peak_series m);
  Alcotest.(check (array (float 1e-9))) "aggregate series" [| 4.0; 6.0 |] (M.aggregate_series m);
  Alcotest.(check (float 1e-9)) "max link" 6.0 (M.max_link_mbps m)

let stream_boundaries () =
  let m = M.create ~n_links:1 ~horizon_s:900.0 ~bin_s:300.0 () in
  (* Zero-duration streams contribute nothing. *)
  M.add_stream m ~link:0 ~rate_mbps:5.0 ~t0:450.0 ~t1:450.0;
  Alcotest.(check (float 1e-9)) "zero duration" 0.0 m.M.link_load.(0).(1);
  (* A stream ending exactly on a bin edge never touches the next bin. *)
  M.add_stream m ~link:0 ~rate_mbps:2.0 ~t0:300.0 ~t1:600.0;
  Alcotest.(check (float 1e-9)) "edge-aligned bin full" 2.0 m.M.link_load.(0).(1);
  Alcotest.(check (float 1e-9)) "next bin untouched" 0.0 m.M.link_load.(0).(2)

let stream_straddles_record_from () =
  (* record_from cuts a stream mid-bin: only the recorded half counts. *)
  let m =
    M.create ~n_links:1 ~horizon_s:900.0 ~bin_s:300.0 ~record_from:450.0 ()
  in
  M.add_stream m ~link:0 ~rate_mbps:2.0 ~t0:300.0 ~t1:600.0;
  Alcotest.(check (float 1e-9)) "warmup bin empty" 0.0 m.M.link_load.(0).(0);
  Alcotest.(check (float 1e-9)) "recorded half of bin" 1.0 m.M.link_load.(0).(1)

let stream_straddles_horizon () =
  (* 750 s horizon rounds up to 3 bins; the clamp is to the padded bin
     grid, so the last bin fills completely and the weighting divides by
     the full bin width. *)
  let m = M.create ~n_links:1 ~horizon_s:750.0 ~bin_s:300.0 () in
  M.add_stream m ~link:0 ~rate_mbps:3.0 ~t0:550.0 ~t1:2000.0;
  Alcotest.(check (float 1e-9)) "partial mid bin" 0.5 m.M.link_load.(0).(1);
  Alcotest.(check (float 1e-9)) "last bin full" 3.0 m.M.link_load.(0).(2)

let sim_world () =
  let g =
    Vod_topology.Graph.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 2.0; 1.0; 1.0; 1.0 |]
  in
  let paths = Vod_topology.Paths.compute g in
  let catalog =
    Vod_workload.Catalog.generate (Vod_workload.Catalog.default_params ~n:30 ~days:7 ~seed:3)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:g.Vod_topology.Graph.populations ~mean_daily_requests:400.0 ~seed:4)
  in
  (g, paths, catalog, trace)

let playout_conservation () =
  let g, paths, catalog, trace = sim_world () in
  let fleet =
    Vod_cache.Fleet.random_single ~paths ~catalog
      ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5
  in
  let m = Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet ~trace () in
  Alcotest.(check int) "every request counted" (Vod_workload.Trace.length trace) m.M.requests;
  (* Per-VHO counters partition the totals. *)
  Alcotest.(check int) "per-vho requests sum" m.M.requests
    (Array.fold_left ( + ) 0 m.M.per_vho_requests);
  Alcotest.(check int) "per-vho local sum" m.M.local_served
    (Array.fold_left ( + ) 0 m.M.per_vho_local);
  Array.iter
    (fun f -> Alcotest.(check bool) "per-vho fraction range" true (f >= 0.0 && f <= 1.0))
    (M.per_vho_local_fraction m);
  Alcotest.(check int) "local+remote = total" m.M.requests
    (m.M.local_served + m.M.remote_served);
  Alcotest.(check bool) "hit rate in [0,1]" true
    (M.local_fraction m >= 0.0 && M.local_fraction m <= 1.0);
  Alcotest.(check bool) "gbhops nonneg" true (m.M.total_gb_hops >= 0.0);
  (* gb x hops >= gb moved (hops >= 1 for any remote transfer). *)
  Alcotest.(check bool) "gbhops >= gb remote" true
    (m.M.total_gb_hops >= m.M.total_gb_remote -. 1e-6)

let playout_deterministic () =
  let g, paths, catalog, trace = sim_world () in
  let run () =
    let fleet =
      Vod_cache.Fleet.random_single ~paths ~catalog
        ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5
    in
    let m = Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet ~trace () in
    (m.M.local_served, m.M.total_gb_hops)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "deterministic" true (a = b)

let full_replication_all_local () =
  let g, paths, catalog, trace = sim_world () in
  (* Disk large enough to pin the whole library everywhere. *)
  let full = Vod_workload.Catalog.total_size_gb catalog in
  let fleet =
    Vod_cache.Fleet.random_single ~paths ~catalog
      ~disk_gb:(Array.make 4 (2.0 *. full))
      ~policy:Vod_cache.Cache.Lru ~seed:5
  in
  (* Pin everything manually (simulating full replication). *)
  for video = 0 to Vod_workload.Catalog.n_videos catalog - 1 do
    for vho = 0 to 3 do
      Vod_cache.Fleet.pin fleet ~video ~vho
    done
  done;
  let m = Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet ~trace () in
  Alcotest.(check int) "all local" m.M.requests m.M.local_served;
  Alcotest.(check (float 1e-9)) "no transfer" 0.0 m.M.total_gb_hops;
  Alcotest.(check (float 1e-9)) "no link load" 0.0 (M.max_link_mbps m)

let warmup_reduces_counted_requests () =
  let g, paths, catalog, trace = sim_world () in
  let fleet () =
    Vod_cache.Fleet.random_single ~paths ~catalog
      ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5
  in
  let all = Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet:(fleet ()) ~trace () in
  let recorded =
    Vod_sim.Sim.run ~graph:g ~paths ~catalog ~fleet:(fleet ()) ~trace
      ~record_from:(2.0 *. Vod_workload.Trace.seconds_per_day) ()
  in
  Alcotest.(check bool) "fewer counted" true (recorded.M.requests < all.M.requests);
  Alcotest.(check bool) "nonzero counted" true (recorded.M.requests > 0)

(* Regression: an out-of-range VHO id used to silently skip the per-VHO
   counters (guarded array writes); now the batch is validated once at
   playout entry. *)
let out_of_range_vho_rejected () =
  let g, paths, catalog, _ = sim_world () in
  let fleet =
    Vod_cache.Fleet.random_single ~paths ~catalog
      ~disk_gb:[| 15.0; 15.0; 15.0; 15.0 |] ~policy:Vod_cache.Cache.Lru ~seed:5
  in
  let bad =
    [| { Vod_workload.Trace.time_s = 10.0; vho = 7; video = 0 } |]
  in
  let m =
    M.create ~n_links:(Vod_topology.Graph.n_links g) ~n_vhos:4
      ~horizon_s:86_400.0 ()
  in
  Alcotest.check_raises "validated at entry"
    (Invalid_argument "Metrics.validate_vhos: request VHO 7 outside [0, 4)")
    (fun () -> Vod_sim.Sim.play m paths catalog fleet bad);
  Alcotest.(check int) "nothing counted" 0 m.M.requests;
  (* A well-formed batch against the same metrics still plays. *)
  let ok = [| { Vod_workload.Trace.time_s = 10.0; vho = 3; video = 0 } |] in
  Vod_sim.Sim.play m paths catalog fleet ok;
  Alcotest.(check int) "valid batch plays" 1 m.M.requests;
  Alcotest.(check int) "attributed to vho 3" 1 m.M.per_vho_requests.(3)

let suite =
  [
    Alcotest.test_case "stream binning" `Quick stream_binning;
    Alcotest.test_case "horizon clamp" `Quick stream_clamped_to_horizon;
    Alcotest.test_case "record_from" `Quick record_from_excludes_warmup;
    Alcotest.test_case "stream boundaries" `Quick stream_boundaries;
    Alcotest.test_case "record_from straddle" `Quick stream_straddles_record_from;
    Alcotest.test_case "horizon straddle" `Quick stream_straddles_horizon;
    Alcotest.test_case "out-of-range vho rejected" `Quick out_of_range_vho_rejected;
    Alcotest.test_case "series and peaks" `Quick series_and_peaks;
    Alcotest.test_case "conservation" `Quick playout_conservation;
    Alcotest.test_case "deterministic" `Quick playout_deterministic;
    Alcotest.test_case "full replication all local" `Quick full_replication_all_local;
    Alcotest.test_case "warmup exclusion" `Quick warmup_reduces_counted_requests;
  ]
