#!/bin/sh
# Single-command tier-1 + lint gate: build, unit/property tests, vodlint,
# docs, and the metrics-registry check.
# Run from the repo root (or any subdirectory; dune finds the root).
set -eu

echo "== dune build =="
dune build
echo "== dune runtest =="
dune runtest
echo "== dune build @doc (odoc comments must parse) =="
# The libraries are private, so their docs build under @doc-private;
# @doc is kept alongside for the day a package stanza appears. odoc is
# not part of the minimal toolchain image — CI installs it and runs
# this for real; locally the step degrades to a skip note.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc @doc-private
else
  echo "   (odoc not installed; skipping — CI runs this step)"
fi
echo "== dune build @lint (project mode: effect + units/hot-path + protocol analysis) =="
dune build @lint
echo "== vodlint --project (explicit, against the checked-in baseline) =="
dune exec --no-print-directory bin/vodlint.exe -- --project \
  --baseline .vodlint-baseline --units-decl units.decl \
  --protocols-decl protocols.decl --forbid-stale
echo "== units.decl stale-declaration check =="
# Every `Module.name` declared in units.decl must still exist as a
# `val name` in the module's .mli somewhere under lib/ — otherwise the
# declaration is dead weight (the value was renamed or removed) and the
# units analysis silently stops covering it.
decl_status=0
for qual in $(grep -vE '^[[:space:]]*(#|$)' units.decl | awk '{print $1}'); do
  mod=${qual%%.*}
  name=${qual#*.}
  file=$(printf '%s' "$mod" | tr 'A-Z' 'a-z').mli
  mli=$(find lib -name "$file" | head -n 1)
  if [ -z "$mli" ]; then
    echo "FAIL: units.decl declares '$qual' but no $file exists under lib/" >&2
    decl_status=1
  elif ! grep -qE "^[[:space:]]*val[[:space:]]+$name[[:space:]:]" "$mli"; then
    echo "FAIL: units.decl declares '$qual' but $mli has no 'val $name'" >&2
    decl_status=1
  fi
done
[ "$decl_status" -eq 0 ] || exit 1
echo "== protocols.decl stale-declaration check =="
# Same contract for the protocol declarations: every qualified
# `Module.name` appearing in an acquire=/release=/handoff=/bracket=
# field must still exist as a `val name` in the module's .mli under
# lib/. Dotless names (open_out, close_in, ...) are stdlib and exempt.
proto_status=0
for qual in $(grep -vE '^[[:space:]]*(#|$)' protocols.decl \
  | tr ' \t' '\n\n' | grep '=' | cut -d= -f2 | tr ',' '\n' | grep '\.'); do
  mod=${qual%%.*}
  name=${qual#*.}
  file=$(printf '%s' "$mod" | tr 'A-Z' 'a-z').mli
  mli=$(find lib -name "$file" | head -n 1)
  if [ -z "$mli" ]; then
    echo "FAIL: protocols.decl declares '$qual' but no $file exists under lib/" >&2
    proto_status=1
  elif ! grep -qE "^[[:space:]]*val[[:space:]]+$name[[:space:]:]" "$mli"; then
    echo "FAIL: protocols.decl declares '$qual' but $mli has no 'val $name'" >&2
    proto_status=1
  fi
done
[ "$proto_status" -eq 0 ] || exit 1
echo "== EPF determinism smoke: --jobs 1 vs --jobs 4 =="
# A small end-to-end solve must produce byte-identical output at any
# job count (the pool's determinism contract). The "time" line is the
# one legitimately nondeterministic row; strip it before diffing.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for j in 1 4; do
  dune exec --no-print-directory bin/vodopt.exe -- solve \
    --videos 120 --days 7 --requests-per-video 6 --passes 12 --jobs "$j" \
    --metrics "$smoke_dir/metrics$j.json" \
    | grep -v '^time' > "$smoke_dir/jobs$j.out"
done
if ! diff -u "$smoke_dir/jobs1.out" "$smoke_dir/jobs4.out"; then
  echo "FAIL: solver output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
# The metrics exports must agree too, modulo the documented exclusions
# (timing keys, scheduler telemetry, and the mem/* RSS gauges — see
# METRICS.md, "Determinism and --jobs invariance").
for j in 1 4; do
  grep -vE '_seconds|"pool/sched/|"mem/' "$smoke_dir/metrics$j.json" \
    > "$smoke_dir/metrics$j.inv"
done
if ! diff -u "$smoke_dir/metrics1.inv" "$smoke_dir/metrics4.inv"; then
  echo "FAIL: non-time metrics differ between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "== Benders determinism smoke: --jobs 1 vs --jobs 4 =="
# The cutting-plane backend shares the pool's determinism contract: cut
# generation and bound sweeps fan out through the pool, the master LP
# and the rounding sweep are sequential, so the report must be
# byte-identical at any job count.
for j in 1 4; do
  dune exec --no-print-directory bin/vodopt.exe -- solve \
    --topology ebone --videos 150 --days 7 --requests-per-video 6 \
    --disk 4 --passes 20 --solver benders --jobs "$j" \
    --metrics "$smoke_dir/benders_metrics$j.json" \
    | grep -v '^time' > "$smoke_dir/benders$j.out"
done
if ! diff -u "$smoke_dir/benders1.out" "$smoke_dir/benders4.out"; then
  echo "FAIL: benders output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
for j in 1 4; do
  grep -vE '_seconds|"pool/sched/|"mem/' "$smoke_dir/benders_metrics$j.json" \
    > "$smoke_dir/benders_metrics$j.inv"
done
if ! diff -u "$smoke_dir/benders_metrics1.inv" "$smoke_dir/benders_metrics4.inv"; then
  echo "FAIL: non-time benders metrics differ between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "== EPF vs Benders rounded-cost agreement =="
# On a loosely-capacitated quick instance both backends must land on
# nearly the same rounded cost (within 2 x epsilon relative) — this
# pins the two solver backends to each other end to end through the
# registry, not just to their own histories.
for s in epf benders; do
  dune exec --no-print-directory bin/vodopt.exe -- solve \
    --topology ebone --videos 200 --days 7 --requests-per-video 6 \
    --disk 8 --passes 60 --solver "$s" \
    | sed -n 's/^MIP objective *\([0-9.]*\).*/\1/p' > "$smoke_dir/cost_$s"
done
awk -v a="$(cat "$smoke_dir/cost_epf")" -v b="$(cat "$smoke_dir/cost_benders")" \
  'BEGIN {
     if (a == "" || b == "") { print "FAIL: missing MIP objective line"; exit 1 }
     d = (a > b ? a - b : b - a) / b;
     printf "   EPF %s vs Benders %s (rel diff %.4f, bound 0.02)\n", a, b, d;
     if (d > 0.02) { print "FAIL: backends disagree beyond 2 x epsilon"; exit 1 }
   }' || exit 1
echo "== fault playout determinism smoke: --jobs 1 vs --jobs 4 =="
# The resilience playout (fault schedule + capacity-aware failover) must
# be byte-identical at any job count, like the solver above; its console
# report carries no timing line, so the whole stdout diffs directly.
for j in 1 4; do
  dune exec --no-print-directory bin/vodopt.exe -- simulate \
    --scheme lru --videos 150 --days 14 --requests-per-video 5 \
    --faults single-vho --link-capacity 400 --jobs "$j" \
    --metrics "$smoke_dir/fault_metrics$j.json" \
    > "$smoke_dir/fault$j.out"
done
if ! diff -u "$smoke_dir/fault1.out" "$smoke_dir/fault4.out"; then
  echo "FAIL: fault playout differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
for j in 1 4; do
  grep -vE '_seconds|"pool/sched/|"mem/' "$smoke_dir/fault_metrics$j.json" \
    > "$smoke_dir/fault_metrics$j.inv"
done
if ! diff -u "$smoke_dir/fault_metrics1.inv" "$smoke_dir/fault_metrics4.inv"; then
  echo "FAIL: non-time fault metrics differ between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "== SoA playout smoke: --soa vs array path, --jobs 1 vs --jobs 4 =="
# The compact struct-of-arrays serving path must reproduce the
# array-backed playout byte-for-byte (same faulted scenario as the
# smoke above, so fault1.out doubles as the reference), and its
# sharded generator must stay byte-identical at any job count.
for j in 1 4; do
  dune exec --no-print-directory bin/vodopt.exe -- simulate \
    --scheme lru --videos 150 --days 14 --requests-per-video 5 \
    --faults single-vho --link-capacity 400 --soa --jobs "$j" \
    > "$smoke_dir/soa$j.out"
done
if ! diff -u "$smoke_dir/fault1.out" "$smoke_dir/soa1.out"; then
  echo "FAIL: --soa playout differs from the array-backed playout" >&2
  exit 1
fi
if ! diff -u "$smoke_dir/soa1.out" "$smoke_dir/soa4.out"; then
  echo "FAIL: --soa playout differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "== scale-tier list drift: bench --help vs EXPERIMENTS.md =="
# One authoritative tier list, quoted in two places; both must carry
# every tier (a new tier added to bench/common.ml without its docs
# fails here).
tiers='VOD_SCALE=quick|default|full|huge'
dune exec --no-print-directory bench/main.exe -- --help \
  | grep -qF "$tiers" || {
  echo "FAIL: bench --help does not list '$tiers'" >&2
  exit 1
}
grep -qF "$tiers" EXPERIMENTS.md || {
  echo "FAIL: EXPERIMENTS.md does not list '$tiers'" >&2
  exit 1
}
echo "== daemon determinism smoke: --jobs 1 vs --jobs 4 =="
# The online re-placement daemon (continuous replans, warm starts,
# migration budget, fault reaction) must also be byte-identical at any
# job count; the serve report carries no timing line.
for j in 1 4; do
  dune exec --no-print-directory bin/vodopt.exe -- serve \
    --videos 100 --days 10 --requests-per-video 5 --passes 10 \
    --update-hours 12 --budget 150 --faults single-vho --link-capacity 400 \
    --jobs "$j" --metrics "$smoke_dir/daemon_metrics$j.json" \
    > "$smoke_dir/daemon$j.out"
done
if ! diff -u "$smoke_dir/daemon1.out" "$smoke_dir/daemon4.out"; then
  echo "FAIL: daemon output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
for j in 1 4; do
  grep -vE '_seconds|"pool/sched/|"mem/' "$smoke_dir/daemon_metrics$j.json" \
    > "$smoke_dir/daemon_metrics$j.inv"
done
if ! diff -u "$smoke_dir/daemon_metrics1.inv" "$smoke_dir/daemon_metrics4.inv"; then
  echo "FAIL: non-time daemon metrics differ between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "== daemon bench exhibit (quick scale, checkpointed) =="
# The continuous-vs-batch exhibit must run end to end at quick scale;
# --checkpoint exercises the resumable-exhibit path and leaves the
# per-exhibit metrics JSON behind for the registry check below.
VOD_SCALE=quick dune exec --no-print-directory bench/main.exe -- daemon \
  --checkpoint "$smoke_dir/ckpt" > /dev/null
[ -f "$smoke_dir/ckpt/daemon.metrics.json" ] || {
  echo "FAIL: daemon exhibit left no checkpoint metrics" >&2
  exit 1
}
echo "== decomp bench exhibit (quick scale, checkpointed) =="
# The solver-backend race (exact-LP anchor + Benders-vs-EPF convergence)
# must run end to end at quick scale; its checkpointed metrics feed the
# registry check below so the decomp/* keys stay documented.
VOD_SCALE=quick dune exec --no-print-directory bench/main.exe -- decomp \
  --checkpoint "$smoke_dir/ckpt" > /dev/null
[ -f "$smoke_dir/ckpt/decomp.metrics.json" ] || {
  echo "FAIL: decomp exhibit left no checkpoint metrics" >&2
  exit 1
}
echo "== bench metrics vs METRICS.md registry =="
# Run one quick-scale bench exhibit with --metrics and check every
# emitted key is documented. Normalize instance-specific name parts to
# the registry's placeholders before the lookup, so a new undocumented
# (or misspelled) metric name fails the gate.
VOD_SCALE=quick dune exec --no-print-directory bench/main.exe -- table3 \
  --metrics "$smoke_dir/bench_metrics.json" > /dev/null
sed -n '/<!-- registry:begin/,/registry:end -->/p' METRICS.md \
  | grep -oE '^\| `[^`]+`' | sed 's/^| `//; s/`$//' > "$smoke_dir/registry.txt"
# The fault, daemon and benders smokes above exported the serving-loop,
# daemon and decomposition keys; validate them too, along with the
# checkpointed daemon and decomp exhibits' registries.
keys=$(grep -hoE '^  "[^"]+"' "$smoke_dir/bench_metrics.json" \
  "$smoke_dir/fault_metrics1.json" "$smoke_dir/daemon_metrics1.json" \
  "$smoke_dir/benders_metrics1.json" "$smoke_dir/ckpt/daemon.metrics.json" \
  "$smoke_dir/ckpt/decomp.metrics.json" | tr -d ' "')
[ -n "$keys" ] || { echo "FAIL: bench --metrics emitted no keys" >&2; exit 1; }
status=0
for key in $keys; do
  norm=$(printf '%s\n' "$key" | sed -E '
    s#^phase/bench/([a-z0-9]+)/#phase/#;
    s#^phase/bench/[a-z0-9]+_seconds$#phase/bench/<exhibit>_seconds#;
    s#^pool/sched/domain[0-9]+_busy_seconds$#pool/sched/domain<slot>_busy_seconds#;
    s#^huge/[a-z]+_seconds$#huge/<step>_seconds#;
    s#^cache/(lru|lfu|lrfu)/#cache/<policy>/#')
  if ! grep -qxF "$norm" "$smoke_dir/registry.txt"; then
    echo "FAIL: metric '$key' (registry form '$norm') is not in METRICS.md" >&2
    status=1
  fi
done
[ "$status" -eq 0 ] || exit 1
echo "== all checks passed =="
