#!/bin/sh
# Single-command tier-1 + lint gate: build, unit/property tests, vodlint.
# Run from the repo root (or any subdirectory; dune finds the root).
set -eu

echo "== dune build =="
dune build
echo "== dune runtest =="
dune runtest
echo "== dune build @lint =="
dune build @lint
echo "== all checks passed =="
