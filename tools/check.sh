#!/bin/sh
# Single-command tier-1 + lint gate: build, unit/property tests, vodlint.
# Run from the repo root (or any subdirectory; dune finds the root).
set -eu

echo "== dune build =="
dune build
echo "== dune runtest =="
dune runtest
echo "== dune build @lint (project mode: effect analysis + baseline) =="
dune build @lint
echo "== vodlint --project (explicit, against the checked-in baseline) =="
dune exec --no-print-directory bin/vodlint.exe -- --project --baseline .vodlint-baseline
echo "== EPF determinism smoke: --jobs 1 vs --jobs 4 =="
# A small end-to-end solve must produce byte-identical output at any
# job count (the pool's determinism contract). The "time" line is the
# one legitimately nondeterministic row; strip it before diffing.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for j in 1 4; do
  dune exec --no-print-directory bin/vodopt.exe -- solve \
    --videos 120 --days 7 --requests-per-video 6 --passes 12 --jobs "$j" \
    | grep -v '^time' > "$smoke_dir/jobs$j.out"
done
if ! diff -u "$smoke_dir/jobs1.out" "$smoke_dir/jobs4.out"; then
  echo "FAIL: solver output differs between --jobs 1 and --jobs 4" >&2
  exit 1
fi
echo "== all checks passed =="
