(** End-to-end placement solve: block construction, decomposition (or
    exact LP), rounding, extraction — dispatched through the
    {!Backend} registry, EPF by default.

    The pipeline is deterministic: the report is a pure function of
    [(inst, solver, params, incumbent)] at any [Engine.params.jobs]
    count. Wall-clock timing is deliberately absent from {!report} —
    phase timings are recorded side-band through {!Vod_obs.Obs.phase}
    (keys [phase/solve/..._seconds], collected only when a [--metrics]
    registry is installed); callers that want an end-to-end duration
    time the {!solve} call themselves. *)

type report = Backend.report = {
  solution : Solution.t;  (** the rounded integral placement *)
  lp_objective : float;  (** fractional objective before rounding *)
  lp_violation : float;  (** max relative violation before rounding *)
  passes : int;  (** main-loop passes run by the backend *)
  history : (float * float * float) array;
      (** per-pass (objective, lower bound, violation) fractional trace *)
}

val solve :
  ?solver:string ->
  ?params:Vod_epf.Engine.params ->
  ?incumbent:Solution.t ->
  Instance.t ->
  report
(** Solve an instance with the named backend (default
    {!Backend.default}, i.e. ["epf"]) and the given engine parameters
    (defaults: [Vod_epf.Engine.default_params]). [incumbent], when
    given, warm-starts the backend from that placement
    ({!Solution.engine_point} per block) instead of the single-facility
    initial sweep — the entry the online re-placement daemon uses to
    re-solve from where the fleet already is. The report stays a
    deterministic function of [(inst, solver, params, incumbent)] at
    any job count. Raises [Failure] listing the registered backends
    when [solver] is unknown. Logs a one-line summary at info level on
    the [vod.solve] source. *)
