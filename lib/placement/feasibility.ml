(* Feasibility probing (paper Fig. 11 / Table IV): can all demand be served
   within the disk and link budgets? The probe runs the EPF engine in pure
   FEAS mode — no objective row — and asks for an epsilon-feasible point.
   A negative answer is heuristic (the engine may simply have run out of
   passes), so sweeps should read "min capacity at which the solver finds
   a placement", exactly the operational question the paper asks. *)

let default_probe_params =
  {
    Vod_epf.Engine.default_params with
    Vod_epf.Engine.feasibility_only = true;
    max_passes = 40;
  }

let feasible ?(params = default_probe_params) (inst : Instance.t) =
  (* Namespace the engine's phase timers under probe/, so a feasibility
     sweep's metrics don't mix with Solve.solve's solve/engine/* keys. *)
  Vod_obs.Obs.phase "probe" @@ fun () ->
  let _, oracles = Blocks.oracles inst in
  let capacities = Instance.capacities inst in
  let outcome =
    Vod_epf.Engine.solve ~round:false
      { params with Vod_epf.Engine.feasibility_only = true }
      ~capacities ~oracles
  in
  outcome.Vod_epf.Engine.epsilon_feasible

(* Smallest x in [lo, hi] (within [tol], relative) such that
   [feasible_at x]; [None] if even [hi] fails. Assumes monotonicity
   (more capacity cannot hurt). *)
let binary_search_min ~lo ~hi ~tol ~feasible_at =
  if not (feasible_at hi) then None
  else begin
    let lo = ref lo and hi = ref hi in
    (* If even lo works, report lo. *)
    if feasible_at !lo then Some !lo
    else begin
      while (!hi -. !lo) /. !hi > tol do
        let mid = 0.5 *. (!lo +. !hi) in
        if feasible_at mid then hi := mid else lo := mid
      done;
      Some !hi
    end
  end

(* Minimum aggregate-disk multiple of the library size at which the
   instance becomes feasible, for a given uniform link capacity.
   [disk_of] maps the multiplier to the per-VHO disk vector, so both the
   paper's uniform and heterogeneous VHO splits fit. *)
let min_disk_multiplier ?(params = default_probe_params) ?(lo = 1.0)
    ?(hi = 16.0) ?(tol = 0.05) ~graph ~catalog ~demand ~link_capacity_mbps
    ~disk_of () =
  let feasible_at mult =
    let disk_gb = disk_of mult in
    let inst =
      Instance.create ~graph ~catalog ~demand ~disk_gb
        ~link_capacity_mbps:(Instance.uniform_links graph link_capacity_mbps)
        ()
    in
    feasible ~params inst
  in
  binary_search_min ~lo ~hi ~tol ~feasible_at

(* Minimum uniform link capacity (Mb/s) at which the instance becomes
   feasible, for a fixed disk vector (Table IV / Fig. 13). *)
let min_link_capacity ?(params = default_probe_params) ?(lo = 1.0)
    ?(hi = 100_000.0) ?(tol = 0.05) ~graph ~catalog ~demand ~disk_gb () =
  let feasible_at mbps =
    let inst =
      Instance.create ~graph ~catalog ~demand ~disk_gb
        ~link_capacity_mbps:(Instance.uniform_links graph mbps)
        ()
    in
    feasible ~params inst
  in
  binary_search_min ~lo ~hi ~tol ~feasible_at
