(* Solver-backend registry. Every placement solver — the EPF engine, the
   stabilized Benders/DW master, the exact simplex reference — is a named
   entry with one shape: instance + engine params + optional incumbent in,
   report out. Solve.solve, Pipeline, Serve.Replan and vodopt --solver all
   dispatch through here, so adding a solver is one [register] call.

   Wall-clock never appears here (wallclock-in-solver rule): phase
   timings go through Vod_obs.Obs side-band. *)

type report = {
  solution : Solution.t;
  lp_objective : float;
  lp_violation : float;
  passes : int;
  history : (float * float * float) array;
}

type t = {
  name : string;
  doc : string;
  run :
    ?incumbent:Solution.t ->
    params:Vod_epf.Engine.params ->
    Instance.t ->
    report;
}

let src = Logs.Src.create "vod.solve" ~doc:"placement solve pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

module Obs = Vod_obs.Obs
module Engine = Vod_epf.Engine

let registry : (string * t) list ref = ref []

let register b =
  registry := (b.name, b) :: List.remove_assoc b.name !registry

let names () = List.sort String.compare (List.map fst !registry)

let default = "epf"

let find name =
  match List.assoc_opt name !registry with
  | Some b -> b
  | None ->
      (* vodlint-disable no-failwith -- Failure with the registered-name
         list is the documented contract of [find]/[solve] (solve.mli). *)
      failwith
        (Printf.sprintf "unknown solver backend %S (registered: %s)" name
           (String.concat ", " (names ())))

(* Warm-start points: one engine point per block, rebuilt from the
   incumbent placement. *)
let warm_points inst blocks sol =
  Obs.phase "warm_points" (fun () ->
      Array.map (fun b -> Solution.engine_point inst b ~incumbent:sol) blocks)

(* ---- "epf": the exponential-potential-function engine (default). ---- *)

let epf_run ?incumbent ~params inst =
  let blocks, oracles = Obs.phase "blocks" (fun () -> Blocks.oracles inst) in
  let capacities = Instance.capacities inst in
  let initial = Option.map (warm_points inst blocks) incumbent in
  let outcome =
    Obs.phase "engine" (fun () ->
        Engine.solve ~round:true ?initial params ~capacities ~oracles)
  in
  let solution =
    Obs.phase "extract" (fun () -> Solution.of_outcome inst outcome)
  in
  {
    solution;
    lp_objective = outcome.Engine.pre_round_objective;
    lp_violation = outcome.Engine.pre_round_violation;
    passes = outcome.Engine.passes;
    history = outcome.Engine.history;
  }

(* ---- "benders": stabilized cutting-plane master over the same
   oracles. The engine params map onto the master's: epsilon,
   max_passes, polish_passes, jobs; stabilization keeps its defaults. *)

let benders_run ?incumbent ~params inst =
  let blocks, oracles = Obs.phase "blocks" (fun () -> Blocks.oracles inst) in
  let capacities = Instance.capacities inst in
  let initial = Option.map (warm_points inst blocks) incumbent in
  (* Seed the incumbent price vector with the greedy-fill disk duals —
     the same warm prices the oracles' initial points assume. *)
  let initial_prices =
    let rp = Array.make (Instance.n_rows inst) 0.0 in
    Array.iteri
      (fun i price -> rp.(Instance.disk_row inst i) <- price)
      (Blocks.warm_disk_prices inst);
    rp
  in
  let mp =
    {
      Vod_decomp.Master.default_params with
      Vod_decomp.Master.epsilon = params.Engine.epsilon;
      max_passes = params.Engine.max_passes;
      jobs = params.Engine.jobs;
      polish_passes = params.Engine.polish_passes;
    }
  in
  let outcome =
    Obs.phase "master" (fun () ->
        Vod_decomp.Master.solve ?initial ~initial_prices mp ~capacities
          ~oracles)
  in
  let solution =
    Obs.phase "extract" (fun () -> Solution.of_outcome inst outcome)
  in
  {
    solution;
    lp_objective = outcome.Engine.pre_round_objective;
    lp_violation = outcome.Engine.pre_round_violation;
    passes = outcome.Engine.passes;
    history = outcome.Engine.history;
  }

(* ---- "simplex": the exact monolithic LP (Lp_check.build), rounded by
   y >= 1/2 / largest-x extraction. Ground truth on small instances;
   the tableau outgrows memory beyond a few thousand nonzeros. *)

let simplex_run ?incumbent ~params inst =
  ignore incumbent;
  (* the dense tableau has no warm-start path *)
  let lp =
    Obs.phase "lp" (fun () -> Lp_check.solve_reference inst)
  in
  match lp with
  | Vod_lp.Simplex.Infeasible ->
      (* vodlint-disable no-failwith -- caller-facing diagnosis, same
         Failure contract as the registry lookup above *)
      failwith "simplex backend: placement LP is infeasible"
  | Vod_lp.Simplex.Unbounded ->
      (* vodlint-disable no-failwith -- ditto *)
      failwith "simplex backend: placement LP is unbounded"
  | Vod_lp.Simplex.Optimal { objective; solution = x; duals = _ } ->
      let blocks = Obs.phase "blocks" (fun () -> Blocks.build_blocks inst) in
      let n = Instance.n_vhos inst in
      let points =
        Obs.phase "extract_points" (fun () ->
            Array.map
              (fun (b : Blocks.block) ->
                let video = b.Blocks.video in
                let open_set =
                  Array.init n (fun i ->
                      x.(Lp_check.y_var ~n ~video i) >= 0.5)
                in
                let assign =
                  Array.map
                    (fun (c : Blocks.client) ->
                      let best = ref 0 and best_x = ref neg_infinity in
                      for i = 0 to n - 1 do
                        let xi =
                          x.(Lp_check.x_var ~n ~video ~server:i
                               ~client:c.Blocks.vho)
                        in
                        if xi > !best_x +. 1e-12 then begin
                          best := i;
                          best_x := xi
                        end
                      done;
                      !best)
                    b.Blocks.clients
                in
                Array.iter (fun s -> open_set.(s) <- true) assign;
                if not (Array.exists Fun.id open_set) then begin
                  (* Zero-demand video: the LP leaves it unplaced, but a
                     Solution.t requires one copy. Pin the largest y
                     (lowest index on ties, 0 when all-zero). *)
                  let best = ref 0 and best_y = ref neg_infinity in
                  for i = 0 to n - 1 do
                    let yi = x.(Lp_check.y_var ~n ~video i) in
                    if yi > !best_y +. 1e-12 then begin
                      best := i;
                      best_y := yi
                    end
                  done;
                  open_set.(!best) <- true
                end;
                Blocks.point_of_solution inst b
                  { Vod_facility.Ufl.open_set; assign; cost = 0.0 })
              blocks)
      in
      let capacities = Instance.capacities inst in
      let row_usage = Array.make (Instance.n_rows inst) 0.0 in
      let total_obj = ref 0.0 in
      Array.iter
        (fun (p : _ Engine.point) ->
          total_obj := !total_obj +. p.Engine.obj;
          Vod_epf.Sparse.add_into row_usage 1.0 p.Engine.usage)
        points;
      let max_violation =
        Array.fold_left max 0.0
          (Array.mapi
             (fun i u -> (u -. capacities.(i)) /. capacities.(i))
             row_usage)
      in
      let max_violation = Float.max 0.0 max_violation in
      let outcome =
        {
          Engine.combos = Array.map (fun p -> [ (p, 1.0) ]) points;
          objective = !total_obj;
          lower_bound = objective;
          max_violation;
          row_usage;
          passes = 1;
          epsilon_feasible = max_violation <= params.Engine.epsilon;
          converged = true;
          pre_round_objective = objective;
          pre_round_violation = 0.0;
          history = [| (!total_obj, objective, max_violation) |];
        }
      in
      let solution =
        Obs.phase "extract" (fun () -> Solution.of_outcome inst outcome)
      in
      {
        solution;
        lp_objective = objective;
        lp_violation = 0.0;
        passes = 1;
        history = outcome.Engine.history;
      }

let () =
  register
    {
      name = "epf";
      doc = "exponential-potential-function engine (paper's solver, default)";
      run = epf_run;
    };
  register
    {
      name = "benders";
      doc = "stabilized Benders/Dantzig-Wolfe cutting-plane master";
      run = benders_run;
    };
  register
    {
      name = "simplex";
      doc = "exact dense-LP reference (small instances only)";
      run = simplex_run;
    }

let solve ?(solver = default) ?(params = Engine.default_params) ?incumbent
    (inst : Instance.t) =
  let b = find solver in
  let report = Obs.phase "solve" (fun () -> b.run ?incumbent ~params inst) in
  Log.info (fun m ->
      m "solved %d videos on %d VHOs: obj=%.4g lb=%.4g gap=%.2f%% viol=%.2f%% (%d passes)"
        report.solution.Solution.n_videos report.solution.Solution.n_vhos
        report.solution.Solution.objective report.solution.Solution.lower_bound
        (100.0 *. Solution.gap report.solution)
        (100.0 *. report.solution.Solution.max_violation)
        report.passes);
  report
