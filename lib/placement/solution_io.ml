(* Placement import/export.

   The operational hand-off from the optimizer to the content-distribution
   system is the placement itself: which videos to pin at which VHOs. The
   CSV carries one (video, vho) pair per line plus optional route records,
   so a placement can be computed offline and pushed to delivery, or an
   existing deployment's placement can be loaded and evaluated in the
   simulator. *)

let header = "kind,video,vho,server"

let save_csv (sol : Solution.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      Array.iteri
        (fun video vhos ->
          Array.iter (fun vho -> Printf.fprintf oc "store,%d,%d,\n" video vho) vhos)
        sol.Solution.stored;
      (* Routes emit in sorted client order so the exported CSV is
         byte-identical across runs (Hashtbl.iter order depends on
         insertion history). *)
      Array.iteri
        (fun video routes ->
          List.iter
            (fun client ->
              match Hashtbl.find_opt routes client with
              | Some server ->
                  Printf.fprintf oc "route,%d,%d,%d\n" video client server
              | None -> ())
            (Vod_util.Stats_acc.sorted_keys Int.compare routes))
        sol.Solution.routes)

let load_csv ~n_vhos ~n_videos path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let stored = Array.make n_videos [] in
      let routes = Array.init n_videos (fun _ -> Hashtbl.create 4) in
      let lineno = ref 0 in
      let fail () =
        invalid_arg (Printf.sprintf "Solution_io.load_csv: bad record on line %d" !lineno)
      in
      let check_vho v = if v < 0 || v >= n_vhos then fail () in
      let check_video v = if v < 0 || v >= n_videos then fail () in
      (try
         while true do
           incr lineno;
           let line = String.trim (input_line ic) in
           if line <> "" && not (!lineno = 1 && line = header) then begin
             match String.split_on_char ',' line with
             | [ "store"; video; vho; _ ] -> (
                 try
                   let video = int_of_string video and vho = int_of_string vho in
                   check_video video;
                   check_vho vho;
                   if not (List.mem vho stored.(video)) then
                     stored.(video) <- vho :: stored.(video)
                 with Failure _ -> fail ())
             | [ "route"; video; client; server ] -> (
                 try
                   let video = int_of_string video in
                   let client = int_of_string client in
                   let server = int_of_string server in
                   check_video video;
                   check_vho client;
                   check_vho server;
                   Hashtbl.replace routes.(video) client server
                 with Failure _ -> fail ())
             | _ -> fail ()
           end
         done
       with End_of_file -> ());
      let stored =
        Array.map
          (fun l ->
            let arr = Array.of_list l in
            Array.sort Int.compare arr;
            arr)
          stored
      in
      Array.iteri
        (fun video vhos ->
          if Array.length vhos = 0 then
            invalid_arg
              (Printf.sprintf "Solution_io.load_csv: video %d has no copy" video))
        stored;
      {
        Solution.n_vhos;
        n_videos;
        stored;
        routes;
        objective = nan;
        lower_bound = nan;
        max_violation = nan;
        passes = 0;
      })
