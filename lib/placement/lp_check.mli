(** Explicit construction of the full placement LP (Eqs. 2-8 with
    integrality relaxed) for the simplex reference solver — the "CPLEX"
    side of Table III and the ground-truth oracle for testing the EPF
    decomposition on small instances. *)

(** Variable layout helpers (exposed for tests). *)
val block_size : int -> int

(** Column index of placement variable [y_{video,vho}] (the unnamed
    [int] is the VHO). *)
val y_var : n:int -> video:int -> int -> int

(** Column index of routing variable [x_{video,server,client}]. *)
val x_var : n:int -> video:int -> server:int -> client:int -> int

(** Build the LP. *)
val build : Instance.t -> Vod_lp.Simplex.problem

(** Build and solve with the simplex reference. *)
val solve_reference : Instance.t -> Vod_lp.Simplex.result
