(* End-to-end MIP solve: build blocks, run the EPF decomposition, round,
   and extract the integral placement. Wall-clock never appears here —
   phase timings go through Vod_obs.Obs (side-band, --metrics only),
   which is what lets the wallclock-in-solver lint rule hold with no
   suppressions in this file. *)

type report = {
  solution : Solution.t;
  lp_objective : float;      (* fractional objective before rounding *)
  lp_violation : float;      (* max relative violation before rounding *)
  passes : int;
}

let src = Logs.Src.create "vod.solve" ~doc:"placement solve pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

module Obs = Vod_obs.Obs

let solve ?(params = Vod_epf.Engine.default_params) ?incumbent
    (inst : Instance.t) =
  Obs.phase "solve" @@ fun () ->
  let blocks, oracles = Obs.phase "blocks" (fun () -> Blocks.oracles inst) in
  let capacities = Instance.capacities inst in
  (* Warm start: one engine point per block, rebuilt from the incumbent
     placement, replaces the single-facility/greedy-dual initial sweep. *)
  let initial =
    match incumbent with
    | None -> None
    | Some sol ->
        Some
          (Obs.phase "warm_points" (fun () ->
               Array.map (fun b -> Solution.engine_point inst b ~incumbent:sol) blocks))
  in
  let outcome =
    Obs.phase "engine" (fun () ->
        Vod_epf.Engine.solve ~round:true ?initial params ~capacities ~oracles)
  in
  let solution =
    Obs.phase "extract" (fun () -> Solution.of_outcome inst outcome)
  in
  Log.info (fun m ->
      m "solved %d videos on %d VHOs: obj=%.4g lb=%.4g gap=%.2f%% viol=%.2f%% (%d passes)"
        solution.Solution.n_videos solution.Solution.n_vhos
        solution.Solution.objective solution.Solution.lower_bound
        (100.0 *. Solution.gap solution)
        (100.0 *. solution.Solution.max_violation)
        outcome.Vod_epf.Engine.passes);
  {
    solution;
    lp_objective = outcome.Vod_epf.Engine.pre_round_objective;
    lp_violation = outcome.Vod_epf.Engine.pre_round_violation;
    passes = outcome.Vod_epf.Engine.passes;
  }
