(* End-to-end MIP solve, now a thin dispatcher: the work lives in the
   named solver backends behind Backend (EPF by default). Kept as a
   module so the historical call sites — pipeline, daemon, benches,
   tests — keep reading Solve.solve / Solve.report. *)

type report = Backend.report = {
  solution : Solution.t;
  lp_objective : float;      (* fractional objective before rounding *)
  lp_violation : float;      (* max relative violation before rounding *)
  passes : int;
  history : (float * float * float) array;
}

let solve ?solver ?params ?incumbent (inst : Instance.t) =
  Backend.solve ?solver ?params ?incumbent inst
