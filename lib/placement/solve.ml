(* End-to-end MIP solve: build blocks, run the EPF decomposition, round,
   and extract the integral placement. *)

type report = {
  solution : Solution.t;
  lp_objective : float;      (* fractional objective before rounding *)
  lp_violation : float;      (* max relative violation before rounding *)
  passes : int;
  seconds : float;
  words_allocated : float;   (* major+minor words, a memory-pressure proxy *)
}

let src = Logs.Src.create "vod.solve" ~doc:"placement solve pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let solve ?(params = Vod_epf.Engine.default_params) (inst : Instance.t) =
  (* vodlint-disable wallclock-in-solver -- wall time is reporting
     metadata only (report.seconds / the log line); it never feeds the
     placement numerics, which are fully determined by (inst, params). *)
  let t0 = Unix.gettimeofday () in
  let words () =
    let s = Gc.quick_stat () in
    s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
  in
  let stat0 = words () in
  let _, oracles = Blocks.oracles inst in
  let capacities = Instance.capacities inst in
  let outcome = Vod_epf.Engine.solve ~round:true params ~capacities ~oracles in
  let solution = Solution.of_outcome inst outcome in
  (* vodlint-disable wallclock-in-solver -- same invariant as t0 above:
     elapsed time decorates the report, never the solution. *)
  let t1 = Unix.gettimeofday () in
  let stat1 = words () in
  Log.info (fun m ->
      m "solved %d videos on %d VHOs: obj=%.4g lb=%.4g gap=%.2f%% viol=%.2f%% (%d passes, %.2fs)"
        solution.Solution.n_videos solution.Solution.n_vhos
        solution.Solution.objective solution.Solution.lower_bound
        (100.0 *. Solution.gap solution)
        (100.0 *. solution.Solution.max_violation)
        outcome.Vod_epf.Engine.passes (t1 -. t0));
  {
    solution;
    lp_objective = outcome.Vod_epf.Engine.pre_round_objective;
    lp_violation = outcome.Vod_epf.Engine.pre_round_violation;
    passes = outcome.Vod_epf.Engine.passes;
    seconds = t1 -. t0;
    words_allocated = stat1 -. stat0;
  }
