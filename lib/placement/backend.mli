(** Uniform solver-backend interface: a registry of named placement
    solvers, all [Instance.t -> report]-shaped with the same warm-start
    and metrics hooks.

    Three backends register themselves at load time:

    - ["epf"] (the default) — the exponential-potential-function engine
      ({!Vod_epf.Engine}), the paper's solver;
    - ["benders"] — the stabilized Dantzig-Wolfe / Benders cutting-plane
      master ({!Vod_decomp.Master}), sharing the same per-video UFL
      oracles;
    - ["simplex"] — the exact dense-LP reference ({!Lp_check} +
      {!Vod_lp.Simplex}), viable only on small instances.

    Every backend is deterministic at any [Engine.params.jobs] count and
    records its phase timings through {!Vod_obs.Obs} under the same
    [phase/solve/...] namespace. *)

type report = {
  solution : Solution.t;  (** the rounded integral placement *)
  lp_objective : float;  (** fractional objective before rounding *)
  lp_violation : float;  (** max relative violation before rounding *)
  passes : int;  (** main-loop passes run by the backend *)
  history : (float * float * float) array;
      (** per-pass (objective, lower bound, violation) fractional
          convergence trace; a single entry for one-shot backends *)
}

type t = {
  name : string;
  doc : string;  (** one-line description, shown in error messages *)
  run :
    ?incumbent:Solution.t ->
    params:Vod_epf.Engine.params ->
    Instance.t ->
    report;
      (** [incumbent] warm-starts the backend from an existing
          placement where supported (EPF initial points, Benders seed
          column; the simplex reference ignores it). *)
}

(** Add a backend (or replace one with the same name). *)
val register : t -> unit

(** Look up a backend by name. Raises [Failure] with a message listing
    every registered backend when the name is unknown. *)
val find : string -> t

(** Registered backend names, sorted. *)
val names : unit -> string list

(** ["epf"] — the default backend; callers that don't take a solver
    choice keep their exact pre-registry behavior. *)
val default : string

(** [solve ?solver ?params ?incumbent inst] dispatches to the named
    backend (default {!default}). This is the single entry point behind
    {!Solve.solve}, [Pipeline], [Serve.Replan] and [vodopt --solver]. *)
val solve :
  ?solver:string ->
  ?params:Vod_epf.Engine.params ->
  ?incumbent:Solution.t ->
  Instance.t ->
  report
