(* Per-video block oracles for the EPF engine.

   Each video's subproblem is an uncapacitated facility location instance
   (paper Sec. V-C): facilities = VHOs (opening = storing the copy, priced
   by the disk-row multiplier), clients = VHOs with demand for the video
   (service priced by transfer cost plus the link-row multipliers along
   the fixed path). The [optimize] oracle runs the greedy UFL heuristic —
   integral block solutions keep the convex-combination iterate inside the
   block polytope — and [lower_bound] runs dual ascent over the *full*
   facility set, so the engine's Lagrangian bound stays valid. *)

type choice = {
  video : int;
  open_vhos : int array;      (* VHOs storing the video, sorted *)
  serve : (int * int) array;  (* (client vho, serving vho) *)
}

type client = {
  vho : int;
  a : float;          (* aggregate requests a_j^m *)
  f : float array;    (* concurrent streams per peak window f_j^m(t) *)
}

type block = {
  video : int;
  size_gb : float;
  rate_mbps : float;
  clients : client array;
}

(* Assemble the sparse per-video client list by merging the aggregate
   demand with every peak window's concurrency support. *)
let build_blocks (inst : Instance.t) =
  let demand = inst.Instance.demand in
  let n_videos = demand.Vod_workload.Demand.n_videos in
  let nw = Instance.n_windows inst in
  Array.init n_videos (fun video ->
      let tbl : (int, float * float array) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun (vho, count) -> Hashtbl.replace tbl vho (count, Array.make nw 0.0))
        demand.Vod_workload.Demand.a.(video);
      for w = 0 to nw - 1 do
        Array.iter
          (fun (vho, conc) ->
            match Hashtbl.find_opt tbl vho with
            | Some (a, f) ->
                f.(w) <- conc;
                Hashtbl.replace tbl vho (a, f)
            | None ->
                let f = Array.make nw 0.0 in
                f.(w) <- conc;
                Hashtbl.add tbl vho (0.0, f))
          demand.Vod_workload.Demand.f.(w).(video)
      done;
      let clients =
        Hashtbl.fold (fun vho (a, f) acc -> { vho; a; f } :: acc) tbl []
        |> List.sort (fun c1 c2 -> Int.compare c1.vho c2.vho)
        |> Array.of_list
      in
      let v = Vod_workload.Catalog.video inst.Instance.catalog video in
      {
        video;
        size_gb = Vod_workload.Video.size_gb v;
        rate_mbps = Vod_workload.Video.rate_mbps v;
        clients;
      })

(* Build the priced UFL instance for a block. *)
let ufl_of_block (inst : Instance.t) (b : block) ~obj_price ~row_price =
  let n = Instance.n_vhos inst in
  let nw = Instance.n_windows inst in
  let place_cost i =
    if inst.Instance.placement_weight = 0.0 then 0.0
    else
      inst.Instance.placement_weight *. b.size_gb
      *. Instance.cost inst ~src:inst.Instance.origin ~dst:i
  in
  let open_cost =
    Array.init n (fun i ->
        (row_price.(Instance.disk_row inst i) *. b.size_gb)
        +. (obj_price *. place_cost i))
  in
  let service =
    Array.map
      (fun c ->
        Array.init n (fun i ->
            let transfer =
              obj_price *. b.size_gb *. c.a *. Instance.cost inst ~src:i ~dst:c.vho
            in
            let bw = ref 0.0 in
            if i <> c.vho then begin
              let links =
                Vod_topology.Paths.path_links inst.Instance.paths ~src:i ~dst:c.vho
              in
              for w = 0 to nw - 1 do
                let load = b.rate_mbps *. c.f.(w) in
                if load > 0.0 then
                  Array.iter
                    (fun l -> bw := !bw +. (row_price.(Instance.link_row inst ~window:w ~link:l) *. load))
                    links
              done
            end;
            transfer +. !bw))
      b.clients
  in
  { Vod_facility.Ufl.open_cost; service }

(* Translate a UFL solution into an engine point: true objective
   contribution and coupling-row usage. *)
let point_of_solution (inst : Instance.t) (b : block)
    (sol : Vod_facility.Ufl.solution) =
  let nw = Instance.n_windows inst in
  let obj = ref 0.0 in
  let usage = ref [] in
  let opens = ref [] in
  Array.iteri
    (fun i is_open ->
      if is_open then begin
        opens := i :: !opens;
        usage := (Instance.disk_row inst i, b.size_gb) :: !usage;
        if inst.Instance.placement_weight > 0.0 then
          obj :=
            !obj
            +. inst.Instance.placement_weight *. b.size_gb
               *. Instance.cost inst ~src:inst.Instance.origin ~dst:i
      end)
    sol.Vod_facility.Ufl.open_set;
  let serve =
    Array.mapi
      (fun jc c ->
        let i = sol.Vod_facility.Ufl.assign.(jc) in
        obj := !obj +. (b.size_gb *. c.a *. Instance.cost inst ~src:i ~dst:c.vho);
        if i <> c.vho then begin
          let links = Vod_topology.Paths.path_links inst.Instance.paths ~src:i ~dst:c.vho in
          for w = 0 to nw - 1 do
            let load = b.rate_mbps *. c.f.(w) in
            if load > 0.0 then
              Array.iter
                (fun l -> usage := (Instance.link_row inst ~window:w ~link:l, load) :: !usage)
                links
          done
        end;
        (c.vho, i))
      b.clients
  in
  let data =
    {
      video = b.video;
      open_vhos = Array.of_list (List.sort Int.compare !opens);
      serve;
    }
  in
  { Vod_epf.Engine.obj = !obj; usage = Vod_epf.Sparse.of_assoc !usage; data }

(* Warm-start disk prices: the dual values a greedy demand-density disk
   fill implies. For each VHO, sort its demanded videos by request density
   a * dc / size (dc ~ the hop saving of serving locally, approximated by
   the mean path length), fill the disk, and price the disk at the
   marginal density. Starting every block at its optimum under these
   prices puts the whole system near the right equilibrium immediately;
   the EPF passes then only have to polish and enforce the link rows. *)
let warm_disk_prices (inst : Instance.t) =
  let n = Instance.n_vhos inst in
  let demand = inst.Instance.demand in
  (* Mean hop count over distinct pairs — the typical saving of a local
     copy versus fetching from a remote replica, times alpha. *)
  let mean_hops =
    let sum = ref 0 and cnt = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          sum := !sum + Vod_topology.Paths.hops inst.Instance.paths ~src:i ~dst:j;
          incr cnt
        end
      done
    done;
    if !cnt = 0 then 1.0 else float_of_int !sum /. float_of_int !cnt
  in
  let dc = inst.Instance.alpha_cost *. Float.max 1.0 (0.5 *. mean_hops) in
  let per_vho : (float * float) list array = Array.make n [] in
  Array.iteri
    (fun video pairs ->
      let v = Vod_workload.Catalog.video inst.Instance.catalog video in
      let s = Vod_workload.Video.size_gb v in
      Array.iter
        (fun (vho, a) ->
          if a > 0.0 then per_vho.(vho) <- (a *. dc /. s, s) :: per_vho.(vho))
        pairs)
    demand.Vod_workload.Demand.a;
  Array.mapi
    (fun i entries ->
      let sorted = List.sort (fun (d1, _) (d2, _) -> Float.compare d2 d1) entries in
      let cap = ref inst.Instance.disk_gb.(i) in
      let marginal = ref 0.0 in
      List.iter
        (fun (d, s) ->
          if !cap >= s then begin
            cap := !cap -. s;
            marginal := d
          end)
        sorted;
      !marginal)
    per_vho

(* The engine oracle for one block. [optimize] = greedy UFL (fast,
   integral); [lower_bound] = Erlenkotter dual ascent (valid LP bound);
   [initial] = the block optimum under the warm-start disk prices. *)
let oracle_of_block ?(warm_prices : float array option) (inst : Instance.t)
    (b : block) =
  let optimize ~obj_price ~row_price =
    let ufl = ufl_of_block inst b ~obj_price ~row_price in
    let sol = Vod_facility.Ufl.greedy ufl in
    point_of_solution inst b sol
  in
  let optimize_strong ~obj_price ~row_price =
    let ufl = ufl_of_block inst b ~obj_price ~row_price in
    let sol = Vod_facility.Ufl.local_search ufl in
    point_of_solution inst b sol
  in
  let lower_bound ~row_price =
    let ufl = ufl_of_block inst b ~obj_price:1.0 ~row_price in
    let bound, _ = Vod_facility.Ufl.dual_ascent ufl in
    bound
  in
  let initial () =
    match warm_prices with
    | Some row_price ->
        let ufl = ufl_of_block inst b ~obj_price:1.0 ~row_price in
        point_of_solution inst b (Vod_facility.Ufl.greedy ufl)
    | None ->
        (* Cheapest single facility under raw objective costs. *)
        let n = Instance.n_vhos inst in
        let zero = Array.make (Instance.n_rows inst) 0.0 in
        let ufl = ufl_of_block inst b ~obj_price:1.0 ~row_price:zero in
        let single_cost i =
          Array.fold_left
            (fun acc row -> acc +. row.(i))
            ufl.Vod_facility.Ufl.open_cost.(i)
            ufl.Vod_facility.Ufl.service
        in
        let best = ref 0 in
        for i = 1 to n - 1 do
          if single_cost i < single_cost !best then best := i
        done;
        let open_set = Array.make n false in
        open_set.(!best) <- true;
        point_of_solution inst b (Vod_facility.Ufl.solution_of_open ufl open_set)
  in
  { Vod_epf.Engine.optimize; optimize_strong; lower_bound; initial }

let oracles ?(warm_start = true) (inst : Instance.t) =
  let blocks = build_blocks inst in
  if warm_start then begin
    (* Warm-start prices live on the full row layout; link rows start 0. *)
    let row_prices = Array.make (Instance.n_rows inst) 0.0 in
    let disk = warm_disk_prices inst in
    Array.iteri (fun i p -> row_prices.(Instance.disk_row inst i) <- p) disk;
    (blocks, Array.map (oracle_of_block ~warm_prices:row_prices inst) blocks)
  end
  else (blocks, Array.map (oracle_of_block inst) blocks)

(* A stronger (local-search) re-optimization of one block, used by the
   final rounding refinement. *)
let best_integral (inst : Instance.t) (b : block) ~obj_price ~row_price =
  let ufl = ufl_of_block inst b ~obj_price ~row_price in
  let sol = Vod_facility.Ufl.local_search ufl in
  point_of_solution inst b sol
