(** A placement-MIP instance: the paper's Table I inputs plus the
    coupling-row layout shared with the EPF engine (disk rows first, then
    one row per (peak window, directed link)). *)

type t = {
  graph : Vod_topology.Graph.t;
  paths : Vod_topology.Paths.t;
  catalog : Vod_workload.Catalog.t;
  demand : Vod_workload.Demand.t;
  disk_gb : float array;
  link_capacity_mbps : float array;
  alpha_cost : float;
  beta_cost : float;
  placement_weight : float;
  origin : int;
}

(** Build and validate an instance; [alpha_cost] defaults to 1, [beta_cost]
    and [placement_weight] to 0, [origin] to the largest metro. Raises
    [Invalid_argument] on arity mismatches or nonpositive capacities. *)
val create :
  ?alpha_cost:float ->
  ?beta_cost:float ->
  ?placement_weight:float ->
  ?origin:int ->
  graph:Vod_topology.Graph.t ->
  catalog:Vod_workload.Catalog.t ->
  demand:Vod_workload.Demand.t ->
  disk_gb:float array ->
  link_capacity_mbps:float array ->
  unit ->
  t

(** Number of VHOs |V|. *)
val n_vhos : t -> int

(** Number of directed links |L|. *)
val n_links : t -> int

(** Number of peak windows |T|. *)
val n_windows : t -> int

(** Transfer cost per GB from [src] to [dst] (Eq. 1: alpha*hops + beta). *)
val cost : t -> src:int -> dst:int -> float

(** Coupling-row index of a VHO's disk constraint. *)
val disk_row : t -> int -> int

(** Coupling-row index of a (window, directed link) bandwidth constraint. *)
val link_row : t -> window:int -> link:int -> int

(** Total number of coupling rows. *)
val n_rows : t -> int

(** Row capacities (b vector) in row-layout order. *)
val capacities : t -> float array

(** [uniform_disk ~total_gb n] splits an aggregate disk budget evenly. *)
val uniform_disk : total_gb:float -> int -> float array

(** Uniform per-link capacity vector. *)
val uniform_links : Vod_topology.Graph.t -> float -> float array
