(* An integral placement: the rounded MIP solution, plus routing and the
   bookkeeping the evaluation experiments need (copy counts, disk usage,
   migration cost between consecutive placements). *)

type t = {
  n_vhos : int;
  n_videos : int;
  stored : int array array;              (* stored.(video) = sorted VHO ids *)
  routes : (int, int) Hashtbl.t array;   (* routes.(video) : vho -> server *)
  objective : float;
  lower_bound : float;
  max_violation : float;
  passes : int;
}

(* Extract the integral placement from a (rounded) engine outcome. If a
   block is somehow still fractional, adopt its heaviest point. *)
let of_outcome (inst : Instance.t)
    (outcome : Blocks.choice Vod_epf.Engine.outcome) =
  let n_videos = Array.length outcome.Vod_epf.Engine.combos in
  let n_vhos = Instance.n_vhos inst in
  let stored = Array.make n_videos [||] in
  let routes = Array.init n_videos (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun k combo ->
      let point =
        match combo with
        | [] -> invalid_arg "Solution.of_outcome: empty block combo"
        | [ (p, _) ] -> p
        | (p0, w0) :: rest ->
            fst
              (List.fold_left
                 (fun (bp, bw) (p, w) -> if w > bw then (p, w) else (bp, bw))
                 (p0, w0) rest)
      in
      let choice = point.Vod_epf.Engine.data in
      if Array.length choice.Blocks.open_vhos = 0 then
        invalid_arg "Solution.of_outcome: video with no copy";
      stored.(k) <- choice.Blocks.open_vhos;
      Array.iter
        (fun (client, server) -> Hashtbl.replace routes.(k) client server)
        choice.Blocks.serve)
    outcome.Vod_epf.Engine.combos;
  {
    n_vhos;
    n_videos;
    stored;
    routes;
    objective = outcome.Vod_epf.Engine.objective;
    lower_bound = outcome.Vod_epf.Engine.lower_bound;
    max_violation = outcome.Vod_epf.Engine.max_violation;
    passes = outcome.Vod_epf.Engine.passes;
  }

let stores t ~video ~vho =
  (* stored.(video) is sorted; linear scan is fine (few copies). *)
  Array.exists (fun i -> i = vho) t.stored.(video)

(* Which VHO serves a request for [video] at [vho]: locally if stored,
   else per the MIP routing, else the nearest replica under the fixed
   paths. *)
let server t (paths : Vod_topology.Paths.t) ~video ~vho =
  if stores t ~video ~vho then vho
  else
    match Hashtbl.find_opt t.routes.(video) vho with
    | Some s when stores t ~video ~vho:s -> s
    | Some _ | None ->
        let best = ref (-1) and best_h = ref max_int in
        Array.iter
          (fun i ->
            let h = Vod_topology.Paths.hops paths ~src:i ~dst:vho in
            if h < !best_h then begin
              best := i;
              best_h := h
            end)
          t.stored.(video);
        if !best < 0 then invalid_arg "Solution.server: video has no copy";
        !best

let copies t video = Array.length t.stored.(video)

(* Disk consumed per VHO by the pinned placement (GB). *)
let disk_used t (catalog : Vod_workload.Catalog.t) =
  let used = Array.make t.n_vhos 0.0 in
  Array.iteri
    (fun video vhos ->
      let s = Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video) in
      Array.iter (fun i -> used.(i) <- used.(i) +. s) vhos)
    t.stored;
  used

(* Optimality gap implied by the Lagrangian bound: (obj - lb) / lb. *)
let gap t =
  if t.lower_bound <= 0.0 then infinity
  else (t.objective -. t.lower_bound) /. t.lower_bound

(* Videos that must be copied to new VHOs to move from [old_sol] to
   [new_sol]: (number of video transfers, GB moved). Paper Sec. VII-H's
   placement-update cost. *)
let migration ~old_sol ~new_sol (catalog : Vod_workload.Catalog.t) =
  if old_sol.n_videos <> new_sol.n_videos then
    invalid_arg "Solution.migration: catalog size mismatch";
  let transfers = ref 0 and gb = ref 0.0 in
  for video = 0 to new_sol.n_videos - 1 do
    let old_set = old_sol.stored.(video) in
    Array.iter
      (fun i ->
        if not (Array.exists (fun j -> j = i) old_set) then begin
          incr transfers;
          gb := !gb +. Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video)
        end)
      new_sol.stored.(video)
  done;
  (!transfers, !gb)

(* Rebuild an engine starting point for one block from an existing
   placement: open exactly the VHOs storing the video in [incumbent] and
   serve each demand site from [server]'s choice. This is the warm-start
   bridge — re-solves hand these points to [Vod_epf.Engine.solve
   ~initial] so the descent starts at the incumbent placement instead of
   the single-facility points. *)
let engine_point (inst : Instance.t) (b : Blocks.block) ~incumbent =
  let n = Instance.n_vhos inst in
  if incumbent.n_vhos <> n then
    invalid_arg "Solution.engine_point: VHO count mismatch";
  if b.Blocks.video >= incumbent.n_videos then
    invalid_arg "Solution.engine_point: video outside incumbent catalog";
  let open_set = Array.make n false in
  Array.iter (fun i -> open_set.(i) <- true) incumbent.stored.(b.Blocks.video);
  let assign =
    Array.map
      (fun (c : Blocks.client) ->
        server incumbent inst.Instance.paths ~video:b.Blocks.video ~vho:c.Blocks.vho)
      b.Blocks.clients
  in
  (* [point_of_solution] recomputes the true objective itself, so the
     priced UFL cost of this synthetic solution is never read. *)
  Blocks.point_of_solution inst b { Vod_facility.Ufl.open_set; assign; cost = 0.0 }
