(** An integral placement (the rounded MIP solution): which VHOs store each
    video, how requests are routed, and the achieved objective / Lagrangian
    bound / violation statistics. *)

type t = {
  n_vhos : int;
  n_videos : int;
  stored : int array array;
  routes : (int, int) Hashtbl.t array;
  objective : float;
  lower_bound : float;
  max_violation : float;
  passes : int;
}

(** Extract the placement from a rounded engine outcome. Raises
    [Invalid_argument] if a block has no copy (cannot happen for oracle
    points). *)
val of_outcome : Instance.t -> Blocks.choice Vod_epf.Engine.outcome -> t

(** Whether [vho] stores [video]. *)
val stores : t -> video:int -> vho:int -> bool

(** Serving VHO for a request: local if stored, else the MIP route, else
    the nearest replica. *)
val server : t -> Vod_topology.Paths.t -> video:int -> vho:int -> int

(** Number of replicas of a video. *)
val copies : t -> int -> int

(** Pinned disk usage per VHO in GB. *)
val disk_used : t -> Vod_workload.Catalog.t -> float array

(** Relative optimality gap (objective - lower bound) / lower bound. *)
val gap : t -> float

(** [(transfers, gb)] needed to migrate from [old_sol] to [new_sol]
    (Sec. VII-H placement-update cost). *)
val migration :
  old_sol:t -> new_sol:t -> Vod_workload.Catalog.t -> int * float

(** [engine_point inst b ~incumbent] rebuilds an EPF starting point for
    block [b] of [inst] from an existing placement: the video's copies
    in [incumbent] become the open set, and each demand site is served
    from {!server}'s choice. Used to warm-start a re-solve from the
    incumbent (see {!Solve.solve}'s [incumbent]). Raises
    [Invalid_argument] if [incumbent] covers a different VHO count or a
    smaller catalog, or stores no copy of the video. *)
val engine_point :
  Instance.t -> Blocks.block -> incumbent:t -> Blocks.choice Vod_epf.Engine.point
