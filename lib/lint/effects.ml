(* Phase-1 of the whole-project analysis: per-function effect
   summaries.

   For every function in a file we compute, syntactically, whether its
   body (including every local closure it defines) mutates state it did
   not allocate itself, performs I/O, draws from the global [Random]
   generator, reads the wall clock, or advances an explicit
   [Vod_util.Rng] stream — and which other functions it calls, with a
   coarse classification of each argument's provenance. The summaries
   are joined across modules by [Summaries] (fixpoint over the call
   graph) and consumed by the project rules ([par-race],
   [wallclock-in-solver]).

   The analysis is untyped and deliberately conservative in one
   direction only: a mutation of a value whose provenance we cannot
   prove local is reported. Unknown callees (stdlib iteration, closures
   reached through record fields, function-typed parameters) are assumed
   pure — the dynamic jobs-1-vs-jobs-4 smoke test backstops what the
   static pass cannot see. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Effect kinds and sets                                               *)

type kind =
  | Mutates_capture  (* writes state captured from an enclosing scope *)
  | Mutates_global   (* writes module-level / other-module state *)
  | Mutates_args     (* writes state reachable from its own parameters *)
  | Io               (* console / file / channel I/O *)
  | Random           (* the global Stdlib.Random generator *)
  | Wallclock        (* Sys.time / Unix.gettimeofday / Unix.time *)
  | Rng_state        (* advances an explicit Vod_util.Rng stream *)
  | Raises           (* contains an explicit raise / failwith / assert *)

type set = int

let empty = 0

let bit = function
  | Mutates_capture -> 1
  | Mutates_global -> 2
  | Mutates_args -> 4
  | Io -> 8
  | Random -> 16
  | Wallclock -> 32
  | Rng_state -> 64
  | Raises -> 128

let add k s = s lor bit k
let mem k s = s land bit k <> 0
let union a b = a lor b
let inter a b = a land b
let remove k s = s land lnot (bit k)
let is_empty s = s = 0
let singleton k = bit k

let all_kinds =
  [ Mutates_capture; Mutates_global; Mutates_args; Io; Random; Wallclock;
    Rng_state; Raises ]

let describe = function
  | Mutates_capture -> "mutates captured state"
  | Mutates_global -> "mutates module-level state"
  | Mutates_args -> "mutates its arguments"
  | Io -> "performs I/O"
  | Random -> "draws from the global Random generator"
  | Wallclock -> "reads the wall clock"
  | Rng_state -> "advances an explicit Rng stream"
  | Raises -> "may raise"

let to_string s =
  all_kinds
  |> List.filter (fun k -> mem k s)
  |> List.map describe
  |> String.concat ", "

(* ------------------------------------------------------------------ *)
(* Value provenance                                                    *)

type root =
  | Local     (* allocated (or derived from an allocation) in this function *)
  | Param     (* reachable from one of this function's parameters *)
  | Global    (* module-level binding, here or in another module *)
  | Captured  (* bound in an enclosing function's scope *)

let rank = function Local -> 0 | Param -> 1 | Global -> 2 | Captured -> 3
let worst a b = if rank a >= rank b then a else b

(* ------------------------------------------------------------------ *)
(* Analysis results                                                    *)

type call = {
  callee : string;         (* normalized name, e.g. "Engine.solve" *)
  arg_roots : root list;
  call_loc : Location.t;
  in_try : bool;           (* lexically inside try/match-exception: the
                              callee's Raises is masked at this site *)
}

type result = {
  effects : set;
  calls : call list;
}

type target =
  | Closure of result   (* body analyzed with capture semantics *)
  | Named of string     (* top-level function, resolve via summaries *)
  | Opaque              (* an expression we cannot see into *)

type pool_site = {
  site_loc : Location.t;
  entry : string;          (* "Pool.map", "Pool.iteri", ... *)
  target : target;
}

type fn_summary = {
  fn_name : string;        (* name within the module, e.g. "solve" *)
  fn_loc : Location.t;
  fn_result : result;
}

type file_analysis = {
  fa_path : string;
  fa_module : string;      (* "Engine" for lib/epf/engine.ml *)
  fa_fns : fn_summary list;
  fa_sites : pool_site list;
}

(* ------------------------------------------------------------------ *)
(* Name tables                                                         *)

let lid_name (lid : Longident.t) = String.concat "." (Longident.flatten lid)

let ident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (lid_name txt) | _ -> None

(* Strip the [Stdlib.] prefix and this repo's library wrappers
   ([Vod_util.Pool.map] -> [Pool.map]) so one table serves qualified and
   unqualified references alike. *)
let normalize name =
  match String.index_opt name '.' with
  | None -> name
  | Some i ->
      let head = String.sub name 0 i in
      let is_lib_wrapper =
        head = "Stdlib"
        || (String.length head > 4 && String.sub head 0 4 = "Vod_")
      in
      if is_lib_wrapper && String.contains_from name (i + 1) '.' then
        String.sub name (i + 1) (String.length name - i - 1)
      else if is_lib_wrapper then name
      else name

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* name -> indices (over the positional argument list) of the arguments
   the callee mutates. *)
let mutators =
  [
    (":=", [ 0 ]);
    ("incr", [ 0 ]);
    ("decr", [ 0 ]);
    ("Array.set", [ 0 ]);
    ("Array.unsafe_set", [ 0 ]);
    ("Array.fill", [ 0 ]);
    ("Array.blit", [ 2 ]);
    ("Array.sort", [ 1 ]);
    ("Array.stable_sort", [ 1 ]);
    ("Array.fast_sort", [ 1 ]);
    ("Bytes.set", [ 0 ]);
    ("Bytes.unsafe_set", [ 0 ]);
    ("Bytes.fill", [ 0 ]);
    ("Bytes.blit", [ 2 ]);
    ("Bytes.blit_string", [ 2 ]);
    ("String.set", [ 0 ]);
    ("Hashtbl.add", [ 0 ]);
    ("Hashtbl.replace", [ 0 ]);
    ("Hashtbl.remove", [ 0 ]);
    ("Hashtbl.reset", [ 0 ]);
    ("Hashtbl.clear", [ 0 ]);
    ("Hashtbl.filter_map_inplace", [ 1 ]);
    ("Buffer.add_string", [ 0 ]);
    ("Buffer.add_char", [ 0 ]);
    ("Buffer.add_bytes", [ 0 ]);
    ("Buffer.add_substring", [ 0 ]);
    ("Buffer.add_buffer", [ 0 ]);
    ("Buffer.clear", [ 0 ]);
    ("Buffer.reset", [ 0 ]);
    ("Buffer.truncate", [ 0 ]);
    ("Queue.add", [ 1 ]);
    ("Queue.push", [ 1 ]);
    ("Queue.pop", [ 0 ]);
    ("Queue.take", [ 0 ]);
    ("Queue.clear", [ 0 ]);
    ("Queue.transfer", [ 0; 1 ]);
    ("Stack.push", [ 1 ]);
    ("Stack.pop", [ 0 ]);
    ("Stack.clear", [ 0 ]);
    ("Atomic.set", [ 0 ]);
    ("Atomic.exchange", [ 0 ]);
    ("Atomic.incr", [ 0 ]);
    ("Atomic.decr", [ 0 ]);
    ("Atomic.fetch_and_add", [ 0 ]);
    ("Atomic.compare_and_set", [ 0 ]);
  ]

let io_names =
  [
    "print_endline"; "print_string"; "print_newline"; "print_int"; "print_float";
    "print_char"; "print_bytes"; "prerr_endline"; "prerr_string"; "prerr_newline";
    "read_line"; "read_int"; "read_int_opt"; "read_float";
    "output_string"; "output_char"; "output_bytes"; "output_value"; "output";
    "input_line"; "input_value"; "input_char"; "input_byte"; "really_input_string";
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "close_in"; "close_out";
    "close_in_noerr"; "close_out_noerr"; "flush"; "flush_all";
    "Sys.command"; "Sys.remove"; "Sys.rename"; "Sys.readdir"; "Sys.mkdir";
    "Sys.getenv"; "Sys.getenv_opt"; "Sys.file_exists"; "Sys.is_directory";
  ]

let io_prefixes = [ "Printf."; "Format."; "Scanf."; "Logs."; "Log."; "Out_channel."; "In_channel."; "Unix." ]

(* Unix is almost entirely I/O; its two clock reads are classified more
   precisely below (wallclock wins over the Unix. prefix). *)
let wallclock_names = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let rng_prefixes = [ "Rng." ]

let pool_entries = [ "Pool.map"; "Pool.mapi"; "Pool.iteri"; "Pool.map_reduce" ]

(* The per-task argument of a pool entry: [~f] for map/mapi/iteri, [~map]
   for map_reduce ([~combine] runs sequentially in the submitting domain
   and is exempt by the pool's ordered-merge contract). *)
let pool_task_label = function "Pool.map_reduce" -> "map" | _ -> "f"

(* Calls whose result aliases their first argument (so mutating the
   result mutates the argument). *)
let aliasing =
  [
    "!"; "Array.get"; "Array.unsafe_get"; "Bytes.get"; "String.get";
    "Hashtbl.find"; "Hashtbl.find_opt"; "Hashtbl.find_all";
    "Option.get"; "Option.value"; "List.hd"; "List.nth"; "List.nth_opt";
    "fst"; "snd"; "Atomic.get"; "Queue.peek"; "Queue.top"; "Stack.top";
  ]

(* Explicit raisers only: stdlib partial functions (Hashtbl.find,
   Option.get, ...) raise on *some* inputs, but counting them would make
   nearly every function may-raise and drown the missing-protect rule.
   assert is handled separately in the walker (it is not an apply). *)
let raise_names = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let classify_prim name =
  if List.mem name wallclock_names then Some Wallclock
  else if has_prefix "Random." name then Some Random
  else if List.exists (fun p -> has_prefix p name) rng_prefixes then Some Rng_state
  else if List.mem name io_names then Some Io
  else if List.exists (fun p -> has_prefix p name) io_prefixes then Some Io
  else if List.mem name raise_names then Some Raises
  else None

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type lfn = {
  l_params : pattern list;
  l_body : expression;
}

type env = {
  vars : (string * root) list;
  fns : (string * lfn) list;
}

let lookup env n =
  match List.assoc_opt n env.vars with Some r -> r | None -> Global

let pat_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it p;
  !acc

let bind_pat env p root =
  { env with vars = List.map (fun n -> (n, root)) (pat_vars p) @ env.vars }

let bind_name env n root = { env with vars = (n, root) :: env.vars }

(* Provenance of the value an expression evaluates to. Unknown
   applications are assumed to return fresh values (allocator-like);
   known accessors alias their subject. *)
let rec root_of env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> lookup env n
  | Pexp_ident _ -> Global
  | Pexp_field (b, _) -> root_of env b
  | Pexp_constraint (b, _) -> root_of env b
  | Pexp_sequence (_, b) -> root_of env b
  | Pexp_let (_, _, b) -> root_of env b
  | Pexp_ifthenelse (_, t, Some e2) -> worst (root_of env t) (root_of env e2)
  | Pexp_apply (f, args) -> (
      match ident_of f with
      | Some raw when List.mem (normalize raw) aliasing -> (
          match args with
          | (_, a0) :: _ -> root_of env a0
          | [] -> Local)
      | _ -> Local)
  | _ -> Local

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)

type st = {
  mutable effects : set;
  mutable calls : call list;
  sites : pool_site list ref option;
      (* None while re-analyzing a closure with capture semantics, so
         nested pool sites are not recorded twice *)
  mutable expanding : string list;
      (* local functions being inlined (recursion guard) *)
  mutable try_depth : int;
      (* > 0 inside a try body (or a match with exception cases): raises
         there are caught locally and do not escape the function *)
}

let record_effect st k =
  (* Raises inside a try body is caught before it leaves the function.
     The handler may re-raise, but that re-raise is its own Raises. *)
  if k = Raises && st.try_depth > 0 then ()
  else st.effects <- add k st.effects

let mutation_effect st root =
  match root with
  | Local -> ()
  | Param -> record_effect st Mutates_args
  | Global -> record_effect st Mutates_global
  | Captured -> record_effect st Mutates_capture

let demote env =
  {
    env with
    vars =
      List.map
        (fun (n, r) ->
          (n, match r with Local | Param -> Captured | Global | Captured -> r))
        env.vars;
  }

(* Split a [fun a b -> body] chain into parameter patterns + body. *)
let rec fun_split e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let ps, b = fun_split body in
      (pat :: ps, b)
  | Pexp_newtype (_, body) -> fun_split body
  | Pexp_constraint (body, _) when (match body.pexp_desc with
                                    | Pexp_fun _ | Pexp_function _ -> true
                                    | _ -> false) ->
      fun_split body
  | _ -> ([], e)

let is_function e =
  match fun_split e with
  | _ :: _, _ -> true
  | [], b -> (match b.pexp_desc with Pexp_function _ -> true | _ -> false)

let rec walk st env e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      (* A bare reference to an effect primitive (e.g. [List.iter
         print_endline xs]) carries the effect even though we cannot see
         the call. *)
      match classify_prim (normalize (lid_name txt)) with
      | Some k -> record_effect st k
      | None -> ())
  | Pexp_setfield (obj, _, v) ->
      mutation_effect st (root_of env obj);
      walk st env obj;
      walk st env v
  | Pexp_apply (f, args) -> walk_apply st env e f args
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> walk_fn st env e
  | Pexp_let (Asttypes.Nonrecursive, vbs, body) ->
      let env' =
        List.fold_left
          (fun env' vb ->
            if is_function vb.pvb_expr then begin
              let params, fbody = split_all vb.pvb_expr in
              walk_fn st env vb.pvb_expr;
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  let env' = bind_name env' txt Local in
                  { env' with fns = (txt, { l_params = params; l_body = fbody }) :: env'.fns }
              | _ -> bind_pat env' vb.pvb_pat Local
            end
            else begin
              walk st env vb.pvb_expr;
              bind_pat env' vb.pvb_pat (root_of env vb.pvb_expr)
            end)
          env vbs
      in
      walk st env' body
  | Pexp_let (Asttypes.Recursive, vbs, body) ->
      let env' =
        List.fold_left
          (fun env' vb ->
            if is_function vb.pvb_expr then
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  let params, fbody = split_all vb.pvb_expr in
                  let env' = bind_name env' txt Local in
                  { env' with fns = (txt, { l_params = params; l_body = fbody }) :: env'.fns }
              | _ -> bind_pat env' vb.pvb_pat Local
            else bind_pat env' vb.pvb_pat Local)
          env vbs
      in
      List.iter (fun vb -> walk st env' vb.pvb_expr) vbs;
      walk st env' body
  | Pexp_match (scrut, cases) ->
      let has_exn_case =
        List.exists
          (fun c ->
            match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
          cases
      in
      if has_exn_case then begin
        st.try_depth <- st.try_depth + 1;
        walk st env scrut;
        st.try_depth <- st.try_depth - 1
      end
      else walk st env scrut;
      let r = root_of env scrut in
      List.iter
        (fun c ->
          let root =
            match c.pc_lhs.ppat_desc with Ppat_exception _ -> Local | _ -> r
          in
          let env' = bind_pat env c.pc_lhs root in
          Option.iter (walk st env') c.pc_guard;
          walk st env' c.pc_rhs)
        cases
  | Pexp_try (body, cases) ->
      st.try_depth <- st.try_depth + 1;
      walk st env body;
      st.try_depth <- st.try_depth - 1;
      List.iter
        (fun c ->
          let env' = bind_pat env c.pc_lhs Local in
          Option.iter (walk st env') c.pc_guard;
          walk st env' c.pc_rhs)
        cases
  | Pexp_for (pat, lo, hi, _, body) ->
      walk st env lo;
      walk st env hi;
      walk st (bind_pat env pat Local) body
  | Pexp_assert inner ->
      (* assert false and failed invariant asserts both raise. *)
      record_effect st Raises;
      walk st env inner
  | _ ->
      (* Remaining forms bind nothing interesting: iterate children in
         the current environment. *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ ce -> walk st env ce);
        }
      in
      Ast_iterator.default_iterator.expr it e

and walk_fn st env e =
  match e.pexp_desc with
  | Pexp_fun (_, default, pat, body) ->
      Option.iter (walk st env) default;
      walk_fn st (bind_pat env pat Param) body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          let env' = bind_pat env c.pc_lhs Param in
          Option.iter (walk st env') c.pc_guard;
          walk st env' c.pc_rhs)
        cases
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> walk_fn st env body
  | _ -> walk st env e

and split_all e =
  let params, body = fun_split e in
  match body.pexp_desc with
  | Pexp_function _ -> (params, body) (* cases handled by walk_fn *)
  | _ -> (params, body)

and walk_apply st env e f args =
  let walk_args () = List.iter (fun (_, a) -> walk st env a) args in
  match ident_of f with
  | None ->
      walk st env f;
      walk_args ()
  | Some raw -> (
      let name = normalize raw in
      (* [x |> f] and [f @@ x] are calls to [f]. *)
      match (name, args) with
      | "|>", [ (_, x); (_, fn) ] when ident_of fn <> None ->
          walk st env x;
          handle_call st env e (Option.get (ident_of fn)) [ (Asttypes.Nolabel, x) ]
      | "@@", [ (_, fn); (_, x) ] when ident_of fn <> None ->
          walk st env x;
          handle_call st env e (Option.get (ident_of fn)) [ (Asttypes.Nolabel, x) ]
      | _ ->
          walk_args ();
          handle_call st env e raw args)

and handle_call st env e raw args =
  let name = normalize raw in
  let arg_roots = List.map (fun (_, a) -> root_of env a) args in
  if List.mem name pool_entries then record_pool_site st env e name args;
  match List.assoc_opt name mutators with
  | Some idxs ->
      let n_args = List.length arg_roots in
      if List.exists (fun i -> i < n_args) idxs then
        List.iter
          (fun i ->
            match List.nth_opt arg_roots i with
            | Some r -> mutation_effect st r
            | None -> ())
          idxs
      else
        (* Partial application: fall back to the worst provenance among
           the arguments we can see. *)
        mutation_effect st (List.fold_left worst Local arg_roots)
  | None -> (
      match classify_prim name with
      | Some k -> record_effect st k
      | None ->
          if name <> "|>" && name <> "@@" then
            st.calls <-
              {
                callee = name;
                arg_roots;
                call_loc = e.pexp_loc;
                in_try = st.try_depth > 0;
              }
              :: st.calls)

(* Analyze an expression as a task body: everything bound outside it is
   captured. Calls to local functions are expanded inline (they cannot
   be resolved through the cross-module summary table). *)
and analyze_capture st0 env expr_kind =
  (* try_depth restarts at 0: the closure's raises happen when it is
     *called*, outside whatever try happens to surround its definition. *)
  let st =
    { effects = empty; calls = []; sites = None; expanding = st0.expanding;
      try_depth = 0 }
  in
  let denv = demote env in
  (match expr_kind with
  | `Expr e -> walk_fn st denv e
  | `Local_fn l ->
      let env' = List.fold_left (fun acc p -> bind_pat acc p Param) denv l.l_params in
      walk_fn st env' l.l_body);
  (* Expand local callees under the same capture semantics. *)
  let rec expand st =
    let pending =
      List.filter
        (fun c ->
          (not (String.contains c.callee '.'))
          && List.mem_assoc c.callee env.fns
          && not (List.mem c.callee st.expanding))
        st.calls
    in
    match pending with
    | [] -> ()
    | { callee; _ } :: _ ->
        st.calls <- List.filter (fun c -> c.callee <> callee) st.calls;
        st.expanding <- callee :: st.expanding;
        let l = List.assoc callee env.fns in
        let inner =
          { effects = empty; calls = []; sites = None; expanding = st.expanding;
            try_depth = 0 }
        in
        let env' =
          List.fold_left (fun acc p -> bind_pat acc p Param) (demote env) l.l_params
        in
        walk_fn inner env' l.l_body;
        st.effects <- union st.effects inner.effects;
        st.calls <- List.rev_append inner.calls st.calls;
        expand st
  in
  expand st;
  { effects = st.effects; calls = st.calls }

and record_pool_site st env e entry args =
  match st.sites with
  | None -> ()
  | Some sites ->
      let label = pool_task_label entry in
      let task =
        List.find_map
          (fun (lbl, a) ->
            match lbl with
            | Asttypes.Labelled l when l = label -> Some a
            | _ -> None)
          args
      in
      let target =
        match task with
        | None -> Opaque
        | Some a -> (
            let rec strip a =
              match a.pexp_desc with
              | Pexp_constraint (b, _) -> strip b
              | _ -> a
            in
            let a = strip a in
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
                Closure (analyze_capture st env (`Expr a))
            | Pexp_ident { txt = Longident.Lident n; _ }
              when List.mem_assoc n env.fns ->
                Closure (analyze_capture st env (`Local_fn (List.assoc n env.fns)))
            | Pexp_ident { txt; _ } -> Named (normalize (lid_name txt))
            | _ -> Closure (analyze_capture st env (`Expr a)))
      in
      sites := { site_loc = e.pexp_loc; entry; target } :: !sites

(* ------------------------------------------------------------------ *)
(* File analysis                                                       *)

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let analyze_value_binding ~sites ~prefix vb =
  let name =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | _ -> None
  in
  let st =
    { effects = empty; calls = []; sites = Some sites; expanding = [];
      try_depth = 0 }
  in
  let env = { vars = []; fns = [] } in
  walk_fn st env vb.pvb_expr;
  match name with
  | None -> None
  | Some n ->
      Some
        {
          fn_name = (if prefix = "" then n else prefix ^ "." ^ n);
          fn_loc = vb.pvb_loc;
          fn_result = { effects = st.effects; calls = st.calls };
        }

let analyze_impl ~path (str : structure) =
  let sites = ref [] in
  let rec items prefix str =
    List.concat_map
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.filter_map (analyze_value_binding ~sites ~prefix) vbs
        | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure sub ->
                items (if prefix = "" then m else prefix ^ "." ^ m) sub
            | _ -> [])
        | _ -> [])
      str
  in
  let fns = items "" str in
  {
    fa_path = path;
    fa_module = module_name_of_path path;
    fa_fns = fns;
    fa_sites = List.rev !sites;
  }
