(* Protocol / typestate dataflow over the [Cfg] graphs: tracks declared
   acquire/release pairs ([protocols.decl]) through branches, matches,
   loops, early returns and raise paths, and reports [proto-leak],
   [proto-double-release] and [missing-protect]. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

type protocol = {
  p_name : string;
  p_acquire : string list;
  p_release : string list;
  p_handoff : string list;
  p_bracket : string list;
}

type decl = protocol list

exception Decl_error of string

let empty_decl : decl = []

let decl_of_string text =
  let fail line msg =
    raise (Decl_error (Printf.sprintf "protocols.decl line %d: %s" line msg))
  in
  let parse_line lineno acc line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let words =
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> acc
    | name :: fields ->
        if String.contains name '=' then
          fail lineno "expected a protocol name before the key=value fields";
        if List.exists (fun p -> p.p_name = name) acc then
          fail lineno (Printf.sprintf "duplicate protocol %S" name);
        let p =
          ref
            {
              p_name = name;
              p_acquire = [];
              p_release = [];
              p_handoff = [];
              p_bracket = [];
            }
        in
        List.iter
          (fun field ->
            match String.index_opt field '=' with
            | None ->
                fail lineno
                  (Printf.sprintf "expected key=value, got %S" field)
            | Some i ->
                let key = String.sub field 0 i in
                let value =
                  String.sub field (i + 1) (String.length field - i - 1)
                in
                let fns =
                  String.split_on_char ',' value
                  |> List.filter (fun f -> f <> "")
                in
                if fns = [] then
                  fail lineno (Printf.sprintf "empty value for %S" key);
                (match key with
                | "acquire" -> p := { !p with p_acquire = !p.p_acquire @ fns }
                | "release" -> p := { !p with p_release = !p.p_release @ fns }
                | "handoff" -> p := { !p with p_handoff = !p.p_handoff @ fns }
                | "bracket" -> p := { !p with p_bracket = !p.p_bracket @ fns }
                | _ ->
                    fail lineno
                      (Printf.sprintf
                         "unknown key %S (expected acquire/release/handoff/bracket)"
                         key)))
          fields;
        if !p.p_acquire = [] then
          fail lineno (Printf.sprintf "protocol %S has no acquire=" name);
        if !p.p_release = [] then
          fail lineno (Printf.sprintf "protocol %S has no release=" name);
        acc @ [ !p ]
  in
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun (lineno, acc) line -> (lineno + 1, parse_line lineno acc line))
    (1, []) lines
  |> snd

let load_decl path =
  if not (Sys.file_exists path) then empty_decl
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decl_of_string text

let decl_values (d : decl) =
  List.concat_map
    (fun p -> p.p_acquire @ p.p_release @ p.p_handoff @ p.p_bracket)
    d

(* ------------------------------------------------------------------ *)
(* Name matching                                                       *)

let ident_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let callee_name e = Option.map Effects.normalize (ident_of e)

let raise_family = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Does callee [raw] (normalized) refer to one of the declared [fns],
   as seen from [current_module]? Unqualified names resolve within the
   current module first; qualified names also match by their last two
   components. *)
let match_fn ~current_module raw fns =
  let candidates =
    if String.contains raw '.' then
      let parts = String.split_on_char '.' raw in
      match List.rev parts with
      | f :: m :: _ -> [ raw; m ^ "." ^ f ]
      | _ -> [ raw ]
    else [ current_module ^ "." ^ raw; raw ]
  in
  List.exists (fun c -> List.mem c fns) candidates

(* ------------------------------------------------------------------ *)
(* Collecting the functions to analyze                                 *)

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (inner, _) -> is_function inner
  | _ -> false

(* Top-level (and nested-module) [let f = fun ...] bodies. Module-level
   constants are deliberately skipped: a resource bound at module scope
   lives for the program and has no release path to check. *)
let collect_defs str =
  let acc = ref [] in
  let rec items str =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var _ when is_function vb.pvb_expr ->
                    acc := vb.pvb_expr :: !acc
                | _ -> ())
              vbs
        | Pstr_module
            { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
            items sub
        | _ -> ())
      str
  in
  items str;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Expression scans                                                    *)

let pat_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

let lambda_interior e =
  let rec strip e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, inner)
    | Pexp_newtype (_, inner)
    | Pexp_constraint (inner, _) ->
        strip inner
    | _ -> e
  in
  strip e

(* Local-variable mentions of [e], not descending into lambdas (closure
   capture is the escape scan's concern, aliasing through a closure is
   not an alias). *)
let mentions_any vars e =
  if vars = [] then false
  else begin
    let found = ref false in
    let rec scan e =
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident v; _ } ->
          if List.mem v vars then found := true
      | Pexp_fun _ | Pexp_function _ -> ()
      | _ ->
          let it =
            {
              Ast_iterator.default_iterator with
              expr = (fun _ ce -> scan ce);
            }
          in
          Ast_iterator.default_iterator.expr it e
    in
    scan e;
    !found
  end

(* Conservative raise scan for one atomic statement: syntactic raisers
   ([raise]/[failwith]/[invalid_arg]/[assert]) plus any call whose
   closed summary carries [Effects.Raises]. Lambdas are skipped — the
   CFG already inlined the ones that run here, so descending into the
   residual full-application expression would double-count. A nested
   [try] is assumed to catch whatever its body throws. *)
let stmt_raises ~summaries ~current_module e =
  let rec raises e =
    match e.pexp_desc with
    | Pexp_assert _ -> true
    | Pexp_fun _ | Pexp_function _ -> false
    | Pexp_try _ -> false
    | Pexp_apply (f, args) ->
        (match callee_name f with
        | Some n when List.mem n raise_family -> true
        | Some n when Summaries.may_raise summaries ~current_module n -> true
        | _ -> false)
        || List.exists (fun (_, a) -> raises a) args
        || (match f.pexp_desc with Pexp_ident _ -> false | _ -> raises f)
    | _ ->
        let found = ref false in
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ ce -> if raises ce then found := true);
          }
        in
        Ast_iterator.default_iterator.expr it e;
        !found
  in
  raises e

(* ------------------------------------------------------------------ *)
(* Per-function analysis                                               *)

type site = {
  sk_proto : protocol;
  sk_fn : string;  (* the acquire callee as written, for messages *)
  sk_loc : Location.t;
  mutable sk_vars : string list;
  mutable sk_escaped : bool;
}

type ev = Acquire of int | Release of int * Location.t | Handoff of int

type sinfo = { si_events : ev list; si_raises : bool }

(* Lattice per site: bit 0 = may be held, bit 1 = may be released. *)
let held = 1
let released = 2

let analyze_fn ~decl ~summaries ~current_module ~path body =
  let cfg = Cfg.build body in
  let n = Cfg.n_nodes cfg in
  let all_stmts =
    List.concat (List.init n (fun i -> Cfg.stmts cfg i))
  in
  (* -- acquire sites (statement roots only), deduped by location: the
     Fun.protect finally body is built twice. *)
  let sites = ref [] in
  let dropped = ref [] in
  let root_acquire e =
    match e.pexp_desc with
    | Pexp_apply (f, _) -> (
        match callee_name f with
        | Some raw ->
            List.find_opt
              (fun p -> match_fn ~current_module raw p.p_acquire)
              decl
            |> Option.map (fun p -> (p, raw))
        | None -> None)
    | _ -> None
  in
  let seen_site p loc =
    List.exists
      (fun s -> s.sk_proto.p_name = p.p_name && s.sk_loc = loc)
      !sites
    || List.exists
         (fun s -> s.sk_proto.p_name = p.p_name && s.sk_loc = loc)
         !dropped
  in
  (* An unbound acquire in tail position is the function's value — the
     obligation transfers to the caller, the opposite of a discard. Tail
     position: last statement of a node from which some path reaches the
     exit through statement-free nodes. *)
  let tail_to_exit node =
    let rec go visited node =
      node = Cfg.exit_node cfg
      || (not (List.mem node visited))
         && Cfg.stmts cfg node = []
         && List.exists (go (node :: visited)) (Cfg.succs cfg node)
    in
    List.exists (go [ node ]) (Cfg.succs cfg node)
  in
  for node = 0 to n - 1 do
    let stmts = Cfg.stmts cfg node in
    let last = List.length stmts - 1 in
    List.iteri
      (fun i stmt ->
        let pat, e =
          match stmt with
          | Cfg.Bind (p, e) -> (Some p, e)
          | Cfg.Eval e -> (None, e)
        in
        match root_acquire e with
        | None -> ()
        | Some (p, raw) ->
            if not (seen_site p e.pexp_loc) then begin
              let vars =
                match pat with Some p -> pat_vars p | None -> []
              in
              let returned =
                pat = None && i = last && tail_to_exit node
              in
              let s =
                {
                  sk_proto = p;
                  sk_fn = raw;
                  sk_loc = e.pexp_loc;
                  sk_vars = vars;
                  sk_escaped = false;
                }
              in
              if vars = [] then begin
                if not returned then dropped := s :: !dropped
              end
              else sites := s :: !sites
            end)
      stmts
  done;
  let sites = Array.of_list (List.rev !sites) in
  let nsites = Array.length sites in
  (* -- alias closure: [let x = ...token...] extends the token set. A
     match-case entry is a Bind of the case pattern over the scrutinee,
     so case aliases flow through the same rule. *)
  let grew = ref true in
  while !grew do
    grew := false;
    List.iter
      (fun stmt ->
        match stmt with
        | Cfg.Bind (p, e) ->
            Array.iter
              (fun s ->
                if mentions_any s.sk_vars e then
                  List.iter
                    (fun v ->
                      if not (List.mem v s.sk_vars) then begin
                        s.sk_vars <- v :: s.sk_vars;
                        grew := true
                      end)
                    (pat_vars p))
              sites
        | Cfg.Eval _ -> ())
      all_stmts
  done;
  (* -- escape scan: a token stored in a data structure, returned, or
     captured by a closure the CFG could not inline moves ownership out
     of this function; every report for the site is silenced. *)
  let escape_var v =
    Array.iter
      (fun s -> if List.mem v s.sk_vars then s.sk_escaped <- true)
      sites
  in
  let opaque_lambda e =
    (* every local ident inside counts as captured *)
    let rec scan e =
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident v; _ } -> escape_var v
      | _ ->
          let it =
            {
              Ast_iterator.default_iterator with
              expr = (fun _ ce -> scan ce);
            }
          in
          Ast_iterator.default_iterator.expr it e
    in
    scan e
  in
  let rec esc ~storing e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } ->
        if storing then escape_var v
    | Pexp_ident _ -> ()
    | Pexp_fun _ | Pexp_function _ -> opaque_lambda e
    | Pexp_apply (f, args) ->
        let borrowing =
          match callee_name f with
          | Some n -> Cfg.borrows_closures n
          | None -> false
        in
        let storing_args =
          match callee_name f with
          | Some ("ref" | ":=") -> true
          | _ -> false
        in
        (match f.pexp_desc with
        | Pexp_ident _ -> ()
        | _ -> esc ~storing:false f);
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                if borrowing then
                  esc ~storing:false (lambda_interior a)
                else opaque_lambda a
            | _ -> esc ~storing:storing_args a)
          args
    | Pexp_tuple es | Pexp_array es -> List.iter (esc ~storing:true) es
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) ->
        esc ~storing:true a
    | Pexp_record (fields, base) ->
        List.iter (fun (_, v) -> esc ~storing:true v) fields;
        Option.iter (esc ~storing:true) base
    | Pexp_setfield (o, _, v) ->
        esc ~storing:false o;
        esc ~storing:true v
    | Pexp_field (o, _) -> esc ~storing o
    | Pexp_constraint (inner, _) -> esc ~storing inner
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ ce -> esc ~storing ce);
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Cfg.Eval { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }
        ->
          (* a bare token as a statement is the function's value:
             ownership returns to the caller *)
          escape_var v
      | Cfg.Eval e -> esc ~storing:false e
      | Cfg.Bind (_, e) -> esc ~storing:false e)
    all_stmts;
  (* -- per-statement transfer info *)
  let events_of e =
    let acc = ref [] in
    let rec scan e =
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> ()
      | Pexp_apply (f, args) ->
          List.iter (fun (_, a) -> scan a) args;
          (match f.pexp_desc with Pexp_ident _ -> () | _ -> scan f);
          (match callee_name f with
          | None -> ()
          | Some raw ->
              Array.iteri
                (fun k s ->
                  let p = s.sk_proto in
                  let arg_mentions =
                    List.exists (fun (_, a) -> mentions_any s.sk_vars a) args
                  in
                  if arg_mentions then
                    if match_fn ~current_module raw p.p_release then
                      acc := Release (k, e.pexp_loc) :: !acc
                    else if match_fn ~current_module raw p.p_handoff then
                      acc := Handoff k :: !acc)
                sites)
      | _ ->
          let it =
            {
              Ast_iterator.default_iterator with
              expr = (fun _ ce -> scan ce);
            }
          in
          Ast_iterator.default_iterator.expr it e
    in
    scan e;
    List.rev !acc
  in
  let info_of stmt =
    let e = match stmt with Cfg.Bind (_, e) | Cfg.Eval e -> e in
    let acq =
      match root_acquire e with
      | Some (p, _) ->
          Array.to_list sites
          |> List.mapi (fun k s -> (k, s))
          |> List.find_opt (fun (_, s) ->
                 s.sk_proto.p_name = p.p_name && s.sk_loc = e.pexp_loc)
          |> Option.map (fun (k, _) -> Acquire k)
          |> Option.to_list
      | None -> []
    in
    {
      si_events = acq @ events_of e;
      si_raises = stmt_raises ~summaries ~current_module e;
    }
  in
  let infos =
    Array.init n (fun i -> List.map info_of (Cfg.stmts cfg i))
  in
  (* -- forward dataflow to fixpoint *)
  let states = Array.make_matrix n nsites 0 in
  let reached = Array.make n false in
  reached.(Cfg.entry cfg) <- true;
  let apply s = function
    | Acquire k -> s.(k) <- held
    | Release (k, _) | Handoff k -> s.(k) <- released
  in
  let is_acquire = function Acquire _ -> true | _ -> false in
  let changed = ref true in
  while !changed do
    changed := false;
    for node = 0 to n - 1 do
      if reached.(node) then begin
        let s = Array.copy states.(node) in
        let h = Cfg.handler cfg node in
        List.iter
          (fun info ->
            (* An obligation counts as discharged once its release is
               *attempted*, so a statement's releases apply before its
               raise state flows to the handler (close_out raising on
               flush is not a leak); acquires apply after (a throwing
               create never returned a token). *)
            List.iter
              (fun ev -> if not (is_acquire ev) then apply s ev)
              info.si_events;
            if info.si_raises then begin
              if not reached.(h) then begin
                reached.(h) <- true;
                changed := true
              end;
              for k = 0 to nsites - 1 do
                let j = states.(h).(k) lor s.(k) in
                if j <> states.(h).(k) then begin
                  states.(h).(k) <- j;
                  changed := true
                end
              done
            end;
            List.iter
              (fun ev -> if is_acquire ev then apply s ev)
              info.si_events)
          infos.(node);
        List.iter
          (fun succ ->
            if not reached.(succ) then begin
              reached.(succ) <- true;
              changed := true
            end;
            for k = 0 to nsites - 1 do
              let j = states.(succ).(k) lor s.(k) in
              if j <> states.(succ).(k) then begin
                states.(succ).(k) <- j;
                changed := true
              end
            done)
          (Cfg.succs cfg node)
      end
    done
  done;
  (* -- reports *)
  let diags = ref [] in
  let report rule loc msg =
    diags := Diagnostic.make ~file:path ~loc ~rule msg :: !diags
  in
  (* double release: a release whose in-state is exactly Released on
     every path (Held|Released means a first release on some path) *)
  for node = 0 to n - 1 do
    if reached.(node) then begin
      let s = Array.copy states.(node) in
      List.iter
        (fun info ->
          List.iter
            (fun e ->
              (match e with
              | Release (k, loc) ->
                  let sk = sites.(k) in
                  if (not sk.sk_escaped) && s.(k) = released then
                    report "proto-double-release" loc
                      (Printf.sprintf
                         "protocol %s: this %s call receives a value already \
                          released on every path to this point"
                         sk.sk_proto.p_name
                         (String.concat "/" sk.sk_proto.p_release))
              | _ -> ());
              apply s e)
            info.si_events)
        infos.(node)
    end
  done;
  let leak_msg s =
    let bracket =
      match s.sk_proto.p_bracket with
      | [] -> ""
      | bs -> Printf.sprintf " (or use %s)" (String.concat "/" bs)
    in
    Printf.sprintf
      "protocol %s: value acquired via %s may reach the end of this \
       function without %s; release it on every path%s"
      s.sk_proto.p_name s.sk_fn
      (String.concat "/" s.sk_proto.p_release)
      bracket
  in
  Array.iteri
    (fun k s ->
      if not s.sk_escaped then begin
        let exit_held =
          reached.(Cfg.exit_node cfg)
          && states.(Cfg.exit_node cfg).(k) land held <> 0
        in
        let exn_held =
          reached.(Cfg.exn_exit cfg)
          && states.(Cfg.exn_exit cfg).(k) land held <> 0
        in
        if exit_held then report "proto-leak" s.sk_loc (leak_msg s)
        else if exn_held then
          report "missing-protect" s.sk_loc
            (Printf.sprintf
               "protocol %s: value acquired via %s is live across a call \
                that may raise, and the exceptional path skips %s; wrap \
                the span in Fun.protect ~finally"
               s.sk_proto.p_name s.sk_fn
               (String.concat "/" s.sk_proto.p_release))
      end)
    sites;
  List.iter
    (fun s ->
      report "proto-leak" s.sk_loc
        (Printf.sprintf
           "protocol %s: the result of %s is discarded, so nothing can \
            ever release it (release: %s)"
           s.sk_proto.p_name s.sk_fn
           (String.concat "/" s.sk_proto.p_release)))
    (List.rev !dropped);
  !diags

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let run ~decl ~leak ~double ~protect ~summaries files =
  if decl = [] || ((not leak) && (not double) && not protect) then []
  else
    List.concat_map
      (fun (path, str) ->
        let current_module = Effects.module_name_of_path path in
        List.concat_map
          (fun body -> analyze_fn ~decl ~summaries ~current_module ~path body)
          (collect_defs str))
      files
    |> List.filter (fun (d : Diagnostic.t) ->
           match d.rule with
           | "proto-leak" -> leak
           | "proto-double-release" -> double
           | "missing-protect" -> protect
           | _ -> true)
