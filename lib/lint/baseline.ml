(* The project-mode baseline: accepted findings that should not fail
   the build. Entries are [file TAB rule TAB message] — deliberately
   line-number-free so a baseline survives unrelated edits above the
   finding. Matching is by exact triple; a fixed finding leaves a stale
   entry behind, which the CLI reports so baselines shrink over time. *)

type entry = { b_file : string; b_rule : string; b_message : string }

type t = entry list

let empty = []

let header =
  "# vodlint baseline: accepted findings, one per line as\n\
   # file<TAB>rule<TAB>message\n\
   # Regenerate with: vodlint --project --write-baseline\n"

let entry_of_diag (d : Diagnostic.t) =
  { b_file = d.file; b_rule = d.rule; b_message = d.message }

let matches e (d : Diagnostic.t) =
  e.b_file = d.file && e.b_rule = d.rule && e.b_message = d.message

let compare_entry a b =
  match String.compare a.b_file b.b_file with
  | 0 -> (
      match String.compare a.b_rule b.b_rule with
      | 0 -> String.compare a.b_message b.b_message
      | c -> c)
  | c -> c

let of_diagnostics diags =
  List.map entry_of_diag diags |> List.sort_uniq compare_entry

let of_string src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '\t' line with
           | file :: rule :: rest when rest <> [] ->
               Some { b_file = file; b_rule = rule; b_message = String.concat "\t" rest }
           | _ -> None)
  |> List.sort_uniq compare_entry

let to_string t =
  let lines =
    List.sort_uniq compare_entry t
    |> List.map (fun e ->
           Printf.sprintf "%s\t%s\t%s" e.b_file e.b_rule e.b_message)
  in
  header ^ String.concat "\n" lines ^ if lines = [] then "" else "\n"

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string src
  end

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

type applied = {
  fresh : Diagnostic.t list;  (* findings not covered by the baseline *)
  baselined : int;            (* findings the baseline absorbed *)
  stale : entry list;         (* baseline entries matching nothing *)
}

let apply t diags =
  let fresh, baselined =
    List.fold_left
      (fun (fresh, n) d ->
        if List.exists (fun e -> matches e d) t then (fresh, n + 1)
        else (d :: fresh, n))
      ([], 0) diags
  in
  (* A baseline built programmatically (not via [of_string]) may hold
     duplicate entries; report each stale line once. *)
  let stale =
    List.filter (fun e -> not (List.exists (fun d -> matches e d) diags)) t
    |> List.sort_uniq compare_entry
  in
  { fresh = List.rev fresh; baselined; stale }

let entry_to_string e = Printf.sprintf "%s\t%s\t%s" e.b_file e.b_rule e.b_message
