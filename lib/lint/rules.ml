(* The vodlint rule registry.

   Each rule walks one file's parsetree with an [Ast_iterator] and
   appends findings to a shared accumulator. Rules are deliberately
   syntactic heuristics: without typing information we cannot prove a
   [compare] is applied to floats, so each rule documents the pattern it
   keys on and the audit relies on suppression comments for the rare
   justified exception. The invariants themselves come from the EPF /
   Lagrangian solver's needs (paper Sec. V): exact potential-function
   bookkeeping breaks under NaN-unsound comparisons, swallowed
   exceptions, and silent division blow-ups. *)

open Parsetree

type ctx = {
  path : string;       (* path as reported in diagnostics *)
  in_lib : bool;       (* under lib/ — library-only rules *)
  in_div_scope : bool; (* under lib/epf/ or lib/lp/ — unguarded-div rule *)
  on_disk : bool;      (* false when linting an in-memory string (tests) *)
}

type ast = Impl of structure | Intf of signature

type t = {
  id : string;
  doc : string;
  check : ctx -> ast -> Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let lid_name (lid : Longident.t) = String.concat "." (Longident.flatten lid)

let ident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (lid_name txt) | _ -> None

let is_float_const e =
  match e.pexp_desc with Pexp_constant (Pconst_float _) -> true | _ -> false

(* Collect every simple identifier occurring in an expression — used to
   decide whether a guard condition "mentions" a denominator. *)
let idents_in e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident name; _ } -> acc := name :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

(* Run an expression-level visitor over a whole file. *)
let over_ast expr_visitor ast =
  let it = { Ast_iterator.default_iterator with expr = expr_visitor } in
  match ast with Impl str -> it.structure it str | Intf sg -> it.signature it sg

(* ------------------------------------------------------------------ *)
(* Rule: poly-compare                                                  *)
(* Polymorphic comparison on solver data. Flags (a) bare [compare]      *)
(* passed to a sort function, or used anywhere inside its comparator    *)
(* closure; (b) [=] / [<>] / [min] / [max] / [compare] applied to a     *)
(* float literal outside an if/when guard position. Polymorphic         *)
(* compare on floats is NaN-unsound (compare nan x = -1 regardless of   *)
(* x's ordering) and boxes every call.                                  *)

let sort_functions =
  [
    "Array.sort";
    "Array.stable_sort";
    "Stdlib.Array.sort";
    "List.sort";
    "List.stable_sort";
    "List.fast_sort";
    "List.sort_uniq";
    "Stdlib.List.sort";
  ]

let poly_compare_names = [ "compare"; "Stdlib.compare"; "Poly.compare" ]
let poly_op_names = [ "="; "<>"; "min"; "max"; "compare"; "Stdlib.(=)"; "Stdlib.min"; "Stdlib.max" ]

let rule_poly_compare =
  let id = "poly-compare" in
  let check ctx ast =
    let out = ref [] in
    let flag loc msg = out := Diagnostic.make ~file:ctx.path ~loc ~rule:id msg :: !out in
    let guard_depth = ref 0 in
    (* Flag every bare [compare] in a comparator argument subtree. *)
    let scan_comparator arg =
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match ident_of e with
              | Some n when List.mem n poly_compare_names ->
                  flag e.pexp_loc
                    "polymorphic compare in a sort comparator; use a monomorphic comparator \
                     (Float.compare / Int.compare / String.compare)"
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.expr it arg
    in
    let rec expr self e =
      match e.pexp_desc with
      | Pexp_apply (f, args) when (match ident_of f with
                                   | Some n -> List.mem n sort_functions
                                   | None -> false) ->
          (match args with
          | (Asttypes.Nolabel, cmp) :: rest ->
              scan_comparator cmp;
              List.iter (fun (_, a) -> expr self a) rest
          | args -> List.iter (fun (_, a) -> expr self a) args)
      | Pexp_apply (f, args)
        when (match ident_of f with Some n -> List.mem n poly_op_names | None -> false)
             && List.exists (fun (_, a) -> is_float_const a) args
             && !guard_depth = 0 ->
          let op = Option.value (ident_of f) ~default:"?" in
          flag e.pexp_loc
            (Printf.sprintf
               "polymorphic '%s' against a float literal; use Float.equal / Float.compare (or \
                move the test into a guard position)"
               op);
          List.iter (fun (_, a) -> expr self a) args
      | Pexp_ifthenelse (c, t, eo) ->
          incr guard_depth;
          expr self c;
          decr guard_depth;
          expr self t;
          Option.iter (expr self) eo
      | _ -> Ast_iterator.default_iterator.expr self e
    and case self c =
      Option.iter
        (fun g ->
          incr guard_depth;
          expr self g;
          decr guard_depth)
        c.pc_guard;
      self.Ast_iterator.pat self c.pc_lhs;
      expr self c.pc_rhs
    in
    let it = { Ast_iterator.default_iterator with expr; case } in
    (match ast with Impl str -> it.structure it str | Intf sg -> it.signature it sg);
    !out
  in
  {
    id;
    doc =
      "no polymorphic compare/=/min/max on float or structured solver data (bare 'compare' in \
       sorts; '=' against float literals outside guards)";
    check;
  }

(* ------------------------------------------------------------------ *)
(* Rule: exception-swallow                                             *)
(* [try ... with _ -> ...] and [with e -> ignore e] hide solver        *)
(* failures: an EPF pass that dies mid-update leaves potentials        *)
(* inconsistent, and a swallowed exception turns that into silent      *)
(* placement corruption.                                               *)

let rule_exception_swallow =
  let id = "exception-swallow" in
  let check ctx ast =
    let out = ref [] in
    let flag loc msg = out := Diagnostic.make ~file:ctx.path ~loc ~rule:id msg :: !out in
    let is_ignore_of v e =
      match e.pexp_desc with
      | Pexp_apply (f, [ (Asttypes.Nolabel, arg) ]) -> (
          ident_of f = Some "ignore"
          && match ident_of arg with Some n -> n = v | None -> false)
      | _ -> false
    in
    let is_unit e =
      match e.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "()"; _ }, None) -> true
      | _ -> false
    in
    let expr self e =
      (match e.pexp_desc with
      | Pexp_try (_, cases) ->
          List.iter
            (fun c ->
              match c.pc_lhs.ppat_desc with
              | Ppat_any ->
                  flag c.pc_lhs.ppat_loc
                    "'with _ ->' swallows every exception (including Out_of_memory and \
                     Stack_overflow); match the specific exceptions you expect"
              | Ppat_var { txt = v; _ } when is_ignore_of v c.pc_rhs || is_unit c.pc_rhs ->
                  flag c.pc_lhs.ppat_loc
                    (Printf.sprintf
                       "'with %s ->' binds the exception only to discard it; match the specific \
                        exceptions you expect"
                       v)
              | _ -> ())
            cases
      | _ -> ());
      Ast_iterator.default_iterator.expr self e
    in
    over_ast expr ast;
    !out
  in
  { id; doc = "no 'try ... with _ ->' or 'with e -> ignore e' exception swallowing"; check }

(* ------------------------------------------------------------------ *)
(* Rule: hashtbl-find                                                  *)
(* Raw [Hashtbl.find] raises [Not_found] — fine under an enclosing     *)
(* try/match-exception, a latent crash anywhere else. Require          *)
(* [Hashtbl.find_opt].                                                 *)

let rule_hashtbl_find =
  let id = "hashtbl-find" in
  let check ctx ast =
    let out = ref [] in
    let flag loc =
      out :=
        Diagnostic.make ~file:ctx.path ~loc ~rule:id
          "raw Hashtbl.find outside try/match raises Not_found on a miss; use Hashtbl.find_opt"
        :: !out
    in
    let try_depth = ref 0 in
    let has_exception_case cases =
      List.exists
        (fun c -> match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
        cases
    in
    let rec expr self e =
      match e.pexp_desc with
      | Pexp_ident { txt; _ }
        when (let n = lid_name txt in
              n = "Hashtbl.find" || n = "Stdlib.Hashtbl.find")
             && !try_depth = 0 ->
          flag e.pexp_loc
      | Pexp_try (body, cases) ->
          incr try_depth;
          expr self body;
          decr try_depth;
          List.iter (fun c -> expr self c.pc_rhs) cases
      | Pexp_match (scrut, cases) when has_exception_case cases ->
          incr try_depth;
          expr self scrut;
          decr try_depth;
          List.iter
            (fun c ->
              Option.iter (expr self) c.pc_guard;
              expr self c.pc_rhs)
            cases
      | _ -> Ast_iterator.default_iterator.expr self e
    in
    over_ast expr ast;
    !out
  in
  { id; doc = "no raw Hashtbl.find outside an enclosing try/match; use Hashtbl.find_opt"; check }

(* ------------------------------------------------------------------ *)
(* Rule: print-in-lib                                                  *)
(* Library code must report through [Logs]; stdout belongs to the      *)
(* bench/example binaries, and stray printf in a hot solver loop is    *)
(* both a perf and a composability bug.                                *)

let print_names =
  [
    "Printf.printf";
    "Printf.eprintf";
    "print_endline";
    "print_string";
    "print_newline";
    "print_int";
    "print_float";
    "print_char";
    "prerr_endline";
    "Format.printf";
    "Format.eprintf";
    "Stdlib.print_endline";
    "Stdlib.print_string";
  ]

let rule_print_in_lib =
  let id = "print-in-lib" in
  let check ctx ast =
    if not ctx.in_lib then []
    else begin
      let out = ref [] in
      let expr self e =
        (match ident_of e with
        | Some n when List.mem n print_names ->
            out :=
              Diagnostic.make ~file:ctx.path ~loc:e.pexp_loc ~rule:id
                (Printf.sprintf "'%s' in library code; route output through Logs" n)
              :: !out
        | _ -> ());
        Ast_iterator.default_iterator.expr self e
      in
      over_ast expr ast;
      !out
    end
  in
  { id; doc = "no Printf.printf / print_endline in lib/ (library code logs via Logs)"; check }

(* ------------------------------------------------------------------ *)
(* Rule: no-failwith                                                   *)
(* [failwith] / [assert false] in library code paths abort the whole   *)
(* pipeline with an unstructured error. Use Invalid_argument for       *)
(* precondition violations or a result type; justified unreachable     *)
(* branches take a vodlint-disable with rationale.                     *)

let rule_no_failwith =
  let id = "no-failwith" in
  let check ctx ast =
    if not ctx.in_lib then []
    else begin
      let out = ref [] in
      let flag loc msg = out := Diagnostic.make ~file:ctx.path ~loc ~rule:id msg :: !out in
      let expr self e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ }
          when (let n = lid_name txt in n = "failwith" || n = "Stdlib.failwith") ->
            flag e.pexp_loc
              "'failwith' in library code; raise Invalid_argument / a typed exception, or \
               vodlint-disable with a justification"
        | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
          ->
            flag e.pexp_loc
              "'assert false' in library code; make the branch impossible by construction or \
               vodlint-disable with a justification"
        | _ -> ());
        Ast_iterator.default_iterator.expr self e
      in
      over_ast expr ast;
      !out
    end
  in
  { id; doc = "no failwith / assert false in lib/ without a vodlint-disable justification"; check }

(* ------------------------------------------------------------------ *)
(* Rule: quadratic-loop                                                *)
(* [List.nth] and [@] are O(n); inside a for/while body or a           *)
(* recursive function they turn the per-video UFL fan-out into an      *)
(* O(n^2) blow-up. Use arrays, reversed accumulation, or explicit      *)
(* tail-recursive append.                                              *)

let rule_quadratic_loop =
  let id = "quadratic-loop" in
  let check ctx ast =
    let out = ref [] in
    let flag loc what =
      out :=
        Diagnostic.make ~file:ctx.path ~loc ~rule:id
          (Printf.sprintf
             "'%s' inside a loop or recursive function is O(n) per step (quadratic overall); use \
              an array, reversed accumulation, or List.rev_append"
             what)
        :: !out
    in
    let loop_depth = ref 0 in
    let rec expr self e =
      match e.pexp_desc with
      | Pexp_ident { txt; _ }
        when !loop_depth > 0
             && (let n = lid_name txt in
                 n = "List.nth" || n = "@" || n = "List.append" || n = "Stdlib.List.nth") ->
          flag e.pexp_loc (lid_name txt)
      | Pexp_for (_, lo, hi, _, body) ->
          expr self lo;
          expr self hi;
          incr loop_depth;
          expr self body;
          decr loop_depth
      | Pexp_while (cond, body) ->
          expr self cond;
          incr loop_depth;
          expr self body;
          decr loop_depth
      | Pexp_let (Asttypes.Recursive, vbs, body) ->
          incr loop_depth;
          List.iter (fun vb -> expr self vb.pvb_expr) vbs;
          decr loop_depth;
          expr self body
      | _ -> Ast_iterator.default_iterator.expr self e
    in
    let structure_item self si =
      match si.pstr_desc with
      | Pstr_value (Asttypes.Recursive, vbs) ->
          incr loop_depth;
          List.iter (fun vb -> expr self vb.pvb_expr) vbs;
          decr loop_depth
      | _ -> Ast_iterator.default_iterator.structure_item self si
    in
    let it = { Ast_iterator.default_iterator with expr; structure_item } in
    (match ast with Impl str -> it.structure it str | Intf sg -> it.signature it sg);
    !out
  in
  { id; doc = "no List.nth or '@' inside for/while/recursive-function bodies"; check }

(* ------------------------------------------------------------------ *)
(* Rule: missing-mli                                                   *)
(* Every lib/**/*.ml needs a matching .mli: unstated signatures leak   *)
(* solver internals and make later refactors (sharding, async) churn   *)
(* every caller. Checked against the filesystem, so it only applies    *)
(* when linting real files.                                            *)

let rule_missing_mli =
  let id = "missing-mli" in
  let check ctx ast =
    match ast with
    | Intf _ -> []
    | Impl _ ->
        if ctx.in_lib && ctx.on_disk && not (Sys.file_exists (ctx.path ^ "i")) then
          [
            {
              Diagnostic.file = ctx.path;
              line = 1;
              col = 0;
              rule = id;
              message = "library module has no .mli; add one stating the public interface";
            };
          ]
        else []
  in
  { id; doc = "every lib/**/*.ml has a matching .mli"; check }

(* ------------------------------------------------------------------ *)
(* Rule: unguarded-div                                                 *)
(* Float division in the EPF engine and the simplex kernel where the   *)
(* denominator is a bare identifier that (a) is not named like an      *)
(* epsilon and (b) is not mentioned by any enclosing if-condition or   *)
(* match guard. A zero denominator there silently floods the           *)
(* potential function with infinities.                                 *)

let name_is_epsilon n =
  let contains_sub s sub =
    let ns = String.length s and nb = String.length sub in
    let rec go i = i + nb <= ns && (String.sub s i nb = sub || go (i + 1)) in
    go 0
  in
  contains_sub n "eps" || contains_sub n "tol"

let rule_unguarded_div =
  let id = "unguarded-div" in
  let check ctx ast =
    if not ctx.in_div_scope then []
    else begin
      let out = ref [] in
      let flag loc n =
        out :=
          Diagnostic.make ~file:ctx.path ~loc ~rule:id
            (Printf.sprintf
               "float division by '%s' with no enclosing guard mentioning it; check the \
                denominator (or name it with an eps/tol suffix if it is a constant bound)"
               n)
          :: !out
      in
      let guards : string list list ref = ref [] in
      let guarded n = List.exists (fun g -> List.mem n g) !guards in
      let with_guard g f =
        guards := g :: !guards;
        f ();
        guards := List.tl !guards
      in
      let rec expr self e =
        match e.pexp_desc with
        | Pexp_apply (f, ([ (_, _num); (_, den) ] as args)) when ident_of f = Some "/." ->
            (match den.pexp_desc with
            | Pexp_ident { txt = Longident.Lident n; _ }
              when (not (name_is_epsilon n)) && not (guarded n) ->
                flag e.pexp_loc n
            | _ -> ());
            List.iter (fun (_, a) -> expr self a) args
        | Pexp_ifthenelse (c, t, eo) ->
            expr self c;
            with_guard (idents_in c) (fun () ->
                expr self t;
                Option.iter (expr self) eo)
        | Pexp_match (scrut, cases) ->
            expr self scrut;
            with_guard (idents_in scrut) (fun () -> List.iter (case self) cases)
        | _ -> Ast_iterator.default_iterator.expr self e
      and case self c =
        self.Ast_iterator.pat self c.pc_lhs;
        match c.pc_guard with
        | Some g ->
            expr self g;
            with_guard (idents_in g) (fun () -> expr self c.pc_rhs)
        | None -> expr self c.pc_rhs
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr;
          case = (fun self c -> case self c);
        }
      in
      (match ast with Impl str -> it.structure it str | Intf sg -> it.signature it sg);
      !out
    end
  in
  {
    id;
    doc =
      "no unguarded '/.' in lib/epf/ and lib/lp/ (denominator must be checked by an enclosing \
       guard or be a named eps/tol bound)";
    check;
  }

(* ------------------------------------------------------------------ *)
(* Rule: domain-spawn                                                  *)
(* All parallelism goes through the pool. A stray [Domain.spawn]       *)
(* elsewhere escapes the pool's determinism contract (ordered merges,  *)
(* task-indexed RNG streams, lowest-index failure) and its exception   *)
(* accounting, so seeded runs stop being reproducible across job       *)
(* counts.                                                             *)

let pool_source = "lib/util/pool.ml"

let path_is_pool path =
  let np = String.length path and ns = String.length pool_source in
  path = pool_source
  || (np > ns
      && String.sub path (np - ns) ns = pool_source
      && path.[np - ns - 1] = '/')

let rule_domain_spawn =
  let id = "domain-spawn" in
  let check ctx ast =
    if path_is_pool ctx.path then []
    else begin
      let out = ref [] in
      let expr self e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ }
          when (let n = lid_name txt in
                n = "Domain.spawn" || n = "Stdlib.Domain.spawn") ->
            out :=
              Diagnostic.make ~file:ctx.path ~loc:e.pexp_loc ~rule:id
                "'Domain.spawn' outside lib/util/pool.ml bypasses the pool's determinism and \
                 exception contract; submit work through Vod_util.Pool"
              :: !out
        | _ -> ());
        Ast_iterator.default_iterator.expr self e
      in
      over_ast expr ast;
      !out
    end
  in
  {
    id;
    doc = "no Domain.spawn outside lib/util/pool.ml (all parallelism goes through the pool)";
    check;
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    rule_poly_compare;
    rule_exception_swallow;
    rule_hashtbl_find;
    rule_print_in_lib;
    rule_no_failwith;
    rule_quadratic_loop;
    rule_missing_mli;
    rule_unguarded_div;
    rule_domain_spawn;
  ]

let find id = List.find_opt (fun r -> r.id = id) all
