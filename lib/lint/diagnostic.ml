(* A single lint finding, anchored to a source position. Rendering is
   pure (returns strings); the [vodlint] executable decides where the
   text goes, so this library stays free of direct console output. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let make ~file ~loc ~rule message =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text d = Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.message

(* GitHub Actions workflow-command annotation. Property values escape
   %, \r, \n as %25, %0D, %0A and also , and : (the property
   separators); the free-text message only needs the first three. *)
let gh_escape ~prop s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\r' -> Buffer.add_string buf "%0D"
      | '\n' -> Buffer.add_string buf "%0A"
      | ',' when prop -> Buffer.add_string buf "%2C"
      | ':' when prop -> Buffer.add_string buf "%3A"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_github d =
  Printf.sprintf "::warning file=%s,line=%d,col=%d,title=vodlint %s::%s"
    (gh_escape ~prop:true d.file) d.line (d.col + 1)
    (gh_escape ~prop:true d.rule)
    (gh_escape ~prop:false d.message)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.message)

let list_to_json ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",\n ";
      Buffer.add_string buf (to_json d))
    ds;
  Buffer.add_string buf "]";
  Buffer.contents buf
