(** The vodlint rule registry.

    Rules are syntactic heuristics over the untyped parsetree, each
    enforcing one solver-safety invariant (see DESIGN.md, "Static
    analysis"). They can be individually disabled on the command line
    and suppressed per-line with [(* vodlint-disable rule-id *)]. *)

(** Per-file context a rule can condition on. *)
type ctx = {
  path : string;       (** path used in diagnostics *)
  in_lib : bool;       (** file lives under lib/ *)
  in_div_scope : bool; (** file lives under lib/epf/ or lib/lp/ *)
  on_disk : bool;      (** false when linting an in-memory snippet *)
}

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type t = {
  id : string;      (** stable rule id, e.g. ["poly-compare"] *)
  doc : string;     (** one-line description for [--list-rules] *)
  check : ctx -> ast -> Diagnostic.t list;
}

(** All rules, in reporting order. *)
val all : t list

(** Look a rule up by id. *)
val find : string -> t option
