(** Phase-4a of the whole-project analysis: intraprocedural control-flow
    graphs over parsetree expressions, the substrate of the protocol /
    typestate dataflow ({!Proto}).

    A graph has one {e entry} node, one {e exit} node (every normal
    return path reaches it) and one {e exn_exit} node (every uncaught
    exceptional path reaches it). Each interior node carries an ordered
    list of atomic statements — [let pat = e] bindings and bare
    evaluations — plus normal successor edges and a single {e handler}
    edge: the node a raise inside this node lands on (the innermost
    enclosing [try]'s handler, or [exn_exit]).

    Construction decomposes sequences, [let], [if], [match] (including
    [exception] cases), [try], [while]/[for] loops and explicit raises
    ([raise]/[failwith]/[invalid_arg], whose continuations are
    unreachable). Three application shapes get structural treatment
    instead of being atomic:

    - [Fun.protect ~finally:(fun () -> fin) (fun () -> body)] — [body]
      is built with its handler pointing at a copy of [fin] that
      continues to the outer handler (the re-raise), and the normal exit
      of [body] flows through a second copy of [fin]. A release inside
      [fin] is therefore seen on both the normal and exceptional path.
    - iterator calls with a literal closure ([List.iter (fun x -> ...)],
      [Array.init n (fun i -> ...)], folds, maps...) — the closure body
      is inlined as a loop (runs zero or more times, exceptions
      propagate to the call site);
    - once-runner calls with a literal closure ([Obs.phase],
      [Checkpoint.run], ...) — the closure body is inlined linearly
      (runs exactly once in place).

    Other closures stay opaque values inside atomic statements; the
    dataflow treats a protocol token captured by one as escaped. *)

type stmt =
  | Bind of Parsetree.pattern * Parsetree.expression
      (** [let pat = e] (also models [match] case entry: pattern
          variables alias the scrutinee) *)
  | Eval of Parsetree.expression  (** evaluate and discard *)

type t

val build : Parsetree.expression -> t
(** Build the CFG of a function body. Leading [fun]/[function]
    parameter chains are stripped (a root-level [function] becomes a
    branch over its cases); inner lambdas are opaque. *)

val n_nodes : t -> int
val entry : t -> int
val exit_node : t -> int
val exn_exit : t -> int

val stmts : t -> int -> stmt list
(** Statements of a node, in execution order. *)

val succs : t -> int -> int list
(** Normal successors. *)

val handler : t -> int -> int
(** Where a raise inside this node lands ([exn_exit] if uncaught). *)

val borrows_closures : string -> bool
(** Whether the named callee (normalized) is known to only {e run} its
    closure arguments, never store them — the iterator / once-runner /
    [Fun.protect] set above. The dataflow uses this to keep a protocol
    token captured by such a closure from counting as escaped. *)
