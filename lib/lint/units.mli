(** Phase-3a of the whole-project analysis: interprocedural
    units-of-measure dataflow over float/int expressions.

    Units are inferred from two seeds and propagated everywhere else:

    - {e naming conventions} — a trailing run of unit tokens on a
      binding, parameter, label or record-field name ([size_gb],
      [rate_mbps], [window_s], [total_gb_hops], [requests_per_day])
      denotes its unit; [per] divides the next token, so
      [seconds_per_day] is s/day;
    - {e units.decl} — an explicit signature file declaring parameter
      and return units for the core quantity-bearing APIs
      ([Video.size_gb], [Capacity], [Fleet], [Metrics], [Instance],
      the link tables), see the repo-root [units.decl].

    Propagation runs through let-bindings, arithmetic ([+.]/[-.] and
    comparisons require equal units; [*.]/[/.] compose dimensions, so
    GB divided by GB/s is seconds), record fields, and cross-module
    calls via a monotone fixpoint over per-function summaries in the
    style of {!Summaries}. Numeric literals are unit-polymorphic: they
    adopt the unit of the other additive operand and never fire on
    [x > 0.0] guards, but they poison multiplication to Unknown — a
    scale conversion must go through a named constant
    ([seconds_per_hour]) to keep its unit.

    Two rules are reported:

    - [unit-mismatch] — adding, subtracting, comparing or assigning
      across different inferred units, or passing an argument whose
      unit contradicts the parameter's declared/derived unit;
    - [unit-unannotated-boundary] — a unit-carrying argument flows
      into a parameter of a declared core module
      ([units.decl]-covered) that has no unit; reported once per
      (function, parameter) at the function's definition. *)

type decl
(** Parsed contents of a [units.decl] signature file. *)

exception Decl_error of string
(** Raised on a malformed declaration file. The CLI maps this to exit
    code 2 (configuration error), not a finding. *)

val empty_decl : decl
(** No declarations: suffix inference still runs, the boundary rule is
    vacuous (it only covers declared modules). *)

val decl_of_string : string -> decl
(** Parse declarations. Lines are
    [Module.name \[label=UNIT\]... \[argN=UNIT\]... \[-> UNIT\]];
    [#] starts a comment. A UNIT is atoms joined with [*] and [/]
    ([gb], [mb/s], [gb*hops], [1/day]); [1] is dimensionless.
    Raises {!Decl_error} on malformed input. *)

val load_decl : string -> decl
(** Load a declaration file; a missing file is {!empty_decl}.
    Raises {!Decl_error} on malformed contents. *)

val decl_values : decl -> string list
(** The qualified value names declared, in file order — used by the
    stale-declaration check in [tools/check.sh] and its tests. *)

val run :
  decl:decl ->
  mismatch:bool ->
  boundary:bool ->
  (string * Parsetree.structure) list ->
  Diagnostic.t list
(** Run the units dataflow over every implementation file at once.
    [mismatch]/[boundary] gate the two rules. Diagnostics are
    unsorted and unsuppressed — {!Engine} applies [vodlint-disable]
    filtering and ordering. *)
