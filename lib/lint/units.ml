(* Units-of-measure dataflow (see units.mli). The analysis is untyped
   and deliberately one-sided: a finding needs BOTH sides of an
   operation to carry a known, non-trivial unit, so unannotated code
   stays silent and annotating more names/declarations only ever adds
   checking. Numeric literals are unit-polymorphic (they adopt the
   other additive operand) but poison [*.]/[/.] to Unknown, so scale
   conversions must go through named constants (seconds_per_hour) to
   keep their unit — magic-number conversions just drop out of the
   analysis instead of firing falsely. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Dimensions                                                          *)

(* A dimension is a sorted (atom, exponent) list with no zero
   exponents; [] is dimensionless. Atoms are the name tokens
   themselves (gb and mb stay distinct — a scale confusion is exactly
   what the rule is for), with the composite rate tokens decomposed so
   gb / (gb/s) cancels to s. *)
type dim = (string * int) list

type u =
  | Unknown  (* no information *)
  | Scalar   (* a numeric literal: unit-polymorphic *)
  | Dim of dim

let dim_norm d =
  List.filter (fun (_, e) -> e <> 0) d
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dim_mul a b =
  let add acc (atom, e) =
    match List.assoc_opt atom acc with
    | Some e0 -> (atom, e0 + e) :: List.remove_assoc atom acc
    | None -> (atom, e) :: acc
  in
  dim_norm (List.fold_left add a b)

let dim_inv d = List.map (fun (a, e) -> (a, -e)) d
let dim_div a b = dim_mul a (dim_inv b)
let dim_equal a b = dim_norm a = dim_norm b

let dim_to_string d =
  match dim_norm d with
  | [] -> "1"
  | d ->
      let part (a, e) =
        if abs e = 1 then a else Printf.sprintf "%s^%d" a (abs e)
      in
      let pos = List.filter (fun (_, e) -> e > 0) d in
      let neg = List.filter (fun (_, e) -> e < 0) d in
      let num =
        match pos with
        | [] -> "1"
        | _ -> String.concat "*" (List.map part pos)
      in
      (match neg with
      | [] -> num
      | _ -> num ^ "/" ^ String.concat "/" (List.map part neg))

(* ------------------------------------------------------------------ *)
(* Naming conventions                                                  *)

let atom_of_token = function
  | "gb" -> Some [ ("gb", 1) ]
  | "mb" -> Some [ ("mb", 1) ]
  | "kb" -> Some [ ("kb", 1) ]
  | "tb" -> Some [ ("tb", 1) ]
  | "bytes" -> Some [ ("bytes", 1) ]
  | "bits" -> Some [ ("bits", 1) ]
  | "gbps" -> Some [ ("gb", 1); ("s", -1) ]
  | "mbps" -> Some [ ("mb", 1); ("s", -1) ]
  | "kbps" -> Some [ ("kb", 1); ("s", -1) ]
  | "s" | "sec" | "secs" | "seconds" -> Some [ ("s", 1) ]
  | "ms" -> Some [ ("ms", 1) ]
  | "day" | "days" -> Some [ ("day", 1) ]
  | "hour" | "hours" -> Some [ ("hour", 1) ]
  | "streams" -> Some [ ("streams", 1) ]
  | "hops" -> Some [ ("hops", 1) ]
  | "req" | "reqs" | "requests" -> Some [ ("req", 1) ]
  | _ -> None

(* Single-token names that are far more often generic metavariables
   than quantities ([s] a string or a record, [sec] a section). Multi-
   token names ([window_s]) are unaffected. *)
let bare_blocklist = [ "s"; "ms"; "sec"; "secs" ]

(* A preposition immediately before the unit suffix means the trailing
   tokens describe a relation, not the value's unit: [between_days]
   selects by day, [of_requests] consumes requests, [sec_in_hour] is
   an offset within an hour. *)
let prepositions =
  [ "between"; "of"; "in"; "at"; "by"; "to"; "from"; "with"; "within";
    "over"; "before"; "after"; "until" ]

(* The unit a name's trailing tokens spell, if any: the longest
   trailing run of unit tokens and [per], read left to right, with
   [per] dividing the next token. [total_gb_hops] is gb*hops,
   [seconds_per_day] is s/day, [requests_per_video_per_day] (video is
   not a unit token) is 1/day. *)
let suffix_unit name =
  let toks = String.split_on_char '_' (String.lowercase_ascii name) in
  match toks with
  | [ t ] when List.mem t bare_blocklist -> None
  | _ -> (
      let rec take acc = function
        | t :: rest when t = "per" || atom_of_token t <> None ->
            take (t :: acc) rest
        | before -> (acc, before)
      in
      let suffix, before = take [] (List.rev toks) in
      let blocked =
        match before with t :: _ -> List.mem t prepositions | [] -> false
      in
      let rec interp acc = function
        | [] -> Some acc
        | "per" :: t :: rest -> (
            match atom_of_token t with
            | Some d -> interp (dim_div acc d) rest
            | None -> None)
        | [ "per" ] -> None
        | t :: rest -> (
            match atom_of_token t with
            | Some d -> interp (dim_mul acc d) rest
            | None -> None)
      in
      match suffix with
      | [] -> None
      | _ when blocked -> None
      | s -> (
          match interp [] s with
          | Some [] | None -> None
          | Some d -> Some d))

(* ------------------------------------------------------------------ *)
(* units.decl parsing                                                  *)

type akey = L of string | P of int

let akey_to_string = function
  | L l -> "~" ^ l
  | P i -> Printf.sprintf "argument %d" (i + 1)

type dentry = { de_params : (akey * dim) list; de_ret : dim option }

type decl = {
  d_entries : (string * dentry) list; (* "Video.size_gb" -> entry *)
  d_modules : string list;            (* modules covered, for boundary *)
}

exception Decl_error of string

let empty_decl = { d_entries = []; d_modules = [] }

let decl_values d = List.map fst d.d_entries

let is_atom_word s =
  s <> ""
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) s

let parse_dim ~lineno s =
  let fail fmt =
    Printf.ksprintf (fun m ->
        raise (Decl_error (Printf.sprintf "units.decl line %d: %s" lineno m)))
      fmt
  in
  if s = "" then fail "empty unit expression";
  let atoms part =
    String.split_on_char '*' part
    |> List.filter (fun a -> a <> "")
    |> List.map (fun a ->
           if a = "1" then []
           else
             match atom_of_token a with
             | Some d -> d
             | None ->
                 if is_atom_word a then [ (a, 1) ]
                 else fail "bad unit atom '%s'" a)
    |> List.fold_left dim_mul []
  in
  match String.split_on_char '/' s with
  | [] -> fail "empty unit expression"
  | num :: dens ->
      List.fold_left (fun acc den -> dim_div acc (atoms den)) (atoms num) dens

let decl_of_string src =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let fail fmt =
        Printf.ksprintf (fun m ->
            raise
              (Decl_error (Printf.sprintf "units.decl line %d: %s" lineno m)))
          fmt
      in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let toks =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      in
      match toks with
      | [] -> ()
      | name :: rest ->
          if not (String.contains name '.') then
            fail "'%s' is not a qualified Module.name" name;
          let de_params = ref [] in
          let de_ret = ref None in
          let rec go = function
            | [] -> ()
            | [ "->" ] -> fail "expected a unit after ->"
            | "->" :: u :: rest ->
                if rest <> [] then fail "tokens after the return unit";
                de_ret := Some (parse_dim ~lineno u)
            | tok :: rest -> (
                match String.index_opt tok '=' with
                | None -> fail "expected name=UNIT or -> UNIT, got '%s'" tok
                | Some j ->
                    let k = String.sub tok 0 j in
                    let v = String.sub tok (j + 1) (String.length tok - j - 1) in
                    if k = "" then fail "empty parameter name in '%s'" tok;
                    let key =
                      if
                        String.length k > 3
                        && String.sub k 0 3 = "arg"
                        &&
                        match
                          int_of_string_opt
                            (String.sub k 3 (String.length k - 3))
                        with
                        | Some n when n >= 1 -> true
                        | _ -> false
                      then
                        P (int_of_string (String.sub k 3 (String.length k - 3)) - 1)
                      else L k
                    in
                    de_params := (key, parse_dim ~lineno v) :: !de_params;
                    go rest)
          in
          go rest;
          entries :=
            (name, { de_params = List.rev !de_params; de_ret = !de_ret })
            :: !entries)
    (String.split_on_char '\n' src);
  let entries = List.rev !entries in
  let modules =
    List.filter_map
      (fun (name, _) ->
        match String.index_opt name '.' with
        | Some i -> Some (String.sub name 0 i)
        | None -> None)
      entries
    |> List.sort_uniq String.compare
  in
  { d_entries = entries; d_modules = modules }

let load_decl path =
  if not (Sys.file_exists path) then empty_decl
  else begin
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decl_of_string src
  end

(* ------------------------------------------------------------------ *)
(* Function summaries                                                  *)

type fentry = {
  u_path : string;
  u_loc : Location.t option;  (* None for decl-only entries *)
  u_params : (akey * u) list;
  mutable u_ret : u;
  u_declared : bool;          (* return unit pinned by units.decl *)
}

let lid_name (lid : Longident.t) = String.concat "." (Longident.flatten lid)

let ident_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_name txt)
  | _ -> None

(* Split a binding into labeled parameters + final body, mirroring
   [Effects.fun_split] but keeping the argument labels and defaults. *)
let rec lparams e =
  match e.pexp_desc with
  | Pexp_fun (lbl, default, pat, body) ->
      let ps, b = lparams body in
      ((lbl, default, pat) :: ps, b)
  | Pexp_newtype (_, body) -> lparams body
  | Pexp_constraint (body, _)
    when (match body.pexp_desc with
         | Pexp_fun _ | Pexp_function _ -> true
         | _ -> false) ->
      lparams body
  | _ -> ([], e)

let is_function_expr e =
  match lparams e with
  | _ :: _, _ -> true
  | [], b -> (match b.pexp_desc with Pexp_function _ -> true | _ -> false)

let pat_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pp ->
          (match pp.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pp);
    }
  in
  it.pat it p;
  !acc

let rec simple_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (q, _) -> simple_var q
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Unit algebra on the lattice                                         *)

(* Additive join: literals adopt the unit of the other side. *)
let add_join ua ub =
  match (ua, ub) with
  | Dim a, _ -> Dim a
  | _, Dim b -> Dim b
  | Scalar, Scalar -> Scalar
  | _ -> Unknown

(* Multiplication: a literal factor leaves the unit unknowable (a
   conversion constant must be named to carry its unit). *)
let mul_combine ua ub =
  match (ua, ub) with
  | Dim a, Dim b -> Dim (dim_mul a b)
  | Scalar, Scalar -> Scalar
  | _ -> Unknown

let div_combine ua ub =
  match (ua, ub) with
  | Dim a, Dim b -> Dim (dim_div a b)
  | Scalar, Scalar -> Scalar
  | _ -> Unknown

let branch_join ua ub =
  match (ua, ub) with
  | Dim a, Dim b -> if dim_equal a b then Dim a else Unknown
  | (Dim _ as d), _ | _, (Dim _ as d) -> d
  | Scalar, Scalar -> Scalar
  | _ -> Unknown

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)

type ctx = {
  emit : bool;
  path : string;
  current_module : string;
  table : (string, fentry) Hashtbl.t;
  decl : decl;
  mutable diags : Diagnostic.t list;
  boundary : (string * akey, string * Location.t) Hashtbl.t;
  check_mismatch : bool;
  check_boundary : bool;
}

let mismatch ctx ~loc msg =
  if ctx.emit && ctx.check_mismatch then
    ctx.diags <-
      Diagnostic.make ~file:ctx.path ~loc ~rule:"unit-mismatch" msg :: ctx.diags

let check_same ctx ~loc ~op ua ub =
  match (ua, ub) with
  | Dim a, Dim b when not (dim_equal a b) ->
      mismatch ctx ~loc
        (Printf.sprintf "operands of %s have different units: %s vs %s" op
           (dim_to_string a) (dim_to_string b))
  | _ -> ()

let resolve ctx name =
  let name = Effects.normalize name in
  let candidates =
    if String.contains name '.' then
      let parts = String.split_on_char '.' name in
      let last2 =
        match List.rev parts with
        | f :: m :: _ -> [ m ^ "." ^ f ]
        | _ -> []
      in
      name :: last2
    else [ ctx.current_module ^ "." ^ name ]
  in
  List.find_map
    (fun k ->
      match Hashtbl.find_opt ctx.table k with
      | Some fe -> Some (k, fe)
      | None -> None)
    candidates

let module_of_key key =
  match String.index_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> key

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(* Return-unit fallback for calls that resolve nowhere: the callee's
   own name suffix ([Tr.seconds_per_day] through a module alias). *)
let ret_fallback name =
  match suffix_unit (last_component name) with
  | Some d -> Dim d
  | None -> Unknown

(* A parameter's seeded unit: units.decl first, then the label's
   suffix, then the pattern variable's suffix. *)
let param_unit ~dentry key ~label ~pat =
  let from_decl =
    match dentry with
    | Some de -> Option.map (fun d -> Dim d) (List.assoc_opt key de.de_params)
    | None -> None
  in
  match from_decl with
  | Some u -> u
  | None -> (
      let by_name n =
        match suffix_unit n with Some d -> Some (Dim d) | None -> None
      in
      let from_label = Option.bind label by_name in
      match from_label with
      | Some u -> u
      | None -> (
          match Option.bind (simple_var pat) by_name with
          | Some u -> u
          | None -> Unknown))

let bind_params ~dentry env ps =
  let nolabel = ref 0 in
  List.fold_left
    (fun env (lbl, _default, pat) ->
      let key, label =
        match lbl with
        | Asttypes.Nolabel ->
            let i = !nolabel in
            incr nolabel;
            (P i, None)
        | Asttypes.Labelled l | Asttypes.Optional l -> (L l, Some l)
      in
      let u = param_unit ~dentry key ~label ~pat in
      match simple_var pat with
      | Some n -> (n, u) :: env
      | None -> List.rev_append (List.map (fun n -> (n, Unknown)) (pat_vars pat)) env)
    env ps

let rec infer ctx env e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_float _) -> Scalar
  | Pexp_constant _ -> Unknown
  | Pexp_ident { txt = Longident.Lident n; _ } -> (
      match List.assoc_opt n env with
      | Some u -> u
      | None -> (
          match resolve ctx n with
          | Some (_, fe) when fe.u_params = [] -> fe.u_ret
          | Some _ -> Unknown
          | None -> Unknown))
  | Pexp_ident { txt; _ } -> (
      let name = lid_name txt in
      match resolve ctx name with
      | Some (_, fe) when fe.u_params = [] -> fe.u_ret
      | Some _ -> Unknown
      | None -> ret_fallback name)
  | Pexp_apply (f, args) -> infer_apply ctx env e f args
  | Pexp_let (rf, vbs, body) ->
      let env' = infer_let ctx env rf vbs in
      infer ctx env' body
  | Pexp_fun _ | Pexp_newtype _ ->
      scan_lambda ctx env e;
      Unknown
  | Pexp_function cases ->
      List.iter
        (fun c ->
          let env' =
            List.rev_append
              (List.map (fun n -> (n, Unknown)) (pat_vars c.pc_lhs))
              env
          in
          Option.iter (fun g -> ignore (infer ctx env' g)) c.pc_guard;
          ignore (infer ctx env' c.pc_rhs))
        cases;
      Unknown
  | Pexp_match (scrut, cases) ->
      let us = infer ctx env scrut in
      List.fold_left
        (fun acc c ->
          let root =
            match c.pc_lhs.ppat_desc with
            | Ppat_var _ | Ppat_alias _ -> us
            | _ -> Unknown
          in
          let env' =
            List.rev_append
              (List.map (fun n -> (n, root)) (pat_vars c.pc_lhs))
              env
          in
          Option.iter (fun g -> ignore (infer ctx env' g)) c.pc_guard;
          let uc = infer ctx env' c.pc_rhs in
          branch_join acc uc)
        Scalar cases
  | Pexp_try (body, cases) ->
      let ub = infer ctx env body in
      List.fold_left
        (fun acc c ->
          let env' =
            List.rev_append
              (List.map (fun n -> (n, Unknown)) (pat_vars c.pc_lhs))
              env
          in
          Option.iter (fun g -> ignore (infer ctx env' g)) c.pc_guard;
          branch_join acc (infer ctx env' c.pc_rhs))
        ub cases
  | Pexp_ifthenelse (c, t, eo) -> (
      ignore (infer ctx env c);
      let ut = infer ctx env t in
      match eo with
      | Some e2 -> branch_join ut (infer ctx env e2)
      | None -> Unknown)
  | Pexp_sequence (a, b) ->
      ignore (infer ctx env a);
      infer ctx env b
  | Pexp_field (b, { txt; _ }) -> (
      ignore (infer ctx env b);
      match suffix_unit (Longident.last txt) with
      | Some d -> Dim d
      | None -> Unknown)
  | Pexp_setfield (b, { txt; _ }, v) ->
      ignore (infer ctx env b);
      let uv = infer ctx env v in
      let fname = Longident.last txt in
      (match (suffix_unit fname, uv) with
      | Some ed, Dim ad when not (dim_equal ed ad) ->
          mismatch ctx ~loc:e.pexp_loc
            (Printf.sprintf "field %s (unit %s) is assigned a value of unit %s"
               fname (dim_to_string ed) (dim_to_string ad))
      | _ -> ());
      Unknown
  | Pexp_record (fields, base) ->
      Option.iter (fun b -> ignore (infer ctx env b)) base;
      List.iter
        (fun (({ txt; _ } : Longident.t Location.loc), fv) ->
          let uv = infer ctx env fv in
          let fname = Longident.last txt in
          match (suffix_unit fname, uv) with
          | Some ed, Dim ad when not (dim_equal ed ad) ->
              mismatch ctx ~loc:fv.pexp_loc
                (Printf.sprintf
                   "field %s (unit %s) is initialized with a value of unit %s"
                   fname (dim_to_string ed) (dim_to_string ad))
          | _ -> ())
        fields;
      Unknown
  | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) -> infer ctx env b
  | Pexp_open (_, b) | Pexp_letmodule (_, _, b) | Pexp_letexception (_, b) ->
      infer ctx env b
  | Pexp_tuple es | Pexp_array es ->
      List.iter (fun x -> ignore (infer ctx env x)) es;
      Unknown
  | Pexp_construct (_, arg) ->
      Option.iter (fun a -> ignore (infer ctx env a)) arg;
      Unknown
  | Pexp_variant (_, arg) ->
      Option.iter (fun a -> ignore (infer ctx env a)) arg;
      Unknown
  | Pexp_for (pat, lo, hi, _, body) ->
      let ulo = infer ctx env lo in
      let uhi = infer ctx env hi in
      let env' =
        List.rev_append
          (List.map (fun n -> (n, branch_join ulo uhi)) (pat_vars pat))
          env
      in
      ignore (infer ctx env' body);
      Unknown
  | Pexp_while (c, body) ->
      ignore (infer ctx env c);
      ignore (infer ctx env body);
      Unknown
  | Pexp_lazy b | Pexp_assert b ->
      ignore (infer ctx env b);
      Unknown
  | _ ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ ce -> ignore (infer ctx env ce));
        }
      in
      Ast_iterator.default_iterator.expr it e;
      Unknown

and infer_let ctx env rf vbs =
  let env0 =
    match rf with
    | Asttypes.Nonrecursive -> env
    | Asttypes.Recursive ->
        List.rev_append
          (List.concat_map
             (fun vb -> List.map (fun n -> (n, Unknown)) (pat_vars vb.pvb_pat))
             vbs)
          env
  in
  List.fold_left
    (fun env' vb ->
      match simple_var vb.pvb_pat with
      | Some txt when is_function_expr vb.pvb_expr ->
          (* Local function: walk its body for findings; its calls are
             not resolved (it shadows any module-level namesake). *)
          scan_lambda ctx env0 vb.pvb_expr;
          (txt, Unknown) :: env'
      | Some txt ->
          let ue = infer ctx env0 vb.pvb_expr in
          let expected = suffix_unit txt in
          (match (expected, ue) with
          | Some ed, Dim ad when not (dim_equal ed ad) ->
              mismatch ctx ~loc:vb.pvb_loc
                (Printf.sprintf
                   "%s (unit %s by name) is bound to a value of unit %s" txt
                   (dim_to_string ed) (dim_to_string ad))
          | _ -> ());
          let u = match expected with Some d -> Dim d | None -> ue in
          (txt, u) :: env'
      | None ->
          ignore (infer ctx env0 vb.pvb_expr);
          List.rev_append
            (List.map (fun n -> (n, Unknown)) (pat_vars vb.pvb_pat))
            env')
    env0 vbs

and scan_lambda ctx env le =
  match le.pexp_desc with
  | Pexp_function _ -> ignore (infer ctx env le)
  | _ ->
      let ps, body = lparams le in
      List.iter
        (fun (_, default, _) ->
          Option.iter (fun d -> ignore (infer ctx env d)) default)
        ps;
      let env' = bind_params ~dentry:None env ps in
      ignore (infer ctx env' body)

and infer_apply ctx env e f args =
  match ident_of f with
  | None ->
      ignore (infer ctx env f);
      List.iter (fun (_, a) -> ignore (infer ctx env a)) args;
      Unknown
  | Some raw -> (
      let name = Effects.normalize raw in
      match (name, args) with
      | "|>", [ (_, x); (_, fn) ] when ident_of fn <> None ->
          infer_call ctx env e (Option.get (ident_of fn)) [ (Asttypes.Nolabel, x) ]
      | "@@", [ (_, fn); (_, x) ] when ident_of fn <> None ->
          infer_call ctx env e (Option.get (ident_of fn)) [ (Asttypes.Nolabel, x) ]
      | _ -> infer_call ctx env e raw args)

and infer_call ctx env e raw args =
  let name = Effects.normalize raw in
  let walk_all () = List.iter (fun (_, a) -> ignore (infer ctx env a)) args in
  let arith2 ~check combine =
    match args with
    | [ (_, a); (_, b) ] ->
        let ua = infer ctx env a in
        let ub = infer ctx env b in
        if check then check_same ctx ~loc:e.pexp_loc ~op:name ua ub;
        combine ua ub
    | _ ->
        walk_all ();
        Unknown
  in
  match name with
  | "+." | "-." | "+" | "-" | "mod" | "Float.rem" -> arith2 ~check:true add_join
  | "min" | "max" | "Float.min" | "Float.max" -> arith2 ~check:true add_join
  | "*." | "*" -> arith2 ~check:false mul_combine
  | "/." | "/" -> arith2 ~check:false div_combine
  | "<" | "<=" | ">" | ">=" | "=" | "<>" | "==" | "!=" | "compare"
  | "Float.compare" | "Float.equal" ->
      ignore (arith2 ~check:true (fun _ _ -> Unknown));
      Unknown
  | "~-." | "~-" | "~+." | "~+" | "abs_float" | "Float.abs" | "float_of_int"
  | "int_of_float" | "Float.of_int" | "Float.to_int" | "truncate" | "ceil"
  | "floor" | "Float.round" | "Float.trunc" | "succ" | "pred" | "ignore" -> (
      match args with
      | [ (_, a) ] -> ( match name with "ignore" -> ignore (infer ctx env a); Unknown | _ -> infer ctx env a)
      | _ ->
          walk_all ();
          Unknown)
  | "Array.get" | "Array.unsafe_get" -> (
      match args with
      | (_, a) :: rest ->
          let u = infer ctx env a in
          List.iter (fun (_, x) -> ignore (infer ctx env x)) rest;
          u
      | [] -> Unknown)
  | "Array.make" -> (
      match args with
      | [ (_, n); (_, x) ] ->
          ignore (infer ctx env n);
          infer ctx env x
      | _ ->
          walk_all ();
          Unknown)
  | _ -> general_call ctx env name args

and general_call ctx env name args =
  let resolved =
    if (not (String.contains name '.')) && List.mem_assoc name env then None
    else resolve ctx name
  in
  let nolabel = ref 0 in
  List.iter
    (fun (lbl, a) ->
      let ua = infer ctx env a in
      let akey =
        match lbl with
        | Asttypes.Nolabel ->
            let i = !nolabel in
            incr nolabel;
            P i
        | Asttypes.Labelled l | Asttypes.Optional l -> L l
      in
      let declared =
        match resolved with
        | Some (_, fe) -> List.assoc_opt akey fe.u_params
        | None -> None
      in
      let expected =
        match declared with
        | Some (Dim _ as u) -> Some u
        | _ -> (
            match akey with
            | L l -> (
                match suffix_unit l with Some d -> Some (Dim d) | None -> None)
            | P _ -> None)
      in
      match (expected, ua) with
      | Some (Dim ed), Dim ad when not (dim_equal ed ad) ->
          if ctx.emit && ctx.check_mismatch then
            ctx.diags <-
              Diagnostic.make ~file:ctx.path ~loc:a.pexp_loc
                ~rule:"unit-mismatch"
                (Printf.sprintf "%s of %s expects unit %s, got %s"
                   (akey_to_string akey) name (dim_to_string ed)
                   (dim_to_string ad))
              :: ctx.diags
      | None, Dim ad when ad <> [] -> (
          (* A unit-carrying value crosses into an unannotated
             parameter: report only for declared core modules, once
             per (function, parameter), at the definition. *)
          match resolved with
          | Some (key, fe)
            when ctx.emit && ctx.check_boundary
                 && List.mem (module_of_key key) ctx.decl.d_modules
                 && List.mem_assoc akey fe.u_params -> (
              match fe.u_loc with
              | Some loc ->
                  if not (Hashtbl.mem ctx.boundary (key, akey)) then
                    Hashtbl.replace ctx.boundary (key, akey) (fe.u_path, loc)
              | None -> ())
          | _ -> ())
      | _ -> ())
    args;
  match resolved with
  | Some (_, fe) -> ( match fe.u_ret with Dim d -> Dim d | _ -> ret_fallback name)
  | None -> ret_fallback name

(* ------------------------------------------------------------------ *)
(* Definitions and the driver                                          *)

type def = {
  d_key : string;
  d_path : string;
  d_loc : Location.t;
  d_expr : expression;
}

let collect_defs files =
  List.concat_map
    (fun (path, str) ->
      let m = Effects.module_name_of_path path in
      let rec items prefix str =
        List.concat_map
          (fun si ->
            match si.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.filter_map
                  (fun vb ->
                    match simple_var vb.pvb_pat with
                    | Some n ->
                        Some
                          {
                            d_key =
                              m ^ "."
                              ^ (if prefix = "" then n else prefix ^ "." ^ n);
                            d_path = path;
                            d_loc = vb.pvb_loc;
                            d_expr = vb.pvb_expr;
                          }
                    | None -> None)
                  vbs
            | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
                match pmb_expr.pmod_desc with
                | Pmod_structure s ->
                    items (if prefix = "" then sub else prefix ^ "." ^ sub) s
                | _ -> [])
            | _ -> [])
          str
      in
      items "" str)
    files

let seed_table decl defs =
  let table = Hashtbl.create 256 in
  List.iter
    (fun d ->
      if not (Hashtbl.mem table d.d_key) then begin
        let dentry = List.assoc_opt d.d_key decl.d_entries in
        let ps, _ = lparams d.d_expr in
        let nolabel = ref 0 in
        let u_params =
          List.map
            (fun (lbl, _default, pat) ->
              let key, label =
                match lbl with
                | Asttypes.Nolabel ->
                    let i = !nolabel in
                    incr nolabel;
                    (P i, None)
                | Asttypes.Labelled l | Asttypes.Optional l -> (L l, Some l)
              in
              (key, param_unit ~dentry key ~label ~pat))
            ps
        in
        let decl_ret =
          Option.bind dentry (fun de -> Option.map (fun r -> Dim r) de.de_ret)
        in
        let u_ret =
          match decl_ret with
          | Some u -> u
          | None -> (
              match suffix_unit (last_component d.d_key) with
              | Some dd -> Dim dd
              | None -> Unknown)
        in
        Hashtbl.add table d.d_key
          {
            u_path = d.d_path;
            u_loc = Some d.d_loc;
            u_params;
            u_ret;
            u_declared = decl_ret <> None;
          }
      end)
    defs;
  (* Declarations with no definition in the scanned set still check
     call sites (param units and return unit). *)
  List.iter
    (fun (key, de) ->
      if not (Hashtbl.mem table key) then
        Hashtbl.add table key
          {
            u_path = "";
            u_loc = None;
            u_params = List.map (fun (k, dd) -> (k, Dim dd)) de.de_params;
            u_ret =
              (match de.de_ret with Some dd -> Dim dd | None -> Unknown);
            u_declared = de.de_ret <> None;
          })
    decl.d_entries;
  table

let ctx_for ~emit ~decl ~table ~check_mismatch ~check_boundary ~boundary d =
  {
    emit;
    path = d.d_path;
    current_module = module_of_key d.d_key;
    table;
    decl;
    diags = [];
    boundary;
    check_mismatch;
    check_boundary;
  }

let infer_def ctx table d =
  let dentry = List.assoc_opt d.d_key ctx.decl.d_entries in
  let ps, body = lparams d.d_expr in
  List.iter
    (fun (_, default, _) ->
      Option.iter (fun de -> ignore (infer ctx [] de)) default)
    ps;
  let env = bind_params ~dentry [] ps in
  let u = infer ctx env body in
  ignore table;
  u

let run ~decl ~mismatch:check_mismatch ~boundary:check_boundary files =
  let defs = collect_defs files in
  let table = seed_table decl defs in
  (* Only the first definition of a key owns the table entry; shadowed
     duplicates (same module name in two directories) are walked for
     local findings but never feed the summary. *)
  let owns d =
    match Hashtbl.find_opt table d.d_key with
    | Some fe -> fe.u_loc = Some d.d_loc && fe.u_path = d.d_path
    | None -> false
  in
  let boundary = Hashtbl.create 32 in
  (* Monotone fixpoint on return units: Unknown entries may become Dim
     as callee returns become known; nothing ever changes once Dim. *)
  let sweep () =
    let changed = ref false in
    List.iter
      (fun d ->
        match Hashtbl.find_opt table d.d_key with
        | Some fe when owns d -> (
            let ctx =
              ctx_for ~emit:false ~decl ~table ~check_mismatch ~check_boundary
                ~boundary d
            in
            match (fe.u_declared, fe.u_ret, infer_def ctx table d) with
            | false, Unknown, Dim dd when dd <> [] ->
                fe.u_ret <- Dim dd;
                changed := true
            | _ -> ())
        | _ -> ())
      defs;
    !changed
  in
  let max_sweeps = 8 in
  let rec go n = if n < max_sweeps && sweep () then go (n + 1) in
  go 0;
  (* Emission pass. *)
  let diags = ref [] in
  List.iter
    (fun d ->
      let ctx =
        ctx_for ~emit:true ~decl ~table ~check_mismatch ~check_boundary
          ~boundary d
      in
      let u = infer_def ctx table d in
      (match Hashtbl.find_opt table d.d_key with
      | Some fe when owns d -> (
          match (fe.u_ret, u) with
          | Dim rd, Dim bd
            when (not (dim_equal rd bd))
                 && (fe.u_declared
                    || suffix_unit (last_component d.d_key) <> None) ->
              ctx.diags <-
                Diagnostic.make ~file:d.d_path ~loc:d.d_loc
                  ~rule:"unit-mismatch"
                  (Printf.sprintf "%s returns unit %s but its %s says %s"
                     d.d_key (dim_to_string bd)
                     (if fe.u_declared then "units.decl entry" else "name")
                     (dim_to_string rd))
                :: ctx.diags
          | _ -> ())
      | _ -> ());
      diags := List.rev_append ctx.diags !diags)
    defs;
  let boundary_diags =
    Hashtbl.fold
      (fun (key, akey) (path, loc) acc ->
        Diagnostic.make ~file:path ~loc ~rule:"unit-unannotated-boundary"
          (Printf.sprintf
             "%s of %s receives unit-carrying arguments but has no declared \
              unit; add a units.decl entry or a unit-suffix name"
             (akey_to_string akey) key)
        :: acc)
      boundary []
  in
  List.rev_append boundary_diags !diags
