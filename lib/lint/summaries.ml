(* Whole-project join of the per-file effect summaries from [Effects]:
   a table keyed by normalized ["Module.fn"] plus a monotone fixpoint
   that propagates effects through cross-module calls. *)

type entry = {
  e_path : string;
  e_loc : Location.t;
  mutable e_effects : Effects.set;
  e_calls : Effects.call list;
}

type t = {
  table : (string, entry) Hashtbl.t;
  analyses : Effects.file_analysis list;
}

(* Keys under which a function is registered: ["Module.fn"] always, and
   for functions of nested modules ["Module.Sub.fn"] as well (the
   flattened [fn_name] already carries the ["Sub."] prefix). *)
let keys_of fa (fn : Effects.fn_summary) = [ fa.Effects.fa_module ^ "." ^ fn.fn_name ]

(* The pool implementation is excluded from the table: its entry points
   look wildly effectful from the inside (worker domains writing result
   slots), but the whole point of its contract is that [Pool.map] etc.
   are deterministic whenever their tasks are — which is exactly what
   the [par-race] rule checks at every call site. Leaving it in would
   smear its internal effects over every caller. *)
let is_pool_impl path =
  Filename.basename path = "pool.ml"
  && Filename.basename (Filename.dirname path) = "util"

let build analyses =
  let analyses =
    List.filter
      (fun (fa : Effects.file_analysis) -> not (is_pool_impl fa.fa_path))
      analyses
  in
  let table = Hashtbl.create 256 in
  List.iter
    (fun (fa : Effects.file_analysis) ->
      List.iter
        (fun (fn : Effects.fn_summary) ->
          List.iter
            (fun key ->
              (* First binding wins: duplicate module names across
                 libraries are rare here and ambiguous anyway. *)
              if not (Hashtbl.mem table key) then
                Hashtbl.add table key
                  {
                    e_path = fa.fa_path;
                    e_loc = fn.fn_loc;
                    e_effects = fn.fn_result.effects;
                    e_calls = fn.fn_result.calls;
                  })
            (keys_of fa fn))
        fa.fa_fns)
    analyses;
  { table; analyses }

(* Resolve a callee name against the table, from the point of view of
   [current_module]: an unqualified [f] means [CurrentModule.f]; a
   qualified [M.f] is looked up as written and, failing that, by its
   last two components (handles [Vod_epf.Engine.solve]-style paths that
   [Effects.normalize] didn't fully strip). *)
let resolve t ~current_module name =
  let candidates =
    if String.contains name '.' then
      let parts = String.split_on_char '.' name in
      let last2 =
        match List.rev parts with
        | f :: m :: _ -> [ m ^ "." ^ f ]
        | _ -> []
      in
      name :: last2
    else [ current_module ^ "." ^ name ]
  in
  List.find_map (fun k -> Hashtbl.find_opt t.table k) candidates

(* Map a callee's own effects onto the caller, given the provenance of
   the arguments at this call site: the callee mutating *its* arguments
   means the caller mutates whatever it passed in. *)
let effects_at_site ~(callee : Effects.set) ~(arg_roots : Effects.root list)
    ~in_try =
  let open Effects in
  let direct =
    inter callee
      (union
         (union
            (union (singleton Mutates_capture) (singleton Mutates_global))
            (union (singleton Io) (singleton Random)))
         (union
            (union (singleton Wallclock) (singleton Rng_state))
            (singleton Raises)))
  in
  (* A raise inside the callee is caught by the try around this call
     site; the other effects still happen before it is caught. *)
  let direct = if in_try then remove Raises direct else direct in
  if mem Mutates_args callee then
    match List.fold_left worst Local arg_roots with
    | Local -> direct
    | Param -> add Mutates_args direct
    | Global -> add Mutates_global direct
    | Captured -> add Mutates_capture direct
  else direct

(* One propagation sweep; returns true if any entry grew. *)
let sweep t =
  let changed = ref false in
  Hashtbl.iter
    (fun key entry ->
      let current_module =
        match String.index_opt key '.' with
        | Some i -> String.sub key 0 i
        | None -> key
      in
      List.iter
        (fun (c : Effects.call) ->
          match resolve t ~current_module c.callee with
          | None -> ()
          | Some callee ->
              let contributed =
                effects_at_site ~callee:callee.e_effects ~arg_roots:c.arg_roots
                  ~in_try:c.in_try
              in
              let merged = Effects.union entry.e_effects contributed in
              if merged <> entry.e_effects then begin
                entry.e_effects <- merged;
                changed := true
              end)
        entry.e_calls)
    t.table;
  !changed

let fixpoint t =
  (* Effect sets only grow and are drawn from a finite lattice, so this
     terminates; the bound is a safety valve, not a tuning knob. *)
  let max_sweeps = 64 in
  let rec go n = if n < max_sweeps && sweep t then go (n + 1) in
  go 0

let of_analyses analyses =
  let t = build analyses in
  fixpoint t;
  t

(* Effects of an arbitrary [Effects.result] (e.g. a capture-analyzed
   closure body) once its residual calls are resolved through the
   table. Calls that resolve nowhere are assumed pure. *)
let effects_of_result t ~current_module (r : Effects.result) =
  List.fold_left
    (fun acc (c : Effects.call) ->
      match resolve t ~current_module c.callee with
      | None -> acc
      | Some callee ->
          Effects.union acc
            (effects_at_site ~callee:callee.e_effects ~arg_roots:c.arg_roots
               ~in_try:c.in_try))
    r.effects r.calls

let effects_of_name t ~current_module name =
  match resolve t ~current_module name with
  | None -> None
  | Some e -> Some e.e_effects

(* Whether a call to [name], as seen from [current_module], can exit
   exceptionally per the closed summaries. Unresolvable callees are
   assumed non-raising — same optimistic direction as the effect rules,
   backstopped here by the syntactic raisers the CFG sees directly. *)
let may_raise t ~current_module name =
  match effects_of_name t ~current_module name with
  | Some e -> Effects.mem Effects.Raises e
  | None -> false

let find t key = Hashtbl.find_opt t.table key
