(* Inline suppression comments.

   A comment of the form

     (* vodlint-disable rule-a rule-b *)

   suppresses the named rules on the comment's own line and on the line
   directly below it (so a justification comment can sit on its own line
   above the flagged expression). With no rule ids the comment suppresses
   every rule on those lines. Ids may be separated by spaces or commas.

   Detection is textual (substring scan per line) rather than AST-based:
   comments do not survive parsing, and a per-line scan keeps the
   mechanism predictable for users reading the source. *)

type t = (int, string list option) Hashtbl.t
(* line -> Some rule-ids | None meaning "all rules" *)

let marker = "vodlint-disable"

let is_id_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Rule ids following the marker, up to the closing "*)" if present. *)
let ids_after line start =
  let n = String.length line in
  let rec find_close i =
    if i + 1 >= n then n else if line.[i] = '*' && line.[i + 1] = ')' then i else find_close (i + 1)
  in
  let stop = find_close start in
  let chunk = String.sub line start (stop - start) in
  String.split_on_char ' ' chunk
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok <> "" && String.for_all is_id_char tok then Some tok else None)

let find_marker line =
  let n = String.length line and m = String.length marker in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else go (i + 1)
  in
  go 0

let has_close line =
  let n = String.length line in
  let rec go i = i + 1 < n && ((line.[i] = '*' && line.[i + 1] = ')') || go (i + 1)) in
  go 0

let scan src : t =
  let table = Hashtbl.create 8 in
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let add lineno entry =
    let merged =
      match (Hashtbl.find_opt table lineno, entry) with
      | Some None, _ | _, None -> None
      | Some (Some old_ids), Some ids -> Some (old_ids @ ids)
      | None, some -> some
    in
    Hashtbl.replace table lineno merged
  in
  Array.iteri
    (fun idx line ->
      match find_marker line with
      | None -> ()
      | Some after ->
          let entry = match ids_after line after with [] -> None | ids -> Some ids in
          (* The marker's comment may span several lines; suppress every
             line of the comment so the covered code line is always the
             one right after the closing "*)". *)
          let rec close_idx i =
            if i >= Array.length lines || has_close lines.(i) then i else close_idx (i + 1)
          in
          let last = Stdlib.min (close_idx idx) (Array.length lines - 1) in
          for l = idx + 1 to last + 1 do
            add l entry
          done)
    lines;
  table

let suppressed (table : t) ~line ~rule =
  let matches = function
    | None -> true
    | Some ids -> List.mem rule ids
  in
  let at l = match Hashtbl.find_opt table l with Some e -> matches e | None -> false in
  at line || at (line - 1)
