(* Phase-2 rules: whole-project checks that run on the effect summaries
   (and, for float-order, the raw parsetrees) of every implementation
   file at once. They exist to defend the two determinism contracts the
   repro depends on: the pool's bit-identical-at-any-job-count contract
   (par-race) and run-to-run reproducibility of every reported number
   (float-order, wallclock-in-solver). *)

open Parsetree

type t = { id : string; doc : string }

let all =
  [
    {
      id = "par-race";
      doc =
        "task reaching Pool.map/mapi/iteri/map_reduce (transitively) mutates \
         captured or module-level state, does I/O, or uses Random/wall-clock";
    };
    {
      id = "float-order";
      doc =
        "float accumulation inside Hashtbl.iter/fold: the sum depends on \
         table history; fold over sorted keys instead";
    };
    {
      id = "wallclock-in-solver";
      doc =
        "Sys.time/Unix.gettimeofday in lib/ outside lib/obs: wall-clock \
         readings must never feed solver numerics (the metrics layer is the \
         one quarantined clock user)";
    };
    {
      id = "obs-taint";
      doc =
        "Obs reading API (Obs.read/names/report/to_json/write_json) used in \
         lib/ outside lib/obs: metric values must never flow back into \
         solver numerics; reading belongs to the bin/ and bench/ front ends";
    };
    {
      id = "unit-mismatch";
      doc =
        "units-of-measure conflict: adding/subtracting/comparing values of \
         different inferred units, or passing an argument whose unit \
         contradicts the parameter's declared or name-derived unit (seeded \
         from _gb/_mbps/_s/... suffixes and units.decl)";
    };
    {
      id = "unit-unannotated-boundary";
      doc =
        "a unit-carrying value flows into a parameter of a units.decl-covered \
         core module that has no declared or name-derived unit; annotate the \
         parameter in units.decl or give it a unit-suffix name";
    };
    {
      id = "alloc-in-hot";
      doc =
        "heap allocation (closure, list, tuple, ref, boxed float) inside the \
         call-graph closure of Pool task bodies or the serving inner loops \
         (Sim/Playout/Capacity/Router/Fleet/Metrics), ranked by obs phase";
    };
    {
      id = "proto-leak";
      doc =
        "a value acquired through a protocols.decl acquire function \
         (Loop.create, Pool.create, open_out, ...) can reach the end of its \
         function on some normal path without its declared release, or its \
         result is discarded outright";
    };
    {
      id = "proto-double-release";
      doc =
        "a declared release function applied to a value already released on \
         every path to that point (close_out twice, Loop.finish after \
         Loop.finish, ...)";
    };
    {
      id = "missing-protect";
      doc =
        "every normal path releases the acquired value, but the span crosses \
         a call that may raise and the exceptional path skips the release; \
         wrap the span in Fun.protect ~finally";
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let in_lib path = has_prefix "lib/" path || has_prefix "./lib/" path

(* lib/obs is the quarantined observability layer: the one lib/
   directory allowed to read the clock (wallclock-in-solver) and to
   read registries back (obs-taint) — its whole purpose. *)
let in_obs path = has_prefix "lib/obs/" path || has_prefix "./lib/obs/" path

(* The pool implementation itself writes per-task result slots from
   inside its own worker loop; that is the one sanctioned shared-state
   mutation (ordered, disjoint indices). *)
let is_pool_impl path =
  Filename.basename path = "pool.ml"
  && Filename.basename (Filename.dirname path) = "util"

let lid_name (lid : Longident.t) = String.concat "." (Longident.flatten lid)

let ident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (lid_name txt) | _ -> None

(* ------------------------------------------------------------------ *)
(* par-race                                                            *)

let race_kinds =
  Effects.
    [
      (Mutates_capture, "mutates captured state");
      (Mutates_global, "mutates module-level state");
      (Io, "performs I/O");
      (Random, "draws from the global Random generator");
      (Wallclock, "reads the wall clock");
    ]

let race_reasons effects =
  List.filter_map
    (fun (k, msg) -> if Effects.mem k effects then Some msg else None)
    race_kinds

let par_race ~table (fa : Effects.file_analysis) =
  if is_pool_impl fa.fa_path then []
  else
    List.filter_map
      (fun (site : Effects.pool_site) ->
        let effects =
          match site.target with
          | Effects.Closure r ->
              Summaries.effects_of_result table ~current_module:fa.fa_module r
          | Effects.Named n -> (
              match
                Summaries.effects_of_name table ~current_module:fa.fa_module n
              with
              | Some e -> e
              | None -> Effects.empty)
          | Effects.Opaque -> Effects.empty
        in
        match race_reasons effects with
        | [] -> None
        | reasons ->
            Some
              (Diagnostic.make ~file:fa.fa_path ~loc:site.site_loc
                 ~rule:"par-race"
                 (Printf.sprintf
                    "task passed to %s %s; parallel tasks would race and break \
                     the pool's bit-determinism contract (thread per-task \
                     state through the function or use the task-indexed Rng \
                     streams)"
                    site.entry
                    (String.concat ", " reasons))))
      fa.fa_sites

(* ------------------------------------------------------------------ *)
(* float-order                                                         *)

let float_ops = [ "+."; "-."; "*." ]

let mentions name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ce ->
          (match ce.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when n = name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ce);
    }
  in
  it.expr it e;
  !found

let rec fun_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let ps, b = fun_params body in
      (pat :: ps, b)
  | Pexp_newtype (_, body) -> fun_params body
  | _ -> ([], e)

let pat_names p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pp ->
          (match pp.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pp);
    }
  in
  it.pat it p;
  !acc

(* Flag float-arithmetic applications inside [body] where some operand
   mentions one of [names] (fold accumulators), at the operator's
   location. *)
let float_ops_mentioning ~file ~names body =
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ce ->
          (match ce.pexp_desc with
          | Pexp_apply (f, args) -> (
              match ident_of f with
              | Some op when List.mem op float_ops ->
                  if
                    List.exists
                      (fun (_, a) -> List.exists (fun n -> mentions n a) names)
                      args
                  then
                    diags :=
                      Diagnostic.make ~file ~loc:ce.pexp_loc ~rule:"float-order"
                        "float accumulation inside Hashtbl.fold: the total \
                         depends on table insertion/resize history; fold over \
                         sorted keys (Stats_acc.sorted_keys) instead"
                      :: !diags
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ce);
    }
  in
  it.expr it body;
  !diags

(* Flag [r := rhs] inside an iter body where [rhs] reads [r] back and
   performs float arithmetic — an order-dependent running sum. *)
let float_accum_assigns ~file body =
  let diags = ref [] in
  let has_float_op e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ce ->
            (match ce.pexp_desc with
            | Pexp_apply (f, _) -> (
                match ident_of f with
                | Some op when List.mem op float_ops -> found := true
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self ce);
      }
    in
    it.expr it e;
    !found
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ce ->
          (match ce.pexp_desc with
          | Pexp_apply (f, [ (_, lhs); (_, rhs) ]) when ident_of f = Some ":="
            -> (
              match ident_of lhs with
              | Some r when mentions r rhs && has_float_op rhs ->
                  diags :=
                    Diagnostic.make ~file ~loc:ce.pexp_loc ~rule:"float-order"
                      "float accumulation inside Hashtbl.iter: the running \
                       sum depends on table insertion/resize history; fold \
                       over sorted keys (Stats_acc.sorted_keys) instead"
                    :: !diags
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ce);
    }
  in
  it.expr it body;
  !diags

let float_order ~file (str : structure) =
  let diags = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ce ->
          (match ce.pexp_desc with
          | Pexp_apply (f, args) -> (
              match Option.map Effects.normalize (ident_of f) with
              | Some "Hashtbl.iter" -> (
                  match args with
                  | (_, fn) :: _ -> (
                      match fun_params fn with
                      | _ :: _, body ->
                          diags := float_accum_assigns ~file body @ !diags
                      | [], _ -> ())
                  | [] -> ())
              | Some "Hashtbl.fold" -> (
                  match args with
                  | (_, fn) :: _ -> (
                      match fun_params fn with
                      | [ _; _; acc_pat ], body ->
                          let names = pat_names acc_pat in
                          if names <> [] then
                            diags :=
                              float_ops_mentioning ~file ~names body @ !diags
                      | _ -> ())
                  | [] -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ce);
    }
  in
  it.structure it str;
  !diags

(* ------------------------------------------------------------------ *)
(* wallclock-in-solver                                                 *)

let wallclock_names = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let wallclock ~file (str : structure) =
  if (not (in_lib file)) || in_obs file then []
  else begin
    let diags = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ce ->
            (match ce.pexp_desc with
            | Pexp_ident { txt; _ }
              when List.mem (Effects.normalize (lid_name txt)) wallclock_names
              ->
                diags :=
                  Diagnostic.make ~file ~loc:ce.pexp_loc
                    ~rule:"wallclock-in-solver"
                    "wall-clock reading in lib/: time must never feed solver \
                     numerics; derive values from inputs, or suppress with \
                     the invariant that this only decorates reports"
                  :: !diags
            | _ -> ());
            Ast_iterator.default_iterator.expr self ce);
      }
    in
    it.structure it str;
    !diags
  end

(* ------------------------------------------------------------------ *)
(* obs-taint                                                           *)

(* The recording half of Vod_obs.Obs (incr/observe/push/phase/...) is
   free to appear anywhere: it is write-only and no-ops without a
   registry. The *reading* half is how a metric value could leak back
   into solver numerics, so under lib/ (outside lib/obs itself) any
   mention of it is a finding. Matching is on the normalized qualified
   name, which covers [Vod_obs.Obs.read], [Obs.read] after [module Obs
   = Vod_obs.Obs], and [Obs.read] under [open Vod_obs] alike. *)
let obs_readers =
  [ "Obs.read"; "Obs.names"; "Obs.report"; "Obs.to_json"; "Obs.write_json" ]

let obs_taint ~file (str : structure) =
  if (not (in_lib file)) || in_obs file then []
  else begin
    let diags = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ce ->
            (match ce.pexp_desc with
            | Pexp_ident { txt; _ }
              when List.mem (Effects.normalize (lid_name txt)) obs_readers ->
                diags :=
                  Diagnostic.make ~file ~loc:ce.pexp_loc ~rule:"obs-taint"
                    "Obs reading API in lib/: a metric value read here could \
                     feed solver numerics and break determinism; export \
                     registries from the bin/ or bench/ front ends instead"
                  :: !diags
            | _ -> ());
            Ast_iterator.default_iterator.expr self ce);
      }
    in
    it.structure it str;
    !diags
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run ?(disabled = []) ?(units_decl = Units.empty_decl)
    ?(protocols_decl = Proto.empty_decl) (files : (string * structure) list) =
  let enabled id = not (List.mem id disabled) in
  let analyses =
    List.map (fun (path, str) -> Effects.analyze_impl ~path str) files
  in
  let table = Summaries.of_analyses analyses in
  let per_file =
    List.concat_map
      (fun ((path, str), fa) ->
        (if enabled "par-race" then par_race ~table fa else [])
        @ (if enabled "float-order" then float_order ~file:path str else [])
        @ (if enabled "wallclock-in-solver" then wallclock ~file:path str
           else [])
        @ (if enabled "obs-taint" then obs_taint ~file:path str else []))
      (List.combine files analyses)
  in
  let units_diags =
    let mismatch = enabled "unit-mismatch" in
    let boundary = enabled "unit-unannotated-boundary" in
    if mismatch || boundary then
      Units.run ~decl:units_decl ~mismatch ~boundary files
    else []
  in
  let hot_diags = if enabled "alloc-in-hot" then Hotpath.run files else [] in
  let proto_diags =
    let leak = enabled "proto-leak" in
    let double = enabled "proto-double-release" in
    let protect = enabled "missing-protect" in
    if leak || double || protect then
      Proto.run ~decl:protocols_decl ~leak ~double ~protect ~summaries:table
        files
    else []
  in
  per_file @ units_diags @ hot_diags @ proto_diags
