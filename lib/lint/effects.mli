(** Phase-1 of the whole-project analysis: syntactic per-function effect
    summaries, computed independently for each file. Cross-module
    propagation happens in {!Summaries}; the project rules that consume
    both live in {!Project_rules}. *)

(** {1 Effect kinds} *)

type kind =
  | Mutates_capture  (** writes state captured from an enclosing scope *)
  | Mutates_global   (** writes module-level / other-module state *)
  | Mutates_args     (** writes state reachable from its own parameters *)
  | Io               (** console / file / channel I/O *)
  | Random           (** the global [Stdlib.Random] generator *)
  | Wallclock        (** [Sys.time] / [Unix.gettimeofday] / [Unix.time] *)
  | Rng_state        (** advances an explicit [Vod_util.Rng] stream *)
  | Raises
      (** contains an explicit [raise]/[failwith]/[invalid_arg]/[assert]
          outside any [try] — the body may exit exceptionally. Stdlib
          partial functions ([Hashtbl.find], [Option.get], ...) are
          deliberately not counted: they raise on some inputs only, and
          counting them would make nearly everything may-raise. *)

(** A set of effect kinds (bitmask; cheap to union during fixpoints). *)
type set

val empty : set
(** The pure (no-effect) summary. *)

val singleton : kind -> set
(** The set containing exactly one effect kind. *)

val add : kind -> set -> set
(** [add k s] is [union (singleton k) s]. *)

val mem : kind -> set -> bool
(** Membership test. *)

val union : set -> set -> set
(** Set union — the join used when merging callee summaries. *)

val inter : set -> set -> set
(** Set intersection. *)

val remove : kind -> set -> set
(** Drop one kind from a set (used to mask [Raises] at in-try call
    sites). *)

val is_empty : set -> bool
(** Whether the set is {!empty} (the function looks pure). *)

val describe : kind -> string
(** Human-readable phrase, e.g. ["mutates captured state"]. *)

val to_string : set -> string
(** Comma-joined {!describe} of every member, in a fixed order. *)

(** {1 Value provenance} *)

(** Where a value came from, coarsely. Ordered by badness for the
    purposes of mutation classification: mutating a [Local] is harmless,
    mutating a [Captured] inside a pool task is a race. *)
type root = Local | Param | Global | Captured

val worst : root -> root -> root

(** {1 Analysis results} *)

type call = {
  callee : string;         (** normalized name, e.g. ["Engine.solve"] *)
  arg_roots : root list;
  call_loc : Location.t;
  in_try : bool;
      (** the call site sits lexically inside a [try] body (or a [match]
          with [exception] cases): the callee's [Raises] is caught here
          and must not propagate to the caller's summary *)
}

type result = {
  effects : set;           (** effects proven directly in the body *)
  calls : call list;       (** unresolved calls, for {!Summaries} *)
}

(** What a [Pool.*] call runs per task. *)
type target =
  | Closure of result  (** literal closure / local fn, capture-analyzed *)
  | Named of string    (** top-level function; resolve via summaries *)
  | Opaque             (** can't see into it (field access, param, ...) *)

type pool_site = {
  site_loc : Location.t;
  entry : string;          (** ["Pool.map"], ["Pool.iteri"], ... *)
  target : target;
}

type fn_summary = {
  fn_name : string;        (** name within the module, e.g. ["solve"] *)
  fn_loc : Location.t;
  fn_result : result;
}

type file_analysis = {
  fa_path : string;
  fa_module : string;      (** ["Engine"] for [lib/epf/engine.ml] *)
  fa_fns : fn_summary list;
  fa_sites : pool_site list;
}

val normalize : string -> string
(** Strip a leading [Stdlib.] or [Vod_*] wrapper component from a
    qualified name, so ["Vod_util.Pool.map"] and ["Pool.map"] coincide. *)

val module_name_of_path : string -> string
(** ["lib/util/pool.ml"] → ["Pool"]: the module name a path defines,
    used to key cross-module summary lookups. *)

val analyze_impl : path:string -> Parsetree.structure -> file_analysis
(** Analyze one implementation file: per-function effect summaries plus
    every pool submission site. Purely syntactic — never raises on odd
    but parseable code. *)
