(** Phase-1 of the whole-project analysis: syntactic per-function effect
    summaries, computed independently for each file. Cross-module
    propagation happens in {!Summaries}; the project rules that consume
    both live in {!Project_rules}. *)

(** {1 Effect kinds} *)

type kind =
  | Mutates_capture  (** writes state captured from an enclosing scope *)
  | Mutates_global   (** writes module-level / other-module state *)
  | Mutates_args     (** writes state reachable from its own parameters *)
  | Io               (** console / file / channel I/O *)
  | Random           (** the global [Stdlib.Random] generator *)
  | Wallclock        (** [Sys.time] / [Unix.gettimeofday] / [Unix.time] *)
  | Rng_state        (** advances an explicit [Vod_util.Rng] stream *)

(** A set of effect kinds (bitmask; cheap to union during fixpoints). *)
type set

val empty : set
val singleton : kind -> set
val add : kind -> set -> set
val mem : kind -> set -> bool
val union : set -> set -> set
val inter : set -> set -> set
val is_empty : set -> bool

val describe : kind -> string
(** Human-readable phrase, e.g. ["mutates captured state"]. *)

val to_string : set -> string
(** Comma-joined {!describe} of every member, in a fixed order. *)

(** {1 Value provenance} *)

(** Where a value came from, coarsely. Ordered by badness for the
    purposes of mutation classification: mutating a [Local] is harmless,
    mutating a [Captured] inside a pool task is a race. *)
type root = Local | Param | Global | Captured

val worst : root -> root -> root

(** {1 Analysis results} *)

type call = {
  callee : string;         (** normalized name, e.g. ["Engine.solve"] *)
  arg_roots : root list;
  call_loc : Location.t;
}

type result = {
  effects : set;           (** effects proven directly in the body *)
  calls : call list;       (** unresolved calls, for {!Summaries} *)
}

(** What a [Pool.*] call runs per task. *)
type target =
  | Closure of result  (** literal closure / local fn, capture-analyzed *)
  | Named of string    (** top-level function; resolve via summaries *)
  | Opaque             (** can't see into it (field access, param, ...) *)

type pool_site = {
  site_loc : Location.t;
  entry : string;          (** ["Pool.map"], ["Pool.iteri"], ... *)
  target : target;
}

type fn_summary = {
  fn_name : string;        (** name within the module, e.g. ["solve"] *)
  fn_loc : Location.t;
  fn_result : result;
}

type file_analysis = {
  fa_path : string;
  fa_module : string;      (** ["Engine"] for [lib/epf/engine.ml] *)
  fa_fns : fn_summary list;
  fa_sites : pool_site list;
}

val normalize : string -> string
(** Strip a leading [Stdlib.] or [Vod_*] wrapper component from a
    qualified name, so ["Vod_util.Pool.map"] and ["Pool.map"] coincide. *)

val module_name_of_path : string -> string

val analyze_impl : path:string -> Parsetree.structure -> file_analysis
