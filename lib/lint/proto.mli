(** Phase-4b of the whole-project analysis: protocol / typestate
    dataflow over the {!Cfg} control-flow graphs.

    Protocols are declared in the repo-root [protocols.decl] (format in
    its header comment, mirroring [units.decl]): each names an acquire
    function whose {e result value} carries an obligation, the release
    functions that discharge it, optional handoff functions that
    transfer ownership elsewhere, and an optional sanctioned bracket
    (e.g. [Pool.with_pool]) quoted in messages.

    For every top-level function the pass tracks each acquire site
    through a per-site lattice — unreached < Held / Released < both —
    joined over branches, matches, loops and raise edges, and reports:

    - [proto-leak] — the obligation can reach the function's normal
      exit still held (some path misses the release), or the acquire's
      result is discarded outright;
    - [missing-protect] — every normal path releases, but the span
      crosses a statement that may raise (syntactic raisers, or calls
      whose closed {!Summaries} carry {!Effects.Raises}) and the
      exceptional path skips the release: the fix is [Fun.protect];
    - [proto-double-release] — a release applied to a value already
      definitely released on every path to that point.

    Tokens are tracked conservatively by name: binding the acquire's
    result extends the obligation to the bound variables (and to
    match-case aliases of them); passing a token to a call is a borrow;
    storing it in a record/tuple/array/constructor/ref, returning it, or
    capturing it in a closure the CFG cannot inline counts as an escape
    and silences every report for that site (ownership moved somewhere
    this intraprocedural pass cannot see). Module-level (non-function)
    bindings are program-lifetime resources and are not checked. *)

type decl
(** Parsed contents of a [protocols.decl] file. *)

exception Decl_error of string
(** Raised on a malformed declaration file. The CLI maps this to exit
    code 2 (configuration error), not a finding. *)

val empty_decl : decl
(** No protocols declared: all three rules are vacuous. *)

val decl_of_string : string -> decl
(** Parse declarations. Lines are
    [NAME acquire=Q.fn\[,Q.fn...\] release=Q.fn\[,...\]
    \[handoff=Q.fn,...\] \[bracket=Q.fn,...\]]; [#] starts a comment.
    Raises {!Decl_error} on malformed input (missing acquire/release,
    unknown keys, duplicate protocol names). *)

val load_decl : string -> decl
(** Load a declaration file; a missing file is {!empty_decl}.
    Raises {!Decl_error} on malformed contents. *)

val decl_values : decl -> string list
(** Every function name mentioned by the declarations, in file order —
    used by the stale-declaration check in [tools/check.sh] and its
    tests. *)

val run :
  decl:decl ->
  leak:bool ->
  double:bool ->
  protect:bool ->
  summaries:Summaries.t ->
  (string * Parsetree.structure) list ->
  Diagnostic.t list
(** Run the protocol dataflow over every implementation file at once.
    [leak]/[double]/[protect] gate the three rules; [summaries] supplies
    the interprocedural may-raise facts. Diagnostics are unsorted and
    unsuppressed — {!Engine} applies [vodlint-disable] filtering and
    ordering. *)
