(* Phase-4a: intraprocedural control-flow graphs over parsetree
   expressions. See cfg.mli for the node/edge model. The graph is built
   in one pass by [go], which threads a "current node" through the
   expression and returns the node where the expression's value is
   available; control constructs allocate fresh nodes and edges.

   Exceptional flow is an edge property, not extra nodes: every node
   records the single [handler] node a raise inside it lands on (the
   innermost enclosing try's handler entry, or the graph's [exn_exit]).
   The dataflow decides per-statement whether a raise can actually
   happen; the CFG only says where it would go. *)

open Parsetree

type stmt = Bind of pattern * expression | Eval of expression

type node = {
  mutable stmts_rev : stmt list;
  mutable succs_rev : int list;
  mutable handler : int;
}

type t = {
  nodes : node array;
  t_entry : int;
  t_exit : int;
  t_exn : int;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

type builder = { mutable nodes : node array; mutable len : int }

let new_node b ~handler =
  if b.len = Array.length b.nodes then begin
    let bigger =
      Array.make (2 * Array.length b.nodes)
        { stmts_rev = []; succs_rev = []; handler = 0 }
    in
    Array.blit b.nodes 0 bigger 0 b.len;
    b.nodes <- bigger
  end;
  b.nodes.(b.len) <- { stmts_rev = []; succs_rev = []; handler };
  b.len <- b.len + 1;
  b.len - 1

let link b from to_ =
  let n = b.nodes.(from) in
  if not (List.mem to_ n.succs_rev) then n.succs_rev <- to_ :: n.succs_rev

let add_stmt b node s =
  let n = b.nodes.(node) in
  n.stmts_rev <- s :: n.stmts_rev

(* ------------------------------------------------------------------ *)
(* Name tables                                                         *)

let ident_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let callee_name e = Option.map Effects.normalize (ident_of e)

let raise_family = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Calls that run a literal closure argument zero or more times and
   never store it: the closure body is inlined as a loop. *)
let iterators =
  [
    "List.iter"; "List.iteri"; "List.iter2"; "List.map"; "List.mapi";
    "List.rev_map"; "List.concat_map"; "List.filter_map"; "List.filter";
    "List.fold_left"; "List.fold_right"; "List.for_all"; "List.exists";
    "List.find"; "List.find_opt"; "List.find_map"; "List.partition";
    "List.sort"; "List.stable_sort"; "List.sort_uniq"; "List.init";
    "Array.iter"; "Array.iteri"; "Array.iter2"; "Array.map"; "Array.mapi";
    "Array.map2"; "Array.fold_left"; "Array.fold_right"; "Array.for_all";
    "Array.exists"; "Array.init"; "Array.sort"; "Array.stable_sort";
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.filter_map_inplace";
    "Option.iter"; "Option.map"; "Option.fold"; "Option.bind";
    "Seq.iter"; "Seq.map"; "Seq.filter"; "Seq.fold_left";
    "Queue.iter"; "Queue.fold"; "Stack.iter"; "Stack.fold";
    "Pool.map"; "Pool.mapi"; "Pool.iteri"; "Pool.map_reduce";
  ]

(* Calls that run a literal closure argument exactly once, in place:
   the closure body is inlined linearly. Fun.protect is handled
   structurally before this list is consulted. *)
let once_runners =
  [
    "Obs.phase"; "Obs.with_run"; "Obs.batch_chunk";
    "Checkpoint.run"; "Checkpoint.with_stdout_to"; "Pool.with_pool";
  ]

let borrows_closures name =
  name = "Fun.protect" || List.mem name iterators
  || List.mem name once_runners

(* ------------------------------------------------------------------ *)
(* Lambda plumbing                                                     *)

(* The body of a literal lambda, with every leading parameter stripped;
   None for anything that is not a single-body lambda (multi-case
   [function] stays opaque — inlining would need a scrutinee). *)
let lambda_body e =
  let rec strip e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, inner) -> strip inner
    | Pexp_newtype (_, inner) -> strip inner
    | Pexp_constraint (inner, _) -> strip inner
    | _ -> e
  in
  let rec first e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, inner) -> Some (strip inner)
    | Pexp_newtype (_, inner) | Pexp_constraint (inner, _) -> first inner
    | _ -> None
  in
  first e

let find_lambda args =
  List.find_map
    (fun (_, a) -> Option.map (fun body -> (a, body)) (lambda_body a))
    args

let labelled_lambda label args =
  List.find_map
    (fun (lbl, a) ->
      match lbl with
      | Asttypes.Labelled l when l = label ->
          Option.map (fun body -> (a, body)) (lambda_body a)
      | _ -> None)
    args

(* A case pattern that catches everything (so an uncaught-exception
   edge out of the handler entry is not needed). *)
let catch_all_case c =
  c.pc_guard = None
  && (match c.pc_lhs.ppat_desc with
     | Ppat_any | Ppat_var _ -> true
     | _ -> false)

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)

(* [go b ~bind cur handler e] appends the evaluation of [e] to the
   graph starting at node [cur] (raises landing on [handler]) and
   returns the node holding [e]'s value; [bind] is the pattern that
   value is bound to, if any. *)
let rec go b ~bind cur handler e =
  let atomic () =
    add_stmt b cur (match bind with Some p -> Bind (p, e) | None -> Eval e);
    cur
  in
  match e.pexp_desc with
  | Pexp_sequence (a, rest) ->
      let cur = go b ~bind:None cur handler a in
      go b ~bind cur handler rest
  | Pexp_let (_, vbs, body) ->
      let cur =
        List.fold_left
          (fun cur vb -> go b ~bind:(Some vb.pvb_pat) cur handler vb.pvb_expr)
          cur vbs
      in
      go b ~bind cur handler body
  | Pexp_constraint (inner, _) | Pexp_newtype (_, inner) ->
      go b ~bind cur handler inner
  | Pexp_open (_, inner)
  | Pexp_letmodule (_, _, inner)
  | Pexp_letexception (_, inner) ->
      go b ~bind cur handler inner
  | Pexp_ifthenelse (cond, then_e, else_o) ->
      let cur = go b ~bind:None cur handler cond in
      let tn = new_node b ~handler in
      link b cur tn;
      let t_end = go b ~bind tn handler then_e in
      let e_end =
        match else_o with
        | Some else_e ->
            let en = new_node b ~handler in
            link b cur en;
            go b ~bind en handler else_e
        | None -> cur
      in
      let join = new_node b ~handler in
      link b t_end join;
      link b e_end join;
      join
  | Pexp_match (scrut, cases) ->
      let exn_cases, val_cases = List.partition is_exception_case cases in
      let scrut_end, exn_entry =
        if exn_cases = [] then (go b ~bind:None cur handler scrut, None)
        else begin
          (* [match e with exception ...]: the exception cases handle
             raises from the scrutinee evaluation only. *)
          let h = new_node b ~handler in
          let sn = new_node b ~handler:h in
          link b cur sn;
          (go b ~bind:None sn h scrut, Some h)
        end
      in
      let join = new_node b ~handler in
      let build_case from ~alias c =
        let n = new_node b ~handler in
        link b from n;
        (* Case-bound variables alias the scrutinee's value, so a
           protocol token flows into [Some c -> ... c ...] arms. *)
        if alias then add_stmt b n (Bind (c.pc_lhs, scrut));
        let n =
          match c.pc_guard with
          | Some g -> go b ~bind:None n handler g
          | None -> n
        in
        let n_end = go b ~bind n handler c.pc_rhs in
        link b n_end join
      in
      List.iter (build_case scrut_end ~alias:true) val_cases;
      (match exn_entry with
      | None -> ()
      | Some h ->
          List.iter (build_case h ~alias:false) exn_cases;
          if not (List.exists catch_all_case exn_cases) then link b h handler);
      join
  | Pexp_try (body, cases) ->
      let h = new_node b ~handler in
      let bn = new_node b ~handler:h in
      link b cur bn;
      let b_end = go b ~bind bn h body in
      let join = new_node b ~handler in
      link b b_end join;
      List.iter
        (fun c ->
          let n = new_node b ~handler in
          link b h n;
          let n =
            match c.pc_guard with
            | Some g -> go b ~bind:None n handler g
            | None -> n
          in
          let n_end = go b ~bind n handler c.pc_rhs in
          link b n_end join)
        cases;
      (* A non-matching exception falls through to the outer handler. *)
      if not (List.exists catch_all_case cases) then link b h handler;
      join
  | Pexp_while (cond, body) ->
      let head = new_node b ~handler in
      link b cur head;
      let head_end = go b ~bind:None head handler cond in
      let bn = new_node b ~handler in
      link b head_end bn;
      let b_end = go b ~bind:None bn handler body in
      link b b_end head;
      let after = new_node b ~handler in
      link b head_end after;
      after
  | Pexp_for (_, lo, hi, _, body) ->
      let cur = go b ~bind:None cur handler lo in
      let cur = go b ~bind:None cur handler hi in
      let head = new_node b ~handler in
      link b cur head;
      let bn = new_node b ~handler in
      link b head bn;
      let b_end = go b ~bind:None bn handler body in
      link b b_end head;
      let after = new_node b ~handler in
      link b head after;
      after
  | Pexp_apply (f, args) -> (
      match callee_name f with
      | Some name when List.mem name raise_family ->
          (* The raise ends this path; the continuation is unreachable
             (a fresh node with no predecessors). *)
          add_stmt b cur (Eval e);
          new_node b ~handler
      | Some "ignore" -> (
          match args with
          | [ (_, a) ] -> go b ~bind:None cur handler a
          | _ -> atomic ())
      | Some "Fun.protect" -> (
          match (labelled_lambda "finally" args, find_main_thunk args) with
          | Some (_, fin), Some body ->
              (* Exceptional path: body's handler runs a copy of the
                 finally, then re-raises to the outer handler. *)
              let fh = new_node b ~handler in
              let fh_end = go b ~bind:None fh handler fin in
              link b fh_end handler;
              let bn = new_node b ~handler:fh in
              link b cur bn;
              let b_end = go b ~bind bn fh body in
              (* Normal path: a second copy of the finally, then on. *)
              let fn = new_node b ~handler in
              link b b_end fn;
              go b ~bind:None fn handler fin
          | _ -> atomic ())
      | Some name when List.mem name once_runners -> (
          match find_lambda args with
          | Some (lam, body) ->
              let cur = eval_other_args b cur handler args lam in
              let bn = new_node b ~handler in
              link b cur bn;
              let b_end = go b ~bind:None bn handler body in
              let after = new_node b ~handler in
              link b b_end after;
              (match bind with
              | Some p -> add_stmt b after (Bind (p, e))
              | None -> ());
              after
          | None -> atomic ())
      | Some name when List.mem name iterators -> (
          match find_lambda args with
          | Some (lam, body) ->
              (* Loop shape: the closure runs zero or more times, and an
                 exception inside it propagates to this call site. *)
              let cur = eval_other_args b cur handler args lam in
              let head = new_node b ~handler in
              link b cur head;
              let bn = new_node b ~handler in
              link b head bn;
              let b_end = go b ~bind:None bn handler body in
              link b b_end head;
              let after = new_node b ~handler in
              link b head after;
              (match bind with
              | Some p -> add_stmt b after (Bind (p, e))
              | None -> ());
              after
          | None -> atomic ())
      | Some _ | None -> atomic ())
  | _ -> atomic ()

and eval_other_args b cur handler args lam =
  List.fold_left
    (fun cur (_, a) -> if a == lam then cur else go b ~bind:None cur handler a)
    cur args

(* The protected thunk of Fun.protect: the last unlabelled lambda. *)
and find_main_thunk args =
  List.fold_left
    (fun acc (lbl, a) ->
      match lbl with
      | Asttypes.Nolabel -> (
          match lambda_body a with Some body -> Some body | None -> acc)
      | _ -> acc)
    None args

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, inner) -> strip_params inner
  | Pexp_newtype (_, inner) -> strip_params inner
  | Pexp_constraint (inner, _)
    when (match inner.pexp_desc with
         | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
         | _ -> false) ->
      strip_params inner
  | _ -> e

let build e =
  let b = { nodes = Array.make 16 { stmts_rev = []; succs_rev = []; handler = 0 }; len = 0 } in
  let exn = new_node b ~handler:0 in
  b.nodes.(exn).handler <- exn;
  let exit_n = new_node b ~handler:exn in
  let entry = new_node b ~handler:exn in
  let body = strip_params e in
  (match body.pexp_desc with
  | Pexp_function cases ->
      (* A root-level [function]: one branch per case over the (opaque)
         parameter. *)
      List.iter
        (fun c ->
          let n = new_node b ~handler:exn in
          link b entry n;
          let n =
            match c.pc_guard with
            | Some g -> go b ~bind:None n exn g
            | None -> n
          in
          let n_end = go b ~bind:None n exn c.pc_rhs in
          link b n_end exit_n)
        cases
  | _ ->
      let last = go b ~bind:None entry exn body in
      link b last exit_n);
  { nodes = Array.sub b.nodes 0 b.len; t_entry = entry; t_exit = exit_n; t_exn = exn }

let n_nodes (t : t) = Array.length t.nodes
let entry t = t.t_entry
let exit_node t = t.t_exit
let exn_exit t = t.t_exn
let stmts (t : t) i = List.rev t.nodes.(i).stmts_rev
let succs (t : t) i = List.rev t.nodes.(i).succs_rev
let handler (t : t) i = t.nodes.(i).handler
