(** Phase-3b of the whole-project analysis: heap allocation in hot
    paths ([alloc-in-hot]).

    The hot set is the call-graph closure of

    - every {!Vod_util.Pool} task body ([Pool.map]/[mapi]/[iteri]/
      [map_reduce] arguments), and
    - a fixed root table covering the serving inner loops: [Sim.play]/
      [Sim.run], [Resil.Playout.play]/[run], [Resil.Capacity.fits]/
      [reserve]/[expire], [Resil.Router.route], [Fleet.serve]/
      [serve_routed], [Metrics.add_stream].

    Each root carries the {!Vod_obs} phase-timer name it runs under and
    a rank, so findings cite the hot phase they sit in and can be
    triaged hottest-first.

    Inside a hot function the analysis flags allocations that happen
    {e per iteration} (inside a syntactic loop, an iterator callback,
    or a function reached from one — "loop-hot") or {e per call} for
    functions that are themselves called from loops:

    - closure allocation (a [fun] literal evaluated in the hot
      context, including iterator callbacks);
    - list building ([::], [List.map] and friends, [@]);
    - tuple construction and [ref] cells;
    - float boxing via polymorphic [compare]/[min]/[max] on floats or
      [Hashtbl] operations keyed by floats (flagged anywhere in a hot
      function — boxing is per call regardless of loops);
    - records and allocating calls ([Array.make], [Hashtbl.create],
      [Printf.sprintf], ...) only when inside a syntactic loop —
      building a data structure once per call is normal.

    Messages are line-number-free so baselines survive reformatting.
    [vodlint-disable alloc-in-hot] suppression applies as usual. *)

val run : (string * Parsetree.structure) list -> Diagnostic.t list
(** Run the hot-path allocation analysis over every implementation
    file at once. Diagnostics are unsorted and unsuppressed —
    {!Engine} applies [vodlint-disable] filtering and ordering. *)
