(** Accepted-findings baseline for [vodlint --project].

    Entries are [file TAB rule TAB message] triples — line-number-free
    on purpose, so a baseline survives edits elsewhere in the file. A
    finding covered by the baseline does not fail the build; a baseline
    entry no longer matched by any finding is reported as stale so the
    file shrinks as debt is paid down. *)

type entry = { b_file : string; b_rule : string; b_message : string }
type t = entry list

val empty : t
(** The baseline that accepts nothing. *)

val of_string : string -> t
(** Parse the serialized form; comment ([#]) and blank lines are
    skipped, malformed lines ignored. *)

val of_diagnostics : Diagnostic.t list -> t
(** Baseline accepting exactly the given findings (used by
    [--baseline-add]). *)

val to_string : t -> string
(** Serialized form, including the explanatory header; entries sorted
    and de-duplicated so the file is diff-stable. *)

val load : string -> t
(** Missing file loads as {!empty}. *)

val save : string -> t -> unit
(** Write {!to_string} to the given path. *)

type applied = {
  fresh : Diagnostic.t list;  (** findings not covered by the baseline *)
  baselined : int;            (** findings the baseline absorbed *)
  stale : entry list;         (** baseline entries matching nothing *)
}

val apply : t -> Diagnostic.t list -> applied
(** Partition findings against the baseline: what is fresh, what is
    absorbed, and which entries are stale. Stale entries are sorted
    and de-duplicated even if the baseline itself holds duplicates. *)

val entry_to_string : entry -> string
(** One serialized [file TAB rule TAB message] line (no newline). *)
