(** Accepted-findings baseline for [vodlint --project].

    Entries are [file TAB rule TAB message] triples — line-number-free
    on purpose, so a baseline survives edits elsewhere in the file. A
    finding covered by the baseline does not fail the build; a baseline
    entry no longer matched by any finding is reported as stale so the
    file shrinks as debt is paid down. *)

type entry = { b_file : string; b_rule : string; b_message : string }
type t = entry list

val empty : t
val of_string : string -> t
val of_diagnostics : Diagnostic.t list -> t
val to_string : t -> string
(** Serialized form, including the explanatory header; entries sorted
    and de-duplicated so the file is diff-stable. *)

val load : string -> t
(** Missing file loads as {!empty}. *)

val save : string -> t -> unit

type applied = {
  fresh : Diagnostic.t list;  (** findings not covered by the baseline *)
  baselined : int;            (** findings the baseline absorbed *)
  stale : entry list;         (** baseline entries matching nothing *)
}

val apply : t -> Diagnostic.t list -> applied
val entry_to_string : entry -> string
