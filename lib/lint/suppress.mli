(** Inline [(* vodlint-disable rule-id ... *)] suppression comments.

    A marker suppresses the listed rules (all rules when none are
    listed) on its own line and the line directly below, so it can be
    written either trailing the flagged expression or on a line of its
    own above it with a justification. *)

type t

(** Scan full source text for suppression markers. *)
val scan : string -> t

(** Is [rule] suppressed at [line] (1-based)? *)
val suppressed : t -> line:int -> rule:string -> bool
