(** Phase-2 (whole-project) rules, run over the {!Effects} /
    {!Summaries} view of every implementation file at once:

    - [par-race] — a task reaching [Pool.map/mapi/iteri/map_reduce]
      (directly, through a local helper, or through a cross-module
      callee) mutates captured or module-level state, performs I/O, or
      uses [Random]/wall-clock. Any of these breaks the pool's
      bit-determinism contract. Task-indexed [Vod_util.Rng] streams are
      the sanctioned pattern and do not fire.
    - [float-order] — float accumulation inside [Hashtbl.iter]/[fold];
      the sum depends on table insertion/resize history.
    - [wallclock-in-solver] — [Sys.time]/[Unix.gettimeofday]/[Unix.time]
      anywhere under [lib/]. *)

type t = { id : string; doc : string }

val all : t list
val find : string -> t option

val run :
  ?disabled:string list ->
  (string * Parsetree.structure) list ->
  Diagnostic.t list
(** Run every enabled project rule over the given [(path, ast)] pairs
    (implementation files only). Diagnostics are unsorted and
    unsuppressed — {!Engine} applies [vodlint-disable] filtering and
    ordering. *)
