(** Phase-2 (whole-project) rules, run over the {!Effects} /
    {!Summaries} view of every implementation file at once:

    - [par-race] — a task reaching [Pool.map/mapi/iteri/map_reduce]
      (directly, through a local helper, or through a cross-module
      callee) mutates captured or module-level state, performs I/O, or
      uses [Random]/wall-clock. Any of these breaks the pool's
      bit-determinism contract. Task-indexed [Vod_util.Rng] streams are
      the sanctioned pattern and do not fire.
    - [float-order] — float accumulation inside [Hashtbl.iter]/[fold];
      the sum depends on table insertion/resize history.
    - [wallclock-in-solver] — [Sys.time]/[Unix.gettimeofday]/[Unix.time]
      anywhere under [lib/] except [lib/obs/], the quarantined metrics
      layer whose timers are the sanctioned clock users.
    - [obs-taint] — the {!Vod_obs.Obs} reading API
      ([read]/[names]/[report]/[to_json]/[write_json]) anywhere under
      [lib/] except [lib/obs/] itself: a metric value read back inside
      the library could feed solver numerics, silently breaking the
      determinism contract the recording side is careful to keep.
      Exporting registries belongs to the [bin/] and [bench/] front
      ends.

    Phase-3 rules also dispatch from here:

    - [unit-mismatch] / [unit-unannotated-boundary] — the {!Units}
      interprocedural units-of-measure dataflow, seeded from name
      suffixes and the [units_decl] signature file;
    - [alloc-in-hot] — the {!Hotpath} allocation analysis over the
      call-graph closure of Pool task bodies and the serving inner
      loops.

    Phase-4 rules (the {!Cfg}/{!Proto} protocol dataflow, seeded from
    [protocols_decl]):

    - [proto-leak] — an acquired value can reach the function's normal
      exit unreleased, or the acquire's result is discarded;
    - [proto-double-release] — a release applied to a value already
      definitely released;
    - [missing-protect] — the acquire/release span crosses a call that
      may raise and the exceptional path skips the release
      ([Fun.protect] is the fix). *)

type t = { id : string; doc : string }

val all : t list
(** Every project rule, in presentation order (for [--list-rules]). *)

val find : string -> t option
(** Look a rule up by id. *)

val run :
  ?disabled:string list ->
  ?units_decl:Units.decl ->
  ?protocols_decl:Proto.decl ->
  (string * Parsetree.structure) list ->
  Diagnostic.t list
(** Run every enabled project rule over the given [(path, ast)] pairs
    (implementation files only). [units_decl] (default
    {!Units.empty_decl}) seeds the units dataflow; without it the
    boundary rule is vacuous. [protocols_decl] (default
    {!Proto.empty_decl}) seeds the protocol dataflow; without it the
    three [proto-*]/[missing-protect] rules are vacuous. Diagnostics
    are unsorted and unsuppressed — {!Engine} applies
    [vodlint-disable] filtering and ordering. *)
