(* Hot-path allocation analysis (see hotpath.mli). Two ingredients:
   a worklist over the call graph starting from Pool task bodies and a
   fixed root table of serving-loop entry points, and a syntactic walk
   of each hot function that tracks loop depth so only per-iteration
   (or per-call, for loop-hot functions) allocations fire. *)

open Parsetree

let lid_name (lid : Longident.t) = String.concat "." (Longident.flatten lid)

let ident_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_name txt)
  | _ -> None

(* Mirrors Effects.pool_entries / pool_task_label, which are not
   exported. *)
let pool_entries = [ "Pool.map"; "Pool.mapi"; "Pool.iteri"; "Pool.map_reduce" ]

let pool_task_label entry = if entry = "Pool.map_reduce" then "map" else "f"

(* Serving-loop roots: key, obs phase-timer name, rank (1 = hottest to
   triage first), and whether the function itself is called once per
   request/iteration so even its straight-line allocations count. *)
let roots =
  [
    ("Sim.play", "playout", 1, false);
    ("Sim.play_soa", "playout", 1, false);
    ("Sim.run", "playout", 1, false);
    ("Sim.run_soa", "playout", 1, false);
    ("Playout.play", "resil/playout", 2, false);
    ("Playout.play_soa", "resil/playout", 2, false);
    ("Playout.run", "resil/playout", 2, false);
    ("Playout.run_soa", "resil/playout", 2, false);
    ("Loop.play", "serve/play", 2, false);
    ("Loop.play_direct_soa", "serve/play", 2, false);
    ("Loop.play_faulted_soa", "serve/play", 2, false);
    ("Loop.play_soa", "serve/play", 2, false);
    ("Loop.run", "serve/play", 2, false);
    ("Loop.run_soa", "serve/play", 2, false);
    ("Capacity.fits", "resil/capacity", 3, true);
    ("Capacity.reserve", "resil/capacity", 3, true);
    ("Capacity.expire", "resil/capacity", 3, true);
    ("Router.route", "resil/route", 4, true);
    ("Fleet.serve", "serve", 5, true);
    ("Fleet.serve_routed", "serve", 5, true);
    ("Metrics.add_stream", "playout", 6, true);
    ("Master.solve", "solve/master", 7, false);
  ]

(* Iterator functions whose functional argument runs once per element:
   a lambda passed here is a per-iteration closure, and its body is
   loop context. *)
let iterator_arity =
  [
    ("Array.iter", 0); ("Array.iteri", 0); ("Array.map", 0); ("Array.mapi", 0);
    ("Array.fold_left", 0); ("Array.fold_right", 0); ("Array.for_all", 0);
    ("Array.exists", 0); ("Array.iter2", 0); ("Array.map2", 0);
    ("Array.sort", 0); ("List.iter", 0); ("List.iteri", 0); ("List.map", 0);
    ("List.mapi", 0); ("List.rev_map", 0); ("List.fold_left", 0);
    ("List.fold_right", 0); ("List.filter", 0); ("List.filter_map", 0);
    ("List.concat_map", 0); ("List.for_all", 0); ("List.exists", 0);
    ("List.find", 0); ("List.find_opt", 0); ("List.find_map", 0);
    ("List.sort", 0); ("List.stable_sort", 0); ("List.partition", 0);
    ("Hashtbl.iter", 0); ("Hashtbl.fold", 0); ("Seq.iter", 0); ("Seq.map", 0);
    ("Seq.fold_left", 0); ("Queue.iter", 0);
  ]

let is_iterator name = List.mem_assoc name iterator_arity

(* Functions that build a list per call — calling one per iteration
   allocates O(n) per iteration. *)
let list_builders =
  [
    "List.map"; "List.mapi"; "List.rev_map"; "List.filter"; "List.filter_map";
    "List.concat_map"; "List.init"; "List.append"; "List.concat"; "List.rev";
    "List.sort"; "List.stable_sort"; "List.of_seq"; "Array.to_list"; "@";
  ]

(* Allocating constructors tolerated once per call but not once per
   syntactic-loop iteration. *)
let allocating_calls =
  [
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.sub";
    "Array.of_list"; "Array.concat"; "Array.make_matrix"; "Hashtbl.create";
    "Buffer.create"; "Bytes.create"; "Bytes.make"; "String.make"; "String.sub";
    "String.concat"; "Printf.sprintf"; "Format.asprintf";
  ]

let hashtbl_float_key_ops =
  [
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.find"; "Hashtbl.find_opt";
    "Hashtbl.mem"; "Hashtbl.remove";
  ]

let float_ops =
  [
    "+."; "-."; "*."; "/."; "~-."; "~+."; "abs_float"; "float_of_int";
    "Float.of_int"; "Float.abs"; "Float.min"; "Float.max"; "Float.rem";
    "sqrt"; "ceil"; "floor";
  ]

(* Conservatively: is this expression a float, judged syntactically?
   Only used to gate the boxing rules, so false negatives are fine. *)
let rec looks_float e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, _) -> (
      match ident_of f with
      | Some n -> List.mem (Effects.normalize n) float_ops
      | None -> false)
  | Pexp_constraint (b, _) -> looks_float b
  | _ -> false

let rec fun_split e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
      let n, b = fun_split body in
      (n + 1, b)
  | Pexp_constraint (body, _)
    when (match body.pexp_desc with
         | Pexp_fun _ | Pexp_function _ -> true
         | _ -> false) ->
      fun_split body
  | _ -> (0, e)

let is_function_expr e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype _ | Pexp_constraint _ -> fst (fun_split e) > 0
  | _ -> false

let rec simple_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (q, _) -> simple_var q
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Definition table                                                    *)

type def = {
  d_key : string;
  d_path : string;
  d_loc : Location.t;
  d_expr : expression;
}

let collect_defs files =
  List.concat_map
    (fun (path, str) ->
      let m = Effects.module_name_of_path path in
      let rec items prefix str =
        List.concat_map
          (fun si ->
            match si.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.filter_map
                  (fun vb ->
                    match simple_var vb.pvb_pat with
                    | Some n ->
                        Some
                          {
                            d_key =
                              m ^ "."
                              ^ (if prefix = "" then n else prefix ^ "." ^ n);
                            d_path = path;
                            d_loc = vb.pvb_loc;
                            d_expr = vb.pvb_expr;
                          }
                    | None -> None)
                  vbs
            | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
                match pmb_expr.pmod_desc with
                | Pmod_structure s ->
                    items (if prefix = "" then sub else prefix ^ "." ^ sub) s
                | _ -> [])
            | _ -> [])
          str
      in
      items "" str)
    files

(* ------------------------------------------------------------------ *)
(* Hot-set state                                                       *)

type hot = {
  h_phase : string;
  h_rank : int;
  mutable h_loop : bool; (* called per iteration somewhere *)
}

type st = {
  defs : (string, def) Hashtbl.t;
  hots : (string, hot) Hashtbl.t;
  mutable queue : string list;
  mutable diags : Diagnostic.t list;
  (* (file, key, kind, loopctx) -> already reported, so re-scans after
     a loop-hot upgrade don't duplicate. *)
  seen : (string * string * string * bool, unit) Hashtbl.t;
}

let resolve st current_module name =
  let name = Effects.normalize name in
  let candidates =
    if String.contains name '.' then
      let parts = String.split_on_char '.' name in
      let last2 =
        match List.rev parts with
        | f :: m :: _ -> [ m ^ "." ^ f ]
        | _ -> []
      in
      name :: last2
    else [ current_module ^ "." ^ name ]
  in
  List.find_opt (Hashtbl.mem st.defs) candidates

let mark_hot st key ~phase ~rank ~loop =
  match Hashtbl.find_opt st.hots key with
  | None ->
      Hashtbl.add st.hots key { h_phase = phase; h_rank = rank; h_loop = loop };
      st.queue <- key :: st.queue
  | Some h ->
      if loop && not h.h_loop then begin
        h.h_loop <- true;
        st.queue <- key :: st.queue
      end

let report st d ~key ~phase ~rank ~loc ~kind ~loopctx msg =
  let dedup = (d.d_path, key, kind, loopctx) in
  if not (Hashtbl.mem st.seen dedup) then begin
    Hashtbl.add st.seen dedup ();
    let ctxword = if loopctx then "per iteration" else "per call" in
    st.diags <-
      Diagnostic.make ~file:d.d_path ~loc ~rule:"alloc-in-hot"
        (Printf.sprintf "%s allocated %s in hot path %s (obs phase %s, rank %d); %s"
           kind ctxword key phase rank msg)
      :: st.diags
  end

(* ------------------------------------------------------------------ *)
(* Scanning one hot function                                           *)

(* [inl] is syntactic loop depth inside this function; [loop_hot]
   means the whole function runs per iteration of some caller's loop.
   Allocation context is active when either holds. *)
let scan_def st d ~key ~phase ~rank ~loop_hot =
  let module_of_key k =
    match String.index_opt k '.' with Some i -> String.sub k 0 i | None -> k
  in
  let current_module = module_of_key key in
  let edges = ref [] in
  let edge name ~loopctx = edges := (name, loopctx) :: !edges in
  let rec walk ~inl ~cons_tail e =
    let active = loop_hot || inl > 0 in
    let loopctx = inl > 0 in
    let rep ~kind ~loc msg = report st d ~key ~phase ~rank ~loc ~kind ~loopctx msg in
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_newtype _ ->
        if active then
          rep ~kind:"closure" ~loc:e.pexp_loc
            "hoist it out of the loop or use an explicit for loop";
        let _, body = fun_split e in
        walk ~inl ~cons_tail:false body
    | Pexp_function cases ->
        if active then
          rep ~kind:"closure" ~loc:e.pexp_loc
            "hoist it out of the loop or use an explicit for loop";
        List.iter
          (fun c ->
            Option.iter (walk ~inl ~cons_tail:false) c.pc_guard;
            walk ~inl ~cons_tail:false c.pc_rhs)
          cases
    | Pexp_tuple es ->
        if active && not cons_tail then
          rep ~kind:"tuple" ~loc:e.pexp_loc
            "return components via mutable fields or separate values";
        List.iter (walk ~inl ~cons_tail:false) es
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg) ->
        if active && not cons_tail then
          rep ~kind:"list cons" ~loc:e.pexp_loc
            "accumulate into a preallocated array or reuse a buffer";
        (* The payload is (head, tail); neither the pair nor the tail
           cons is a second allocation site worth a second finding. *)
        (match arg.pexp_desc with
        | Pexp_tuple [ hd; tl ] ->
            walk ~inl ~cons_tail:false hd;
            walk ~inl ~cons_tail:true tl
        | _ -> walk ~inl ~cons_tail:true arg)
    | Pexp_construct (_, arg) -> Option.iter (walk ~inl ~cons_tail) arg
    | Pexp_record (fields, base) ->
        if inl > 0 then
          rep ~kind:"record" ~loc:e.pexp_loc
            "reuse a mutable record or split into scalar locals";
        Option.iter (walk ~inl ~cons_tail:false) base;
        List.iter (fun (_, fv) -> walk ~inl ~cons_tail:false fv) fields
    | Pexp_for (_, lo, hi, _, body) ->
        walk ~inl ~cons_tail:false lo;
        walk ~inl ~cons_tail:false hi;
        walk ~inl:(inl + 1) ~cons_tail:false body
    | Pexp_while (c, body) ->
        walk ~inl ~cons_tail:false c;
        walk ~inl:(inl + 1) ~cons_tail:false body
    | Pexp_apply (f, args) -> apply ~inl ~cons_tail e f args
    | Pexp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            if is_function_expr vb.pvb_expr then begin
              (* A local function definition: allocating the closure
                 counts, and its body inherits this context. *)
              if active then
                rep ~kind:"closure" ~loc:vb.pvb_loc
                  "hoist the local function to toplevel or inline it";
              let _, body = fun_split vb.pvb_expr in
              walk ~inl ~cons_tail:false body
            end
            else walk ~inl ~cons_tail:false vb.pvb_expr)
          vbs;
        walk ~inl ~cons_tail:false body
    | Pexp_ident { txt; _ } ->
        (* A bare reference to a known function in loop context — e.g.
           [Array.iter f xs] handled in [apply]; here it is just a
           value use, no edge (partial applications go through
           Pexp_apply). *)
        ignore txt
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk ~inl ~cons_tail:false scrut;
        List.iter
          (fun c ->
            Option.iter (walk ~inl ~cons_tail:false) c.pc_guard;
            walk ~inl ~cons_tail c.pc_rhs)
          cases
    | Pexp_ifthenelse (c, t, eo) ->
        walk ~inl ~cons_tail:false c;
        walk ~inl ~cons_tail t;
        Option.iter (walk ~inl ~cons_tail) eo
    | Pexp_sequence (a, b) ->
        walk ~inl ~cons_tail:false a;
        walk ~inl ~cons_tail b
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ ce -> walk ~inl ~cons_tail:false ce);
          }
        in
        Ast_iterator.default_iterator.expr it e
  and apply ~inl ~cons_tail e f args =
    let active = loop_hot || inl > 0 in
    let loopctx = inl > 0 in
    let rep ~kind ~loc msg = report st d ~key ~phase ~rank ~loc ~kind ~loopctx msg in
    let walk_args ~inl = List.iter (fun (_, a) -> walk ~inl ~cons_tail:false a) args in
    match ident_of f with
    | None ->
        walk ~inl ~cons_tail:false f;
        walk_args ~inl
    | Some raw -> (
        let name = Effects.normalize raw in
        (* Rewire pipelines so [x |> f] looks like [f x]. *)
        match (name, args) with
        | "|>", [ (_, x); (_, fn) ] ->
            retarget ~inl ~cons_tail e fn [ (Asttypes.Nolabel, x) ]
        | "@@", [ (_, fn); (_, x) ] ->
            retarget ~inl ~cons_tail e fn [ (Asttypes.Nolabel, x) ]
        | _ ->
            if List.mem name pool_entries then begin
              (* Pool tasks are handled by the dedicated pool pass;
                 walk only the non-functional arguments here. *)
              let lbl = pool_task_label name in
              List.iter
                (fun (l, a) ->
                  match l with
                  | Asttypes.Labelled l' when l' = lbl -> ()
                  | _ -> walk ~inl ~cons_tail:false a)
                args
            end
            else begin
              if active && List.mem name list_builders then
                rep ~kind:"list building" ~loc:e.pexp_loc
                  "precompute outside the loop or switch to arrays";
              if inl > 0 && List.mem name allocating_calls then
                rep ~kind:"data structure" ~loc:e.pexp_loc
                  "allocate once outside the loop and reuse";
              if name = "ref" && active then
                rep ~kind:"ref cell" ~loc:e.pexp_loc
                  "use a mutable local or hoist the ref";
              (* Float boxing: polymorphic compare/min/max on a float
                 operand, or Hashtbl keyed by a float. These box on
                 every call, loop or not. *)
              (match name with
              | "compare" | "min" | "max"
                when List.exists (fun (_, a) -> looks_float a) args ->
                  rep ~kind:"boxed float (polymorphic compare)" ~loc:e.pexp_loc
                    "use Float.compare / Float.min / Float.max"
              | _ -> ());
              (if List.mem name hashtbl_float_key_ops then
                 match args with
                 | _ :: (_, k) :: _ when looks_float k ->
                     rep ~kind:"boxed float (Hashtbl key)" ~loc:e.pexp_loc
                       "key the table by an int id instead of a float"
                 | _ -> ());
              if is_iterator name then begin
                (* Functional arguments run per element: lambdas were
                   already flagged as closures by the Pexp_fun case
                   when active; their bodies are loop context, and
                   ident arguments become loop-hot edges. *)
                List.iter
                  (fun (_, a) ->
                    match a.pexp_desc with
                    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
                        if active then
                          rep ~kind:"closure" ~loc:a.pexp_loc
                            "hoist it out of the loop or use an explicit for \
                             loop";
                        let _, body = fun_split a in
                        let body =
                          match a.pexp_desc with
                          | Pexp_function _ -> a
                          | _ -> body
                        in
                        walk_iter_body ~inl body
                    | Pexp_ident _ ->
                        Option.iter
                          (fun n -> edge n ~loopctx:true)
                          (ident_of a)
                    | _ -> walk ~inl ~cons_tail:false a)
                  args
              end
              else begin
                edge name ~loopctx:(loop_hot || loopctx);
                walk_args ~inl;
                (* A known function passed as an argument (callback)
                   also becomes hot. *)
                List.iter
                  (fun (_, a) ->
                    match a.pexp_desc with
                    | Pexp_ident _ when resolve st current_module
                                          (Option.get (ident_of a))
                                        <> None ->
                        edge (Option.get (ident_of a)) ~loopctx:active
                    | _ -> ())
                  args
              end
            end)
  and walk_iter_body ~inl body =
    match body.pexp_desc with
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (walk ~inl:(inl + 1) ~cons_tail:false) c.pc_guard;
            walk ~inl:(inl + 1) ~cons_tail:false c.pc_rhs)
          cases
    | _ -> walk ~inl:(inl + 1) ~cons_tail:false body
  and retarget ~inl ~cons_tail e fn args =
    match fn.pexp_desc with
    | Pexp_ident _ -> apply ~inl ~cons_tail e fn args
    | Pexp_apply (f2, args2) ->
        apply ~inl ~cons_tail e f2 (List.rev_append (List.rev args2) args)
    | _ ->
        walk ~inl ~cons_tail:false fn;
        List.iter (fun (_, a) -> walk ~inl ~cons_tail:false a) args
  in
  let _, body = fun_split d.d_expr in
  let body = match d.d_expr.pexp_desc with Pexp_function _ -> d.d_expr | _ -> body in
  (match body.pexp_desc with
  | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (walk ~inl:0 ~cons_tail:false) c.pc_guard;
          walk ~inl:0 ~cons_tail:false c.pc_rhs)
        cases
  | _ -> walk ~inl:0 ~cons_tail:false body);
  !edges

(* ------------------------------------------------------------------ *)
(* The pool pass: find Pool task bodies anywhere in the tree           *)

let pool_pass st files =
  List.iter
    (fun (path, str) ->
      let m = Effects.module_name_of_path path in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_apply (f, args) -> (
                  match ident_of f with
                  | Some raw when List.mem (Effects.normalize raw) pool_entries
                    ->
                      let name = Effects.normalize raw in
                      let lbl = pool_task_label name in
                      List.iter
                        (fun (l, a) ->
                          match l with
                          | Asttypes.Labelled l' when l' = lbl -> (
                              match a.pexp_desc with
                              | Pexp_fun _ | Pexp_function _ | Pexp_newtype _
                                ->
                                  let d =
                                    {
                                      d_key = m ^ " pool task";
                                      d_path = path;
                                      d_loc = a.pexp_loc;
                                      d_expr = a;
                                    }
                                  in
                                  ignore
                                    (scan_def st d ~key:d.d_key ~phase:"pool"
                                       ~rank:2 ~loop_hot:true)
                              | Pexp_ident _ ->
                                  Option.iter
                                    (fun n ->
                                      match resolve st m n with
                                      | Some k ->
                                          mark_hot st k ~phase:"pool" ~rank:2
                                            ~loop:true
                                      | None -> ())
                                    (ident_of a)
                              | _ -> ())
                          | _ -> ())
                        args
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it str)
    files

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run files =
  let defs = collect_defs files in
  let deftbl = Hashtbl.create 256 in
  List.iter
    (fun d -> if not (Hashtbl.mem deftbl d.d_key) then Hashtbl.add deftbl d.d_key d)
    defs;
  let st =
    {
      defs = deftbl;
      hots = Hashtbl.create 64;
      queue = [];
      diags = [];
      seen = Hashtbl.create 64;
    }
  in
  (* Seed the fixed serving-loop roots that exist in this tree. *)
  List.iter
    (fun (key, phase, rank, loop) ->
      if Hashtbl.mem deftbl key then mark_hot st key ~phase ~rank ~loop)
    roots;
  (* Pool task bodies: scanned directly (lambdas) or seeded (idents). *)
  pool_pass st files;
  (* Worklist: a key may be processed twice — once hot, once more
     after a loop-hot upgrade; the per-(key, kind, loopctx) dedup in
     [report] keeps findings stable. *)
  let rec drain () =
    match st.queue with
    | [] -> ()
    | key :: rest ->
        st.queue <- rest;
        (match (Hashtbl.find_opt deftbl key, Hashtbl.find_opt st.hots key) with
        | Some d, Some h ->
            let edges =
              scan_def st d ~key ~phase:h.h_phase ~rank:h.h_rank
                ~loop_hot:h.h_loop
            in
            let current_module =
              match String.index_opt key '.' with
              | Some i -> String.sub key 0 i
              | None -> key
            in
            List.iter
              (fun (name, loopctx) ->
                match resolve st current_module name with
                | Some callee ->
                    (* Reaching a callee from a non-loop site of a
                       merely-hot function adds nothing: it is not per
                       iteration. Loop sites and loop-hot callers
                       propagate. *)
                    if loopctx then
                      mark_hot st callee ~phase:h.h_phase ~rank:h.h_rank
                        ~loop:true
                | None -> ())
              edges
        | _ -> ());
        drain ()
  in
  drain ();
  st.diags
