(** File discovery, parsing and rule execution for vodlint.

    The engine returns diagnostics; it never prints. Parse failures
    surface as a synthetic ["parse-error"] diagnostic rather than an
    exception, so one unreadable file cannot hide findings in the
    rest of the tree. *)

(** All [.ml]/[.mli] files under the given roots (files are accepted
    too), sorted; [_build], [.git] and dot-directories are skipped.
    Raises [Invalid_argument] on a nonexistent root. *)
val discover : string list -> string list

(** Lint an in-memory snippet. [path] determines which path-scoped
    rules apply (e.g. ["lib/epf/engine.ml"] enables the lib-only and
    division rules) and is the file reported in diagnostics. *)
val lint_string : ?rules:Rules.t list -> path:string -> string -> Diagnostic.t list

(** Lint one file on disk. *)
val lint_file : ?rules:Rules.t list -> string -> Diagnostic.t list

(** Discover and lint every source file under the roots; diagnostics
    are sorted and de-duplicated. *)
val lint_paths : ?rules:Rules.t list -> string list -> Diagnostic.t list
