(** File discovery, parsing and rule execution for vodlint.

    The engine returns diagnostics; it never prints. Parse failures
    surface as a synthetic ["parse-error"] diagnostic rather than an
    exception, so one unreadable file cannot hide findings in the
    rest of the tree. *)

(** All [.ml]/[.mli] files under the given roots (files are accepted
    too), sorted; [_build], [.git], [lintfixture] (parse-only lint
    test fixtures) and dot-directories are skipped.
    Raises [Invalid_argument] on a nonexistent root. *)
val discover : string list -> string list

(** Lint an in-memory snippet. [path] determines which path-scoped
    rules apply (e.g. ["lib/epf/engine.ml"] enables the lib-only and
    division rules) and is the file reported in diagnostics. *)
val lint_string : ?rules:Rules.t list -> path:string -> string -> Diagnostic.t list

(** Lint one file on disk. *)
val lint_file : ?rules:Rules.t list -> string -> Diagnostic.t list

(** Discover and lint every source file under the roots; diagnostics
    are sorted and de-duplicated. *)
val lint_paths : ?rules:Rules.t list -> string list -> Diagnostic.t list

(** Project mode: phase-1 rules per file, then the {!Project_rules}
    effect-summary rules over every implementation file at once
    ([disabled] names phase-2 rule ids to skip). [vodlint-disable]
    comments suppress findings from both phases. The merged list is
    sorted by (file, line, col, rule) and de-duplicated, so output and
    baselines are diff-stable. Baseline subtraction is the caller's
    job ({!Baseline.apply}). [units_decl] (default
    {!Units.empty_decl}) seeds the phase-3 units dataflow;
    [protocols_decl] (default {!Proto.empty_decl}) seeds the phase-4
    protocol dataflow. *)
val lint_project :
  ?rules:Rules.t list ->
  ?disabled:string list ->
  ?units_decl:Units.decl ->
  ?protocols_decl:Proto.decl ->
  string list ->
  Diagnostic.t list

(** Same, over in-memory [(path, source)] pairs — the test entry point
    for multi-file fixtures. *)
val lint_project_strings :
  ?rules:Rules.t list ->
  ?disabled:string list ->
  ?units_decl:Units.decl ->
  ?protocols_decl:Proto.decl ->
  (string * string) list ->
  Diagnostic.t list
