(* The vodlint driver: discover .ml/.mli files, parse them with
   compiler-libs, run every enabled rule, drop suppressed findings, and
   hand back a sorted diagnostic list. Reporting stays in the caller
   ([bin/vodlint.ml]) so this library never writes to the console. *)

let ml_suffix path = Filename.check_suffix path ".ml"
let mli_suffix path = Filename.check_suffix path ".mli"

(* [lintfixture] holds deliberately-broken parse-only fixtures for the
   lint test suite; sweeping them would drown the report in intended
   findings. *)
let skip_dir name =
  name = "_build" || name = ".git" || name = "lintfixture"
  || (String.length name > 0 && name.[0] = '.')

(* Depth-first walk, children visited in sorted order so reports are
   deterministic across filesystems. *)
let rec walk path acc =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc else walk (Filename.concat path name) acc)
         acc
  else if ml_suffix path || mli_suffix path then path :: acc
  else acc

let discover roots =
  List.fold_left
    (fun acc root ->
      if Sys.file_exists root then walk root acc
      else invalid_arg (Printf.sprintf "Engine.discover: no such path: %s" root))
    [] roots
  |> List.sort String.compare

let ctx_of_path ~on_disk path =
  let has_prefix p =
    String.length path >= String.length p && String.sub path 0 (String.length p) = p
  in
  {
    Rules.path;
    in_lib = has_prefix "lib/" || has_prefix "./lib/";
    in_div_scope =
      has_prefix "lib/epf/" || has_prefix "lib/lp/" || has_prefix "./lib/epf/"
      || has_prefix "./lib/lp/";
    on_disk;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse one file with the compiler front end. [Pparse] handles the
   ast-magic / preprocessor plumbing the compiler itself uses. *)
let parse_file path =
  if mli_suffix path then
    Rules.Intf (Pparse.parse_interface ~tool_name:"vodlint" path)
  else Rules.Impl (Pparse.parse_implementation ~tool_name:"vodlint" path)

let parse_string ~path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  if mli_suffix path then Rules.Intf (Parse.interface lexbuf)
  else Rules.Impl (Parse.implementation lexbuf)

let exn_message e =
  match Location.error_of_exn e with
  | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
  | Some `Already_displayed | None -> Printexc.to_string e

let parse_error_diag ~path e =
  {
    Diagnostic.file = path;
    line = 1;
    col = 0;
    rule = "parse-error";
    message = String.map (fun c -> if c = '\n' then ' ' else c) (exn_message e);
  }

let run_rules ~rules ~ctx ~src ast =
  let suppressions = Suppress.scan src in
  List.concat_map (fun (r : Rules.t) -> r.check ctx ast) rules
  |> List.filter (fun (d : Diagnostic.t) ->
         not (Suppress.suppressed suppressions ~line:d.line ~rule:d.rule))

let lint_string ?(rules = Rules.all) ~path src =
  match parse_string ~path src with
  | ast -> run_rules ~rules ~ctx:(ctx_of_path ~on_disk:false path) ~src ast |> List.sort Diagnostic.compare
  | exception e -> [ parse_error_diag ~path e ]

let lint_file ?(rules = Rules.all) path =
  match parse_file path with
  | ast ->
      let src = read_file path in
      run_rules ~rules ~ctx:(ctx_of_path ~on_disk:true path) ~src ast
  | exception e -> [ parse_error_diag ~path e ]

let lint_paths ?(rules = Rules.all) roots =
  discover roots
  |> List.concat_map (fun path -> lint_file ~rules path)
  |> List.sort_uniq Diagnostic.compare

(* ------------------------------------------------------------------ *)
(* Project mode: phase-1 rules per file plus phase-2 rules over the
   whole tree's effect summaries. *)

(* Phase-2 diagnostics honour the same [vodlint-disable] comments as
   phase-1 ones; suppression is applied here because [Project_rules]
   never sees source text. *)
let filter_suppressed ~sources diags =
  let scans =
    List.map (fun (path, src) -> (path, Suppress.scan src)) sources
  in
  List.filter
    (fun (d : Diagnostic.t) ->
      match List.assoc_opt d.file scans with
      | Some s -> not (Suppress.suppressed s ~line:d.line ~rule:d.rule)
      | None -> true)
    diags

let project_core ~rules ~disabled ~units_decl ~protocols_decl ~on_disk files =
  (* files : (path * src * (ast, exn) result) list *)
  let phase1 =
    List.concat_map
      (fun (path, src, parsed) ->
        match parsed with
        | Error e -> [ parse_error_diag ~path e ]
        | Ok ast -> run_rules ~rules ~ctx:(ctx_of_path ~on_disk path) ~src ast)
      files
  in
  let impls =
    List.filter_map
      (fun (path, _, parsed) ->
        match parsed with
        | Ok (Rules.Impl str) -> Some (path, str)
        | Ok (Rules.Intf _) | Error _ -> None)
      files
  in
  let sources = List.map (fun (path, src, _) -> (path, src)) files in
  let phase2 =
    Project_rules.run ~disabled ~units_decl ~protocols_decl impls
    |> filter_suppressed ~sources
  in
  (* Sorted by (file, line, col, rule) and de-duplicated, so project
     reports and the baseline file are diff-stable across runs. *)
  List.sort_uniq Diagnostic.compare (phase1 @ phase2)

let lint_project ?(rules = Rules.all) ?(disabled = [])
    ?(units_decl = Units.empty_decl) ?(protocols_decl = Proto.empty_decl) roots
    =
  let files =
    discover roots
    |> List.map (fun path ->
           let src = try read_file path with _e -> "" in
           let parsed = try Ok (parse_file path) with e -> Error e in
           (path, src, parsed))
  in
  project_core ~rules ~disabled ~units_decl ~protocols_decl ~on_disk:true files

let lint_project_strings ?(rules = Rules.all) ?(disabled = [])
    ?(units_decl = Units.empty_decl) ?(protocols_decl = Proto.empty_decl)
    sources =
  let files =
    List.map
      (fun (path, src) ->
        let parsed = try Ok (parse_string ~path src) with e -> Error e in
        (path, src, parsed))
      sources
  in
  project_core ~rules ~disabled ~units_decl ~protocols_decl ~on_disk:false files
