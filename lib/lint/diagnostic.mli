(** Lint findings: a source position, the rule id that fired, and a
    human-readable message. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based, matching compiler convention *)
  rule : string;
  message : string;
}

(** Build a diagnostic from a compiler [Location.t] (start position). *)
val make : file:string -> loc:Location.t -> rule:string -> string -> t

(** Order by file, then line, column, rule — the report order. *)
val compare : t -> t -> int

(** [file:line:col [rule-id] message] — one line, no trailing newline. *)
val to_text : t -> string

(** One finding as a GitHub Actions [::warning] workflow command, so
    CI findings annotate the PR diff inline. Columns are converted to
    GitHub's 1-based convention; [%], newlines and property separators
    are escaped per the workflow-command rules. *)
val to_github : t -> string

(** One finding as a JSON object. *)
val to_json : t -> string

(** A findings list as a JSON array. *)
val list_to_json : t list -> string
