(** Whole-project join of per-file {!Effects} summaries: a table keyed
    by normalized ["Module.fn"] names, closed under a monotone fixpoint
    that propagates effects through cross-module calls. *)

type entry = {
  e_path : string;
  e_loc : Location.t;
  mutable e_effects : Effects.set;
  e_calls : Effects.call list;
}

type t

val of_analyses : Effects.file_analysis list -> t
(** Build the table and run the propagation fixpoint. *)

val find : t -> string -> entry option
(** Exact lookup by ["Module.fn"] key. *)

val effects_of_name : t -> current_module:string -> string -> Effects.set option
(** Resolve a callee name as seen from [current_module] (unqualified
    names resolve within that module) and return its closed effects. *)

val may_raise : t -> current_module:string -> string -> bool
(** Whether the named callee's closed summary contains
    {!Effects.Raises} — i.e. calling it can exit exceptionally.
    Unresolvable names are assumed non-raising (optimistic, like the
    other effect lookups); the protocol dataflow ({!Proto}) adds the
    syntactic raisers it can see directly. *)

val effects_of_result : t -> current_module:string -> Effects.result -> Effects.set
(** Close an ad-hoc analysis result (e.g. a capture-analyzed pool
    closure) over the table: its direct effects plus the mapped effects
    of every residual call that resolves. Unresolvable calls are assumed
    pure — the dynamic jobs-1-vs-4 smoke test backstops those. *)
