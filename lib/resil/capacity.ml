(* Residual-bandwidth tracking at stream granularity. Each admitted
   stream reserves its bitrate on every link of its path until its end
   time; a binary min-heap of expiries releases the bandwidth as the
   playout clock advances. With no finite capacities the tracker is a
   no-op fast path, which is what makes the fault-free playout
   byte-identical to the legacy engine.

   Saturation accounting: a link is saturated while its load is at or
   above [saturation_frac * capacity]; total saturated link-seconds are
   accumulated at state transitions and closed out by [finish]. *)

type expiry = {
  until_s : float;
  link : int;
  rate : float;
}

type t = {
  capacity_mbps : float array;  (* per directed link; infinity = unbounded *)
  load : float array;           (* reserved Mb/s per link *)
  sat_frac : float;
  sat_since : float array;      (* -1.0 when not saturated *)
  mutable sat_total_s : float;
  mutable heap : expiry array;  (* binary min-heap on until_s *)
  mutable heap_len : int;
  unbounded : bool;             (* no finite capacity anywhere *)
}

let create ~capacity_mbps ?(saturation_frac = 0.95) () =
  Array.iter
    (fun c ->
      if Float.is_nan c || c <= 0.0 then
        invalid_arg "Capacity.create: capacities must be positive")
    capacity_mbps;
  if saturation_frac <= 0.0 || saturation_frac > 1.0 then
    invalid_arg "Capacity.create: saturation_frac must be in (0, 1]";
  let n = Array.length capacity_mbps in
  {
    capacity_mbps = Array.copy capacity_mbps;
    load = Array.make n 0.0;
    sat_frac = saturation_frac;
    sat_since = Array.make n (-1.0);
    sat_total_s = 0.0;
    heap = Array.make 64 { until_s = 0.0; link = 0; rate = 0.0 };
    heap_len = 0;
    unbounded = Array.for_all (fun c -> c = Float.infinity) capacity_mbps;
  }

let unbounded t = t.unbounded

(* ---------- heap ---------- *)

let heap_push t e =
  if t.heap_len = Array.length t.heap then begin
    let bigger =
      Array.make (2 * Array.length t.heap) { until_s = 0.0; link = 0; rate = 0.0 }
    in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  t.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if Float.compare t.heap.(!i).until_s t.heap.(parent).until_s < 0 then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_pop t =
  let top = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_len && Float.compare t.heap.(l).until_s t.heap.(!smallest).until_s < 0
    then smallest := l;
    if r < t.heap_len && Float.compare t.heap.(r).until_s t.heap.(!smallest).until_s < 0
    then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

(* ---------- saturation bookkeeping ---------- *)

let saturated t link = t.load.(link) >= t.sat_frac *. t.capacity_mbps.(link)

let update_saturation t ~now_s link =
  if t.capacity_mbps.(link) < Float.infinity then begin
    let sat = saturated t link in
    if sat && t.sat_since.(link) < 0.0 then t.sat_since.(link) <- now_s
    else if (not sat) && t.sat_since.(link) >= 0.0 then begin
      t.sat_total_s <-
        t.sat_total_s +. Float.max 0.0 (now_s -. t.sat_since.(link));
      t.sat_since.(link) <- -1.0
    end
  end

(* ---------- public ops ---------- *)

(* Release every reservation that ended at or before [now]. *)
let expire t ~now =
  if not t.unbounded then
    while t.heap_len > 0 && t.heap.(0).until_s <= now do
      let e = heap_pop t in
      t.load.(e.link) <- Float.max 0.0 (t.load.(e.link) -. e.rate);
      (* The bandwidth came back at the stream's end time, not at [now]. *)
      update_saturation t ~now_s:e.until_s e.link
    done

let eps = 1e-9

(* Tail-recursive rather than [Array.for_all]: the lambda would be a
   fresh closure on every admission check, once per request in the
   resil playout loop (alloc-in-hot). *)
let rec links_fit t ~links ~rate_mbps i =
  i >= Array.length links
  ||
  let l = links.(i) in
  t.load.(l) +. rate_mbps <= t.capacity_mbps.(l) +. eps
  && links_fit t ~links ~rate_mbps (i + 1)

let fits t ~links ~rate_mbps =
  t.unbounded || links_fit t ~links ~rate_mbps 0

let reserve t ~links ~rate_mbps ~until_s ~now =
  if not t.unbounded then
    (* Explicit loop for the same reason as [links_fit]: no per-call
       closure on the admission path. *)
    for i = 0 to Array.length links - 1 do
      let l = links.(i) in
      t.load.(l) <- t.load.(l) +. rate_mbps;
      heap_push t { until_s; link = l; rate = rate_mbps };
      update_saturation t ~now_s:now l
    done

(* Close any still-open saturation interval at the end of the playout. *)
let finish t ~now =
  Array.iteri
    (fun l since ->
      if since >= 0.0 then begin
        t.sat_total_s <- t.sat_total_s +. Float.max 0.0 (now -. since);
        t.sat_since.(l) <- -1.0
      end)
    t.sat_since

let saturated_seconds t = t.sat_total_s

let load t link = t.load.(link)
