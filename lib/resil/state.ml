(* Live fault state: which VHOs and directed links are up and each VHO's
   current demand multiplier, advanced along a schedule by the playout.
   The cursor makes [advance] O(events applied), so driving it per
   request costs nothing between events. *)

type t = {
  vho_up : bool array;
  link_up : bool array;
  surge_factor : float array;  (* 1.0 = nominal demand *)
  schedule : Event.schedule;
  mutable cursor : int;        (* next event not yet applied *)
}

let create ~n_vhos ~n_links schedule =
  Event.validate schedule ~n_vhos ~n_links;
  {
    vho_up = Array.make n_vhos true;
    link_up = Array.make n_links true;
    surge_factor = Array.make n_vhos 1.0;
    schedule;
    cursor = 0;
  }

let vho_up t vho = t.vho_up.(vho)

let link_up t = t.link_up

let surge t vho = t.surge_factor.(vho)

let apply t (e : Event.t) =
  match e.Event.kind with
  | Event.Vho_down v -> t.vho_up.(v) <- false
  | Event.Vho_up v -> t.vho_up.(v) <- true
  | Event.Link_down l -> t.link_up.(l) <- false
  | Event.Link_up l -> t.link_up.(l) <- true
  | Event.Surge_start { vho; factor } -> t.surge_factor.(vho) <- factor
  | Event.Surge_end v -> t.surge_factor.(v) <- 1.0

(* Apply every event with time <= now, in schedule order, calling
   [on_event] after each state change. Returns how many were applied. *)
let advance t ~now ~on_event =
  let n = Array.length t.schedule in
  let applied = ref 0 in
  while t.cursor < n && t.schedule.(t.cursor).Event.time_s <= now do
    let e = t.schedule.(t.cursor) in
    t.cursor <- t.cursor + 1;
    apply t e;
    incr applied;
    on_event e
  done;
  !applied

let pending t = Array.length t.schedule - t.cursor
