(** Capacity-aware failover routing over live fault state: fleet's
    fault-free choice first, then alive holders by (surviving-path hops,
    VHO id), then the origin server, then an explicit rejection. *)

type reject_reason =
  | Vho_down      (** the requesting VHO itself is down *)
  | No_replica    (** no holder anywhere and no origin configured *)
  | Unreachable   (** holders exist but none is alive and reachable *)
  | No_capacity   (** alive candidates exist but every path is saturated *)

val reject_reason_to_string : reject_reason -> string

type served = {
  server : int;
  links : int array;  (** links actually streamed over (masked path) *)
  hops : int;
  failover : bool;    (** served by other than the fault-free choice *)
  extra_hops : int;   (** hops beyond the fault-free path; 0 when the
                          default itself was down *)
  via_origin : bool;
}

type decision = Served of served | Rejected of reject_reason

type t

(** [create ~graph ~paths ~state ~capacity ()] routes over the base
    fixed [paths] until the first link event, then over lazily
    recomputed masked paths. [origin] is an optional full-library
    last-resort server. *)
val create :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  state:State.t ->
  capacity:Capacity.t ->
  ?origin:int ->
  unit ->
  t

(** Notify the router that link liveness changed (paths recompute lazily
    at the next routed request). *)
val on_link_event : t -> unit

(** The routing table currently in force (base or masked). *)
val current_paths : t -> Vod_topology.Paths.t

(** Route one remote request to [dst]. [default] is the fleet's
    fault-free server choice; [holders] the current replica locations.
    On [Served] the stream's bandwidth has been reserved until
    [until_s]. *)
val route :
  t ->
  holders:int list ->
  dst:int ->
  default:int ->
  rate_mbps:float ->
  until_s:float ->
  now:float ->
  decision
