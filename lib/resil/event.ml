(* Fault timeline: a time-sorted schedule of typed events driving the
   resilience playout (TON'16 robustness evaluation of the CoNEXT'10
   placement paper: VHO failures, link failures, demand surges). The
   schedule is data — replayable from CSV, diffable, and generated
   deterministically from an integer seed. *)

type kind =
  | Vho_down of int
  | Vho_up of int
  | Link_down of int          (* directed link id *)
  | Link_up of int
  | Surge_start of { vho : int; factor : float }  (* demand multiplier *)
  | Surge_end of int

type t = {
  time_s : float;
  kind : kind;
}

type schedule = t array

let empty : schedule = [||]

let kind_to_string = function
  | Vho_down v -> Printf.sprintf "vho_down,%d" v
  | Vho_up v -> Printf.sprintf "vho_up,%d" v
  | Link_down l -> Printf.sprintf "link_down,%d" l
  | Link_up l -> Printf.sprintf "link_up,%d" l
  | Surge_start { vho; factor } -> Printf.sprintf "surge_start,%d,%g" vho factor
  | Surge_end v -> Printf.sprintf "surge_end,%d" v

(* Sort events by time, stably, so same-time events keep their authored
   order (down-before-up at the same instant is meaningful). *)
let create events =
  List.iter
    (fun e ->
      if not (Float.is_finite e.time_s) || e.time_s < 0.0 then
        invalid_arg "Event.create: event times must be finite and non-negative";
      match e.kind with
      | Surge_start { factor; _ }
        when not (Float.is_finite factor) || factor <= 0.0 ->
          invalid_arg "Event.create: surge factor must be finite and positive"
      | _ -> ())
    events;
  let arr = Array.of_list events in
  let tagged = Array.mapi (fun i e -> (i, e)) arr in
  Array.sort
    (fun (i, a) (j, b) ->
      let c = Float.compare a.time_s b.time_s in
      if c <> 0 then c else Int.compare i j)
    tagged;
  Array.map snd tagged

let length (s : schedule) = Array.length s

(* Bounds-check every referenced VHO and link id against a topology. *)
let validate (s : schedule) ~n_vhos ~n_links =
  let check_vho v =
    if v < 0 || v >= n_vhos then
      invalid_arg (Printf.sprintf "Event.validate: VHO %d outside [0, %d)" v n_vhos)
  in
  let check_link l =
    if l < 0 || l >= n_links then
      invalid_arg (Printf.sprintf "Event.validate: link %d outside [0, %d)" l n_links)
  in
  Array.iter
    (fun e ->
      match e.kind with
      | Vho_down v | Vho_up v | Surge_end v -> check_vho v
      | Surge_start { vho; _ } -> check_vho vho
      | Link_down l | Link_up l -> check_link l)
    s

(* ---------- CSV schedule format ----------

   One event per line, `#` comments and blank lines ignored:

     time_s,event,args
     3600.000,vho_down,12
     7200.000,vho_up,12
     100.000,surge_start,5,3.5
     400.000,surge_end,5
*)

let header = "time_s,event,args"

let save_csv (s : schedule) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      Array.iter
        (fun e -> Printf.fprintf oc "%.3f,%s\n" e.time_s (kind_to_string e.kind))
        s)

let parse_line ~lineno line =
  let bad () =
    invalid_arg (Printf.sprintf "Event.load_csv: bad record on line %d" lineno)
  in
  match String.split_on_char ',' (String.trim line) with
  | time :: event :: args -> (
      let time_s = try float_of_string time with Failure _ -> bad () in
      let int_arg s = try int_of_string (String.trim s) with Failure _ -> bad () in
      let kind =
        match (String.trim event, args) with
        | "vho_down", [ v ] -> Vho_down (int_arg v)
        | "vho_up", [ v ] -> Vho_up (int_arg v)
        | "link_down", [ l ] -> Link_down (int_arg l)
        | "link_up", [ l ] -> Link_up (int_arg l)
        | "surge_start", [ v; f ] ->
            let factor =
              try float_of_string (String.trim f) with Failure _ -> bad ()
            in
            Surge_start { vho = int_arg v; factor }
        | "surge_end", [ v ] -> Surge_end (int_arg v)
        | _ -> bad ()
      in
      { time_s; kind })
  | _ -> bad ()

let load_csv ?n_vhos ?n_links path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = String.trim (input_line ic) in
           if
             line <> ""
             && not (String.length line > 0 && line.[0] = '#')
             && not (!lineno = 1 && line = header)
           then events := parse_line ~lineno:!lineno line :: !events
         done
       with End_of_file -> ());
      let s = create (List.rev !events) in
      (match (n_vhos, n_links) with
      | Some n_vhos, Some n_links -> validate s ~n_vhos ~n_links
      | Some n_vhos, None -> validate s ~n_vhos ~n_links:max_int
      | None, Some n_links -> validate s ~n_vhos:max_int ~n_links
      | None, None -> ());
      s)

(* ---------- seeded generator ---------- *)

type gen_params = {
  n_vhos : int;
  n_links : int;
  horizon_s : float;
  vho_outages : int;        (* independent VHO down/up pairs *)
  link_outages : int;       (* independent directed-link down/up pairs *)
  surges : int;             (* flash-crowd windows *)
  mean_outage_s : float;    (* Exp-distributed outage duration *)
  mean_surge_s : float;
  surge_factor : float;     (* demand multiplier during a surge *)
  seed : int;
}

let default_gen_params ~n_vhos ~n_links ~horizon_s ~seed =
  {
    n_vhos;
    n_links;
    horizon_s;
    vho_outages = 2;
    link_outages = 2;
    surges = 1;
    mean_outage_s = horizon_s /. 10.0;
    mean_surge_s = horizon_s /. 20.0;
    surge_factor = 3.0;
    seed;
  }

(* Draw [count] down/up (or start/end) pairs: uniform start over the
   horizon, exponential duration clipped to the horizon. Draw order is
   fixed, so the schedule depends only on the params. *)
let generate (p : gen_params) : schedule =
  if p.horizon_s <= 0.0 || not (Float.is_finite p.horizon_s) then
    invalid_arg "Event.generate: horizon must be finite and positive";
  if p.n_vhos <= 0 then invalid_arg "Event.generate: need at least one VHO";
  let rng = Vod_util.Rng.create p.seed in
  let events = ref [] in
  let pair ~mean_s mk_down mk_up =
    let t0 = Vod_util.Rng.float rng *. p.horizon_s in
    let dur = Vod_util.Rng.exponential rng ~rate:(1.0 /. mean_s) in
    let t1 = Float.min p.horizon_s (t0 +. dur) in
    events := { time_s = t1; kind = mk_up } :: { time_s = t0; kind = mk_down } :: !events
  in
  for _ = 1 to p.vho_outages do
    let v = Vod_util.Rng.int rng p.n_vhos in
    pair ~mean_s:p.mean_outage_s (Vho_down v) (Vho_up v)
  done;
  if p.link_outages > 0 && p.n_links <= 0 then
    invalid_arg "Event.generate: link outages requested on a link-less graph";
  for _ = 1 to p.link_outages do
    let l = Vod_util.Rng.int rng p.n_links in
    pair ~mean_s:p.mean_outage_s (Link_down l) (Link_up l)
  done;
  for _ = 1 to p.surges do
    let v = Vod_util.Rng.int rng p.n_vhos in
    pair ~mean_s:p.mean_surge_s
      (Surge_start { vho = v; factor = p.surge_factor })
      (Surge_end v)
  done;
  create (List.rev !events)
