(* Capacity-aware failover routing. For each remote request the router
   tries, in order: the fleet's fault-free server choice (so a fault-free
   playout reproduces the legacy engine exactly, including MIP x-variable
   routing), then every other alive holder by (surviving-path hops, VHO
   id), then the origin server, and finally records an explicit
   rejection. Paths are the base fixed routing until the first link
   event, after which they are lazily recomputed around the dead links
   ([Paths.compute_masked]). *)

let obs = Vod_obs.Obs.incr

type reject_reason = Vho_down | No_replica | Unreachable | No_capacity

let reject_reason_to_string = function
  | Vho_down -> "vho_down"
  | No_replica -> "no_replica"
  | Unreachable -> "unreachable"
  | No_capacity -> "no_capacity"

type served = {
  server : int;
  links : int array;   (* path actually streamed over *)
  hops : int;
  failover : bool;     (* not the fleet's fault-free choice *)
  extra_hops : int;    (* hops beyond the fault-free path; 0 if it was dead *)
  via_origin : bool;
}

type decision = Served of served | Rejected of reject_reason

type t = {
  graph : Vod_topology.Graph.t;
  base_paths : Vod_topology.Paths.t;
  state : State.t;
  capacity : Capacity.t;
  origin : int option;  (* last-resort full-library server *)
  mutable cur_paths : Vod_topology.Paths.t;
  mutable paths_dirty : bool;
}

let create ~graph ~paths ~state ~capacity ?origin () =
  {
    graph;
    base_paths = paths;
    state;
    capacity;
    origin;
    cur_paths = paths;
    paths_dirty = false;
  }

(* Called by the playout whenever a link goes down or comes back: the
   masked shortest paths are recomputed lazily, at the next routed
   request, so bursts of events cost one recompute. *)
let on_link_event t = t.paths_dirty <- true

let current_paths t =
  if t.paths_dirty then begin
    t.paths_dirty <- false;
    let up = State.link_up t.state in
    t.cur_paths <-
      (if Array.for_all Fun.id up then t.base_paths
       else begin
         obs "resil/path_recomputes";
         Vod_topology.Paths.compute_masked t.graph ~link_up:up
       end)
  end;
  t.cur_paths

(* A candidate serves when it is up, reachable from [dst] over surviving
   links, and its path has residual capacity for the stream. *)
let try_candidate t paths ~dst ~rate_mbps ~until_s ~now server =
  if server = dst then
    (* Local serving never happens here (the fleet handles it), but a
       same-node candidate (e.g. origin at the requesting VHO) streams
       over no links and always fits. *)
    Some { server; links = [||]; hops = 0; failover = false; extra_hops = 0; via_origin = false }
  else if not (State.vho_up t.state server) then None
  else if not (Vod_topology.Paths.reachable paths ~src:server ~dst) then None
  else begin
    let links = Vod_topology.Paths.path_links paths ~src:server ~dst in
    if Capacity.fits t.capacity ~links ~rate_mbps then begin
      Capacity.reserve t.capacity ~links ~rate_mbps ~until_s ~now;
      let hops = Vod_topology.Paths.hops paths ~src:server ~dst in
      Some { server; links; hops; failover = false; extra_hops = 0; via_origin = false }
    end
    else None
  end

(* Route one remote request for [dst]: [default] is the fleet's
   fault-free choice, [holders] the current replica locations. *)
let route t ~holders ~dst ~default ~rate_mbps ~until_s ~now =
  if not (State.vho_up t.state dst) then Rejected Vho_down
  else begin
    let paths = current_paths t in
    let try_c = try_candidate t paths ~dst ~rate_mbps ~until_s ~now in
    let base_hops =
      (* Fault-free path length, for the extra-hops accounting. *)
      Vod_topology.Paths.hops t.base_paths ~src:default ~dst
    in
    let default_alive =
      State.vho_up t.state default
      && Vod_topology.Paths.reachable paths ~src:default ~dst
    in
    let mark_failover (s : served) ~via_origin =
      {
        s with
        failover = true;
        via_origin;
        (* Extra hops are measured against the fault-free path; when the
           default itself is gone there is no baseline to exceed. *)
        extra_hops = (if default_alive then Stdlib.max 0 (s.hops - base_hops) else 0);
      }
    in
    match (if default_alive then try_c default else None) with
    | Some s -> Served s
    | None -> (
        (* Every other alive, reachable holder by (current hops, id). *)
        let alternates =
          List.filter
            (fun h ->
              h <> default && h <> dst
              && State.vho_up t.state h
              && Vod_topology.Paths.reachable paths ~src:h ~dst)
            holders
          |> List.map (fun h -> (Vod_topology.Paths.hops paths ~src:h ~dst, h))
          |> List.sort (fun (ha, a) (hb, b) ->
                 let c = Int.compare ha hb in
                 if c <> 0 then c else Int.compare a b)
        in
        let rec first_fit = function
          | [] -> None
          | (_, h) :: rest -> (
              match try_c h with
              | Some s -> Some (mark_failover s ~via_origin:false)
              | None -> first_fit rest)
        in
        match first_fit alternates with
        | Some s -> Served s
        | None -> (
            (* Origin fallback: the full-library server of last resort. *)
            let origin_alive =
              match t.origin with
              | Some o ->
                  State.vho_up t.state o
                  && (o = dst || Vod_topology.Paths.reachable paths ~src:o ~dst)
              | None -> false
            in
            let origin_try =
              match t.origin with
              | Some o when origin_alive -> try_c o
              | Some _ | None -> None
            in
            match origin_try with
            | Some s -> Served (mark_failover s ~via_origin:true)
            | None ->
                (* Everything failed; name the dominant cause. An alive,
                   reachable candidate means only capacity stood in the
                   way; no holders and no origin means nothing to serve
                   from; otherwise the survivors were unreachable/down. *)
                let any_alive = default_alive || alternates <> [] || origin_alive in
                if any_alive then Rejected No_capacity
                else if holders = [] && t.origin = None then Rejected No_replica
                else Rejected Unreachable))
  end
