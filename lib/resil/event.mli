(** Fault timeline: typed, time-sorted schedules of VHO outages,
    directed-link failures and flash-crowd demand surges, replayable from
    CSV and generated deterministically from a seed (the TON'16
    robustness evaluation of the placement paper). *)

type kind =
  | Vho_down of int
  | Vho_up of int
  | Link_down of int  (** directed link id *)
  | Link_up of int
  | Surge_start of { vho : int; factor : float }
      (** demand multiplier for one VHO; last writer wins *)
  | Surge_end of int

type t = {
  time_s : float;  (** absolute seconds from trace start *)
  kind : kind;
}

(** A schedule is a time-sorted event array (stable for equal times). *)
type schedule = t array

(** The fault-free schedule. *)
val empty : schedule

(** Sort events into a schedule (stable on equal times, preserving the
    authored order). Raises [Invalid_argument] on non-finite or negative
    times, or non-positive surge factors. *)
val create : t list -> schedule

(** Number of events. *)
val length : schedule -> int

(** Bounds-check every referenced VHO and link id.
    Raises [Invalid_argument] naming the offending id. *)
val validate : schedule -> n_vhos:int -> n_links:int -> unit

(** [kind_to_string k] is the CSV tail of an event line, e.g.
    ["vho_down,12"]. *)
val kind_to_string : kind -> string

(** Write a schedule as CSV ([time_s,event,args]; one event per line). *)
val save_csv : schedule -> string -> unit

(** Load a CSV schedule; [#] comments and blank lines are ignored.
    Raises [Invalid_argument] with a line number on parse errors, and
    bounds-checks ids when [n_vhos]/[n_links] are given. *)
val load_csv : ?n_vhos:int -> ?n_links:int -> string -> schedule

(** Parameters of the seeded generator: independent down/up (or
    start/end) pairs with uniform starts and exponential durations
    clipped to the horizon. *)
type gen_params = {
  n_vhos : int;
  n_links : int;
  horizon_s : float;
  vho_outages : int;
  link_outages : int;
  surges : int;
  mean_outage_s : float;
  mean_surge_s : float;
  surge_factor : float;
  seed : int;
}

val default_gen_params :
  n_vhos:int -> n_links:int -> horizon_s:float -> seed:int -> gen_params

(** Generate a schedule from the params; same params, same schedule. *)
val generate : gen_params -> schedule
