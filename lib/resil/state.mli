(** Live fault state advanced along an {!Event.schedule}: VHO and
    directed-link liveness plus per-VHO demand multipliers. *)

type t

(** Fresh state (everything up, multipliers 1.0) over a validated
    schedule. Raises [Invalid_argument] if the schedule references ids
    outside the topology. *)
val create : n_vhos:int -> n_links:int -> Event.schedule -> t

(** Whether a VHO is currently up. *)
val vho_up : t -> int -> bool

(** Current per-directed-link liveness; shared, do not mutate. *)
val link_up : t -> bool array

(** Current demand multiplier at a VHO (1.0 = nominal). *)
val surge : t -> int -> float

(** Apply every event with [time_s <= now] in schedule order, calling
    [on_event] after each is applied; returns the number applied. *)
val advance : t -> now:float -> on_event:(Event.t -> unit) -> int

(** Events not yet applied. *)
val pending : t -> int
