(** Per-directed-link residual-bandwidth tracking at stream granularity:
    admitted streams reserve their bitrate on every path link until their
    end time; expiries release it as the playout clock advances. When no
    link has finite capacity the tracker is a no-op fast path. *)

type t

(** [create ~capacity_mbps ()] with one capacity per directed link
    ([infinity] = unbounded). A link counts as saturated while its load
    is at or above [saturation_frac] (default 0.95) of its capacity.
    Raises [Invalid_argument] on non-positive capacities. *)
val create : capacity_mbps:float array -> ?saturation_frac:float -> unit -> t

(** True when no link has a finite capacity (every admission succeeds). *)
val unbounded : t -> bool

(** Release every reservation ending at or before [now]. Call before
    [fits]/[reserve] at each playout step. *)
val expire : t -> now:float -> unit

(** Whether a stream of [rate_mbps] fits on every link of [links]. *)
val fits : t -> links:int array -> rate_mbps:float -> bool

(** Reserve [rate_mbps] on every link of [links] until [until_s]. *)
val reserve :
  t -> links:int array -> rate_mbps:float -> until_s:float -> now:float -> unit

(** Close any still-open saturation intervals at playout end. *)
val finish : t -> now:float -> unit

(** Total saturated link-seconds so far. *)
val saturated_seconds : t -> float

(** Current reserved load on a link (Mb/s). *)
val load : t -> int -> float
