(** Resilience playout: the legacy trace playout extended with a fault
    timeline ({!Event}), capacity-aware failover routing ({!Router}) and
    degradation accounting ({!Vod_sim.Metrics.degradation}). With an
    empty schedule and infinite link capacity it reproduces
    [Vod_sim.Sim.run]'s metrics byte-for-byte. *)

type config = {
  schedule : Event.schedule;
  link_capacity_mbps : float;
      (** uniform per-directed-link budget; [infinity] disables tracking *)
  origin : int option;  (** optional last-resort full-library VHO *)
  saturation_frac : float;
}

(** Build a config; defaults: empty schedule, infinite capacity, no
    origin, saturation at 95% of capacity. *)
val config :
  ?schedule:Event.schedule ->
  ?link_capacity_mbps:float ->
  ?origin:int ->
  ?saturation_frac:float ->
  unit ->
  config

(** Per-event-window serving deltas: one window per applied event plus
    the leading fault-free window and the closing ["end"] window. *)
type window = {
  t0_s : float;
  t1_s : float;
  trigger : string;
  requests : int;
  rejections : int;
  failovers : int;
}

type t

(** Fresh playout over the base fixed routing. Raises
    [Invalid_argument] if the schedule references ids outside the
    topology. *)
val create : graph:Vod_topology.Graph.t -> paths:Vod_topology.Paths.t -> config -> t

(** Incremental playout of one time-sorted batch (the weekly pipeline
    plays segment by segment); accounting matches [Vod_sim.Sim.play] for
    served requests and adds rejection/failover/degradation counters. *)
val play :
  t ->
  Vod_sim.Metrics.t ->
  Vod_workload.Catalog.t ->
  Vod_cache.Fleet.t ->
  Vod_workload.Trace.request array ->
  unit

(** Columnar twin of {!play}: rows [[lo, hi)) of a compact
    struct-of-arrays store, iterated by index with the per-request
    ref/closure pair replaced by batch-level scratch — the request loop
    allocates nothing. Byte-identical metrics to {!play} on the
    equivalent request slice. *)
val play_soa :
  t ->
  Vod_sim.Metrics.t ->
  Vod_workload.Catalog.t ->
  Vod_cache.Fleet.t ->
  Vod_workload.Trace_soa.t ->
  lo:int ->
  hi:int ->
  unit

(** Drain the remaining schedule, close saturation intervals, publish
    end-of-run degradation gauges and the final window. Idempotent;
    call once after the last [play] batch. *)
val finish : t -> Vod_sim.Metrics.t -> unit

(** Windows closed so far, in time order (complete after [finish]). *)
val windows : t -> window list

(** One-shot playout of a full trace; mirrors [Vod_sim.Sim.run]. *)
val run :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  trace:Vod_workload.Trace.t ->
  ?bin_s:float ->
  ?record_from:float ->
  config ->
  Vod_sim.Metrics.t * window list

(** One-shot playout of a full compact store (columnar twin of {!run}). *)
val run_soa :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  store:Vod_workload.Trace_soa.t ->
  ?bin_s:float ->
  ?record_from:float ->
  config ->
  Vod_sim.Metrics.t * window list
