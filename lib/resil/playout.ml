(* The resilience playout: the legacy trace playout (lib/sim/sim.ml)
   extended with a fault timeline, capacity-aware failover routing and
   degradation accounting. With an empty schedule and infinite link
   capacity it reproduces the legacy engine's metrics byte-for-byte
   (asserted by test/test_resil.ml): the router then always picks the
   fleet's own fault-free choice over the same fixed paths, and the
   capacity tracker is a no-op. *)

module Obs = Vod_obs.Obs

type config = {
  schedule : Event.schedule;
  link_capacity_mbps : float;   (* uniform per directed link; infinity = off *)
  origin : int option;          (* last-resort full-library VHO *)
  saturation_frac : float;
}

let config ?(schedule = Event.empty) ?(link_capacity_mbps = Float.infinity)
    ?origin ?(saturation_frac = 0.95) () =
  { schedule; link_capacity_mbps; origin; saturation_frac }

(* Per-event-window serving deltas: one window per applied event (plus
   the leading fault-free window), so a report can show how much each
   outage or repair cost. *)
type window = {
  t0_s : float;
  t1_s : float;
  trigger : string;    (* "start" or the event that opened the window *)
  requests : int;
  rejections : int;
  failovers : int;
}

type t = {
  state : State.t;
  capacity : Capacity.t;
  router : Router.t;
  mutable win_t0 : float;
  mutable win_trigger : string;
  mutable win_requests : int;
  mutable win_rejections : int;
  mutable win_failovers : int;
  mutable windows_rev : window list;
  mutable finished : bool;
  (* Routing scratch for the columnar playout: [play_soa] parks the
     current row's parameters here so one route closure per batch (not
     per request) can read them — the request loop itself stays
     allocation-free (alloc-in-hot). *)
  mutable cur_video : int;
  mutable cur_vho : int;
  mutable cur_rate : float;
  mutable cur_now : float;
  mutable cur_until : float;
  mutable decision : Router.decision;
}

let create ~graph ~paths (cfg : config) =
  let n_links = Vod_topology.Graph.n_links graph in
  let state =
    State.create ~n_vhos:(Vod_topology.Graph.n_nodes graph) ~n_links cfg.schedule
  in
  let capacity =
    Capacity.create
      ~capacity_mbps:(Array.make n_links cfg.link_capacity_mbps)
      ~saturation_frac:cfg.saturation_frac ()
  in
  let router =
    Router.create ~graph ~paths ~state ~capacity ?origin:cfg.origin ()
  in
  {
    state;
    capacity;
    router;
    win_t0 = 0.0;
    win_trigger = "start";
    win_requests = 0;
    win_rejections = 0;
    win_failovers = 0;
    windows_rev = [];
    finished = false;
    cur_video = 0;
    cur_vho = 0;
    cur_rate = 0.0;
    cur_now = 0.0;
    cur_until = 0.0;
    decision = Router.Rejected Router.No_replica;
  }

let close_window t ~now ~trigger =
  t.windows_rev <-
    {
      t0_s = t.win_t0;
      t1_s = now;
      trigger = t.win_trigger;
      requests = t.win_requests;
      rejections = t.win_rejections;
      failovers = t.win_failovers;
    }
    :: t.windows_rev;
  Obs.push "resil/window/requests" (float_of_int t.win_requests);
  Obs.push "resil/window/rejections" (float_of_int t.win_rejections);
  Obs.push "resil/window/failovers" (float_of_int t.win_failovers);
  t.win_t0 <- now;
  t.win_trigger <- trigger;
  t.win_requests <- 0;
  t.win_rejections <- 0;
  t.win_failovers <- 0

let on_event t (e : Event.t) =
  Obs.incr "resil/events_applied";
  (match e.Event.kind with
  | Event.Link_down _ | Event.Link_up _ -> Router.on_link_event t.router
  | Event.Vho_down _ | Event.Vho_up _ | Event.Surge_start _ | Event.Surge_end _
    -> ());
  close_window t ~now:e.Event.time_s ~trigger:(Event.kind_to_string e.Event.kind)

let reject_obs reason =
  Obs.incr "resil/rejections";
  Obs.incr ("resil/rejections/" ^ Router.reject_reason_to_string reason)

let account_reject (metrics : Vod_sim.Metrics.t) (reason : Router.reject_reason) =
  let deg = metrics.Vod_sim.Metrics.deg in
  deg.Vod_sim.Metrics.rejections <- deg.Vod_sim.Metrics.rejections + 1;
  (match reason with
  | Router.Vho_down ->
      deg.Vod_sim.Metrics.rejected_vho_down <-
        deg.Vod_sim.Metrics.rejected_vho_down + 1
  | Router.No_replica ->
      deg.Vod_sim.Metrics.rejected_no_replica <-
        deg.Vod_sim.Metrics.rejected_no_replica + 1
  | Router.Unreachable ->
      deg.Vod_sim.Metrics.rejected_unreachable <-
        deg.Vod_sim.Metrics.rejected_unreachable + 1
  | Router.No_capacity ->
      deg.Vod_sim.Metrics.rejected_no_capacity <-
        deg.Vod_sim.Metrics.rejected_no_capacity + 1);
  reject_obs reason

(* Hoisted out of the request loop: defining this as a local function
   per request allocated a closure per request (alloc-in-hot). *)
let count_request metrics ~track_per_vho ~vho =
  metrics.Vod_sim.Metrics.requests <- metrics.Vod_sim.Metrics.requests + 1;
  if track_per_vho then
    metrics.Vod_sim.Metrics.per_vho_requests.(vho) <-
      metrics.Vod_sim.Metrics.per_vho_requests.(vho) + 1

(* Play a time-sorted request batch through [fleet] under the fault
   timeline, accumulating into [metrics]. Mirrors Vod_sim.Sim.play's
   accounting exactly in the served cases. *)
let play t metrics (catalog : Vod_workload.Catalog.t) fleet
    (requests : Vod_workload.Trace.request array) =
  Vod_sim.Metrics.validate_vhos metrics requests;
  let track_per_vho =
    Array.length metrics.Vod_sim.Metrics.per_vho_requests > 0
  in
  let deg = metrics.Vod_sim.Metrics.deg in
  Array.iter
    (fun (r : Vod_workload.Trace.request) ->
      let now = r.Vod_workload.Trace.time_s in
      let video = r.Vod_workload.Trace.video in
      let vho = r.Vod_workload.Trace.vho in
      ignore (State.advance t.state ~now ~on_event:(on_event t) : int);
      Capacity.expire t.capacity ~now;
      let record = Vod_sim.Metrics.in_record_window metrics now in
      if record then t.win_requests <- t.win_requests + 1;
      if not (State.vho_up t.state vho) then begin
        (* The requesting VHO is dark: nobody there to serve. *)
        if record then begin
          count_request metrics ~track_per_vho ~vho;
          account_reject metrics Router.Vho_down;
          t.win_rejections <- t.win_rejections + 1
        end
      end
      else begin
        let v = Vod_workload.Catalog.video catalog video in
        let surge = State.surge t.state vho in
        let rate = Vod_workload.Video.rate_mbps v *. surge in
        let dur = Vod_workload.Video.duration_s v in
        let decision = ref (Router.Rejected Router.No_replica) in
        let route ~default =
          let d =
            Router.route t.router
              ~holders:(Vod_cache.Fleet.holders fleet ~video)
              ~dst:vho ~default ~rate_mbps:rate ~until_s:(now +. dur) ~now
          in
          decision := d;
          match d with
          | Router.Served s -> Some s.Router.server
          | Router.Rejected _ -> None
        in
        match Vod_cache.Fleet.serve_routed fleet ~video ~vho ~now ~route with
        | Some outcome ->
            if record then begin
              count_request metrics ~track_per_vho ~vho;
              if outcome.Vod_cache.Fleet.local then begin
                metrics.Vod_sim.Metrics.local_served <-
                  metrics.Vod_sim.Metrics.local_served + 1;
                if track_per_vho then
                  metrics.Vod_sim.Metrics.per_vho_local.(vho) <-
                    metrics.Vod_sim.Metrics.per_vho_local.(vho) + 1;
                if outcome.Vod_cache.Fleet.cache_hit then
                  metrics.Vod_sim.Metrics.cache_hits <-
                    metrics.Vod_sim.Metrics.cache_hits + 1
              end
              else begin
                metrics.Vod_sim.Metrics.remote_served <-
                  metrics.Vod_sim.Metrics.remote_served + 1;
                if outcome.Vod_cache.Fleet.not_cachable then
                  metrics.Vod_sim.Metrics.not_cachable <-
                    metrics.Vod_sim.Metrics.not_cachable + 1
              end
            end;
            if not outcome.Vod_cache.Fleet.local then begin
              match !decision with
              | Router.Served s ->
                  (* Explicit loop: an [Array.iter] lambda here is a
                     fresh closure per served remote request
                     (alloc-in-hot). *)
                  let t1 = now +. dur in
                  let links = s.Router.links in
                  for i = 0 to Array.length links - 1 do
                    Vod_sim.Metrics.add_stream metrics ~link:links.(i)
                      ~rate_mbps:rate ~t0:now ~t1
                  done;
                  if record then begin
                    let hops = float_of_int s.Router.hops in
                    let gb = Vod_workload.Video.size_gb v *. surge in
                    metrics.Vod_sim.Metrics.total_gb_hops <-
                      metrics.Vod_sim.Metrics.total_gb_hops +. (gb *. hops);
                    metrics.Vod_sim.Metrics.total_gb_remote <-
                      metrics.Vod_sim.Metrics.total_gb_remote +. gb;
                    if surge > 1.0 then Obs.incr "resil/surged_streams";
                    if s.Router.failover then begin
                      deg.Vod_sim.Metrics.failovers <-
                        deg.Vod_sim.Metrics.failovers + 1;
                      deg.Vod_sim.Metrics.failover_extra_hops <-
                        deg.Vod_sim.Metrics.failover_extra_hops
                        + s.Router.extra_hops;
                      t.win_failovers <- t.win_failovers + 1;
                      Obs.incr "resil/failovers";
                      if s.Router.extra_hops > 0 then
                        Obs.incr ~by:s.Router.extra_hops
                          "resil/failover_extra_hops"
                    end;
                    if s.Router.via_origin then begin
                      deg.Vod_sim.Metrics.origin_served <-
                        deg.Vod_sim.Metrics.origin_served + 1;
                      Obs.incr "resil/origin_served"
                    end
                  end
              | Router.Rejected _ ->
                  (* serve_routed returned an outcome, so route said yes *)
                  invalid_arg "Playout.play: served without a routing decision"
            end
        | None ->
            if record then begin
              count_request metrics ~track_per_vho ~vho;
              (match !decision with
              | Router.Rejected reason -> account_reject metrics reason
              | Router.Served _ ->
                  invalid_arg "Playout.play: rejected with a serving decision");
              t.win_rejections <- t.win_rejections + 1
            end
      end)
    requests

(* Route the request whose parameters sit in the scratch fields; the
   decision is parked for the stream-accounting step. One closure per
   batch (built in [play_soa]), not per request. *)
let route_scratch t fleet ~default =
  let d =
    Router.route t.router
      ~holders:(Vod_cache.Fleet.holders fleet ~video:t.cur_video)
      ~dst:t.cur_vho ~default ~rate_mbps:t.cur_rate ~until_s:t.cur_until
      ~now:t.cur_now
  in
  t.decision <- d;
  match d with
  | Router.Served s -> Some s.Router.server
  | Router.Rejected _ -> None

(* Columnar twin of [play]: rows [lo, hi) of a struct-of-arrays store,
   iterated by index, with the per-request ref/closure pair replaced by
   the scratch fields — the loop body allocates nothing. Same timeline
   advance, same routing, same accounting order, so the metrics are
   byte-for-byte those of [play] on the equivalent request slice. *)
let play_soa t metrics (catalog : Vod_workload.Catalog.t) fleet
    (soa : Vod_workload.Trace_soa.t) ~lo ~hi =
  if lo < 0 || hi < lo || hi > Vod_workload.Trace_soa.length soa then
    invalid_arg "Playout.play_soa: range out of bounds";
  Vod_sim.Metrics.validate_store metrics soa;
  let track_per_vho =
    Array.length metrics.Vod_sim.Metrics.per_vho_requests > 0
  in
  let deg = metrics.Vod_sim.Metrics.deg in
  let route = route_scratch t fleet in
  let on_event = on_event t in
  for i = lo to hi - 1 do
    let now = Vod_workload.Trace_soa.time soa i in
    let video = Vod_workload.Trace_soa.video soa i in
    let vho = Vod_workload.Trace_soa.vho soa i in
    ignore (State.advance t.state ~now ~on_event : int);
    Capacity.expire t.capacity ~now;
    let record = Vod_sim.Metrics.in_record_window metrics now in
    if record then t.win_requests <- t.win_requests + 1;
    if not (State.vho_up t.state vho) then begin
      (* The requesting VHO is dark: nobody there to serve. *)
      if record then begin
        count_request metrics ~track_per_vho ~vho;
        account_reject metrics Router.Vho_down;
        t.win_rejections <- t.win_rejections + 1
      end
    end
    else begin
      let v = Vod_workload.Catalog.video catalog video in
      let surge = State.surge t.state vho in
      let rate = Vod_workload.Video.rate_mbps v *. surge in
      let dur = Vod_workload.Video.duration_s v in
      t.cur_video <- video;
      t.cur_vho <- vho;
      t.cur_rate <- rate;
      t.cur_now <- now;
      t.cur_until <- now +. dur;
      t.decision <- Router.Rejected Router.No_replica;
      match Vod_cache.Fleet.serve_routed fleet ~video ~vho ~now ~route with
      | Some outcome ->
          if record then begin
            count_request metrics ~track_per_vho ~vho;
            if outcome.Vod_cache.Fleet.local then begin
              metrics.Vod_sim.Metrics.local_served <-
                metrics.Vod_sim.Metrics.local_served + 1;
              if track_per_vho then
                metrics.Vod_sim.Metrics.per_vho_local.(vho) <-
                  metrics.Vod_sim.Metrics.per_vho_local.(vho) + 1;
              if outcome.Vod_cache.Fleet.cache_hit then
                metrics.Vod_sim.Metrics.cache_hits <-
                  metrics.Vod_sim.Metrics.cache_hits + 1
            end
            else begin
              metrics.Vod_sim.Metrics.remote_served <-
                metrics.Vod_sim.Metrics.remote_served + 1;
              if outcome.Vod_cache.Fleet.not_cachable then
                metrics.Vod_sim.Metrics.not_cachable <-
                  metrics.Vod_sim.Metrics.not_cachable + 1
            end
          end;
          if not outcome.Vod_cache.Fleet.local then begin
            match t.decision with
            | Router.Served s ->
                let t1 = now +. dur in
                let links = s.Router.links in
                for l = 0 to Array.length links - 1 do
                  Vod_sim.Metrics.add_stream metrics ~link:links.(l)
                    ~rate_mbps:rate ~t0:now ~t1
                done;
                if record then begin
                  let hops = float_of_int s.Router.hops in
                  let gb = Vod_workload.Video.size_gb v *. surge in
                  metrics.Vod_sim.Metrics.total_gb_hops <-
                    metrics.Vod_sim.Metrics.total_gb_hops +. (gb *. hops);
                  metrics.Vod_sim.Metrics.total_gb_remote <-
                    metrics.Vod_sim.Metrics.total_gb_remote +. gb;
                  if surge > 1.0 then Obs.incr "resil/surged_streams";
                  if s.Router.failover then begin
                    deg.Vod_sim.Metrics.failovers <-
                      deg.Vod_sim.Metrics.failovers + 1;
                    deg.Vod_sim.Metrics.failover_extra_hops <-
                      deg.Vod_sim.Metrics.failover_extra_hops
                      + s.Router.extra_hops;
                    t.win_failovers <- t.win_failovers + 1;
                    Obs.incr "resil/failovers";
                    if s.Router.extra_hops > 0 then
                      Obs.incr ~by:s.Router.extra_hops
                        "resil/failover_extra_hops"
                  end;
                  if s.Router.via_origin then begin
                    deg.Vod_sim.Metrics.origin_served <-
                      deg.Vod_sim.Metrics.origin_served + 1;
                    Obs.incr "resil/origin_served"
                  end
                end
            | Router.Rejected _ ->
                (* serve_routed returned an outcome, so route said yes *)
                invalid_arg "Playout.play_soa: served without a routing decision"
          end
      | None ->
          if record then begin
            count_request metrics ~track_per_vho ~vho;
            (match t.decision with
            | Router.Rejected reason -> account_reject metrics reason
            | Router.Served _ ->
                invalid_arg
                  "Playout.play_soa: rejected with a serving decision");
            t.win_rejections <- t.win_rejections + 1
          end
    end
  done

(* Drain the remaining schedule, close saturation intervals and the last
   window, and publish the end-of-run gauges. Idempotent. *)
let finish t (metrics : Vod_sim.Metrics.t) =
  if not t.finished then begin
    t.finished <- true;
    let horizon =
      float_of_int metrics.Vod_sim.Metrics.n_bins *. metrics.Vod_sim.Metrics.bin_s
    in
    ignore (State.advance t.state ~now:horizon ~on_event:(on_event t) : int);
    Capacity.expire t.capacity ~now:horizon;
    Capacity.finish t.capacity ~now:horizon;
    metrics.Vod_sim.Metrics.deg.Vod_sim.Metrics.link_saturated_s <-
      Capacity.saturated_seconds t.capacity;
    Obs.set_gauge "resil/link_saturated_seconds"
      (Capacity.saturated_seconds t.capacity);
    close_window t ~now:horizon ~trigger:"end"
  end

let windows t = List.rev t.windows_rev

(* One-shot playout of a full trace; mirrors Vod_sim.Sim.run's metrics
   creation exactly so the fault-free configurations coincide. *)
let run ~graph ~paths ~catalog ~fleet ~trace ?(bin_s = 300.0)
    ?(record_from = 0.0) (cfg : config) =
  let horizon_s =
    float_of_int trace.Vod_workload.Trace.days
    *. Vod_workload.Trace.seconds_per_day
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos:(Vod_topology.Graph.n_nodes graph)
      ~horizon_s ~bin_s ~record_from ()
  in
  let t = create ~graph ~paths cfg in
  (* [play] can raise (request validation); [finish] is idempotent, so
     settling the ledger under Fun.protect keeps the normal path
     byte-identical while closing it on the exceptional one. *)
  Fun.protect
    ~finally:(fun () -> finish t metrics)
    (fun () -> play t metrics catalog fleet trace.Vod_workload.Trace.requests);
  (metrics, windows t)

(* Columnar twin of [run]: one-shot playout of a full compact store. *)
let run_soa ~graph ~paths ~catalog ~fleet ~store ?(bin_s = 300.0)
    ?(record_from = 0.0) (cfg : config) =
  let horizon_s =
    float_of_int store.Vod_workload.Trace_soa.days
    *. Vod_workload.Trace.seconds_per_day
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos:(Vod_topology.Graph.n_nodes graph)
      ~horizon_s ~bin_s ~record_from ()
  in
  let t = create ~graph ~paths cfg in
  Fun.protect
    ~finally:(fun () -> finish t metrics)
    (fun () ->
      play_soa t metrics catalog fleet store ~lo:0
        ~hi:(Vod_workload.Trace_soa.length store));
  (metrics, windows t)
