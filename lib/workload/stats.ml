(* Trace analytics backing the paper's Sec. IV motivation figures and the
   peak-window machinery of Sec. VI-B. *)

(* [peak_hour_start_s trace] returns the start time (seconds) of the busiest
   1-hour-aligned window of the trace. *)
let peak_hour_start_s (trace : Trace.t) =
  let hours = trace.Trace.days * 24 in
  let counts = Array.make hours 0 in
  Trace.iter
    (fun r ->
      let h = int_of_float (r.Trace.time_s /. 3600.0) in
      if h >= 0 && h < hours then counts.(h) <- counts.(h) + 1)
    trace;
  let best = ref 0 in
  Array.iteri (fun h c -> if c > counts.(!best) then best := h) counts;
  float_of_int !best *. 3600.0

(* [peak_hour_starts_s trace ~k] returns the start times of the [k] busiest
   1-hour-aligned windows on *distinct days* — the paper enforces link
   constraints at |T| = 2 peak windows, typically Friday and Saturday
   evenings. *)
let peak_hour_starts_s (trace : Trace.t) ~k =
  let hours = trace.Trace.days * 24 in
  let counts = Array.make hours 0 in
  Trace.iter
    (fun r ->
      let h = int_of_float (r.Trace.time_s /. 3600.0) in
      if h >= 0 && h < hours then counts.(h) <- counts.(h) + 1)
    trace;
  let order = Array.init hours (fun h -> h) in
  Array.sort (fun a b -> Int.compare counts.(b) counts.(a)) order;
  let chosen = ref [] and used_days = Hashtbl.create 8 in
  (try
     Array.iter
       (fun h ->
         let day = h / 24 in
         if not (Hashtbl.mem used_days day) then begin
           Hashtbl.add used_days day ();
           chosen := h :: !chosen;
           if List.length !chosen >= k then raise Exit
         end)
       order
   with Exit -> ());
  List.rev_map (fun h -> float_of_int h *. 3600.0) !chosen |> List.rev

(* Generalization of [peak_hour_starts_s] to an arbitrary window size: the start
   times of the [k] busiest [window_s]-aligned windows on distinct days.
   Used for Table V, where the paper varies the peak window from 1 s to
   1 day. *)
let peak_windows (trace : Trace.t) ~window_s ~k =
  if window_s <= 0.0 then invalid_arg "Stats.peak_windows: window_s must be positive";
  let horizon = float_of_int trace.Trace.days *. Trace.seconds_per_day in
  let n_bins = int_of_float (ceil (horizon /. window_s)) in
  let counts = Array.make n_bins 0 in
  Trace.iter
    (fun r ->
      let b = int_of_float (r.Trace.time_s /. window_s) in
      if b >= 0 && b < n_bins then counts.(b) <- counts.(b) + 1)
    trace;
  let order = Array.init n_bins (fun b -> b) in
  Array.sort (fun a b -> Int.compare counts.(b) counts.(a)) order;
  let chosen = ref [] and used_days = Hashtbl.create 8 in
  (try
     Array.iter
       (fun b ->
         let day = Trace.day_of_time (float_of_int b *. window_s) in
         if not (Hashtbl.mem used_days day) then begin
           Hashtbl.add used_days day ();
           chosen := b :: !chosen;
           if List.length !chosen >= k then raise Exit
         end)
       order
   with Exit -> ());
  List.rev_map (fun b -> float_of_int b *. window_s) !chosen |> List.rev

(* Working set of a VHO in a window: the distinct videos requested, and the
   disk space they occupy (Fig. 2 reports both, normalized by library
   size). *)
let working_set (trace : Trace.t) (catalog : Catalog.t) ~vho ~t0 ~t1 =
  let seen = Hashtbl.create 256 in
  Trace.iter
    (fun r ->
      if r.Trace.vho = vho && r.Trace.time_s >= t0 && r.Trace.time_s < t1 then
        Hashtbl.replace seen r.Trace.video ())
    trace;
  let distinct = Hashtbl.length seen in
  (* Sorted-key fold: the working-set size must not depend on the hash
     table's insertion history (float addition is not associative). *)
  let size =
    List.fold_left
      (fun acc video -> acc +. Video.size_gb (Catalog.video catalog video))
      0.0
      (Vod_util.Stats_acc.sorted_keys Int.compare seen)
  in
  (distinct, size)

(* Request-count vector of a VHO over a window, as a sparse hashtable
   (video -> count), for the cosine-similarity analysis of Fig. 3. *)
let request_vector (trace : Trace.t) ~vho ~t0 ~t1 =
  let v = Hashtbl.create 256 in
  Trace.iter
    (fun r ->
      if r.Trace.vho = vho && r.Trace.time_s >= t0 && r.Trace.time_s < t1 then
        let c = Option.value ~default:0.0 (Hashtbl.find_opt v r.Trace.video) in
        Hashtbl.replace v r.Trace.video (c +. 1.0))
    trace;
  v

(* Fig. 3: for a window size [w] seconds, partition time into intervals of
   size [w]; compare the interval containing the global peak instant with
   the previous interval, per VHO. Returns the per-VHO similarity array. *)
let peak_interval_similarity (trace : Trace.t) ~window_s =
  let peak_t = peak_hour_start_s trace +. 1800.0 (* middle of the peak hour *) in
  let idx = int_of_float (peak_t /. window_s) in
  if idx = 0 then Array.make trace.Trace.n_vhos 1.0
  else
    Array.init trace.Trace.n_vhos (fun vho ->
        let t0 = float_of_int idx *. window_s in
        let v_cur = request_vector trace ~vho ~t0 ~t1:(t0 +. window_s) in
        let v_prev = request_vector trace ~vho ~t0:(t0 -. window_s) ~t1:t0 in
        Vod_util.Stats_acc.cosine_similarity v_cur v_prev)

(* Concurrent-stream counts per (video, vho) for a window: a request is
   counted if its playback interval [t_req, t_req + duration) intersects
   [t0, t1). With a 1-second window this is instantaneous concurrency; with
   a 1-day window it over-counts — exactly the over-provisioning effect the
   paper studies in Table V. Returns a sparse per-video list. *)
let concurrency (trace : Trace.t) (catalog : Catalog.t) ~t0 ~t1 =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  Trace.iter
    (fun r ->
      let dur = Video.duration_s (Catalog.video catalog r.Trace.video) in
      let start = r.Trace.time_s and fin = r.Trace.time_s +. dur in
      if start < t1 && fin > t0 then
        let key = (r.Trace.video, r.Trace.vho) in
        let c = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (c + 1))
    trace;
  tbl

(* Per-(video, vho) aggregate request counts over the trace (the MIP's
   a_j^m input). *)
let aggregate_demand (trace : Trace.t) =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  Trace.iter
    (fun r ->
      let key = (r.Trace.video, r.Trace.vho) in
      let c = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (c + 1))
    trace;
  tbl

(* Least-squares Zipf exponent fit on the head of a rank/frequency curve:
   regress log(count) on log(rank) over the top [head_frac] of ranks
   (the exponential cutoff bends the tail, so fitting the head recovers
   the underlying exponent). Returns the positive exponent alpha such
   that count(r) ~ r^-alpha. Used to validate that generated traces match
   the configured popularity law. *)
let fit_zipf_exponent ?(head_frac = 0.2) counts =
  let sorted = Array.copy counts in
  Array.sort (fun a b -> Int.compare b a) sorted;
  let n = Array.length sorted in
  let k = max 2 (int_of_float (head_frac *. float_of_int n)) in
  let xs = ref [] and ys = ref [] in
  for r = 0 to min (k - 1) (n - 1) do
    if sorted.(r) > 0 then begin
      xs := log (float_of_int (r + 1)) :: !xs;
      ys := log (float_of_int sorted.(r)) :: !ys
    end
  done;
  let xs = Array.of_list !xs and ys = Array.of_list !ys in
  let m = Array.length xs in
  if m < 2 then invalid_arg "Stats.fit_zipf_exponent: not enough positive counts";
  let mf = float_of_int m in
  let mean a = Array.fold_left ( +. ) 0.0 a /. mf in
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to m - 1 do
    num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    den := !den +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  if !den = 0.0 then invalid_arg "Stats.fit_zipf_exponent: degenerate ranks";
  -.(!num /. !den)

(* Daily request counts for one video (Fig. 4's per-episode series). *)
let daily_counts (trace : Trace.t) ~video =
  let counts = Array.make trace.Trace.days 0 in
  Trace.iter
    (fun r ->
      if r.Trace.video = video then
        let d = Trace.day_of_time r.Trace.time_s in
        if d >= 0 && d < trace.Trace.days then counts.(d) <- counts.(d) + 1)
    trace;
  counts
