(** The catalog's unit of placement. The paper maps all content to four
    length classes — 5 min / 30 min / 1 h / 2 h, stored as 100 MB / 500 MB /
    1 GB / 2 GB — streaming at 2 Mb/s SD (Sec. VII-A). *)

type size_class = Clip | Show | Movie | Long_movie

type kind =
  | Regular
  | Music_video
  | Episode of { series : int; episode : int }
  | Blockbuster

type t = {
  id : int;
  size_class : size_class;
  kind : kind;
  release_day : int;
      (** day index at which the video enters the catalog; [<= 0] means it
          predates the trace *)
  base_weight : float;  (** steady-state Zipf-with-cutoff popularity weight *)
}

(** Storage footprint in GB (paper's class mapping). *)
val size_gb : t -> float

(** Playback duration in seconds. *)
val duration_s : t -> float

(** Streaming rate; constant 2 Mb/s SD. *)
val rate_mbps : t -> float

(** [is_new ~day v] holds when [v] was released within the 7 days before
    [day] — the paper's notion of "new video" without request history. *)
val is_new : day:int -> t -> bool

(** Debug printer. *)
val pp : Format.formatter -> t -> unit
