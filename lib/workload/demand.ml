(* The MIP's demand-side input, built from a (real or predicted) request
   batch for one placement period:

   - a_j^m : aggregate request count per (video, VHO) over the period
     (paper Table I), stored sparsely per video;
   - f_j^m(t) : concurrent-stream counts per (video, VHO) during each of
     the |T| peak windows (paper uses |T| = 2 one-hour windows). *)

type t = {
  n_videos : int;
  n_vhos : int;
  a : (int * float) array array;          (* a.(video) = [| (vho, count) |] *)
  f : (int * float) array array array;    (* f.(w).(video) = [| (vho, n) |] *)
  windows : (float * float) array;        (* [t0, t1) of each peak window *)
  total_requests : float;
}

let sparse_of_tbl ~n_videos (tbl : (int * int, int) Hashtbl.t) =
  let per_video = Array.make n_videos [] in
  Hashtbl.iter
    (fun (video, vho) count ->
      per_video.(video) <- (vho, float_of_int count) :: per_video.(video))
    tbl;
  Array.map
    (fun l ->
      let arr = Array.of_list l in
      Array.sort (fun (i, _) (j, _) -> Int.compare i j) arr;
      arr)
    per_video

(* [of_requests] builds the demand model from a request batch. [day0] is
   the first day of the placement period; requests are rebased so peak
   selection works on a [days]-long horizon. *)
let of_requests (catalog : Catalog.t) ~n_vhos ~day0 ~days ~n_windows ~window_s
    (requests : Trace.request array) =
  let base = float_of_int day0 *. Trace.seconds_per_day in
  let rebased =
    Array.map (fun r -> { r with Trace.time_s = r.Trace.time_s -. base }) requests
  in
  (* Requests may spill slightly outside the period (e.g. a prediction
     cloned from a source with a different weekday alignment); clamp. *)
  let horizon = float_of_int days *. Trace.seconds_per_day in
  let rebased =
    Array.of_seq
      (Seq.filter
         (fun r -> r.Trace.time_s >= 0.0 && r.Trace.time_s < horizon)
         (Array.to_seq rebased))
  in
  let trace = Trace.create ~n_vhos ~days rebased in
  let n_videos = Catalog.n_videos catalog in
  let a = sparse_of_tbl ~n_videos (Stats.aggregate_demand trace) in
  let window_starts = Stats.peak_windows trace ~window_s ~k:n_windows in
  let windows =
    Array.of_list (List.map (fun t0 -> (t0, t0 +. window_s)) window_starts)
  in
  let f =
    Array.map
      (fun (t0, t1) -> sparse_of_tbl ~n_videos (Stats.concurrency trace catalog ~t0 ~t1))
      windows
  in
  let total_requests = float_of_int (Trace.length trace) in
  { n_videos; n_vhos; a; f; windows; total_requests }

(* Total requests for a video across VHOs. *)
let video_requests t video =
  Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 t.a.(video)

(* Videos ranked by total demand, busiest first (Figs. 7 and 8). *)
let rank_by_demand t =
  let order = Array.init t.n_videos (fun v -> v) in
  let tot = Array.init t.n_videos (fun v -> video_requests t v) in
  Array.sort (fun x y -> Float.compare tot.(y) tot.(x)) order;
  order
