(* The MIP's demand-side input, built from a (real or predicted) request
   batch for one placement period:

   - a_j^m : aggregate request count per (video, VHO) over the period
     (paper Table I), stored sparsely per video;
   - f_j^m(t) : concurrent-stream counts per (video, VHO) during each of
     the |T| peak windows (paper uses |T| = 2 one-hour windows). *)

type t = {
  n_videos : int;
  n_vhos : int;
  a : (int * float) array array;          (* a.(video) = [| (vho, count) |] *)
  f : (int * float) array array array;    (* f.(w).(video) = [| (vho, n) |] *)
  windows : (float * float) array;        (* [t0, t1) of each peak window *)
  total_requests : float;
}

let sparse_of_tbl ~n_videos (tbl : (int * int, int) Hashtbl.t) =
  let per_video = Array.make n_videos [] in
  Hashtbl.iter
    (fun (video, vho) count ->
      per_video.(video) <- (vho, float_of_int count) :: per_video.(video))
    tbl;
  Array.map
    (fun l ->
      let arr = Array.of_list l in
      Array.sort (fun (i, _) (j, _) -> Int.compare i j) arr;
      arr)
    per_video

(* [of_requests] builds the demand model from a request batch. [day0] is
   the first day of the placement period; requests are rebased so peak
   selection works on a [days]-long horizon. *)
let of_requests (catalog : Catalog.t) ~n_vhos ~day0 ~days ~n_windows ~window_s
    (requests : Trace.request array) =
  let base = float_of_int day0 *. Trace.seconds_per_day in
  let rebased =
    Array.map (fun r -> { r with Trace.time_s = r.Trace.time_s -. base }) requests
  in
  (* Requests may spill slightly outside the period (e.g. a prediction
     cloned from a source with a different weekday alignment); clamp. *)
  let horizon = float_of_int days *. Trace.seconds_per_day in
  let rebased =
    Array.of_seq
      (Seq.filter
         (fun r -> r.Trace.time_s >= 0.0 && r.Trace.time_s < horizon)
         (Array.to_seq rebased))
  in
  let trace = Trace.create ~n_vhos ~days rebased in
  let n_videos = Catalog.n_videos catalog in
  let a = sparse_of_tbl ~n_videos (Stats.aggregate_demand trace) in
  let window_starts = Stats.peak_windows trace ~window_s ~k:n_windows in
  let windows =
    Array.of_list (List.map (fun t0 -> (t0, t0 +. window_s)) window_starts)
  in
  let f =
    Array.map
      (fun (t0, t1) -> sparse_of_tbl ~n_videos (Stats.concurrency trace catalog ~t0 ~t1))
      windows
  in
  let total_requests = float_of_int (Trace.length trace) in
  { n_videos; n_vhos; a; f; windows; total_requests }

(* Columnar variant of [of_requests]: same rebase/clamp semantics, same
   peak-window selection (bin counts sorted with the identical
   comparator, one window per day), same sparse extraction — but
   iterating the Bigarray columns of a store slice [lo, hi), so no boxed
   request batch is ever staged. Produces a value equal to
   [of_requests] on [Trace_soa.window_requests soa ~lo ~hi] (asserted
   by test/test_soa.ml). *)
let of_soa (catalog : Catalog.t) ~n_vhos ~day0 ~days ~n_windows ~window_s
    (soa : Trace_soa.t) ~lo ~hi =
  if lo < 0 || hi < lo || hi > Trace_soa.length soa then
    invalid_arg "Demand.of_soa: range out of bounds";
  if window_s <= 0.0 then invalid_arg "Demand.of_soa: window_s must be positive";
  if soa.Trace_soa.n_vhos > n_vhos then
    invalid_arg "Demand.of_soa: store VHO ids exceed n_vhos";
  let base = float_of_int day0 *. Trace.seconds_per_day in
  let horizon = float_of_int days *. Trace.seconds_per_day in
  let n_videos = Catalog.n_videos catalog in
  (* One pass: aggregate (video, vho) counts plus per-bin volumes. *)
  let atbl : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let n_bins = int_of_float (ceil (horizon /. window_s)) in
  let bins = Array.make (max 1 n_bins) 0 in
  let total = ref 0 in
  for i = lo to hi - 1 do
    let ts = Trace_soa.time soa i -. base in
    if ts >= 0.0 && ts < horizon then begin
      incr total;
      let key = (Trace_soa.video soa i, Trace_soa.vho soa i) in
      let c = Option.value ~default:0 (Hashtbl.find_opt atbl key) in
      Hashtbl.replace atbl key (c + 1);
      let b = int_of_float (ts /. window_s) in
      if b >= 0 && b < n_bins then bins.(b) <- bins.(b) + 1
    end
  done;
  let a = sparse_of_tbl ~n_videos atbl in
  (* Peak-window selection: Stats.peak_windows' algorithm verbatim
     (busiest bins first, at most one per day). *)
  let order = Array.init n_bins (fun b -> b) in
  Array.sort (fun x y -> Int.compare bins.(y) bins.(x)) order;
  let chosen = ref [] and used_days = Hashtbl.create 8 in
  (try
     Array.iter
       (fun b ->
         let day = Trace.day_of_time (float_of_int b *. window_s) in
         if not (Hashtbl.mem used_days day) then begin
           Hashtbl.add used_days day ();
           chosen := b :: !chosen;
           if List.length !chosen >= n_windows then raise Exit
         end)
       order
   with Exit -> ());
  let window_starts =
    List.rev_map (fun b -> float_of_int b *. window_s) !chosen |> List.rev
  in
  let windows =
    Array.of_list (List.map (fun t0 -> (t0, t0 +. window_s)) window_starts)
  in
  let f =
    Array.map
      (fun (t0, t1) ->
        let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
        for i = lo to hi - 1 do
          let ts = Trace_soa.time soa i -. base in
          if ts >= 0.0 && ts < horizon then begin
            let video = Trace_soa.video soa i in
            let dur = Video.duration_s (Catalog.video catalog video) in
            if ts < t1 && ts +. dur > t0 then begin
              let key = (video, Trace_soa.vho soa i) in
              let c = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
              Hashtbl.replace tbl key (c + 1)
            end
          end
        done;
        sparse_of_tbl ~n_videos tbl)
      windows
  in
  { n_videos; n_vhos; a; f; windows; total_requests = float_of_int !total }

(* Total requests for a video across VHOs. *)
let video_requests t video =
  Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 t.a.(video)

(* Videos ranked by total demand, busiest first (Figs. 7 and 8). *)
let rank_by_demand t =
  let order = Array.init t.n_videos (fun v -> v) in
  let tot = Array.init t.n_videos (fun v -> video_requests t v) in
  Array.sort (fun x y -> Float.compare tot.(y) tot.(x)) order;
  order
