(** Trace import/export in a one-request-per-line CSV format
    ([time_s,vho,video]) so real request logs can drive the optimizer and
    synthetic traces can be exported for external replay. *)

(** The CSV header line. *)
val header : string

(** Write a trace; overwrites [path]. *)
val save_csv : Trace.t -> string -> unit

(** Load and validate a trace. Raises [Invalid_argument] on malformed
    records (with the line number), on a video id outside
    [\[0, n_videos)] when the bound is given (also line-numbered), or
    on out-of-range VHO ids / times (via {!Trace.create}); raises
    [Sys_error] if the file is unreadable. *)
val load_csv : ?n_videos:int -> n_vhos:int -> days:int -> string -> Trace.t

(** Streamed columnar export: writes row by row from the compact store;
    no boxed request is materialized. Byte-identical output to
    {!save_csv} on the equivalent trace. *)
val save_csv_soa : Trace_soa.t -> string -> unit

(** Streamed columnar import: parses line by line straight into a
    {!Trace_soa.Builder}, so the only boxed request alive is the one
    being parsed (the configurable-window contract; the window here is
    a single record). Same validation and errors as {!load_csv}; sets
    the [mem/trace_store_bytes] gauge when metrics are on. *)
val load_csv_soa :
  ?n_videos:int -> n_vhos:int -> days:int -> string -> Trace_soa.t
