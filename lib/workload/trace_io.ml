(* Trace import/export.

   A production deployment feeds the optimizer from real request logs; a
   CSV with one request per line is the interchange format:

     time_s,vho,video
     8123.5,12,4711

   [save_csv]/[load_csv] round-trip exactly, so operators can also export
   a synthetic trace, replay it elsewhere, or splice in their own. *)

let header = "time_s,vho,video"

let save_csv (trace : Trace.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      Trace.iter
        (fun r ->
          Printf.fprintf oc "%.3f,%d,%d\n" r.Trace.time_s r.Trace.vho r.Trace.video)
        trace)

let parse_line ~lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ t; vho; video ] -> (
      try
        {
          Trace.time_s = float_of_string t;
          vho = int_of_string vho;
          video = int_of_string video;
        }
      with Failure _ ->
        invalid_arg (Printf.sprintf "Trace_io.load_csv: bad record on line %d" lineno))
  | _ -> invalid_arg (Printf.sprintf "Trace_io.load_csv: bad record on line %d" lineno)

(* Per-record video-id bound. [Trace.create] validates vho and time but
   knows nothing about the catalog, so without this check a stale or
   hand-edited CSV only blows up deep inside playout with an
   array-bounds exception; here it is a line-numbered parse error. *)
let check_video ~lineno ~n_videos (r : Trace.request) =
  match n_videos with
  | Some n when r.Trace.video < 0 || r.Trace.video >= n ->
      invalid_arg
        (Printf.sprintf
           "Trace_io.load_csv: video id %d out of range [0, %d) on line %d"
           r.Trace.video n lineno)
  | Some _ | None -> r

(* Streamed columnar variants: the CSV is read or written one line at a
   time against a Trace_soa store, so the only boxed request alive is
   the record being parsed — the whole-trace boxed list of [load_csv]
   never exists. This is the interchange path for traces too large to
   stage in records (the million-video tier). *)

let save_csv_soa (soa : Trace_soa.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      for i = 0 to Trace_soa.length soa - 1 do
        Printf.fprintf oc "%.3f,%d,%d\n" (Trace_soa.time soa i)
          (Trace_soa.vho soa i) (Trace_soa.video soa i)
      done)

let load_csv_soa ?n_videos ~n_vhos ~days path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let b = Trace_soa.Builder.create ~n_vhos ~days () in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = input_line ic in
           let trimmed = String.trim line in
           if trimmed <> "" && not (!lineno = 1 && trimmed = header) then begin
             let r =
               check_video ~lineno:!lineno ~n_videos
                 (parse_line ~lineno:!lineno trimmed)
             in
             Trace_soa.Builder.add b ~time_s:r.Trace.time_s ~vho:r.Trace.vho
               ~video:r.Trace.video
           end
         done
       with End_of_file -> ());
      let soa = Trace_soa.Builder.finish b in
      Vod_obs.Obs.set_gauge "mem/trace_store_bytes"
        (float_of_int (Trace_soa.resident_bytes soa));
      soa)

let load_csv ?n_videos ~n_vhos ~days path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let requests = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = input_line ic in
           let trimmed = String.trim line in
           if trimmed <> "" && not (!lineno = 1 && trimmed = header) then
             requests :=
               check_video ~lineno:!lineno ~n_videos
                 (parse_line ~lineno:!lineno trimmed)
               :: !requests
         done
       with End_of_file -> ());
      Trace.create ~n_vhos ~days (Array.of_list !requests))
