(** Trace analytics backing the paper's Sec. IV motivation figures
    (working-set size, request-mix similarity) and the peak-window
    machinery of Sec. VI-B / Table V. *)

(** Start time (s) of the busiest 1-hour-aligned window. *)
val peak_hour_start_s : Trace.t -> float

(** Start times of the [k] busiest 1-hour windows on distinct days (the
    paper's |T| = 2 peak link-constraint windows). *)
val peak_hour_starts_s : Trace.t -> k:int -> float list

(** [peak_windows t ~window_s ~k]: start times of the [k] busiest
    [window_s]-aligned windows on distinct days (Table V's sweep from 1 s
    to 1 day). Raises [Invalid_argument] on a nonpositive window. *)
val peak_windows : Trace.t -> window_s:float -> k:int -> float list

(** [(distinct, gb)] videos requested at [vho] during [t0, t1) (Fig. 2). *)
val working_set :
  Trace.t -> Catalog.t -> vho:int -> t0:float -> t1:float -> int * float

(** Sparse request-count vector (video -> count) of a VHO over a window. *)
val request_vector :
  Trace.t -> vho:int -> t0:float -> t1:float -> (int, float) Hashtbl.t

(** Per-VHO cosine similarity between the window containing the peak
    instant and the previous window (Fig. 3). *)
val peak_interval_similarity : Trace.t -> window_s:float -> float array

(** Concurrent-stream counts per (video, vho) whose playback interval
    intersects [t0, t1) — the MIP's f_j^m(t) input. *)
val concurrency :
  Trace.t -> Catalog.t -> t0:float -> t1:float -> (int * int, int) Hashtbl.t

(** Aggregate request counts per (video, vho) — the MIP's a_j^m input. *)
val aggregate_demand : Trace.t -> (int * int, int) Hashtbl.t

(** Per-day request counts for one video (Fig. 4). *)
val daily_counts : Trace.t -> video:int -> int array

(** Least-squares Zipf exponent fitted on the head ([head_frac], default
    20 %) of a rank/frequency curve; validates generated traces against
    the configured popularity law. Raises [Invalid_argument] when fewer
    than two positive counts exist. *)
val fit_zipf_exponent : ?head_frac:float -> int array -> float
