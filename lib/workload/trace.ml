(* A request trace: the simulator's and the demand estimator's common
   input. Times are absolute seconds from trace start (day 0, 00:00). *)

type request = {
  time_s : float;
  vho : int;
  video : int;
}

type t = {
  requests : request array;  (* sorted by time *)
  n_vhos : int;
  days : int;
}

let seconds_per_day = 86_400.0

let day_of_time time_s = int_of_float (time_s /. seconds_per_day)

let create ~n_vhos ~days requests =
  let sorted = Array.copy requests in
  Array.sort (fun a b -> Float.compare a.time_s b.time_s) sorted;
  Array.iter
    (fun r ->
      if r.vho < 0 || r.vho >= n_vhos then invalid_arg "Trace.create: vho out of range";
      if r.time_s < 0.0 || r.time_s >= float_of_int days *. seconds_per_day then
        invalid_arg "Trace.create: request time outside trace horizon")
    sorted;
  { requests = sorted; n_vhos; days }

let length t = Array.length t.requests

(* Requests with time in [t0_s, t1_s) — a contiguous slice because the
   trace is time-sorted. *)
let between t ~t0_s ~t1_s =
  let n = Array.length t.requests in
  (* Binary search for the first index with time >= bound. *)
  let lower bound =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.requests.(mid).time_s < bound then go (mid + 1) hi else go lo mid
    in
    go 0 n
  in
  let i0 = lower t0_s and i1 = lower t1_s in
  Array.sub t.requests i0 (i1 - i0)

let between_days t ~day_lo ~day_hi =
  between t
    ~t0_s:(float_of_int day_lo *. seconds_per_day)
    ~t1_s:(float_of_int day_hi *. seconds_per_day)

let iter f t = Array.iter f t.requests

let fold f init t = Array.fold_left f init t.requests

(* Per-video total request counts. *)
let counts_per_video t ~n_videos =
  let c = Array.make n_videos 0 in
  Array.iter (fun r -> c.(r.video) <- c.(r.video) + 1) t.requests;
  c
