(** Synthetic request-trace generator reproducing the properties the
    paper's evaluation depends on: population-proportional per-VHO volume,
    Zipf-with-cutoff popularity, Fri/Sat-heavy weekly and prime-time-peaked
    diurnal intensity, freshness spikes for weekly series episodes and
    blockbusters, and regional taste variation. *)

type params = {
  catalog : Catalog.t;
  populations : float array;
  mean_daily_requests : float;
  taste_spread : float;
  seed : int;
}

(** Defaults with [taste_spread = 0.6]. *)
val default_params :
  catalog:Catalog.t ->
  populations:float array ->
  mean_daily_requests:float ->
  seed:int ->
  params

(** Poisson sampler (exact for small lambda, normal approximation above 30);
    exposed for tests. *)
val poisson : Vod_util.Rng.t -> float -> int

(** Generate the full trace, deterministically from [params.seed].
    Days are generated in parallel on a [jobs]-worker domain pool
    ([0] = the process default, see {!Vod_util.Pool.default_jobs});
    each day draws from its own split RNG stream and batches are
    concatenated in day order, so the result is bit-identical at any
    job count. *)
val generate : ?jobs:int -> params -> Trace.t

(** The struct-of-arrays generator: the same request sequence as
    {!generate} (same seed, same split RNG streams, same final time
    sort — [generate_soa p] holds exactly the rows of
    [Trace_soa.of_trace (generate p)]), but sampled into a compact
    Bigarray-backed {!Trace_soa.t}. No boxed request is ever
    materialized; per-day sampling stages flat columns and appends them
    into the store in batches of at most [window_days] days (default 7)
    — the configurable staging window. Sets the
    [mem/trace_store_bytes] gauge when metrics are on. Bit-identical at
    any job count. *)
val generate_soa : ?jobs:int -> ?window_days:int -> params -> Trace_soa.t
