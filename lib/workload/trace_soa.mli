(** Compact struct-of-arrays request store — the million-request form of
    {!Trace}. One boxed {!Trace.request} costs five words (40 bytes plus
    a boxed float); the columnar store costs 16 bytes per request flat:
    a float64 Bigarray of times and two int32 Bigarrays of VHO and video
    ids, all off the OCaml heap (no GC scanning, no per-request boxing).

    Ordering contract: rows are sorted by ascending [time] with the
    {e same} comparator and the same (unstable) [Array.sort] permutation
    {!Trace.create} applies, so [to_trace (of_trace t)] round-trips
    byte-for-byte and the SoA serving paths replay requests in exactly
    the order the array-backed engines do. *)

type t = {
  times : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  vhos : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
  videos : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
  n_vhos : int;
  days : int;
}

(** Number of requests (rows). *)
val length : t -> int

(** Row accessors; [time t i] is the request time in seconds from trace
    start. Raise [Invalid_argument] on an out-of-range row (Bigarray
    bounds check). *)
val time : t -> int -> float

val vho : t -> int -> int
val video : t -> int -> int

(** Resident size of the three columns in bytes (16 bytes per row) —
    what the [mem/trace_store_bytes] gauge reports. *)
val resident_bytes : t -> int

(** [of_columns ~n_vhos ~days ~times ~vhos ~videos] validates (VHO in
    range, time within the horizon, equal column lengths) and sorts the
    rows by time via an index permutation — the permutation [Array.sort]
    with [Float.compare] on times produces, i.e. exactly the order
    {!Trace.create} would give the same rows. The inputs are plain OCaml
    arrays (a staging window, not the store); they are not retained. *)
val of_columns :
  n_vhos:int ->
  days:int ->
  times:float array ->
  vhos:int array ->
  videos:int array ->
  t

(** Lossless conversions against the boxed representation.
    [to_trace (of_trace tr)] equals [tr] request-for-request. *)
val of_trace : Trace.t -> t

val to_trace : t -> Trace.t

(** Row range [lo, hi) with time in [[t0_s, t1_s)) — binary search over
    the sorted time column; [lo = hi] for an empty window. *)
val between : t -> t0_s:float -> t1_s:float -> int * int

(** Row range of days [[day_lo, day_hi)). *)
val between_days : t -> day_lo:int -> day_hi:int -> int * int

(** [iter_windows t ~window ~f] cuts the full store into consecutive
    chunks of at most [window] rows and calls [f ~lo ~hi] on each, in
    order — the chunked-reader primitive: a consumer staging rows into
    boxed form never needs more than [window] of them live. [window]
    must be positive. No call for an empty store. *)
val iter_windows : t -> window:int -> f:(lo:int -> hi:int -> unit) -> unit

(** Boxed requests of rows [[lo, hi)) — the bounded staging bridge for
    array-based consumers (never materializes more than one window).
    Raises [Invalid_argument] if the range is out of bounds. *)
val window_requests : t -> lo:int -> hi:int -> Trace.request array

(** Per-video total request counts, as {!Trace.counts_per_video}. *)
val counts_per_video : t -> n_videos:int -> int array

(** Growable columnar builder used by the streaming CSV loader and the
    sharded generator: rows append into doubling Bigarray columns (still
    16 bytes per row, never boxed), and {!Builder.finish} validates and
    time-sorts exactly as {!of_columns}. *)
module Builder : sig
  type store = t

  type t

  (** [create ?capacity ~n_vhos ~days ()] — [capacity] is the initial
      column allocation in rows (grows by doubling). *)
  val create : ?capacity:int -> n_vhos:int -> days:int -> unit -> t

  (** Append one row (unvalidated until {!finish}). *)
  val add : t -> time_s:float -> vho:int -> video:int -> unit

  (** Append [n] rows read from plain-array staging columns. *)
  val add_columns :
    t -> times:float array -> vhos:int array -> videos:int array -> n:int -> unit

  (** Rows appended so far. *)
  val length : t -> int

  (** Validate, time-sort (the {!of_columns} permutation) and return the
      store. The builder must not be reused afterwards. *)
  val finish : t -> store
end
