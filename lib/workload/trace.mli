(** Request traces: the common input of the simulator and the demand
    estimator. Times are absolute seconds from trace start. *)

type request = {
  time_s : float;
  vho : int;
  video : int;
}

type t = {
  requests : request array;  (** sorted by time *)
  n_vhos : int;
  days : int;
}

val seconds_per_day : float

(** Day index containing an absolute time. *)
val day_of_time : float -> int

(** [create ~n_vhos ~days requests] sorts and validates a request batch.
    Raises [Invalid_argument] on out-of-range VHO ids or times. *)
val create : n_vhos:int -> days:int -> request array -> t

(** Number of requests. *)
val length : t -> int

(** Requests whose time lies in [t0_s, t1_s) (seconds from trace start) —
    the float-bounded primitive behind {!between_days}, used by the
    online re-placement daemon's sliding windows. *)
val between : t -> t0_s:float -> t1_s:float -> request array

(** Requests whose day lies in [day_lo, day_hi). *)
val between_days : t -> day_lo:int -> day_hi:int -> request array

(** Visit every request in time order. *)
val iter : (request -> unit) -> t -> unit

(** Left fold over the requests in time order. *)
val fold : ('a -> request -> 'a) -> 'a -> t -> 'a

(** Per-video total request counts over the whole trace. *)
val counts_per_video : t -> n_videos:int -> int array
