(** Temporal demand profiles: weekly (Fri/Sat-heavy) and diurnal
    (prime-time-peaked) intensity, freshness decay for new releases, and a
    stable per-(VHO, video) taste multiplier that differentiates regional
    request mixes (paper Sec. IV-B, VI-B). *)

(** Relative volume for a day-of-week (day 0 = Monday). *)
val day_weight : int -> float

(** Relative volume for an hour-of-day. *)
val hour_weight : int -> float

(** Multiplicative boost for a video [age] days after release; 0 before
    release, decaying to 1 after about a week. *)
val freshness_boost : age:float -> float

(** Additive release spike height, in units of the Zipf head weight. *)
val release_spike : float

(** Demand weight of a video on [day]: 0 if unreleased, steady-state weight
    for back-catalog content, steady weight plus a decaying additive spike
    for recent releases (Fig. 4's shape, uniform across titles). *)
val video_day_weight : Video.t -> day:int -> float

(** Deterministic taste multiplier in [1-spread, 1+spread] for a
    (VHO, video) pair; no storage, pure hash. *)
val taste_multiplier : spread:float -> vho:int -> video:int -> float

(** Raw per-day-of-week profile table (exposed for tests). *)
val day_of_week_weight : float array

(** Raw per-hour-of-day profile table (exposed for tests). *)
val hour_of_day_weight : float array
