(* Synthetic request-trace generator.

   The paper's evaluation drives a month of requests against a 55-VHO
   backbone, with per-VHO volumes proportional to metro population, a
   Zipf-with-cutoff video popularity, weekly/diurnal intensity and weekly
   series releases. All of these knobs are reproduced here; the generated
   trace is what every figure/table experiment replays. *)

type params = {
  catalog : Catalog.t;
  populations : float array;   (* per-VHO demand weight (Graph.populations) *)
  mean_daily_requests : float; (* across all VHOs, before weekday scaling *)
  taste_spread : float;        (* regional mix differentiation, 0 = uniform *)
  seed : int;
}

let default_params ~catalog ~populations ~mean_daily_requests ~seed =
  { catalog; populations; mean_daily_requests; taste_spread = 0.9; seed }

(* Poisson sample; exact (Knuth) for small lambda, normal approximation for
   large lambda, which is all the generator needs. *)
let poisson rng lambda =
  if lambda <= 0.0 then 0
  else if lambda < 30.0 then begin
    let l = exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. Vod_util.Rng.float rng;
      if !p <= l then continue := false
    done;
    !k - 1
  end
  else begin
    (* Box-Muller normal approximation. *)
    let u1 = Float.max 1e-12 (Vod_util.Rng.float rng) in
    let u2 = Vod_util.Rng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let x = lambda +. (sqrt lambda *. z) in
    max 0 (int_of_float (Float.round x))
  end

(* Day-independent sampling context, shared by the boxed and the
   struct-of-arrays generators. Building it consumes no randomness
   beyond the per-day stream split, so both entry points draw the exact
   same sample sequence. *)
type ctx = {
  p : params;
  n_vhos : int;
  days : int;
  day_rngs : Vod_util.Rng.t array;
  vho_sampler : Vod_util.Sampler.t;
  hour_sampler : Vod_util.Sampler.t;
  day_scale : float;
  taste_key : int array;
  taste_accept_bound : float;
}

let make_ctx (p : params) =
  let n_vhos = Array.length p.populations in
  if n_vhos = 0 then invalid_arg "Tracegen.generate: no VHOs";
  let days = p.catalog.Catalog.trace_days in
  let rng = Vod_util.Rng.create p.seed in
  let day_rngs = Vod_util.Rng.split_n rng days in
  let vho_sampler = Vod_util.Sampler.create p.populations in
  let hour_sampler = Vod_util.Sampler.create Profiles.hour_of_day_weight in
  let day_weight_sum = ref 0.0 in
  for d = 0 to days - 1 do
    day_weight_sum := !day_weight_sum +. Profiles.day_weight d
  done;
  let day_scale = float_of_int days /. !day_weight_sum in
  let videos = p.catalog.Catalog.videos in
  (* Episodes of one series share a regional audience: key their taste
     multiplier by the series, not the episode — this is what makes the
     paper's series-based demand estimation work (Sec. VI-A). *)
  let taste_key =
    Array.map
      (fun v ->
        match v.Video.kind with
        | Video.Episode { series; _ } -> max_int - series
        | Video.Regular | Video.Music_video | Video.Blockbuster -> v.Video.id)
      videos
  in
  {
    p;
    n_vhos;
    days;
    day_rngs;
    vho_sampler;
    hour_sampler;
    day_scale;
    taste_key;
    taste_accept_bound = 1.0 +. p.taste_spread;
  }

(* One day's requests, sampled into plain staging columns (flat float /
   int arrays — the bounded window of the SoA path, never boxed
   records). Samplers over per-day weights are built inside the task
   (they are day-local state). Sample [k] lands at index [count-1-k],
   preserving the order the original list-prepending generator emitted,
   so the produced traces stay bit-identical across this refactor. *)
let sample_day_columns ctx day =
  let p = ctx.p in
  let rng = ctx.day_rngs.(day) in
  let videos = p.catalog.Catalog.videos in
  let weights = Array.map (fun v -> Profiles.video_day_weight v ~day) videos in
  let video_sampler = Vod_util.Sampler.create weights in
  let lambda = p.mean_daily_requests *. Profiles.day_weight day *. ctx.day_scale in
  let count = poisson rng lambda in
  let times = Array.make count 0.0 in
  let vhos = Array.make count 0 in
  let vids = Array.make count 0 in
  for k = 0 to count - 1 do
    let video = Vod_util.Sampler.draw video_sampler rng in
    (* Rejection-sample the VHO against the taste multiplier so that
       P(vho | video) is proportional to population * taste. *)
    let rec pick_vho () =
      let vho = Vod_util.Sampler.draw ctx.vho_sampler rng in
      let accept =
        Profiles.taste_multiplier ~spread:p.taste_spread ~vho
          ~video:ctx.taste_key.(video)
        /. ctx.taste_accept_bound
      in
      if Vod_util.Rng.float rng < accept then vho else pick_vho ()
    in
    let vho = pick_vho () in
    let hour = Vod_util.Sampler.draw ctx.hour_sampler rng in
    let sec_in_hour = Vod_util.Rng.float rng *. 3600.0 in
    let time_s =
      (float_of_int day *. Trace.seconds_per_day)
      +. (float_of_int hour *. 3600.0)
      +. sec_in_hour
    in
    let i = count - 1 - k in
    times.(i) <- time_s;
    vhos.(i) <- vho;
    vids.(i) <- video
  done;
  (times, vhos, vids)

(* Days are mutually independent given their RNG stream, so generation
   fans out across the domain pool one task per day. Determinism: the
   master generator is split into per-day streams *in day order before
   any task runs* (Rng.split_n), each day samples only from its own
   stream into its own slot, and the slots are concatenated in day
   order — so the trace is bit-identical at any job count. *)
let generate ?(jobs = 0) (p : params) =
  let ctx = make_ctx p in
  let generate_day day =
    let times, vhos, vids = sample_day_columns ctx day in
    Array.init (Array.length times) (fun i ->
        { Trace.time_s = times.(i); vho = vhos.(i); video = vids.(i) })
  in
  let per_day =
    Vod_util.Pool.with_pool ~jobs (fun pool ->
        Vod_util.Pool.map pool ~f:generate_day
          (Array.init ctx.days (fun d -> d)))
  in
  Trace.create ~n_vhos:ctx.n_vhos ~days:ctx.days
    (Array.concat (Array.to_list per_day))

(* The struct-of-arrays path: same per-day sampling, same RNG streams,
   but the staged columns append straight into a Bigarray-backed
   builder — no boxed request ever exists, and at most [window_days]
   days of plain-array staging are live at a time (the configurable
   window). The builder's final time sort applies the same permutation
   [Trace.create] would, so [generate_soa p] holds exactly the rows of
   [Trace_soa.of_trace (generate p)] in the same order, at any job
   count. *)
let generate_soa ?(jobs = 0) ?(window_days = 7) (p : params) =
  if window_days <= 0 then
    invalid_arg "Tracegen.generate_soa: window_days must be positive";
  let ctx = make_ctx p in
  let b = Trace_soa.Builder.create ~n_vhos:ctx.n_vhos ~days:ctx.days () in
  Vod_util.Pool.with_pool ~jobs (fun pool ->
      let d = ref 0 in
      while !d < ctx.days do
        let batch = min window_days (ctx.days - !d) in
        let day0 = !d in
        let cols =
          Vod_util.Pool.map pool
            ~f:(fun day -> sample_day_columns ctx day)
            (Array.init batch (fun k -> day0 + k))
        in
        Array.iter
          (fun (times, vhos, vids) ->
            Trace_soa.Builder.add_columns b ~times ~vhos ~videos:vids
              ~n:(Array.length times))
          cols;
        d := !d + batch
      done);
  let soa = Trace_soa.Builder.finish b in
  Vod_obs.Obs.set_gauge "mem/trace_store_bytes"
    (float_of_int (Trace_soa.resident_bytes soa));
  soa
