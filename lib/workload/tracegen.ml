(* Synthetic request-trace generator.

   The paper's evaluation drives a month of requests against a 55-VHO
   backbone, with per-VHO volumes proportional to metro population, a
   Zipf-with-cutoff video popularity, weekly/diurnal intensity and weekly
   series releases. All of these knobs are reproduced here; the generated
   trace is what every figure/table experiment replays. *)

type params = {
  catalog : Catalog.t;
  populations : float array;   (* per-VHO demand weight (Graph.populations) *)
  mean_daily_requests : float; (* across all VHOs, before weekday scaling *)
  taste_spread : float;        (* regional mix differentiation, 0 = uniform *)
  seed : int;
}

let default_params ~catalog ~populations ~mean_daily_requests ~seed =
  { catalog; populations; mean_daily_requests; taste_spread = 0.9; seed }

(* Poisson sample; exact (Knuth) for small lambda, normal approximation for
   large lambda, which is all the generator needs. *)
let poisson rng lambda =
  if lambda <= 0.0 then 0
  else if lambda < 30.0 then begin
    let l = exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. Vod_util.Rng.float rng;
      if !p <= l then continue := false
    done;
    !k - 1
  end
  else begin
    (* Box-Muller normal approximation. *)
    let u1 = Float.max 1e-12 (Vod_util.Rng.float rng) in
    let u2 = Vod_util.Rng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let x = lambda +. (sqrt lambda *. z) in
    max 0 (int_of_float (Float.round x))
  end

(* Days are mutually independent given their RNG stream, so generation
   fans out across the domain pool one task per day. Determinism: the
   master generator is split into per-day streams *in day order before
   any task runs* (Rng.split_n), each day samples only from its own
   stream into its own slot, and the slots are concatenated in day
   order — so the trace is bit-identical at any job count. *)
let generate ?(jobs = 0) (p : params) =
  let n_vhos = Array.length p.populations in
  if n_vhos = 0 then invalid_arg "Tracegen.generate: no VHOs";
  let days = p.catalog.Catalog.trace_days in
  let rng = Vod_util.Rng.create p.seed in
  let day_rngs = Vod_util.Rng.split_n rng days in
  let vho_sampler = Vod_util.Sampler.create p.populations in
  let hour_sampler = Vod_util.Sampler.create Profiles.hour_of_day_weight in
  let day_weight_sum = ref 0.0 in
  for d = 0 to days - 1 do
    day_weight_sum := !day_weight_sum +. Profiles.day_weight d
  done;
  let day_scale = float_of_int days /. !day_weight_sum in
  let videos = p.catalog.Catalog.videos in
  let taste_accept_bound = 1.0 +. p.taste_spread in
  (* Episodes of one series share a regional audience: key their taste
     multiplier by the series, not the episode — this is what makes the
     paper's series-based demand estimation work (Sec. VI-A). *)
  let taste_key =
    Array.map
      (fun v ->
        match v.Video.kind with
        | Video.Episode { series; _ } -> max_int - series
        | Video.Regular | Video.Music_video | Video.Blockbuster -> v.Video.id)
      videos
  in
  (* One request batch per day; samplers over per-day weights are built
     inside the task (they are day-local state). *)
  let generate_day day =
    let rng = day_rngs.(day) in
    let weights =
      Array.map (fun v -> Profiles.video_day_weight v ~day) videos
    in
    let video_sampler = Vod_util.Sampler.create weights in
    let lambda = p.mean_daily_requests *. Profiles.day_weight day *. day_scale in
    let count = poisson rng lambda in
    let requests = ref [] in
    for _ = 1 to count do
      let video = Vod_util.Sampler.draw video_sampler rng in
      (* Rejection-sample the VHO against the taste multiplier so that
         P(vho | video) is proportional to population * taste. *)
      let rec pick_vho () =
        let vho = Vod_util.Sampler.draw vho_sampler rng in
        let accept =
          Profiles.taste_multiplier ~spread:p.taste_spread ~vho
            ~video:taste_key.(video)
          /. taste_accept_bound
        in
        if Vod_util.Rng.float rng < accept then vho else pick_vho ()
      in
      let vho = pick_vho () in
      let hour = Vod_util.Sampler.draw hour_sampler rng in
      let sec_in_hour = Vod_util.Rng.float rng *. 3600.0 in
      let time_s =
        (float_of_int day *. Trace.seconds_per_day)
        +. (float_of_int hour *. 3600.0)
        +. sec_in_hour
      in
      requests := { Trace.time_s; vho; video } :: !requests
    done;
    Array.of_list !requests
  in
  let per_day =
    Vod_util.Pool.with_pool ~jobs (fun pool ->
        Vod_util.Pool.map pool ~f:generate_day
          (Array.init days (fun d -> d)))
  in
  Trace.create ~n_vhos ~days (Array.concat (Array.to_list per_day))
