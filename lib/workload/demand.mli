(** The MIP's demand-side inputs for one placement period: sparse aggregate
    request counts [a_j^m] and peak-window concurrency [f_j^m(t)]
    (paper Table I, Sec. VI-B). *)

type t = {
  n_videos : int;
  n_vhos : int;
  a : (int * float) array array;
      (** [a.(video)] = sorted [(vho, request count)] pairs *)
  f : (int * float) array array array;
      (** [f.(w).(video)] = sorted [(vho, concurrent streams)] pairs for
          peak window [w] *)
  windows : (float * float) array;  (** the |T| peak windows, [t0, t1) *)
  total_requests : float;
}

(** [of_requests catalog ~n_vhos ~day0 ~days ~n_windows ~window_s reqs]
    rebases the batch to day [day0], selects the [n_windows] busiest
    [window_s]-second windows on distinct days, and extracts [a] and [f].
    Requests outside the [days]-long period are dropped. *)
val of_requests :
  Catalog.t ->
  n_vhos:int ->
  day0:int ->
  days:int ->
  n_windows:int ->
  window_s:float ->
  Trace.request array ->
  t

(** Columnar variant of {!of_requests} over rows [[lo, hi)) of a
    compact store: same rebase/clamp semantics, same peak-window
    selection, equal result — but no boxed request batch is staged
    (the million-video demand-extraction path). Raises
    [Invalid_argument] on a bad range or a store whose VHO bound
    exceeds [n_vhos]. *)
val of_soa :
  Catalog.t ->
  n_vhos:int ->
  day0:int ->
  days:int ->
  n_windows:int ->
  window_s:float ->
  Trace_soa.t ->
  lo:int ->
  hi:int ->
  t

(** Total request count of a video across VHOs. *)
val video_requests : t -> int -> float

(** Video ids sorted by decreasing total demand. *)
val rank_by_demand : t -> int array
