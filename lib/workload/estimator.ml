(* Demand estimation (paper Sec. VI-A).

   Every strategy produces a *predicted request batch* for the upcoming
   placement period; Demand.of_requests then turns the batch into the
   MIP's (a, f) inputs. Unifying prediction as "a synthetic trace" keeps
   peak-window selection and concurrency extraction identical across
   strategies.

   - History_only    : last week's requests replayed one week later — the
                       paper's "no estimate" row (new videos get nothing).
   - Series_blockbuster : the paper's default. History, plus: a new series
                       episode inherits the previous week's episode of the
                       same series; a blockbuster released next week
                       inherits the most requested movie of last week.
   - Perfect         : oracle — the actual upcoming week's requests
                       (paper's "perfect estimate" row). *)

type strategy = History_only | Series_blockbuster | Perfect

let week_s = 7.0 *. Trace.seconds_per_day

let shift_by s (r : Trace.request) = { r with Trace.time_s = r.Trace.time_s +. s }

let history_week (full : Trace.t) ~week_start =
  Trace.between_days full ~day_lo:(week_start - 7) ~day_hi:week_start

(* Most-requested movie (1 h / 2 h classes) of the history window; the
   donor demand pattern for blockbusters. *)
let top_movie (catalog : Catalog.t) (history : Trace.request array) =
  let counts = Hashtbl.create 1024 in
  Array.iter
    (fun r ->
      let v = Catalog.video catalog r.Trace.video in
      match v.Video.size_class with
      | Video.Movie | Video.Long_movie ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts r.Trace.video) in
          Hashtbl.replace counts r.Trace.video (c + 1)
      | Video.Clip | Video.Show -> ())
    history;
  (* Argmax over sorted video ids: ties break toward the lowest id
     instead of whatever the table's iteration order happens to be. *)
  List.fold_left
    (fun best video ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts video) in
      match best with
      | Some (_, bc) when bc >= c -> best
      | _ -> Some (video, c))
    None
    (Vod_util.Stats_acc.sorted_keys Int.compare counts)
  |> Option.map fst

(* Requests for one video in a batch, re-targeted to [new_video] and
   shifted [shift_s] forward. *)
let clone_requests (history : Trace.request array) ~shift_s ~src_video ~new_video =
  Array.to_list history
  |> List.filter_map (fun r ->
         if r.Trace.video = src_video then
           Some (shift_by shift_s { r with Trace.video = new_video })
         else None)

(* Float-time generalization of [predict]: the history window is the
   [history_s] seconds before [t0_s], shifted forward onto the upcoming
   period; the release window stays one week from [t0_s] (the paper's
   placement period). At day-aligned [t0_s] with the default week of
   history this reproduces [predict ~week_start] bit-for-bit (day
   bounds, the week shift and the release test are all exact in float
   arithmetic), which is what lets the re-placement daemon share one
   prediction path with the batch pipeline. *)
let predict_at ?(history_s = week_s) strategy (catalog : Catalog.t)
    (full : Trace.t) ~t0_s =
  let history () = Trace.between full ~t0_s:(t0_s -. history_s) ~t1_s:t0_s in
  match strategy with
  | Perfect -> Trace.between full ~t0_s ~t1_s:(t0_s +. week_s)
  | History_only -> Array.map (shift_by history_s) (history ())
  | Series_blockbuster ->
      let history = history () in
      let base = Array.to_list (Array.map (shift_by history_s) history) in
      let extra = ref [] in
      Array.iter
        (fun v ->
          let release_s = float_of_int v.Video.release_day *. Trace.seconds_per_day in
          let releases_this_week =
            release_s >= t0_s && release_s < t0_s +. week_s
          in
          if releases_this_week then
            match v.Video.kind with
            | Video.Episode _ -> (
                match Catalog.previous_episode catalog v with
                | Some prev ->
                    extra :=
                      clone_requests history ~shift_s:history_s
                        ~src_video:prev.Video.id ~new_video:v.Video.id
                      @ !extra
                | None -> ())
            | Video.Blockbuster -> (
                match top_movie catalog history with
                | Some donor ->
                    extra :=
                      clone_requests history ~shift_s:history_s ~src_video:donor
                        ~new_video:v.Video.id
                      @ !extra
                | None -> ())
            | Video.Regular | Video.Music_video -> ())
        catalog.Catalog.videos;
      Array.of_list (base @ !extra)

let predict strategy (catalog : Catalog.t) (full : Trace.t) ~week_start =
  predict_at strategy catalog full
    ~t0_s:(float_of_int week_start *. Trace.seconds_per_day)

let name = function
  | History_only -> "no-estimate"
  | Series_blockbuster -> "series+blockbuster"
  | Perfect -> "perfect"
