(** Demand estimation for the upcoming placement period (paper Sec. VI-A).
    Each strategy emits a predicted request batch; [Demand.of_requests]
    turns it into the MIP inputs. *)

type strategy =
  | History_only       (** last week replayed — the paper's "no estimate" *)
  | Series_blockbuster (** the paper's default: history + series episode
                           inheritance + blockbuster donor *)
  | Perfect            (** oracle: the actual upcoming week *)

(** [predict strategy catalog full ~week_start] returns predicted requests
    for days [week_start, week_start + 7), with absolute times. *)
val predict :
  strategy -> Catalog.t -> Trace.t -> week_start:int -> Trace.request array

(** [predict_at ?history_s strategy catalog full ~t0_s] is {!predict}
    generalized to a float period start: the history window is the
    [history_s] seconds (default one week) before [t0_s], shifted
    forward onto the upcoming period; releases inside one week of
    [t0_s] receive their inherited/donor clones. At day-aligned [t0_s]
    with the default history this equals [predict ~week_start]
    bit-for-bit — the contract the re-placement daemon's equivalence
    tests pin down. *)
val predict_at :
  ?history_s:float ->
  strategy ->
  Catalog.t ->
  Trace.t ->
  t0_s:float ->
  Trace.request array

(** Requests of the week before [week_start] (the estimation history). *)
val history_week : Trace.t -> week_start:int -> Trace.request array

(** Most-requested movie of a batch, if any (blockbuster donor). *)
val top_movie : Catalog.t -> Trace.request array -> int option

(** Human-readable strategy name for reports. *)
val name : strategy -> string
