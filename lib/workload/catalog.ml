(* Synthetic video catalog.

   Composition follows the paper's trace description (Sec. VII-A: "music
   videos and trailers, TV shows, and full-length movies") and its
   new-content analysis (Sec. VI-A: a significant share of new releases are
   weekly TV-series episodes, plus 1-3 blockbusters per week). Popularity
   is Zipf with an exponential cutoff, the shape Cha et al. report for
   YouTube and the distribution the paper uses for its synthetic traces. *)

type t = {
  videos : Video.t array;
  n_series : int;
  trace_days : int;
}

let n_videos t = Array.length t.videos

let video t id = t.videos.(id)

let total_size_gb t =
  Array.fold_left (fun acc v -> acc +. Video.size_gb v) 0.0 t.videos

(* Zipf-with-exponential-cutoff weight for popularity rank [r] (0-based)
   out of [n]: w(r) = (r+1)^-a * exp(-r / (c*n)). Cha et al. report a in
   [0.8, 1.0] with a cutoff around the 20-40% most popular mark. *)
let zipf_cutoff_weight ~exponent ~cutoff_frac ~n r =
  let r1 = float_of_int (r + 1) in
  (r1 ** -.exponent) *. exp (-.float_of_int r /. (cutoff_frac *. float_of_int n))

type params = {
  n : int;             (* catalog size *)
  days : int;          (* trace length in days *)
  seed : int;
  zipf_exponent : float;
  zipf_cutoff : float;
  series_frac : float; (* fraction of catalog that is series episodes *)
  clip_frac : float;   (* fraction that is clips / music videos *)
  episodes_per_series : int;
  blockbusters_per_week : int;
}

let default_params ~n ~days ~seed =
  {
    n;
    days;
    seed;
    zipf_exponent = 0.8;
    zipf_cutoff = 0.35;
    series_frac = 0.25;
    clip_frac = 0.30;
    episodes_per_series = 12;
    blockbusters_per_week = 2;
  }

let generate (p : params) =
  if p.n <= 0 then invalid_arg "Catalog.generate: empty catalog";
  let rng = Vod_util.Rng.create p.seed in
  (* Popularity rank is assigned by a random permutation so that video id
     carries no popularity information. *)
  let rank_of = Vod_util.Rng.permutation rng p.n in
  let weights =
    Array.init p.n (fun id ->
        zipf_cutoff_weight ~exponent:p.zipf_exponent ~cutoff_frac:p.zipf_cutoff
          ~n:p.n rank_of.(id))
  in
  let n_series_videos = int_of_float (p.series_frac *. float_of_int p.n) in
  let n_clip = int_of_float (p.clip_frac *. float_of_int p.n) in
  let n_series =
    max 1 (n_series_videos / max 1 p.episodes_per_series)
  in
  let weeks = max 1 (p.days / 7) in
  (* Videos [0, n_series_videos) are series episodes; series s owns a
     contiguous run of episodes released weekly. Recent episodes (those
     released during the trace) are marked accordingly. *)
  let bb_count = ref 0 in
  let videos =
    Array.init p.n (fun id ->
        if id < n_series_videos then begin
          let series = id mod n_series in
          let episode = id / n_series in
          (* Each series releases one episode per week; the last [weeks]
             episodes of each series fall inside the trace window. *)
          let total_eps = (n_series_videos + n_series - 1) / n_series in
          let weeks_before_end = total_eps - 1 - episode in
          (* Only every other series is "in season" (releasing weekly
             during the trace); the rest are back-catalog. Episodes drop
             on Fridays (weekday 4), like most prime-time series;
             release_day <= 0 means the episode predates the trace. *)
          let in_season = series mod 2 = 0 in
          let release_day =
            if in_season then ((weeks - 1 - weeks_before_end) * 7) + 4 else 0
          in
          {
            Video.id;
            size_class = Video.Show;
            kind = Video.Episode { series; episode };
            release_day;
            (* Episodes of one series share the series' popularity (the
               premise of Fig. 4 and of the series demand estimator):
               use the weight drawn for the series' first episode. *)
            base_weight = weights.(series);
          }
        end
        else if id < n_series_videos + n_clip then
          {
            Video.id;
            size_class = Video.Clip;
            kind = Video.Music_video;
            release_day = 0;
            base_weight = weights.(id);
          }
        else begin
          (* Remaining videos are movies; half 1 h, half 2 h. The first
             [blockbusters_per_week] long movies of each trace week are
             blockbusters released during the trace. *)
          let long = (id - n_series_videos - n_clip) mod 2 = 0 in
          let is_fresh = long && !bb_count < weeks * p.blockbusters_per_week in
          if is_fresh then begin
            let w = !bb_count mod weeks in
            incr bb_count;
            {
              Video.id;
              size_class = Video.Long_movie;
              kind = Video.Blockbuster;
              release_day = (w * 7) + 5 (* blockbusters drop on Saturdays *);
              base_weight = weights.(id) *. 3.0;
            }
          end
          else
            {
              Video.id;
              size_class = (if long then Video.Long_movie else Video.Movie);
              kind = Video.Regular;
              release_day = 0;
              base_weight = weights.(id);
            }
        end)
  in
  { videos; n_series; trace_days = p.days }

let series_episodes t series =
  Array.to_list t.videos
  |> List.filter (fun v ->
         match v.Video.kind with
         | Video.Episode e -> e.series = series
         | Video.Regular | Video.Music_video | Video.Blockbuster -> false)
  |> List.sort (fun a b ->
         match (a.Video.kind, b.Video.kind) with
         | Video.Episode x, Video.Episode y -> Int.compare x.episode y.episode
         | _ -> 0)

let previous_episode t v =
  match v.Video.kind with
  | Video.Episode { series; episode } when episode > 0 ->
      List.find_opt
        (fun u ->
          match u.Video.kind with
          | Video.Episode e -> e.series = series && e.episode = episode - 1
          | _ -> false)
        (series_episodes t series)
  | Video.Episode _ | Video.Regular | Video.Music_video | Video.Blockbuster ->
      None
