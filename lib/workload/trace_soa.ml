(* Compact struct-of-arrays request store (see trace_soa.mli). The three
   columns live in Bigarrays: 16 bytes per request, off the OCaml heap,
   nothing for the GC to scan — the storage shape that carries
   million-video / multi-million-request traces where an array of boxed
   Trace.request records (five words each, plus header churn) does not.

   Ordering contract: every constructor sorts rows by time through an
   index permutation computed by [Array.sort] with [Float.compare] on
   the time column. [Array.sort]'s element moves are a function of the
   element count and the comparator outcomes alone, so this permutation
   is exactly the one [Trace.create] applies to the same rows — which is
   what makes the SoA and array-backed serving paths byte-identical. *)

module A1 = Bigarray.Array1

type t = {
  times : (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t;
  vhos : (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t;
  videos : (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t;
  n_vhos : int;
  days : int;
}

let length t = A1.dim t.times

let time t i = A1.get t.times i

let vho t i = Int32.to_int (A1.get t.vhos i)

let video t i = Int32.to_int (A1.get t.videos i)

(* float64 + 2 x int32 = 16 bytes per row. *)
let resident_bytes t = 16 * length t

let alloc_times n = A1.create Bigarray.float64 Bigarray.c_layout n

let alloc_ids n = A1.create Bigarray.int32 Bigarray.c_layout n

(* The Trace.create permutation: sort row indices by time with the same
   comparator; index [i] carries row [i], so comparator outcomes — and
   therefore the unstable sort's final order — coincide with sorting the
   boxed records themselves. *)
let sort_perm ~n ~time =
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare (time i) (time j)) idx;
  idx

let validate ~n_vhos ~days ~n ~time ~vho =
  let horizon = float_of_int days *. Trace.seconds_per_day in
  for i = 0 to n - 1 do
    let v = vho i in
    if v < 0 || v >= n_vhos then
      invalid_arg "Trace_soa: vho out of range";
    let ts = time i in
    if ts < 0.0 || ts >= horizon then
      invalid_arg "Trace_soa: request time outside trace horizon"
  done

(* Build the store from row accessors and a row permutation. *)
let build ~n_vhos ~days ~n ~time ~vho ~video ~perm =
  let times = alloc_times n and vhos = alloc_ids n and videos = alloc_ids n in
  for i = 0 to n - 1 do
    let src = perm.(i) in
    A1.set times i (time src);
    A1.set vhos i (Int32.of_int (vho src));
    A1.set videos i (Int32.of_int (video src))
  done;
  { times; vhos; videos; n_vhos; days }

let of_columns ~n_vhos ~days ~times ~vhos ~videos =
  let n = Array.length times in
  if Array.length vhos <> n || Array.length videos <> n then
    invalid_arg "Trace_soa.of_columns: column lengths differ";
  let time i = times.(i) and vho i = vhos.(i) and video i = videos.(i) in
  validate ~n_vhos ~days ~n ~time ~vho;
  build ~n_vhos ~days ~n ~time ~vho ~video ~perm:(sort_perm ~n ~time)

(* A Trace.t is already sorted and validated: identity permutation. *)
let of_trace (tr : Trace.t) =
  let n = Array.length tr.Trace.requests in
  let times = alloc_times n and vhos = alloc_ids n and videos = alloc_ids n in
  for i = 0 to n - 1 do
    let r = tr.Trace.requests.(i) in
    A1.set times i r.Trace.time_s;
    A1.set vhos i (Int32.of_int r.Trace.vho);
    A1.set videos i (Int32.of_int r.Trace.video)
  done;
  { times; vhos; videos; n_vhos = tr.Trace.n_vhos; days = tr.Trace.days }

(* Rows are already in Trace.create's order, so construct the record
   directly rather than re-sorting: with tied times an unstable re-sort
   could permute equal rows and break the byte-for-byte round-trip. *)
let to_trace t =
  let n = length t in
  let requests =
    Array.init n (fun i ->
        { Trace.time_s = time t i; vho = vho t i; video = video t i })
  in
  { Trace.requests; n_vhos = t.n_vhos; days = t.days }

(* First row with time >= bound (binary search; the column is sorted). *)
let lower t bound =
  let n = length t in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if A1.get t.times mid < bound then go (mid + 1) hi else go lo mid
  in
  go 0 n

let between t ~t0_s ~t1_s = (lower t t0_s, lower t t1_s)

let between_days t ~day_lo ~day_hi =
  between t
    ~t0_s:(float_of_int day_lo *. Trace.seconds_per_day)
    ~t1_s:(float_of_int day_hi *. Trace.seconds_per_day)

let iter_windows t ~window ~f =
  if window <= 0 then invalid_arg "Trace_soa.iter_windows: window <= 0";
  let n = length t in
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + window) in
    f ~lo:!lo ~hi;
    lo := hi
  done

let window_requests t ~lo ~hi =
  if lo < 0 || hi < lo || hi > length t then
    invalid_arg "Trace_soa.window_requests: range out of bounds";
  Array.init (hi - lo) (fun k ->
      let i = lo + k in
      { Trace.time_s = time t i; vho = vho t i; video = video t i })

let counts_per_video t ~n_videos =
  let c = Array.make n_videos 0 in
  for i = 0 to length t - 1 do
    let v = video t i in
    c.(v) <- c.(v) + 1
  done;
  c

module Builder = struct
  type store = t

  type t = {
    mutable b_times : (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t;
    mutable b_vhos : (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t;
    mutable b_videos : (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t;
    mutable len : int;
    n_vhos : int;
    days : int;
  }

  let create ?(capacity = 1024) ~n_vhos ~days () =
    let capacity = max 1 capacity in
    {
      b_times = alloc_times capacity;
      b_vhos = alloc_ids capacity;
      b_videos = alloc_ids capacity;
      len = 0;
      n_vhos;
      days;
    }

  let length b = b.len

  let grow b needed =
    let cap = A1.dim b.b_times in
    if needed > cap then begin
      let cap' = max needed (2 * cap) in
      let times = alloc_times cap' and vhos = alloc_ids cap' and videos = alloc_ids cap' in
      A1.blit (A1.sub b.b_times 0 b.len) (A1.sub times 0 b.len);
      A1.blit (A1.sub b.b_vhos 0 b.len) (A1.sub vhos 0 b.len);
      A1.blit (A1.sub b.b_videos 0 b.len) (A1.sub videos 0 b.len);
      b.b_times <- times;
      b.b_vhos <- vhos;
      b.b_videos <- videos
    end

  let add b ~time_s ~vho ~video =
    grow b (b.len + 1);
    A1.set b.b_times b.len time_s;
    A1.set b.b_vhos b.len (Int32.of_int vho);
    A1.set b.b_videos b.len (Int32.of_int video);
    b.len <- b.len + 1

  let add_columns b ~times ~vhos ~videos ~n =
    if n > Array.length times || n > Array.length vhos || n > Array.length videos
    then invalid_arg "Trace_soa.Builder.add_columns: n exceeds a column";
    grow b (b.len + n);
    for i = 0 to n - 1 do
      A1.set b.b_times (b.len + i) times.(i);
      A1.set b.b_vhos (b.len + i) (Int32.of_int vhos.(i));
      A1.set b.b_videos (b.len + i) (Int32.of_int videos.(i))
    done;
    b.len <- b.len + n

  let finish b =
    let n = b.len in
    let time i = A1.get b.b_times i in
    let vho i = Int32.to_int (A1.get b.b_vhos i) in
    let video i = Int32.to_int (A1.get b.b_videos i) in
    validate ~n_vhos:b.n_vhos ~days:b.days ~n ~time ~vho;
    build ~n_vhos:b.n_vhos ~days:b.days ~n ~time ~vho ~video
      ~perm:(sort_perm ~n ~time)
end
