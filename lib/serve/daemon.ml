(* The online re-placement daemon: continuous ingest of the request
   stream through the unified serving loop, periodic demand
   re-estimation on a sliding window, warm-started EPF re-solves from
   the incumbent placement, and incremental placement deltas under a
   migration-byte budget — the continuous counterpart of the paper's
   Sec. VII-H batch update policies.

   State machine per replan boundary (periodic tick or, with
   [react_to_faults], a fault/repair event):

     serve --> estimate --> solve --> restrict --> apply --> serve
                (predict_at)  (warm)    (budget)   (set_fleet)

   With an infinite budget, warm start off and day-aligned boundaries,
   every step degenerates to the batch pipeline's, and the run is
   bit-identical to [Pipeline.run_mip] with [update_days = 1]
   (asserted by test/test_serve.ml). *)

module Obs = Vod_obs.Obs

let src = Logs.Src.create "vod.daemon" ~doc:"online re-placement daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  estimator : Vod_workload.Estimator.strategy;
  update_every_s : float;   (* periodic replan cadence *)
  history_s : float;        (* sliding estimation window *)
  migration_budget_gb : float;  (* per replan; infinity = unrestricted *)
  warm_start : bool;        (* warm the EPF engine from the incumbent *)
  react_to_faults : bool;   (* replan on fault/repair events too *)
}

let default_config =
  {
    estimator = Vod_workload.Estimator.Series_blockbuster;
    update_every_s = 6.0 *. 3600.0;
    history_s = 7.0 *. Vod_workload.Trace.seconds_per_day;
    migration_budget_gb = Float.infinity;
    warm_start = true;
    react_to_faults = true;
  }

(* One replan record: when, why, the solve behind it and how much of it
   the budget let through. *)
type replan = {
  t_s : float;
  trigger : string;   (* "bootstrap", "periodic" or an event kind *)
  report : Vod_placement.Solve.report;
  applied : int;
  deferred : int;
  moved_gb : float;
}

type result = {
  metrics : Vod_sim.Metrics.t;
  replans : replan list;   (* oldest first; head is the bootstrap *)
  windows : Vod_resil.Playout.window list;
  final : Vod_placement.Solution.t;
}

let week_s = 7.0 *. Vod_workload.Trace.seconds_per_day

(* Replan boundaries: periodic ticks from the end of the bootstrap week
   to the horizon, merged with the fault timeline's event instants when
   reacting to faults. Periodic ticks keep their label on collisions. *)
let boundaries (cfg : config) ?resil ~horizon_s () =
  let ticks = ref [] in
  let t = ref week_s in
  while !t < horizon_s do
    ticks := (!t, "periodic") :: !ticks;
    t := !t +. cfg.update_every_s
  done;
  let events =
    match resil with
    | Some (rc : Vod_resil.Playout.config) when cfg.react_to_faults ->
        Array.to_list rc.Vod_resil.Playout.schedule
        |> List.filter_map (fun (e : Vod_resil.Event.t) ->
               if e.Vod_resil.Event.time_s > week_s
                  && e.Vod_resil.Event.time_s < horizon_s
               then
                 Some
                   ( e.Vod_resil.Event.time_s,
                     Vod_resil.Event.kind_to_string e.Vod_resil.Event.kind )
               else None)
    | Some _ | None -> []
  in
  let all =
    List.stable_sort
      (fun (t1, _) (t2, _) -> Float.compare t1 t2)
      (List.rev !ticks @ events)
  in
  (* Dedupe exact-time collisions, keeping the first (periodic sorts
     before events at equal times by the stable sort's input order). *)
  let rec dedupe = function
    | (t1, lab) :: (t2, _) :: rest when t1 = t2 -> dedupe ((t1, lab) :: rest)
    | b :: rest -> b :: dedupe rest
    | [] -> []
  in
  dedupe all

let run ~graph ~paths ~catalog ~(trace : Vod_workload.Trace.t)
    ~(problem : Replan.problem) ?resil ?(bin_s = 300.0) ?(record_from = 0.0)
    (cfg : config) =
  let horizon_s =
    float_of_int trace.Vod_workload.Trace.days
    *. Vod_workload.Trace.seconds_per_day
  in
  let n_vhos = Vod_topology.Graph.n_nodes graph in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos ~horizon_s ~bin_s ~record_from ()
  in
  let cache_gb =
    Array.map (fun d -> d *. problem.Replan.cache_frac) problem.Replan.disk_gb
  in
  let fleet_of sol =
    Vod_cache.Fleet.mip ~solution:sol ~paths ~catalog ~cache_gb
  in
  (* Bootstrap placement from the actual first week — the paper's
     initial pre-population, identical to the batch pipeline's. *)
  let boot_requests = Vod_workload.Trace.between trace ~t0_s:0.0 ~t1_s:week_s in
  let boot = Replan.solve problem (Replan.demand problem ~t0_s:0.0 boot_requests) in
  Obs.incr "serve/daemon/replans";
  let current = ref boot.Vod_placement.Solve.solution in
  let loop = Loop.create ~graph ~paths ~catalog ~fleet:(fleet_of !current) ?resil () in
  let replans =
    ref
      [
        {
          t_s = 0.0;
          trigger = "bootstrap";
          report = boot;
          applied = 0;
          deferred = 0;
          moved_gb = 0.0;
        };
      ]
  in
  let n_videos = Vod_workload.Catalog.n_videos catalog in
  let prev = ref 0.0 in
  (* Replan.solve/restrict and Loop.play validate their inputs and can
     raise mid-horizon; Loop.finish is idempotent, so settling the
     capacity ledger under Fun.protect keeps the normal path
     byte-identical while closing it on the exceptional one. *)
  Fun.protect
    ~finally:(fun () -> Loop.finish loop metrics)
    (fun () ->
      List.iter
        (fun (t_b, trigger) ->
          Loop.play loop metrics (Vod_workload.Trace.between trace ~t0_s:!prev ~t1_s:t_b);
          Loop.advance loop ~now:t_b;
          let predicted =
            Vod_workload.Estimator.predict_at ~history_s:cfg.history_s cfg.estimator
              catalog trace ~t0_s:t_b
          in
          let demand = Replan.demand problem ~t0_s:t_b predicted in
          let incumbent = if cfg.warm_start then Some !current else None in
          let down_vhos =
            if cfg.react_to_faults then
              Some (Array.init n_vhos (fun i -> not (Loop.vho_up loop i)))
            else None
          in
          let report = Replan.solve ?incumbent ?down_vhos problem demand in
          let priority =
            Array.init n_videos (Vod_workload.Demand.video_requests demand)
          in
          let delta =
            Replan.restrict ~catalog ~incumbent:!current
              ~target:report.Vod_placement.Solve.solution ~priority
              ~budget_gb:cfg.migration_budget_gb
          in
          current := delta.Replan.solution;
          Loop.set_fleet loop (fleet_of !current);
          replans :=
            {
              t_s = t_b;
              trigger;
              report;
              applied = delta.Replan.applied;
              deferred = delta.Replan.deferred;
              moved_gb = delta.Replan.moved_gb;
            }
            :: !replans;
          Obs.incr "serve/daemon/replans";
          if trigger <> "periodic" then Obs.incr "serve/daemon/fault_replans";
          Obs.incr ~by:delta.Replan.applied "serve/daemon/deltas_applied";
          Obs.incr ~by:delta.Replan.deferred "serve/daemon/deltas_deferred";
          Obs.push "serve/daemon/migration_gb" delta.Replan.moved_gb;
          Log.debug (fun m ->
              m "replan@%.0fs (%s): applied %d, deferred %d, %.1f GB moved" t_b
                trigger delta.Replan.applied delta.Replan.deferred
                delta.Replan.moved_gb);
          prev := t_b)
        (boundaries cfg ?resil ~horizon_s ());
      Loop.play loop metrics
        (Vod_workload.Trace.between trace ~t0_s:!prev ~t1_s:horizon_s));
  let replans = List.rev !replans in
  Log.info (fun m ->
      m "daemon: %d replans, %d requests, local %.1f%%, %d rejections"
        (List.length replans) metrics.Vod_sim.Metrics.requests
        (100.0 *. Vod_sim.Metrics.local_fraction metrics)
        metrics.Vod_sim.Metrics.deg.Vod_sim.Metrics.rejections);
  { metrics; replans; windows = Loop.windows loop; final = !current }

(* Aggregates for the bench exhibits. *)
let total_moved_gb result =
  List.fold_left (fun acc r -> acc +. r.moved_gb) 0.0 result.replans

let total_applied result =
  List.fold_left (fun acc r -> acc + r.applied) 0 result.replans

let total_deferred result =
  List.fold_left (fun acc r -> acc + r.deferred) 0 result.replans
