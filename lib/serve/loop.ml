(* The unified serving engine: one event loop that drives a fleet with a
   time-sorted request batch, in either of two configurations.

   - Direct: the legacy fixed-path playout (lib/sim/sim.ml) — every
     request is served by the fleet's own choice over the precomputed
     shortest paths, with no fault timeline and no capacity tracking.
   - Faulted: the resilience playout (lib/resil/playout.ml) — a fault
     timeline advances between requests, rejected/failover/degradation
     accounting applies, and remote streams route through the
     capacity-aware failover router.

   Both configurations produce Vod_sim.Metrics byte-for-byte identical
   to the legacy engines they replace (asserted by test/test_serve.ml);
   the legacy modules stay in the tree as the comparison references.
   The seams are pluggable by construction: the placement source is the
   mutable [fleet] (swapped mid-run by the batch pipeline and the
   re-placement daemon via [set_fleet]), and the router/capacity pair
   arrives bundled in an optional [Vod_resil.Playout.config]. *)

module Obs = Vod_obs.Obs
module Event = Vod_resil.Event
module State = Vod_resil.State
module Capacity = Vod_resil.Capacity
module Router = Vod_resil.Router
module Playout = Vod_resil.Playout

let src = Logs.Src.create "vod.serve" ~doc:"unified serving engine"

module Log = (val Logs.src_log src : Logs.LOG)

(* Fault-mode machinery plus per-request routing scratch. The scratch
   fields replace the per-request ref cell and closures the legacy
   playout allocates: [route] and [on_event] are built once at [create]
   and read the current request's parameters out of the record, so the
   request loop itself stays allocation-free (alloc-in-hot). *)
type faulted = {
  state : State.t;
  capacity : Capacity.t;
  router : Router.t;
  mutable win_t0 : float;
  mutable win_trigger : string;
  mutable win_requests : int;
  mutable win_rejections : int;
  mutable win_failovers : int;
  mutable windows_rev : Playout.window list;
  mutable cur_video : int;
  mutable cur_vho : int;
  mutable cur_rate : float;
  mutable cur_now : float;
  mutable cur_until : float;
  mutable decision : Router.decision;
  mutable route : default:int -> int option;
  mutable on_event : Event.t -> unit;
}

type t = {
  paths : Vod_topology.Paths.t;
  catalog : Vod_workload.Catalog.t;
  mutable fleet : Vod_cache.Fleet.t;
  faulted : faulted option;
  mutable finished : bool;
}

let close_window f ~now ~trigger =
  f.windows_rev <-
    {
      Playout.t0_s = f.win_t0;
      t1_s = now;
      trigger = f.win_trigger;
      requests = f.win_requests;
      rejections = f.win_rejections;
      failovers = f.win_failovers;
    }
    :: f.windows_rev;
  Obs.push "serve/window/requests" (float_of_int f.win_requests);
  Obs.push "serve/window/rejections" (float_of_int f.win_rejections);
  Obs.push "serve/window/failovers" (float_of_int f.win_failovers);
  f.win_t0 <- now;
  f.win_trigger <- trigger;
  f.win_requests <- 0;
  f.win_rejections <- 0;
  f.win_failovers <- 0

let apply_event f (e : Event.t) =
  Obs.incr "serve/events_applied";
  (match e.Event.kind with
  | Event.Link_down _ | Event.Link_up _ -> Router.on_link_event f.router
  | Event.Vho_down _ | Event.Vho_up _ | Event.Surge_start _ | Event.Surge_end _
    -> ());
  close_window f ~now:e.Event.time_s ~trigger:(Event.kind_to_string e.Event.kind)

(* Route the request whose parameters sit in the scratch fields; the
   decision is parked for the stream-accounting step below. *)
let route_scratch t f ~default =
  let d =
    Router.route f.router
      ~holders:(Vod_cache.Fleet.holders t.fleet ~video:f.cur_video)
      ~dst:f.cur_vho ~default ~rate_mbps:f.cur_rate ~until_s:f.cur_until
      ~now:f.cur_now
  in
  f.decision <- d;
  match d with
  | Router.Served s -> Some s.Router.server
  | Router.Rejected _ -> None

let create ~graph ~paths ~catalog ~fleet ?resil () =
  let faulted =
    Option.map
      (fun (cfg : Playout.config) ->
        let n_links = Vod_topology.Graph.n_links graph in
        let state =
          State.create
            ~n_vhos:(Vod_topology.Graph.n_nodes graph)
            ~n_links cfg.Playout.schedule
        in
        let capacity =
          Capacity.create
            ~capacity_mbps:(Array.make n_links cfg.Playout.link_capacity_mbps)
            ~saturation_frac:cfg.Playout.saturation_frac ()
        in
        let router =
          Router.create ~graph ~paths ~state ~capacity ?origin:cfg.Playout.origin
            ()
        in
        {
          state;
          capacity;
          router;
          win_t0 = 0.0;
          win_trigger = "start";
          win_requests = 0;
          win_rejections = 0;
          win_failovers = 0;
          windows_rev = [];
          cur_video = 0;
          cur_vho = 0;
          cur_rate = 0.0;
          cur_now = 0.0;
          cur_until = 0.0;
          decision = Router.Rejected Router.No_replica;
          route = (fun ~default:_ -> None);
          on_event = (fun (_ : Event.t) -> ());
        })
      resil
  in
  let t = { paths; catalog; fleet; faulted; finished = false } in
  (match t.faulted with
  | Some f ->
      f.route <- (fun ~default -> route_scratch t f ~default);
      f.on_event <- (fun e -> apply_event f e)
  | None -> ());
  t

let fleet t = t.fleet

(* Placement-source seam: the pipeline and the daemon swap placements
   mid-run by handing the loop a rebuilt fleet between batches. *)
let set_fleet t fleet =
  t.fleet <- fleet;
  Obs.incr "serve/fleet_swaps"

let vho_up t vho =
  match t.faulted with None -> true | Some f -> State.vho_up f.state vho

(* Advance the fault timeline (and expire stream reservations) to [now]
   without playing a request — the daemon calls this at replan
   boundaries so its fault-state reads reflect the boundary instant,
   not the last played request. No-op in the direct configuration. *)
let advance t ~now =
  match t.faulted with
  | None -> ()
  | Some f ->
      ignore (State.advance f.state ~now ~on_event:f.on_event : int);
      Capacity.expire f.capacity ~now

(* ---- direct configuration -------------------------------------------- *)

(* Field-for-field the body of Vod_sim.Sim.play: same serve call, same
   counter updates, same float operation order in the stream accounting
   (the byte-for-byte contract). *)
let play_direct t metrics (requests : Vod_workload.Trace.request array) =
  let track_per_vho =
    Array.length metrics.Vod_sim.Metrics.per_vho_requests > 0
  in
  Array.iter
    (fun (r : Vod_workload.Trace.request) ->
      let now = r.Vod_workload.Trace.time_s in
      let video = r.Vod_workload.Trace.video in
      let vho = r.Vod_workload.Trace.vho in
      let outcome = Vod_cache.Fleet.serve t.fleet ~video ~vho ~now in
      let record = Vod_sim.Metrics.in_record_window metrics now in
      if record then begin
        metrics.Vod_sim.Metrics.requests <- metrics.Vod_sim.Metrics.requests + 1;
        if track_per_vho then
          metrics.Vod_sim.Metrics.per_vho_requests.(vho) <-
            metrics.Vod_sim.Metrics.per_vho_requests.(vho) + 1;
        if outcome.Vod_cache.Fleet.local then begin
          metrics.Vod_sim.Metrics.local_served <-
            metrics.Vod_sim.Metrics.local_served + 1;
          if track_per_vho then
            metrics.Vod_sim.Metrics.per_vho_local.(vho) <-
              metrics.Vod_sim.Metrics.per_vho_local.(vho) + 1;
          if outcome.Vod_cache.Fleet.cache_hit then
            metrics.Vod_sim.Metrics.cache_hits <-
              metrics.Vod_sim.Metrics.cache_hits + 1
        end
        else begin
          metrics.Vod_sim.Metrics.remote_served <-
            metrics.Vod_sim.Metrics.remote_served + 1;
          if outcome.Vod_cache.Fleet.not_cachable then
            metrics.Vod_sim.Metrics.not_cachable <-
              metrics.Vod_sim.Metrics.not_cachable + 1
        end
      end;
      if not outcome.Vod_cache.Fleet.local then begin
        let server = outcome.Vod_cache.Fleet.server in
        let v = Vod_workload.Catalog.video t.catalog video in
        let rate = Vod_workload.Video.rate_mbps v in
        let dur = Vod_workload.Video.duration_s v in
        let links = Vod_topology.Paths.path_links t.paths ~src:server ~dst:vho in
        (* Explicit loop: an [Array.iter] lambda here is a fresh closure
           per remote request, in the hottest loop (alloc-in-hot). *)
        let t1 = now +. dur in
        for i = 0 to Array.length links - 1 do
          Vod_sim.Metrics.add_stream metrics ~link:links.(i) ~rate_mbps:rate
            ~t0:now ~t1
        done;
        if record then begin
          let hops =
            float_of_int (Vod_topology.Paths.hops t.paths ~src:server ~dst:vho)
          in
          let gb = Vod_workload.Video.size_gb v in
          metrics.Vod_sim.Metrics.total_gb_hops <-
            metrics.Vod_sim.Metrics.total_gb_hops +. (gb *. hops);
          metrics.Vod_sim.Metrics.total_gb_remote <-
            metrics.Vod_sim.Metrics.total_gb_remote +. gb
        end
      end)
    requests

(* Columnar twin of [play_direct]: rows [lo, hi) of a struct-of-arrays
   store, iterated by index — no boxed request, no per-row closure, the
   same serve call and float operation order, so the metrics are
   byte-for-byte those of [play_direct] on the equivalent slice
   (asserted by test/test_soa.ml). Kept field-for-field in sync with
   [play_direct] above. *)
let play_direct_soa t metrics (soa : Vod_workload.Trace_soa.t) ~lo ~hi =
  let track_per_vho =
    Array.length metrics.Vod_sim.Metrics.per_vho_requests > 0
  in
  for i = lo to hi - 1 do
    let now = Vod_workload.Trace_soa.time soa i in
    let video = Vod_workload.Trace_soa.video soa i in
    let vho = Vod_workload.Trace_soa.vho soa i in
    let outcome = Vod_cache.Fleet.serve t.fleet ~video ~vho ~now in
    let record = Vod_sim.Metrics.in_record_window metrics now in
    if record then begin
      metrics.Vod_sim.Metrics.requests <- metrics.Vod_sim.Metrics.requests + 1;
      if track_per_vho then
        metrics.Vod_sim.Metrics.per_vho_requests.(vho) <-
          metrics.Vod_sim.Metrics.per_vho_requests.(vho) + 1;
      if outcome.Vod_cache.Fleet.local then begin
        metrics.Vod_sim.Metrics.local_served <-
          metrics.Vod_sim.Metrics.local_served + 1;
        if track_per_vho then
          metrics.Vod_sim.Metrics.per_vho_local.(vho) <-
            metrics.Vod_sim.Metrics.per_vho_local.(vho) + 1;
        if outcome.Vod_cache.Fleet.cache_hit then
          metrics.Vod_sim.Metrics.cache_hits <-
            metrics.Vod_sim.Metrics.cache_hits + 1
      end
      else begin
        metrics.Vod_sim.Metrics.remote_served <-
          metrics.Vod_sim.Metrics.remote_served + 1;
        if outcome.Vod_cache.Fleet.not_cachable then
          metrics.Vod_sim.Metrics.not_cachable <-
            metrics.Vod_sim.Metrics.not_cachable + 1
      end
    end;
    if not outcome.Vod_cache.Fleet.local then begin
      let server = outcome.Vod_cache.Fleet.server in
      let v = Vod_workload.Catalog.video t.catalog video in
      let rate = Vod_workload.Video.rate_mbps v in
      let dur = Vod_workload.Video.duration_s v in
      let links = Vod_topology.Paths.path_links t.paths ~src:server ~dst:vho in
      let t1 = now +. dur in
      for l = 0 to Array.length links - 1 do
        Vod_sim.Metrics.add_stream metrics ~link:links.(l) ~rate_mbps:rate
          ~t0:now ~t1
      done;
      if record then begin
        let hops =
          float_of_int (Vod_topology.Paths.hops t.paths ~src:server ~dst:vho)
        in
        let gb = Vod_workload.Video.size_gb v in
        metrics.Vod_sim.Metrics.total_gb_hops <-
          metrics.Vod_sim.Metrics.total_gb_hops +. (gb *. hops);
        metrics.Vod_sim.Metrics.total_gb_remote <-
          metrics.Vod_sim.Metrics.total_gb_remote +. gb
      end
    end
  done

(* ---- faulted configuration ------------------------------------------- *)

let reject_obs reason =
  Obs.incr "serve/rejections";
  Obs.incr ("serve/rejections/" ^ Router.reject_reason_to_string reason)

let account_reject (metrics : Vod_sim.Metrics.t) (reason : Router.reject_reason)
    =
  let deg = metrics.Vod_sim.Metrics.deg in
  deg.Vod_sim.Metrics.rejections <- deg.Vod_sim.Metrics.rejections + 1;
  (match reason with
  | Router.Vho_down ->
      deg.Vod_sim.Metrics.rejected_vho_down <-
        deg.Vod_sim.Metrics.rejected_vho_down + 1
  | Router.No_replica ->
      deg.Vod_sim.Metrics.rejected_no_replica <-
        deg.Vod_sim.Metrics.rejected_no_replica + 1
  | Router.Unreachable ->
      deg.Vod_sim.Metrics.rejected_unreachable <-
        deg.Vod_sim.Metrics.rejected_unreachable + 1
  | Router.No_capacity ->
      deg.Vod_sim.Metrics.rejected_no_capacity <-
        deg.Vod_sim.Metrics.rejected_no_capacity + 1);
  reject_obs reason

(* Hoisted out of the request loop (alloc-in-hot): a local definition
   per request would allocate a closure per request. *)
let count_request metrics ~track_per_vho ~vho =
  metrics.Vod_sim.Metrics.requests <- metrics.Vod_sim.Metrics.requests + 1;
  if track_per_vho then
    metrics.Vod_sim.Metrics.per_vho_requests.(vho) <-
      metrics.Vod_sim.Metrics.per_vho_requests.(vho) + 1

(* Field-for-field the body of Vod_resil.Playout.play, with the
   per-request ref/closure pair replaced by the scratch fields. *)
let play_faulted t f metrics (requests : Vod_workload.Trace.request array) =
  let track_per_vho =
    Array.length metrics.Vod_sim.Metrics.per_vho_requests > 0
  in
  let deg = metrics.Vod_sim.Metrics.deg in
  Array.iter
    (fun (r : Vod_workload.Trace.request) ->
      let now = r.Vod_workload.Trace.time_s in
      let video = r.Vod_workload.Trace.video in
      let vho = r.Vod_workload.Trace.vho in
      ignore (State.advance f.state ~now ~on_event:f.on_event : int);
      Capacity.expire f.capacity ~now;
      let record = Vod_sim.Metrics.in_record_window metrics now in
      if record then f.win_requests <- f.win_requests + 1;
      if not (State.vho_up f.state vho) then begin
        (* The requesting VHO is dark: nobody there to serve. *)
        if record then begin
          count_request metrics ~track_per_vho ~vho;
          account_reject metrics Router.Vho_down;
          f.win_rejections <- f.win_rejections + 1
        end
      end
      else begin
        let v = Vod_workload.Catalog.video t.catalog video in
        let surge = State.surge f.state vho in
        let rate = Vod_workload.Video.rate_mbps v *. surge in
        let dur = Vod_workload.Video.duration_s v in
        f.cur_video <- video;
        f.cur_vho <- vho;
        f.cur_rate <- rate;
        f.cur_now <- now;
        f.cur_until <- now +. dur;
        f.decision <- Router.Rejected Router.No_replica;
        match
          Vod_cache.Fleet.serve_routed t.fleet ~video ~vho ~now ~route:f.route
        with
        | Some outcome ->
            if record then begin
              count_request metrics ~track_per_vho ~vho;
              if outcome.Vod_cache.Fleet.local then begin
                metrics.Vod_sim.Metrics.local_served <-
                  metrics.Vod_sim.Metrics.local_served + 1;
                if track_per_vho then
                  metrics.Vod_sim.Metrics.per_vho_local.(vho) <-
                    metrics.Vod_sim.Metrics.per_vho_local.(vho) + 1;
                if outcome.Vod_cache.Fleet.cache_hit then
                  metrics.Vod_sim.Metrics.cache_hits <-
                    metrics.Vod_sim.Metrics.cache_hits + 1
              end
              else begin
                metrics.Vod_sim.Metrics.remote_served <-
                  metrics.Vod_sim.Metrics.remote_served + 1;
                if outcome.Vod_cache.Fleet.not_cachable then
                  metrics.Vod_sim.Metrics.not_cachable <-
                    metrics.Vod_sim.Metrics.not_cachable + 1
              end
            end;
            if not outcome.Vod_cache.Fleet.local then begin
              match f.decision with
              | Router.Served s ->
                  (* Explicit loop: an [Array.iter] lambda here is a
                     fresh closure per served remote request
                     (alloc-in-hot). *)
                  let t1 = now +. dur in
                  let links = s.Router.links in
                  for i = 0 to Array.length links - 1 do
                    Vod_sim.Metrics.add_stream metrics ~link:links.(i)
                      ~rate_mbps:rate ~t0:now ~t1
                  done;
                  if record then begin
                    let hops = float_of_int s.Router.hops in
                    let gb = Vod_workload.Video.size_gb v *. surge in
                    metrics.Vod_sim.Metrics.total_gb_hops <-
                      metrics.Vod_sim.Metrics.total_gb_hops +. (gb *. hops);
                    metrics.Vod_sim.Metrics.total_gb_remote <-
                      metrics.Vod_sim.Metrics.total_gb_remote +. gb;
                    if surge > 1.0 then Obs.incr "serve/surged_streams";
                    if s.Router.failover then begin
                      deg.Vod_sim.Metrics.failovers <-
                        deg.Vod_sim.Metrics.failovers + 1;
                      deg.Vod_sim.Metrics.failover_extra_hops <-
                        deg.Vod_sim.Metrics.failover_extra_hops
                        + s.Router.extra_hops;
                      f.win_failovers <- f.win_failovers + 1;
                      Obs.incr "serve/failovers";
                      if s.Router.extra_hops > 0 then
                        Obs.incr ~by:s.Router.extra_hops
                          "serve/failover_extra_hops"
                    end;
                    if s.Router.via_origin then begin
                      deg.Vod_sim.Metrics.origin_served <-
                        deg.Vod_sim.Metrics.origin_served + 1;
                      Obs.incr "serve/origin_served"
                    end
                  end
              | Router.Rejected _ ->
                  (* serve_routed returned an outcome, so route said yes *)
                  invalid_arg "Loop.play: served without a routing decision"
            end
        | None ->
            if record then begin
              count_request metrics ~track_per_vho ~vho;
              (match f.decision with
              | Router.Rejected reason -> account_reject metrics reason
              | Router.Served _ ->
                  invalid_arg "Loop.play: rejected with a serving decision");
              f.win_rejections <- f.win_rejections + 1
            end
      end)
    requests

(* Columnar twin of [play_faulted]: rows [lo, hi) of a struct-of-arrays
   store by index. The scratch fields and prebuilt [f.route]/[f.on_event]
   closures already make the boxed loop allocation-free per request;
   here the boxed request itself goes too. Kept field-for-field in sync
   with [play_faulted] above. *)
let play_faulted_soa t f metrics (soa : Vod_workload.Trace_soa.t) ~lo ~hi =
  let track_per_vho =
    Array.length metrics.Vod_sim.Metrics.per_vho_requests > 0
  in
  let deg = metrics.Vod_sim.Metrics.deg in
  for i = lo to hi - 1 do
    let now = Vod_workload.Trace_soa.time soa i in
    let video = Vod_workload.Trace_soa.video soa i in
    let vho = Vod_workload.Trace_soa.vho soa i in
    ignore (State.advance f.state ~now ~on_event:f.on_event : int);
    Capacity.expire f.capacity ~now;
    let record = Vod_sim.Metrics.in_record_window metrics now in
    if record then f.win_requests <- f.win_requests + 1;
    if not (State.vho_up f.state vho) then begin
      (* The requesting VHO is dark: nobody there to serve. *)
      if record then begin
        count_request metrics ~track_per_vho ~vho;
        account_reject metrics Router.Vho_down;
        f.win_rejections <- f.win_rejections + 1
      end
    end
    else begin
      let v = Vod_workload.Catalog.video t.catalog video in
      let surge = State.surge f.state vho in
      let rate = Vod_workload.Video.rate_mbps v *. surge in
      let dur = Vod_workload.Video.duration_s v in
      f.cur_video <- video;
      f.cur_vho <- vho;
      f.cur_rate <- rate;
      f.cur_now <- now;
      f.cur_until <- now +. dur;
      f.decision <- Router.Rejected Router.No_replica;
      match
        Vod_cache.Fleet.serve_routed t.fleet ~video ~vho ~now ~route:f.route
      with
      | Some outcome ->
          if record then begin
            count_request metrics ~track_per_vho ~vho;
            if outcome.Vod_cache.Fleet.local then begin
              metrics.Vod_sim.Metrics.local_served <-
                metrics.Vod_sim.Metrics.local_served + 1;
              if track_per_vho then
                metrics.Vod_sim.Metrics.per_vho_local.(vho) <-
                  metrics.Vod_sim.Metrics.per_vho_local.(vho) + 1;
              if outcome.Vod_cache.Fleet.cache_hit then
                metrics.Vod_sim.Metrics.cache_hits <-
                  metrics.Vod_sim.Metrics.cache_hits + 1
            end
            else begin
              metrics.Vod_sim.Metrics.remote_served <-
                metrics.Vod_sim.Metrics.remote_served + 1;
              if outcome.Vod_cache.Fleet.not_cachable then
                metrics.Vod_sim.Metrics.not_cachable <-
                  metrics.Vod_sim.Metrics.not_cachable + 1
            end
          end;
          if not outcome.Vod_cache.Fleet.local then begin
            match f.decision with
            | Router.Served s ->
                let t1 = now +. dur in
                let links = s.Router.links in
                for l = 0 to Array.length links - 1 do
                  Vod_sim.Metrics.add_stream metrics ~link:links.(l)
                    ~rate_mbps:rate ~t0:now ~t1
                done;
                if record then begin
                  let hops = float_of_int s.Router.hops in
                  let gb = Vod_workload.Video.size_gb v *. surge in
                  metrics.Vod_sim.Metrics.total_gb_hops <-
                    metrics.Vod_sim.Metrics.total_gb_hops +. (gb *. hops);
                  metrics.Vod_sim.Metrics.total_gb_remote <-
                    metrics.Vod_sim.Metrics.total_gb_remote +. gb;
                  if surge > 1.0 then Obs.incr "serve/surged_streams";
                  if s.Router.failover then begin
                    deg.Vod_sim.Metrics.failovers <-
                      deg.Vod_sim.Metrics.failovers + 1;
                    deg.Vod_sim.Metrics.failover_extra_hops <-
                      deg.Vod_sim.Metrics.failover_extra_hops
                      + s.Router.extra_hops;
                    f.win_failovers <- f.win_failovers + 1;
                    Obs.incr "serve/failovers";
                    if s.Router.extra_hops > 0 then
                      Obs.incr ~by:s.Router.extra_hops
                        "serve/failover_extra_hops"
                  end;
                  if s.Router.via_origin then begin
                    deg.Vod_sim.Metrics.origin_served <-
                      deg.Vod_sim.Metrics.origin_served + 1;
                    Obs.incr "serve/origin_served"
                  end
                end
            | Router.Rejected _ ->
                (* serve_routed returned an outcome, so route said yes *)
                invalid_arg "Loop.play_soa: served without a routing decision"
          end
      | None ->
          if record then begin
            count_request metrics ~track_per_vho ~vho;
            (match f.decision with
            | Router.Rejected reason -> account_reject metrics reason
            | Router.Served _ ->
                invalid_arg "Loop.play_soa: rejected with a serving decision");
            f.win_rejections <- f.win_rejections + 1
          end
    end
  done

(* ---- common entry points --------------------------------------------- *)

let play t metrics (requests : Vod_workload.Trace.request array) =
  Vod_sim.Metrics.validate_vhos metrics requests;
  if Obs.active () then
    Obs.incr ~by:(Array.length requests) "serve/requests";
  match t.faulted with
  | None -> play_direct t metrics requests
  | Some f -> play_faulted t f metrics requests

(* Columnar entry point: play rows [lo, hi) of a compact store through
   whichever configuration the loop was created with. *)
let play_soa t metrics (soa : Vod_workload.Trace_soa.t) ~lo ~hi =
  if lo < 0 || hi < lo || hi > Vod_workload.Trace_soa.length soa then
    invalid_arg "Loop.play_soa: range out of bounds";
  Vod_sim.Metrics.validate_store metrics soa;
  if Obs.active () then Obs.incr ~by:(hi - lo) "serve/requests";
  match t.faulted with
  | None -> play_direct_soa t metrics soa ~lo ~hi
  | Some f -> play_faulted_soa t f metrics soa ~lo ~hi

(* Drain the remaining schedule, close saturation intervals and the last
   window, and publish the end-of-run gauges. Idempotent; a no-op in the
   direct configuration, which has no timeline to drain. *)
let finish t (metrics : Vod_sim.Metrics.t) =
  if not t.finished then begin
    t.finished <- true;
    match t.faulted with
    | None -> ()
    | Some f ->
        let horizon =
          float_of_int metrics.Vod_sim.Metrics.n_bins
          *. metrics.Vod_sim.Metrics.bin_s
        in
        ignore (State.advance f.state ~now:horizon ~on_event:f.on_event : int);
        Capacity.expire f.capacity ~now:horizon;
        Capacity.finish f.capacity ~now:horizon;
        metrics.Vod_sim.Metrics.deg.Vod_sim.Metrics.link_saturated_s <-
          Capacity.saturated_seconds f.capacity;
        Obs.set_gauge "serve/link_saturated_seconds"
          (Capacity.saturated_seconds f.capacity);
        close_window f ~now:horizon ~trigger:"end"
  end

let windows t =
  match t.faulted with None -> [] | Some f -> List.rev f.windows_rev

(* One-shot playout of a full trace; mirrors Vod_sim.Sim.run's metrics
   creation so the fault-free configurations coincide. *)
let run ~graph ~paths ~catalog ~fleet ~trace ?(bin_s = 300.0)
    ?(record_from = 0.0) ?resil () =
  let horizon_s =
    float_of_int trace.Vod_workload.Trace.days
    *. Vod_workload.Trace.seconds_per_day
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos:(Vod_topology.Graph.n_nodes graph)
      ~horizon_s ~bin_s ~record_from ()
  in
  let t = create ~graph ~paths ~catalog ~fleet ?resil () in
  (* [play] can raise (request validation); [finish] is idempotent, so
     settling the capacity ledger under Fun.protect keeps the normal
     path byte-identical while closing it on the exceptional one. *)
  Fun.protect
    ~finally:(fun () -> finish t metrics)
    (fun () -> play t metrics trace.Vod_workload.Trace.requests);
  Log.info (fun m ->
      m "%s: %d requests, local %.1f%%, %d rejections, peak link %.0f Mb/s"
        (Vod_cache.Fleet.name fleet) metrics.Vod_sim.Metrics.requests
        (100.0 *. Vod_sim.Metrics.local_fraction metrics)
        metrics.Vod_sim.Metrics.deg.Vod_sim.Metrics.rejections
        (Vod_sim.Metrics.max_link_mbps metrics));
  (metrics, windows t)

(* Columnar twin of [run]: one-shot playout of a full compact store. *)
let run_soa ~graph ~paths ~catalog ~fleet ~store ?(bin_s = 300.0)
    ?(record_from = 0.0) ?resil () =
  let horizon_s =
    float_of_int store.Vod_workload.Trace_soa.days
    *. Vod_workload.Trace.seconds_per_day
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos:(Vod_topology.Graph.n_nodes graph)
      ~horizon_s ~bin_s ~record_from ()
  in
  let t = create ~graph ~paths ~catalog ~fleet ?resil () in
  Fun.protect
    ~finally:(fun () -> finish t metrics)
    (fun () ->
      play_soa t metrics store ~lo:0
        ~hi:(Vod_workload.Trace_soa.length store));
  Log.info (fun m ->
      m "%s: %d requests, local %.1f%%, %d rejections, peak link %.0f Mb/s"
        (Vod_cache.Fleet.name fleet) metrics.Vod_sim.Metrics.requests
        (100.0 *. Vod_sim.Metrics.local_fraction metrics)
        metrics.Vod_sim.Metrics.deg.Vod_sim.Metrics.rejections
        (Vod_sim.Metrics.max_link_mbps metrics));
  (metrics, windows t)
