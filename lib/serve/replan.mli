(** Re-placement building blocks shared by the batch pipeline
    ([Vod_core.Pipeline]) and the online daemon ({!Daemon}): demand
    assembly for a period starting at a float time, the periodic MIP
    re-solve, and the migration-budget restriction. Because both
    callers share these entry points, a daemon replanning at
    day-aligned boundaries with the same inputs reproduces the batch
    pipeline's placements bit-for-bit. *)

(** The static re-placement problem: topology, catalog, capacities and
    engine parameters that stay fixed across replans. *)
type problem = {
  graph : Vod_topology.Graph.t;
  catalog : Vod_workload.Catalog.t;
  disk_gb : float array;  (** raw per-VHO disk *)
  link_capacity_mbps : float;  (** uniform per-link budget *)
  cache_frac : float;  (** complementary-LRU share of each disk *)
  n_windows : int;
  window_s : float;
  engine : Vod_epf.Engine.params;
  solver : string;
      (** solver-backend name dispatched to {!Vod_placement.Backend}
          (["epf"] for the historical behavior) *)
}

(** Disk left to a VHO the fault state reports dark (strictly positive
    because the engine requires positive row capacities). *)
val down_disk_gb : float

(** [demand pb ~t0_s requests] builds the MIP demand model for the
    placement period [t0_s, t0_s + 7 days) from a request batch with
    absolute times. Bit-identical to [Demand.of_requests ~day0] when
    [t0_s] is day-aligned. *)
val demand :
  problem -> t0_s:float -> Vod_workload.Trace.request array -> Vod_workload.Demand.t

(** One placement re-solve. [incumbent] warm-starts the EPF engine from
    the running placement ({!Vod_placement.Solve.solve}'s [incumbent]);
    [down_vhos.(i) = true] shrinks VHO [i]'s pinned disk to
    {!down_disk_gb} so the solver plans around the outage. *)
val solve :
  ?incumbent:Vod_placement.Solution.t ->
  ?down_vhos:bool array ->
  problem ->
  Vod_workload.Demand.t ->
  Vod_placement.Solve.report

(** An incremental placement delta: how much of a target placement was
    adopted under a migration budget. *)
type delta = {
  solution : Vod_placement.Solution.t;
  applied : int;  (** videos whose copy set changed and were adopted *)
  deferred : int;  (** videos kept on the incumbent placement *)
  moved_gb : float;  (** bytes of new copies actually scheduled *)
}

(** [restrict ~catalog ~incumbent ~target ~priority ~budget_gb] adopts
    target copy sets per video (atomically — a video either moves fully
    or stays put), greedily by predicted demand per moved GB
    ([priority.(video)] over the video's transfer bytes, ties broken on
    video id), skipping videos that exceed the remaining budget.
    Transfer-free changes always adopt. When everything fits (e.g.
    [budget_gb = infinity]) the [target] solution itself is returned.
    Raises [Invalid_argument] on a catalog size mismatch. *)
val restrict :
  catalog:Vod_workload.Catalog.t ->
  incumbent:Vod_placement.Solution.t ->
  target:Vod_placement.Solution.t ->
  priority:float array ->
  budget_gb:float ->
  delta
