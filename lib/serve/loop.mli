(** The unified serving engine: one event loop behind both the legacy
    fixed-path playout ([Vod_sim.Sim]) and the fault-injecting
    resilience playout ([Vod_resil.Playout]), each now a configuration
    of the same loop. The placement source is the mutable fleet
    ({!set_fleet} swaps placements mid-run); the router and capacity
    model plug in through an optional [Vod_resil.Playout.config]. Both
    configurations reproduce the legacy engines' metrics byte-for-byte
    (asserted by test/test_serve.ml); telemetry goes to the [serve/*]
    keys (METRICS.md). *)

type t

(** [create ~graph ~paths ~catalog ~fleet ?resil ()] builds a loop over
    the fixed routing. Without [resil] the loop runs the direct (legacy)
    configuration; with it, the fault timeline, capacity tracker and
    failover router are instantiated exactly as [Vod_resil.Playout.create]
    does. Raises [Invalid_argument] if the schedule references ids
    outside the topology. *)
val create :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  ?resil:Vod_resil.Playout.config ->
  unit ->
  t

(** The fleet currently being driven. *)
val fleet : t -> Vod_cache.Fleet.t

(** Swap the placement the loop serves from — the placement-source seam
    used by the batch pipeline at update boundaries and by the
    re-placement daemon after each incremental delta. *)
val set_fleet : t -> Vod_cache.Fleet.t -> unit

(** Whether a VHO is currently up ([true] always in the direct
    configuration) — the fault-state read the daemon's replanner uses
    to steer demand away from dark VHOs. *)
val vho_up : t -> int -> bool

(** Advance the fault timeline (and expire stream reservations) to
    [now] without playing a request, applying any pending events — the
    daemon's replan boundaries use this so {!vho_up} reflects the
    boundary instant. No-op in the direct configuration. *)
val advance : t -> now:float -> unit

(** Play one time-sorted request batch, accumulating into the metrics.
    Raises [Invalid_argument] on VHO ids outside the metrics arrays. *)
val play :
  t -> Vod_sim.Metrics.t -> Vod_workload.Trace.request array -> unit

(** Columnar twin of {!play}: rows [[lo, hi)) of a compact
    struct-of-arrays store, iterated by index with no boxed request and
    no per-row closure in either configuration. Byte-identical metrics
    to {!play} on the equivalent request slice (asserted by
    test/test_soa.ml). Raises [Invalid_argument] on a bad range or a
    store whose VHO bound exceeds the metrics arrays. *)
val play_soa :
  t -> Vod_sim.Metrics.t -> Vod_workload.Trace_soa.t -> lo:int -> hi:int -> unit

(** Drain the remaining fault schedule up to the metrics horizon, close
    saturation intervals and the final window, publish end-of-run
    gauges. Idempotent; a no-op in the direct configuration. *)
val finish : t -> Vod_sim.Metrics.t -> unit

(** Event windows closed so far, oldest first (complete after
    {!finish}); [[]] in the direct configuration. *)
val windows : t -> Vod_resil.Playout.window list

(** One-shot playout of a full trace (metrics creation mirrors
    [Vod_sim.Sim.run]). *)
val run :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  trace:Vod_workload.Trace.t ->
  ?bin_s:float ->
  ?record_from:float ->
  ?resil:Vod_resil.Playout.config ->
  unit ->
  Vod_sim.Metrics.t * Vod_resil.Playout.window list

(** One-shot playout of a full compact store (columnar twin of {!run}). *)
val run_soa :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  store:Vod_workload.Trace_soa.t ->
  ?bin_s:float ->
  ?record_from:float ->
  ?resil:Vod_resil.Playout.config ->
  unit ->
  Vod_sim.Metrics.t * Vod_resil.Playout.window list
