(** The online re-placement daemon: continuous ingest through the
    unified serving loop ({!Loop}), periodic demand re-estimation on a
    sliding window ([Vod_workload.Estimator.predict_at]), warm-started
    EPF re-solves from the incumbent placement, and incremental
    placement deltas under a migration-byte budget ({!Replan.restrict})
    — reacting to [lib/resil] fault state as well as demand drift.

    With an infinite budget, warm start off and day-aligned boundaries
    the run is bit-identical to the batch pipeline at [update_days = 1]
    (asserted by test/test_serve.ml). Telemetry goes to the
    [serve/daemon/*] keys (METRICS.md). *)

type config = {
  estimator : Vod_workload.Estimator.strategy;
  update_every_s : float;  (** periodic replan cadence *)
  history_s : float;  (** sliding estimation window *)
  migration_budget_gb : float;
      (** per-replan transfer budget; [infinity] = unrestricted *)
  warm_start : bool;  (** warm the EPF engine from the incumbent *)
  react_to_faults : bool;  (** replan on fault/repair events too *)
}

(** Series+blockbuster estimation, 6-hour cadence, one week of history,
    infinite budget, warm start on, fault reaction on. *)
val default_config : config

(** One replan record: when, why, the solve behind it, and how much of
    it the budget let through. *)
type replan = {
  t_s : float;
  trigger : string;  (** ["bootstrap"], ["periodic"] or an event kind *)
  report : Vod_placement.Solve.report;
  applied : int;
  deferred : int;
  moved_gb : float;
}

type result = {
  metrics : Vod_sim.Metrics.t;
  replans : replan list;  (** oldest first; head is the bootstrap *)
  windows : Vod_resil.Playout.window list;  (** [[]] without faults *)
  final : Vod_placement.Solution.t;  (** placement in force at the end *)
}

(** The replan boundary schedule [run] iterates: periodic ticks every
    [update_every_s] from the end of the bootstrap week to the horizon,
    merged with the fault timeline's event instants strictly inside
    that range when [react_to_faults]. Sorted ascending; exact-time
    collisions replan once (periodic label wins). Exposed for tests and
    planning tools. *)
val boundaries :
  config ->
  ?resil:Vod_resil.Playout.config ->
  horizon_s:float ->
  unit ->
  (float * string) list

(** [run ~graph ~paths ~catalog ~trace ~problem ?resil ?bin_s
    ?record_from cfg] bootstraps a placement from the actual first week
    (as the batch pipeline does), then serves the trace through the
    unified loop, replanning at every boundary: periodic ticks from day
    7 on, plus the fault timeline's event instants when
    [react_to_faults] (exact-time collisions replan once). *)
val run :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  trace:Vod_workload.Trace.t ->
  problem:Replan.problem ->
  ?resil:Vod_resil.Playout.config ->
  ?bin_s:float ->
  ?record_from:float ->
  config ->
  result

(** Total GB of copies migrated across all replans. *)
val total_moved_gb : result -> float

(** Total placement deltas applied across all replans. *)
val total_applied : result -> int

(** Total placement deltas deferred by the budget across all replans. *)
val total_deferred : result -> int
