(* Re-placement building blocks shared by the batch pipeline and the
   online daemon: demand assembly for a placement period starting at an
   arbitrary float time, the periodic MIP re-solve (optionally
   warm-started from the incumbent and steered away from dark VHOs),
   and the migration-budget restriction that turns a target placement
   into an affordable incremental delta.

   The batch pipeline routes its weekly solves through [demand]/[solve]
   too, so a daemon replanning at day-aligned boundaries with the same
   inputs produces bit-identical placements — the equivalence contract
   test/test_serve.ml pins down. *)

type problem = {
  graph : Vod_topology.Graph.t;
  catalog : Vod_workload.Catalog.t;
  disk_gb : float array;          (* raw per-VHO disk *)
  link_capacity_mbps : float;     (* uniform per-link budget *)
  cache_frac : float;             (* complementary-LRU share of each disk *)
  n_windows : int;
  window_s : float;
  engine : Vod_epf.Engine.params;
  solver : string;                (* backend name for Solve.solve *)
}

(* Disk left to a VHO the fault state reports dark: effectively nothing,
   but strictly positive because the engine requires positive row
   capacities. *)
let down_disk_gb = 1e-6

(* Demand for the placement period [t0_s, t0_s + 7d) from a (predicted
   or actual) request batch with absolute times. Rebasing here and
   passing [day0:0] is bit-identical to [Demand.of_requests ~day0] at
   day-aligned [t0_s]: both subtract the same exact float once. *)
let demand pb ~t0_s (requests : Vod_workload.Trace.request array) =
  let rebased =
    Array.map
      (fun (r : Vod_workload.Trace.request) ->
        { r with Vod_workload.Trace.time_s = r.Vod_workload.Trace.time_s -. t0_s })
      requests
  in
  Vod_workload.Demand.of_requests pb.catalog
    ~n_vhos:(Vod_topology.Graph.n_nodes pb.graph)
    ~day0:0 ~days:7 ~n_windows:pb.n_windows ~window_s:pb.window_s rebased

(* One placement re-solve. [incumbent] warm-starts the EPF engine from
   the placement the fleet is already running; [down_vhos] shrinks dark
   VHOs' disks so the solver plans around the outage. *)
let solve ?incumbent ?down_vhos pb demand =
  let pinned_disk =
    Array.map (fun d -> d *. (1.0 -. pb.cache_frac)) pb.disk_gb
  in
  (match down_vhos with
  | Some down ->
      Array.iteri
        (fun i is_down -> if is_down then pinned_disk.(i) <- down_disk_gb)
        down
  | None -> ());
  let inst =
    Vod_placement.Instance.create ~graph:pb.graph ~catalog:pb.catalog ~demand
      ~disk_gb:pinned_disk
      ~link_capacity_mbps:
        (Vod_placement.Instance.uniform_links pb.graph pb.link_capacity_mbps)
      ()
  in
  Vod_placement.Solve.solve ~solver:pb.solver ~params:pb.engine ?incumbent inst

(* An incremental placement delta: how much of the target placement was
   adopted under the migration budget. *)
type delta = {
  solution : Vod_placement.Solution.t;
  applied : int;    (* videos whose copy set changed and were adopted *)
  deferred : int;   (* videos kept on the incumbent placement *)
  moved_gb : float; (* bytes of new copies actually scheduled *)
}

(* GB of new copies needed to move one video from [old_set] to
   [new_set] (the per-video share of [Solution.migration]). *)
let video_moved_gb (catalog : Vod_workload.Catalog.t) ~video ~old_set ~new_set =
  let gb = ref 0.0 in
  Array.iter
    (fun i ->
      if not (Array.exists (fun j -> j = i) old_set) then
        gb :=
          !gb
          +. Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video))
    new_set;
  !gb

let same_set (a : int array) (b : int array) =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

(* Restrict a target placement to what a migration budget affords:
   per-video atomic adoption (a video either moves to its full target
   copy set or stays put — half-migrated replica sets would leave the
   routing inconsistent), greedily in order of predicted demand per
   moved GB (deterministic tiebreak on video id), skipping videos that
   no longer fit and continuing down the list. Videos whose copy set is
   unchanged (or only shrinks/re-routes — freeing copies costs no
   transfer) always adopt the target's routing for free.

   When everything fits — in particular under an infinite budget — the
   target solution itself is returned, so an unbudgeted daemon tracks
   the batch pipeline exactly. *)
let restrict ~(catalog : Vod_workload.Catalog.t)
    ~(incumbent : Vod_placement.Solution.t)
    ~(target : Vod_placement.Solution.t) ~(priority : float array) ~budget_gb =
  if incumbent.Vod_placement.Solution.n_videos <> target.Vod_placement.Solution.n_videos
  then invalid_arg "Replan.restrict: catalog size mismatch";
  let n_videos = target.Vod_placement.Solution.n_videos in
  (* Videos that need transfers, with their cost and priority density. *)
  let costly = ref [] in
  let total_gb = ref 0.0 in
  for video = 0 to n_videos - 1 do
    let old_set = incumbent.Vod_placement.Solution.stored.(video) in
    let new_set = target.Vod_placement.Solution.stored.(video) in
    if not (same_set old_set new_set) then begin
      let gb = video_moved_gb catalog ~video ~old_set ~new_set in
      if gb > 0.0 then begin
        costly := (video, gb) :: !costly;
        total_gb := !total_gb +. gb
      end
    end
  done;
  let costly = Array.of_list (List.rev !costly) in
  if !total_gb <= budget_gb then
    (* Everything fits: the delta IS the target placement. *)
    {
      solution = target;
      applied = Array.length costly;
      deferred = 0;
      moved_gb = !total_gb;
    }
  else begin
    (* Highest predicted demand per moved GB first; ties on video id. *)
    Array.sort
      (fun (v1, g1) (v2, g2) ->
        let d1 = priority.(v1) /. g1 and d2 = priority.(v2) /. g2 in
        match Float.compare d2 d1 with 0 -> Int.compare v1 v2 | c -> c)
      costly;
    let adopt = Array.make n_videos false in
    let applied = ref 0 and deferred = ref 0 and moved = ref 0.0 in
    let remaining = ref budget_gb in
    Array.iter
      (fun (video, gb) ->
        if gb <= !remaining then begin
          adopt.(video) <- true;
          remaining := !remaining -. gb;
          moved := !moved +. gb;
          incr applied
        end
        else incr deferred)
      costly;
    let stored =
      Array.init n_videos (fun video ->
          let old_set = incumbent.Vod_placement.Solution.stored.(video) in
          let new_set = target.Vod_placement.Solution.stored.(video) in
          if adopt.(video) then new_set
          else if same_set old_set new_set then new_set
          else begin
            (* Transfer-free changes (pure shrink / re-route) adopt the
               target; anything needing bytes stays on the incumbent. *)
            let gb = video_moved_gb catalog ~video ~old_set ~new_set in
            if gb = 0.0 then new_set else old_set
          end)
    in
    let routes =
      Array.init n_videos (fun video ->
          if stored.(video) == target.Vod_placement.Solution.stored.(video) then
            target.Vod_placement.Solution.routes.(video)
          else incumbent.Vod_placement.Solution.routes.(video))
    in
    {
      solution =
        {
          target with
          Vod_placement.Solution.stored;
          routes;
          (* The statistics fields describe the *target* solve; the
             hybrid's true objective is between incumbent and target
             and is never read downstream (the fleet only uses
             stored/routes). *)
        };
      applied = !applied;
      deferred = !deferred;
      moved_gb = !moved;
    }
  end
