(** Trace playout engine: drives a fleet with time-sorted requests,
    streaming remote fetches over every link of the fixed path for the
    playback duration. *)

(** Incremental playout of one batch into existing metrics (the weekly
    pipeline plays segment by segment as placements change). *)
val play :
  Metrics.t ->
  Vod_topology.Paths.t ->
  Vod_workload.Catalog.t ->
  Vod_cache.Fleet.t ->
  Vod_workload.Trace.request array ->
  unit

(** Columnar twin of {!play}: rows [[lo, hi)) of a compact
    struct-of-arrays store, iterated by index with no boxed request and
    no per-row closure. Produces byte-identical metrics to {!play} on
    the equivalent request slice. *)
val play_soa :
  Metrics.t ->
  Vod_topology.Paths.t ->
  Vod_workload.Catalog.t ->
  Vod_cache.Fleet.t ->
  Vod_workload.Trace_soa.t ->
  lo:int ->
  hi:int ->
  unit

(** One-shot playout of a full trace. [record_from] excludes the cache
    warm-up period from the counters and link loads. *)
val run :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  trace:Vod_workload.Trace.t ->
  ?bin_s:float ->
  ?record_from:float ->
  unit ->
  Metrics.t

(** One-shot playout of a full compact store (columnar twin of {!run}). *)
val run_soa :
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  fleet:Vod_cache.Fleet.t ->
  store:Vod_workload.Trace_soa.t ->
  ?bin_s:float ->
  ?record_from:float ->
  unit ->
  Metrics.t
