(* Playout metrics: per-(directed link, 5-minute bin) average load plus
   request counters. A remote stream contributes its bitrate to every bin
   its playback overlaps, weighted by the overlap fraction — so a bin
   value is the link's average Mb/s over those 5 minutes, matching the
   paper's "maximum link usage measured every 5 min" (Fig. 5) and
   "aggregate transfers averaged over 5-min intervals" (Fig. 6). *)

(* Degradation accounting under faults (lib/resil playout): how much
   service quality the fleet lost to outages, dead links and saturated
   capacity. All zero for a fault-free playout. *)
type degradation = {
  mutable rejections : int;            (* requests served by nobody *)
  mutable rejected_vho_down : int;     (* requesting VHO itself was down *)
  mutable rejected_no_replica : int;   (* no holder anywhere *)
  mutable rejected_unreachable : int;  (* holders alive but no surviving path *)
  mutable rejected_no_capacity : int;  (* paths exist but all saturated *)
  mutable failovers : int;             (* served by a non-default replica *)
  mutable failover_extra_hops : int;   (* hops beyond the fault-free path *)
  mutable origin_served : int;         (* last-resort origin fallbacks *)
  mutable link_saturated_s : float;    (* total saturated link-seconds *)
}

type t = {
  bin_s : float;
  n_bins : int;
  n_links : int;
  record_from : float;          (* ignore activity before this time *)
  link_load : float array array;  (* link -> bin -> avg Mb/s *)
  per_vho_requests : int array;   (* recorded requests per VHO *)
  per_vho_local : int array;      (* locally served per VHO *)
  mutable requests : int;
  mutable local_served : int;     (* pinned or cache hit at the local VHO *)
  mutable cache_hits : int;
  mutable remote_served : int;
  mutable not_cachable : int;
  mutable total_gb_hops : float;  (* size * hops, the paper's transfer metric *)
  mutable total_gb_remote : float;
  deg : degradation;
}

let create ~n_links ?(n_vhos = 0) ~horizon_s ?(bin_s = 300.0) ?(record_from = 0.0) () =
  if bin_s <= 0.0 then invalid_arg "Metrics.create: bin_s must be positive";
  let n_bins = int_of_float (ceil (horizon_s /. bin_s)) in
  {
    bin_s;
    n_bins;
    n_links;
    record_from;
    link_load = Array.make_matrix n_links n_bins 0.0;
    per_vho_requests = Array.make n_vhos 0;
    per_vho_local = Array.make n_vhos 0;
    requests = 0;
    local_served = 0;
    cache_hits = 0;
    remote_served = 0;
    not_cachable = 0;
    total_gb_hops = 0.0;
    total_gb_remote = 0.0;
    deg =
      {
        rejections = 0;
        rejected_vho_down = 0;
        rejected_no_replica = 0;
        rejected_unreachable = 0;
        rejected_no_capacity = 0;
        failovers = 0;
        failover_extra_hops = 0;
        origin_served = 0;
        link_saturated_s = 0.0;
      };
  }

let in_record_window t time_s = time_s >= t.record_from

(* Check every request's VHO id against the per-VHO counter arrays once,
   up front, instead of silently dropping out-of-range ids per request.
   Only meaningful when the metrics track per-VHO counters. *)
let validate_vhos t requests =
  let n = Array.length t.per_vho_requests in
  if n > 0 then
    Array.iter
      (fun (r : Vod_workload.Trace.request) ->
        if r.Vod_workload.Trace.vho < 0 || r.Vod_workload.Trace.vho >= n then
          invalid_arg
            (Printf.sprintf
               "Metrics.validate_vhos: request VHO %d outside [0, %d)"
               r.Vod_workload.Trace.vho n))
      requests

(* O(1) store-level counterpart: construction already bounds-checked
   every row against the store's own [n_vhos]. *)
let validate_store t (soa : Vod_workload.Trace_soa.t) =
  let n = Array.length t.per_vho_requests in
  if n > 0 && soa.Vod_workload.Trace_soa.n_vhos > n then
    invalid_arg
      (Printf.sprintf
         "Metrics.validate_store: store allows VHOs up to %d, counters stop at %d"
         (soa.Vod_workload.Trace_soa.n_vhos - 1)
         (n - 1))

(* Spread a stream of [rate_mbps] over [t0, t1) into the link's bins. *)
let add_stream t ~link ~rate_mbps ~t0 ~t1 =
  let t0 = Float.max t0 t.record_from in
  if t1 > t0 then begin
    let horizon = float_of_int t.n_bins *. t.bin_s in
    let t1 = Float.min t1 horizon in
    let b0 = int_of_float (t0 /. t.bin_s) in
    let b1 = int_of_float (ceil (t1 /. t.bin_s)) - 1 in
    for b = b0 to min b1 (t.n_bins - 1) do
      let bin_start = float_of_int b *. t.bin_s in
      let overlap = Float.min t1 (bin_start +. t.bin_s) -. Float.max t0 bin_start in
      if overlap > 0.0 then
        t.link_load.(link).(b) <-
          t.link_load.(link).(b) +. (rate_mbps *. overlap /. t.bin_s)
    done
  end

(* Per-bin maximum over links (Fig. 5's series). *)
let peak_series t =
  Array.init t.n_bins (fun b ->
      let m = ref 0.0 in
      for l = 0 to t.n_links - 1 do
        if t.link_load.(l).(b) > !m then m := t.link_load.(l).(b)
      done;
      !m)

(* Per-bin sum over links (Fig. 6's series, in Mb/s across the network). *)
let aggregate_series t =
  Array.init t.n_bins (fun b ->
      let s = ref 0.0 in
      for l = 0 to t.n_links - 1 do
        s := !s +. t.link_load.(l).(b)
      done;
      !s)

(* Highest per-link average over the playout (the paper's "maximum link
   bandwidth"). *)
let max_link_mbps t = Vod_util.Stats_acc.max_elt (peak_series t)

let max_aggregate_mbps t = Vod_util.Stats_acc.max_elt (aggregate_series t)

let local_fraction t =
  if t.requests = 0 then 0.0
  else float_of_int t.local_served /. float_of_int t.requests

(* Fraction of recorded requests that were rejected outright (faulted
   playouts only; 0 otherwise). *)
let rejection_rate t =
  if t.requests = 0 then 0.0
  else float_of_int t.deg.rejections /. float_of_int t.requests

let hit_rate t = local_fraction t

(* Per-VHO local-serving fractions (NaN-free: 0 for idle VHOs). Only
   populated when the metrics were created with [n_vhos]. *)
let per_vho_local_fraction t =
  Array.mapi
    (fun i local ->
      let reqs = t.per_vho_requests.(i) in
      if reqs = 0 then 0.0 else float_of_int local /. float_of_int reqs)
    t.per_vho_local
