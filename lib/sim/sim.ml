(* The playout engine: drive a fleet with a request batch, accounting
   remote streams onto every link of the fixed path for the duration of
   playback (paper Sec. VII-A: "custom built simulator"). *)

let src = Logs.Src.create "vod.sim" ~doc:"trace playout"

module Log = (val Logs.src_log src : Logs.LOG)

(* Play a batch of requests (must be time-sorted) through [fleet],
   accumulating into [metrics]. VHO ids are validated against the
   per-VHO counter arrays once at entry ([Metrics.validate_vhos]) so a
   malformed trace raises instead of silently dropping counters. *)
let play metrics (paths : Vod_topology.Paths.t)
    (catalog : Vod_workload.Catalog.t) fleet (requests : Vod_workload.Trace.request array) =
  Metrics.validate_vhos metrics requests;
  let track_per_vho = Array.length metrics.Metrics.per_vho_requests > 0 in
  Array.iter
    (fun (r : Vod_workload.Trace.request) ->
      let now = r.Vod_workload.Trace.time_s in
      let video = r.Vod_workload.Trace.video in
      let vho = r.Vod_workload.Trace.vho in
      let outcome = Vod_cache.Fleet.serve fleet ~video ~vho ~now in
      let record = Metrics.in_record_window metrics now in
      if record then begin
        metrics.Metrics.requests <- metrics.Metrics.requests + 1;
        if track_per_vho then
          metrics.Metrics.per_vho_requests.(vho) <-
            metrics.Metrics.per_vho_requests.(vho) + 1;
        if outcome.Vod_cache.Fleet.local then begin
          metrics.Metrics.local_served <- metrics.Metrics.local_served + 1;
          if track_per_vho then
            metrics.Metrics.per_vho_local.(vho) <-
              metrics.Metrics.per_vho_local.(vho) + 1;
          if outcome.Vod_cache.Fleet.cache_hit then
            metrics.Metrics.cache_hits <- metrics.Metrics.cache_hits + 1
        end
        else begin
          metrics.Metrics.remote_served <- metrics.Metrics.remote_served + 1;
          if outcome.Vod_cache.Fleet.not_cachable then
            metrics.Metrics.not_cachable <- metrics.Metrics.not_cachable + 1
        end
      end;
      if not outcome.Vod_cache.Fleet.local then begin
        let server = outcome.Vod_cache.Fleet.server in
        let v = Vod_workload.Catalog.video catalog video in
        let rate = Vod_workload.Video.rate_mbps v in
        let dur = Vod_workload.Video.duration_s v in
        let links = Vod_topology.Paths.path_links paths ~src:server ~dst:vho in
        (* Explicit loop: an [Array.iter] lambda here is a fresh
           closure per remote request, in the hottest loop of the
           playout (alloc-in-hot). *)
        let t1 = now +. dur in
        for i = 0 to Array.length links - 1 do
          Metrics.add_stream metrics ~link:links.(i) ~rate_mbps:rate ~t0:now ~t1
        done;
        if record then begin
          let hops = float_of_int (Vod_topology.Paths.hops paths ~src:server ~dst:vho) in
          let gb = Vod_workload.Video.size_gb v in
          metrics.Metrics.total_gb_hops <- metrics.Metrics.total_gb_hops +. (gb *. hops);
          metrics.Metrics.total_gb_remote <- metrics.Metrics.total_gb_remote +. gb
        end
      end)
    requests

(* Columnar twin of [play]: rows [lo, hi) of a struct-of-arrays store,
   iterated by index — no boxed request, no per-row closure, the same
   serve call and the same float operation order, so the metrics are
   byte-for-byte those of [play] on the equivalent request slice
   (asserted by test/test_soa.ml). Kept field-for-field in sync with
   [play] above. *)
let play_soa metrics (paths : Vod_topology.Paths.t)
    (catalog : Vod_workload.Catalog.t) fleet (soa : Vod_workload.Trace_soa.t)
    ~lo ~hi =
  if lo < 0 || hi < lo || hi > Vod_workload.Trace_soa.length soa then
    invalid_arg "Sim.play_soa: range out of bounds";
  Metrics.validate_store metrics soa;
  let track_per_vho = Array.length metrics.Metrics.per_vho_requests > 0 in
  for i = lo to hi - 1 do
    let now = Vod_workload.Trace_soa.time soa i in
    let video = Vod_workload.Trace_soa.video soa i in
    let vho = Vod_workload.Trace_soa.vho soa i in
    let outcome = Vod_cache.Fleet.serve fleet ~video ~vho ~now in
    let record = Metrics.in_record_window metrics now in
    if record then begin
      metrics.Metrics.requests <- metrics.Metrics.requests + 1;
      if track_per_vho then
        metrics.Metrics.per_vho_requests.(vho) <-
          metrics.Metrics.per_vho_requests.(vho) + 1;
      if outcome.Vod_cache.Fleet.local then begin
        metrics.Metrics.local_served <- metrics.Metrics.local_served + 1;
        if track_per_vho then
          metrics.Metrics.per_vho_local.(vho) <-
            metrics.Metrics.per_vho_local.(vho) + 1;
        if outcome.Vod_cache.Fleet.cache_hit then
          metrics.Metrics.cache_hits <- metrics.Metrics.cache_hits + 1
      end
      else begin
        metrics.Metrics.remote_served <- metrics.Metrics.remote_served + 1;
        if outcome.Vod_cache.Fleet.not_cachable then
          metrics.Metrics.not_cachable <- metrics.Metrics.not_cachable + 1
      end
    end;
    if not outcome.Vod_cache.Fleet.local then begin
      let server = outcome.Vod_cache.Fleet.server in
      let v = Vod_workload.Catalog.video catalog video in
      let rate = Vod_workload.Video.rate_mbps v in
      let dur = Vod_workload.Video.duration_s v in
      let links = Vod_topology.Paths.path_links paths ~src:server ~dst:vho in
      let t1 = now +. dur in
      for l = 0 to Array.length links - 1 do
        Metrics.add_stream metrics ~link:links.(l) ~rate_mbps:rate ~t0:now ~t1
      done;
      if record then begin
        let hops = float_of_int (Vod_topology.Paths.hops paths ~src:server ~dst:vho) in
        let gb = Vod_workload.Video.size_gb v in
        metrics.Metrics.total_gb_hops <- metrics.Metrics.total_gb_hops +. (gb *. hops);
        metrics.Metrics.total_gb_remote <- metrics.Metrics.total_gb_remote +. gb
      end
    end
  done

(* One-shot playout of a full trace. *)
let run ~graph ~paths ~catalog ~fleet ~trace ?(bin_s = 300.0)
    ?(record_from = 0.0) () =
  let horizon_s =
    float_of_int trace.Vod_workload.Trace.days *. Vod_workload.Trace.seconds_per_day
  in
  let metrics =
    Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos:(Vod_topology.Graph.n_nodes graph)
      ~horizon_s ~bin_s ~record_from ()
  in
  play metrics paths catalog fleet trace.Vod_workload.Trace.requests;
  Log.info (fun m ->
      m "%s: %d requests, local %.1f%%, peak link %.0f Mb/s, %.0f GBxhop"
        (Vod_cache.Fleet.name fleet) metrics.Metrics.requests
        (100.0 *. Metrics.local_fraction metrics)
        (Metrics.max_link_mbps metrics) metrics.Metrics.total_gb_hops);
  metrics

(* One-shot playout of a full compact store (columnar twin of [run]). *)
let run_soa ~graph ~paths ~catalog ~fleet ~store ?(bin_s = 300.0)
    ?(record_from = 0.0) () =
  let horizon_s =
    float_of_int store.Vod_workload.Trace_soa.days
    *. Vod_workload.Trace.seconds_per_day
  in
  let metrics =
    Metrics.create
      ~n_links:(Vod_topology.Graph.n_links graph)
      ~n_vhos:(Vod_topology.Graph.n_nodes graph)
      ~horizon_s ~bin_s ~record_from ()
  in
  play_soa metrics paths catalog fleet store ~lo:0
    ~hi:(Vod_workload.Trace_soa.length store);
  Log.info (fun m ->
      m "%s: %d requests, local %.1f%%, peak link %.0f Mb/s, %.0f GBxhop"
        (Vod_cache.Fleet.name fleet) metrics.Metrics.requests
        (100.0 *. Metrics.local_fraction metrics)
        (Metrics.max_link_mbps metrics) metrics.Metrics.total_gb_hops);
  metrics
