(** Playout metrics: per-(directed link, time bin) average load in Mb/s
    plus serving counters — the raw material of the paper's Figs. 5/6/9/10
    and Tables II/V/VI. *)

(** Degradation accounting under faults (lib/resil playout): requests
    lost to outages, dead links or saturated capacity, plus failover
    overhead. All fields stay zero for a fault-free playout. *)
type degradation = {
  mutable rejections : int;
  mutable rejected_vho_down : int;
  mutable rejected_no_replica : int;
  mutable rejected_unreachable : int;
  mutable rejected_no_capacity : int;
  mutable failovers : int;
  mutable failover_extra_hops : int;
  mutable origin_served : int;
  mutable link_saturated_s : float;
}

type t = {
  bin_s : float;
  n_bins : int;
  n_links : int;
  record_from : float;
  link_load : float array array;
  per_vho_requests : int array;
  per_vho_local : int array;
  mutable requests : int;
  mutable local_served : int;
  mutable cache_hits : int;
  mutable remote_served : int;
  mutable not_cachable : int;
  mutable total_gb_hops : float;
  mutable total_gb_remote : float;
  deg : degradation;
}

(** [create ~n_links ~horizon_s ()] with 5-minute bins by default; activity
    before [record_from] (warm-up) is not recorded. Pass [n_vhos] to also
    collect per-VHO serving counters. *)
val create :
  n_links:int ->
  ?n_vhos:int ->
  horizon_s:float ->
  ?bin_s:float ->
  ?record_from:float ->
  unit ->
  t

(** Whether a time falls inside the recording window. *)
val in_record_window : t -> float -> bool

(** Validate every request's VHO id against the per-VHO counter arrays
    once, up front. Raises [Invalid_argument] naming the offending id; a
    no-op when the metrics were created without [n_vhos]. *)
val validate_vhos : t -> Vod_workload.Trace.request array -> unit

(** Store-level counterpart of {!validate_vhos}: every row of a
    {!Vod_workload.Trace_soa.t} was bounds-checked against its own
    [n_vhos] at construction, so validating the store bound against the
    counter arrays is O(1) and equivalent. *)
val validate_store : t -> Vod_workload.Trace_soa.t -> unit

(** Spread a stream of [rate_mbps] over [t0, t1) into a link's bins
    (overlap-weighted). *)
val add_stream : t -> link:int -> rate_mbps:float -> t0:float -> t1:float -> unit

(** Per-bin max over links (Fig. 5). *)
val peak_series : t -> float array

(** Per-bin sum over links (Fig. 6). *)
val aggregate_series : t -> float array

(** Peak of [peak_series]. *)
val max_link_mbps : t -> float

(** Peak of [aggregate_series]. *)
val max_aggregate_mbps : t -> float

(** Fraction of recorded requests served locally. *)
val local_fraction : t -> float

(** Alias of [local_fraction] (the paper's cache hit rate). *)
val hit_rate : t -> float

(** Fraction of recorded requests rejected outright; 0 for fault-free
    playouts. *)
val rejection_rate : t -> float

(** Per-VHO local-serving fraction; empty unless created with [n_vhos]. *)
val per_vho_local_fraction : t -> float array
