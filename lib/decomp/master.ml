(* Stabilized Dantzig-Wolfe / Benders cutting-plane master.

   Same contract as the EPF engine (blocks behind Engine.oracle, coupling
   capacities, Engine.outcome out), different machinery: a restricted
   master LP over per-block oracle columns, solved exactly by the dense
   simplex, whose dual prices drive the next oracle round. Four design
   points keep it sound and deterministic:

   - Disaggregation: every block keeps its own convexity row and its own
     columns, so the master can mix blocks independently — the structure
     that actually reaches feasibility in tens of passes. Columns with
     zero weight are pruned each pass (fresh ones are spared one pass),
     which keeps the tableau at roughly (active rows + blocks) square.
   - Soft capacities: every active coupling row gets an explicit
     relative-overflow variable priced at [price_cap_factor x the average
     initial block objective], so the master is always feasible and its
     duals are boxed at [pen / capacity] — the "box" half of the
     stabilization. The penalty doubles when the master stalls while
     still violating, so feasibility is eventually enforced.
   - In-out queries: oracles are priced at a convex combination of the
     incumbent (best-lower-bound) prices and the master's duals; the
     in-weight grows on serious steps (the center just moved, trust it)
     and decays on null steps — in the limit the loop is pure Kelley /
     column generation, which is what guarantees convergence.
   - Ordered reductions: cut generation and bound sweeps fan out through
     Pool with in-order combination, so the outcome is bit-identical at
     any [jobs] count.

   Wall-clock never appears here (wallclock-in-solver rule): phase
   timings go through Vod_obs.Obs like the EPF engine's. *)

module Obs = Vod_obs.Obs
module Pool = Vod_util.Pool
module Engine = Vod_epf.Engine
module Sparse = Vod_epf.Sparse
module Simplex = Vod_lp.Simplex

let src = Logs.Src.create "vod.decomp" ~doc:"stabilized cutting-plane master"

module Log = (val Logs.src_log src : Logs.LOG)

type params = {
  epsilon : float;
  max_passes : int;
  jobs : int;
  stab_in_weight : float;
  stab_shrink : float;
  stab_grow : float;
  stab_max : float;
  price_cap_factor : float;
  polish_passes : int;
}

let default_params =
  {
    epsilon = 0.01;
    max_passes = 60;
    jobs = 0;
    stab_in_weight = 0.5;
    stab_shrink = 0.7;
    stab_grow = 1.3;
    stab_max = 0.9;
    price_cap_factor = 10.0;
    polish_passes = 2;
  }

(* One master column: a single block's oracle point. [born] is the pass
   that generated it — fresh columns survive one pruning sweep even at
   zero weight, so the master prices them at least once. *)
type 'a column = { block : int; pt : 'a Engine.point; born : int }

(* Sparse usages are canonical (sorted, zero-free), so structural
   equality on (obj, usage) is an exact same-point test. [data] is an
   opaque payload (may contain closures) and must stay out of it. *)
let same_pt (a : _ Engine.point) (b : _ Engine.point) =
  a.Engine.obj = b.Engine.obj && a.Engine.usage = b.Engine.usage

(* Solve the restricted master
     min  sum_t obj_t w_t + pen * sum_k v_k
     s.t. sum_t usage_t(i_k) w_t - b_(i_k) v_k <= b_(i_k)  (k over active)
          sum_(t in block b) w_t = 1                       (b over blocks)
          w, v >= 0
   over the rows [active] (rows touched by at least one column; inactive
   rows can only have dual 0 and are dropped to keep the tableau small).
   Returns (weights, clamped row prices over the full row space). *)
let solve_master ~columns ~capacities ~pen ~active ~k_blocks =
  let t_count = Array.length columns in
  let n_active = Array.length active in
  let n_vars = t_count + n_active in
  let minimize = Array.make n_vars 0.0 in
  Array.iteri (fun t c -> minimize.(t) <- c.pt.Engine.obj) columns;
  for k = 0 to n_active - 1 do
    minimize.(t_count + k) <- pen
  done;
  let buckets = Array.make (Array.length capacities) [] in
  for t = t_count - 1 downto 0 do
    Sparse.iter
      (fun i u -> if u <> 0.0 then buckets.(i) <- (t, u) :: buckets.(i))
      columns.(t).pt.Engine.usage
  done;
  let cap_rows =
    Array.to_list
      (Array.mapi
         (fun k i ->
           {
             Simplex.row = (t_count + k, -.capacities.(i)) :: buckets.(i);
             rel = Simplex.Le;
             rhs = capacities.(i);
           })
         active)
  in
  let members = Array.make k_blocks [] in
  for t = t_count - 1 downto 0 do
    members.(columns.(t).block) <- (t, 1.0) :: members.(columns.(t).block)
  done;
  let convexity =
    List.init k_blocks (fun b ->
        { Simplex.row = members.(b); rel = Simplex.Eq; rhs = 1.0 })
  in
  let problem =
    { Simplex.n_vars; minimize; constraints = cap_rows @ convexity }
  in
  match Simplex.solve problem with
  | Simplex.Optimal { solution; duals; _ } ->
      let weights = Array.sub solution 0 t_count in
      let prices = Array.make (Array.length capacities) 0.0 in
      Array.iteri
        (fun k i ->
          (* Le duals are <= 0 for a minimization; the oracle price is
             the nonnegative shadow price, boxed by the penalty. *)
          let y = -.duals.(k) in
          prices.(i) <- Float.min (pen /. capacities.(i)) (Float.max 0.0 y))
        active;
      (weights, prices)
  | Simplex.Infeasible | Simplex.Unbounded ->
      (* Overflow variables make the master feasible and the convexity
         rows bound it; reaching this means the tableau broke down.
         vodlint-disable no-failwith -- invariant breach, not an
         argument error; Failure matches the backend contract *)
      failwith "Decomp.Master: restricted master LP did not solve"

(* Max relative violation of the coupling rows (same convention as
   Engine.max_coupling_infeas, clamped at 0). *)
let rel_violation ~capacities usage =
  let v = ref 0.0 in
  Array.iteri
    (fun i u ->
      let r = (u -. capacities.(i)) /. capacities.(i) in
      if r > !v then v := r)
    usage;
  !v

(* Deterministic sequential rounding, EPF-style: start from the
   *fractional* mix's row usage and replace one block's fractional
   footprint at a time with its cheapest integral candidate under
   [pen]-priced marginal overflow — later blocks see earlier snaps'
   load shifts, which is what keeps the rounded solution close to the
   fractional one. Polish sweeps then let blocks re-snap (including a
   fresh oracle point priced by the rows currently overloaded).
   Candidates per block: its live master columns plus a strong oracle
   point at the incumbent prices. *)
let round_blocks ~p ~pool ~capacities ~pen ~prices ~columns ~weights ~oracles =
  Obs.phase "round" @@ fun () ->
  let n_rows = Array.length capacities in
  let k_blocks = Array.length oracles in
  let live_by_block = Array.make k_blocks [] in
  for t = Array.length columns - 1 downto 0 do
    if weights.(t) > 1e-9 then
      live_by_block.(columns.(t).block) <-
        (weights.(t), columns.(t).pt) :: live_by_block.(columns.(t).block)
  done;
  let strong =
    Pool.map pool
      ~f:(fun (o : _ Engine.oracle) ->
        o.Engine.optimize_strong ~obj_price:1.0 ~row_price:prices)
      oracles
  in
  let candidates k = List.map snd live_by_block.(k) @ [ strong.(k) ] in
  let used = Array.make n_rows 0.0 in
  Array.iter
    (List.iter (fun (w, (pt : _ Engine.point)) ->
         Sparse.add_into used w pt.Engine.usage))
    live_by_block;
  (* Marginal overflow cost of adding [pt] on top of [used]. *)
  let overflow_delta (pt : _ Engine.point) =
    let d = ref 0.0 in
    Sparse.iter
      (fun i u ->
        let b = capacities.(i) in
        let before = Float.max 0.0 (used.(i) -. b) in
        let after = Float.max 0.0 (used.(i) +. u -. b) in
        d := !d +. (pen /. b *. (after -. before)))
      pt.Engine.usage;
    !d
  in
  let merit pt = pt.Engine.obj +. overflow_delta pt in
  (* Congestion-priced relief: rows get more expensive as they fill
     (quadratic past half-full, [pen/b] at the cap) so fresh points
     prefer genuinely slack rows instead of rows one unit below cap. *)
  let relief_prices_of () =
    Array.init n_rows (fun i ->
        let b = capacities.(i) in
        let fill = used.(i) /. b in
        let congestion = Float.max 0.0 ((2.0 *. fill) -. 1.0) in
        prices.(i) +. (pen /. b *. congestion *. congestion))
  in
  let best_of cands =
    match cands with
    | [] -> invalid_arg "Decomp.Master: block with no candidate point"
    | first :: rest ->
        List.fold_left
          (fun (bp, bm) pt ->
            let m = merit pt in
            if m < bm -. 1e-12 then (pt, m) else (bp, bm))
          (first, merit first) rest
  in
  let chosen =
    Array.init k_blocks (fun k ->
        List.iter
          (fun (w, (pt : _ Engine.point)) ->
            Sparse.add_into used (-.w) pt.Engine.usage)
          live_by_block.(k);
        let pt, _ = best_of (candidates k) in
        Sparse.add_into used 1.0 pt.Engine.usage;
        pt)
  in
  (* Polish until no sweep snaps (bounded): draining a congested row
     usually takes a few sweeps of one-block re-routes. *)
  let improved = ref true in
  let sweeps = ref 0 in
  while !improved && !sweeps < Int.max p.polish_passes 4 do
    incr sweeps;
    improved := false;
    for k = 0 to k_blocks - 1 do
      Sparse.add_into used (-1.0) chosen.(k).Engine.usage;
      (* A fresh greedy point that sees exactly how full the rest of
         the system currently runs each row. *)
      let fresh =
        oracles.(k).Engine.optimize ~obj_price:1.0
          ~row_price:(relief_prices_of ())
      in
      (* Same semantics as folding [fresh] in last: it wins only when
         strictly better than every stored candidate. *)
      let pt0, m0 = best_of (candidates k) in
      let mf = merit fresh in
      let pt, m = if mf < m0 -. 1e-12 then (fresh, mf) else (pt0, m0) in
      if m < merit chosen.(k) -. 1e-12 then begin
        Obs.incr "decomp/round/snaps";
        improved := true;
        chosen.(k) <- pt
      end;
      Sparse.add_into used 1.0 chosen.(k).Engine.usage
    done
  done;
  (* Targeted repair: while some row is still over its cap, evict from
     the *worst* row the block whose cheapest avoiding point costs the
     least — sweeps in block order cannot find that block, a min-cost
     argmin over the row's users can. Bounded; ties break on the lowest
     block id (deterministic). *)
  let repair_budget = ref (4 * k_blocks) in
  let continue_repair = ref true in
  while !continue_repair && !repair_budget > 0 do
    let worst = ref (-1) and wv = ref p.epsilon in
    Array.iteri
      (fun i u ->
        let r = (u -. capacities.(i)) /. capacities.(i) in
        if r > !wv then begin
          worst := i;
          wv := r
        end)
      used;
    if !worst < 0 then continue_repair := false
    else begin
      let r = !worst in
      let relief_prices =
        let rp = relief_prices_of () in
        rp.(r) <- rp.(r) +. (100.0 *. pen /. capacities.(r));
        rp
      in
      let users =
        let acc = ref [] in
        for k = k_blocks - 1 downto 0 do
          let touches = ref false in
          Sparse.iter
            (fun i u -> if i = r && u > 0.0 then touches := true)
            chosen.(k).Engine.usage;
          if !touches then acc := k :: !acc
        done;
        !acc
      in
      let best_k = ref (-1) and best_d = ref infinity and best_pt = ref None in
      List.iter
        (fun k ->
          decr repair_budget;
          Sparse.add_into used (-1.0) chosen.(k).Engine.usage;
          let fresh =
            oracles.(k).Engine.optimize ~obj_price:1.0
              ~row_price:relief_prices
          in
          let off_r (pt : _ Engine.point) =
            let v = ref 0.0 in
            Sparse.iter (fun i u -> if i = r then v := u) pt.Engine.usage;
            !v < 1e-12
          in
          (if off_r fresh then
             let d = merit fresh -. merit chosen.(k) in
             if d < !best_d -. 1e-12 then begin
               best_d := d;
               best_k := k;
               best_pt := Some fresh
             end);
          Sparse.add_into used 1.0 chosen.(k).Engine.usage)
        users;
      match !best_pt with
      | Some pt when !best_k >= 0 ->
          Obs.incr "decomp/round/repairs";
          Sparse.add_into used (-1.0) chosen.(!best_k).Engine.usage;
          chosen.(!best_k) <- pt;
          Sparse.add_into used 1.0 pt.Engine.usage
      | _ ->
          (* No user of the worst row can avoid it: integrally stuck
             (e.g. a single copy already exceeds the cap). *)
          continue_repair := false
    end
  done;
  (chosen, used)

let solve ?initial ?initial_prices (p : params) ~capacities ~oracles =
  let n_rows = Array.length capacities in
  let k_blocks = Array.length oracles in
  if k_blocks = 0 then invalid_arg "Decomp.Master.solve: no blocks";
  Array.iter
    (fun c ->
      if c <= 0.0 then invalid_arg "Decomp.Master.solve: nonpositive capacity")
    capacities;
  (match initial with
  | Some pts when Array.length pts <> k_blocks ->
      invalid_arg "Decomp.Master.solve: initial arity"
  | _ -> ());
  (match initial_prices with
  | Some ip when Array.length ip <> n_rows ->
      invalid_arg "Decomp.Master.solve: initial_prices arity"
  | _ -> ());
  Pool.with_pool ~jobs:p.jobs (fun pool ->
      (* Seed columns: every oracle's own initial point, plus the
         warm-start point (when given and distinct). The average initial
         block objective sets the penalty scale. *)
      let own =
        Obs.phase "init" (fun () ->
            Pool.map pool
              ~f:(fun (o : _ Engine.oracle) -> o.Engine.initial ())
              oracles)
      in
      let init_cols =
        let acc = ref [] in
        for k = k_blocks - 1 downto 0 do
          (match initial with
          | Some pts when not (same_pt pts.(k) own.(k)) ->
              acc := { block = k; pt = pts.(k); born = 0 } :: !acc
          | _ -> ());
          acc := { block = k; pt = own.(k); born = 0 } :: !acc
        done;
        !acc
      in
      let init_total =
        Array.fold_left (fun a (pt : _ Engine.point) -> a +. pt.Engine.obj) 0.0
          own
      in
      let columns = ref (Array.of_list init_cols) in
      let pen =
        ref
          (p.price_cap_factor
          *. Float.max 1e-6 (init_total /. float_of_int k_blocks))
      in
      let row_active = Array.make n_rows false in
      let refresh_active (c : _ column) =
        Sparse.iter
          (fun i u -> if u <> 0.0 then row_active.(i) <- true)
          c.pt.Engine.usage
      in
      Array.iter refresh_active !columns;
      let active () =
        let acc = ref [] in
        for i = n_rows - 1 downto 0 do
          if row_active.(i) then acc := i :: !acc
        done;
        Array.of_list !acc
      in
      let clamp prices =
        Array.mapi
          (fun i v -> Float.min (!pen /. capacities.(i)) (Float.max 0.0 v))
          prices
      in
      let lambda_in =
        match initial_prices with
        | Some ip -> clamp ip
        | None -> Array.make n_rows 0.0
      in
      let lambda_out = ref (Array.copy lambda_in) in
      let lambda_center = ref (Array.copy lambda_in) in
      let beta = ref (Float.min p.stab_max p.stab_in_weight) in
      let best_lb = ref neg_infinity in
      let weights = ref (Array.make (Array.length !columns) 0.0) in
      let frac_obj = ref init_total in
      let frac_viol = ref 0.0 in
      let passes = ref 0 in
      let passes_to_gap = ref (-1) in
      let converged = ref false in
      let stall = ref 0 in
      let prev_master_value = ref infinity in
      let viol_anchor = ref infinity in
      let history = ref [] in
      Obs.set_gauge "decomp/master/rows" (float_of_int n_rows);
      while (not !converged) && !passes < p.max_passes do
        incr passes;
        Obs.incr "decomp/passes";
        let lq =
          Array.init n_rows (fun i ->
              (!beta *. !lambda_center.(i))
              +. ((1.0 -. !beta) *. !lambda_out.(i)))
        in
        (* Cut generation: one candidate column per block at the query
           prices; when nothing fresh comes back, retry at the master's
           own duals (the pure column-generation query) so the model
           still tightens this pass. *)
        let cut_at prices =
          Obs.phase "cuts" (fun () ->
              Pool.map pool
                ~f:(fun (o : _ Engine.oracle) ->
                  o.Engine.optimize ~obj_price:1.0 ~row_price:prices)
                oracles)
        in
        let add pts =
          let fresh = ref [] and n_fresh = ref 0 in
          Array.iteri
            (fun k (pt : _ Engine.point) ->
              let dup =
                Array.exists
                  (fun c -> c.block = k && same_pt c.pt pt)
                  !columns
              in
              if not dup then begin
                incr n_fresh;
                Obs.incr "decomp/cuts_added";
                let c = { block = k; pt; born = !passes } in
                refresh_active c;
                fresh := c :: !fresh
              end)
            pts;
          if !n_fresh > 0 then
            columns := Array.append !columns (Array.of_list (List.rev !fresh));
          !n_fresh > 0
        in
        let fresh = add (cut_at lq) in
        let fresh =
          if (not fresh) && !beta > 1e-3 then add (cut_at !lambda_out)
          else fresh
        in
        (* Lagrangian bound at the query prices: sum of priced block
           minima minus lambda . b (in-order float fold: deterministic). *)
        let lb =
          Obs.phase "lb" (fun () ->
              let block_sum =
                Pool.map_reduce pool ~n:k_blocks
                  ~map:(fun k -> oracles.(k).Engine.lower_bound ~row_price:lq)
                  ~init:0.0 ~combine:( +. )
              in
              let price_mass = ref 0.0 in
              Array.iteri
                (fun i l -> price_mass := !price_mass +. (l *. capacities.(i)))
                lq;
              block_sum -. !price_mass)
        in
        (* In-out update: a serious step (better Lagrangian value at the
           query) re-centers and can afford a more conservative query
           next pass; a null step decays the in-weight toward the
           master's duals — in the limit the loop is pure Kelley /
           column generation, which is what guarantees convergence. *)
        let serious = lb > !best_lb +. 1e-12 in
        if serious then begin
          Obs.incr "decomp/stab/serious_steps";
          best_lb := lb;
          lambda_center := lq;
          beta := Float.min p.stab_max (!beta *. p.stab_grow)
        end
        else begin
          Obs.incr "decomp/stab/null_steps";
          beta :=
            Float.max (p.stab_in_weight /. 2.0)
              (!beta *. p.stab_shrink
              *. (if fresh then 1.0 else p.stab_shrink))
        end;
        (* Re-solve the restricted master over the current column pool. *)
        let w, prices =
          Obs.phase "rmp" (fun () ->
              solve_master ~columns:!columns ~capacities ~pen:!pen
                ~active:(active ()) ~k_blocks)
        in
        weights := w;
        lambda_out := prices;
        if not serious then
          (* Null step: drift the center toward the fresh duals — the
             center becomes a running average of the master's (often
             bang-bang) prices, so the next query is an interior,
             damped price vector (Wentges-style smoothing). *)
          lambda_center :=
            Array.mapi
              (fun i c -> (0.8 *. c) +. (0.2 *. prices.(i)))
              !lambda_center;
        let comb_usage = Array.make n_rows 0.0 in
        let fobj = ref 0.0 in
        Array.iteri
          (fun t wt ->
            if wt > 1e-12 then begin
              fobj := !fobj +. (wt *. (!columns).(t).pt.Engine.obj);
              Sparse.add_into comb_usage wt (!columns).(t).pt.Engine.usage
            end)
          w;
        frac_obj := !fobj;
        frac_viol := rel_violation ~capacities comb_usage;
        (* Penalized master value, for stall detection: overflow billed
           at [pen] per unit of relative excess on each row. *)
        let master_value =
          let ov = ref 0.0 in
          Array.iteri
            (fun i u ->
              let r = (u -. capacities.(i)) /. capacities.(i) in
              if r > 0.0 then ov := !ov +. r)
            comb_usage;
          !fobj +. (!pen *. !ov)
        in
        let rel_impr =
          (!prev_master_value -. master_value)
          /. Float.max 1.0 (Float.abs master_value)
        in
        if Float.abs rel_impr < 1e-5 then incr stall else stall := 0;
        prev_master_value := master_value;
        let gap =
          if !best_lb > 0.0 then (!frac_obj -. !best_lb) /. !best_lb
          else infinity
        in
        history := (!frac_obj, !best_lb, !frac_viol) :: !history;
        Obs.push "decomp/pass/objective" !frac_obj;
        Obs.push "decomp/pass/lower_bound" !best_lb;
        Obs.push "decomp/pass/violation" !frac_viol;
        Obs.push "decomp/pass/gap" gap;
        Obs.push "decomp/pass/stab_weight" !beta;
        Obs.push "decomp/pass/columns" (float_of_int (Array.length !columns));
        Log.debug (fun m ->
            m "pass %d: obj=%.6g lb=%.6g viol=%.4f gap=%.4f beta=%.2f cols=%d"
              !passes !frac_obj !best_lb !frac_viol gap !beta
              (Array.length !columns));
        if !frac_viol <= p.epsilon && gap <= p.epsilon then begin
          if !passes_to_gap < 0 then passes_to_gap := !passes;
          converged := true
        end
        else if !frac_viol <= p.epsilon && !stall >= 3 then
          (* Feasible and the master has stopped moving: the model is
             primal-converged; the remaining gap is the (known-loose)
             dual-ascent bound, not missing columns. *)
          converged := true
        else if
          !frac_viol > p.epsilon
          && !passes mod 5 = 0
          && !frac_viol > 0.9 *. !viol_anchor
        then begin
          (* Violation barely moved over the last five passes: the
             overflow price is too cheap to force the mix under the
             caps. Raise it (widening the dual box) and keep cutting. *)
          Obs.incr "decomp/pen_raises";
          pen := !pen *. 1.5;
          prev_master_value := infinity
        end;
        if !passes mod 5 = 0 then viol_anchor := !frac_viol;
        (* Prune zero-weight columns — except this pass's, which the
           master has priced but the next query has not yet reacted to.
           Convexity keeps at least one live column per block. *)
        if not !converged then begin
          let keep =
            Array.mapi
              (fun t c -> (!weights).(t) > 1e-9 || c.born >= !passes)
              !columns
          in
          let n_keep = Array.fold_left (fun a k -> if k then a + 1 else a) 0 keep in
          let n_cols = Array.length !columns in
          if n_keep < n_cols then begin
            Obs.incr ~by:(n_cols - n_keep) "decomp/cols_dropped";
            let cols' = Array.make n_keep (!columns).(0) in
            let w' = Array.make n_keep 0.0 in
            let j = ref 0 in
            Array.iteri
              (fun t c ->
                if keep.(t) then begin
                  cols'.(!j) <- c;
                  w'.(!j) <- (!weights).(t);
                  incr j
                end)
              !columns;
            columns := cols';
            weights := w'
          end
        end
      done;
      if !passes_to_gap >= 0 then
        Obs.set_gauge "decomp/passes_to_gap" (float_of_int !passes_to_gap);
      (* Round to one integral point per block under the incumbent
         prices, exactly like the EPF engine's final snap. *)
      let chosen, used =
        round_blocks ~p ~pool ~capacities ~pen:!pen ~prices:!lambda_center
          ~columns:!columns ~weights:!weights ~oracles
      in
      let objective =
        Array.fold_left (fun acc pt -> acc +. pt.Engine.obj) 0.0 chosen
      in
      let max_violation = rel_violation ~capacities used in
      Log.debug (fun m ->
          let worst = ref 0 and wv = ref neg_infinity in
          Array.iteri
            (fun i u ->
              let r = (u -. capacities.(i)) /. capacities.(i) in
              if r > !wv then begin
                worst := i;
                wv := r
              end)
            used;
          m "rounded worst row %d: usage=%.4g cap=%.4g (%.2f%% over)" !worst
            used.(!worst) capacities.(!worst) (100.0 *. !wv));
      let lower_bound = if !best_lb = neg_infinity then 0.0 else !best_lb in
      Log.info (fun m ->
          m "master done: %d passes, %d columns, obj=%.4g lb=%.4g viol=%.2f%%"
            !passes
            (Array.length !columns)
            objective lower_bound (100.0 *. max_violation));
      {
        Engine.combos = Array.map (fun pt -> [ (pt, 1.0) ]) chosen;
        objective;
        lower_bound;
        max_violation;
        row_usage = used;
        passes = !passes;
        epsilon_feasible = max_violation <= p.epsilon;
        converged = !converged;
        pre_round_objective = !frac_obj;
        pre_round_violation = !frac_viol;
        history = Array.of_list (List.rev !history);
      })
