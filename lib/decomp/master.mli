(** Stabilized Dantzig-Wolfe / Benders cutting-plane master.

    The sibling of the EPF engine over the same abstraction: blocks are
    visible only through {!Vod_epf.Engine.oracle}s, coupling rows carry
    capacities, and the result is an {!Vod_epf.Engine.outcome}. Instead
    of potential-function price updates, each pass solves a restricted
    master LP over the per-block columns generated so far — every block
    keeps its own convexity row, {!Vod_lp.Simplex} solves the master
    exactly and exposes its dual prices — and queries the oracles at a
    stabilized price vector between an incumbent center and the
    master's duals (in-out stabilization with Wentges-style smoothing:
    the center drifts toward the running dual average on null steps).
    Every active coupling row carries an explicit relative-overflow
    variable priced at a penalty derived from the average initial block
    objective, which keeps the master feasible and boxes its duals at
    [penalty / capacity]; the penalty escalates when the fractional
    violation stops improving. Zero-weight columns are pruned each pass
    (fresh ones are spared once), so the tableau stays roughly
    (active rows + blocks) square.

    Rounding starts from the fractional mix's row usage and snaps one
    block at a time to its cheapest candidate under penalty-priced
    marginal overflow, polishes with congestion-priced fresh oracle
    points, then runs a targeted repair loop that evicts from the worst
    row the block whose cheapest avoiding point costs least.

    Determinism: cut generation and lower-bound sweeps fan out through
    {!Vod_util.Pool} with in-order combination, the master LP and the
    rounding sweep are sequential — the outcome is bit-identical at any
    [jobs] count. *)

type params = {
  epsilon : float;  (** feasibility/optimality tolerance (paper: 1%) *)
  max_passes : int;  (** master iterations (one cut round each) *)
  jobs : int;
      (** pool width for cut generation / bound sweeps; [0] = process
          default *)
  stab_in_weight : float;
      (** initial weight of the incumbent ("in" point) in the query
          price vector; half of it is also the floor the in-weight
          decays to, so queries never collapse to raw master duals *)
  stab_shrink : float;
      (** multiplier applied to the in-weight after a null step (move
          the query toward the master's duals; applied twice when the
          pass produced no fresh column) *)
  stab_grow : float;
      (** multiplier applied after a serious step (the center just
          moved — trust it a little longer) *)
  stab_max : float;  (** ceiling on the in-weight *)
  price_cap_factor : float;
      (** overflow-penalty scale, as a multiple of the average initial
          block objective; caps every dual price at
          [penalty / capacity] until escalation widens the box *)
  polish_passes : int;
      (** post-rounding sweeps letting blocks re-snap to cheaper
          candidates under congestion-priced fresh oracle points *)
}

(** epsilon = 0.01, 60 passes, in-weight 0.5 (shrink 0.7 / grow 1.3,
    cap 0.9), price-cap factor 10, 2 polish passes, jobs = 0. *)
val default_params : params

(** [solve ?initial ?initial_prices p ~capacities ~oracles] runs the
    stabilized column-generation loop until the fractional master point
    is epsilon-feasible and either its Lagrangian gap is below epsilon
    or the penalized master value has stopped moving (or [max_passes]),
    then rounds each block to a single integral oracle point. [initial]
    seeds the column pool with one warm-start point per block (the
    incumbent placement); [initial_prices] seeds the incumbent price
    vector (length = capacities). The outcome's [lower_bound] is a
    genuine Lagrangian bound evaluated at the query prices (limited by
    the oracles' own dual-ascent tightness); [pre_round_*] report the
    final fractional master combination. Raises [Invalid_argument] on
    nonpositive capacities, an empty block list, or mismatched
    [initial] / [initial_prices] lengths. *)
val solve :
  ?initial:'a Vod_epf.Engine.point array ->
  ?initial_prices:float array ->
  params ->
  capacities:float array ->
  oracles:'a Vod_epf.Engine.oracle array ->
  'a Vod_epf.Engine.outcome
