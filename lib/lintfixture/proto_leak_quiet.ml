(* Parse-only lint fixture — never compiled; see proto_leak_fire.ml.
   Every definition here must stay quiet under the res protocol. *)

(* quiet: released on every branch of the match *)
let match_ok v =
  let r = Res.acquire () in
  match v with
  | Some x ->
      Res.release r;
      x
  | None ->
      Res.release r;
      0

(* quiet: each loop iteration releases its own token *)
let loop_ok n =
  for i = 0 to n - 1 do
    let r = Res.acquire () in
    ignore i;
    Res.release r
  done

(* quiet: the token escapes into a record — ownership moved *)
let store_ok () =
  let r = Res.acquire () in
  { res = r }

(* quiet: the token is returned to the caller *)
let return_ok () =
  let r = Res.acquire () in
  r

(* quiet: tail-position acquire is the function's value, not a discard *)
let creator_ok () = Res.acquire ()

(* quiet: a handoff transfers the obligation elsewhere *)
let handoff_ok () =
  let r = Res.acquire () in
  Res.register r

(* quiet: releasing through an alias still counts *)
let alias_ok () =
  let r = Res.acquire () in
  let alias = r in
  Res.release alias
