(* Parse-only lint fixture — never compiled; see proto_leak_fire.ml.
   Every definition here must stay quiet under the res protocol. *)

(* quiet: only maybe-released when the second release runs — one branch
   skipped the first, so this is not a definite double release (and the
   exit state is definitely released, so no leak either) *)
let maybe cond =
  let r = Res.acquire () in
  if cond then Res.release r;
  Res.release r

(* quiet: each branch releases exactly once *)
let per_branch cond =
  let r = Res.acquire () in
  if cond then Res.release r else Res.release r
