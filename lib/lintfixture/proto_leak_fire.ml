(* Parse-only lint fixture — never compiled (no dune stanza; Engine
   discovery skips lintfixture/). Read from disk by test_proto.ml and
   analyzed against the test declaration
     res acquire=Res.acquire release=Res.release
         handoff=Res.register bracket=Res.with_res
   Expected findings: exactly three proto-leak. *)

(* fire: the else-branch returns without releasing *)
let branch_leak cond =
  let r = Res.acquire () in
  if cond then Res.release r else ()

(* fire: one case of the match misses the release *)
let match_leak v =
  let r = Res.acquire () in
  match v with
  | Some x ->
      Res.release r;
      x
  | None -> 0

(* fire: the acquire's result is discarded outright *)
let dropped () =
  let _ = Res.acquire () in
  ()
