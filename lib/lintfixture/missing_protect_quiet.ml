(* Parse-only lint fixture — never compiled; see proto_leak_fire.ml.
   Every definition here must stay quiet under the res protocol.

   The acceptance canary for the whole phase lives here: deleting the
   Fun.protect wrapper in [protected] (calling boom directly and
   releasing afterwards) turns it into missing_protect_fire.ml's
   [unprotected] shape, test_proto's expected-findings check fails, and
   CI goes red. *)

let boom x = if x < 0 then failwith "negative" else x

(* quiet: Fun.protect runs the release on both the normal and the
   exceptional path *)
let protected x =
  let r = Res.acquire () in
  Fun.protect ~finally:(fun () -> Res.release r) (fun () -> boom x)

(* quiet: the catch-all handler keeps the exception from escaping the
   acquire/release span *)
let caught x =
  let r = Res.acquire () in
  let v = try boom x with _ -> 0 in
  Res.release r;
  v

(* quiet: the declared bracket owns acquisition and release itself *)
let bracketed x = Res.with_res (fun r -> ignore r; boom x)
