(* Parse-only lint fixture — never compiled; see proto_leak_fire.ml.
   Expected findings: exactly two proto-double-release. *)

(* fire: released twice in sequence *)
let twice () =
  let r = Res.acquire () in
  Res.release r;
  Res.release r

(* fire: both branches release, then an unconditional second release *)
let join_then_release cond =
  let r = Res.acquire () in
  (if cond then Res.release r else Res.release r);
  Res.release r
