(* Parse-only lint fixture — never compiled; see proto_leak_fire.ml.
   Expected findings: exactly two missing-protect. *)

(* a helper whose Raises effect reaches the spans below through the
   interprocedural summaries, not syntactically *)
let boom x = if x < 0 then failwith "negative" else x

(* fire: boom can raise while r is held; the exceptional path skips the
   release *)
let unprotected x =
  let r = Res.acquire () in
  let y = boom x in
  Res.release r;
  y

(* fire: the partial handler catches Not_found only — any other
   exception still escapes with r held *)
let partial x =
  let r = Res.acquire () in
  let v = try boom x with Not_found -> 0 in
  Res.release r;
  v
