(* Deterministic pseudo-random numbers (splitmix64). We avoid
   [Stdlib.Random] so that traces and placements are reproducible across
   OCaml versions and so that independent streams can be split cheaply. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* [n] independent streams split off in index order — the parallel
   layer's per-task seeds. An explicit loop (not [Array.init]) because
   the split order must be the task order regardless of evaluation
   order. *)
let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: n must be nonnegative";
  let rec go acc i = if i = 0 then List.rev acc else go (split t :: acc) (i - 1) in
  Array.of_list (go [] n)

(* Uniform float in [0, 1). Uses the top 53 bits of the 64-bit state. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let f = float t in
  let i = int_of_float (f *. float_of_int bound) in
  if i >= bound then bound - 1 else i

let bool t = float t < 0.5

(* Exponential with the given rate (inverse scale). *)
let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t in
  -.log u /. rate

(* Fisher-Yates shuffle in place. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* A random permutation of [0 .. n-1]. *)
let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
