(* Small numeric helpers shared by the trace analyzer, the simulator and
   the benchmark harness. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

(* Empty arrays yield 0.0, not +/-infinity: these feed report tables
   and bench JSON, where a fold identity leaking out of a zero-bin or
   zero-link playout poisons every downstream aggregate. *)
let max_elt a =
  if Array.length a = 0 then 0.0 else Array.fold_left Float.max neg_infinity a

let min_elt a =
  if Array.length a = 0 then 0.0 else Array.fold_left Float.min infinity a

let sum a = Array.fold_left ( +. ) 0.0 a

(* [percentile p a] with p in [0,1]; nearest-rank on a sorted copy. *)
let percentile p a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats_acc.percentile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats_acc.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
  sorted.(idx)

(* Keys of a hash table in ascending order. Float aggregates over a
   table must fold in this order, not [Hashtbl.iter] order: iteration
   order depends on insertion and resize history, and float addition is
   not associative, so a history-ordered sum is not reproducible. *)
let sorted_keys (type k) (cmp : k -> k -> int) (tbl : (k, _) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort_uniq cmp

(* Cosine similarity between two sparse vectors represented as
   (index, value) association via hash tables. Used for the paper's Fig. 3
   request-mix similarity metric. Folds run over sorted keys so the
   result is bit-identical regardless of how the tables were built. *)
let cosine_similarity (v1 : (int, float) Hashtbl.t) (v2 : (int, float) Hashtbl.t) =
  let dot =
    List.fold_left
      (fun acc k ->
        match (Hashtbl.find_opt v1 k, Hashtbl.find_opt v2 k) with
        | Some x, Some y -> acc +. (x *. y)
        | _, _ -> acc)
      0.0
      (sorted_keys Int.compare v1)
  in
  let norm v =
    List.fold_left
      (fun acc k ->
        match Hashtbl.find_opt v k with
        | Some x -> acc +. (x *. x)
        | None -> acc)
      0.0
      (sorted_keys Int.compare v)
    |> sqrt
  in
  let n1 = norm v1 and n2 = norm v2 in
  if n1 = 0.0 || n2 = 0.0 then 0.0 else dot /. (n1 *. n2)

(* Geometric mean of positive values; matches the aggregation used for the
   paper's Table III (geometric mean over scenarios). *)
let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats_acc.geometric_mean: nonpositive value";
        acc := !acc +. log x)
      a;
    exp (!acc /. float_of_int n)
  end
