(* Small numeric helpers shared by the trace analyzer, the simulator and
   the benchmark harness. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

(* Empty arrays yield 0.0, not +/-infinity: these feed report tables
   and bench JSON, where a fold identity leaking out of a zero-bin or
   zero-link playout poisons every downstream aggregate. *)
let max_elt a =
  if Array.length a = 0 then 0.0 else Array.fold_left Float.max neg_infinity a

let min_elt a =
  if Array.length a = 0 then 0.0 else Array.fold_left Float.min infinity a

let sum a = Array.fold_left ( +. ) 0.0 a

(* [percentile p a] with p in [0,1]; nearest-rank on a sorted copy. *)
let percentile p a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats_acc.percentile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats_acc.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
  sorted.(idx)

(* Cosine similarity between two sparse vectors represented as
   (index, value) association via hash tables. Used for the paper's Fig. 3
   request-mix similarity metric. *)
let cosine_similarity (v1 : (int, float) Hashtbl.t) (v2 : (int, float) Hashtbl.t) =
  let dot = ref 0.0 in
  Hashtbl.iter
    (fun k x -> match Hashtbl.find_opt v2 k with Some y -> dot := !dot +. (x *. y) | None -> ())
    v1;
  let norm v =
    let acc = ref 0.0 in
    Hashtbl.iter (fun _ x -> acc := !acc +. (x *. x)) v;
    sqrt !acc
  in
  let n1 = norm v1 and n2 = norm v2 in
  if n1 = 0.0 || n2 = 0.0 then 0.0 else !dot /. (n1 *. n2)

(* Geometric mean of positive values; matches the aggregation used for the
   paper's Table III (geometric mean over scenarios). *)
let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats_acc.geometric_mean: nonpositive value";
        acc := !acc +. log x)
      a;
    exp (!acc /. float_of_int n)
  end
