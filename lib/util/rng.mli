(** Deterministic splittable pseudo-random number generator (splitmix64).

    All randomized components of the library (trace generation, pass
    shuffling, tie-breaking) draw from this generator so that every
    experiment is exactly reproducible from its integer seed. *)

type t

(** [create seed] returns a fresh generator initialized from [seed]. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent
    generator; useful to give each subsystem its own stream. *)
val split : t -> t

(** [split_n t n] splits off [n] independent streams in index order —
    one per parallel task, so seeded runs are reproducible at any job
    count. Raises [Invalid_argument] on negative [n]. *)
val split_n : t -> int -> t array

(** Uniform float in [0, 1). *)
val float : t -> float

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** Fair coin flip. *)
val bool : t -> bool

(** [exponential t ~rate] samples Exp(rate). *)
val exponential : t -> rate:float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
val permutation : t -> int -> int array
