(** Fixed-size domain pool with deterministic, order-preserving
    parallel iteration.

    The solver, the trace generator and the benchmark drivers all fan
    out over mutually independent tasks (per-video UFL blocks, per-day
    request sampling, per-scheme playouts). This pool runs such task
    sets across OCaml 5 domains while keeping every observable result
    {e bit-identical at any job count}:

    - results are written into per-index slots and merged in task
      order, never in completion order;
    - randomized tasks take pre-split RNG streams ({!Rng.split_n}),
      assigned by task index before any task runs;
    - a raising task never deadlocks the pool: every task completes
      the batch accounting, all remaining tasks still run, and the
      exception of the lowest-indexed failing task is re-raised in the
      submitting domain once the batch has drained.

    A pool holds [jobs - 1] worker domains (the submitting domain
    works too); [jobs = 1] degrades to plain inline iteration with no
    domain traffic at all. Pools are not reentrant: a task must not
    submit to the pool that is running it — nested submissions run
    inline, sequentially, in the submitting task. *)

type t

(** [create ?jobs ()] spawns a pool of [jobs] workers. [jobs = 0] (the
    default) uses {!default_jobs}. The count is clamped to
    [\[1, 64\]]. *)
val create : ?jobs:int -> unit -> t

(** Number of workers (including the submitting domain). *)
val jobs : t -> int

(** Process-wide default job count: initially
    [Domain.recommended_domain_count ()], overridable once from a
    [--jobs] flag. [set_default_jobs 0] resets to the hardware
    default; negative values are rejected with [Invalid_argument]. *)
val default_jobs : unit -> int

val set_default_jobs : int -> unit

(** Terminate the worker domains. Idempotent. Submitting to a
    shut-down pool raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] on a fresh pool and shuts it down on
    every exit path. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [iteri t ~n ~f] runs [f 0 .. f (n-1)], distributed over the pool
    in contiguous chunks. [f] must not depend on execution order. *)
val iteri : t -> n:int -> f:(int -> unit) -> unit

(** [map t ~f a] is [Array.map f a] with [f] applied in parallel;
    the result array is in input order regardless of scheduling. *)
val map : t -> f:('a -> 'b) -> 'a array -> 'b array

(** [mapi t ~f a] is [Array.mapi f a], parallel, order-preserving. *)
val mapi : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_reduce t ~n ~map ~init ~combine] computes
    [combine (... (combine init (map 0)) ...) (map (n-1))]: the [map]
    calls run in parallel, the [combine] fold runs sequentially in
    task order in the submitting domain — so non-associative
    combines (float sums) are deterministic at any job count. *)
val map_reduce :
  t -> n:int -> map:(int -> 'a) -> init:'b -> combine:('b -> 'a -> 'b) -> 'b
