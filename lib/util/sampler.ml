(* Walker alias method: O(n) preprocessing, O(1) sampling from a fixed
   discrete distribution. Used heavily by the trace generator, which draws
   hundreds of thousands of (video, VHO) samples per simulated month. *)

type t = {
  n : int;
  prob : float array;   (* acceptance threshold per bucket *)
  alias : int array;    (* fallback outcome per bucket *)
}

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampler.create: empty weight vector";
  (* Non-finite weights must be rejected up front: an [infinity] makes
     [total] infinite and every [scaled] entry NaN, which silently
     corrupts the alias table (NaN fails every [< 1.0] test, so all
     buckets land in [large] with garbage thresholds). *)
  Array.iter
    (fun w ->
      if not (Float.is_finite w) then
        invalid_arg "Sampler.create: non-finite weight"
      else if w < 0.0 then invalid_arg "Sampler.create: negative weight")
    weights;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Sampler.create: weights must sum to > 0";
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large) scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  (* Leftovers are 1.0 up to rounding. *)
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  { n; prob; alias }

let draw t rng =
  let i = Rng.int rng t.n in
  if Rng.float rng < t.prob.(i) then i else t.alias.(i)

let size t = t.n
