(* Fixed-size domain pool. See the .mli for the determinism contract.

   Scheduling: one batch at a time. A batch is a task counter claimed in
   contiguous chunks by whoever is idle (workers and the submitter
   alike); chunk claiming only decides *who computes what*, never where
   results land — per-index result slots make the merge order-free.
   Workers park on a condition variable between batches, so an idle
   pool costs nothing while the solver runs its sequential
   (Gauss-Seidel) phases.

   Exception discipline: a task body is wrapped so it can never unwind
   the batch accounting. Failures are recorded per index and the
   lowest-indexed one is re-raised in the submitting domain after the
   batch drains — the same exception surfaces at any job count. *)

type batch = {
  run : int -> unit;            (* wrapped task body; never raises *)
  n : int;
  chunk : int;
  next : int Atomic.t;          (* next unclaimed index *)
  finished : int Atomic.t;      (* tasks fully executed *)
  obs : Vod_obs.Obs.batch_obs;  (* per-batch metrics context (Off when idle) *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;     (* new batch posted, or shutdown *)
  work_done : Condition.t;      (* batch fully drained *)
  mutable batch : batch option; (* the in-flight batch, if any *)
  mutable generation : int;     (* bumped per batch; workers key off it *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let max_jobs = 64

let hardware_jobs () = max 1 (min max_jobs (Domain.recommended_domain_count ()))

let default = Atomic.make 0 (* 0 = follow the hardware *)

let default_jobs () =
  let j = Atomic.get default in
  if j = 0 then hardware_jobs () else j

let set_default_jobs j =
  if j < 0 then invalid_arg "Pool.set_default_jobs: negative job count";
  Atomic.set default (min j max_jobs)

(* Drain the current batch: claim chunks until none remain. Whoever
   retires the last task clears the batch and wakes the submitter. *)
let drain t ~slot (b : batch) =
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add b.next b.chunk in
    if start >= b.n then continue := false
    else begin
      let stop = min (start + b.chunk) b.n in
      (* The busy-time write inside [batch_chunk] completes before the
         [finished] fetch_and_add below, so the submitter's
         [batch_end] reads it after the release/acquire pair. *)
      Vod_obs.Obs.batch_chunk b.obs ~slot (fun () ->
          for i = start to stop - 1 do
            b.run i
          done);
      let done_now = stop - start in
      let total = done_now + Atomic.fetch_and_add b.finished done_now in
      if total = b.n then begin
        Mutex.lock t.mutex;
        t.batch <- None;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end
    end
  done

let worker_loop t ~slot =
  let seen = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopped then begin
      live := false;
      Mutex.unlock t.mutex
    end
    else begin
      seen := t.generation;
      let b = t.batch in
      Mutex.unlock t.mutex;
      (* [b] may already be drained and cleared; then there is nothing
         to claim and we just park again. *)
      match b with None -> () | Some b -> drain t ~slot b
    end
  done

let create ?(jobs = 0) () =
  let jobs = if jobs = 0 then default_jobs () else max 1 (min jobs max_jobs) in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      generation = 0;
      stopped = false;
      workers = [];
    }
  in
  (* vodlint-disable domain-spawn -- the pool is the one sanctioned spawn site *)
  (* Slot 0 is the submitter; workers get 1..jobs-1. *)
  t.workers <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t ~slot:(i + 1)));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* First-failure slot: (task index, exception, backtrace). The lowest
   index wins so the surfaced error is independent of scheduling. *)
type failure = int * exn * Printexc.raw_backtrace

let record_failure (slot : failure option Atomic.t) (f : failure) =
  let rec go () =
    let cur = Atomic.get slot in
    let better = match cur with None -> true | Some (i, _, _) -> let (j, _, _) = f in j < i in
    if better && not (Atomic.compare_and_set slot cur (Some f)) then go ()
  in
  go ()

let run_inline ~n ~f =
  (* Sequential fallback: same order, same first-failure semantics. *)
  for i = 0 to n - 1 do
    f i
  done

let iteri t ~n ~f =
  if n > 0 then begin
    if t.stopped then invalid_arg "Pool.iteri: pool is shut down";
    let nested =
      (* Reentrant submission (a task submitting to its own pool) would
         deadlock the drain accounting; run it inline instead. *)
      Mutex.lock t.mutex;
      let busy = Option.is_some t.batch in
      Mutex.unlock t.mutex;
      busy
    in
    (* Metrics: buffer each task's recordings per index and merge them
       in task order in [batch_end], so reports are jobs-invariant (see
       Vod_obs.Obs). [batch_end] runs on every exit path, including a
       re-raised task failure, and is a no-op when metrics are off. *)
    let ctx, f = Vod_obs.Obs.batch_begin ~n ~jobs:t.jobs f in
    Fun.protect
      ~finally:(fun () -> Vod_obs.Obs.batch_end ctx)
      (fun () ->
        if t.jobs = 1 || n = 1 || nested then
          Vod_obs.Obs.batch_chunk ctx ~slot:0 (fun () -> run_inline ~n ~f)
        else begin
          let first_failure : failure option Atomic.t = Atomic.make None in
          let run i =
            try f i
            with e ->
              record_failure first_failure (i, e, Printexc.get_raw_backtrace ())
          in
          (* Chunks small enough to balance uneven tasks, large enough to
             keep counter traffic negligible. *)
          let chunk = max 1 (n / (t.jobs * 8)) in
          let b =
            { run; n; chunk; next = Atomic.make 0; finished = Atomic.make 0;
              obs = ctx }
          in
          Mutex.lock t.mutex;
          t.generation <- t.generation + 1;
          t.batch <- Some b;
          Condition.broadcast t.work_ready;
          Mutex.unlock t.mutex;
          (* The submitter is a worker too. *)
          drain t ~slot:0 b;
          Mutex.lock t.mutex;
          while Atomic.get b.finished < b.n do
            Condition.wait t.work_done t.mutex
          done;
          Mutex.unlock t.mutex;
          match Atomic.get first_failure with
          | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ()
        end)
  end

let mapi t ~f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iteri t ~n ~f:(fun i -> out.(i) <- Some (f i a.(i)));
    (* Every slot is filled here: iteri re-raises before returning if
       any task failed, so [Option.get] cannot see [None]. *)
    Array.map Option.get out
  end

let map t ~f a = mapi t ~f:(fun _ x -> f x) a

let map_reduce t ~n ~map ~init ~combine =
  if n = 0 then init
  else begin
    let out = Array.make n None in
    iteri t ~n ~f:(fun i -> out.(i) <- Some (map i));
    Array.fold_left
      (fun acc slot ->
        match slot with Some x -> combine acc x | None -> acc)
      init out
  end
