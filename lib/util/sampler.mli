(** Constant-time sampling from a fixed discrete distribution
    (Walker's alias method). *)

type t

(** [create weights] preprocesses the (unnormalized, finite,
    nonnegative) weight vector in O(n). Raises [Invalid_argument] on an
    empty vector, a negative or non-finite (NaN/infinite) weight, or an
    all-zero vector. *)
val create : float array -> t

(** [draw t rng] samples an index with probability proportional to its
    weight, in O(1). *)
val draw : t -> Rng.t -> int

(** Number of outcomes. *)
val size : t -> int
