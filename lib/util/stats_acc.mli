(** Numeric helpers used across the trace analyzer, simulator and bench
    harness. *)

(** Arithmetic mean; 0 on an empty array. *)
val mean : float array -> float

(** Maximum element. Returns [0.0] on an empty array — callers report
    these values in tables/JSON, where a [-infinity] fold identity
    poisons downstream aggregates; an idle playout reads as 0 load. *)
val max_elt : float array -> float

(** Minimum element; [0.0] on an empty array (see {!max_elt}). *)
val min_elt : float array -> float

(** Sum of elements. *)
val sum : float array -> float

(** [percentile p a] is the nearest-rank p-quantile (p in [0,1]) of [a].
    Raises [Invalid_argument] on an empty array or p outside [0,1]. *)
val percentile : float -> float array -> float

(** [sorted_keys cmp tbl] is the keys of [tbl] in ascending [cmp] order
    (duplicates from [Hashtbl.add] shadowing collapsed). Float
    aggregates over a hash table must fold in this order rather than
    [Hashtbl.iter] order: iteration order depends on insertion/resize
    history and float addition is not associative, so history-ordered
    sums are not reproducible. This is the fix the [float-order] lint
    rule demands. *)
val sorted_keys : ('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

(** Cosine similarity of two sparse vectors keyed by [int] indices, as in
    the paper's request-mix comparison (Fig. 3). Returns 0 when either
    vector is zero. *)
val cosine_similarity : (int, float) Hashtbl.t -> (int, float) Hashtbl.t -> float

(** Geometric mean of strictly positive values (Table III aggregation).
    Raises [Invalid_argument] on a nonpositive entry. *)
val geometric_mean : float array -> float
