(* Plain-text table rendering for the bench harness and examples. Every
   paper table/figure is re-emitted as an aligned ASCII table so that runs
   can be diffed against EXPERIMENTS.md. *)

type align = Left | Right

let render ?(align = Right) ~header rows =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row in
  measure header;
  List.iter measure rows;
  let pad i c =
    let w = widths.(i) in
    match align with
    | Left -> Printf.sprintf "%-*s" w c
    | Right -> Printf.sprintf "%*s" w c
  in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* vodlint-disable print-in-lib — Table is the console emitter the bench
   and example binaries render paper tables with; stdout is its contract. *)
let print ?align ~header rows = print_string (render ?align ~header rows)

let fmt_float ?(digits = 2) x =
  if Float.is_integer x && Float.abs x < 1e15 && digits = 0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" digits x
