(* Ready-made experiment scenarios: a topology, a catalog and a month-long
   trace, wired together the way the paper's evaluation sets them up
   (Sec. VII-A): a 55-VHO backbone, population-proportional demand, and an
   aggregate disk budget expressed as a multiple of the library size. *)

type t = {
  graph : Vod_topology.Graph.t;
  paths : Vod_topology.Paths.t;
  catalog : Vod_workload.Catalog.t;
  trace : Vod_workload.Trace.t;
}

let make ?(days = 28) ?(requests_per_video_per_day = 5.0) ?(seed = 42)
    ?(soa = false) ?(jobs = 0) ~graph ~n_videos () =
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:n_videos ~days ~seed:(seed + 1))
  in
  let p =
    Vod_workload.Tracegen.default_params ~catalog
      ~populations:graph.Vod_topology.Graph.populations
      ~mean_daily_requests:(requests_per_video_per_day *. float_of_int n_videos)
      ~seed:(seed + 2)
  in
  (* The SoA route generates through the windowed columnar builder
     (bounded staging) and converts back losslessly: the trace is
     row-for-row the one [Tracegen.generate] produces, at any job
     count. *)
  let trace =
    if soa then
      Vod_workload.Trace_soa.to_trace (Vod_workload.Tracegen.generate_soa ~jobs p)
    else Vod_workload.Tracegen.generate ~jobs p
  in
  let paths = Vod_topology.Paths.compute graph in
  { graph; paths; catalog; trace }

(* The paper's default setting: the 55-VHO backbone. *)
let backbone ?days ?requests_per_video_per_day ?(seed = 42) ?soa ?jobs
    ~n_videos () =
  let graph = Vod_topology.Topologies.backbone55 () in
  make ?days ?requests_per_video_per_day ~seed ?soa ?jobs ~graph ~n_videos ()

let library_gb t = Vod_workload.Catalog.total_size_gb t.catalog

(* Uniform per-VHO disk with aggregate = [multiple] x library size. *)
let uniform_disk t ~multiple =
  let n = Vod_topology.Graph.n_nodes t.graph in
  Vod_placement.Instance.uniform_disk ~total_gb:(multiple *. library_gb t) n

(* The paper's heterogeneous split (Sec. VII-C): large VHOs have twice the
   disk of medium ones, which have twice the disk of small ones; class
   sizes 12 / 19 / 24 scaled to the node count, classes assigned by
   population rank. *)
let hetero_disk t ~multiple =
  let n = Vod_topology.Graph.n_nodes t.graph in
  let total = multiple *. library_gb t in
  let order = Vod_topology.Topologies.top_population_nodes t.graph n in
  let n_large = max 1 (n * 12 / 55) in
  let n_medium = max 1 (n * 19 / 55) in
  let weight = Array.make n 1.0 in
  Array.iteri
    (fun rank vho ->
      weight.(vho) <- (if rank < n_large then 4.0 else if rank < n_large + n_medium then 2.0 else 1.0))
    order;
  let wsum = Array.fold_left ( +. ) 0.0 weight in
  Array.map (fun w -> total *. w /. wsum) weight

(* ---------- canned fault scenarios ----------

   Mirrors the TON'16 robustness analysis of the placement paper: a
   single VHO failure, a correlated site failure (a VHO, its lowest-id
   neighbor and the links between them), and a flash crowd. The fault
   window is placed relative to the trace length — start at 40% of the
   horizon, last 30% — so it lands inside the recorded window of both
   short smoke runs and full-length traces. *)

let default_fault_vho t = (Vod_topology.Topologies.top_population_nodes t.graph 1).(0)

let fault_window t =
  let horizon =
    float_of_int t.trace.Vod_workload.Trace.days *. Vod_workload.Trace.seconds_per_day
  in
  (0.4 *. horizon, 0.7 *. horizon)

let single_vho_outage ?vho t =
  let vho = match vho with Some v -> v | None -> default_fault_vho t in
  let t0, t1 = fault_window t in
  Vod_resil.Event.create
    [
      { Vod_resil.Event.time_s = t0; kind = Vod_resil.Event.Vho_down vho };
      { Vod_resil.Event.time_s = t1; kind = Vod_resil.Event.Vho_up vho };
    ]

(* The target VHO, its lowest-id neighbor and both directed links between
   them all fail together (a site plus its conduit). *)
let correlated_outage ?vho t =
  let vho = match vho with Some v -> v | None -> default_fault_vho t in
  let neighbor, out_link =
    Array.fold_left
      (fun best lid ->
        let dst = (Vod_topology.Graph.link t.graph lid).Vod_topology.Graph.dst in
        match best with
        | Some (nb, _) when nb <= dst -> best
        | Some _ | None -> Some (dst, lid))
      None t.graph.Vod_topology.Graph.out_links.(vho)
    |> function
    | Some pair -> pair
    | None -> invalid_arg "Scenario.correlated_outage: target VHO has no links"
  in
  let back_link = Vod_topology.Graph.reverse_link t.graph out_link in
  let t0, t1 = fault_window t in
  Vod_resil.Event.create
    [
      { Vod_resil.Event.time_s = t0; kind = Vod_resil.Event.Vho_down vho };
      { Vod_resil.Event.time_s = t0; kind = Vod_resil.Event.Vho_down neighbor };
      { Vod_resil.Event.time_s = t0; kind = Vod_resil.Event.Link_down out_link };
      { Vod_resil.Event.time_s = t0; kind = Vod_resil.Event.Link_down back_link };
      { Vod_resil.Event.time_s = t1; kind = Vod_resil.Event.Vho_up vho };
      { Vod_resil.Event.time_s = t1; kind = Vod_resil.Event.Vho_up neighbor };
      { Vod_resil.Event.time_s = t1; kind = Vod_resil.Event.Link_up out_link };
      { Vod_resil.Event.time_s = t1; kind = Vod_resil.Event.Link_up back_link };
    ]

(* A quarter-day demand spike at the target VHO. *)
let flash_crowd ?vho ?(factor = 3.0) t =
  let vho = match vho with Some v -> v | None -> default_fault_vho t in
  let t0, _ = fault_window t in
  let t1 = t0 +. (0.25 *. Vod_workload.Trace.seconds_per_day) in
  Vod_resil.Event.create
    [
      { Vod_resil.Event.time_s = t0; kind = Vod_resil.Event.Surge_start { vho; factor } };
      { Vod_resil.Event.time_s = t1; kind = Vod_resil.Event.Surge_end vho };
    ]

(* Demand inputs for a one-week placement period starting at [day0], from
   actual trace requests (bootstrap / oracle use). *)
let demand_of_week t ~day0 ?(n_windows = 2) ?(window_s = 3600.0) () =
  let requests =
    Vod_workload.Trace.between_days t.trace ~day_lo:day0 ~day_hi:(day0 + 7)
  in
  Vod_workload.Demand.of_requests t.catalog
    ~n_vhos:(Vod_topology.Graph.n_nodes t.graph)
    ~day0 ~days:7 ~n_windows ~window_s requests
