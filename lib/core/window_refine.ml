(* Iterative peak-window refinement (paper Sec. VI-B).

   Enforcing link constraints only during the |T| busiest windows may
   leave other periods overloaded. "In the general case, we would
   iteratively identify these additional time periods that overload some
   links and add them to the set of peak demand periods, such that a
   solution to the new problem instance would satisfy the link constraints
   during these additional time periods."

   [solve] does exactly that: solve with the initial peak windows,
   replay the placement period against the placement, find the window
   with the worst realized link overload outside the enforced set, add it,
   and re-solve — until no link exceeds its capacity by more than
   [tolerance] or [max_rounds] is hit. *)

type round_info = {
  windows : (float * float) array;  (* enforced windows this round *)
  report : Vod_placement.Solve.report;
  worst_overload : float;           (* max realized load / capacity - 1 *)
  worst_window : float option;      (* start of the offending window, if any *)
}

type result = {
  rounds : round_info list;  (* oldest first *)
  final : Vod_placement.Solve.report;
  converged : bool;
}

(* Replay [requests] against [solution] and return per-window worst
   relative link overload: for each [window_s]-aligned window, the max
   over links of (average load / capacity). *)
let realized_overload (sc : Scenario.t) (inst : Vod_placement.Instance.t)
    (solution : Vod_placement.Solution.t) ~requests ~days ~window_s =
  let n = Vod_topology.Graph.n_nodes sc.Scenario.graph in
  let fleet =
    Vod_cache.Fleet.mip ~solution ~paths:sc.Scenario.paths ~catalog:sc.Scenario.catalog
      ~cache_gb:(Array.make n 0.0)
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links sc.Scenario.graph)
      ~horizon_s:(float_of_int days *. Vod_workload.Trace.seconds_per_day)
      ~bin_s:window_s ()
  in
  Vod_sim.Sim.play metrics sc.Scenario.paths sc.Scenario.catalog fleet requests;
  (* Per-bin worst utilization relative to each link's capacity. *)
  Array.init metrics.Vod_sim.Metrics.n_bins (fun b ->
      let worst = ref 0.0 in
      for l = 0 to metrics.Vod_sim.Metrics.n_links - 1 do
        let u =
          metrics.Vod_sim.Metrics.link_load.(l).(b)
          /. inst.Vod_placement.Instance.link_capacity_mbps.(l)
        in
        if u > !worst then worst := u
      done;
      !worst)

let solve ?(params = Vod_epf.Engine.default_params) ?(max_rounds = 4)
    ?(tolerance = 0.05) ?(n_windows = 2) ?(window_s = 3600.0) (sc : Scenario.t)
    ~day0 ~disk_gb ~link_capacity_mbps () =
  let days = 7 in
  let requests =
    Vod_workload.Trace.between_days sc.Scenario.trace ~day_lo:day0 ~day_hi:(day0 + days)
  in
  let base =
    Vod_workload.Demand.of_requests sc.Scenario.catalog
      ~n_vhos:(Vod_topology.Graph.n_nodes sc.Scenario.graph)
      ~day0 ~days ~n_windows ~window_s requests
  in
  (* Rebased requests for replay (the demand model rebases to day0). *)
  let rebased =
    Array.map
      (fun r ->
        {
          r with
          Vod_workload.Trace.time_s =
            r.Vod_workload.Trace.time_s
            -. (float_of_int day0 *. Vod_workload.Trace.seconds_per_day);
        })
      requests
  in
  let link_capacity =
    Vod_placement.Instance.uniform_links sc.Scenario.graph link_capacity_mbps
  in
  let rec loop rounds windows =
    let demand = { base with Vod_workload.Demand.windows } in
    (* Recompute concurrency for the enforced windows. *)
    let f =
      Array.map
        (fun (t0, t1) ->
          let tbl =
            Vod_workload.Stats.concurrency
              (Vod_workload.Trace.create
                 ~n_vhos:(Vod_topology.Graph.n_nodes sc.Scenario.graph)
                 ~days rebased)
              sc.Scenario.catalog ~t0 ~t1
          in
          let per = Array.make base.Vod_workload.Demand.n_videos [] in
          Hashtbl.iter
            (fun (video, vho) c -> per.(video) <- (vho, float_of_int c) :: per.(video))
            tbl;
          Array.map
            (fun l ->
              let a = Array.of_list l in
              Array.sort (fun (i, _) (j, _) -> Int.compare i j) a;
              a)
            per)
        windows
    in
    let demand = { demand with Vod_workload.Demand.f } in
    let inst =
      Vod_placement.Instance.create ~graph:sc.Scenario.graph
        ~catalog:sc.Scenario.catalog ~demand ~disk_gb
        ~link_capacity_mbps:link_capacity ()
    in
    let report = Vod_placement.Solve.solve ~params inst in
    let overloads =
      realized_overload sc inst report.Vod_placement.Solve.solution
        ~requests:rebased ~days ~window_s
    in
    (* Worst overloaded window not already enforced. *)
    let enforced t =
      Array.exists (fun (t0, _) -> Float.abs (t0 -. t) < window_s /. 2.0) windows
    in
    let worst = ref 0.0 and worst_at = ref None in
    Array.iteri
      (fun b u ->
        let t = float_of_int b *. window_s in
        if (not (enforced t)) && u -. 1.0 > !worst then begin
          worst := u -. 1.0;
          worst_at := Some t
        end)
      overloads;
    let info =
      {
        windows;
        report;
        worst_overload = !worst;
        worst_window = !worst_at;
      }
    in
    let rounds = info :: rounds in
    match !worst_at with
    | Some t when !worst > tolerance && List.length rounds < max_rounds ->
        loop rounds (Array.append windows [| (t, t +. window_s) |])
    | Some _ | None ->
        {
          rounds = List.rev rounds;
          final = report;
          converged = !worst <= tolerance;
        }
  in
  loop [] base.Vod_workload.Demand.windows
