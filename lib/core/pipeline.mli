(** End-to-end evaluation pipeline (paper Sec. VII): play a month of
    requests against one distribution scheme, with periodic MIP re-solves
    driven by demand estimation, and record metrics after warm-up. *)

type mip_config = {
  estimator : Vod_workload.Estimator.strategy;
  cache_frac : float;   (** complementary-LRU share of each VHO's disk *)
  update_days : int;    (** placement update period (7 = weekly) *)
  engine : Vod_epf.Engine.params;
  solver : string;
      (** placement solver backend name ({!Vod_placement.Backend});
          ["epf"] keeps the historical behavior *)
}

(** Series+blockbuster estimation, 5% cache, weekly updates. *)
val default_mip : mip_config

type scheme =
  | Mip of mip_config
  | Random_cache of Vod_cache.Cache.policy
  | Topk_lru of int
  | Origin_lru of int

type config = {
  scenario : Scenario.t;
  disk_gb : float array;
  link_capacity_mbps : float;
  warmup_days : int;
  n_windows : int;
  window_s : float;
  bin_s : float;
  seed : int;
  resil : Vod_resil.Playout.config option;
      (** [Some _] plays out through the fault-injecting engine
          (lib/resil) instead of the legacy one *)
  soa : bool;
      (** play through the compact struct-of-arrays store
          ({!Vod_workload.Trace_soa}) — byte-identical metrics, the
          million-request memory profile *)
}

(** 9 warm-up days, |T| = 2 one-hour windows, 5-minute bins, no faults. *)
val default_config :
  scenario:Scenario.t ->
  disk_gb:float array ->
  link_capacity_mbps:float ->
  config

type result = {
  scheme_name : string;
  metrics : Vod_sim.Metrics.t;
  solves : Vod_placement.Solve.report list;
      (** in update order, bootstrap first; MIP only *)
  migrations : (int * float) list;
      (** (transfers, GB) per update, in update order — one entry per
          element of [solves] after the bootstrap *)
  resil_windows : Vod_resil.Playout.window list;
      (** per-event serving windows; [[]] without a resil config *)
}

(** Run one scheme over the scenario's full trace. *)
val run : config -> scheme -> result

(** Human-readable scheme label. *)
val scheme_name : config -> scheme -> string

(** Demand ranking from the first week (Top-K's input; exposed for
    benches). *)
val first_week_ranking : config -> int array

(** MIP update days: the bootstrap serves days [0, 7); updates then run
    every [update_days] from day 7 while strictly inside the trace. The
    implied segments tile the trace exactly — a final partial window
    (when [update_days] does not divide [days - 7]) is shorter, never
    dropped or double-played. Raises [Invalid_argument] on a
    non-positive [update_days]. *)
val update_schedule : days:int -> update_days:int -> int list

(** The re-placement problem the weekly MIP solves are built from —
    shared verbatim with the online daemon ([Vod_serve.Daemon]), which
    is what makes a day-aligned unbudgeted daemon bit-identical to this
    batch pipeline. *)
val replan_problem : config -> mip_config -> Vod_serve.Replan.problem

(** The most recent placement of a result (the last element of
    [solves]), if the scheme was MIP. *)
val last_solution : result -> Vod_placement.Solution.t option
