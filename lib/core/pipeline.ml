(* The end-to-end evaluation pipeline of the paper's Sec. VII: play a
   month of requests against one distribution scheme, re-solving and
   re-applying the MIP placement periodically (weekly by default) using
   estimated demand, and record link loads and serving statistics after a
   warm-up period. *)

type mip_config = {
  estimator : Vod_workload.Estimator.strategy;
  cache_frac : float;     (* complementary-LRU share of each VHO's disk *)
  update_days : int;      (* placement update period (7 = weekly) *)
  engine : Vod_epf.Engine.params;
  solver : string;        (* placement solver backend (Backend registry) *)
}

let default_mip =
  {
    estimator = Vod_workload.Estimator.Series_blockbuster;
    cache_frac = 0.05;
    update_days = 7;
    engine = Vod_epf.Engine.default_params;
    solver = "epf";
  }

type scheme =
  | Mip of mip_config
  | Random_cache of Vod_cache.Cache.policy
  | Topk_lru of int
  | Origin_lru of int   (* number of origin regions *)

type config = {
  scenario : Scenario.t;
  disk_gb : float array;
  link_capacity_mbps : float;
  warmup_days : int;
  n_windows : int;
  window_s : float;
  bin_s : float;
  seed : int;
  resil : Vod_resil.Playout.config option;
      (* Some _ switches playout to the fault-injecting engine *)
  soa : bool;
      (* play through the compact struct-of-arrays store (byte-identical
         metrics; the million-request memory profile) *)
}

let default_config ~scenario ~disk_gb ~link_capacity_mbps =
  {
    scenario;
    disk_gb;
    link_capacity_mbps;
    warmup_days = 9;
    n_windows = 2;
    window_s = 3600.0;
    bin_s = 300.0;
    seed = 7;
    resil = None;
    soa = false;
  }

type result = {
  scheme_name : string;
  metrics : Vod_sim.Metrics.t;
  solves : Vod_placement.Solve.report list;
      (* in update order, bootstrap first *)
  migrations : (int * float) list;
      (* (transfers, GB) per update, in update order; one entry per
         element of [solves] after the bootstrap *)
  resil_windows : Vod_resil.Playout.window list;  (* [] without faults *)
}

let scheme_name cfg = function
  | Mip m ->
      (* Non-default solvers are tagged; the default stays byte-identical
         to the historical name (recorded exhibits depend on it). *)
      let solver_tag = if m.solver = "epf" then "" else "," ^ m.solver in
      Printf.sprintf "mip[%s%s,cache=%.0f%%,update=%dd]"
        (Vod_workload.Estimator.name m.estimator)
        solver_tag (100.0 *. m.cache_frac) m.update_days
  | Random_cache Vod_cache.Cache.Lru -> "random+lru"
  | Random_cache Vod_cache.Cache.Lfu -> "random+lfu"
  | Random_cache (Vod_cache.Cache.Lrfu lambda) ->
      Printf.sprintf "random+lrfu(%.2g)" lambda
  | Topk_lru k -> Printf.sprintf "top%d+lru" k
  | Origin_lru r -> ignore cfg; Printf.sprintf "origin%d+lru" r

let fresh_metrics cfg =
  let horizon_s =
    float_of_int cfg.scenario.Scenario.trace.Vod_workload.Trace.days
    *. Vod_workload.Trace.seconds_per_day
  in
  Vod_sim.Metrics.create
    ~n_links:(Vod_topology.Graph.n_links cfg.scenario.Scenario.graph)
    ~n_vhos:(Vod_topology.Graph.n_nodes cfg.scenario.Scenario.graph)
    ~horizon_s ~bin_s:cfg.bin_s
    ~record_from:(float_of_int cfg.warmup_days *. Vod_workload.Trace.seconds_per_day)
    ()

(* Both playout paths are configurations of the unified serving loop
   (lib/serve): direct fixed-path serving, or — when the config carries
   a fault/capacity setup — the failover-routing configuration. *)
let make_engine cfg ~fleet =
  let sc = cfg.scenario in
  Vod_serve.Loop.create ~graph:sc.Scenario.graph ~paths:sc.Scenario.paths
    ~catalog:sc.Scenario.catalog ~fleet ?resil:cfg.resil ()

(* Demand ranking from the first week (what a provider would know before
   the measured period), used by Top-K. *)
let first_week_ranking cfg =
  let sc = cfg.scenario in
  let demand = Scenario.demand_of_week sc ~day0:0 ~n_windows:cfg.n_windows ~window_s:cfg.window_s () in
  Vod_workload.Demand.rank_by_demand demand

(* The static re-placement problem the weekly solves share with the
   online daemon (Vod_serve.Daemon): going through the same
   [Vod_serve.Replan] entry points is what makes a day-aligned daemon
   replan bit-identical to the batch pipeline's. *)
let replan_problem cfg (m : mip_config) =
  let sc = cfg.scenario in
  {
    Vod_serve.Replan.graph = sc.Scenario.graph;
    catalog = sc.Scenario.catalog;
    disk_gb = cfg.disk_gb;
    link_capacity_mbps = cfg.link_capacity_mbps;
    cache_frac = m.cache_frac;
    n_windows = cfg.n_windows;
    window_s = cfg.window_s;
    engine = m.engine;
    solver = m.solver;
  }

(* Solve a placement for the week starting at [day0] from a (predicted or
   actual) request batch. *)
let solve_week cfg (m : mip_config) requests ~day0 =
  let pb = replan_problem cfg m in
  Vod_serve.Replan.solve pb
    (Vod_serve.Replan.demand pb
       ~t0_s:(float_of_int day0 *. Vod_workload.Trace.seconds_per_day)
       requests)

(* MIP update days: the bootstrap placement (computed at day 0 from the
   actual first week) serves days [0, 7); updates then run every
   [update_days] from day 7 while strictly inside the trace. The
   resulting segments [0; u1), [u1; u2), ..., [u_k; days) tile the trace
   exactly — when [update_days] does not divide [days - 7] the final
   segment is simply shorter, never dropped or double-played (pinned by
   test/test_core.ml's 30-day / update_days=7 regression). *)
let update_schedule ~days ~update_days =
  if update_days <= 0 then
    invalid_arg "Pipeline.update_schedule: update_days must be positive";
  let updates = ref [] in
  let d = ref 7 in
  while !d < days do
    updates := !d :: !updates;
    d := !d + update_days
  done;
  List.rev !updates

let run_mip cfg (m : mip_config) =
  let sc = cfg.scenario in
  let trace = sc.Scenario.trace in
  let metrics = fresh_metrics cfg in
  let cache_gb = Array.map (fun d -> d *. m.cache_frac) cfg.disk_gb in
  (* Bootstrap placement at day 0 (computed from the actual first week —
     the paper's initial pre-population, done before the service opens),
     then periodic updates per [update_schedule], driven by the
     estimator. *)
  let updates =
    update_schedule ~days:trace.Vod_workload.Trace.days
      ~update_days:m.update_days
  in
  let boot_requests = Vod_workload.Trace.between_days trace ~day_lo:0 ~day_hi:7 in
  let boot = solve_week cfg m boot_requests ~day0:0 in
  let solves_rev = ref [ boot ] in
  let migrations_rev = ref [] in
  let current = ref boot.Vod_placement.Solve.solution in
  let fleet_of sol =
    Vod_cache.Fleet.mip ~solution:sol ~paths:sc.Scenario.paths
      ~catalog:sc.Scenario.catalog ~cache_gb
  in
  let engine = make_engine cfg ~fleet:(fleet_of !current) in
  (* SoA playout: the compact store replaces the boxed batches in the
     serving hot path; segment ranges come from the same binary search
     over the (identically sorted) time column, so the metrics are
     byte-identical (asserted by test/test_soa.ml). *)
  let store =
    if cfg.soa then Some (Vod_workload.Trace_soa.of_trace trace) else None
  in
  let play ~day_lo ~day_hi =
    match store with
    | Some s ->
        let lo, hi = Vod_workload.Trace_soa.between_days s ~day_lo ~day_hi in
        Vod_serve.Loop.play_soa engine metrics s ~lo ~hi
    | None ->
        let batch = Vod_workload.Trace.between_days trace ~day_lo ~day_hi in
        Vod_serve.Loop.play engine metrics batch
  in
  let segment_bounds = updates @ [ trace.Vod_workload.Trace.days ] in
  let prev_day = ref 0 in
  List.iter
    (fun day ->
      play ~day_lo:!prev_day ~day_hi:day;
      if day < trace.Vod_workload.Trace.days then begin
        let predicted =
          Vod_workload.Estimator.predict m.estimator sc.Scenario.catalog trace
            ~week_start:day
        in
        let report = solve_week cfg m predicted ~day0:day in
        solves_rev := report :: !solves_rev;
        migrations_rev :=
          Vod_placement.Solution.migration ~old_sol:!current
            ~new_sol:report.Vod_placement.Solve.solution sc.Scenario.catalog
          :: !migrations_rev;
        current := report.Vod_placement.Solve.solution;
        Vod_serve.Loop.set_fleet engine (fleet_of !current)
      end;
      prev_day := day)
    segment_bounds;
  Vod_serve.Loop.finish engine metrics;
  {
    scheme_name = scheme_name cfg (Mip m);
    metrics;
    (* Both lists read oldest-first, in update order. *)
    solves = List.rev !solves_rev;
    migrations = List.rev !migrations_rev;
    resil_windows = Vod_serve.Loop.windows engine;
  }

let run_cache_scheme cfg scheme =
  let sc = cfg.scenario in
  let metrics = fresh_metrics cfg in
  let fleet =
    match scheme with
    | Random_cache policy ->
        Vod_cache.Fleet.random_single ~paths:sc.Scenario.paths
          ~catalog:sc.Scenario.catalog ~disk_gb:cfg.disk_gb ~policy
          ~seed:cfg.seed
    | Topk_lru k ->
        Vod_cache.Fleet.topk ~k ~ranked:(first_week_ranking cfg)
          ~paths:sc.Scenario.paths ~catalog:sc.Scenario.catalog
          ~disk_gb:cfg.disk_gb ~seed:cfg.seed
    | Origin_lru regions ->
        Vod_cache.Fleet.origin_regions ~regions ~graph:sc.Scenario.graph
          ~paths:sc.Scenario.paths ~catalog:sc.Scenario.catalog
          ~disk_gb:cfg.disk_gb
    | Mip _ -> invalid_arg "run_cache_scheme: use run_mip"
  in
  let engine = make_engine cfg ~fleet in
  (if cfg.soa then begin
     let store = Vod_workload.Trace_soa.of_trace sc.Scenario.trace in
     Vod_serve.Loop.play_soa engine metrics store ~lo:0
       ~hi:(Vod_workload.Trace_soa.length store)
   end
   else
     Vod_serve.Loop.play engine metrics
       sc.Scenario.trace.Vod_workload.Trace.requests);
  Vod_serve.Loop.finish engine metrics;
  {
    scheme_name = scheme_name cfg scheme;
    metrics;
    solves = [];
    migrations = [];
    resil_windows = Vod_serve.Loop.windows engine;
  }

let run cfg = function
  | Mip m -> run_mip cfg m
  | (Random_cache _ | Topk_lru _ | Origin_lru _) as scheme ->
      run_cache_scheme cfg scheme

(* Latest placement of a result, if any (for Figs. 7/8 analyses);
   [solves] reads oldest-first, so the placement in force at the end of
   the run is the last element. *)
let last_solution result =
  match List.rev result.solves with
  | [] -> None
  | report :: _ -> Some report.Vod_placement.Solve.solution
