(** Ready-made experiment scenarios: topology + catalog + month-long trace
    wired together the way the paper's evaluation sets them up
    (Sec. VII-A). *)

type t = {
  graph : Vod_topology.Graph.t;
  paths : Vod_topology.Paths.t;
  catalog : Vod_workload.Catalog.t;
  trace : Vod_workload.Trace.t;
}

(** Build a scenario over an arbitrary graph. Defaults: 28 days, 5
    requests per video per day. [soa] routes trace generation through
    the windowed struct-of-arrays builder
    ([Vod_workload.Tracegen.generate_soa], bounded staging) — the
    resulting trace is row-for-row identical. [jobs] shards per-day
    generation over a domain pool (0 = process default); bit-identical
    at any job count. *)
val make :
  ?days:int ->
  ?requests_per_video_per_day:float ->
  ?seed:int ->
  ?soa:bool ->
  ?jobs:int ->
  graph:Vod_topology.Graph.t ->
  n_videos:int ->
  unit ->
  t

(** The paper's default 55-VHO backbone scenario. *)
val backbone :
  ?days:int ->
  ?requests_per_video_per_day:float ->
  ?seed:int ->
  ?soa:bool ->
  ?jobs:int ->
  n_videos:int ->
  unit ->
  t

(** Total library size in GB. *)
val library_gb : t -> float

(** Uniform per-VHO disk with aggregate = [multiple] x library size. *)
val uniform_disk : t -> multiple:float -> float array

(** The paper's heterogeneous large/medium/small VHO split (Sec. VII-C)
    with 4:2:1 disk weights, aggregate = [multiple] x library size. *)
val hetero_disk : t -> multiple:float -> float array

(** Target VHO of the canned fault scenarios below: the largest metro. *)
val default_fault_vho : t -> int

(** One VHO fails at 40% of the trace horizon and recovers at 70%
    (the TON'16 single-failure analysis). Default target: the largest
    metro. *)
val single_vho_outage : ?vho:int -> t -> Vod_resil.Event.schedule

(** Correlated site failure: the target VHO, its lowest-id neighbor and
    both directed links between them fail together over the same window. *)
val correlated_outage : ?vho:int -> t -> Vod_resil.Event.schedule

(** A demand surge ([factor], default 3.0) at the target VHO for a
    quarter day starting at 40% of the horizon. *)
val flash_crowd : ?vho:int -> ?factor:float -> t -> Vod_resil.Event.schedule

(** Demand inputs for the week starting at [day0], from actual requests
    (|T| = 2 one-hour peak windows by default). *)
val demand_of_week :
  t -> day0:int -> ?n_windows:int -> ?window_s:float -> unit -> Vod_workload.Demand.t
