(* Process-memory readings from /proc/self/status. The fields of
   interest render as e.g. "VmHWM:    123456 kB"; absent file or field
   (non-Linux) degrades to None. *)

let field_bytes key =
  match In_channel.with_open_text "/proc/self/status" (fun ic ->
            let prefix = key ^ ":" in
            let rec scan () =
              match In_channel.input_line ic with
              | None -> None
              | Some line ->
                  if String.starts_with ~prefix line then
                    (* "<key>:  <n> kB" — take the numeric token. *)
                    let rest =
                      String.sub line (String.length prefix)
                        (String.length line - String.length prefix)
                    in
                    let tokens =
                      String.split_on_char ' ' (String.trim rest)
                      |> List.filter (fun s -> s <> "")
                    in
                    (match tokens with
                    | kb :: _ ->
                        Option.map (fun n -> n * 1024) (int_of_string_opt kb)
                    | [] -> None)
                  else scan ()
            in
            scan ())
  with
  | v -> v
  | exception Sys_error _ -> None

let peak_rss_bytes () = field_bytes "VmHWM"

let rss_bytes () = field_bytes "VmRSS"

let sample_peak_rss () =
  if Obs.active () then
    match peak_rss_bytes () with
    | Some bytes -> Obs.set_gauge "mem/peak_rss_bytes" (float_of_int bytes)
    | None -> ()
