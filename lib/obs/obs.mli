(** Side-band metrics and phase tracing for the solver, the simulator
    and the benchmark harness.

    A registry ({!t}) collects four metric kinds — counters, gauges,
    histograms and series — plus nestable wall-clock phase timers, and
    exports them as deterministically sorted text ({!report}) or JSON
    ({!to_json}). Recording goes through an ambient {e current}
    registry installed per domain by {!with_run}: when no registry is
    installed (the default), every recording function is a no-op that
    performs no allocation and reads no clock, so instrumented hot
    paths cost nothing in production runs.

    {2 Determinism contract}

    Metric {e values} may come from the wall clock (phase timers, the
    pool's busy-time gauges) — those are the observability layer's
    business. What must never happen is the reverse flow: an
    [Obs]-derived value feeding solver numerics. Two mechanisms defend
    this:

    - the [obs-taint] vodlint project rule statically rejects any use
      of the reading API ({!read}, {!names}, {!report}, {!to_json})
      under [lib/] outside [lib/obs] itself — reading belongs to the
      [bin/] and [bench/] front ends;
    - recording inside {!Vod_util.Pool} tasks is buffered per task
      index ({!batch_begin}) and merged in task order in the
      submitting domain, so for a fixed seed the full report is
      byte-identical at any [--jobs] count, except for keys ending in
      [_seconds] and the scheduling-dependent [pool/sched/*] keys
      (see METRICS.md, "Jobs invariance").

    All wall-clock access of the repository's [lib/] layer is
    quarantined in this directory: the [wallclock-in-solver] lint rule
    exempts [lib/obs] and nothing else. *)

type t
(** A metric registry. Registries are single-domain values: record
    into one either from the domain that created it, or through the
    per-task buffers of {!batch_begin}. *)

val create : unit -> t
(** A fresh, empty registry. *)

val with_run : t -> (unit -> 'a) -> 'a
(** [with_run reg f] installs [reg] as the current domain's recording
    sink for the duration of [f] (restoring the previous sink, if any,
    on every exit path) and resets the phase stack. Nesting is
    allowed; the innermost registry wins. *)

val active : unit -> bool
(** Whether a current registry is installed in this domain. Use to
    guard derivations that are only worth computing when metrics are
    being collected (e.g. a full potential evaluation). Values guarded
    this way must only ever be passed to recording functions. *)

(** {2 Recording}

    Every function below is a no-op when {!active} is [false]. A name
    must keep one kind for the lifetime of a registry; re-recording an
    existing name with a different kind raises [Invalid_argument] —
    that is a bug at the instrumentation site, not a data error. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter. *)

val set_gauge : string -> float -> unit
(** Set a gauge; the last written value wins (task order, for writes
    made inside pool tasks). *)

val observe : string -> float -> unit
(** Add one observation to a histogram (count / sum / min / max). *)

val push : string -> float -> unit
(** Append one value to a series — an append-only float sequence for
    per-iteration traces (e.g. the EPF lower-bound progression). *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] times [f] on the wall clock and records the elapsed
    seconds as one {!observe} under
    [phase/<outer>/.../<name>_seconds], where [<outer>/...] is the
    stack of enclosing [phase] calls in this domain. Pool task buffers
    start with an empty stack, so a phase inside a task is named
    identically at any job count. The timing is recorded on every exit
    path; [f]'s result (or exception) is passed through unchanged. *)

(** {2 Reading and export}

    Reserved for front ends ([bin/], [bench/]) and for tests: the
    [obs-taint] lint rule rejects these under [lib/] (outside
    [lib/obs]). *)

(** One exported metric value. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }
  | Series of float array  (** in recording order *)

val read : t -> string -> value option
(** Look up one metric by name. *)

val names : t -> string list
(** All registered names, sorted. *)

val report : t -> string
(** Text report: one [name value] line per metric, sorted by name.
    Histograms render as [count=.. sum=.. min=.. max=..], series as a
    bracketed list. Byte-deterministic for equal registry contents. *)

val to_json : t -> string
(** The registry as one JSON object, keys sorted. Counters are
    integers, gauges numbers, histograms objects
    [{"count","sum","min","max","mean"}], series arrays. Non-finite
    floats render as [null] (JSON has no representation for them).
    Byte-deterministic for equal registry contents. *)

val write_json : t -> string -> unit
(** [write_json reg path] writes {!to_json} to [path] ([-] means
    stdout), creating or truncating the file. *)

val merge : into:t -> t -> unit
(** Fold a registry into another: counters add, gauges overwrite,
    histograms combine, series append. Raises [Invalid_argument] on a
    kind mismatch between same-named metrics. *)

val merge_into_current : t -> unit
(** [merge_into_current src] merges [src] into the current domain's
    installed registry ({!merge} semantics); a no-op when {!active} is
    [false]. Used by {!Checkpoint} to fold a restored or freshly
    collected exhibit registry into an ambient [--metrics] run. *)

(** {2 Pool integration}

    Used by {!Vod_util.Pool} only. The pool cannot record directly:
    its workers run in domains where no registry is installed, and a
    shared sink would make float merge order scheduling-dependent.
    Instead the pool brackets every batch with [batch_begin] /
    [batch_end] and runs each claimed chunk under [batch_chunk]. *)

type batch_obs
(** Per-batch observability context: one private buffer per task
    index, plus per-domain-slot busy-time and chunk accounting. When
    metrics are off this is a unit-cost token and every hook below is
    an identity. *)

val batch_begin : n:int -> jobs:int -> (int -> unit) -> batch_obs * (int -> unit)
(** [batch_begin ~n ~jobs f] returns the batch context and a wrapped
    task body. The wrapper runs [f i] with a fresh buffer registry
    installed (and an empty phase stack), so recordings made by task
    [i] land in buffer [i] regardless of which domain executes it.
    [jobs] sizes the per-domain-slot accounting of {!batch_chunk}. *)

val batch_chunk : batch_obs -> slot:int -> (unit -> unit) -> unit
(** [batch_chunk ctx ~slot body] runs one claimed chunk, accumulating
    its wall-clock time and chunk count against domain [slot]
    (submitter = 0, workers = 1..). Each slot is only ever touched by
    its own domain. *)

val batch_end : batch_obs -> unit
(** Merge the task buffers into the submitting registry {e in task
    order}, then record the pool telemetry: [pool/tasks],
    [pool/batches], and the scheduling-dependent [pool/sched/chunks]
    and [pool/sched/domain<slot>_busy_seconds]. Must be called in the
    submitting domain, after the batch has drained, on every exit
    path (including a re-raised task failure). *)
