(** Process-memory readings for the benchmark harness's [mem/*] gauges.

    Linux-only by data source: values come from [/proc/self/status]
    ([VmHWM] = peak resident set, [VmRSS] = current resident set). On
    platforms without procfs every reader returns [None] and
    {!sample_peak_rss} is a no-op — callers need no platform gate.

    Like the wall clock, resident-set sizes are scheduling- and
    allocator-dependent: the [mem/*] gauges are exempt from the
    jobs-invariance contract exactly as [*_seconds] metrics are
    (METRICS.md, "Jobs invariance"). *)

val peak_rss_bytes : unit -> int option
(** High-water-mark resident set size of this process, in bytes. *)

val rss_bytes : unit -> int option
(** Current resident set size of this process, in bytes. *)

val sample_peak_rss : unit -> unit
(** Set the [mem/peak_rss_bytes] gauge to {!peak_rss_bytes} (last write
    wins, so sampling at every phase boundary leaves the run's true
    high-water mark). No-op when metrics are off or procfs is absent. *)
