(* Side-band metrics registry. All wall-clock access of lib/ is
   quarantined here (the wallclock-in-solver lint rule exempts lib/obs);
   the obs-taint rule keeps the reading API out of lib/ so no recorded
   value can flow back into solver numerics. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | MCounter of int ref
  | MGauge of float ref
  | MHist of hist
  | MSeries of float list ref (* newest first; reversed on export *)

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 32

(* Ambient per-domain recording sink and phase stack. Pool task
   buffers swap both in, so a task records into its own buffer with a
   fresh stack regardless of which domain runs it. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let stack_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let active () =
  match Domain.DLS.get current_key with Some _ -> true | None -> false

let with_run reg f =
  let saved = Domain.DLS.get current_key in
  let saved_stack = Domain.DLS.get stack_key in
  Domain.DLS.set current_key (Some reg);
  Domain.DLS.set stack_key [];
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current_key saved;
      Domain.DLS.set stack_key saved_stack)
    f

(* {2 Recording} *)

let kind_name = function
  | MCounter _ -> "counter"
  | MGauge _ -> "gauge"
  | MHist _ -> "histogram"
  | MSeries _ -> "series"

let mismatch name m want =
  invalid_arg
    (Printf.sprintf "Obs: metric %S is a %s, not a %s" name (kind_name m) want)

(* Registry-explicit recorders, shared by the ambient API, [merge] and
   [batch_end] (which must target a specific registry, not whatever
   sink happens to be installed). *)

let incr_on reg ~by name =
  match Hashtbl.find_opt reg name with
  | Some (MCounter r) -> r := !r + by
  | Some m -> mismatch name m "counter"
  | None -> Hashtbl.replace reg name (MCounter (ref by))

let set_gauge_on reg name v =
  match Hashtbl.find_opt reg name with
  | Some (MGauge r) -> r := v
  | Some m -> mismatch name m "gauge"
  | None -> Hashtbl.replace reg name (MGauge (ref v))

let observe_on reg name v =
  match Hashtbl.find_opt reg name with
  | Some (MHist h) ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
  | Some m -> mismatch name m "histogram"
  | None ->
      Hashtbl.replace reg name
        (MHist { h_count = 1; h_sum = v; h_min = v; h_max = v })

let push_on reg name v =
  match Hashtbl.find_opt reg name with
  | Some (MSeries r) -> r := v :: !r
  | Some m -> mismatch name m "series"
  | None -> Hashtbl.replace reg name (MSeries (ref [ v ]))

let incr ?(by = 1) name =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some reg -> incr_on reg ~by name

let set_gauge name v =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some reg -> set_gauge_on reg name v

let observe name v =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some reg -> observe_on reg name v

let push name v =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some reg -> push_on reg name v

let phase name f =
  match Domain.DLS.get current_key with
  | None -> f ()
  | Some reg ->
      let stack = Domain.DLS.get stack_key in
      let full =
        "phase/" ^ String.concat "/" (List.rev (name :: stack)) ^ "_seconds"
      in
      Domain.DLS.set stack_key (name :: stack);
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Unix.gettimeofday () -. t0 in
          Domain.DLS.set stack_key stack;
          observe_on reg full dt)
        f

(* {2 Reading and export} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }
  | Series of float array

let value_of = function
  | MCounter r -> Counter !r
  | MGauge r -> Gauge !r
  | MHist h ->
      Histogram { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max }
  | MSeries r -> Series (Array.of_list (List.rev !r))

let read reg name = Option.map value_of (Hashtbl.find_opt reg name)

let names reg =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) reg [])

(* %.17g round-trips every finite double and is locale-independent, so
   equal registry contents export byte-identically. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e16 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let json_float v = if Float.is_finite v then float_str v else "null"

let report reg =
  let b = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string b name;
      Buffer.add_char b ' ';
      (match Hashtbl.find_opt reg name with
      | None -> ()
      | Some (MCounter r) -> Buffer.add_string b (string_of_int !r)
      | Some (MGauge r) -> Buffer.add_string b (float_str !r)
      | Some (MHist h) ->
          Buffer.add_string b
            (Printf.sprintf "count=%d sum=%s min=%s max=%s" h.h_count
               (float_str h.h_sum) (float_str h.h_min) (float_str h.h_max))
      | Some (MSeries r) ->
          Buffer.add_char b '[';
          List.iteri
            (fun i v ->
              if i > 0 then Buffer.add_string b "; ";
              Buffer.add_string b (float_str v))
            (List.rev !r);
          Buffer.add_char b ']');
      Buffer.add_char b '\n')
    (names reg);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One top-level key per line (nested histogram objects stay inline):
   tools/check.sh extracts the emitted names with a line-anchored grep
   to validate them against METRICS.md. *)
let to_json reg =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  \"";
      Buffer.add_string b (json_escape name);
      Buffer.add_string b "\": ";
      match Hashtbl.find_opt reg name with
      | None -> Buffer.add_string b "null"
      | Some (MCounter r) -> Buffer.add_string b (string_of_int !r)
      | Some (MGauge r) -> Buffer.add_string b (json_float !r)
      | Some (MHist h) ->
          let mean = if h.h_count > 0 then h.h_sum /. float_of_int h.h_count else 0.0 in
          Buffer.add_string b
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"mean\": %s}"
               h.h_count (json_float h.h_sum) (json_float h.h_min)
               (json_float h.h_max) (json_float mean))
      | Some (MSeries r) ->
          Buffer.add_char b '[';
          List.iteri
            (fun j v ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b (json_float v))
            (List.rev !r);
          Buffer.add_char b ']')
    (names reg);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json reg path =
  let s = to_json reg in
  if String.equal path "-" then begin
    (* [output_string], not the Printf/print_* family: this is the one
       sanctioned stdout export path of the metrics layer, invoked by
       the bin/ and bench/ front ends on an explicit [--metrics -]. *)
    output_string stdout s;
    flush stdout
  end
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s)
  end

let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find_opt src name with
      | None -> ()
      | Some (MCounter r) -> incr_on into ~by:!r name
      | Some (MGauge r) -> set_gauge_on into name !r
      | Some (MHist h) -> (
          match Hashtbl.find_opt into name with
          | Some (MHist d) ->
              d.h_count <- d.h_count + h.h_count;
              d.h_sum <- d.h_sum +. h.h_sum;
              if h.h_min < d.h_min then d.h_min <- h.h_min;
              if h.h_max > d.h_max then d.h_max <- h.h_max
          | Some m -> mismatch name m "histogram"
          | None ->
              Hashtbl.replace into name
                (MHist
                   {
                     h_count = h.h_count;
                     h_sum = h.h_sum;
                     h_min = h.h_min;
                     h_max = h.h_max;
                   }))
      | Some (MSeries r) ->
          (* Oldest-first append so [src]'s sequence extends [into]'s. *)
          List.iter (fun v -> push_on into name v) (List.rev !r))
    (names src)

let merge_into_current src =
  match Domain.DLS.get current_key with
  | None -> ()
  | Some reg -> merge ~into:reg src

(* {2 Pool integration} *)

type batch_state = {
  parent : t;
  bufs : t option array; (* slot i written only by task i's runner *)
  busy : float array; (* slot d written only by domain d *)
  chunks : int array; (* ditto *)
  n : int;
}

type batch_obs = Off | On of batch_state

let batch_begin ~n ~jobs f =
  match Domain.DLS.get current_key with
  | None -> (Off, f)
  | Some parent ->
      let slots = max 1 jobs in
      let o =
        {
          parent;
          bufs = Array.make n None;
          busy = Array.make slots 0.0;
          chunks = Array.make slots 0;
          n;
        }
      in
      let wrapped i =
        let buf = create () in
        o.bufs.(i) <- Some buf;
        let saved = Domain.DLS.get current_key in
        let saved_stack = Domain.DLS.get stack_key in
        Domain.DLS.set current_key (Some buf);
        Domain.DLS.set stack_key [];
        Fun.protect
          ~finally:(fun () ->
            Domain.DLS.set current_key saved;
            Domain.DLS.set stack_key saved_stack)
          (fun () -> f i)
      in
      (On o, wrapped)

let batch_chunk ctx ~slot body =
  match ctx with
  | Off -> body ()
  | On o ->
      let slot = if slot < 0 || slot >= Array.length o.busy then 0 else slot in
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          (* This write happens before the pool's release of the batch
             (the finished-counter fetch_add), so [batch_end]'s reads
             in the submitting domain are ordered after it. *)
          o.busy.(slot) <- o.busy.(slot) +. (Unix.gettimeofday () -. t0);
          o.chunks.(slot) <- o.chunks.(slot) + 1)
        body

let batch_end ctx =
  match ctx with
  | Off -> ()
  | On o ->
      (* Task order, not completion order: this is what makes merged
         counters/histograms/series identical at any --jobs count. *)
      for i = 0 to o.n - 1 do
        match o.bufs.(i) with
        | None -> ()
        | Some buf -> merge ~into:o.parent buf
      done;
      incr_on o.parent ~by:o.n "pool/tasks";
      incr_on o.parent ~by:1 "pool/batches";
      let total_chunks = Array.fold_left ( + ) 0 o.chunks in
      if total_chunks > 0 then
        incr_on o.parent ~by:total_chunks "pool/sched/chunks";
      Array.iteri
        (fun slot busy ->
          if o.chunks.(slot) > 0 then
            observe_on o.parent
              (Printf.sprintf "pool/sched/domain%d_busy_seconds" slot)
              busy)
        o.busy
