(* Per-exhibit checkpointing: capture stdout + metrics per exhibit,
   mark completion with a last-written .done file, replay on resume.
   Lives in lib/obs because it is pure harness plumbing — nothing here
   may be reachable from solver code (the obs-taint rule would flag
   readers; the stdout writes below are the sanctioned replay path of
   the bench front end). *)

type outcome = Ran | Restored

let section_file dir name = Filename.concat dir (name ^ ".section.txt")
let partial_file dir name = Filename.concat dir (name ^ ".section.part")
let metrics_file dir name = Filename.concat dir (name ^ ".metrics.json")
let done_file dir name = Filename.concat dir (name ^ ".done")

let completed ~dir ~name = Sys.file_exists (done_file dir name)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    (* A concurrent creator is fine; re-check instead of racing. *)
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  end

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay path =
  if Sys.file_exists path then begin
    output_string stdout (read_all path);
    flush stdout
  end

(* Redirect fd 1 into [path], run [f], restore fd 1 on every exit
   path. OCaml's [stdout] channel keeps pointing at fd 1 throughout,
   so the exhibit's printf output lands in the file transparently. *)
let with_stdout_to path f =
  flush stdout;
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let run ~dir ~name f =
  mkdir_p dir;
  if completed ~dir ~name then begin
    replay (section_file dir name);
    Restored
  end
  else begin
    let part = partial_file dir name in
    let reg = Obs.create () in
    (match
       with_stdout_to part (fun () ->
           Obs.with_run reg (fun () -> Obs.phase ("bench/" ^ name) f))
     with
    | () -> ()
    | exception e ->
        (* Show the partial output, keep the .part file as evidence,
           write no marker: the exhibit re-runs on resume. *)
        replay part;
        raise e);
    replay part;
    Obs.write_json reg (metrics_file dir name);
    Sys.rename part (section_file dir name);
    let oc = open_out (done_file dir name) in
    close_out oc;
    Obs.merge_into_current reg;
    Ran
  end
