(** Resumable per-exhibit checkpoints for the benchmark harness.

    A checkpoint directory holds, per completed exhibit [name]:

    - [<name>.section.txt] — everything the exhibit printed to stdout;
    - [<name>.metrics.json] — the exhibit's {!Obs.to_json} registry;
    - [<name>.done] — the completion marker, written {e last}, so a
      run killed mid-exhibit re-runs that exhibit on resume instead of
      trusting a truncated section.

    {!run} executes an exhibit with stdout redirected into the section
    file (then replays it to the real stdout, so live output is
    unchanged apart from per-exhibit buffering), or — when the marker
    already exists — skips the exhibit entirely and replays the
    recorded section. Either way the console transcript of a resumed
    run matches an uninterrupted one. *)

type outcome =
  | Ran  (** the exhibit executed and its checkpoint files were written *)
  | Restored  (** a completed checkpoint existed; its section was replayed *)

val completed : dir:string -> name:string -> bool
(** Whether [dir] holds a completion marker for exhibit [name]. *)

val run : dir:string -> name:string -> (unit -> unit) -> outcome
(** [run ~dir ~name f] creates [dir] if needed and either replays the
    completed checkpoint for [name], or runs [f] with stdout captured
    to [<name>.section.txt] and a private {!Obs} registry installed
    (its phase/metric recordings go to [<name>.metrics.json]). On
    completion the private registry is also merged into the ambient
    registry, if one is installed (a bench [--metrics] run); restored
    exhibits contribute nothing to the ambient registry because their
    JSON is not re-parsed — the per-exhibit file remains the source of
    truth.

    If [f] raises, stdout is restored, the partial section is replayed
    with a [<name>.section.part] file left behind for inspection, no
    marker is written, and the exception is re-raised. *)
