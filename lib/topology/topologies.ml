(* Topology generators.

   The paper evaluates on (a) a 55-VHO IPTV backbone with 76 bidirectional
   links, (b) a BFS tree and a full mesh over the same VHOs, and (c) three
   RocketFuel ISP maps (Tiscali 49/86, Sprint 33/69, Ebone 23/38). Neither
   the AT&T backbone nor the exact RocketFuel edge lists ship with this
   repository, so we generate deterministic synthetic graphs that match the
   published node/link counts: a ring (guaranteeing 2-connectivity, as in
   ISP backbones) plus population-biased chords (hubs get extra links).
   DESIGN.md documents why this substitution preserves the results. *)

let zipf_populations ~seed n =
  (* City sizes follow a Zipf-like law; the rank-to-node assignment is
     shuffled so that node ids carry no meaning. *)
  let rng = Vod_util.Rng.create (seed + 7919) in
  let perm = Vod_util.Rng.permutation rng n in
  let pops = Array.make n 0.0 in
  for rank = 0 to n - 1 do
    pops.(perm.(rank)) <- 1.0 /. ((float_of_int rank +. 1.0) ** 0.8)
  done;
  pops

(* Ring + population-biased chords with exactly [target_edges] undirected
   edges. The ring uses a random node order so the chords are not biased
   toward id-adjacent nodes. *)
let ring_plus_chords ~name ~n ~target_edges ~seed =
  if target_edges < n then invalid_arg "ring_plus_chords: need at least n edges for the ring";
  let max_edges = n * (n - 1) / 2 in
  if target_edges > max_edges then invalid_arg "ring_plus_chords: too many edges requested";
  let populations = zipf_populations ~seed n in
  let rng = Vod_util.Rng.create seed in
  let order = Vod_util.Rng.permutation rng n in
  let seen = Hashtbl.create (2 * target_edges) in
  let edges = ref [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  for k = 0 to n - 1 do
    ignore (add order.(k) order.((k + 1) mod n))
  done;
  (* Chords: endpoints drawn with probability proportional to population,
     so high-demand metros become hubs (as in real ISP backbones). *)
  let sampler = Vod_util.Sampler.create populations in
  let remaining = ref (target_edges - List.length !edges) in
  while !remaining > 0 do
    let u = Vod_util.Sampler.draw sampler rng in
    let v = Vod_util.Sampler.draw sampler rng in
    if add u v then decr remaining
  done;
  Graph.create ~name ~n ~edges:!edges ~populations

let backbone55 ?(seed = 55) () =
  ring_plus_chords ~name:"vod-backbone-55" ~n:55 ~target_edges:76 ~seed

let tiscali ?(seed = 49) () = ring_plus_chords ~name:"tiscali" ~n:49 ~target_edges:86 ~seed

let sprint ?(seed = 33) () = ring_plus_chords ~name:"sprint" ~n:33 ~target_edges:69 ~seed

let ebone ?(seed = 23) () = ring_plus_chords ~name:"ebone" ~n:23 ~target_edges:38 ~seed

(* BFS tree rooted at the highest-population VHO; keeps the node set and
   populations of [g] but only n-1 physical links (paper Table IV). *)
let tree_of (g : Graph.t) =
  let n = g.Graph.n in
  let root = ref 0 in
  Array.iteri
    (fun i p -> if p > g.Graph.populations.(!root) then root := i)
    g.Graph.populations;
  let visited = Array.make n false in
  let queue = Queue.create () in
  let edges = ref [] in
  visited.(!root) <- true;
  Queue.push !root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun lid ->
        let w = (Graph.link g lid).Graph.dst in
        if not visited.(w) then begin
          visited.(w) <- true;
          edges := (v, w) :: !edges;
          Queue.push w queue
        end)
      g.Graph.out_links.(v)
  done;
  Graph.create ~name:(g.Graph.name ^ "-tree") ~n ~edges:!edges
    ~populations:g.Graph.populations

(* Full mesh over the node set of [g] (paper Table IV). *)
let full_mesh_of (g : Graph.t) =
  let n = g.Graph.n in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~name:(g.Graph.name ^ "-mesh") ~n ~edges:!edges
    ~populations:g.Graph.populations

(* Load a topology from a plain edge-list file: one "u v" pair of node ids
   per line, '#' starts a comment. Node count is max id + 1. Populations
   come from an optional companion file (one weight per line, node order);
   without one, every metro weighs 1. This is how operators plug in their
   own maps (e.g. actual RocketFuel exports) in place of the synthetic
   stand-ins. *)
let load_edge_list ?(name = "edge-list") ?populations_path ~path () =
  let parse_lines path f =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lineno = ref 0 in
        (try
           while true do
             incr lineno;
             let line = input_line ic in
             let line =
               match String.index_opt line '#' with
               | Some i -> String.sub line 0 i
               | None -> line
             in
             let line = String.trim line in
             if line <> "" then f ~lineno:!lineno line
           done
         with End_of_file -> ()))
  in
  let edges = ref [] and max_id = ref (-1) in
  parse_lines path (fun ~lineno line ->
      match
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      with
      | [ u; v ] -> (
          try
            let u = int_of_string u and v = int_of_string v in
            if u <> v then begin
              edges := (u, v) :: !edges;
              max_id := max !max_id (max u v)
            end
          with Failure _ ->
            invalid_arg
              (Printf.sprintf "Topologies.load_edge_list: bad edge on line %d" lineno))
      | _ ->
          invalid_arg
            (Printf.sprintf "Topologies.load_edge_list: bad edge on line %d" lineno));
  if !max_id < 1 then invalid_arg "Topologies.load_edge_list: no edges";
  let n = !max_id + 1 in
  (* Drop duplicate undirected edges (Graph.create rejects them). *)
  let seen = Hashtbl.create (List.length !edges) in
  let edges =
    List.filter
      (fun (u, v) ->
        let key = (min u v, max u v) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      !edges
  in
  let populations =
    match populations_path with
    | None -> Array.make n 1.0
    | Some p ->
        let pops = ref [] in
        parse_lines p (fun ~lineno line ->
            match float_of_string_opt line with
            | Some x when x > 0.0 -> pops := x :: !pops
            | Some _ | None ->
                invalid_arg
                  (Printf.sprintf "Topologies.load_edge_list: bad population on line %d"
                     lineno));
        let arr = Array.of_list (List.rev !pops) in
        if Array.length arr <> n then
          invalid_arg "Topologies.load_edge_list: population count mismatch";
        arr
  in
  Graph.create ~name ~n ~edges ~populations

(* [restrict_to_top g k] keeps the [k] highest-population VHOs of [g] and
   re-generates a backbone over them; used to map the 55 VHO demand onto the
   smaller RocketFuel node counts the way the paper does (Sec. VII-F: "sort
   the VHOs starting with the largest request count and use the top n"). *)
let top_population_nodes (g : Graph.t) k =
  let idx = Array.init g.Graph.n (fun i -> i) in
  Array.sort
    (fun a b -> Float.compare g.Graph.populations.(b) g.Graph.populations.(a))
    idx;
  Array.sub idx 0 k
