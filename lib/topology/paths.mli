(** Fixed shortest-path routing between every pair of VHOs (paper Sec. III:
    a predetermined path [P_ij] per ordered pair; only the set of links on
    the path matters to the MIP, and [P_ii] is empty). *)

type t

(** Precompute all-pairs shortest paths by hop count with deterministic
    tie-breaking. Raises [Invalid_argument] if the graph is disconnected. *)
val compute : Graph.t -> t

(** Same computation restricted to the links for which
    [link_up.(lid) = true] (fault scenarios, lib/resil). Pairs with no
    surviving path get hop count [max_int] and an empty link array
    instead of raising. Raises [Invalid_argument] if [link_up] does not
    have one entry per directed link. *)
val compute_masked : Graph.t -> link_up:bool array -> t

(** [reachable t ~src ~dst] is false only for pairs severed in a
    [compute_masked] result; always true on a [compute] result. *)
val reachable : t -> src:int -> dst:int -> bool

(** Hop count |P_ij|; 0 when [src = dst]; [max_int] when unreachable
    under a mask. *)
val hops : t -> src:int -> dst:int -> int

(** Directed link ids on the fixed path from [src] to [dst], in order;
    the empty array when [src = dst]. *)
val path_links : t -> src:int -> dst:int -> int array

(** Maximum hop count over all ordered pairs. *)
val diameter : t -> int
