(* Fixed inter-VHO routing. The paper assumes a predetermined path between
   every pair of VHOs (shortest-path routing, Sec. III); for the MIP only
   the *set* of links on the path matters. We precompute, for every source
   i, a BFS tree with deterministic tie-breaking (lowest next-hop id) and
   store P_ij as an array of directed link ids. P_ii = [||].

   [compute_masked] is the same computation restricted to the surviving
   links of a fault scenario (lib/resil): unreachable pairs get
   hop = max_int and an empty link array instead of raising. *)

type t = {
  hop : int array array;          (* hop.(i).(j) = |P_ij|; max_int = unreachable *)
  links : int array array array;  (* links.(i).(j) = directed link ids on path i -> j *)
}

let compute_gen ?link_up ~strict (g : Graph.t) =
  let n = g.Graph.n in
  let alive =
    match link_up with None -> fun _ -> true | Some up -> fun lid -> up.(lid)
  in
  let hop = Array.make_matrix n n 0 in
  let links = Array.init n (fun _ -> Array.make n [||]) in
  for src = 0 to n - 1 do
    (* BFS from [src]; parent_link.(v) = link id used to *reach* v. Links
       are traversed in increasing id order, which makes tie-breaking
       deterministic. *)
    let dist = Array.make n max_int in
    let parent_link = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun lid ->
          if alive lid then begin
            let w = (Graph.link g lid).Graph.dst in
            if dist.(w) = max_int then begin
              dist.(w) <- dist.(v) + 1;
              parent_link.(w) <- lid;
              Queue.push w queue
            end
          end)
        g.Graph.out_links.(v)
    done;
    for dst = 0 to n - 1 do
      if dst <> src then begin
        if dist.(dst) = max_int then begin
          if strict then invalid_arg "Paths.compute: graph is not connected";
          hop.(src).(dst) <- max_int
          (* links.(src).(dst) stays [||] *)
        end
        else begin
          hop.(src).(dst) <- dist.(dst);
          (* Walk back from dst to src collecting link ids. *)
          let rec collect v acc =
            if v = src then acc
            else
              let lid = parent_link.(v) in
              collect (Graph.link g lid).Graph.src (lid :: acc)
          in
          links.(src).(dst) <- Array.of_list (collect dst [])
        end
      end
    done
  done;
  { hop; links }

let compute g = compute_gen ~strict:true g

let compute_masked g ~link_up =
  if Array.length link_up <> Graph.n_links g then
    invalid_arg "Paths.compute_masked: link_up size mismatch";
  compute_gen ~link_up ~strict:false g

let reachable t ~src ~dst = t.hop.(src).(dst) <> max_int

let hops t ~src ~dst = t.hop.(src).(dst)

let path_links t ~src ~dst = t.links.(src).(dst)

(* Maximum hop count over all pairs (network diameter under the fixed
   routing). *)
let diameter t =
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 t.hop
