(** Dense two-phase primal simplex with Bland's anti-cycling rule.

    The repository's stand-in for the commercial LP solver the paper uses
    as its baseline (Table III), and the ground-truth oracle for testing
    the decomposition solver on small instances. Suitable for problems up
    to a few thousand nonzeros; the point of the paper — and of this
    reproduction — is precisely that the full placement LP outgrows this
    kind of solver. *)

type rel = Le | Ge | Eq

type constr = {
  row : (int * float) list;  (** sparse (variable, coefficient) pairs *)
  rel : rel;
  rhs : float;
}

type problem = {
  n_vars : int;
  minimize : float array;
  constraints : constr list;
}

type result =
  | Optimal of {
      objective : float;
      solution : float array;
      duals : float array;
          (** One dual price per constraint, in input order, for the
              constraint as written (before any internal sign
              normalization). Convention for a minimization over
              nonnegative variables: [Le] rows have duals <= 0, [Ge]
              rows >= 0, [Eq] rows are free; strong duality holds
              ([objective = sum duals.(i) *. rhs_i]) and so does
              complementary slackness ([duals.(i) *. (activity_i -
              rhs_i) = 0] up to solver tolerance). Redundant rows left
              with a degenerate basic artificial get dual 0. *)
    }
  | Infeasible
  | Unbounded

(** Solve a minimization LP over nonnegative variables.
    Raises [Invalid_argument] if a constraint references a variable outside
    [0, n_vars). *)
val solve : problem -> result
