(* Dense two-phase primal simplex.

   This is the repository's stand-in for the "state-of-the-art commercial
   LP solver" the paper compares against (CPLEX, Sec. V-C / Table III): an
   exact general-purpose solver whose time and memory grow superlinearly
   with instance size, in contrast to the decomposition approach. It is
   also the ground-truth oracle for unit tests of the EPF solver and the
   UFL subproblem solvers on small instances.

   Implementation notes: standard tableau form with Bland's anti-cycling
   rule; phase 1 minimizes the sum of artificial variables, phase 2 the
   user objective. Suitable for instances up to a few thousand nonzeros. *)

type rel = Le | Ge | Eq

type constr = {
  row : (int * float) list;  (* sparse (variable, coefficient) *)
  rel : rel;
  rhs : float;
}

type problem = {
  n_vars : int;
  minimize : float array;   (* objective coefficients, length n_vars *)
  constraints : constr list;
}

type result =
  | Optimal of {
      objective : float;
      solution : float array;
      duals : float array;
    }
  | Infeasible
  | Unbounded

let epsilon = 1e-9

(* Pivot the tableau on (prow, pcol). *)
let pivot tableau basis prow pcol =
  let ncols = Array.length tableau.(0) in
  let nrows = Array.length tableau in
  let p = tableau.(prow).(pcol) in
  for c = 0 to ncols - 1 do
    (* vodlint-disable unguarded-div — both callers select the pivot with
       |tableau.(prow).(pcol)| > epsilon, so p is bounded away from 0. *)
    tableau.(prow).(c) <- tableau.(prow).(c) /. p
  done;
  for r = 0 to nrows - 1 do
    if r <> prow then begin
      let f = tableau.(r).(pcol) in
      if Float.abs f > 0.0 then
        for c = 0 to ncols - 1 do
          tableau.(r).(c) <- tableau.(r).(c) -. (f *. tableau.(prow).(c))
        done
    end
  done;
  basis.(prow) <- pcol

(* Run simplex iterations on a tableau whose last row is the (negated
   reduced cost) objective row and last column is the rhs. Returns [false]
   if unbounded. Bland's rule: entering = lowest-index improving column,
   leaving = lowest-index tie among min ratios. [enter_limit] bounds the
   entering-column scan — phase 2 must exclude the artificial columns or
   they can re-enter the basis and "solve" an infeasible relaxation. *)
let iterate tableau basis ~n_total ~enter_limit =
  let m = Array.length tableau - 1 in
  let obj = tableau.(m) in
  let rec loop () =
    (* Entering column: first with positive coefficient in the objective
       row (we keep the row as z-c, maximizing reduction). *)
    let enter = ref (-1) in
    (try
       for c = 0 to enter_limit - 1 do
         if obj.(c) > epsilon then begin
           enter := c;
           raise Exit
         end
       done
     with Exit -> ());
    if !enter < 0 then true
    else begin
      let pcol = !enter in
      let best_row = ref (-1) and best_ratio = ref infinity in
      for r = 0 to m - 1 do
        let a = tableau.(r).(pcol) in
        if a > epsilon then begin
          let ratio = tableau.(r).(n_total) /. a in
          if
            ratio < !best_ratio -. epsilon
            || (Float.abs (ratio -. !best_ratio) <= epsilon
               && (!best_row < 0 || basis.(r) < basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then false
      else begin
        pivot tableau basis !best_row pcol;
        loop ()
      end
    end
  in
  loop ()

let solve (p : problem) =
  let m = List.length p.constraints in
  (* Normalize: make all right-hand sides nonnegative. [flipped] remembers
     which rows were negated so their duals can be reported in the
     caller's original orientation. *)
  let flipped = Array.make m false in
  let constraints =
    List.mapi
      (fun r c ->
        if c.rhs < 0.0 then begin
          flipped.(r) <- true;
          {
            row = List.map (fun (v, a) -> (v, -.a)) c.row;
            rel = (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.c.rhs;
          }
        end
        else c)
      p.constraints
  in
  (* Column layout: [0, n_vars) structural; then one slack/surplus per
     inequality; then one artificial per Ge/Eq row. *)
  let n_slack = List.length (List.filter (fun c -> c.rel <> Eq) constraints) in
  let n_art = List.length (List.filter (fun c -> c.rel <> Le) constraints) in
  let n_total = p.n_vars + n_slack + n_art in
  let tableau = Array.make_matrix (m + 1) (n_total + 1) 0.0 in
  let basis = Array.make m (-1) in
  let slack_idx = ref p.n_vars in
  let art_idx = ref (p.n_vars + n_slack) in
  let art_cols = ref [] in
  (* Where each row's dual price can be read off the final objective row:
     the column whose original tableau column is (+/-) the unit vector
     e_r with zero cost — slack for Le, surplus (negated) for Ge,
     artificial for Eq. After the phase-2 rebuild, obj_row.(j) equals
     y.A_j - c_j for every column, so that entry is (+/-) y_r. *)
  let dual_col = Array.make m (-1) in
  let dual_sign = Array.make m 1.0 in
  List.iteri
    (fun r c ->
      List.iter
        (fun (v, a) ->
          if v < 0 || v >= p.n_vars then invalid_arg "Simplex.solve: variable out of range";
          tableau.(r).(v) <- tableau.(r).(v) +. a)
        c.row;
      tableau.(r).(n_total) <- c.rhs;
      (match c.rel with
      | Le ->
          tableau.(r).(!slack_idx) <- 1.0;
          basis.(r) <- !slack_idx;
          dual_col.(r) <- !slack_idx;
          incr slack_idx
      | Ge ->
          tableau.(r).(!slack_idx) <- -1.0;
          dual_col.(r) <- !slack_idx;
          dual_sign.(r) <- -1.0;
          incr slack_idx;
          tableau.(r).(!art_idx) <- 1.0;
          basis.(r) <- !art_idx;
          art_cols := !art_idx :: !art_cols;
          incr art_idx
      | Eq ->
          tableau.(r).(!art_idx) <- 1.0;
          basis.(r) <- !art_idx;
          dual_col.(r) <- !art_idx;
          art_cols := !art_idx :: !art_cols;
          incr art_idx))
    constraints;
  let obj_row = tableau.(m) in
  (* Phase 1: minimize the sum of artificials. Objective row holds z - c
     form: start with -sum of artificial columns, then add rows with
     artificial basics to zero out their reduced costs. *)
  if n_art > 0 then begin
    List.iter (fun c -> obj_row.(c) <- -1.0) !art_cols;
    Array.iteri
      (fun r b ->
        if r < m && List.mem b !art_cols then
          for c = 0 to n_total do
            obj_row.(c) <- obj_row.(c) +. tableau.(r).(c)
          done)
      basis;
    if not (iterate tableau basis ~n_total ~enter_limit:n_total) then
      (* Phase 1 objective is bounded below by 0; unbounded is impossible
         unless numerics break. *)
      invalid_arg "Simplex.solve: phase 1 reported unbounded";
    if tableau.(m).(n_total) > 1e-6 then raise Exit
  end;
  (* Drive any artificial still in the basis out (degenerate rows). *)
  Array.iteri
    (fun r b ->
      if r < m && b >= p.n_vars + n_slack then begin
        let found = ref false in
        let c = ref 0 in
        while (not !found) && !c < p.n_vars + n_slack do
          if Float.abs tableau.(r).(!c) > epsilon then begin
            pivot tableau basis r !c;
            found := true
          end;
          incr c
        done
        (* If no pivot exists the row is all-zero (redundant); the
           artificial stays basic at value 0, harmless. *)
      end)
    basis;
  (* Phase 2: rebuild the objective row as z - c and cancel the reduced
     costs of the current basic variables (obj := obj - obj(b) * row_b,
     which zeroes column b since row_b has a unit pivot there). *)
  for c = 0 to n_total do
    obj_row.(c) <- 0.0
  done;
  for v = 0 to p.n_vars - 1 do
    obj_row.(v) <- -.p.minimize.(v)
  done;
  Array.iteri
    (fun r b ->
      if r < m then begin
        let f = obj_row.(b) in
        if Float.abs f > 0.0 then
          for c = 0 to n_total do
            obj_row.(c) <- obj_row.(c) -. (f *. tableau.(r).(c))
          done
      end)
    basis;
  if not (iterate tableau basis ~n_total ~enter_limit:(p.n_vars + n_slack)) then
    Unbounded
  else begin
    let solution = Array.make p.n_vars 0.0 in
    Array.iteri
      (fun r b -> if r < m && b < p.n_vars then solution.(b) <- tableau.(r).(n_total))
      basis;
    let objective = ref 0.0 in
    for v = 0 to p.n_vars - 1 do
      objective := !objective +. (p.minimize.(v) *. solution.(v))
    done;
    (* Dual prices in the caller's original row orientation. Pivots keep
       every column of the tableau current (including artificials), so
       the objective-row entries at [dual_col] are exact. Rows negated
       during normalization flip back here. *)
    let duals =
      Array.init m (fun r ->
          let y = dual_sign.(r) *. obj_row.(dual_col.(r)) in
          if flipped.(r) then -.y else y)
    in
    Optimal { objective = !objective; solution; duals }
  end

let solve p = try solve p with Exit -> Infeasible
