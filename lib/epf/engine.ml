(* The exponential potential function (EPF) / Lagrangian decomposition
   engine — the paper's Appendix, Algorithm 1.

   The engine is generic: a *block* is anything with an [optimize] oracle
   (return the block's best point under given prices) and a [lower_bound]
   oracle (a valid lower bound on the block minimum under given prices).
   For the VoD placement problem, blocks are per-video fractional UFL
   subproblems (built in [Vod_placement.Blocks]); the engine never sees
   videos, disks or links, only abstract coupling rows.

   State per block is a convex combination of oracle points — steps
   z^k <- (1-tau) z^k + tau zhat only ever mix oracle outputs, so z^k stays
   in the block polytope by construction. Aggregate row usage and the
   dense price vector are maintained incrementally, which is what makes a
   full pass linear in total block support size (the paper's Table III
   linear scaling). *)

type 'a point = {
  obj : float;         (* objective contribution c^k z^k *)
  usage : Sparse.t;    (* coupling-row footprint A^k z^k *)
  data : 'a;           (* opaque payload (e.g. the UFL solution) *)
}

type 'a oracle = {
  optimize : obj_price:float -> row_price:float array -> 'a point;
      (* best block point under priced cost obj_price*c + row_price . A *)
  optimize_strong : obj_price:float -> row_price:float array -> 'a point;
      (* slower, higher-quality variant used by rounding and polish; may
         equal [optimize] *)
  lower_bound : row_price:float array -> float;
      (* valid lower bound on min over the block polytope of
         c z + row_price . A z  (objective price normalized to 1) *)
  initial : unit -> 'a point;
      (* a sane starting point whose objective sets the problem's scale;
         for placement blocks, the best single-facility solution *)
}

type params = {
  epsilon : float;           (* target tolerance (paper: 0.01) *)
  gamma : float;             (* exponent factor, ~1 *)
  rho : float;               (* dual smoothing in [0,1) *)
  max_passes : int;
  feasibility_only : bool;   (* ignore the objective row: pure FEAS probe *)
  seed : int;
  line_search_iters : int;
  shuffle : bool;            (* fresh random block order each pass; the
                                paper reports 40x fewer passes vs fixed *)
  polish_passes : int;       (* post-rounding integer improvement sweeps *)
  jobs : int;                (* domain-pool width for the parallel phases;
                                0 = the process default (--jobs / hardware) *)
}

let default_params =
  {
    epsilon = 0.01;
    gamma = 1.0;
    rho = 0.5;
    max_passes = 60;
    feasibility_only = false;
    seed = 1;
    line_search_iters = 24;
    shuffle = true;
    polish_passes = 2;
    jobs = 0;
  }

type 'a outcome = {
  combos : ('a point * float) list array;  (* final convex combo per block *)
  objective : float;
  lower_bound : float;
  max_violation : float;     (* max relative coupling violation *)
  row_usage : float array;
  passes : int;
  epsilon_feasible : bool;
  converged : bool;          (* epsilon-feasible and within (1+eps) of LB *)
  pre_round_objective : float;   (* fractional LP objective before rounding *)
  pre_round_violation : float;   (* max relative violation before rounding *)
  history : (float * float * float) array;
      (* per-pass (objective, lower bound, max violation) trace *)
}

(* exp with a linear extension above the overflow guard: continuous,
   monotone and convex, so the 1-D line search stays well-behaved even
   when a trial step is wildly infeasible. *)
let safe_exp x = if x <= 500.0 then exp x else exp 500.0 *. (x -. 499.0)

let src = Logs.Src.create "vod.epf" ~doc:"EPF decomposition solver"

module Log = (val Logs.src_log src : Logs.LOG)

(* Side-band telemetry (see METRICS.md). Recording is write-only from
   the solver's point of view: the obs-taint lint rule statically
   rejects any read of Obs values under lib/, so nothing here can feed
   back into the numerics, and every call is a no-op unless a registry
   is installed ([--metrics]). *)
module Obs = Vod_obs.Obs

type 'a state = {
  p : params;
  capacities : float array;
  oracles : 'a oracle array;
  combos : ('a point * float) list array;
  blk_obj : float array;
  blk_usage : Sparse.t array;
  usage : float array;             (* dense aggregate row usage *)
  mutable objective : float;
  mutable b_target : float;        (* the objective row's "capacity" B *)
  mutable lb : float;
  mutable delta : float;
  mutable alpha : float;
  prices : float array;            (* pi_i = exp(alpha r_i) / b_i *)
  mutable price_obj : float;       (* pi_0 *)
  mutable scale : float;           (* objective magnitude; floors b_target *)
  mutable ub : float;              (* best epsilon-feasible objective seen *)
  mutable theta : float;           (* target-push factor for the B control *)
  mutable freeze_target : bool;    (* stabilization: stop moving B *)
  smoothed : float array;          (* smoothed duals pi-bar *)
  mutable smoothed_obj : float;
  rng : Vod_util.Rng.t;
  scratch : float array;           (* per-pass buffer for pi-bar / pi-bar_0 *)
  pool : Vod_util.Pool.t;          (* domain pool for the block-parallel phases *)
}

let n_rows st = Array.length st.capacities

let rel_infeas st i = (st.usage.(i) /. st.capacities.(i)) -. 1.0

let obj_infeas st =
  if st.p.feasibility_only then neg_infinity
  else (st.objective /. st.b_target) -. 1.0

let max_coupling_infeas st =
  let m = n_rows st in
  let d = ref neg_infinity in
  for i = 0 to m - 1 do
    let r = rel_infeas st i in
    if r > !d then d := r
  done;
  !d

let refresh_prices st =
  for i = 0 to n_rows st - 1 do
    st.prices.(i) <- safe_exp (st.alpha *. rel_infeas st i) /. st.capacities.(i)
  done;
  st.price_obj <-
    (if st.p.feasibility_only then 0.0
     else safe_exp (st.alpha *. obj_infeas st) /. st.b_target)

let refresh_alpha st =
  let m = float_of_int (n_rows st + 1) in
  (* Floor delta so alpha stays finite as the solution approaches
     feasibility. *)
  let floor_delta = st.p.epsilon /. 4.0 in
  st.delta <- Float.max st.delta floor_delta;
  st.alpha <- st.p.gamma *. log (m +. 1.0) /. st.delta

(* Exact recomputation of per-block caches and aggregates, run once per
   pass to stop incremental drift. *)
let recompute st =
  Array.fill st.usage 0 (n_rows st) 0.0;
  st.objective <- 0.0;
  Array.iteri
    (fun k combo ->
      let u = ref Sparse.empty and o = ref 0.0 in
      List.iter
        (fun ((pt : _ point), w) ->
          u := Sparse.axpby 1.0 !u w pt.usage;
          o := !o +. (w *. pt.obj))
        combo;
      st.blk_usage.(k) <- !u;
      st.blk_obj.(k) <- !o;
      Sparse.add_into st.usage 1.0 !u;
      st.objective <- st.objective +. !o)
    st.combos

(* Potential restricted to the rows touched by a step of size tau along
   (delta_usage, delta_obj); the untouched rows are constant in tau. *)
let local_potential st ~delta_usage ~delta_obj tau =
  let acc = ref 0.0 in
  Sparse.iter
    (fun i dv ->
      let u = st.usage.(i) +. (tau *. dv) in
      acc := !acc +. safe_exp (st.alpha *. ((u /. st.capacities.(i)) -. 1.0)))
    delta_usage;
  if not st.p.feasibility_only then begin
    let o = st.objective +. (tau *. delta_obj) in
    acc := !acc +. safe_exp (st.alpha *. ((o /. st.b_target) -. 1.0))
  end;
  !acc

(* Ternary search for the minimizing step size; the potential along a
   segment is a sum of convex functions of tau, hence convex. *)
let line_search st ~delta_usage ~delta_obj =
  let f = local_potential st ~delta_usage ~delta_obj in
  let lo = ref 0.0 and hi = ref 1.0 in
  for _ = 1 to st.p.line_search_iters do
    let m1 = !lo +. ((!hi -. !lo) /. 3.0) in
    let m2 = !hi -. ((!hi -. !lo) /. 3.0) in
    if f m1 <= f m2 then hi := m2 else lo := m1
  done;
  let tau = 0.5 *. (!lo +. !hi) in
  (* The endpoints are often optimal (fully adopt / fully reject); pick
     the best of the three to avoid ternary-search dithering. *)
  let candidates = [ 0.0; tau; 1.0 ] in
  List.fold_left
    (fun best t -> if f t < f best then t else best)
    0.0 candidates

(* Drop negligible-weight points and cap the combination size (keeping the
   heaviest); renormalizing keeps the iterate a convex combination of
   block points, i.e. inside the block polytope. Without the cap, small
   line-search steps would grow combos by one point per pass forever. *)
let max_combo_points = 20

let prune_combo combo =
  let kept = List.filter (fun (_, w) -> w > 2e-3) combo in
  let kept =
    if List.length kept <= max_combo_points then kept
    else begin
      let sorted = List.sort (fun (_, w1) (_, w2) -> Float.compare w2 w1) kept in
      List.filteri (fun i _ -> i < max_combo_points) sorted
    end
  in
  let total = List.fold_left (fun s (_, w) -> s +. w) 0.0 kept in
  if total <= 0.0 then combo
  else List.map (fun (p, w) -> (p, w /. total)) kept

type pass_stats = {
  mutable steps : int;        (* blocks that moved *)
  mutable tau_sum : float;
  mutable skipped : int;      (* oracle returned the current point *)
}

let step_block ?stats st k =
  let oracle = st.oracles.(k) in
  let hat = oracle.optimize ~obj_price:st.price_obj ~row_price:st.prices in
  let delta_usage = Sparse.sub hat.usage st.blk_usage.(k) in
  let delta_obj = hat.obj -. st.blk_obj.(k) in
  if Array.length delta_usage = 0 && Float.abs delta_obj < 1e-12 then
    Option.iter (fun s -> s.skipped <- s.skipped + 1) stats
  else begin
    let tau = line_search st ~delta_usage ~delta_obj in
    Option.iter
      (fun s ->
        if tau > 1e-9 then begin
          s.steps <- s.steps + 1;
          s.tau_sum <- s.tau_sum +. tau
        end)
      stats;
    if tau > 1e-9 then begin
      let combo =
        List.map (fun (p, w) -> (p, w *. (1.0 -. tau))) st.combos.(k)
      in
      let pruned = prune_combo ((hat, tau) :: combo) in
      if Obs.active () then
        Obs.incr
          ~by:(List.length combo + 1 - List.length pruned)
          "epf/combo/pruned_points";
      st.combos.(k) <- pruned;
      st.blk_usage.(k) <- Sparse.axpby (1.0 -. tau) st.blk_usage.(k) tau hat.usage;
      st.blk_obj.(k) <- ((1.0 -. tau) *. st.blk_obj.(k)) +. (tau *. hat.obj);
      st.objective <- st.objective +. (tau *. delta_obj);
      (* Incremental aggregate + price update on the touched rows only. *)
      Sparse.iter
        (fun i dv ->
          st.usage.(i) <- st.usage.(i) +. (tau *. dv);
          st.prices.(i) <-
            safe_exp (st.alpha *. rel_infeas st i) /. st.capacities.(i))
        delta_usage;
      if not st.p.feasibility_only then
        st.price_obj <- safe_exp (st.alpha *. obj_infeas st) /. st.b_target
    end
  end

(* Lagrangian lower-bound pass with the smoothed duals (Algorithm 1,
   step 15): LR(lambda) = sum_k min_block (c + lambda A / lambda_0) z
                          - (lambda_R . b) / lambda_0. *)
(* Evaluate the Lagrangian bound LR(lambda) for multipliers
   lambda_i = mult * duals_i / duals_obj, and fold it into st.lb. Any
   nonnegative multipliers yield a valid bound. *)
let try_duals st ?(mult = 1.0) duals duals_obj =
  if duals_obj > 0.0 then begin
    let m = n_rows st in
    for i = 0 to m - 1 do
      st.scratch.(i) <- mult *. duals.(i) /. duals_obj
    done;
    (* The per-block bounds are independent given the (now frozen)
       multiplier vector, so this sweep fans out across the pool; the
       sum is folded in block order in the submitting domain, keeping
       the float rounding — hence the reported bound — bit-identical
       at any job count. *)
    let sum = ref
      (Vod_util.Pool.map_reduce st.pool ~n:(Array.length st.oracles)
         ~map:(fun k -> st.oracles.(k).lower_bound ~row_price:st.scratch)
         ~init:0.0 ~combine:( +. ))
    in
    for i = 0 to m - 1 do
      sum := !sum -. (st.scratch.(i) *. st.capacities.(i))
    done;
    if !sum > st.lb then st.lb <- !sum
  end

let lower_bound_pass st =
  if st.p.feasibility_only then ()
  else
    Obs.phase "lb" (fun () ->
        (* Both the smoothed duals (Algorithm 1) and the instantaneous
           ones are valid multipliers; take the better bound. *)
        try_duals st st.smoothed st.smoothed_obj;
        try_duals st st.prices st.price_obj)

(* Objective-target control. The paper sets B <- LB, which works when the
   block lower bounds are near-exact; with heuristic dual-ascent bounds
   (often 10-25% weak) that would pin the objective row's violation r_0 at
   the duality gap, and the coupling rows equalize to r_0 — a permanent
   infeasibility plateau. Instead B trails the achievable objective like a
   trust region: when the iterate is epsilon-feasible, push B a notch
   below the current objective; when infeasible, back off. LB remains a
   hard floor, and the reported optimality gap is still measured against
   the true Lagrangian bound. *)
let update_target st ~dc =
  if st.freeze_target then refresh_prices st
  else if not st.p.feasibility_only then begin
    if dc <= st.p.epsilon then begin
      if st.objective < st.ub then st.ub <- st.objective;
      st.theta <- Float.min 0.20 (st.theta *. 1.5);
      st.b_target <- Float.max st.lb (st.objective *. (1.0 -. st.theta))
    end
    else if dc <= 3.0 *. st.p.epsilon then
      (* Mild overshoot: keep pushing, half strength. *)
      st.b_target <- Float.max st.lb (st.objective *. (1.0 -. (st.theta /. 2.0)))
    else begin
      st.theta <- Float.max 0.01 (st.theta /. 2.0);
      st.b_target <-
        Float.max st.lb (Float.min (st.b_target *. 1.05) st.objective)
    end;
    st.b_target <- Float.max st.b_target (0.01 *. st.scale);
    (* Pushing B below the current objective makes the objective row
       "violated" by ~theta; the temperature must match that scale or the
       potential is too stiff for any mass to migrate and the iterate
       freezes. Re-derive prices since delta/B changed. *)
    let r0 = (st.objective /. st.b_target) -. 1.0 in
    if r0 > st.delta then begin
      st.delta <- r0;
      refresh_alpha st
    end;
    refresh_prices st
  end

(* Per-pass solver telemetry: the convergence series the paper reasons
   with (Sec. VI) — objective, Lagrangian bound, relative gap, max and
   count of violated rows, and the exact potential. Guarded because
   the potential evaluation is a full O(m) sweep worth paying only
   when metrics are being collected. *)
let record_pass_metrics st ~dc =
  if Obs.active () then begin
    Obs.incr "epf/passes";
    Obs.push "epf/pass/objective" st.objective;
    Obs.push "epf/pass/lower_bound" st.lb;
    Obs.push "epf/pass/gap"
      (if st.lb > 0.0 then (st.objective -. st.lb) /. st.lb else 0.0);
    Obs.push "epf/pass/violation" (Float.max dc 0.0);
    let viol = ref 0 in
    for i = 0 to n_rows st - 1 do
      if rel_infeas st i > st.p.epsilon then viol := !viol + 1
    done;
    Obs.push "epf/pass/violated_rows" (float_of_int !viol);
    let pot = ref 0.0 in
    for i = 0 to n_rows st - 1 do
      pot := !pot +. safe_exp (st.alpha *. rel_infeas st i)
    done;
    if not st.p.feasibility_only then
      pot := !pot +. safe_exp (st.alpha *. obj_infeas st);
    Obs.push "epf/pass/potential" !pot
  end

let update_smoothed st =
  let rho = st.p.rho in
  for i = 0 to n_rows st - 1 do
    st.smoothed.(i) <- (rho *. st.smoothed.(i)) +. ((1.0 -. rho) *. st.prices.(i))
  done;
  st.smoothed_obj <- (rho *. st.smoothed_obj) +. ((1.0 -. rho) *. st.price_obj)

let init ?initial (p : params) ~pool ~capacities ~oracles =
  Array.iter
    (fun b -> if b <= 0.0 then invalid_arg "Engine: capacities must be positive")
    capacities;
  if Array.length oracles = 0 then invalid_arg "Engine: no blocks";
  let m = Array.length capacities in
  let zero_prices = Array.make m 0.0 in
  (* Initial points are independent per block (each is a UFL solve under
     the same warm-start prices), so construct them in parallel; the
     result array is in block order by the pool contract. A caller that
     already holds a good point per block (an incumbent placement being
     re-solved by the daemon) passes [initial] and skips the oracle
     sweep entirely — the engine then starts its descent from the
     incumbent instead of the single-facility points. *)
  let combos =
    match initial with
    | Some (points : _ point array) ->
        if Array.length points <> Array.length oracles then
          invalid_arg "Engine: initial points/oracles length mismatch";
        Array.map (fun pt -> [ (pt, 1.0) ]) points
    | None ->
        Vod_util.Pool.map pool
          ~f:(fun (oracle : _ oracle) -> [ (oracle.initial (), 1.0) ])
          oracles
  in
  let st =
    {
      p;
      capacities;
      oracles;
      combos;
      blk_obj = Array.make (Array.length oracles) 0.0;
      blk_usage = Array.make (Array.length oracles) Sparse.empty;
      usage = Array.make m 0.0;
      objective = 0.0;
      b_target = 1.0;
      lb = 0.0;
      delta = 1.0;
      alpha = 1.0;
      prices = Array.make m 0.0;
      price_obj = 0.0;
      scale = 1.0;
      ub = infinity;
      theta = 0.10;
      freeze_target = false;
      smoothed = Array.make m 0.0;
      smoothed_obj = 0.0;
      rng = Vod_util.Rng.create p.seed;
      scratch = Array.make m 0.0;
      pool;
    }
  in
  recompute st;
  (* The initial (single-facility) objective is the natural magnitude of
     the problem: it upper-bounds OPT's order and anchors B until real
     Lagrangian bounds arrive. *)
  st.scale <- Float.max st.objective 1e-9;
  (* Initial lower bound: all multipliers zero relaxes every coupling
     constraint, so the sum of unpriced block minima is valid. *)
  if not p.feasibility_only then begin
    st.lb <-
      Vod_util.Pool.map_reduce pool ~n:(Array.length oracles)
        ~map:(fun k -> oracles.(k).lower_bound ~row_price:zero_prices)
        ~init:0.0 ~combine:( +. );
    st.b_target <- Float.max st.lb st.scale
  end;
  st.delta <- Float.max (max_coupling_infeas st) p.epsilon;
  refresh_alpha st;
  refresh_prices st;
  Array.blit st.prices 0 st.smoothed 0 m;
  st.smoothed_obj <- st.price_obj;
  st

(* One full pass over all blocks in a fresh random order (the paper found
   reshuffling each pass cuts the pass count by 40x versus a fixed
   order).

   This pass is deliberately NOT parallelized: it is a Gauss-Seidel
   sweep, in which each block's oracle call prices in the usage shifts
   of every block stepped before it in this same pass. That immediate
   feedback is what makes a handful of passes suffice (a Jacobi-style
   variant — all oracle calls at frozen prices, then merge — needs far
   more passes and oscillates on tight rows, negating the parallel
   win). The parallel phases are the ones that are price-frozen by
   construction: initial-point construction, the Lagrangian
   lower-bound sweeps, and the rounding/polish candidate oracles. *)
let run_pass st =
  Obs.phase "pass" @@ fun () ->
  let n = Array.length st.oracles in
  let order =
    if st.p.shuffle then Vod_util.Rng.permutation st.rng n
    else Array.init n (fun i -> i)
  in
  let stats = { steps = 0; tau_sum = 0.0; skipped = 0 } in
  Array.iter (fun k -> step_block ~stats st k) order;
  Log.debug (fun m ->
      m "  steps=%d avg_tau=%.4f skipped=%d price_obj=%.3g" stats.steps
        (if stats.steps = 0 then 0.0 else stats.tau_sum /. float_of_int stats.steps)
        stats.skipped st.price_obj);
  recompute st;
  let dc = max_coupling_infeas st in
  (* Delta schedule: ratchet the scale down by a constant factor each
     pass (the paper's phased delta-shrink), but never below the current
     coupling infeasibility would warrant — if the iterate overshoots and
     violations grow, delta re-expands so the line searches don't freeze
     under an overly stiff exponent. The objective row's relative gap is
     excluded: with a heuristic (dual-ascent) lower bound it can stay at
     tens of percent, and pinning alpha to it would stall the feasibility
     drive. *)
  let floor = if st.freeze_target then st.p.epsilon else st.p.epsilon /. 4.0 in
  let target = Float.max dc floor in
  st.delta <- Float.max (Float.min target (0.90 *. st.delta)) floor;
  st.delta <- Float.max st.delta (0.25 *. target);
  refresh_alpha st;
  refresh_prices st;
  update_smoothed st;
  lower_bound_pass st;
  update_target st ~dc;
  record_pass_metrics st ~dc;
  dc

(* Rounding pass (paper Sec. V-D). Every fractional block (a combination
   of >1 points) is snapped to one integral point, in random order, with
   prices updated as loads shift. For each block we consider its own combo
   points — each was a block optimum at some stage — plus a fresh oracle
   point at current prices, and pick the candidate with the lowest priced
   cost. Snapping to combo members keeps the rounded solution close to
   the fractional one, which is what keeps the post-rounding violation
   small (the paper reports < 1-4%). *)
let round_pass ?(only_fractional = true) st =
  Obs.phase "round" @@ fun () ->
  Obs.incr "epf/round/passes";
  let snap k (hat : _ point) =
    Obs.incr "epf/round/snaps";
    Sparse.add_into st.usage (-1.0) st.blk_usage.(k);
    Sparse.add_into st.usage 1.0 hat.usage;
    st.objective <- st.objective -. st.blk_obj.(k) +. hat.obj;
    (* Update prices on every touched row so later blocks see the shift. *)
    let refresh_row i _ =
      st.prices.(i) <- safe_exp (st.alpha *. rel_infeas st i) /. st.capacities.(i)
    in
    Sparse.iter refresh_row st.blk_usage.(k);
    Sparse.iter refresh_row hat.usage;
    st.combos.(k) <- [ (hat, 1.0) ];
    st.blk_usage.(k) <- hat.usage;
    st.blk_obj.(k) <- hat.obj
  in
  (* A candidate's merit is the *actual* potential after a full (tau = 1)
     step to it — not its linearized priced cost. The linearization is
     blind to how a multi-copy point shifts row loads past capacity
     (prices are frozen inside one oracle call), which is exactly how a
     popular video could overflow disks during rounding. *)
  let merit k (pt : _ point) =
    let delta_usage = Sparse.sub pt.usage st.blk_usage.(k) in
    let delta_obj = pt.obj -. st.blk_obj.(k) in
    (* Potential *change* of the full step: candidates touch different row
       sets, so raw local potentials are not comparable. *)
    local_potential st ~delta_usage ~delta_obj 1.0
    -. local_potential st ~delta_usage ~delta_obj 0.0
  in
  Log.debug (fun m ->
      m "round: alpha=%.1f delta=%.4f price_obj=%.4g b_target=%.6g obj=%.6g"
        st.alpha st.delta st.price_obj st.b_target st.objective);
  let order = Vod_util.Rng.permutation st.rng (Array.length st.oracles) in
  (* The fresh [optimize_strong] candidates — the expensive part of
     rounding — are computed for every block this pass will consider,
     in parallel, at the pass-entry prices. The snap loop itself stays
     sequential: each snap's merit is the exact potential change under
     the *live* row usage, so blocks still see earlier snaps' load
     shifts and cannot jointly overflow a row. Freezing the candidate
     prices (rather than re-pricing per snap) is what makes the result
     independent of the job count; the combo points, each a block
     optimum from some earlier pass, still anchor the candidate set. *)
  let wants_fresh k =
    match st.combos.(k) with [] | [ _ ] -> not only_fractional | _ -> true
  in
  let considered =
    let acc = ref [] in
    for k = Array.length st.oracles - 1 downto 0 do
      if wants_fresh k then acc := k :: !acc
    done;
    Array.of_list !acc
  in
  let fresh_of = Array.make (Array.length st.oracles) None in
  let fresh_pts =
    Vod_util.Pool.map st.pool
      ~f:(fun k ->
        st.oracles.(k).optimize_strong ~obj_price:st.price_obj
          ~row_price:st.prices)
      considered
  in
  Array.iteri (fun i k -> fresh_of.(k) <- Some fresh_pts.(i)) considered;
  if Obs.active () then
    Obs.incr ~by:(Array.length considered) "epf/round/fresh_candidates";
  Array.iter
    (fun k ->
      let consider combo =
        (* [wants_fresh k] held when the candidates were precomputed,
           so the slot is filled. *)
        let fresh = Option.get fresh_of.(k) in
        let fresh_m = merit k fresh in
        if Obs.active () then Obs.observe "epf/round/candidate_merit" fresh_m;
        let best, best_m =
          List.fold_left
            (fun (bp, bm) (pt, _) ->
              let m = merit k pt in
              if Obs.active () then Obs.observe "epf/round/candidate_merit" m;
              if m < bm then (pt, m) else (bp, bm))
            (fresh, fresh_m)
            combo
        in
        (* On an already-integral block only snap strict improvements. *)
        if List.length combo > 1 || best_m < -1e-9 then snap k best
      in
      match st.combos.(k) with
      | [] | [ _ ] -> if not only_fractional then consider st.combos.(k)
      | combo -> consider combo)
    order

(* Post-rounding polish: a few sweeps in which *every* block may snap to a
   fresh oracle point if that strictly decreases the potential — a cheap
   large-neighborhood descent on the integer solution. *)
let polish st =
  Obs.phase "polish" @@ fun () ->
  for _ = 1 to st.p.polish_passes do
    round_pass ~only_fractional:false st;
    recompute st;
    refresh_prices st
  done

let outcome_of_state st ~passes ~pre_round_objective ~pre_round_violation ~history =
  let dc = max_coupling_infeas st in
  let eps_feasible = dc <= st.p.epsilon in
  let converged =
    eps_feasible
    && (st.p.feasibility_only
       || st.objective <= (1.0 +. st.p.epsilon) *. Float.max st.lb 1e-12
       || st.objective <= st.lb +. 1e-9)
  in
  {
    combos = st.combos;
    objective = st.objective;
    lower_bound = st.lb;
    max_violation = Float.max dc 0.0;
    row_usage = Array.copy st.usage;
    passes;
    epsilon_feasible = eps_feasible;
    converged;
    pre_round_objective;
    pre_round_violation;
    history;
  }

let solve ?(round = true) ?initial (p : params) ~capacities ~oracles =
  (* One pool for the whole solve; workers park between parallel
     phases, so the sequential Gauss-Seidel passes pay nothing for it. *)
  Vod_util.Pool.with_pool ~jobs:p.jobs (fun pool ->
  let st =
    Obs.phase "init" (fun () -> init ?initial p ~pool ~capacities ~oracles)
  in
  let passes = ref 0 in
  let stop = ref false in
  (* Plateau detection: once epsilon-feasible, keep squeezing the
     objective until it stops improving meaningfully. *)
  let best_obj = ref infinity and last_improve = ref 0 in
  let history = ref [] in
  let patience = 10 in
  while (not !stop) && !passes < p.max_passes do
    incr passes;
    let dc = run_pass st in
    history := (st.objective, st.lb, Float.max dc 0.0) :: !history;
    Log.debug (fun m ->
        m "pass %d: obj=%.6g lb=%.6g ub=%.6g viol=%.4f delta=%.4f" !passes
          st.objective st.lb st.ub dc st.delta);
    if st.objective < !best_obj *. (1.0 -. (p.epsilon /. 4.0)) then begin
      best_obj := st.objective;
      last_improve := !passes
    end;
    if dc <= p.epsilon then begin
      if p.feasibility_only then stop := true
      else if st.objective <= (1.0 +. p.epsilon) *. Float.max st.lb 1e-12 then
        stop := true
      else if !passes - !last_improve >= patience then stop := true
    end
  done;
  (* Stabilization: relax the objective target to the best achieved value
     and run a few passes so the iterate returns inside the epsilon band
     before rounding (the push phase deliberately leaves it oscillating
     around it). *)
  if not p.feasibility_only then begin
    st.freeze_target <- true;
    st.b_target <-
      Float.max
        (Float.max st.lb (st.objective *. 1.01))
        (0.01 *. st.scale);
    st.delta <- Float.max st.delta p.epsilon;
    refresh_alpha st;
    refresh_prices st;
    for _ = 1 to 3 do
      ignore (run_pass st)
    done;
    Log.debug (fun m ->
        m "stabilized: obj=%.6g viol=%.4f" st.objective
          (max_coupling_infeas st))
  end;
  (* Final bound sweep: the multipliers the run converged to may be off
     by a uniform scale (the B control distorts pi_0); probing a grid of
     scalings often recovers several percent of the bound. *)
  if not p.feasibility_only then
    Obs.phase "final_lb" (fun () ->
        List.iter
          (fun mult -> try_duals st ~mult st.smoothed st.smoothed_obj)
          [ 0.25; 0.5; 2.0; 4.0; 8.0; 16.0; 32.0 ]);
  let pre_round_objective = st.objective in
  let pre_round_violation = Float.max (max_coupling_infeas st) 0.0 in
  if round && not p.feasibility_only then begin
    round_pass st;
    recompute st;
    refresh_prices st;
    polish st
  end;
  outcome_of_state st ~passes:!passes ~pre_round_objective ~pre_round_violation
    ~history:(Array.of_list (List.rev !history)))
