(* Sparse nonnegative row-usage vectors, represented as (row, value) arrays
   sorted by row id. These are the block solutions' footprints on the
   coupling constraints; supports stay tiny (a video touches its disk rows
   and the links on a handful of paths), so merge-based arithmetic wins
   over hashing. *)

type t = (int * float) array

let empty : t = [||]

let of_assoc l =
  (* Combine duplicate rows, drop zeros, sort by row. *)
  let tbl = Hashtbl.create (List.length l) in
  List.iter
    (fun (r, v) ->
      if v <> 0.0 then
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl r) in
        Hashtbl.replace tbl r (cur +. v))
    l;
  let arr = Array.of_seq (Hashtbl.to_seq tbl) in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  arr

(* [axpby a x b y] = a*x + b*y as a fresh sorted sparse vector. *)
let axpby a (x : t) b (y : t) : t =
  let nx = Array.length x and ny = Array.length y in
  let out = ref [] in
  let push r v = if Float.abs v > 1e-15 then out := (r, v) :: !out in
  let i = ref 0 and j = ref 0 in
  while !i < nx || !j < ny do
    if !j >= ny || (!i < nx && fst x.(!i) < fst y.(!j)) then begin
      let r, v = x.(!i) in
      push r (a *. v);
      incr i
    end
    else if !i >= nx || fst y.(!j) < fst x.(!i) then begin
      let r, v = y.(!j) in
      push r (b *. v);
      incr j
    end
    else begin
      let r, vx = x.(!i) and _, vy = y.(!j) in
      push r ((a *. vx) +. (b *. vy));
      incr i;
      incr j
    end
  done;
  let arr = Array.of_list !out in
  Array.sort (fun (p, _) (q, _) -> Int.compare p q) arr;
  arr

let sub x y = axpby 1.0 x (-1.0) y

let scale a x = Array.map (fun (r, v) -> (r, a *. v)) x

(* Add [x] into the dense accumulator [acc], scaled by [a]. *)
let add_into acc a (x : t) =
  Array.iter (fun (r, v) -> acc.(r) <- acc.(r) +. (a *. v)) x

(* Dot product with a dense price vector. *)
let dot prices (x : t) =
  Array.fold_left (fun s (r, v) -> s +. (prices.(r) *. v)) 0.0 x

let iter f (x : t) = Array.iter (fun (r, v) -> f r v) x

let support (x : t) = Array.map fst x
