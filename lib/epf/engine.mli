(** Exponential-potential-function / Lagrangian decomposition engine
    (the paper's Appendix, Algorithm 1), generic over block oracles.

    The engine solves
      min c z  s.t.  A z <= b,  z in F^1 x ... x F^K
    where each block polytope F^k is only accessible through two oracles:
    one returning the block's best point under given prices, one returning
    a valid lower bound on the priced block minimum. Steps form convex
    combinations of oracle points, so iterates stay inside the block
    polytopes by construction; the reported [lower_bound] is a genuine
    Lagrangian bound, so the final optimality gap is trustworthy. *)

type 'a point = {
  obj : float;        (** objective contribution c^k z^k *)
  usage : Sparse.t;   (** coupling-row footprint A^k z^k *)
  data : 'a;          (** opaque payload (e.g. a UFL solution) *)
}

type 'a oracle = {
  optimize : obj_price:float -> row_price:float array -> 'a point;
  optimize_strong : obj_price:float -> row_price:float array -> 'a point;
      (** slower, higher-quality variant used by rounding and polish; may
          equal [optimize] *)
  lower_bound : row_price:float array -> float;
  initial : unit -> 'a point;
      (** a sane starting point whose objective sets the problem scale —
          for placement blocks, the best single-facility solution *)
}

type params = {
  epsilon : float;          (** feasibility/optimality tolerance (paper: 1%) *)
  gamma : float;            (** exponent factor, approximately 1 *)
  rho : float;              (** dual smoothing factor in [0, 1) *)
  max_passes : int;
  feasibility_only : bool;  (** drop the objective row: pure FEAS probe *)
  seed : int;
  line_search_iters : int;
  shuffle : bool;
      (** re-randomize the block order every pass (the paper credits this
          with a 40x reduction in pass count vs a fixed order) *)
  polish_passes : int;
      (** post-rounding sweeps in which any block may snap to a fresh
          oracle point that strictly decreases the potential *)
  jobs : int;
      (** width of the domain pool used for the block-parallel phases
          (initial points, Lagrangian lower-bound sweeps, rounding /
          polish candidate oracles); [0] = the process default
          ({!Vod_util.Pool.default_jobs}). The price-update passes stay
          sequential (Gauss-Seidel). Every result — objective, lower
          bound, violation, rounded placement — is bit-identical at any
          job count for a fixed [seed]. *)
}

(** epsilon = 0.01, gamma = 1, rho = 0.5, 60 passes, 24 line-search
    iterations, shuffling on, 2 polish passes, jobs = 0 (process
    default). *)
val default_params : params

type 'a outcome = {
  combos : ('a point * float) list array;
      (** final convex combination per block; singleton lists after
          rounding *)
  objective : float;
  lower_bound : float;      (** valid Lagrangian lower bound on OPT *)
  max_violation : float;    (** max relative coupling-constraint violation *)
  row_usage : float array;  (** aggregate usage per coupling row *)
  passes : int;
  epsilon_feasible : bool;
  converged : bool;
  pre_round_objective : float;
      (** fractional LP objective before the rounding pass *)
  pre_round_violation : float;
      (** max relative violation before the rounding pass *)
  history : (float * float * float) array;
      (** per-pass (objective, lower bound, max violation) convergence
          trace, for diagnostics and the ablation benches *)
}

(** [solve ?round ?initial p ~capacities ~oracles] runs randomized
    block-descent passes until epsilon-feasible and epsilon-optimal (or
    [max_passes]), then — unless [round:false] or [feasibility_only] —
    snaps every fractional block to a single integral oracle point
    (paper Sec. V-D). [initial], when given, supplies one starting
    point per block (same order and length as [oracles]) in place of
    the per-block [oracle.initial] sweep — the warm-start entry used by
    the online re-placement daemon to begin the descent from the
    incumbent placement. Raises [Invalid_argument] on nonpositive
    capacities, an empty block list, or an [initial] array whose length
    differs from [oracles]. *)
val solve :
  ?round:bool ->
  ?initial:'a point array ->
  params ->
  capacities:float array ->
  oracles:'a oracle array ->
  'a outcome

(** Linear-extension exp used by the potential (exposed for tests). *)
val safe_exp : float -> float
