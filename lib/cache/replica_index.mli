(** Global replica directory — the paper's "Oracle" that tells every
    scheme the nearest location currently holding a copy (Sec. VII-A). *)

type t

val create : n_videos:int -> t

(** Register a holder (idempotent). *)
val add : t -> video:int -> vho:int -> unit

(** Remove a holder (no-op if absent). *)
val remove : t -> video:int -> vho:int -> unit

(** Current holders of a video. *)
val holders : t -> video:int -> int list

val holds : t -> video:int -> vho:int -> bool

(** Nearest holder by hop count; [None] if the video has no copy.
    Ties on hop count break deterministically to the lowest VHO id,
    independent of holder insertion order. *)
val nearest : t -> Vod_topology.Paths.t -> video:int -> vho:int -> int option
