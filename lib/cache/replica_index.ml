(* Global replica directory: which VHOs currently hold a copy of each
   video (pinned or cached). This is the paper's *Oracle* (Sec. VII-A):
   the caching baselines are always told the nearest location with a copy,
   giving them their best case. *)

type t = {
  holders : int list array;  (* per video, unsorted small list *)
}

let create ~n_videos = { holders = Array.make n_videos [] }

let add t ~video ~vho =
  if not (List.mem vho t.holders.(video)) then
    t.holders.(video) <- vho :: t.holders.(video)

let remove t ~video ~vho =
  t.holders.(video) <- List.filter (fun i -> i <> vho) t.holders.(video)

let holders t ~video = t.holders.(video)

let holds t ~video ~vho = List.mem vho t.holders.(video)

(* Nearest holder by hop count under the fixed routing; [None] when the
   video has no copy anywhere. Ties on hop count break to the lowest VHO
   id, so the result is independent of the (insertion-ordered) holder
   list — the failover router in lib/resil inherits this ordering. *)
let nearest t (paths : Vod_topology.Paths.t) ~video ~vho =
  List.fold_left
    (fun best i ->
      let h = Vod_topology.Paths.hops paths ~src:i ~dst:vho in
      match best with
      | Some (bi, bh) when bh < h || (bh = h && bi < i) -> best
      | Some _ | None -> Some (i, h))
    None t.holders.(video)
  |> Option.map fst
