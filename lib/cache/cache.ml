(* A single VHO's dynamic cache (LRU, LFU, or LRFU) with stream locking.

   The paper's Sec. IV argument against plain caching hinges on two
   realities this implementation models: (1) a video being streamed must
   stay cached for its whole playback, so entries carry a [busy_until]
   horizon and cannot be evicted before it; (2) when every resident entry
   is busy, an incoming video is *not cachable* (Fig. 9's "no space"
   requests) and must be streamed remotely without caching.

   LRFU is the recency/frequency spectrum of Lee et al. (cited as [18] by
   the paper): each entry carries a combined-recency-frequency value
   C = sum over hits of 2^(-lambda * age); lambda -> 0 degenerates to LFU
   and lambda -> 1 to LRU. Ages are measured on the cache's logical access
   clock. *)

type policy = Lru | Lfu | Lrfu of float

type entry = {
  size_gb : float;
  mutable last_use : int;     (* logical clock for LRU ordering *)
  mutable freq : int;         (* in-cache hit count for LFU *)
  mutable crf : float;        (* combined recency-frequency for LRFU *)
  mutable busy_until : float; (* latest stream-end among active plays *)
}

type t = {
  policy : policy;
  capacity_gb : float;
  mutable used_gb : float;
  mutable clock : int;
  entries : (int, entry) Hashtbl.t;  (* video -> entry *)
  (* Side-band metric names, precomputed once so the hot path never
     allocates them (Obs calls are no-ops unless --metrics is on). *)
  m_hits : string;
  m_misses : string;
  m_inserts : string;
  m_evictions : string;
  m_stream_locked : string;
  m_too_big : string;
}

module Obs = Vod_obs.Obs

let policy_tag = function Lru -> "lru" | Lfu -> "lfu" | Lrfu _ -> "lrfu"

let create ~policy ~capacity_gb =
  if capacity_gb < 0.0 then invalid_arg "Cache.create: negative capacity";
  (match policy with
  | Lrfu lambda when lambda <= 0.0 || lambda > 1.0 ->
      invalid_arg "Cache.create: LRFU lambda must be in (0, 1]"
  | Lrfu _ | Lru | Lfu -> ());
  let p = "cache/" ^ policy_tag policy in
  {
    policy;
    capacity_gb;
    used_gb = 0.0;
    clock = 0;
    entries = Hashtbl.create 64;
    m_hits = p ^ "/hits";
    m_misses = p ^ "/misses";
    m_inserts = p ^ "/inserts";
    m_evictions = p ^ "/evictions";
    m_stream_locked = p ^ "/stream_locked";
    m_too_big = p ^ "/too_big";
  }

(* Decayed combined-recency-frequency value of an entry as of the current
   clock. *)
let crf_now t e ~lambda =
  e.crf *. (2.0 ** (-.lambda *. float_of_int (t.clock - e.last_use)))

let capacity_gb t = t.capacity_gb

let used_gb t = t.used_gb

let size t = Hashtbl.length t.entries

let mem t video = Hashtbl.mem t.entries video

(* Record a cache hit: bump recency/frequency and extend the stream lock
   to [busy_until]. *)
let touch t video ~busy_until =
  match Hashtbl.find_opt t.entries video with
  | None ->
      Obs.incr t.m_misses;
      false
  | Some e ->
      Obs.incr t.m_hits;
      t.clock <- t.clock + 1;
      (match t.policy with
      | Lrfu lambda -> e.crf <- 1.0 +. crf_now t e ~lambda
      | Lru | Lfu -> ());
      e.last_use <- t.clock;
      e.freq <- e.freq + 1;
      if busy_until > e.busy_until then e.busy_until <- busy_until;
      true

(* Eviction preference: LRU = least-recent first; LFU = least-frequent
   first, recency as tie-break. Only entries idle at [now] are
   candidates. *)
let victim t ~now =
  let best = ref None in
  Hashtbl.iter
    (fun video e ->
      if e.busy_until <= now then
        let better =
          match !best with
          | None -> true
          | Some (_, b) -> (
              match t.policy with
              | Lru -> e.last_use < b.last_use
              | Lfu -> e.freq < b.freq || (e.freq = b.freq && e.last_use < b.last_use)
              | Lrfu lambda ->
                  let ce = crf_now t e ~lambda and cb = crf_now t b ~lambda in
                  ce < cb || (ce = cb && e.last_use < b.last_use))
        in
        if better then best := Some (video, e))
    t.entries;
  Option.map fst !best

(* Insert a video, evicting idle victims as needed. Returns
   [(inserted, evicted)]: [inserted] is false when the video cannot be
   cached (too big for the cache, or all resident entries are busy
   streaming); [evicted] lists the videos removed along the way — which
   stay removed even on a failed admission, mirroring a real cache that
   frees space before discovering the admission fails. *)
let insert t video ~size_gb ~now ~busy_until =
  if mem t video then (true, [])
  else if size_gb > t.capacity_gb then begin
    Obs.incr t.m_too_big;
    (false, [])
  end
  else begin
    let evicted = ref [] in
    let ok = ref true in
    while !ok && t.used_gb +. size_gb > t.capacity_gb do
      match victim t ~now with
      | None ->
          (* Residents exist but every one is inside a stream lock:
             the paper's "no space" outcome (Fig. 9). *)
          Obs.incr t.m_stream_locked;
          ok := false
      | Some v -> (
          (* [victim] only returns keys it just saw in [t.entries], and
             nothing removes entries between that scan and this lookup,
             so a miss here is a broken-invariant bug — not a
             recoverable condition. Keep the eviction total anyway. *)
          match Hashtbl.find_opt t.entries v with
          | None -> ok := false
          | Some e ->
              Hashtbl.remove t.entries v;
              t.used_gb <- t.used_gb -. e.size_gb;
              evicted := v :: !evicted)
    done;
    (match !evicted with
    | [] -> ()
    | l -> Obs.incr ~by:(List.length l) t.m_evictions);
    if not !ok then (false, !evicted)
    else begin
      t.clock <- t.clock + 1;
      Hashtbl.replace t.entries video
        { size_gb; last_use = t.clock; freq = 1; crf = 1.0; busy_until };
      t.used_gb <- t.used_gb +. size_gb;
      Obs.incr t.m_inserts;
      (true, !evicted)
    end
  end

let iter f t = Hashtbl.iter (fun video e -> f video e.size_gb) t.entries
