(** A fleet = one content-distribution scheme across all VHOs: pinned
    copies, per-VHO dynamic caches, the replica oracle and the serving
    logic. The simulator calls [serve] per request (paper Sec. VII). *)

type routing =
  | Oracle_nearest
  | Mip_routes of Vod_placement.Solution.t
  | Region_origin of int array

type t

type outcome = {
  server : int;
  local : bool;
  cache_hit : bool;
  inserted : bool;
  not_cachable : bool;
}

(** Scheme name for reports. *)
val name : t -> string

(** Number of VHOs in the fleet. *)
val n_vhos : t -> int

(** Whether [video] has a pinned (placement-managed) copy at [vho]. *)
val pinned_at : t -> video:int -> vho:int -> bool

(** Pin a copy and register it with the oracle (idempotent). *)
val pin : t -> video:int -> vho:int -> unit

(** Pinned disk usage per VHO (GB). *)
val pinned_gb : t -> float array

(** Current holders of [video] (pinned or cached), unsorted. Exposed for
    the failover router in lib/resil. *)
val holders : t -> video:int -> int list

(** Serve one request at [now]; updates caches, locks streaming entries,
    maintains the replica index. Raises [Invalid_argument] if a video has
    no replica anywhere under oracle routing. *)
val serve : t -> video:int -> vho:int -> now:float -> outcome

(** [serve] with the remote-server decision delegated to [route]: it is
    called only when the request cannot be served locally, receives the
    scheme's fault-free choice as [default], and may return a different
    server (failover) or [None] to reject the request. A rejection leaves
    every cache untouched and yields [None]. [serve] is
    [serve_routed ~route:(fun ~default -> Some default)]. *)
val serve_routed :
  t ->
  video:int ->
  vho:int ->
  now:float ->
  route:(default:int -> int option) ->
  outcome option

(** MIP placement + complementary per-VHO cache (GB each). *)
val mip :
  solution:Vod_placement.Solution.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  cache_gb:float array ->
  t

(** One random pinned copy per video, rest of the disk a cache. *)
val random_single :
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  disk_gb:float array ->
  policy:Cache.policy ->
  seed:int ->
  t

(** Top-[k] pinned everywhere (busiest first per [ranked]), one random
    copy for the rest, remaining disk an LRU cache. *)
val topk :
  k:int ->
  ranked:int array ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  disk_gb:float array ->
  seed:int ->
  t

(** [regions] origin servers at spread-out VHOs, each holding the full
    library (storage not counted); per-VHO disks are pure LRU caches. *)
val origin_regions :
  regions:int ->
  graph:Vod_topology.Graph.t ->
  paths:Vod_topology.Paths.t ->
  catalog:Vod_workload.Catalog.t ->
  disk_gb:float array ->
  t
