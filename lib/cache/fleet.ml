(* A fleet = one content-distribution scheme instantiated across all VHOs:
   pinned copies (from the MIP placement or a baseline rule), per-VHO
   dynamic caches, the replica oracle, and the serving logic. The
   simulator drives [serve] for every request (paper Sec. VII-A/B):

   - MIP            : pinned per the rounded placement, requests routed per
                      the MIP's x variables, small complementary LRU cache;
   - Random + LRU/LFU : one random pinned copy per video, rest of the disk
                      is cache, oracle routing to the nearest copy;
   - Top-K + LRU    : top-K videos pinned everywhere, one random copy for
                      the rest, remaining disk is cache;
   - Origin + LRU   : the network is split into regions, each with an
                      origin VHO holding the full library (extra storage,
                      as in the paper's comparison to [20]); VHO disks are
                      pure LRU caches and misses go to the region origin. *)

type routing =
  | Oracle_nearest
  | Mip_routes of Vod_placement.Solution.t
  | Region_origin of int array (* per-VHO origin VHO *)

type t = {
  name : string;
  paths : Vod_topology.Paths.t;
  catalog : Vod_workload.Catalog.t;
  caches : Cache.t array;
  pinned : (int, unit) Hashtbl.t array;  (* per VHO: set of pinned videos *)
  index : Replica_index.t;
  routing : routing;
}

type outcome = {
  server : int;
  local : bool;         (* served from this VHO's pinned store or cache *)
  cache_hit : bool;     (* local, via the dynamic cache *)
  inserted : bool;      (* fetched remotely and admitted into the cache *)
  not_cachable : bool;  (* fetched remotely, admission failed *)
}

let name t = t.name

let n_vhos t = Array.length t.caches

let pinned_at t ~video ~vho = Hashtbl.mem t.pinned.(vho) video

let pin t ~video ~vho =
  if not (pinned_at t ~video ~vho) then begin
    Hashtbl.replace t.pinned.(vho) video ();
    Replica_index.add t.index ~video ~vho
  end

(* Pinned disk usage per VHO (GB). Folds over sorted video ids so the
   reported usage is bit-identical regardless of pin/unpin history. *)
let pinned_gb t =
  Array.map
    (fun tbl ->
      List.fold_left
        (fun acc video ->
          acc +. Vod_workload.Video.size_gb (Vod_workload.Catalog.video t.catalog video))
        0.0
        (Vod_util.Stats_acc.sorted_keys Int.compare tbl))
    t.pinned

let choose_server t ~video ~vho =
  match t.routing with
  | Region_origin origins -> (
      (* Prefer a cached copy anywhere if closer than the origin. *)
      match Replica_index.nearest t.index t.paths ~video ~vho with
      | Some s
        when Vod_topology.Paths.hops t.paths ~src:s ~dst:vho
             < Vod_topology.Paths.hops t.paths ~src:origins.(vho) ~dst:vho ->
          s
      | Some _ | None -> origins.(vho))
  | Mip_routes solution -> Vod_placement.Solution.server solution t.paths ~video ~vho
  | Oracle_nearest -> (
      match Replica_index.nearest t.index t.paths ~video ~vho with
      | Some s -> s
      | None -> invalid_arg "Fleet.serve: video has no replica anywhere")

let holders t ~video = Replica_index.holders t.index ~video

(* [serve_routed] is [serve] with the remote-server decision delegated to
   [route], which receives the scheme's fault-free choice as [default]
   and may pick another replica (failover) or return [None] to reject the
   request. Local serving (pinned store, cache hit) is never rerouted.
   On [None] the caches are left untouched — a rejected request streams
   nothing — and the function returns [None]. *)
let serve_routed t ~video ~vho ~now ~route =
  let v = Vod_workload.Catalog.video t.catalog video in
  let size_gb = Vod_workload.Video.size_gb v in
  let busy_until = now +. Vod_workload.Video.duration_s v in
  if pinned_at t ~video ~vho then
    Some
      { server = vho; local = true; cache_hit = false; inserted = false; not_cachable = false }
  else if Cache.touch t.caches.(vho) video ~busy_until then
    Some
      { server = vho; local = true; cache_hit = true; inserted = false; not_cachable = false }
  else begin
    let default = choose_server t ~video ~vho in
    match route ~default with
    | None -> None
    | Some server ->
        (* Streaming from a remote cached copy pins it for the duration. *)
        if server <> vho then ignore (Cache.touch t.caches.(server) video ~busy_until);
        let inserted, evicted =
          Cache.insert t.caches.(vho) video ~size_gb ~now ~busy_until
        in
        List.iter (fun ev -> Replica_index.remove t.index ~video:ev ~vho) evicted;
        if inserted then Replica_index.add t.index ~video ~vho;
        Some
          {
            server;
            local = false;
            cache_hit = false;
            inserted;
            not_cachable = not inserted;
          }
  end

(* Hoisted: an inline [fun ~default -> Some default] would allocate a
   closure on every fault-free serve (alloc-in-hot). *)
let identity_route ~default = Some default

let serve t ~video ~vho ~now =
  match serve_routed t ~video ~vho ~now ~route:identity_route with
  | Some outcome -> outcome
  | None -> invalid_arg "Fleet.serve: identity route returned None"

(* ---------- constructors ---------- *)

let base ~name ~paths ~catalog ~routing ~cache_capacities_gb ~policy =
  let n = Array.length cache_capacities_gb in
  {
    name;
    paths;
    catalog;
    caches = Array.map (fun c -> Cache.create ~policy ~capacity_gb:c) cache_capacities_gb;
    pinned = Array.init n (fun _ -> Hashtbl.create 256);
    index = Replica_index.create ~n_videos:(Vod_workload.Catalog.n_videos catalog);
    routing;
  }

(* MIP placement + complementary cache: [cache_gb.(i)] is the dynamic
   cache at VHO i (the paper's ~5% of disk). *)
let mip ~solution ~paths ~catalog ~cache_gb =
  let t =
    base ~name:"mip" ~paths ~catalog ~routing:(Mip_routes solution)
      ~cache_capacities_gb:cache_gb ~policy:Cache.Lru
  in
  Array.iteri
    (fun video vhos -> Array.iter (fun vho -> pin t ~video ~vho) vhos)
    solution.Vod_placement.Solution.stored;
  t

(* One random pinned copy per video; the rest of each VHO's disk is a
   dynamic cache of the given [policy]. *)
let random_single ~paths ~catalog ~disk_gb ~policy ~seed =
  let n = Array.length disk_gb in
  let rng = Vod_util.Rng.create seed in
  let n_videos = Vod_workload.Catalog.n_videos catalog in
  let owner = Array.init n_videos (fun _ -> Vod_util.Rng.int rng n) in
  let pinned_use = Array.make n 0.0 in
  Array.iteri
    (fun video vho ->
      pinned_use.(vho) <-
        pinned_use.(vho)
        +. Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video))
    owner;
  let cache_capacities_gb =
    Array.init n (fun i -> Float.max 0.0 (disk_gb.(i) -. pinned_use.(i)))
  in
  let name =
    match policy with
    | Cache.Lru -> "random+lru"
    | Cache.Lfu -> "random+lfu"
    | Cache.Lrfu lambda -> Printf.sprintf "random+lrfu(%.2g)" lambda
  in
  let t =
    base ~name ~paths ~catalog ~routing:Oracle_nearest ~cache_capacities_gb ~policy
  in
  Array.iteri (fun video vho -> pin t ~video ~vho) owner;
  t

(* Top-K replicated everywhere, the rest one random copy, remaining disk
   is an LRU cache (the paper's simplified version of [23]). [ranked] is
   the demand ranking, busiest first. *)
let topk ~k ~ranked ~paths ~catalog ~disk_gb ~seed =
  let n = Array.length disk_gb in
  let rng = Vod_util.Rng.create seed in
  let n_videos = Vod_workload.Catalog.n_videos catalog in
  let top = Array.sub ranked 0 (min k (Array.length ranked)) in
  let is_top = Array.make n_videos false in
  Array.iter (fun video -> is_top.(video) <- true) top;
  let owner =
    Array.init n_videos (fun video ->
        if is_top.(video) then -1 else Vod_util.Rng.int rng n)
  in
  let pinned_use = Array.make n 0.0 in
  let top_gb =
    Array.fold_left
      (fun acc video ->
        acc +. Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video))
      0.0 top
  in
  for i = 0 to n - 1 do
    pinned_use.(i) <- top_gb
  done;
  Array.iteri
    (fun video vho ->
      if vho >= 0 then
        pinned_use.(vho) <-
          pinned_use.(vho)
          +. Vod_workload.Video.size_gb (Vod_workload.Catalog.video catalog video))
    owner;
  let cache_capacities_gb =
    Array.init n (fun i -> Float.max 0.0 (disk_gb.(i) -. pinned_use.(i)))
  in
  let t =
    base
      ~name:(Printf.sprintf "top%d+lru" k)
      ~paths ~catalog ~routing:Oracle_nearest ~cache_capacities_gb ~policy:Cache.Lru
  in
  Array.iteri
    (fun video vho ->
      if vho >= 0 then pin t ~video ~vho
      else
        for i = 0 to n - 1 do
          pin t ~video ~vho:i
        done)
    owner;
  t

(* Partition the VHOs into [regions] groups around spread-out seeds and
   give each group an origin server (attached to the seed VHO, holding the
   whole library, storage not counted). Every VHO's disk is a pure LRU
   cache. *)
let origin_regions ~regions ~graph ~paths ~catalog ~disk_gb =
  let n = Vod_topology.Graph.n_nodes graph in
  if regions <= 0 || regions > n then invalid_arg "Fleet.origin_regions: bad region count";
  (* Greedy k-center seeding: start from the largest metro, then
     repeatedly take the VHO farthest from all chosen seeds. *)
  let first = ref 0 in
  Array.iteri
    (fun i p -> if p > graph.Vod_topology.Graph.populations.(!first) then first := i)
    graph.Vod_topology.Graph.populations;
  let seeds = ref [ !first ] in
  while List.length !seeds < regions do
    let best = ref (-1) and best_d = ref (-1) in
    for i = 0 to n - 1 do
      if not (List.mem i !seeds) then begin
        let d =
          List.fold_left
            (fun acc s -> min acc (Vod_topology.Paths.hops paths ~src:s ~dst:i))
            max_int !seeds
        in
        if d > !best_d then begin
          best_d := d;
          best := i
        end
      end
    done;
    seeds := !best :: !seeds
  done;
  let seed_arr = Array.of_list !seeds in
  let origins =
    Array.init n (fun i ->
        let best = ref seed_arr.(0) and best_h = ref max_int in
        Array.iter
          (fun s ->
            let h = Vod_topology.Paths.hops paths ~src:s ~dst:i in
            if h < !best_h then begin
              best_h := h;
              best := s
            end)
          seed_arr;
        !best)
  in
  let t =
    base ~name:"origin+lru" ~paths ~catalog ~routing:(Region_origin origins)
      ~cache_capacities_gb:disk_gb ~policy:Cache.Lru
  in
  (* Origins pin the full library (extra storage, per the paper's setup). *)
  let n_videos = Vod_workload.Catalog.n_videos catalog in
  Array.iter
    (fun s ->
      for video = 0 to n_videos - 1 do
        pin t ~video ~vho:s
      done)
    seed_arr;
  t
