(** Uncapacitated facility location — the per-video block problem of the
    decomposed placement LP (paper Sec. V-C/V-D).

    Facilities are VHOs (opening = storing a copy); clients are VHOs with
    demand. Costs must be nonnegative, which the EPF multipliers
    guarantee. *)

type t = {
  open_cost : float array;       (** per-facility opening cost *)
  service : float array array;   (** [service.(client).(facility)] *)
}

type solution = {
  open_set : bool array;
  assign : int array;   (** cheapest open facility per client *)
  cost : float;
}

(** Number of candidate facilities in the instance. *)
val n_facilities : t -> int

(** Number of clients in the instance. *)
val n_clients : t -> int

(** Raises [Invalid_argument] on negative/NaN costs, ragged service rows,
    or an empty facility set. *)
val validate : t -> unit

(** [eval_open t open_set] = (cost, assignment) serving every client from
    its cheapest open facility. Raises [Invalid_argument] if no facility
    is open. *)
val eval_open : t -> bool array -> float * int array

(** Build a [solution] record from an open set. *)
val solution_of_open : t -> bool array -> solution

(** Greedy opening heuristic (best single facility + largest-saving adds). *)
val greedy : t -> solution

(** Add/drop/swap local search seeded by [greedy] — the Charikar-Guha-style
    block heuristic the paper uses for block steps and rounding. *)
val local_search : ?max_iter:int -> t -> solution

(** Erlenkotter-style dual ascent. Returns [(bound, v)] where [bound] is a
    valid lower bound on the LP (hence ILP) optimum and [v] the feasible
    dual values. *)
val dual_ascent : ?max_passes:int -> t -> float * float array

(** Exact optimum by enumeration; [n_facilities <= 20] (tests only). *)
val exact : t -> solution
