(* Quickstart: build a small VoD system, solve the placement MIP, inspect
   the solution, and replay a week of requests against it.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A world: the 55-VHO backbone, a 1000-video catalog, a month of
        synthetic requests with population-proportional regional demand. *)
  let sc = Vod_core.Scenario.backbone ~n_videos:1000 ~seed:7 () in
  Printf.printf "library: %d videos, %.0f GB; trace: %d requests over %d days\n\n"
    (Vod_workload.Catalog.n_videos sc.Vod_core.Scenario.catalog)
    (Vod_core.Scenario.library_gb sc)
    (Vod_workload.Trace.length sc.Vod_core.Scenario.trace)
    sc.Vod_core.Scenario.trace.Vod_workload.Trace.days;

  (* 2. Demand inputs for one placement period: aggregate requests a_j^m
        and concurrency f_j^m(t) during the two busiest hours. *)
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  Printf.printf "week 1 demand: %.0f requests, peak windows at %s\n\n"
    demand.Vod_workload.Demand.total_requests
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun (t0, _) -> Printf.sprintf "day %.1f" (t0 /. 86_400.0))
             demand.Vod_workload.Demand.windows)));

  (* 3. The MIP instance: 2x-library aggregate disk, uniform links. *)
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let inst =
    Vod_placement.Instance.create ~graph:sc.Vod_core.Scenario.graph
      ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
      ~link_capacity_mbps:
        (Vod_placement.Instance.uniform_links sc.Vod_core.Scenario.graph 1000.0)
      ()
  in

  (* 4. Solve: EPF decomposition + rounding. Wall time is the caller's
        business (lib/ is wallclock-free); time the call directly. *)
  let t0 = Unix.gettimeofday () in
  let report = Vod_placement.Solve.solve inst in
  let solve_s = Unix.gettimeofday () -. t0 in
  let sol = report.Vod_placement.Solve.solution in
  Printf.printf
    "solved in %.1fs (%d passes): objective %.0f, Lagrangian bound %.0f, max constraint violation %.1f%%\n"
    solve_s report.Vod_placement.Solve.passes
    sol.Vod_placement.Solution.objective sol.Vod_placement.Solution.lower_bound
    (100.0 *. sol.Vod_placement.Solution.max_violation);

  (* 5. Inspect the placement: replication by demand rank. *)
  let ranked = Vod_workload.Demand.rank_by_demand demand in
  Printf.printf "\ncopies by demand rank:\n";
  List.iter
    (fun r ->
      Printf.printf "  rank %4d: %2d copies (%.0f weekly requests)\n" (r + 1)
        (Vod_placement.Solution.copies sol ranked.(r))
        (Vod_workload.Demand.video_requests demand ranked.(r)))
    [ 0; 4; 19; 99; 499 ];

  (* 6. Replay week 2 against the placement with a 5% complementary LRU
        cache per office. *)
  let cache_gb = Array.map (fun d -> 0.05 *. d) disk in
  let fleet =
    Vod_cache.Fleet.mip ~solution:sol ~paths:sc.Vod_core.Scenario.paths
      ~catalog:sc.Vod_core.Scenario.catalog ~cache_gb
  in
  let metrics =
    Vod_sim.Metrics.create
      ~n_links:(Vod_topology.Graph.n_links sc.Vod_core.Scenario.graph)
      ~horizon_s:(14.0 *. Vod_workload.Trace.seconds_per_day)
      ()
  in
  let week2 =
    Vod_workload.Trace.between_days sc.Vod_core.Scenario.trace ~day_lo:7 ~day_hi:14
  in
  Vod_sim.Sim.play metrics sc.Vod_core.Scenario.paths sc.Vod_core.Scenario.catalog
    fleet week2;
  Printf.printf
    "\nweek-2 playout: %d requests, %.1f%% served locally, peak link %.0f Mb/s, %.0f GB x hop transferred\n"
    metrics.Vod_sim.Metrics.requests
    (100.0 *. Vod_sim.Metrics.local_fraction metrics)
    (Vod_sim.Metrics.max_link_mbps metrics)
    metrics.Vod_sim.Metrics.total_gb_hops
