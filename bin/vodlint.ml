(* vodlint — static analysis enforcing the repo's solver-safety
   invariants (see DESIGN.md, "Static analysis").

   Usage: vodlint [--format text|json] [--disable IDS] [--list-rules]
                  [PATH ...]

   With no paths it lints the default scope: lib/ bin/ bench/ examples/.
   Exit code 0 when clean, 1 on findings, 2 on usage errors. *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage = "vodlint [--format text|json] [--disable IDS] [--list-rules] [PATH ...]"

let () =
  let format = ref `Text in
  let disabled = ref [] in
  let list_rules = ref false in
  let roots = ref [] in
  let set_format = function
    | "text" -> format := `Text
    | "json" -> format := `Json
    | other ->
        prerr_endline ("vodlint: unknown format '" ^ other ^ "' (expected text or json)");
        exit 2
  in
  let add_disabled s =
    disabled := List.filter (fun id -> id <> "") (String.split_on_char ',' s) @ !disabled
  in
  let spec =
    [
      ("--format", Arg.String set_format, "FMT report as 'text' (default) or 'json'");
      ("--disable", Arg.String add_disabled, "IDS comma-separated rule ids to skip");
      ("--list-rules", Arg.Set list_rules, " print rule ids and descriptions, then exit");
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Vod_lint.Rules.t) -> print_endline (Printf.sprintf "%-18s %s" r.id r.doc))
      Vod_lint.Rules.all;
    exit 0
  end;
  List.iter
    (fun id ->
      if Vod_lint.Rules.find id = None then begin
        prerr_endline ("vodlint: unknown rule id '" ^ id ^ "' (see --list-rules)");
        exit 2
      end)
    !disabled;
  let rules =
    List.filter (fun (r : Vod_lint.Rules.t) -> not (List.mem r.id !disabled)) Vod_lint.Rules.all
  in
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  let diags =
    try Vod_lint.Engine.lint_paths ~rules roots
    with Invalid_argument msg ->
      prerr_endline ("vodlint: " ^ msg);
      exit 2
  in
  (match !format with
  | `Text ->
      List.iter (fun d -> print_endline (Vod_lint.Diagnostic.to_text d)) diags;
      if diags <> [] then
        prerr_endline
          (Printf.sprintf "vodlint: %d finding%s" (List.length diags)
             (if List.length diags = 1 then "" else "s"))
  | `Json -> print_endline (Vod_lint.Diagnostic.list_to_json diags));
  exit (if diags = [] then 0 else 1)
