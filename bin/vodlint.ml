(* vodlint — static analysis enforcing the repo's solver-safety
   invariants (see DESIGN.md, "Static analysis" and "Effect analysis").

   Usage: vodlint [--format text|json] [--disable IDS] [--list-rules]
                  [--project] [--baseline FILE] [--write-baseline]
                  [PATH ...]

   With no paths it lints the default scope: lib/ bin/ bench/ examples/.
   [--project] additionally runs the whole-project effect-analysis rules
   (par-race, float-order, wallclock-in-solver) and subtracts the
   accepted findings recorded in the baseline file.
   Exit code 0 when clean, 1 on (unbaselined) findings, 2 on usage
   errors. *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage =
  "vodlint [--format text|json] [--disable IDS] [--list-rules]\n\
  \        [--project] [--baseline FILE] [--write-baseline] [PATH ...]"

let () =
  let format = ref `Text in
  let disabled = ref [] in
  let list_rules = ref false in
  let project = ref false in
  let baseline_path = ref ".vodlint-baseline" in
  let write_baseline = ref false in
  let roots = ref [] in
  let set_format = function
    | "text" -> format := `Text
    | "json" -> format := `Json
    | other ->
        prerr_endline ("vodlint: unknown format '" ^ other ^ "' (expected text or json)");
        exit 2
  in
  let add_disabled s =
    disabled := List.filter (fun id -> id <> "") (String.split_on_char ',' s) @ !disabled
  in
  let spec =
    [
      ("--format", Arg.String set_format, "FMT report as 'text' (default) or 'json'");
      ("--disable", Arg.String add_disabled, "IDS comma-separated rule ids to skip");
      ("--list-rules", Arg.Set list_rules, " print rule ids and descriptions, then exit");
      ("--project", Arg.Set project, " run the whole-project effect-analysis rules too");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE accepted-findings file for --project (default .vodlint-baseline)" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " rewrite the baseline to the current findings and exit clean" );
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Vod_lint.Rules.t) ->
        print_endline (Printf.sprintf "%-20s [file]    %s" r.id r.doc))
      Vod_lint.Rules.all;
    List.iter
      (fun (r : Vod_lint.Project_rules.t) ->
        print_endline (Printf.sprintf "%-20s [project] %s" r.id r.doc))
      Vod_lint.Project_rules.all;
    exit 0
  end;
  List.iter
    (fun id ->
      if Vod_lint.Rules.find id = None && Vod_lint.Project_rules.find id = None
      then begin
        prerr_endline ("vodlint: unknown rule id '" ^ id ^ "' (see --list-rules)");
        exit 2
      end)
    !disabled;
  let rules =
    List.filter (fun (r : Vod_lint.Rules.t) -> not (List.mem r.id !disabled)) Vod_lint.Rules.all
  in
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  let diags =
    try
      if !project then Vod_lint.Engine.lint_project ~rules ~disabled:!disabled roots
      else Vod_lint.Engine.lint_paths ~rules roots
    with Invalid_argument msg ->
      prerr_endline ("vodlint: " ^ msg);
      exit 2
  in
  if !project && !write_baseline then begin
    Vod_lint.Baseline.(save !baseline_path (of_diagnostics diags));
    prerr_endline
      (Printf.sprintf "vodlint: wrote %d finding%s to %s" (List.length diags)
         (if List.length diags = 1 then "" else "s")
         !baseline_path);
    exit 0
  end;
  let diags, baselined =
    if !project then begin
      let applied = Vod_lint.Baseline.(apply (load !baseline_path) diags) in
      List.iter
        (fun e ->
          prerr_endline
            ("vodlint: stale baseline entry (no longer found): "
            ^ Vod_lint.Baseline.entry_to_string e))
        applied.stale;
      (applied.fresh, applied.baselined)
    end
    else (diags, 0)
  in
  (match !format with
  | `Text ->
      List.iter (fun d -> print_endline (Vod_lint.Diagnostic.to_text d)) diags;
      if diags <> [] || baselined > 0 then
        prerr_endline
          (Printf.sprintf "vodlint: %d finding%s%s" (List.length diags)
             (if List.length diags = 1 then "" else "s")
             (if baselined > 0 then Printf.sprintf " (%d baselined)" baselined
              else ""))
  | `Json -> print_endline (Vod_lint.Diagnostic.list_to_json diags));
  exit (if diags = [] then 0 else 1)
