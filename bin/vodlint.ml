(* vodlint — static analysis enforcing the repo's solver-safety
   invariants (see DESIGN.md, "Static analysis", "Effect analysis" and
   "Units & hot-path analysis").

   Usage: vodlint [--format text|json|github] [--disable IDS]
                  [--rules] [--list-rules] [--project] [--baseline FILE]
                  [--write-baseline] [--forbid-stale]
                  [--units-decl FILE] [--protocols-decl FILE] [PATH ...]

   With no paths it lints the default scope: lib/ bin/ bench/ examples/.
   [--project] additionally runs the whole-project rules — the
   effect-analysis phase (par-race, float-order, wallclock-in-solver,
   obs-taint), the units/hot-path phase (unit-mismatch,
   unit-unannotated-boundary, alloc-in-hot, seeded from --units-decl)
   and the protocol phase (proto-leak, proto-double-release,
   missing-protect, seeded from --protocols-decl) — and subtracts the
   accepted findings recorded in the baseline file.
   Exit code 0 when clean, 1 on (unbaselined) findings — or stale
   baseline entries under --forbid-stale — and 2 on usage or internal
   analysis errors (bad flags, unreadable roots, malformed
   units.decl/protocols.decl). *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage =
  "vodlint [--format text|json|github] [--disable IDS] [--rules]\n\
  \        [--list-rules] [--project] [--baseline FILE] [--write-baseline]\n\
  \        [--forbid-stale] [--units-decl FILE] [--protocols-decl FILE]\n\
  \        [PATH ...]"

(* Minimal JSON string escaping for the --rules json listing (rule ids
   and docs are plain ASCII; this keeps quoting honest anyway). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let () =
  let format = ref `Text in
  let disabled = ref [] in
  let list_rules = ref false in
  let rules_listing = ref false in
  let project = ref false in
  let baseline_path = ref ".vodlint-baseline" in
  let write_baseline = ref false in
  let forbid_stale = ref false in
  let units_decl_path = ref "units.decl" in
  let protocols_decl_path = ref "protocols.decl" in
  let roots = ref [] in
  let set_format = function
    | "text" -> format := `Text
    | "json" -> format := `Json
    | "github" -> format := `Github
    | other ->
        prerr_endline
          ("vodlint: unknown format '" ^ other
         ^ "' (expected text, json or github)");
        exit 2
  in
  let add_disabled s =
    disabled := List.filter (fun id -> id <> "") (String.split_on_char ',' s) @ !disabled
  in
  let spec =
    [
      ( "--format",
        Arg.String set_format,
        "FMT report as 'text' (default), 'json' or 'github' (Actions \
         annotations)" );
      ("--disable", Arg.String add_disabled, "IDS comma-separated rule ids to skip");
      ( "--rules",
        Arg.Set rules_listing,
        " list every rule id, phase and rationale (honors --format json), \
         then exit" );
      ("--list-rules", Arg.Set list_rules, " print rule ids and descriptions, then exit");
      ("--project", Arg.Set project, " run the whole-project analysis phases too");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE accepted-findings file for --project (default .vodlint-baseline)" );
      ( "--write-baseline",
        Arg.Set write_baseline,
        " rewrite the baseline to the current findings and exit clean" );
      ( "--forbid-stale",
        Arg.Set forbid_stale,
        " exit nonzero if the baseline holds stale (already-fixed) entries" );
      ( "--units-decl",
        Arg.Set_string units_decl_path,
        "FILE units signature file for --project (default units.decl; missing \
         file = no declarations)" );
      ( "--protocols-decl",
        Arg.Set_string protocols_decl_path,
        "FILE acquire/release protocol file for --project (default \
         protocols.decl; missing file = no declarations)" );
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !rules_listing then begin
    let entries =
      List.map
        (fun (r : Vod_lint.Rules.t) -> (r.id, "file", r.doc))
        Vod_lint.Rules.all
      @ List.map
          (fun (r : Vod_lint.Project_rules.t) -> (r.id, "project", r.doc))
          Vod_lint.Project_rules.all
    in
    (match !format with
    | `Json ->
        let objs =
          List.map
            (fun (id, phase, doc) ->
              Printf.sprintf
                "  {\"id\": \"%s\", \"phase\": \"%s\", \"rationale\": \"%s\"}"
                (json_escape id) (json_escape phase) (json_escape doc))
            entries
        in
        print_endline
          (Printf.sprintf "[\n%s\n]" (String.concat ",\n" objs))
    | `Text | `Github ->
        List.iter
          (fun (id, phase, doc) ->
            print_endline (Printf.sprintf "%-26s [%s]  %s" id phase doc))
          entries);
    exit 0
  end;
  if !list_rules then begin
    List.iter
      (fun (r : Vod_lint.Rules.t) ->
        print_endline (Printf.sprintf "%-26s [file]    %s" r.id r.doc))
      Vod_lint.Rules.all;
    List.iter
      (fun (r : Vod_lint.Project_rules.t) ->
        print_endline (Printf.sprintf "%-26s [project] %s" r.id r.doc))
      Vod_lint.Project_rules.all;
    exit 0
  end;
  List.iter
    (fun id ->
      if Vod_lint.Rules.find id = None && Vod_lint.Project_rules.find id = None
      then begin
        prerr_endline ("vodlint: unknown rule id '" ^ id ^ "' (see --list-rules)");
        exit 2
      end)
    !disabled;
  let rules =
    List.filter (fun (r : Vod_lint.Rules.t) -> not (List.mem r.id !disabled)) Vod_lint.Rules.all
  in
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  let units_decl =
    try Vod_lint.Units.load_decl !units_decl_path
    with Vod_lint.Units.Decl_error msg ->
      prerr_endline ("vodlint: " ^ msg);
      exit 2
  in
  let protocols_decl =
    try Vod_lint.Proto.load_decl !protocols_decl_path
    with Vod_lint.Proto.Decl_error msg ->
      prerr_endline ("vodlint: " ^ msg);
      exit 2
  in
  (* Findings exit 1; anything that prevents the analysis from giving
     an answer at all — bad roots, a crash in an analysis pass — is an
     internal error and exits 2, so CI can tell "code has findings"
     from "the linter itself is broken". *)
  let scanned, diags =
    try
      let scanned = List.length (Vod_lint.Engine.discover roots) in
      let diags =
        if !project then
          Vod_lint.Engine.lint_project ~rules ~disabled:!disabled ~units_decl
            ~protocols_decl roots
        else Vod_lint.Engine.lint_paths ~rules roots
      in
      (scanned, diags)
    with
    | Invalid_argument msg ->
        prerr_endline ("vodlint: " ^ msg);
        exit 2
    | e ->
        prerr_endline ("vodlint: internal analysis error: " ^ Printexc.to_string e);
        exit 2
  in
  if !project && !write_baseline then begin
    Vod_lint.Baseline.(save !baseline_path (of_diagnostics diags));
    prerr_endline
      (Printf.sprintf "vodlint: wrote %d finding%s to %s" (List.length diags)
         (if List.length diags = 1 then "" else "s")
         !baseline_path);
    exit 0
  end;
  let diags, baselined, stale =
    if !project then begin
      let applied = Vod_lint.Baseline.(apply (load !baseline_path) diags) in
      List.iter
        (fun e ->
          prerr_endline
            ("vodlint: stale baseline entry (no longer found): "
            ^ Vod_lint.Baseline.entry_to_string e))
        applied.stale;
      (applied.fresh, applied.baselined, List.length applied.stale)
    end
    else (diags, 0, 0)
  in
  let n = List.length diags in
  (match !format with
  | `Text ->
      List.iter (fun d -> print_endline (Vod_lint.Diagnostic.to_text d)) diags
  | `Github ->
      List.iter (fun d -> print_endline (Vod_lint.Diagnostic.to_github d)) diags
  | `Json -> print_endline (Vod_lint.Diagnostic.list_to_json diags));
  if !project then
    prerr_endline
      (Printf.sprintf
         "vodlint: %d file%s scanned, %d finding%s, %d baselined%s" scanned
         (if scanned = 1 then "" else "s")
         n
         (if n = 1 then "" else "s")
         baselined
         (if stale > 0 then Printf.sprintf ", %d stale" stale else ""))
  else if n > 0 then
    prerr_endline
      (Printf.sprintf "vodlint: %d finding%s" n (if n = 1 then "" else "s"));
  if diags <> [] then exit 1;
  if !forbid_stale && stale > 0 then begin
    prerr_endline
      (Printf.sprintf
         "vodlint: %d stale baseline entr%s under --forbid-stale; prune the \
          baseline (vodlint --project --write-baseline)"
         stale
         (if stale = 1 then "y" else "ies"));
    exit 1
  end;
  exit 0
