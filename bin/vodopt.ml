(* vodopt — command-line front end.

     vodopt stats     trace analytics (working set, similarity)
     vodopt solve     solve one placement instance and report quality
     vodopt simulate  replay a month against a distribution scheme
     vodopt serve     replay through the online re-placement daemon
     vodopt sweep     feasibility sweep: min disk per link capacity

   Every command is deterministic given --seed. *)

open Cmdliner

let setup_logs verbose jobs =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning);
  Vod_util.Pool.set_default_jobs jobs

(* Wall-clock timing lives in the front end: Solve.report deliberately
   carries no wall time (lib/ is wallclock-free outside lib/obs). *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* --metrics PATH: collect the side-band Obs registry over the whole
   command and export it as sorted JSON ('-' = stdout) when done. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
      let reg = Vod_obs.Obs.create () in
      let r = Vod_obs.Obs.with_run reg f in
      Vod_obs.Obs.write_json reg path;
      r

(* Common options *)

let videos_t =
  Arg.(value & opt int 1000 & info [ "videos"; "n" ] ~docv:"N" ~doc:"Catalog size.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let days_t = Arg.(value & opt int 28 & info [ "days" ] ~docv:"D" ~doc:"Trace length in days.")

let rpv_t =
  Arg.(
    value
    & opt float 8.0
    & info [ "requests-per-video" ] ~docv:"R" ~doc:"Mean daily requests per video.")

let disk_t =
  Arg.(
    value
    & opt float 2.0
    & info [ "disk" ] ~docv:"MULT" ~doc:"Aggregate disk as a multiple of the library size.")

let link_t =
  Arg.(
    value
    & opt float 1000.0
    & info [ "link" ] ~docv:"MBPS" ~doc:"Uniform link capacity in Mb/s.")

let passes_t =
  Arg.(value & opt int 50 & info [ "passes" ] ~docv:"P" ~doc:"Max EPF passes.")

let solver_t =
  let solvers = [ "epf"; "benders"; "simplex" ] in
  Arg.(
    value
    & opt (enum (List.map (fun s -> (s, s)) solvers)) "epf"
    & info [ "solver" ] ~docv:"S"
        ~doc:
          "Placement solver backend: $(b,epf) (exponential-potential decomposition, default), $(b,benders) (stabilized cutting-plane master), $(b,simplex) (exact dense LP, small instances only).")

let verbose_t = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let jobs_t =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel phases (0 = number of cores). Results are identical at any job count for a fixed --seed.")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Collect side-band metrics (EPF convergence series, phase timings, cache and pool counters — see METRICS.md) and write them as sorted JSON to $(docv) ('-' = stdout).")

let topology_t =
  let topologies = [ "backbone"; "tiscali"; "sprint"; "ebone" ] in
  Arg.(
    value
    & opt (enum (List.map (fun t -> (t, t)) topologies)) "backbone"
    & info [ "topology" ] ~docv:"NET" ~doc:"Network: backbone, tiscali, sprint, ebone.")

let topology_file_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "topology-file" ] ~docv:"FILE"
        ~doc:"Load the network from an edge-list file instead of a built-in one.")

let trace_file_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace" ] ~docv:"CSV"
        ~doc:
          "Load requests from a CSV trace (time_s,vho,video) instead of generating a synthetic one. Video ids must fit the --videos catalog.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"CSV" ~doc:"Export the trace to a CSV file.")

let placement_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"CSV" ~doc:"Export the computed placement to a CSV file.")

let graph_of ~topology ~topology_file =
  match topology_file with
  | Some path -> Vod_topology.Topologies.load_edge_list ~name:path ~path ()
  | None -> (
      match topology with
      | "tiscali" -> Vod_topology.Topologies.tiscali ()
      | "sprint" -> Vod_topology.Topologies.sprint ()
      | "ebone" -> Vod_topology.Topologies.ebone ()
      | _ -> Vod_topology.Topologies.backbone55 ())

let scenario_of ?topology_file ?trace_file ?soa ~topology ~videos ~days ~rpv
    ~seed () =
  let graph = graph_of ~topology ~topology_file in
  let sc =
    Vod_core.Scenario.make ~days ~requests_per_video_per_day:rpv ~seed ?soa
      ~graph ~n_videos:videos ()
  in
  match trace_file with
  | None -> sc
  | Some path ->
      (* ~n_videos makes the loader reject out-of-catalog ids with a
         line-numbered error instead of a post-hoc scan. *)
      let trace =
        Vod_workload.Trace_io.load_csv ~n_videos:videos
          ~n_vhos:(Vod_topology.Graph.n_nodes graph)
          ~days path
      in
      { sc with Vod_core.Scenario.trace }

(* ---- stats ---- *)

let stats topology topology_file trace_file trace_out videos days rpv seed verbose jobs
    metrics =
  setup_logs verbose jobs;
  with_metrics metrics @@ fun () ->
  let sc = scenario_of ?topology_file ?trace_file ~topology ~videos ~days ~rpv ~seed () in
  Option.iter
    (fun path ->
      Vod_workload.Trace_io.save_csv sc.Vod_core.Scenario.trace path;
      Printf.printf "trace exported to %s\n" path)
    trace_out;
  let trace = sc.Vod_core.Scenario.trace in
  Printf.printf "trace: %d requests, %d days, %d VHOs, library %.0f GB\n\n"
    (Vod_workload.Trace.length trace) days
    (Vod_topology.Graph.n_nodes sc.Vod_core.Scenario.graph)
    (Vod_core.Scenario.library_gb sc);
  let peak = Vod_workload.Stats.peak_hour_start_s trace in
  Printf.printf "peak hour starts at day %.2f\n" (peak /. 86_400.0);
  let n = Vod_topology.Graph.n_nodes sc.Vod_core.Scenario.graph in
  let fracs =
    Array.init n (fun vho ->
        let _, gb =
          Vod_workload.Stats.working_set trace sc.Vod_core.Scenario.catalog ~vho
            ~t0:peak ~t1:(peak +. 3600.0)
        in
        gb /. Vod_core.Scenario.library_gb sc)
  in
  Printf.printf "peak-hour working set (disk share of library): max %.1f%%, mean %.1f%%\n"
    (100.0 *. Vod_util.Stats_acc.max_elt fracs)
    (100.0 *. Vod_util.Stats_acc.mean fracs);
  List.iter
    (fun (label, w) ->
      let sims = Vod_workload.Stats.peak_interval_similarity trace ~window_s:w in
      Printf.printf "request-mix similarity @ %-7s mean %.3f\n" label
        (Vod_util.Stats_acc.mean sims))
    [ ("30min", 1800.0); ("1h", 3600.0); ("1day", 86_400.0) ]

(* ---- solve ---- *)

let solve topology topology_file trace_file placement_out videos days rpv seed disk
    link passes solver verbose jobs metrics =
  setup_logs verbose jobs;
  with_metrics metrics @@ fun () ->
  let sc = scenario_of ?topology_file ?trace_file ~topology ~videos ~days ~rpv ~seed () in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let inst =
    Vod_placement.Instance.create ~graph:sc.Vod_core.Scenario.graph
      ~catalog:sc.Vod_core.Scenario.catalog ~demand
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:disk)
      ~link_capacity_mbps:
        (Vod_placement.Instance.uniform_links sc.Vod_core.Scenario.graph link)
      ()
  in
  let params = { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = passes } in
  let report, solve_s = timed (fun () -> Vod_placement.Solve.solve ~solver ~params inst) in
  let sol = report.Vod_placement.Solve.solution in
  Printf.printf "passes        %d\n" report.Vod_placement.Solve.passes;
  Printf.printf "time          %.2f s\n" solve_s;
  Printf.printf "LP objective  %.1f (violation %.2f%%)\n" report.Vod_placement.Solve.lp_objective
    (100.0 *. report.Vod_placement.Solve.lp_violation);
  Printf.printf "MIP objective %.1f (violation %.2f%%)\n" sol.Vod_placement.Solution.objective
    (100.0 *. sol.Vod_placement.Solution.max_violation);
  Printf.printf "lower bound   %.1f (gap %.1f%%)\n" sol.Vod_placement.Solution.lower_bound
    (100.0 *. Vod_placement.Solution.gap sol);
  let copies = Array.init videos (fun v -> Vod_placement.Solution.copies sol v) in
  let total = Array.fold_left ( + ) 0 copies in
  Printf.printf "copies        %d total (%.2f per video)\n" total
    (float_of_int total /. float_of_int videos);
  Option.iter
    (fun path ->
      Vod_placement.Solution_io.save_csv sol path;
      Printf.printf "placement exported to %s\n" path)
    placement_out

(* ---- simulate ---- *)

let scheme_t =
  let schemes = [ "mip"; "lru"; "lfu"; "topk"; "origin" ] in
  Arg.(
    value
    & opt (enum (List.map (fun s -> (s, s)) schemes)) "mip"
    & info [ "scheme" ] ~docv:"S" ~doc:"Scheme: mip, lru, lfu, topk, origin.")

let faults_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Play out under a fault schedule: a CSV file (time_s,event,args — see DESIGN.md) or a canned scenario $(b,single-vho)[:VHO], $(b,correlated)[:VHO], $(b,flash-crowd)[:VHO] (default target: the largest metro).")

let playout_link_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "link-capacity" ] ~docv:"MBPS"
        ~doc:
          "Per-directed-link bandwidth budget enforced at playout time (streams are admitted against residual capacity; default unlimited). Implies the failover-serving playout mode.")

let origin_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "origin" ] ~docv:"VHO"
        ~doc:"Last-resort origin server for failover routing (holds the full library).")

let soa_t =
  Arg.(
    value & flag
    & info [ "soa" ]
        ~doc:
          "Generate and play through the compact struct-of-arrays request store (16 bytes/request, off-heap). Output is byte-identical to the default array-backed path; this is the memory profile the million-video $(b,huge) bench tier uses.")

(* --faults SPEC: canned scenario name (optionally ":VHO") or a CSV path. *)
let schedule_of_spec sc spec =
  let name, target =
    match String.index_opt spec ':' with
    | Some i ->
        let v = String.sub spec (i + 1) (String.length spec - i - 1) in
        let vho =
          match int_of_string_opt v with
          | Some vho -> vho
          | None -> failwith (Printf.sprintf "bad VHO %S in --faults %s" v spec)
        in
        (String.sub spec 0 i, Some vho)
    | None -> (spec, None)
  in
  match name with
  | "single-vho" -> Vod_core.Scenario.single_vho_outage ?vho:target sc
  | "correlated" -> Vod_core.Scenario.correlated_outage ?vho:target sc
  | "flash-crowd" -> Vod_core.Scenario.flash_crowd ?vho:target sc
  | _ ->
      Vod_resil.Event.load_csv
        ~n_vhos:(Vod_topology.Graph.n_nodes sc.Vod_core.Scenario.graph)
        ~n_links:(Vod_topology.Graph.n_links sc.Vod_core.Scenario.graph)
        spec

let simulate topology topology_file trace_file videos days rpv seed disk link passes
    scheme solver faults playout_link origin soa verbose jobs metrics =
  setup_logs verbose jobs;
  with_metrics metrics @@ fun () ->
  let sc =
    scenario_of ?topology_file ?trace_file ~soa ~topology ~videos ~days ~rpv
      ~seed ()
  in
  let resil =
    match (faults, playout_link, origin) with
    | None, None, None -> None
    | _ ->
        let schedule =
          match faults with
          | None -> Vod_resil.Event.empty
          | Some spec -> schedule_of_spec sc spec
        in
        Some
          (Vod_resil.Playout.config ~schedule
             ?link_capacity_mbps:playout_link ?origin ())
  in
  let cfg =
    {
      (Vod_core.Pipeline.default_config ~scenario:sc
         ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:disk)
         ~link_capacity_mbps:link)
      with
      Vod_core.Pipeline.resil;
      soa;
    }
  in
  let mip =
    {
      Vod_core.Pipeline.default_mip with
      Vod_core.Pipeline.engine =
        { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = passes };
      Vod_core.Pipeline.solver;
    }
  in
  let scheme =
    match scheme with
    | "lru" -> Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru
    | "lfu" -> Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lfu
    | "topk" -> Vod_core.Pipeline.Topk_lru 100
    | "origin" -> Vod_core.Pipeline.Origin_lru 4
    | _ -> Vod_core.Pipeline.Mip mip
  in
  let r = Vod_core.Pipeline.run cfg scheme in
  let m = r.Vod_core.Pipeline.metrics in
  Printf.printf "scheme           %s\n" r.Vod_core.Pipeline.scheme_name;
  Printf.printf "requests         %d\n" m.Vod_sim.Metrics.requests;
  Printf.printf "served locally   %.1f%%\n" (100.0 *. Vod_sim.Metrics.local_fraction m);
  Printf.printf "peak link        %.0f Mb/s\n" (Vod_sim.Metrics.max_link_mbps m);
  Printf.printf "peak aggregate   %.0f Mb/s\n" (Vod_sim.Metrics.max_aggregate_mbps m);
  Printf.printf "total transfer   %.0f GB x hop\n" m.Vod_sim.Metrics.total_gb_hops;
  Printf.printf "not cachable     %d\n" m.Vod_sim.Metrics.not_cachable;
  if resil <> None then begin
    let deg = m.Vod_sim.Metrics.deg in
    Printf.printf "rejections       %d (%.2f%% of requests)\n"
      deg.Vod_sim.Metrics.rejections
      (100.0 *. Vod_sim.Metrics.rejection_rate m);
    Printf.printf "  vho down       %d\n" deg.Vod_sim.Metrics.rejected_vho_down;
    Printf.printf "  no replica     %d\n" deg.Vod_sim.Metrics.rejected_no_replica;
    Printf.printf "  unreachable    %d\n" deg.Vod_sim.Metrics.rejected_unreachable;
    Printf.printf "  no capacity    %d\n" deg.Vod_sim.Metrics.rejected_no_capacity;
    Printf.printf "failovers        %d (+%d extra hops)\n"
      deg.Vod_sim.Metrics.failovers deg.Vod_sim.Metrics.failover_extra_hops;
    Printf.printf "origin served    %d\n" deg.Vod_sim.Metrics.origin_served;
    Printf.printf "link saturation  %.0f s\n" deg.Vod_sim.Metrics.link_saturated_s;
    Printf.printf "event windows    (day range: requests / rejections / failovers)\n";
    List.iter
      (fun (w : Vod_resil.Playout.window) ->
        Printf.printf "  %6.2f-%6.2f  %-24s %8d / %6d / %6d\n"
          (w.Vod_resil.Playout.t0_s /. 86_400.0)
          (w.Vod_resil.Playout.t1_s /. 86_400.0)
          w.Vod_resil.Playout.trigger w.Vod_resil.Playout.requests
          w.Vod_resil.Playout.rejections w.Vod_resil.Playout.failovers)
      r.Vod_core.Pipeline.resil_windows
  end;
  List.iter
    (fun (transfers, gb) ->
      Printf.printf "placement update: %d videos moved (%.0f GB)\n" transfers gb)
    r.Vod_core.Pipeline.migrations

(* ---- serve ---- *)

let update_hours_t =
  Arg.(
    value
    & opt float 6.0
    & info [ "update-hours" ] ~docv:"H"
        ~doc:"Replan cadence of the online daemon in hours.")

let budget_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"GB"
        ~doc:
          "Per-replan migration budget in GB; deltas beyond it are deferred to later replans (default: unrestricted).")

let cold_start_t =
  Arg.(
    value & flag
    & info [ "cold-start" ]
        ~doc:"Solve each replan from scratch instead of warm-starting from the incumbent placement.")

let no_fault_react_t =
  Arg.(
    value & flag
    & info [ "no-fault-react" ]
        ~doc:"Replan only on the periodic cadence, ignoring fault/repair events.")

let serve topology topology_file trace_file videos days rpv seed disk link passes
    solver faults playout_link origin update_hours budget cold_start no_fault_react
    verbose jobs metrics =
  setup_logs verbose jobs;
  with_metrics metrics @@ fun () ->
  let sc = scenario_of ?topology_file ?trace_file ~topology ~videos ~days ~rpv ~seed () in
  let resil =
    match (faults, playout_link, origin) with
    | None, None, None -> None
    | _ ->
        let schedule =
          match faults with
          | None -> Vod_resil.Event.empty
          | Some spec -> schedule_of_spec sc spec
        in
        Some
          (Vod_resil.Playout.config ~schedule
             ?link_capacity_mbps:playout_link ?origin ())
  in
  let cfg =
    Vod_core.Pipeline.default_config ~scenario:sc
      ~disk_gb:(Vod_core.Scenario.uniform_disk sc ~multiple:disk)
      ~link_capacity_mbps:link
  in
  let mip =
    {
      Vod_core.Pipeline.default_mip with
      Vod_core.Pipeline.engine =
        { Vod_epf.Engine.default_params with Vod_epf.Engine.max_passes = passes };
      Vod_core.Pipeline.solver;
    }
  in
  let daemon_cfg =
    {
      Vod_serve.Daemon.default_config with
      Vod_serve.Daemon.update_every_s = update_hours *. 3600.0;
      Vod_serve.Daemon.migration_budget_gb =
        (match budget with Some gb -> gb | None -> infinity);
      Vod_serve.Daemon.warm_start = not cold_start;
      Vod_serve.Daemon.react_to_faults = not no_fault_react;
    }
  in
  let r =
    Vod_serve.Daemon.run ~graph:sc.Vod_core.Scenario.graph
      ~paths:sc.Vod_core.Scenario.paths ~catalog:sc.Vod_core.Scenario.catalog
      ~trace:sc.Vod_core.Scenario.trace
      ~problem:(Vod_core.Pipeline.replan_problem cfg mip)
      ?resil ~bin_s:cfg.Vod_core.Pipeline.bin_s
      ~record_from:
        (float_of_int cfg.Vod_core.Pipeline.warmup_days
        *. Vod_workload.Trace.seconds_per_day)
      daemon_cfg
  in
  let m = r.Vod_serve.Daemon.metrics in
  Printf.printf "daemon           update every %.1f h, budget %s, %s, %s\n"
    update_hours
    (match budget with Some gb -> Printf.sprintf "%.0f GB" gb | None -> "unlimited")
    (if cold_start then "cold start" else "warm start")
    (if no_fault_react then "periodic only" else "fault-reactive");
  Printf.printf "requests         %d\n" m.Vod_sim.Metrics.requests;
  Printf.printf "served locally   %.1f%%\n" (100.0 *. Vod_sim.Metrics.local_fraction m);
  Printf.printf "peak link        %.0f Mb/s\n" (Vod_sim.Metrics.max_link_mbps m);
  Printf.printf "total transfer   %.0f GB x hop\n" m.Vod_sim.Metrics.total_gb_hops;
  Printf.printf "replans          %d (+1 bootstrap)\n"
    (List.length r.Vod_serve.Daemon.replans - 1);
  Printf.printf "deltas           %d applied / %d deferred, %.0f GB moved\n"
    (Vod_serve.Daemon.total_applied r)
    (Vod_serve.Daemon.total_deferred r)
    (Vod_serve.Daemon.total_moved_gb r);
  if resil <> None then begin
    let deg = m.Vod_sim.Metrics.deg in
    Printf.printf "rejections       %d (%.2f%% of requests)\n"
      deg.Vod_sim.Metrics.rejections
      (100.0 *. Vod_sim.Metrics.rejection_rate m);
    Printf.printf "failovers        %d (+%d extra hops)\n"
      deg.Vod_sim.Metrics.failovers deg.Vod_sim.Metrics.failover_extra_hops
  end;
  Printf.printf "replan log       (day: trigger, deltas applied/deferred, GB moved)\n";
  List.iter
    (fun (rp : Vod_serve.Daemon.replan) ->
      Printf.printf "  %6.2f  %-18s %5d / %5d  %8.0f GB\n"
        (rp.Vod_serve.Daemon.t_s /. 86_400.0)
        rp.Vod_serve.Daemon.trigger rp.Vod_serve.Daemon.applied
        rp.Vod_serve.Daemon.deferred rp.Vod_serve.Daemon.moved_gb)
    r.Vod_serve.Daemon.replans

(* ---- sweep ---- *)

let sweep topology topology_file videos days rpv seed link verbose jobs metrics =
  setup_logs verbose jobs;
  with_metrics metrics @@ fun () ->
  let sc = scenario_of ?topology_file ~topology ~videos ~days ~rpv ~seed () in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let graph = sc.Vod_core.Scenario.graph in
  let lib = Vod_core.Scenario.library_gb sc in
  let n = Vod_topology.Graph.n_nodes graph in
  List.iter
    (fun factor ->
      let cap = factor *. link in
      let result =
        Vod_placement.Feasibility.min_disk_multiplier ~lo:1.05 ~hi:8.0 ~tol:0.08
          ~graph ~catalog:sc.Vod_core.Scenario.catalog ~demand
          ~link_capacity_mbps:cap
          ~disk_of:(fun m -> Vod_placement.Instance.uniform_disk ~total_gb:(m *. lib) n)
          ()
      in
      match result with
      | Some m -> Printf.printf "link %6.0f Mb/s -> min disk %.2f x library\n%!" cap m
      | None -> Printf.printf "link %6.0f Mb/s -> infeasible below 8 x library\n%!" cap)
    [ 0.5; 1.0; 2.0; 4.0 ]

(* ---- command wiring ---- *)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Trace analytics (working set, request-mix similarity)")
    Term.(
      const stats $ topology_t $ topology_file_t $ trace_file_t $ trace_out_t
      $ videos_t $ days_t $ rpv_t $ seed_t $ verbose_t $ jobs_t $ metrics_t)

let solve_cmd =
  Cmd.v (Cmd.info "solve" ~doc:"Solve one placement instance")
    Term.(
      const solve $ topology_t $ topology_file_t $ trace_file_t $ placement_out_t
      $ videos_t $ days_t $ rpv_t $ seed_t $ disk_t $ link_t $ passes_t $ solver_t
      $ verbose_t $ jobs_t $ metrics_t)

let simulate_cmd =
  Cmd.v (Cmd.info "simulate" ~doc:"Replay the trace against a distribution scheme")
    Term.(
      const simulate $ topology_t $ topology_file_t $ trace_file_t $ videos_t
      $ days_t $ rpv_t $ seed_t $ disk_t $ link_t $ passes_t $ scheme_t $ solver_t
      $ faults_t $ playout_link_t $ origin_t $ soa_t $ verbose_t $ jobs_t $ metrics_t)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the trace through the online re-placement daemon (continuous replans under a migration budget)")
    Term.(
      const serve $ topology_t $ topology_file_t $ trace_file_t $ videos_t
      $ days_t $ rpv_t $ seed_t $ disk_t $ link_t $ passes_t $ solver_t $ faults_t
      $ playout_link_t $ origin_t $ update_hours_t $ budget_t $ cold_start_t
      $ no_fault_react_t $ verbose_t $ jobs_t $ metrics_t)

let sweep_cmd =
  Cmd.v (Cmd.info "sweep" ~doc:"Feasibility sweep: min disk per link capacity")
    Term.(
      const sweep $ topology_t $ topology_file_t $ videos_t $ days_t $ rpv_t
      $ seed_t $ link_t $ verbose_t $ jobs_t $ metrics_t)

let () =
  let info =
    Cmd.info "vodopt" ~version:"1.0.0"
      ~doc:"Optimal content placement for a large-scale VoD system (CoNEXT 2010 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info [ stats_cmd; solve_cmd; simulate_cmd; serve_cmd; sweep_cmd ]))
