(* Solver-backend convergence exhibit: the stabilized Benders /
   Dantzig-Wolfe cutting-plane master vs the EPF potential engine on the
   same instances, dispatched through the backend registry.

   Two parts:

   1. An exact sanity anchor: a tiny 4-VHO instance small enough for the
      dense simplex backend, where every backend's fractional objective
      is compared against the exact LP optimum.

   2. The convergence race on an Ebone-scale instance (videos >> VHOs,
      so per-VHO disks hold many unit-videos and rounding is honest):
      per-backend passes run, passes to a 1% gap, wall-clock, fractional
      and rounded cost, and the certified Lagrangian bound.

   "Passes to 1% gap" is computed post hoc from the per-pass history:
   the first pass whose fractional point is epsilon-feasible and within
   1% of the backend's final fractional objective (the Lagrangian bound
   from the blocks' dual-ascent oracles is too loose on both backends to
   certify 1% directly; EXPERIMENTS.md discusses the distinction). *)

module I = Vod_placement.Instance
module Sol = Vod_placement.Solution
module Solve = Vod_placement.Solve
module G = Vod_topology.Graph

let race_videos =
  match Common.scale with Quick -> 120 | Default -> 200 | Full | Huge -> 400

let race_passes =
  match Common.scale with Quick -> 30 | Default -> 40 | Full | Huge -> 50

let race_days = match Common.scale with Quick | Default -> 7 | Full | Huge -> 14

(* Ebone instance for the race: 23 VHOs, videos >> VHOs, disks at 3x the
   library (binding but integrally packable: tens of unit-videos per
   VHO). *)
let race_instance () =
  let sc =
    Vod_core.Scenario.make ~days:race_days ~requests_per_video_per_day:6.0
      ~seed:42 ~graph:(Vod_topology.Topologies.ebone ()) ~n_videos:race_videos
      ()
  in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:3.0 in
  I.create ~graph:sc.Vod_core.Scenario.graph
    ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
    ~link_capacity_mbps:
      (I.uniform_links sc.Vod_core.Scenario.graph 1000.0)
    ()

(* Tiny 4-VHO / 8-video instance the dense simplex backend solves
   exactly (the same world test/test_decomp.ml pins). *)
let tiny_instance () =
  let graph =
    G.create ~name:"ring4" ~n:4
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
      ~populations:[| 4.0; 3.0; 2.0; 1.0 |]
  in
  let catalog =
    Vod_workload.Catalog.generate
      (Vod_workload.Catalog.default_params ~n:8 ~days:7 ~seed:11)
  in
  let trace =
    Vod_workload.Tracegen.generate
      (Vod_workload.Tracegen.default_params ~catalog
         ~populations:graph.G.populations ~mean_daily_requests:600.0 ~seed:12)
  in
  let demand =
    Vod_workload.Demand.of_requests catalog ~n_vhos:4 ~day0:0 ~days:7
      ~n_windows:2 ~window_s:3600.0 trace.Vod_workload.Trace.requests
  in
  let total = Vod_workload.Catalog.total_size_gb catalog in
  I.create ~graph ~catalog ~demand
    ~disk_gb:(I.uniform_disk ~total_gb:(2.0 *. total) 4)
    ~link_capacity_mbps:(I.uniform_links graph 200.0)
    ()

(* First pass whose fractional point is epsilon-feasible and within
   [gap] of the final fractional objective; None if never. *)
let passes_to_gap ?(eps = 0.01) ?(gap = 0.01) (report : Solve.report) =
  let final = report.Solve.lp_objective in
  let n = Array.length report.Solve.history in
  let rec go i =
    if i >= n then None
    else
      let obj, _, viol = report.Solve.history.(i) in
      if viol <= eps && obj -. final <= gap *. Float.abs final then Some (i + 1)
      else go (i + 1)
  in
  go 0

let best_lower_bound (report : Solve.report) =
  Array.fold_left
    (fun acc (_, lb, _) -> Float.max acc lb)
    neg_infinity report.Solve.history

let exact_anchor () =
  Common.section "Decomposition — exact LP anchor (4 VHOs, 8 videos)";
  let inst = tiny_instance () in
  let exact =
    (Solve.solve ~solver:"simplex" inst).Solve.lp_objective
  in
  let rows =
    List.map
      (fun solver ->
        let report, dt = Common.timed (fun () -> Solve.solve ~solver inst) in
        let lp = report.Solve.lp_objective in
        [
          solver;
          Printf.sprintf "%.2f" lp;
          Common.fmt_pct ((lp -. exact) /. exact);
          Common.fmt_pct report.Solve.lp_violation;
          Printf.sprintf "%.0f"
            report.Solve.solution.Sol.objective;
          Printf.sprintf "%.2f" dt;
        ])
      [ "simplex"; "benders"; "epf" ]
  in
  Vod_util.Table.print
    ~header:
      [
        "backend"; "LP objective"; "vs exact"; "LP violation"; "MIP cost";
        "time (s)";
      ]
    rows;
  Common.note
    "exact LP optimum %.4f (simplex reference); benders must land within 1%%."
    exact

let convergence_race () =
  Common.section
    (Printf.sprintf
       "Decomposition — convergence race, Ebone 23 VHOs, %d videos, %d passes"
       race_videos race_passes);
  let inst = race_instance () in
  let params =
    {
      Vod_epf.Engine.default_params with
      Vod_epf.Engine.max_passes = race_passes;
    }
  in
  let reports =
    List.map
      (fun solver ->
        let report, dt =
          Common.timed (fun () -> Solve.solve ~solver ~params inst)
        in
        (solver, report, dt))
      [ "epf"; "benders" ]
  in
  let rows =
    List.map
      (fun (solver, (report : Solve.report), dt) ->
        let lb = best_lower_bound report in
        let sol = report.Solve.solution in
        [
          solver;
          string_of_int report.Solve.passes;
          (match passes_to_gap report with
          | Some p -> string_of_int p
          | None -> "-");
          Printf.sprintf "%.1f" dt;
          Printf.sprintf "%.0f" report.Solve.lp_objective;
          Common.fmt_pct report.Solve.lp_violation;
          Printf.sprintf "%.0f" sol.Sol.objective;
          Common.fmt_pct sol.Sol.max_violation;
          Printf.sprintf "%.0f" lb;
          Common.fmt_pct ((report.Solve.lp_objective -. lb) /. lb);
        ])
      reports
  in
  Vod_util.Table.print
    ~header:
      [
        "backend"; "passes"; "to 1% gap"; "time (s)"; "LP obj"; "LP viol";
        "MIP cost"; "MIP viol"; "lower bound"; "cert. gap";
      ]
    rows;
  (* Convergence trace of the benders master: every pass near the start,
     then every fifth. *)
  (match List.find_opt (fun (s, _, _) -> s = "benders") reports with
  | Some (_, report, _) ->
      Common.note "\nbenders master trace (pass: objective / bound / violation):";
      Array.iteri
        (fun i (obj, lb, viol) ->
          if i < 5 || (i + 1) mod 5 = 0 || i = Array.length report.Solve.history - 1
          then
            Common.note "  pass %2d: %.1f / %.1f / %s" (i + 1) obj lb
              (Common.fmt_pct viol))
        report.Solve.history
  | None -> ());
  Common.note
    "\n'to 1%% gap' = first epsilon-feasible pass within 1%% of the backend's final\n\
     fractional objective; 'cert. gap' is vs the Lagrangian dual-ascent bound,\n\
     which is loose for both backends (see EXPERIMENTS.md)."

let run () =
  exact_anchor ();
  convergence_race ()
