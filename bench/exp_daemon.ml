(* Continuous re-placement vs batch updates (the online extension of
   Sec. VII-H): the same faulted scenario — one VHO outage plus a
   per-link playout budget — served three ways. Weekly and daily batch
   pipelines re-solve at fixed day boundaries and migrate everything at
   once; the daemon replans every six hours (and at every fault/repair
   event) on a sliding demand window, warm-starting the solver from the
   incumbent placement and migrating only what a per-replan byte budget
   affords. The point of the exhibit: continuous small deltas track
   demand drift and route around the outage at a fraction of the batch
   policies' migration bytes. *)

let videos =
  match Common.scale with
  | Common.Quick -> 250
  | Common.Default -> 600
  | Common.Full | Common.Huge -> 1500

let days = 10
let warmup_days = 3
let seed = 11

let scenario () =
  Vod_core.Scenario.backbone ~days ~requests_per_video_per_day:8.0 ~seed
    ~n_videos:videos ()

type row = {
  policy : string;
  replans : int;
  moved_gb : float;
  applied : int;
  deferred : int;
  metrics : Vod_sim.Metrics.t;
}

let fmt_row r =
  [
    r.policy;
    string_of_int r.replans;
    Printf.sprintf "%.0f" r.moved_gb;
    string_of_int r.applied;
    string_of_int r.deferred;
    Common.fmt_pct (Vod_sim.Metrics.rejection_rate r.metrics);
    Common.fmt_pct (Vod_sim.Metrics.local_fraction r.metrics);
    Common.fmt_gbps (Vod_sim.Metrics.max_link_mbps r.metrics);
  ]

let batch_row policy (r : Vod_core.Pipeline.result) =
  let applied = List.fold_left (fun acc (t, _) -> acc + t) 0 r.Vod_core.Pipeline.migrations in
  let moved_gb =
    List.fold_left (fun acc (_, gb) -> acc +. gb) 0.0 r.Vod_core.Pipeline.migrations
  in
  {
    policy;
    replans = List.length r.Vod_core.Pipeline.migrations;
    moved_gb;
    applied;
    deferred = 0;
    metrics = r.Vod_core.Pipeline.metrics;
  }

let run () =
  Common.section
    "exp_daemon — continuous re-placement vs weekly/daily batch updates";
  let sc = scenario () in
  let lp_link = Common.calibrate_link_capacity sc ~disk_multiple:2.0 in
  let playout_cap = 1.5 *. lp_link in
  (* The canned outage window (40-70 % of the trace) falls inside the
     bootstrap week here, before any replan boundary exists. Place the
     outage of the same target VHO explicitly at days 7.3-8.3 — off the
     6-hour tick grid, so the daemon replans at the failure and repair
     instants themselves, while the daily batch sees them only at the
     next day boundary and the weekly batch never does. *)
  let fault_vho = Vod_core.Scenario.default_fault_vho sc in
  let spd = Vod_workload.Trace.seconds_per_day in
  let schedule =
    Vod_resil.Event.create
      [
        { Vod_resil.Event.time_s = 7.3 *. spd;
          kind = Vod_resil.Event.Vho_down fault_vho };
        { Vod_resil.Event.time_s = 8.3 *. spd;
          kind = Vod_resil.Event.Vho_up fault_vho };
      ]
  in
  let resil =
    Vod_resil.Playout.config ~schedule ~link_capacity_mbps:playout_cap ()
  in
  Common.note
    "LP link constraint %.0f Mb/s; playout budget %.0f Mb/s; VHO %d dark days 7.3-8.3"
    lp_link playout_cap fault_vho;
  let mip = Common.mip_config in
  let cfg =
    let base =
      Common.pipeline_config ~disk_multiple:2.0 ~link_capacity_mbps:lp_link sc
    in
    { base with Vod_core.Pipeline.warmup_days; Vod_core.Pipeline.resil = Some resil }
  in
  let batch update_days =
    Vod_core.Pipeline.run cfg
      (Vod_core.Pipeline.Mip { mip with Vod_core.Pipeline.update_days })
  in
  let weekly, dt_w = Common.timed (fun () -> batch 7) in
  Common.note "  weekly batch: %.1fs" dt_w;
  let daily, dt_d = Common.timed (fun () -> batch 1) in
  Common.note "  daily batch: %.1fs" dt_d;
  (* The daemon's per-replan byte budget: an eighth of what the daily
     batch moved in total — small enough that the budget visibly defers
     deltas, large enough to track the outage. (The weekly batch is no
     yardstick: its single update can move ~nothing when the day-7
     prediction matches the bootstrap week.) *)
  let daily_gb =
    List.fold_left (fun acc (_, gb) -> acc +. gb) 0.0
      daily.Vod_core.Pipeline.migrations
  in
  let budget_gb = Float.max 25.0 (daily_gb /. 8.0) in
  let daemon_cfg =
    {
      Vod_serve.Daemon.default_config with
      Vod_serve.Daemon.estimator = mip.Vod_core.Pipeline.estimator;
      Vod_serve.Daemon.migration_budget_gb = budget_gb;
    }
  in
  let problem = Vod_core.Pipeline.replan_problem cfg mip in
  let dres, dt_c =
    Common.timed (fun () ->
        Vod_serve.Daemon.run ~graph:sc.Vod_core.Scenario.graph
          ~paths:sc.Vod_core.Scenario.paths ~catalog:sc.Vod_core.Scenario.catalog
          ~trace:sc.Vod_core.Scenario.trace ~problem ~resil ~bin_s:cfg.Vod_core.Pipeline.bin_s
          ~record_from:
            (float_of_int warmup_days *. Vod_workload.Trace.seconds_per_day)
          daemon_cfg)
  in
  Common.note "  daemon (6h cadence, %.0f GB/replan budget): %.1fs" budget_gb
    dt_c;
  let daemon_row =
    {
      policy = "continuous (6h)";
      replans = List.length dres.Vod_serve.Daemon.replans - 1;
      moved_gb = Vod_serve.Daemon.total_moved_gb dres;
      applied = Vod_serve.Daemon.total_applied dres;
      deferred = Vod_serve.Daemon.total_deferred dres;
      metrics = dres.Vod_serve.Daemon.metrics;
    }
  in
  Vod_util.Table.print
    ~header:
      [
        "update policy"; "replans"; "GB moved"; "deltas applied";
        "deltas deferred"; "rejected"; "locally served"; "max BW (Gb/s)";
      ]
    [ fmt_row (batch_row "weekly batch" weekly);
      fmt_row (batch_row "daily batch" daily);
      fmt_row daemon_row ];
  let fault_replans =
    List.length
      (List.filter
         (fun (r : Vod_serve.Daemon.replan) ->
           r.Vod_serve.Daemon.trigger <> "periodic"
           && r.Vod_serve.Daemon.trigger <> "bootstrap")
         dres.Vod_serve.Daemon.replans)
  in
  Common.note
    "daemon: %d of %d replans were fault-triggered; batch policies replan only at day boundaries."
    fault_replans daemon_row.replans
