(* Shared infrastructure for the benchmark harness: scenario scales,
   timing helpers and report formatting. Every experiment regenerates one
   of the paper's figures or tables (see DESIGN.md's experiment index);
   EXPERIMENTS.md records paper-vs-measured values. *)

type scale = Quick | Default | Full | Huge

let scale =
  match Sys.getenv_opt "VOD_SCALE" with
  | Some "quick" -> Quick
  | Some "full" -> Full
  | Some "huge" -> Huge
  | Some _ | None -> Default

let scale_name =
  match scale with
  | Quick -> "quick"
  | Default -> "default"
  | Full -> "full"
  | Huge -> "huge"

(* Library size used by the simulation-driven experiments. The paper
   plays a month of an operational trace against 55 VHOs; we scale the
   synthetic trace so that a solve takes seconds and the playout minutes
   on one core. The huge tier keeps the comparative exhibits at the full
   size — its million-video end-to-end run is a dedicated exhibit
   (exp_scaling) over the compact struct-of-arrays store, not a scaling
   of every figure. *)
let sim_videos =
  match scale with Quick -> 600 | Default -> 2000 | Full | Huge -> 5000

(* The huge tier's catalog: a million videos, the paper's "very large
   library" regime (Sec. VIII discusses libraries of this order). *)
let huge_videos = 1_000_000

(* Upper bisection bound for minimum-feasible-link-capacity searches
   (Table V and friends). Demand grows with the tier's request volume,
   so the bound — and the ">BOUND" infeasibility label derived from it —
   scales with the tier instead of hard-coding one ceiling. *)
let feasibility_hi_mbps =
  match scale with Quick | Default | Full -> 200_000.0 | Huge -> 2_000_000.0

let requests_per_video_per_day = 13.0

let days = 28

(* Engine parameter presets. *)
let solve_params =
  {
    Vod_epf.Engine.default_params with
    Vod_epf.Engine.max_passes = (match scale with Quick -> 25 | _ -> 50);
  }

let probe_params =
  {
    Vod_placement.Feasibility.default_probe_params with
    Vod_epf.Engine.max_passes = (match scale with Quick -> 10 | _ -> 18);
  }

let mip_config =
  { Vod_core.Pipeline.default_mip with Vod_core.Pipeline.engine = solve_params }

let backbone_scenario ?(n_videos = sim_videos) ?(seed = 42) () =
  Vod_core.Scenario.backbone ~days ~requests_per_video_per_day ~seed ~n_videos ()

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run independent playout thunks across the domain pool, results in
   list order (each element usually a (result, seconds) pair from
   [timed]). The thunks must not print — the per-fleet playouts write
   only into their own metrics — so format tables after collecting.
   The pool is capped at the thunk count; a MIP playout's solver may
   still open its own inner pool, which is bounded oversubscription,
   not a correctness issue (results are deterministic per scheme). *)
let parallel_runs thunks =
  let arr = Array.of_list thunks in
  let jobs = min (Vod_util.Pool.default_jobs ()) (max 1 (Array.length arr)) in
  Vod_util.Pool.with_pool ~jobs (fun pool ->
      Vod_util.Pool.map pool ~f:(fun f -> f ()) arr)
  |> Array.to_list

let fmt_gbps mbps = Printf.sprintf "%.2f" (mbps /. 1000.0)

let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

(* Pipeline configuration used by the comparative experiments. The link
   capacity given to the MIP is calibrated per scenario (the paper uses
   1 Gb/s because that is where its demand binds). *)
let pipeline_config ?(disk_multiple = 2.0) ?(link_capacity_mbps = 1000.0)
    (scenario : Vod_core.Scenario.t) =
  let disk = Vod_core.Scenario.uniform_disk scenario ~multiple:disk_multiple in
  Vod_core.Pipeline.default_config ~scenario ~disk_gb:disk ~link_capacity_mbps

(* Calibrate the MIP's link-capacity constraint: the smallest uniform
   capacity for which the bootstrap week is epsilon-feasible, rounded up
   a little. This mirrors the paper's choice of a capacity that actually
   binds (Sec. VII-B). *)
let calibrate_link_capacity (scenario : Vod_core.Scenario.t) ~disk_multiple =
  let demand = Vod_core.Scenario.demand_of_week scenario ~day0:0 () in
  let disk =
    Array.map
      (fun d -> d *. 0.95)
      (Vod_core.Scenario.uniform_disk scenario ~multiple:disk_multiple)
  in
  match
    Vod_placement.Feasibility.min_link_capacity ~params:probe_params ~lo:20.0
      ~hi:20_000.0 ~tol:0.1 ~graph:scenario.Vod_core.Scenario.graph
      ~catalog:scenario.Vod_core.Scenario.catalog ~demand ~disk_gb:disk ()
  with
  | Some mbps -> 1.15 *. mbps
  | None -> 2_000.0
