(* Trace-analytics experiments: the paper's motivation figures.

   Fig. 2 — working-set size during peak hours, per VHO, as a fraction of
            the library (both video count and disk space).
   Fig. 3 — cosine similarity of the request mix between the peak interval
            and the previous interval, versus time-window size.
   Fig. 4 — daily request counts for consecutive episodes of one series. *)

let fig2_working_set (sc : Vod_core.Scenario.t) =
  Common.section "Fig. 2 — working-set size during peak hours";
  let trace = sc.Vod_core.Scenario.trace in
  let catalog = sc.Vod_core.Scenario.catalog in
  let peak = Vod_workload.Stats.peak_hour_start_s trace in
  let n = Vod_topology.Graph.n_nodes sc.Vod_core.Scenario.graph in
  let lib_gb = Vod_workload.Catalog.total_size_gb catalog in
  let lib_n = float_of_int (Vod_workload.Catalog.n_videos catalog) in
  let rows = ref [] in
  let fracs = ref [] in
  for vho = 0 to n - 1 do
    let distinct, gb =
      Vod_workload.Stats.working_set trace catalog ~vho ~t0:peak ~t1:(peak +. 3600.0)
    in
    fracs := (float_of_int distinct /. lib_n, gb /. lib_gb) :: !fracs
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare b a) !fracs in
  List.iteri
    (fun rank (video_frac, gb_frac) ->
      if rank < 10 || rank mod 5 = 0 then
        rows :=
          [ string_of_int (rank + 1); Common.fmt_pct video_frac; Common.fmt_pct gb_frac ]
          :: !rows)
    sorted;
  Vod_util.Table.print
    ~header:[ "VHO rank"; "working set (videos)"; "working set (disk)" ]
    (List.rev !rows);
  let max_frac = List.fold_left (fun acc (v, _) -> Float.max acc v) 0.0 sorted in
  Common.note
    "paper: max ~25%% of library; ~10 VHOs above 1/8. measured max: %s"
    (Common.fmt_pct max_frac)

let fig3_cosine (sc : Vod_core.Scenario.t) =
  Common.section "Fig. 3 — request-mix similarity vs window size";
  let trace = sc.Vod_core.Scenario.trace in
  let windows =
    [ ("30 min", 1800.0); ("1 hour", 3600.0); ("4 hours", 14_400.0); ("1 day", 86_400.0) ]
  in
  let rows =
    List.map
      (fun (label, w) ->
        let sims = Vod_workload.Stats.peak_interval_similarity trace ~window_s:w in
        [
          label;
          Printf.sprintf "%.3f" (Vod_util.Stats_acc.mean sims);
          Printf.sprintf "%.3f" (Vod_util.Stats_acc.min_elt sims);
          Printf.sprintf "%.3f" (Vod_util.Stats_acc.max_elt sims);
        ])
      windows
  in
  Vod_util.Table.print ~header:[ "window"; "mean cos-sim"; "min"; "max" ] rows;
  Common.note
    "paper: similarity high at day granularity, drops sharply for short windows."

let fig4_series (sc : Vod_core.Scenario.t) =
  Common.section "Fig. 4 — daily requests for episodes of one series";
  let trace = sc.Vod_core.Scenario.trace in
  let catalog = sc.Vod_core.Scenario.catalog in
  (* Pick the series whose in-trace episodes collect the most requests. *)
  let counts = Vod_workload.Trace.counts_per_video trace ~n_videos:(Vod_workload.Catalog.n_videos catalog) in
  let best_series = ref 0 and best_count = ref (-1) in
  for s = 0 to catalog.Vod_workload.Catalog.n_series - 1 do
    let total =
      List.fold_left
        (fun acc (v : Vod_workload.Video.t) ->
          if v.Vod_workload.Video.release_day > 0 then acc + counts.(v.Vod_workload.Video.id)
          else acc)
        0
        (Vod_workload.Catalog.series_episodes catalog s)
    in
    if total > !best_count then begin
      best_count := total;
      best_series := s
    end
  done;
  let episodes =
    Vod_workload.Catalog.series_episodes catalog !best_series
    |> List.filter (fun (v : Vod_workload.Video.t) -> v.Vod_workload.Video.release_day >= 0)
  in
  let header = "day" :: List.map (fun (v : Vod_workload.Video.t) ->
      match v.Vod_workload.Video.kind with
      | Vod_workload.Video.Episode e -> Printf.sprintf "ep%d" e.episode
      | _ -> "?") episodes in
  let dailies =
    List.map (fun (v : Vod_workload.Video.t) ->
        Vod_workload.Stats.daily_counts trace ~video:v.Vod_workload.Video.id)
      episodes
  in
  let rows = ref [] in
  for day = 0 to trace.Vod_workload.Trace.days - 1 do
    let row = string_of_int day :: List.map (fun d -> string_of_int d.(day)) dailies in
    rows := row :: !rows
  done;
  Vod_util.Table.print ~header (List.rev !rows);
  Common.note
    "paper: consecutive episodes show similar volume with a release-day spike — the basis of the series demand estimator."

let run sc =
  fig2_working_set sc;
  fig3_cosine sc;
  fig4_series sc
