(* Capacity-planning experiments built on the feasibility probe:

   Fig. 11  — the disk/bandwidth feasibility region: minimum aggregate
              disk (multiples of the library) vs uniform link capacity,
              for uniform and heterogeneous VHO disks.
   Table IV — minimum feasible link capacity per topology (backbone,
              tree, full mesh, Tiscali, Sprint, Ebone) at 3x disk.
   Fig. 13  — required link capacity (normalized per video) vs library
              size on the three RocketFuel-scale networks at 2x disk. *)

let feasibility_videos =
  match Common.scale with Quick -> 400 | Default -> 1000 | Full | Huge -> 2500

let fig11_region () =
  Common.section "Fig. 11 — feasibility region (min disk multiple vs link capacity)";
  let sc = Common.backbone_scenario ~n_videos:feasibility_videos () in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let graph = sc.Vod_core.Scenario.graph in
  let catalog = sc.Vod_core.Scenario.catalog in
  (* Anchor the sweep at the capacity that is feasible with 2x uniform
     disk, then sweep factors of it. *)
  let anchor = Common.calibrate_link_capacity sc ~disk_multiple:2.0 in
  let caps = List.map (fun f -> f *. anchor) [ 0.6; 0.8; 1.0; 1.5; 2.5 ] in
  let n = Vod_topology.Graph.n_nodes graph in
  let lib = Vod_workload.Catalog.total_size_gb catalog in
  let probe disk_of cap =
    Vod_placement.Feasibility.min_disk_multiplier ~params:Common.probe_params
      ~lo:1.05 ~hi:10.0 ~tol:0.08 ~graph ~catalog ~demand ~link_capacity_mbps:cap
      ~disk_of ()
  in
  let uniform mult = Vod_placement.Instance.uniform_disk ~total_gb:(mult *. lib) n in
  let hetero mult = Vod_core.Scenario.hetero_disk sc ~multiple:mult in
  let rows =
    List.map
      (fun cap ->
        let u = probe uniform cap and h = probe hetero cap in
        let show = function Some m -> Printf.sprintf "%.2f" m | None -> ">10" in
        [ Printf.sprintf "%.0f" cap; show u; show h; "1.00" ])
      caps
  in
  Vod_util.Table.print
    ~header:[ "link cap (Mb/s)"; "uniform disk (x lib)"; "hetero disk (x lib)"; "lower bound" ]
    rows;
  Common.note
    "paper: at 0.5 Gb/s uniform needs ~5x, heterogeneous <3x; both converge to 1x as links grow."

let table4_topology () =
  Common.section "Table IV — topology vs minimum feasible link capacity (3x disk)";
  let sc = Common.backbone_scenario ~n_videos:feasibility_videos () in
  let backbone = sc.Vod_core.Scenario.graph in
  let topologies =
    [
      ("backbone (original)", backbone);
      ("backbone tree", Vod_topology.Topologies.tree_of backbone);
      ("backbone full mesh", Vod_topology.Topologies.full_mesh_of backbone);
      ("tiscali", Vod_topology.Topologies.tiscali ());
      ("sprint", Vod_topology.Topologies.sprint ());
      ("ebone", Vod_topology.Topologies.ebone ());
    ]
  in
  let rows =
    List.map
      (fun (name, graph) ->
        (* Map demand onto the (possibly smaller) node set: a scenario over
           this graph with population-proportional demand, as the paper
           maps the busiest VHOs onto RocketFuel nodes. *)
        let sc' =
          Vod_core.Scenario.make ~days:7
            ~requests_per_video_per_day:Common.requests_per_video_per_day ~seed:42
            ~graph ~n_videos:feasibility_videos ()
        in
        let demand = Vod_core.Scenario.demand_of_week sc' ~day0:0 () in
        let disk = Vod_core.Scenario.uniform_disk sc' ~multiple:3.0 in
        let min_cap, dt =
          Common.timed (fun () ->
              Vod_placement.Feasibility.min_link_capacity
                ~params:Common.probe_params ~lo:10.0 ~hi:50_000.0 ~tol:0.1 ~graph
                ~catalog:sc'.Vod_core.Scenario.catalog ~demand ~disk_gb:disk ())
        in
        let shown = match min_cap with Some c -> Printf.sprintf "%.0f" c | None -> "?" in
        Common.note "  %s probed in %.1fs" name dt;
        [
          name;
          string_of_int (Vod_topology.Graph.n_nodes graph);
          string_of_int (Vod_topology.Graph.n_links graph / 2);
          shown;
        ])
      topologies
  in
  Vod_util.Table.print ~header:[ "topology"; "nodes"; "links"; "min link cap (Mb/s)" ] rows;
  Common.note
    "paper (Gb/s): original 0.8, tree 2.3, mesh 0.05, Tiscali 2.5, Sprint 0.6, Ebone 0.6 — more links means lower per-link capacity."

let fig13_library_growth () =
  Common.section "Fig. 13 — required link capacity vs library size (2x disk)";
  let sizes =
    match Common.scale with
    | Quick -> [ 300; 600 ]
    | Default -> [ 500; 1000; 2000 ]
    | Full | Huge -> [ 1000; 2000; 5000; 10_000 ]
  in
  let networks =
    [
      ("tiscali", Vod_topology.Topologies.tiscali ());
      ("sprint", Vod_topology.Topologies.sprint ());
      ("ebone", Vod_topology.Topologies.ebone ());
    ]
  in
  let rows =
    List.concat_map
      (fun (name, graph) ->
        List.map
          (fun n_videos ->
            let sc =
              Vod_core.Scenario.make ~days:7
                ~requests_per_video_per_day:Common.requests_per_video_per_day
                ~seed:42 ~graph ~n_videos ()
            in
            let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
            let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
            let cap =
              Vod_placement.Feasibility.min_link_capacity ~params:Common.probe_params
                ~lo:10.0 ~hi:100_000.0 ~tol:0.12 ~graph
                ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk ()
            in
            match cap with
            | Some c ->
                [
                  name;
                  string_of_int n_videos;
                  Printf.sprintf "%.0f" c;
                  Printf.sprintf "%.3f" (c /. float_of_int n_videos);
                ]
            | None -> [ name; string_of_int n_videos; "?"; "?" ])
          sizes)
      networks
  in
  Vod_util.Table.print
    ~header:[ "network"; "videos"; "min link cap (Mb/s)"; "cap per video" ]
    rows;
  Common.note
    "paper: normalized capacity stays ~flat as the library (and volume) grows; Tiscali needs the most."

let run () =
  fig11_region ();
  table4_topology ();
  fig13_library_growth ()
