(* Table V — peak-window size vs bandwidth (Sec. VII-G). For each window
   size (1 s ... 1 day): find the minimum feasible uniform link capacity
   when the MIP enforces links only during the |T| = 2 peak windows of
   that size, then play the week out and report (a) the realized max link
   load during the chosen windows and (b) over the whole period.

   Tiny windows under-provision (peak outside the window exceeds the
   constraint); day-long windows over-provision (concurrency counted over
   a day overstates instantaneous load); 1-hour windows are the sweet
   spot. *)

let window_videos =
  match Common.scale with Quick -> 400 | Default -> 1000 | Full | Huge -> 2500

let run () =
  Common.section "Table V — peak window size vs bandwidth";
  let sc = Common.backbone_scenario ~n_videos:window_videos () in
  let graph = sc.Vod_core.Scenario.graph in
  let catalog = sc.Vod_core.Scenario.catalog in
  let paths = sc.Vod_core.Scenario.paths in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  let week0 = Vod_workload.Trace.between_days sc.Vod_core.Scenario.trace ~day_lo:0 ~day_hi:7 in
  let windows = [ ("1 second", 1.0); ("1 minute", 60.0); ("1 hour", 3600.0); ("1 day", 86_400.0) ] in
  let rows =
    List.map
      (fun (label, window_s) ->
        let demand =
          Vod_workload.Demand.of_requests catalog
            ~n_vhos:(Vod_topology.Graph.n_nodes graph) ~day0:0 ~days:7 ~n_windows:2
            ~window_s week0
        in
        let feas_cap =
          Vod_placement.Feasibility.min_link_capacity ~params:Common.probe_params
            ~lo:5.0 ~hi:Common.feasibility_hi_mbps ~tol:0.1 ~graph ~catalog
            ~demand ~disk_gb:disk ()
        in
        match feas_cap with
        | None ->
            [ label; Printf.sprintf ">%.0f" Common.feasibility_hi_mbps; "-"; "-" ]
        | Some cap ->
            (* Solve at that capacity and play out the same week. *)
            let inst =
              Vod_placement.Instance.create ~graph ~catalog ~demand ~disk_gb:disk
                ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph cap)
                ()
            in
            let report = Vod_placement.Solve.solve ~params:Common.solve_params inst in
            let fleet =
              Vod_cache.Fleet.mip ~solution:report.Vod_placement.Solve.solution ~paths
                ~catalog
                ~cache_gb:(Array.make (Vod_topology.Graph.n_nodes graph) 0.0)
            in
            let metrics =
              Vod_sim.Metrics.create ~n_links:(Vod_topology.Graph.n_links graph)
                ~horizon_s:(7.0 *. Vod_workload.Trace.seconds_per_day)
                ~bin_s:(Float.min 300.0 (Float.max 1.0 window_s)) ()
            in
            Vod_sim.Sim.play metrics paths catalog fleet week0;
            let peak_series = Vod_sim.Metrics.peak_series metrics in
            let bin_s = metrics.Vod_sim.Metrics.bin_s in
            (* Max during the LP's chosen windows... *)
            let in_window t =
              Array.exists
                (fun (t0, t1) -> t >= t0 && t < t1)
                demand.Vod_workload.Demand.windows
            in
            let max_in = ref 0.0 and max_all = ref 0.0 in
            Array.iteri
              (fun b v ->
                if v > !max_all then max_all := v;
                if in_window (float_of_int b *. bin_s) && v > !max_in then max_in := v)
              peak_series;
            [
              label;
              Printf.sprintf "%.0f" cap;
              Printf.sprintf "%.0f" !max_in;
              Printf.sprintf "%.0f" !max_all;
            ])
      windows
  in
  Vod_util.Table.print
    ~header:
      [
        "window size";
        "feasibility constraint (Mb/s)";
        "max during LP window (Mb/s)";
        "max entire period (Mb/s)";
      ]
    rows;
  Common.note
    "paper (Gb/s): 1s -> 0.5/0.5/0.85 (underestimates), 1h -> 1.0/0.68/0.80 (best tradeoff), 1day -> 2.0/0.94/0.96 (overprovisions)."
