(* Fig. 12 — the complementary-cache sweep: vary the LRU share of each
   VHO's disk from 0% to 20% and replay one week (Sec. VII-D). The paper's
   point: a little cache absorbs estimation error, but placement quality
   dominates. *)

let run (sc : Vod_core.Scenario.t) =
  Common.section "Fig. 12 — complementary cache sweep (MIP + x% LRU)";
  let link_mbps = Common.calibrate_link_capacity sc ~disk_multiple:2.0 in
  let fracs = [ 0.0; 0.05; 0.10; 0.20 ] in
  (* Per-fraction playouts are independent fleets: fan them out across
     the pool, then format sequentially from the ordered results. *)
  let runs =
    Common.parallel_runs
      (List.map
         (fun frac () ->
           let cfg = Common.pipeline_config ~disk_multiple:2.0 ~link_capacity_mbps:link_mbps sc in
           (* One placement update, a 2-week horizon: solve on week 1,
              play week 2 — enough to expose the cache's effect on
              estimation error, at a fraction of the full-month cost. *)
           let mip =
             { Common.mip_config with Vod_core.Pipeline.cache_frac = frac; update_days = 14 }
           in
           let cfg = { cfg with Vod_core.Pipeline.warmup_days = 7 } in
           Common.timed (fun () -> Vod_core.Pipeline.run cfg (Vod_core.Pipeline.Mip mip)))
         fracs)
  in
  let rows =
    List.map2
      (fun frac (r, dt) ->
        let m = r.Vod_core.Pipeline.metrics in
        Common.note "  cache %.0f%%: %.1fs" (100.0 *. frac) dt;
        [
          Common.fmt_pct frac;
          Printf.sprintf "%.0f" (Vod_sim.Metrics.max_link_mbps m);
          Printf.sprintf "%.0f" (Vod_sim.Metrics.max_aggregate_mbps m);
          Printf.sprintf "%.0f" m.Vod_sim.Metrics.total_gb_hops;
          Common.fmt_pct (Vod_sim.Metrics.local_fraction m);
        ])
      fracs runs
  in
  Vod_util.Table.print
    ~header:
      [ "cache share"; "peak link (Mb/s)"; "max aggregate (Mb/s)"; "GB x hop"; "local" ]
    rows;
  Common.note
    "paper: big improvement from 0%% to 5%%, diminishing returns beyond — getting the placement right matters more than cache size."
