(* Failure analysis (the TON'16 robustness extension of the paper):
   optimal placement vs the caching baselines when a VHO goes dark, when
   a site fails together with its uplink, and under a per-link bandwidth
   budget enforced at playout time. The placement's replication of
   popular content is what keeps it serving: the Random+LRU fleet pins a
   single copy per video, so an outage strands every video whose only
   copy sat at the dead site, and its heavier remote traffic is the
   first to hit the link budget. *)

let videos =
  match Common.scale with
  | Common.Quick -> 250
  | Common.Default -> 600
  | Common.Full | Common.Huge -> 1500

let days = 10
let warmup_days = 3
let seed = 11

let scenario () =
  Vod_core.Scenario.backbone ~days ~requests_per_video_per_day:8.0 ~seed
    ~n_videos:videos ()

type fault_case = {
  label : string;
  schedule : Vod_resil.Event.schedule;
}

let run ?faults_file ?link_capacity () =
  Common.section
    "exp_failure — placement vs caching fleets under faults (TON'16 robustness)";
  let sc = scenario () in
  let lp_link = Common.calibrate_link_capacity sc ~disk_multiple:2.0 in
  let playout_cap =
    match link_capacity with Some c -> c | None -> 1.5 *. lp_link
  in
  Common.note
    "LP link constraint %.0f Mb/s; playout budget %.0f Mb/s per directed link"
    lp_link playout_cap;
  let cases =
    match faults_file with
    | Some path ->
        [
          { label = "fault-free"; schedule = Vod_resil.Event.empty };
          {
            label = Filename.basename path;
            schedule =
              Vod_resil.Event.load_csv
                ~n_vhos:(Vod_topology.Graph.n_nodes sc.Vod_core.Scenario.graph)
                ~n_links:(Vod_topology.Graph.n_links sc.Vod_core.Scenario.graph)
                path;
          };
        ]
    | None ->
        [
          { label = "fault-free"; schedule = Vod_resil.Event.empty };
          { label = "single-vho"; schedule = Vod_core.Scenario.single_vho_outage sc };
          { label = "correlated"; schedule = Vod_core.Scenario.correlated_outage sc };
        ]
  in
  let schemes =
    [
      Vod_core.Pipeline.Mip Common.mip_config;
      Vod_core.Pipeline.Random_cache Vod_cache.Cache.Lru;
      Vod_core.Pipeline.Topk_lru 100;
    ]
  in
  let config case =
    let base =
      Common.pipeline_config ~disk_multiple:2.0 ~link_capacity_mbps:lp_link sc
    in
    {
      base with
      Vod_core.Pipeline.warmup_days;
      Vod_core.Pipeline.resil =
        Some
          (Vod_resil.Playout.config ~schedule:case.schedule
             ~link_capacity_mbps:playout_cap ());
    }
  in
  (* One playout per (scheme, fault case), fanned out across the pool. *)
  let runs =
    List.concat_map
      (fun case -> List.map (fun scheme -> (case, scheme)) schemes)
      cases
  in
  let results =
    Common.parallel_runs
      (List.map
         (fun (case, scheme) () ->
           let r, dt =
             Common.timed (fun () -> Vod_core.Pipeline.run (config case) scheme)
           in
           (case, r, dt))
         runs)
    |> List.map (fun (case, r, dt) ->
           Common.note "ran %s under %s in %.1fs" r.Vod_core.Pipeline.scheme_name
             case.label dt;
           (case, r))
  in
  (* ---- headline table: rejection rate per scheme x fault case ---- *)
  Common.section "Rejection rate (share of recorded requests served by nobody)";
  let case_labels = List.map (fun c -> c.label) cases in
  let scheme_names =
    List.filter_map
      (fun (c, r) ->
        if c.label = "fault-free" then Some r.Vod_core.Pipeline.scheme_name
        else None)
      results
  in
  let cell case_label scheme_name f =
    match
      List.find_opt
        (fun (c, r) ->
          c.label = case_label && r.Vod_core.Pipeline.scheme_name = scheme_name)
        results
    with
    | Some (_, r) -> f r
    | None -> "-"
  in
  let table f =
    List.map
      (fun name ->
        name :: List.map (fun case -> cell case name f) case_labels)
      scheme_names
  in
  Vod_util.Table.print
    ~header:("scheme" :: case_labels)
    (table (fun r ->
         Common.fmt_pct
           (Vod_sim.Metrics.rejection_rate r.Vod_core.Pipeline.metrics)));
  Common.note
    "paper (TON'16): the optimal placement degrades gracefully under single failures;";
  Common.note
    "single-copy baselines strand every video whose only replica was at the dead site.";
  (* ---- degradation detail ---- *)
  Common.section "Degradation detail (failovers / extra hops / origin / saturation)";
  Vod_util.Table.print
    ~header:("scheme x case" :: [ "reject"; "vho-down"; "unreach"; "no-cap"; "failover"; "extra-hops"; "sat-s" ])
    (List.map
       (fun (c, (r : Vod_core.Pipeline.result)) ->
         let deg = r.Vod_core.Pipeline.metrics.Vod_sim.Metrics.deg in
         [
           Printf.sprintf "%s / %s" r.Vod_core.Pipeline.scheme_name c.label;
           string_of_int deg.Vod_sim.Metrics.rejections;
           string_of_int deg.Vod_sim.Metrics.rejected_vho_down;
           string_of_int
             (deg.Vod_sim.Metrics.rejected_unreachable
             + deg.Vod_sim.Metrics.rejected_no_replica);
           string_of_int deg.Vod_sim.Metrics.rejected_no_capacity;
           string_of_int deg.Vod_sim.Metrics.failovers;
           string_of_int deg.Vod_sim.Metrics.failover_extra_hops;
           Printf.sprintf "%.0f" deg.Vod_sim.Metrics.link_saturated_s;
         ])
       results);
  (* ---- per-event windows for the single-vho LRU run ---- *)
  (match
     List.find_opt
       (fun (c, r) ->
         c.label <> "fault-free"
         && r.Vod_core.Pipeline.scheme_name = "random+lru")
       results
   with
  | Some (c, r) ->
      Common.section
        (Printf.sprintf "Event windows — random+lru under %s" c.label);
      Vod_util.Table.print
        ~header:[ "window (days)"; "trigger"; "requests"; "rejections"; "failovers" ]
        (List.map
           (fun (w : Vod_resil.Playout.window) ->
             [
               Printf.sprintf "%.2f-%.2f" (w.Vod_resil.Playout.t0_s /. 86_400.0)
                 (w.Vod_resil.Playout.t1_s /. 86_400.0);
               w.Vod_resil.Playout.trigger;
               string_of_int w.Vod_resil.Playout.requests;
               string_of_int w.Vod_resil.Playout.rejections;
               string_of_int w.Vod_resil.Playout.failovers;
             ])
           r.Vod_core.Pipeline.resil_windows)
  | None -> ());
  (* ---- the acceptance comparison: MIP vs LRU under single-vho ---- *)
  (match faults_file with
  | Some _ -> ()
  | None ->
      let rate case_label prefix =
        List.find_map
          (fun (c, (r : Vod_core.Pipeline.result)) ->
            if
              c.label = case_label
              && String.length r.Vod_core.Pipeline.scheme_name
                 >= String.length prefix
              && String.sub r.Vod_core.Pipeline.scheme_name 0
                   (String.length prefix)
                 = prefix
            then Some (Vod_sim.Metrics.rejection_rate r.Vod_core.Pipeline.metrics)
            else None)
          results
      in
      match (rate "single-vho" "mip", rate "single-vho" "random+lru") with
      | Some mip, Some lru ->
          Common.note
            "single-vho outage: mip rejection rate %s vs random+lru %s -> %s"
            (Common.fmt_pct mip) (Common.fmt_pct lru)
            (if mip < lru then "optimal placement strictly more resilient"
             else "UNEXPECTED: mip not strictly lower")
      | _ -> ())
