(* Table VI — placement-update frequency and estimation accuracy
   (Sec. VII-H): biweekly / weekly / daily updates with the paper's
   series+blockbuster estimator, plus the perfect-knowledge and
   no-estimate bounds. No complementary cache, as in the paper. Also
   reports the migration cost of weekly updates (end of Sec. VII-H). *)

let run (sc : Vod_core.Scenario.t) =
  Common.section "Table VI — update frequency and estimation accuracy";
  let link_mbps = Common.calibrate_link_capacity sc ~disk_multiple:2.0 in
  let base = { Common.mip_config with Vod_core.Pipeline.cache_frac = 0.0 } in
  let variants =
    [
      ("once in 2 weeks", { base with Vod_core.Pipeline.update_days = 14 });
      ("weekly", base);
      ("daily", { base with Vod_core.Pipeline.update_days = 1 });
      ( "perfect estimate",
        { base with Vod_core.Pipeline.estimator = Vod_workload.Estimator.Perfect } );
      ( "no estimate",
        { base with Vod_core.Pipeline.estimator = Vod_workload.Estimator.History_only } );
    ]
  in
  let weekly_migrations = ref [] in
  (* The migration-cost capture keys on the variant's configuration —
     weekly cadence with the paper's estimator — not its display label,
     so renaming a row cannot silently zero the reported cost. *)
  let is_weekly (mip : Vod_core.Pipeline.mip_config) =
    mip.Vod_core.Pipeline.update_days = 7
    && mip.Vod_core.Pipeline.estimator = Vod_workload.Estimator.Series_blockbuster
  in
  let rows =
    List.map
      (fun (label, mip) ->
        let cfg = Common.pipeline_config ~disk_multiple:2.0 ~link_capacity_mbps:link_mbps sc in
        let r, dt = Common.timed (fun () -> Vod_core.Pipeline.run cfg (Vod_core.Pipeline.Mip mip)) in
        Common.note "  %s: %.1fs (%d solves)" label dt (List.length r.Vod_core.Pipeline.solves);
        if is_weekly mip then weekly_migrations := r.Vod_core.Pipeline.migrations;
        let m = r.Vod_core.Pipeline.metrics in
        [
          label;
          Common.fmt_gbps (Vod_sim.Metrics.max_link_mbps m);
          Printf.sprintf "%.0f" m.Vod_sim.Metrics.total_gb_hops;
          Printf.sprintf "%.3f" (Vod_sim.Metrics.local_fraction m);
        ])
      variants
  in
  Vod_util.Table.print
    ~header:[ "update policy"; "max BW (Gb/s)"; "total transfer (GB x hop)"; "locally served" ]
    rows;
  Common.note
    "paper: 2-weekly 2.23 / weekly 1.32 / daily 1.30 / perfect 0.97 / none 8.62 Gb/s; locally served 0.545 / 0.575 / 0.585 / 0.606 / 0.144.";
  (* Migration cost of weekly updates. *)
  (match !weekly_migrations with
  | [] -> ()
  | migrations ->
      let rows =
        List.mapi
          (fun i (transfers, gb) ->
            [ Printf.sprintf "update %d" (i + 1); string_of_int transfers; Printf.sprintf "%.0f" gb ])
          migrations
      in
      Common.section "Placement-update cost (Sec. VII-H)";
      Vod_util.Table.print ~header:[ "update"; "videos moved"; "GB moved" ] rows;
      Common.note "paper: ~2.5K video transfers per weekly placement update on a ~20K-video library.")
