(* Ablations of the solver's design choices (DESIGN.md):

   1. Randomized pass order (paper Appendix: reshuffling each pass cuts
      pass counts dramatically vs a fixed order).
   2. Warm-started block initialization (greedy-fill duals) vs cold
      single-copy starts.
   3. Rounding: potential-guided candidate choice vs always-fresh oracle.

   Each variant solves the same instance; we report passes to
   epsilon-feasibility, wall time, objective and violation. *)

let ablation_videos =
  match Common.scale with Quick -> 400 | Default -> 1200 | Full | Huge -> 3000

let instance () =
  let sc = Common.backbone_scenario ~n_videos:ablation_videos () in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
  Vod_placement.Instance.create ~graph:sc.Vod_core.Scenario.graph
    ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
    ~link_capacity_mbps:
      (Vod_placement.Instance.uniform_links sc.Vod_core.Scenario.graph 1000.0)
    ()

let solve_with ~shuffle ~warm_start inst =
  (* Engine called directly (bypassing Solve.solve, whose extraction we
     don't need): namespace its phase timers under ablation/. *)
  Vod_obs.Obs.phase "ablation" @@ fun () ->
  let params = { Common.solve_params with Vod_epf.Engine.shuffle } in
  let t0 = Unix.gettimeofday () in
  let _, oracles = Vod_placement.Blocks.oracles ~warm_start inst in
  let outcome =
    Vod_epf.Engine.solve params ~capacities:(Vod_placement.Instance.capacities inst)
      ~oracles
  in
  let dt = Unix.gettimeofday () -. t0 in
  (outcome, dt)

let rec run () =
  Common.section "Ablation — randomized pass order and warm start";
  let inst = instance () in
  let variants =
    [
      ("shuffled + warm start (default)", true, true);
      ("fixed order + warm start", false, true);
      ("shuffled + cold start", true, false);
      ("fixed order + cold start", false, false);
    ]
  in
  let rows =
    List.map
      (fun (label, shuffle, warm_start) ->
        let outcome, dt = solve_with ~shuffle ~warm_start inst in
        [
          label;
          string_of_int outcome.Vod_epf.Engine.passes;
          Printf.sprintf "%.1f" dt;
          Printf.sprintf "%.0f" outcome.Vod_epf.Engine.objective;
          Common.fmt_pct outcome.Vod_epf.Engine.max_violation;
          Printf.sprintf "%.0f" outcome.Vod_epf.Engine.lower_bound;
        ])
      variants
  in
  Vod_util.Table.print
    ~header:[ "variant"; "passes"; "time (s)"; "objective"; "violation"; "lower bound" ]
    rows;
  Common.note
    "paper: reshuffling the block order each pass reduces pass counts by 40x vs any fixed order.";
  chunking_ablation ()

(* Sec. V-B's chunking remark, quantified: whole-video vs chunked
   placement on the same instance with small per-VHO disks. Chunking
   packs disks at finer granularity, so post-rounding violations drop and
   the objective can improve at tight capacities. *)
and chunking_ablation () =
  Common.section "Ablation — whole-video vs chunked placement (Sec. V-B)";
  let sc =
    Common.backbone_scenario ~n_videos:(ablation_videos / 2) ()
  in
  let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
  (* Tight disks: 1.3x the library, where packing granularity matters. *)
  let disk = Vod_core.Scenario.uniform_disk sc ~multiple:1.3 in
  let inst =
    Vod_placement.Instance.create ~graph:sc.Vod_core.Scenario.graph
      ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
      ~link_capacity_mbps:
        (Vod_placement.Instance.uniform_links sc.Vod_core.Scenario.graph 2000.0)
      ()
  in
  let rows = ref [] in
  let record label (report : Vod_placement.Solve.report) seconds n_items =
    rows :=
      [
        label;
        string_of_int n_items;
        Printf.sprintf "%.0f" report.Vod_placement.Solve.solution.Vod_placement.Solution.objective;
        Common.fmt_pct report.Vod_placement.Solve.solution.Vod_placement.Solution.max_violation;
        Printf.sprintf "%.1f" seconds;
      ]
      :: !rows
  in
  let whole, whole_s =
    Common.timed (fun () -> Vod_placement.Solve.solve ~params:Common.solve_params inst)
  in
  record "whole videos" whole whole_s
    (Vod_workload.Catalog.n_videos sc.Vod_core.Scenario.catalog);
  List.iter
    (fun chunk_gb ->
      let t, chunked_inst = Vod_placement.Chunking.instance inst ~chunk_gb in
      let report, chunk_s =
        Common.timed (fun () ->
            Vod_placement.Solve.solve ~params:Common.solve_params chunked_inst)
      in
      record (Printf.sprintf "%.1f GB chunks" chunk_gb) report chunk_s
        (Vod_placement.Chunking.n_chunks t))
    [ 1.0; 0.5 ];
  Vod_util.Table.print
    ~header:[ "placement granularity"; "items"; "objective"; "violation"; "time (s)" ]
    (List.rev !rows);
  Common.note
    "expected: finer chunks reduce post-rounding disk violations at tight capacities, at higher solve cost."
