(* Table III — running time and memory of the decomposition solver vs the
   exact LP reference, as the library grows (Sec. VII-E).

   The paper's CPLEX baseline dies at 20K videos on 48 GB; our dense
   simplex reference saturates at a few dozen videos on an 8-VHO network —
   the same wall, earlier, which is exactly the point of the experiment:
   the monolithic LP grows superlinearly while the decomposition stays
   linear. Following the paper, decomposition numbers aggregate six
   scenarios (3 networks x 2 disk sizes) by geometric mean. *)

let reference_network () =
  Vod_topology.Topologies.ring_plus_chords ~name:"ref8" ~n:8 ~target_edges:11 ~seed:8

let simplex_sizes =
  match Common.scale with
  | Quick -> [ 4; 8 ]
  | Default -> [ 5; 10; 20 ]
  | Full -> [ 5; 10; 20; 40 ]

let epf_sizes =
  match Common.scale with
  | Quick -> [ 500; 1000; 2000 ]
  | Default -> [ 1000; 2000; 5000; 10_000; 20_000 ]
  | Full -> [ 5_000; 10_000; 20_000; 50_000; 100_000; 200_000 ]

let words_to_gb w = w *. 8.0 /. 1e9

let simplex_reference () =
  Common.section "Table III (reference side) — exact LP via simplex";
  let graph = reference_network () in
  let rows =
    List.map
      (fun n_videos ->
        let sc =
          Vod_core.Scenario.make ~days:7 ~requests_per_video_per_day:8.0 ~seed:2
            ~graph ~n_videos ()
        in
        let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
        let disk = Vod_core.Scenario.uniform_disk sc ~multiple:2.0 in
        let inst =
          Vod_placement.Instance.create ~graph ~catalog:sc.Vod_core.Scenario.catalog
            ~demand ~disk_gb:disk
            ~link_capacity_mbps:(Vod_placement.Instance.uniform_links graph 500.0)
            ()
        in
        let gc0 = Gc.quick_stat () in
        let result, dt = Common.timed (fun () -> Vod_placement.Lp_check.solve_reference inst) in
        let gc1 = Gc.quick_stat () in
        let words =
          gc1.Gc.minor_words +. gc1.Gc.major_words -. gc1.Gc.promoted_words
          -. (gc0.Gc.minor_words +. gc0.Gc.major_words -. gc0.Gc.promoted_words)
        in
        let status =
          match result with
          | Vod_lp.Simplex.Optimal { objective; _ } -> Printf.sprintf "opt %.0f" objective
          | Vod_lp.Simplex.Infeasible -> "infeasible"
          | Vod_lp.Simplex.Unbounded -> "unbounded"
        in
        [
          string_of_int n_videos;
          Printf.sprintf "%.2f" dt;
          Printf.sprintf "%.3f" (words_to_gb words);
          status;
        ])
      simplex_sizes
  in
  Vod_util.Table.print
    ~header:[ "videos (8 VHOs)"; "time (s)"; "alloc (GB)"; "result" ]
    rows;
  Common.note
    "paper: CPLEX needs 894s/10GB at 5K videos and cannot fit 50K in 48GB; the monolithic LP's growth is superlinear."

let decomposition_scaling () =
  Common.section "Table III (decomposition side) — EPF solver scaling";
  let networks =
    [
      Vod_topology.Topologies.tiscali ();
      Vod_topology.Topologies.sprint ();
      Vod_topology.Topologies.ebone ();
    ]
  in
  (* Fewer passes for the scaling study: absolute quality is measured
     elsewhere; here the paper's metric is time/memory growth. *)
  let params =
    { Common.solve_params with Vod_epf.Engine.max_passes = 20 }
  in
  let rows =
    List.map
      (fun n_videos ->
        let times = ref [] and mems = ref [] and gaps = ref [] in
        List.iter
          (fun graph ->
            List.iter
              (fun disk_mult ->
                let sc =
                  Vod_core.Scenario.make ~days:7
                    ~requests_per_video_per_day:4.0 ~seed:3 ~graph ~n_videos ()
                in
                let demand = Vod_core.Scenario.demand_of_week sc ~day0:0 () in
                let disk = Vod_core.Scenario.uniform_disk sc ~multiple:disk_mult in
                let inst =
                  Vod_placement.Instance.create ~graph
                    ~catalog:sc.Vod_core.Scenario.catalog ~demand ~disk_gb:disk
                    ~link_capacity_mbps:
                      (Vod_placement.Instance.uniform_links graph 100_000.0)
                    ()
                in
                let report, solve_s =
                  Common.timed (fun () -> Vod_placement.Solve.solve ~params inst)
                in
                times := solve_s :: !times;
                (* Memory footprint: live heap words with the instance,
                   blocks and solution still reachable (allocation volume
                   would overstate residency by the GC churn factor). *)
                Gc.full_major ();
                let live = float_of_int (Gc.stat ()).Gc.live_words in
                ignore (Sys.opaque_identity (inst, report));
                mems := words_to_gb live :: !mems;
                gaps := Vod_placement.Solution.gap report.Vod_placement.Solve.solution :: !gaps)
              [ 2.0; 11.0 ] (* paper: 2x aggregate; "large" = VHO holds 20% *))
          networks;
        let gmean l = Vod_util.Stats_acc.geometric_mean (Array.of_list l) in
        [
          string_of_int n_videos;
          Printf.sprintf "%.2f" (gmean !times);
          Printf.sprintf "%.3f" (gmean !mems);
          Common.fmt_pct (Vod_util.Stats_acc.mean (Array.of_list !gaps));
        ])
      epf_sizes
  in
  Vod_util.Table.print
    ~header:[ "videos"; "time (s, geomean)"; "live heap (GB, geomean)"; "mean gap vs LB" ]
    rows;
  Common.note
    "paper: 1.39s/0.11GB at 5K growing ~linearly to 98.6s/15GB at 1M; speedup over CPLEX 644x-2071x."

let run () =
  simplex_reference ();
  decomposition_scaling ()
